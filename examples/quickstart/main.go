// Quickstart: build an in-process simulated Uber backend, log in one
// emulated client, and watch the pingClient stream for a simulated hour —
// nearest cars, EWT, and the surge multiplier, exactly the fields the
// paper's measurement scripts recorded.
package main

import (
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

func main() {
	// A Manhattan backend in April 2015 mode (jitter bug active).
	svc := api.NewBackend(sim.Manhattan(), 42, true)
	svc.Register("demo")

	// Stand at the center of midtown (Times Square-ish).
	loc := svc.World().Projection().ToLatLng(geo.Point{X: -250, Y: 250})

	// Fast-forward to Monday 5pm — evening rush.
	svc.RunUntil(17 * 3600)

	fmt.Println("time      cars  EWT(min)  surge")
	for i := 0; i < 12; i++ { // one snapshot per 5 simulated minutes
		resp, err := svc.PingClient("demo", loc)
		if err != nil {
			log.Fatal(err)
		}
		x := resp.Status(core.UberX)
		fmt.Printf("%02d:%02d:%02d  %4d  %8.1f  %5.2f\n",
			resp.Time/3600%24, resp.Time/60%60, resp.Time%60,
			len(x.Cars), x.EWTSeconds/60, x.Surge)
		svc.RunUntil(svc.Now() + 300)
	}

	// The API view of the same spot (no jitter, rate limited).
	prices, err := svc.EstimatePrice("demo", loc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nestimates/price:")
	for _, p := range prices {
		fmt.Printf("  %-12s surge %.2f  $%.2f-$%.2f\n", p.TypeName, p.Surge, p.LowUSD, p.HighUSD)
	}
}
