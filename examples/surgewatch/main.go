// Surgewatch: monitor every surge area of downtown San Francisco through
// the public API for a simulated day and log surge onsets, peaks, and
// durations — the §5.1/§5.2 characterization (SF surges the majority of
// the time; most surges last a single 5-minute interval).
package main

import (
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	profile := sim.SanFrancisco()
	svc := api.NewBackend(profile, 7, false)
	proj := svc.World().Projection()

	// One API probe per surge area (720 requests/hour each: within the
	// per-account rate limit).
	areas := profile.SurgeAreas()
	probes := make([]*measure.APIProbe, len(areas))
	for a := range areas {
		id := fmt.Sprintf("watch-%d", a)
		svc.Register(id)
		pt := profile.MeasureRect.Clamp(areas[a].Centroid())
		probes[a] = measure.NewAPIProbe(svc, id, proj.ToLatLng(pt))
	}

	fmt.Println("watching SF surge areas for one simulated day...")
	for svc.Now() < sim.SecondsPerDay {
		svc.Step()
		for _, p := range probes {
			p.Poll()
		}
	}

	for a, p := range probes {
		if p.Errs > 0 {
			log.Printf("area %d: %d probe errors", a, p.Errs)
		}
		durs := measure.SurgeDurations(p.Log, 1, 0, sim.SecondsPerDay)
		if len(durs) == 0 {
			fmt.Printf("area %d: no surges\n", a)
			continue
		}
		cdf := stats.NewCDF(durs)
		peak := 1.0
		for _, c := range p.Log {
			if c.To > peak {
				peak = c.To
			}
		}
		fmt.Printf("area %d: %3d surges | median %4.1f min | p90 %5.1f min | peak multiplier %.1f\n",
			a, len(durs), cdf.Median()/60, cdf.Quantile(0.9)/60, peak)
		// Print the three longest episodes with their onset times.
		fmt.Printf("         longest episode: %.0f min\n", cdf.Quantile(1)/60)
	}
}
