// Cheapride: the §6 surge-avoidance strategy as a passenger-facing tool.
// Stand near Times Square during a surging evening, query the adjacent
// surge areas through the public API, and when one offers a lower
// multiplier reachable on foot before the car would arrive, report the
// cheaper pickup plan.
package main

import (
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/strategy"
)

func main() {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 21, false)
	svc.Register("rider")
	advisor := strategy.NewAdvisor(svc, "rider", profile)

	// Times Square corner, ~200 m from two surge-area boundaries.
	pos := geo.Point{X: -120, Y: 280}

	// Scan Monday 4pm - midnight, once per 5-minute interval.
	svc.RunUntil(16 * 3600)
	checks, wins := 0, 0
	var bestSaving float64
	for svc.Now() < 24*3600 {
		svc.RunUntil(svc.Now()/300*300 + 300 + 150) // mid-interval
		adv, err := advisor.Advise(pos)
		if err != nil {
			log.Fatal(err)
		}
		checks++
		if adv.Best == nil {
			continue
		}
		wins++
		if adv.Savings() > bestSaving {
			bestSaving = adv.Savings()
		}
		fmt.Printf("%02d:%02d  surge here %.1f -> area %d offers %.1f; walk %.1f min (car arrives in %.1f min)\n",
			svc.Now()/3600%24, svc.Now()/60%60,
			adv.CurrentSurge, adv.Best.Area, adv.Best.Surge,
			adv.Best.WalkSeconds/60, adv.Best.EWTSeconds/60)
	}
	fmt.Printf("\nchecked %d intervals: cheaper pickup available %d times (%.0f%%), best saving %.1fx\n",
		checks, wins, float64(wins)/float64(checks)*100, bestSaving)
}
