// Cheapride: comparison shopping across ride services (the §6 closing
// scenario, popularized as OpenStreetCab). Two services — the Uber
// backend and an app-hailed taxi fleet — run over the SAME street
// network, so each fleet's trips congest the other's routes. A rider
// near Times Square queries both public price/time APIs every five
// minutes through strategy.PriceComparison and books whichever quote is
// cheaper.
package main

import (
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/surge"
)

func main() {
	// One street network, two worlds driving on it. With RoadShared the
	// worlds only tally their edge loads; the harness commits congestion
	// once per tick so both fleets slow each other down.
	profile := sim.Manhattan()
	profile.RoadNetwork = true
	taxiProfile := profile.TaxiCity(1)
	net := road.ForProfile(profile.Name, profile.Region)

	const start = 17 * 3600 // Monday evening rush
	uberW := sim.NewWorld(sim.Config{
		Profile: profile, Seed: 21, StartTime: start, Road: net, RoadShared: true,
	})
	taxiW := sim.NewWorld(sim.Config{
		Profile: taxiProfile, Seed: 22, StartTime: start, Road: net, RoadShared: true,
	})
	uberSvc := api.NewService(uberW, surge.New(uberW, surge.Config{Params: profile.Surge, Seed: 21}))
	taxiSvc := api.NewService(taxiW, surge.New(taxiW, surge.Config{Params: taxiProfile.Surge, Seed: 22}))
	uberSvc.Register("rider")
	taxiSvc.Register("rider")

	pc := &strategy.PriceComparison{Services: []strategy.ServiceEntry{
		{Name: "uber", Svc: uberSvc, ClientID: "rider", Product: core.UberX},
		{Name: "taxi", Svc: taxiSvc, ClientID: "rider", Product: core.UberT},
	}}

	// Times Square corner.
	loc := uberW.Projection().ToLatLng(geo.Point{X: -120, Y: 280})

	queries, taxiWins := 0, 0
	var saved float64
	for uberSvc.Now() < start+2*3600 { // two rush hours
		uberSvc.Step()
		taxiSvc.Step()
		net.Cong.Commit()
		if uberSvc.Now()%300 != 0 {
			continue
		}
		c, err := pc.Compare(loc)
		if err != nil {
			log.Fatal(err)
		}
		queries++
		saved += c.Savings()
		best := c.CheapestQuote()
		if best.Service == "taxi" {
			taxiWins++
		}
		fmt.Printf("%02d:%02d ", uberSvc.Now()/3600%24, uberSvc.Now()/60%60)
		for _, q := range c.Quotes {
			fmt.Printf(" %s $%.2f (%.1fx, car in %.1f min)", q.Service, q.USD, q.Surge, q.EWTSeconds/60)
		}
		fmt.Printf("  -> book %s, save $%.2f\n", best.Service, c.Savings())
	}
	fmt.Printf("\n%d comparisons: taxi cheaper %d times (%.0f%%), total saved $%.2f\n",
		queries, taxiWins, float64(taxiWins)/float64(queries)*100, saved)
}
