// Validate: the §3.5 ground-truth experiment end to end. Synthesize a
// day of NYC-style taxi trips, replay them through the
// eight-nearest-vehicles API, measure with 172 emulated clients, and
// compare the measured supply/demand against the trace's ground truth
// (the paper captured 97% of cars and 95% of deaths).
package main

import (
	"fmt"
	"math"

	"repro/internal/taxi"
)

func main() {
	fmt.Println("generating synthetic NYC taxi trace (1 day, 1500 taxis)...")
	tr := taxi.GenerateTrace(taxi.GenConfig{Seed: 11, Days: 1, Taxis: 1500})
	fmt.Printf("  %d driver sessions\n", len(tr.Sessions))

	fmt.Println("replaying 8am-4pm and measuring with 172 clients...")
	res := taxi.Validate(tr, 11, 8*3600, 16*3600)

	fmt.Printf("\nsupply capture: %.1f%% of ground truth (paper: 97%%)\n", res.SupplyCapture*100)
	fmt.Printf("death capture:  %.1f%% of ground truth (paper: 95%%)\n", res.DeathCapture*100)
	fmt.Printf("measured-vs-truth supply correlation: %.3f\n\n", res.SupplyCorrelation)

	fmt.Println("hour  truth-supply  measured  truth-deaths  measured")
	for h := 8; h < 16; h++ {
		t0 := int64(h) * 3600
		var ts, ms, td, md, n float64
		for i := 0; i < 12; i++ {
			t := t0 + int64(i)*300
			if v := res.TruthSupply.At(t); !math.IsNaN(v) {
				ts += v
			}
			if v := res.MeasuredSupply.At(t); !math.IsNaN(v) {
				ms += v
			}
			if v := res.TruthDeaths.At(t); !math.IsNaN(v) {
				td += v
			}
			if v := res.MeasuredDeaths.At(t); !math.IsNaN(v) {
				md += v
			}
			n++
		}
		fmt.Printf("%02d:00  %10.0f  %8.0f  %12.0f  %8.0f\n", h, ts/n, ms/n, td, md)
	}
}
