// Drivermap: the Partner (driver) app's view of the system — the surge
// heat map of Fig 1. A driver logs in (accepting Uber's data-collection
// agreement, which is why the paper's authors never saw this surface),
// polls the surge map through an SF evening, and gets relocation advice:
// which area currently pays the highest multiplier.
package main

import (
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/sim"
)

func main() {
	svc := api.NewBackend(sim.SanFrancisco(), 33, false)
	if err := svc.RegisterPartner("driver-007", true); err != nil {
		log.Fatal(err)
	}

	// Poll the map every 15 simulated minutes through the evening.
	svc.RunUntil(17 * 3600)
	fmt.Println("time    area0 area1 area2 area3   advice")
	for svc.Now() < 22*3600 {
		m, err := svc.PartnerMap("driver-007")
		if err != nil {
			log.Fatal(err)
		}
		best, bestM := -1, 0.0
		row := fmt.Sprintf("%02d:%02d  ", svc.Now()/3600%24, svc.Now()/60%60)
		for _, pa := range m {
			row += fmt.Sprintf(" %4.1f ", pa.Surge)
			if pa.Surge > bestM {
				best, bestM = pa.Area, pa.Surge
			}
		}
		advice := "stay put"
		if bestM > 1.2 {
			advice = fmt.Sprintf("head to area %d (%.1fx)", best, bestM)
		}
		fmt.Printf("%s  %s\n", row, advice)
		svc.RunUntil(svc.Now() + 900)
	}
}
