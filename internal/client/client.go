// Package client implements the paper's measurement apparatus: emulated
// copies of the Uber Client app that log in, send pingClient requests
// every five seconds from controlled GPS coordinates, and stream the
// responses into measurement sinks (§3.3). It also implements the grid
// deployment of 43 clients (Fig 3) and the calibration experiments of
// §3.4 (determinism check and the four-walker visibility-radius
// experiment).
package client

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
)

// PingPeriod is how often the Client app pings, in seconds.
const PingPeriod = 5

// NumClients is the paper's measurement fleet size (43 Uber accounts).
const NumClients = 43

// Client is one emulated app instance pinned to a location.
type Client struct {
	ID  string
	Pos geo.Point  // plane coordinates (for analysis)
	Loc geo.LatLng // wire coordinates (what the app reports)
}

// Sink consumes ping responses as they arrive. Observe is called once per
// client per round; EndRound is called after every client in a round has
// reported, with the round's timestamp.
type Sink interface {
	Observe(clientIdx int, pos geo.Point, resp *core.PingResponse)
	EndRound(now int64)
}

// GapSink is an optional extension of Sink: sinks that implement it are
// told about every ping that failed, so missing observations are recorded
// explicitly instead of silently skewing aggregates (the paper lost ~2.5%
// of its pings and had to account for them the same way). lastSeen is the
// most recent round timestamp the campaign observed (0 before the first
// successful ping).
type GapSink interface {
	ObserveGap(clientIdx int, pos geo.Point, lastSeen int64, err error)
}

// GridLayout places n clients on a square grid with the given spacing,
// centered on rect and covering it row-major from the south-west. This is
// the §3.4 deployment: spacing is derived from the calibrated visibility
// radius so that neighboring clients' views tile the region.
func GridLayout(rect geo.Rect, spacing float64, n int) []geo.Point {
	if n <= 0 || spacing <= 0 {
		return nil
	}
	cols := int(rect.Width()/spacing) + 1
	rows := int(rect.Height()/spacing) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	// Center the grid inside the rect.
	x0 := rect.Min.X + (rect.Width()-float64(cols-1)*spacing)/2
	y0 := rect.Min.Y + (rect.Height()-float64(rows-1)*spacing)/2
	pts := make([]geo.Point, 0, n)
	for r := 0; r < rows && len(pts) < n; r++ {
		for c := 0; c < cols && len(pts) < n; c++ {
			pts = append(pts, geo.Point{X: x0 + float64(c)*spacing, Y: y0 + float64(r)*spacing})
		}
	}
	return pts
}

// Registrar is the account-creation surface of a backend; *api.Service and
// *api.Remote both provide it. Registration against a remote backend can
// fail (transport errors, shed load), so Register returns an error; the
// in-process implementations always return nil.
type Registrar interface {
	Register(clientID string) error
}

// Campaign drives a fleet of clients against a service, delivering every
// response to every sink.
type Campaign struct {
	Service core.Service
	Clients []Client
	Sinks   []Sink

	// Rounds counts completed ping rounds.
	Rounds int64
	// Errors counts failed pings (out-of-service locations, transient
	// transport failures against a remote backend). Every error is also a
	// gap: the observation the failed ping would have produced is missing
	// from the record, and GapSinks are told about it.
	Errors int64

	// lastNow is the most recent response timestamp, handed to GapSinks
	// so gaps carry an approximate time.
	lastNow int64
}

// NewCampaign builds a campaign with clients at the given plane positions.
// Client IDs are deterministic ("probe-00".."probe-42"). The positions are
// converted to wire coordinates with proj.
func NewCampaign(svc core.Service, proj *geo.Projection, positions []geo.Point) *Campaign {
	c := &Campaign{Service: svc}
	for i, p := range positions {
		c.Clients = append(c.Clients, Client{
			ID:  fmt.Sprintf("probe-%02d", i),
			Pos: p,
			Loc: proj.ToLatLng(p),
		})
	}
	return c
}

// RegisterAll creates the campaign's accounts on the backend. It attempts
// every client even after a failure and returns the first error, so a
// transient failure mid-fleet doesn't leave the tail unregistered.
func (c *Campaign) RegisterAll(r Registrar) error {
	var firstErr error
	for _, cl := range c.Clients {
		if err := r.Register(cl.ID); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AddSink attaches a measurement sink.
func (c *Campaign) AddSink(s Sink) { c.Sinks = append(c.Sinks, s) }

// Round performs one ping round: every client pings once and the
// responses are fanned out to the sinks. Failed pings are reported to
// GapSinks so the round's record shows an explicit hole where the
// observation should have been.
func (c *Campaign) Round() {
	now := c.lastNow
	for i := range c.Clients {
		cl := &c.Clients[i]
		resp, err := c.Service.PingClient(cl.ID, cl.Loc)
		if err != nil {
			c.Errors++
			for _, s := range c.Sinks {
				if gs, ok := s.(GapSink); ok {
					gs.ObserveGap(i, cl.Pos, c.lastNow, err)
				}
			}
			continue
		}
		now = resp.Time
		c.lastNow = now
		for _, s := range c.Sinks {
			s.Observe(i, cl.Pos, resp)
		}
	}
	for _, s := range c.Sinks {
		s.EndRound(now)
	}
	c.Rounds++
}

// Stepper is a backend whose simulation clock the campaign can advance
// (the in-process api.Service). Remote backends advance on their own.
type Stepper interface {
	Step()
	Now() int64
}

// RunSim advances an in-process backend to time end, pinging after every
// tick (the backend tick equals the 5-second ping period).
func (c *Campaign) RunSim(b Stepper, end int64) {
	for b.Now() < end {
		b.Step()
		c.Round()
	}
}
