package client

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

// flakyService wraps a core.Service and fails a fraction of pings, the way
// a real measurement campaign loses requests to transport errors.
type flakyService struct {
	core.Service
	rng      *rand.Rand
	failProb float64
	failures int
}

var errFlaky = errors.New("transient transport failure")

func (f *flakyService) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	if f.rng.Float64() < f.failProb {
		f.failures++
		return nil, errFlaky
	}
	return f.Service.PingClient(clientID, loc)
}

func TestCampaignSurvivesTransportFailures(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 31, false)
	flaky := &flakyService{Service: svc, rng: rand.New(rand.NewSource(1)), failProb: 0.2}
	p := svc.World().Profile()
	pts := GridLayout(p.MeasureRect, p.ClientSpacing, NumClients)
	camp := NewCampaign(flaky, svc.World().Projection(), pts)
	camp.RegisterAll(svc)

	sink := &countingSink{}
	camp.AddSink(sink)
	camp.RunSim(svc, 600)

	if camp.Errors == 0 {
		t.Fatal("flaky service produced no campaign errors")
	}
	if int64(flaky.failures) != camp.Errors {
		t.Errorf("failures %d != campaign errors %d", flaky.failures, camp.Errors)
	}
	// Successful observations still flowed to the sinks.
	want := int(camp.Rounds)*NumClients - int(camp.Errors)
	if sink.observations != want {
		t.Errorf("observations = %d, want %d", sink.observations, want)
	}
	// Rounds still completed.
	if camp.Rounds != 120 {
		t.Errorf("rounds = %d, want 120", camp.Rounds)
	}
}

func TestCampaignAllPingsFail(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 31, false)
	flaky := &flakyService{Service: svc, rng: rand.New(rand.NewSource(1)), failProb: 1.0}
	pts := GridLayout(svc.World().Profile().MeasureRect, 280, 5)
	camp := NewCampaign(flaky, svc.World().Projection(), pts)
	camp.RegisterAll(svc)
	sink := &countingSink{}
	camp.AddSink(sink)
	camp.RunSim(svc, 60)
	if sink.observations != 0 {
		t.Errorf("observations = %d, want 0", sink.observations)
	}
	// EndRound still fires so sinks can account for the silent round.
	if sink.rounds == 0 {
		t.Error("EndRound never fired")
	}
}

func TestCampaignUnregisteredClientsCountErrors(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 31, false)
	pts := GridLayout(svc.World().Profile().MeasureRect, 280, 3)
	camp := NewCampaign(svc, svc.World().Projection(), pts)
	// Deliberately skip RegisterAll.
	camp.Round()
	if camp.Errors != 3 {
		t.Errorf("errors = %d, want 3 (unregistered accounts)", camp.Errors)
	}
}

// gapSink records every reported gap.
type gapSink struct {
	countingSink
	gaps     int
	lastSeen []int64
	errs     []error
}

func (g *gapSink) ObserveGap(clientIdx int, pos geo.Point, lastSeen int64, err error) {
	g.gaps++
	g.lastSeen = append(g.lastSeen, lastSeen)
	g.errs = append(g.errs, err)
}

func TestCampaignReportsGapsToGapSinks(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 31, false)
	flaky := &flakyService{Service: svc, rng: rand.New(rand.NewSource(2)), failProb: 0.2}
	p := svc.World().Profile()
	pts := GridLayout(p.MeasureRect, p.ClientSpacing, NumClients)
	camp := NewCampaign(flaky, svc.World().Projection(), pts)
	camp.RegisterAll(svc)

	sink := &gapSink{}
	camp.AddSink(sink)
	camp.RunSim(svc, 600)

	if camp.Errors == 0 {
		t.Fatal("flaky service produced no errors")
	}
	// Every error is reported as an explicit gap, so the sink can account
	// for the full expected observation count.
	if int64(sink.gaps) != camp.Errors {
		t.Errorf("gaps = %d, campaign errors = %d; every error must be a gap", sink.gaps, camp.Errors)
	}
	if int64(sink.observations+sink.gaps) != camp.Rounds*int64(len(camp.Clients)) {
		t.Errorf("observations (%d) + gaps (%d) != rounds × clients (%d)",
			sink.observations, sink.gaps, camp.Rounds*int64(len(camp.Clients)))
	}
	for i, e := range sink.errs {
		if !errors.Is(e, errFlaky) {
			t.Fatalf("gap %d carried err %v, want the ping error", i, e)
		}
	}
	// lastSeen is the campaign clock: it never runs backwards.
	for i := 1; i < len(sink.lastSeen); i++ {
		if sink.lastSeen[i] < sink.lastSeen[i-1] {
			t.Fatalf("gap lastSeen went backwards: %d then %d", sink.lastSeen[i-1], sink.lastSeen[i])
		}
	}
}

// plainSink does not implement GapSink; a campaign with failures must not
// treat that as an error (gap reporting is opt-in).
func TestCampaignToleratesNonGapSinks(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 31, false)
	flaky := &flakyService{Service: svc, rng: rand.New(rand.NewSource(3)), failProb: 0.5}
	pts := GridLayout(svc.World().Profile().MeasureRect, 280, 5)
	camp := NewCampaign(flaky, svc.World().Projection(), pts)
	camp.RegisterAll(svc)
	camp.AddSink(&countingSink{})
	camp.RunSim(svc, 60) // must not panic
	if camp.Errors == 0 {
		t.Fatal("flaky service produced no errors")
	}
}
