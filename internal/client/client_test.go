package client

import (
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

func TestGridLayoutCoverage(t *testing.T) {
	rect := geo.NewRect(geo.Point{X: -1000, Y: -800}, geo.Point{X: 1000, Y: 800})
	pts := GridLayout(rect, 280, NumClients)
	if len(pts) != NumClients {
		t.Fatalf("got %d points, want %d", len(pts), NumClients)
	}
	for i, p := range pts {
		if !rect.Contains(p) {
			t.Errorf("point %d (%v) outside rect", i, p)
		}
	}
	// Distinct positions, spaced at least `spacing` apart on the grid.
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := geo.Dist(pts[i], pts[j]); d < 280-1e-9 {
				t.Fatalf("points %d and %d only %.0f m apart", i, j, d)
			}
		}
	}
}

func TestGridLayoutDegenerate(t *testing.T) {
	rect := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	if GridLayout(rect, 100, 0) != nil {
		t.Error("n=0 should return nil")
	}
	if GridLayout(rect, 0, 5) != nil {
		t.Error("spacing=0 should return nil")
	}
	// Tiny rect still yields points (clamped grid).
	pts := GridLayout(rect, 500, 4)
	if len(pts) == 0 {
		t.Error("tiny rect should still yield at least one point")
	}
}

// countingSink records rounds and observations for campaign tests.
type countingSink struct {
	observations int
	rounds       int
	lastTime     int64
}

func (c *countingSink) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	c.observations++
}
func (c *countingSink) EndRound(now int64) {
	c.rounds++
	c.lastTime = now
}

func newCampaignBackend(t testing.TB) (*api.Service, *Campaign) {
	t.Helper()
	svc := api.NewBackend(sim.Manhattan(), 5, false)
	p := svc.World().Profile()
	pts := GridLayout(p.MeasureRect, p.ClientSpacing, NumClients)
	camp := NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)
	return svc, camp
}

func TestCampaignRoundsAndSinks(t *testing.T) {
	svc, camp := newCampaignBackend(t)
	sink := &countingSink{}
	camp.AddSink(sink)
	camp.RunSim(svc, 300)
	if camp.Rounds != 60 {
		t.Errorf("Rounds = %d, want 60", camp.Rounds)
	}
	if sink.rounds != 60 {
		t.Errorf("sink rounds = %d", sink.rounds)
	}
	if sink.observations != 60*NumClients {
		t.Errorf("observations = %d, want %d", sink.observations, 60*NumClients)
	}
	if sink.lastTime != 300 {
		t.Errorf("lastTime = %d, want 300", sink.lastTime)
	}
	if camp.Errors != 0 {
		t.Errorf("Errors = %d", camp.Errors)
	}
}

func TestCampaignClientIDsAndLocations(t *testing.T) {
	svc, camp := newCampaignBackend(t)
	if len(camp.Clients) != NumClients {
		t.Fatalf("clients = %d", len(camp.Clients))
	}
	if camp.Clients[0].ID != "probe-00" || camp.Clients[42].ID != "probe-42" {
		t.Errorf("unexpected ids: %s, %s", camp.Clients[0].ID, camp.Clients[42].ID)
	}
	// Wire coordinates must round-trip to the plane positions.
	proj := svc.World().Projection()
	for _, cl := range camp.Clients {
		back := proj.ToPlane(cl.Loc)
		if geo.Dist(back, cl.Pos) > 0.1 {
			t.Fatalf("client %s: wire/plane mismatch %v vs %v", cl.ID, back, cl.Pos)
		}
	}
}

func TestCheckDeterminism(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 9, false)
	loc := svc.World().Projection().ToLatLng(geo.Point{X: 50, Y: 50})
	ok, err := CheckDeterminism(svc, svc, svc, loc, 10, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("co-located clients observed different data without jitter")
	}
}

func TestCheckDeterminismSeesJitterDivergence(t *testing.T) {
	// With the April bug enabled, co-located clients eventually diverge;
	// run long enough that a jitter event almost surely appears during a
	// surge-transition interval.
	svc := api.NewBackend(sim.SanFrancisco(), 11, true)
	svc.RunUntil(7 * 3600) // reach a surging morning
	loc := svc.World().Projection().ToLatLng(geo.Point{X: 1000, Y: 1000})
	ok, err := CheckDeterminism(svc, svc, svc, loc, 20, 4*3600)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("expected jitter to break response determinism in April mode")
	}
}

func TestMeasureVisibilityRadius(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 13, false)
	svc.RunUntil(12 * 3600) // noon: dense supply, small radius
	w := svc.World()
	res, err := MeasureVisibilityRadius(svc, svc, svc, w.Projection(), geo.Point{}, core.UberX)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius <= 0 {
		t.Fatalf("radius = %v, want positive", res.Radius)
	}
	// The paper measured ~247 m in midtown; with our densities anything
	// in 80-900 m is a sane visibility radius.
	if res.Radius < 80 || res.Radius > 900 {
		t.Errorf("radius = %.0f m, outside plausible range", res.Radius)
	}
	if res.Steps == 0 {
		t.Error("experiment ended before any walking")
	}
}

func TestVisibilityRadiusLargerAtNight(t *testing.T) {
	day := api.NewBackend(sim.Manhattan(), 15, false)
	day.RunUntil(13 * 3600)
	night := api.NewBackend(sim.Manhattan(), 15, false)
	night.RunUntil(4 * 3600)

	resDay, err := MeasureVisibilityRadius(day, day, day, day.World().Projection(), geo.Point{}, core.UberX)
	if err != nil {
		t.Fatal(err)
	}
	resNight, err := MeasureVisibilityRadius(night, night, night, night.World().Projection(), geo.Point{}, core.UberX)
	if err != nil {
		t.Fatal(err)
	}
	if resNight.Radius <= resDay.Radius {
		t.Errorf("night radius (%.0f) should exceed day radius (%.0f): fewer cars at 4am",
			resNight.Radius, resDay.Radius)
	}
}
