package client

import (
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

// TestCampaignOverHTTPMatchesInProcess runs the same rounds through the
// in-process service and through the HTTP wire and verifies the two
// campaigns observe identical data — the HTTP layer must be a pure shell.
func TestCampaignOverHTTPMatchesInProcess(t *testing.T) {
	profile := sim.Manhattan()
	// Two identical backends (the campaign's queries don't perturb the
	// simulation, but sharing one backend would interleave rate-limit
	// state; identical seeds keep the worlds in lockstep).
	svcA := api.NewBackend(profile, 12345, true)
	svcB := api.NewBackend(profile, 12345, true)
	ts := httptest.NewServer(api.NewServer(svcB))
	defer ts.Close()
	remote := api.NewRemote(ts.URL, ts.Client())

	pts := GridLayout(profile.MeasureRect, profile.ClientSpacing, 10)
	inproc := NewCampaign(svcA, svcA.World().Projection(), pts)
	inproc.RegisterAll(svcA)
	wire := NewCampaign(remote, geo.NewProjection(profile.Origin), pts)
	for _, cl := range wire.Clients {
		if err := remote.Register(cl.ID); err != nil {
			t.Fatal(err)
		}
	}

	recA := &recordingSink{}
	recB := &recordingSink{}
	inproc.AddSink(recA)
	wire.AddSink(recB)

	for round := 0; round < 24; round++ {
		svcA.Step()
		svcB.Step()
		inproc.Round()
		wire.Round()
	}
	if inproc.Errors != 0 || wire.Errors != 0 {
		t.Fatalf("errors: inproc %d, wire %d", inproc.Errors, wire.Errors)
	}
	if len(recA.rows) != len(recB.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(recA.rows), len(recB.rows))
	}
	for i := range recA.rows {
		a, b := recA.rows[i], recB.rows[i]
		// The wire carries coordinates at 7 decimal places (~1 cm), so
		// EWTs can differ by microseconds; everything else is exact.
		ewtClose := a.ewt-b.ewt < 0.01 && b.ewt-a.ewt < 0.01
		a.ewt, b.ewt = 0, 0
		if a != b || !ewtClose {
			t.Fatalf("row %d differs:\n in-process: %+v\n wire:       %+v",
				i, recA.rows[i], recB.rows[i])
		}
	}
}

// recordingSink flattens observations into comparable rows.
type recordingSink struct {
	rows []obsRow
}

type obsRow struct {
	client  int
	time    int64
	surge   float64
	ewt     float64
	nCars   int
	firstID string
}

func (r *recordingSink) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	st := resp.Status(core.UberX)
	row := obsRow{client: clientIdx, time: resp.Time}
	if st != nil {
		row.surge = st.Surge
		row.ewt = st.EWTSeconds
		row.nCars = len(st.Cars)
		if len(st.Cars) > 0 {
			row.firstID = st.Cars[0].ID
		}
	}
	r.rows = append(r.rows, row)
}

func (r *recordingSink) EndRound(now int64) {}
