package client

import (
	"repro/internal/core"
	"repro/internal/geo"
)

// CalibrationResult summarizes the §3.4 calibration experiments at one
// location.
type CalibrationResult struct {
	// Deterministic reports whether co-located clients always observed
	// exactly the same cars, multipliers, and EWTs.
	Deterministic bool
	// Radius is the measured visibility radius in meters (the four-walker
	// experiment).
	Radius float64
	// Steps is how many 20-meter walk steps the experiment took.
	Steps int
}

// CheckDeterminism places nClients at loc for the given duration and
// verifies they all receive identical responses each round — the paper's
// first calibration finding ("the data received from pingClient is
// deterministic"). The backend is advanced via b.
func CheckDeterminism(b Stepper, svc core.Service, reg Registrar, loc geo.LatLng, nClients int, duration int64) (bool, error) {
	ids := make([]string, nClients)
	for i := range ids {
		ids[i] = clientName("det", i)
		if err := reg.Register(ids[i]); err != nil {
			return false, err
		}
	}
	end := b.Now() + duration
	for b.Now() < end {
		b.Step()
		var ref *core.PingResponse
		for _, id := range ids {
			resp, err := svc.PingClient(id, loc)
			if err != nil {
				return false, err
			}
			if ref == nil {
				ref = resp
				continue
			}
			if !sameResponse(ref, resp) {
				return false, nil
			}
		}
	}
	return true, nil
}

// sameResponse compares the car IDs, EWTs, and surge multipliers of two
// responses. Surge is compared per the February datastream semantics
// (jitter, when enabled, makes client streams diverge — which is exactly
// what this check is designed to surface).
func sameResponse(a, b *core.PingResponse) bool {
	if len(a.Types) != len(b.Types) {
		return false
	}
	for i := range a.Types {
		ta, tb := &a.Types[i], &b.Types[i]
		if ta.Type != tb.Type || ta.Surge != tb.Surge || ta.EWTSeconds != tb.EWTSeconds {
			return false
		}
		if len(ta.Cars) != len(tb.Cars) {
			return false
		}
		for j := range ta.Cars {
			if ta.Cars[j].ID != tb.Cars[j].ID {
				return false
			}
		}
	}
	return true
}

// MeasureVisibilityRadius runs the four-walker experiment of §3.4: four
// clients start at the same point and walk 20 meters NE, NW, SE, and SW
// respectively every 5 seconds; the experiment halts when the four
// clients' visible-car sets (for vt) have an empty intersection. The
// radius is then 0.1768 × ΣD where D are the walkers' distances from the
// start (the paper's 45-45-90 triangle geometry).
func MeasureVisibilityRadius(b Stepper, svc core.Service, reg Registrar, proj *geo.Projection, start geo.Point, vt core.VehicleType) (CalibrationResult, error) {
	const stepMeters = 20
	diag := stepMeters / 1.41421356237 // per-axis component of a 20 m diagonal step
	dirs := [4]geo.Point{
		{X: diag, Y: diag},   // NE
		{X: -diag, Y: diag},  // NW
		{X: diag, Y: -diag},  // SE
		{X: -diag, Y: -diag}, // SW
	}
	ids := [4]string{}
	pos := [4]geo.Point{}
	for i := range ids {
		ids[i] = clientName("walk", i)
		if err := reg.Register(ids[i]); err != nil {
			return CalibrationResult{}, err
		}
		pos[i] = start
	}

	res := CalibrationResult{}
	for step := 0; ; step++ {
		b.Step()
		// Intersect the four visible-car ID sets.
		var inter map[string]bool
		for i := range ids {
			resp, err := svc.PingClient(ids[i], proj.ToLatLng(pos[i]))
			if err != nil {
				return res, err
			}
			seen := make(map[string]bool)
			if st := resp.Status(vt); st != nil {
				for _, car := range st.Cars {
					seen[car.ID] = true
				}
			}
			if inter == nil {
				inter = seen
				continue
			}
			for id := range inter {
				if !seen[id] {
					delete(inter, id)
				}
			}
		}
		if len(inter) == 0 {
			var sumD float64
			for i := range pos {
				sumD += geo.Dist(start, pos[i])
			}
			res.Radius = 0.1768 * sumD
			res.Steps = step
			return res, nil
		}
		for i := range pos {
			pos[i] = pos[i].Add(dirs[i])
		}
		if step > 500 {
			// 10 km of walking without separation: something is wrong.
			res.Radius = -1
			res.Steps = step
			return res, nil
		}
	}
}

func clientName(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}
