package strategy

import (
	"math"
	"testing"

	"repro/internal/api"
	"repro/internal/geo"
	"repro/internal/sim"
)

func TestNearestOnSegment(t *testing.T) {
	a, b := geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}
	if got := nearestOnSegment(a, b, geo.Point{X: 5, Y: 7}); got != (geo.Point{X: 5, Y: 0}) {
		t.Errorf("projection = %v", got)
	}
	if got := nearestOnSegment(a, b, geo.Point{X: -3, Y: 2}); got != a {
		t.Errorf("clamp to a: %v", got)
	}
	if got := nearestOnSegment(a, b, geo.Point{X: 30, Y: 2}); got != b {
		t.Errorf("clamp to b: %v", got)
	}
	if got := nearestOnSegment(a, a, geo.Point{X: 3, Y: 3}); got != a {
		t.Errorf("degenerate segment: %v", got)
	}
}

func TestNearestOnPolygon(t *testing.T) {
	pg := geo.RectPolygon(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100}))
	got := nearestOnPolygon(pg, geo.Point{X: -10, Y: 50})
	if got != (geo.Point{X: 0, Y: 50}) {
		t.Errorf("nearest = %v, want (0,50)", got)
	}
	got = nearestOnPolygon(pg, geo.Point{X: 150, Y: 150})
	if got != (geo.Point{X: 100, Y: 100}) {
		t.Errorf("nearest = %v, want corner", got)
	}
}

func TestEntryPointInsideArea(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 3, false)
	svc.Register("walker")
	ad := NewAdvisor(svc, "walker", profile)
	pos := ad.Areas[0].Centroid()
	for a := 1; a < len(ad.Areas); a++ {
		ep := ad.entryPoint(pos, a)
		if !ad.Areas[a].Contains(ep) {
			t.Errorf("entry point %v not inside area %d", ep, a)
		}
	}
	// A position already inside the target area maps to itself.
	if got := ad.entryPoint(pos, 0); got != pos {
		t.Errorf("entryPoint inside own area = %v, want %v", got, pos)
	}
}

func TestAdviseShape(t *testing.T) {
	profile := sim.SanFrancisco()
	svc := api.NewBackend(profile, 5, false)
	svc.Register("walker")
	svc.RunUntil(8 * 3600)
	ad := NewAdvisor(svc, "walker", profile)

	pos := geo.Point{X: 100, Y: 100} // near the area crossing point
	adv, err := ad.Advise(pos)
	if err != nil {
		t.Fatal(err)
	}
	if adv.CurrentArea < 0 {
		t.Error("current area unresolved")
	}
	if adv.CurrentSurge < 1 {
		t.Errorf("current surge = %v", adv.CurrentSurge)
	}
	if len(adv.Options) != 3 {
		t.Fatalf("options = %d, want 3 (other areas)", len(adv.Options))
	}
	for _, o := range adv.Options {
		if o.WalkSeconds < 0 || o.EWTSeconds <= 0 || o.Surge < 1 {
			t.Errorf("bad option %+v", o)
		}
		if o.Feasible && (o.Surge >= adv.CurrentSurge || o.WalkSeconds > o.EWTSeconds) {
			t.Errorf("option marked feasible but is not: %+v", o)
		}
	}
	if adv.Best != nil {
		if !adv.Best.Feasible {
			t.Error("Best must be feasible")
		}
		if adv.Savings() <= 0 {
			t.Errorf("Savings = %v, want > 0 when Best exists", adv.Savings())
		}
	} else if adv.Savings() != 0 {
		t.Errorf("Savings = %v without Best", adv.Savings())
	}
}

func TestStrategyFindsSavingsUnderDifferentialSurge(t *testing.T) {
	if testing.Short() {
		t.Skip("long scan")
	}
	// Scan a day of SF from a boundary-adjacent position; with areas
	// surging independently, the strategy must find savings at least
	// occasionally, and never recommend an infeasible option.
	profile := sim.SanFrancisco()
	svc := api.NewBackend(profile, 7, false)
	svc.Register("walker")
	ad := NewAdvisor(svc, "walker", profile)
	// Near SF's area cross point (the UCSF corner: SplitX/SplitY place it
	// at roughly (-770, -980) in the measurement rect).
	pos := geo.Point{X: -700, Y: -900}

	feasible, total := 0, 0
	var totalSavings float64
	for svc.Now() < 20*3600 {
		svc.RunUntil(svc.Now()/300*300 + 300 + 150)
		adv, err := ad.Advise(pos)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if adv.Best != nil {
			feasible++
			totalSavings += adv.Savings()
			if adv.Best.Surge >= adv.CurrentSurge {
				t.Fatalf("recommended a worse price: %+v vs %v", adv.Best, adv.CurrentSurge)
			}
		}
	}
	if total == 0 {
		t.Fatal("no scans")
	}
	frac := float64(feasible) / float64(total)
	t.Logf("feasible %d/%d (%.1f%%), mean savings %.2f", feasible, total, frac*100,
		totalSavings/math.Max(1, float64(feasible)))
	if feasible == 0 {
		t.Error("strategy never found a cheaper adjacent area in 20 SF hours")
	}
	// Sanity: this should be an occasional win, not a constant one.
	if frac > 0.9 {
		t.Errorf("feasible fraction %.2f implausibly high", frac)
	}
}
