package strategy

import (
	"sort"

	"repro/internal/measure"
)

// WaitOutResult evaluates the paper's §5.2 takeaway — "savvy Uber
// passengers should wait-out surges rather than pay higher prices" — on a
// recorded multiplier stream: at every surge onset, compare the onset
// multiplier with the multiplier waitSeconds later.
type WaitOutResult struct {
	// Cases is the number of surge onsets evaluated.
	Cases int
	// Improved counts onsets where waiting yielded a strictly lower
	// multiplier; Cleared counts those where surge was fully gone.
	Improved int
	Cleared  int
	// MeanSaving is the average multiplier reduction across all cases
	// (zero or negative cases included).
	MeanSaving float64
	// MeanOnset and MeanAfter are the average multipliers at onset and
	// after waiting.
	MeanOnset float64
	MeanAfter float64
}

// ImprovedFrac returns the fraction of onsets where waiting helped.
func (r WaitOutResult) ImprovedFrac() float64 {
	if r.Cases == 0 {
		return 0
	}
	return float64(r.Improved) / float64(r.Cases)
}

// ClearedFrac returns the fraction of onsets where surge ended entirely.
func (r WaitOutResult) ClearedFrac() float64 {
	if r.Cases == 0 {
		return 0
	}
	return float64(r.Cleared) / float64(r.Cases)
}

// WaitOut replays a change log (API stream semantics: no jitter) and
// evaluates the waiting rule at every surge onset in [start, end).
func WaitOut(log []measure.SurgeChange, initial float64, start, end, waitSeconds int64) WaitOutResult {
	var res WaitOutResult
	var sumSave, sumOnset, sumAfter float64
	cur := initial
	for _, c := range log {
		if c.Time < start || c.Time >= end {
			cur = c.To
			continue
		}
		onset := cur <= 1 && c.To > 1
		cur = c.To
		if !onset {
			continue
		}
		at := c.Time + waitSeconds
		if at >= end {
			continue
		}
		after := valueAt(log, initial, at)
		res.Cases++
		sumOnset += c.To
		sumAfter += after
		sumSave += c.To - after
		if after < c.To {
			res.Improved++
		}
		if after <= 1 {
			res.Cleared++
		}
	}
	if res.Cases > 0 {
		res.MeanSaving = sumSave / float64(res.Cases)
		res.MeanOnset = sumOnset / float64(res.Cases)
		res.MeanAfter = sumAfter / float64(res.Cases)
	}
	return res
}

// valueAt reconstructs the stream's value at time t.
func valueAt(log []measure.SurgeChange, initial float64, t int64) float64 {
	v := initial
	for j := 0; j < len(log); j++ {
		if log[j].Time > t {
			break
		}
		v = log[j].To
	}
	return v
}

// WaitCurve sweeps waiting times and returns the improved-fraction for
// each, so callers can pick the knee of the curve (the paper's "wait 5
// minutes" heuristic corresponds to one surge-clock interval).
func WaitCurve(log []measure.SurgeChange, initial float64, start, end int64, waits []int64) map[int64]WaitOutResult {
	out := make(map[int64]WaitOutResult, len(waits))
	ws := append([]int64(nil), waits...)
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	for _, w := range ws {
		out[w] = WaitOut(log, initial, start, end, w)
	}
	return out
}
