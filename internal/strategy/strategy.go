// Package strategy implements §6's surge-avoidance technique: since
// short-term surge cannot be forecast, exploit the surge-area partition
// instead. Query the price and time APIs for adjacent surge areas; if
// some area has a lower multiplier and the walk to it takes no longer
// than the car's EWT there, the passenger can book immediately at the
// lower price and walk to the pickup point before the car arrives.
package strategy

import (
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

// Option is one candidate pickup relocation.
type Option struct {
	Area        int
	Target      geo.Point // where to walk (just inside the adjacent area)
	Surge       float64
	EWTSeconds  float64
	WalkSeconds float64
	// Feasible: cheaper multiplier and reachable before the car arrives.
	Feasible bool
}

// Advice is the outcome of one strategy query.
type Advice struct {
	CurrentArea  int
	CurrentSurge float64
	Options      []Option
	// Best is the feasible option with the lowest multiplier (ties:
	// shortest walk); nil when staying put is optimal.
	Best *Option
}

// Savings returns the multiplier reduction of the best option (0 if none).
func (a *Advice) Savings() float64 {
	if a.Best == nil {
		return 0
	}
	return a.CurrentSurge - a.Best.Surge
}

// Advisor evaluates the strategy against a backend through its public
// API, exactly as a passenger-facing app would (§6 assumes API data:
// 5-minute updates, no jitter, but live EWTs).
type Advisor struct {
	Svc      core.Service
	ClientID string
	Proj     *geo.Projection
	Areas    []geo.Polygon

	// EntryMargin is how far inside the adjacent area the walk target is
	// placed (pickup points on the exact boundary are ambiguous).
	EntryMargin float64
}

// NewAdvisor builds an advisor; register the account on the backend
// first.
func NewAdvisor(svc core.Service, clientID string, profile *sim.CityProfile) *Advisor {
	return &Advisor{
		Svc:         svc,
		ClientID:    clientID,
		Proj:        geo.NewProjection(profile.Origin),
		Areas:       profile.SurgeAreas(),
		EntryMargin: 30,
	}
}

// Advise evaluates every adjacent surge area from pos.
func (ad *Advisor) Advise(pos geo.Point) (*Advice, error) {
	curArea := sim.AreaOf(ad.Areas, pos)
	curSurge, _, err := ad.query(pos)
	if err != nil {
		return nil, err
	}
	adv := &Advice{CurrentArea: curArea, CurrentSurge: curSurge}
	for a := range ad.Areas {
		if a == curArea {
			continue
		}
		target := ad.entryPoint(pos, a)
		surge, ewt, err := ad.query(target)
		if err != nil {
			return nil, err
		}
		walk := geo.WalkingTime(pos, target)
		opt := Option{
			Area:        a,
			Target:      target,
			Surge:       surge,
			EWTSeconds:  ewt,
			WalkSeconds: walk,
			Feasible:    surge < curSurge && walk <= ewt,
		}
		adv.Options = append(adv.Options, opt)
		if opt.Feasible && (adv.Best == nil ||
			opt.Surge < adv.Best.Surge ||
			(opt.Surge == adv.Best.Surge && opt.WalkSeconds < adv.Best.WalkSeconds)) {
			o := opt
			adv.Best = &o
		}
	}
	return adv, nil
}

// query fetches the UberX multiplier and EWT at a plane position via the
// public API.
func (ad *Advisor) query(pos geo.Point) (surge, ewt float64, err error) {
	loc := ad.Proj.ToLatLng(pos)
	prices, err := ad.Svc.EstimatePrice(ad.ClientID, loc)
	if err != nil {
		return 0, 0, err
	}
	surge = 1
	for _, p := range prices {
		if p.TypeName == core.UberX.String() {
			surge = p.Surge
			break
		}
	}
	times, err := ad.Svc.EstimateTime(ad.ClientID, loc)
	if err != nil {
		return 0, 0, err
	}
	ewt = math.MaxFloat64
	for _, t := range times {
		if t.TypeName == core.UberX.String() {
			ewt = t.EWTSeconds
			break
		}
	}
	return surge, ewt, nil
}

// entryPoint returns the nearest point to pos that lies inside area,
// nudged EntryMargin meters toward the area centroid.
func (ad *Advisor) entryPoint(pos geo.Point, area int) geo.Point {
	pg := ad.Areas[area]
	if pg.Contains(pos) {
		return pos
	}
	nearest := nearestOnPolygon(pg, pos)
	c := pg.Centroid()
	v := c.Sub(nearest)
	n := v.Norm()
	if n > 0 {
		nearest = nearest.Add(v.Scale(math.Min(ad.EntryMargin, n) / n))
	}
	return nearest
}

// nearestOnPolygon projects pos onto the polygon boundary.
func nearestOnPolygon(pg geo.Polygon, pos geo.Point) geo.Point {
	best := pg.Vertices[0]
	bestD := math.MaxFloat64
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		p := nearestOnSegment(a, b, pos)
		if d := geo.Dist(p, pos); d < bestD {
			bestD = d
			best = p
		}
	}
	return best
}

// nearestOnSegment projects pos onto segment ab.
func nearestOnSegment(a, b, pos geo.Point) geo.Point {
	ab := b.Sub(a)
	l2 := ab.X*ab.X + ab.Y*ab.Y
	if l2 == 0 {
		return a
	}
	t := ((pos.X-a.X)*ab.X + (pos.Y-a.Y)*ab.Y) / l2
	t = math.Max(0, math.Min(1, t))
	return a.Add(ab.Scale(t))
}
