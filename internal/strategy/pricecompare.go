// Price comparison across ride services — the OpenStreetCab scenario the
// paper's §6 closes on: once two services expose price and time APIs over
// the same streets, a client can query both and book the cheaper one.
// PriceComparison drives any number of core.Service backends (an Uber
// world, a taxi replayer, a second simulated fleet) through their public
// estimate endpoints, exactly as a comparison app would.
package strategy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
)

// ServiceEntry is one backend the comparison client queries.
type ServiceEntry struct {
	Name     string
	Svc      core.Service
	ClientID string
	// Product selects which of the backend's products to quote.
	Product core.VehicleType
}

// Quote is one service's answer for a pickup location.
type Quote struct {
	Service    string
	Product    string
	USD        float64 // midpoint of the low/high estimate band
	Surge      float64
	EWTSeconds float64
}

// Comparison is the outcome of one query round: all quotes plus the
// winner indices (-1 when no service answered).
type Comparison struct {
	Quotes   []Quote
	Cheapest int // lowest USD; ties go to the earlier entry
	Fastest  int // lowest EWT; ties go to the earlier entry
}

// CheapestQuote returns the winning quote, or nil when none.
func (c *Comparison) CheapestQuote() *Quote {
	if c.Cheapest < 0 {
		return nil
	}
	return &c.Quotes[c.Cheapest]
}

// CheapestTied reports whether at least two services quoted exactly the
// winning price — a round no single service actually won. Scoreboards
// should count such rounds as ties rather than crediting the entry-order
// winner Cheapest falls back to.
func (c *Comparison) CheapestTied() bool {
	if c.Cheapest < 0 {
		return false
	}
	best := c.Quotes[c.Cheapest].USD
	for i, q := range c.Quotes {
		if i != c.Cheapest && q.USD == best {
			return true
		}
	}
	return false
}

// Savings returns how much the cheapest quote undercuts the next-best
// one (0 with fewer than two quotes).
func (c *Comparison) Savings() float64 {
	if c.Cheapest < 0 || len(c.Quotes) < 2 {
		return 0
	}
	best := c.Quotes[c.Cheapest].USD
	runnerUp := 0.0
	seen := false
	for i, q := range c.Quotes {
		if i == c.Cheapest {
			continue
		}
		if !seen || q.USD < runnerUp {
			runnerUp, seen = q.USD, true
		}
	}
	if !seen {
		return 0
	}
	return runnerUp - best
}

// PriceComparison queries every registered service for the same pickup.
type PriceComparison struct {
	Services []ServiceEntry
}

// Compare fetches price and time estimates from every service at loc.
// A service that errors or does not quote the requested product is
// skipped (comparison shopping degrades, it doesn't fail); an error is
// returned only when no service produced a quote.
func (pc *PriceComparison) Compare(loc geo.LatLng) (*Comparison, error) {
	c := &Comparison{Cheapest: -1, Fastest: -1}
	var firstErr error
	for _, e := range pc.Services {
		q, err := quoteOne(e, loc)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.Quotes = append(c.Quotes, q)
		i := len(c.Quotes) - 1
		if c.Cheapest < 0 || q.USD < c.Quotes[c.Cheapest].USD {
			c.Cheapest = i
		}
		if c.Fastest < 0 || q.EWTSeconds < c.Quotes[c.Fastest].EWTSeconds {
			c.Fastest = i
		}
	}
	if len(c.Quotes) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("no service quoted the request")
	}
	return c, nil
}

// quoteOne runs one service's price + time round trip.
func quoteOne(e ServiceEntry, loc geo.LatLng) (Quote, error) {
	product := e.Product.String()
	prices, err := e.Svc.EstimatePrice(e.ClientID, loc)
	if err != nil {
		return Quote{}, fmt.Errorf("%s: price: %w", e.Name, err)
	}
	q := Quote{Service: e.Name, Product: product}
	found := false
	for _, p := range prices {
		if p.TypeName == product {
			q.USD = (p.LowUSD + p.HighUSD) / 2
			q.Surge = p.Surge
			found = true
			break
		}
	}
	if !found {
		return Quote{}, fmt.Errorf("%s: no %s price quote", e.Name, product)
	}
	times, err := e.Svc.EstimateTime(e.ClientID, loc)
	if err != nil {
		return Quote{}, fmt.Errorf("%s: time: %w", e.Name, err)
	}
	found = false
	for _, t := range times {
		if t.TypeName == product {
			q.EWTSeconds = t.EWTSeconds
			found = true
			break
		}
	}
	if !found {
		return Quote{}, fmt.Errorf("%s: no %s time quote", e.Name, product)
	}
	return q, nil
}
