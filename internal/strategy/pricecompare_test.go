package strategy

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// fakeService answers canned estimates for one product.
type fakeService struct {
	product core.VehicleType
	low     float64
	high    float64
	surge   float64
	ewt     float64
	err     error
}

func (f *fakeService) Register(string) error { return nil }

func (f *fakeService) Now() int64 { return 0 }

func (f *fakeService) PingClient(string, geo.LatLng) (*core.PingResponse, error) {
	return &core.PingResponse{}, nil
}

func (f *fakeService) EstimatePrice(string, geo.LatLng) ([]core.PriceEstimate, error) {
	if f.err != nil {
		return nil, f.err
	}
	return []core.PriceEstimate{{
		TypeName: f.product.String(), Surge: f.surge,
		LowUSD: f.low, HighUSD: f.high, Currency: "USD",
	}}, nil
}

func (f *fakeService) EstimateTime(string, geo.LatLng) ([]core.TimeEstimate, error) {
	if f.err != nil {
		return nil, f.err
	}
	return []core.TimeEstimate{{TypeName: f.product.String(), EWTSeconds: f.ewt}}, nil
}

func TestCompareCheapestAndFastest(t *testing.T) {
	uber := &fakeService{product: core.UberX, low: 8, high: 12, surge: 1.5, ewt: 120}
	taxi := &fakeService{product: core.UberT, low: 7, high: 11, surge: 1, ewt: 300}
	pc := &PriceComparison{Services: []ServiceEntry{
		{Name: "uber", Svc: uber, ClientID: "c1", Product: core.UberX},
		{Name: "taxi", Svc: taxi, ClientID: "c2", Product: core.UberT},
	}}
	c, err := pc.Compare(geo.LatLng{Lat: 40.75, Lng: -73.98})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Quotes) != 2 {
		t.Fatalf("got %d quotes, want 2", len(c.Quotes))
	}
	best := c.CheapestQuote()
	if best == nil || best.Service != "taxi" {
		t.Fatalf("cheapest = %+v, want taxi at $9", best)
	}
	if best.USD != 9 {
		t.Fatalf("cheapest USD %v, want midpoint 9", best.USD)
	}
	if c.Fastest != 0 || c.Quotes[c.Fastest].Service != "uber" {
		t.Fatalf("fastest = %+v, want uber at 120s", c.Quotes[c.Fastest])
	}
	if got := c.Savings(); got != 1 {
		t.Fatalf("savings %v, want 1 (uber mid 10 − taxi mid 9)", got)
	}
}

func TestCompareTieGoesToFirst(t *testing.T) {
	a := &fakeService{product: core.UberX, low: 10, high: 10, surge: 1, ewt: 60}
	b := &fakeService{product: core.UberT, low: 10, high: 10, surge: 1, ewt: 60}
	pc := &PriceComparison{Services: []ServiceEntry{
		{Name: "first", Svc: a, Product: core.UberX},
		{Name: "second", Svc: b, Product: core.UberT},
	}}
	c, err := pc.Compare(geo.LatLng{})
	if err != nil {
		t.Fatal(err)
	}
	if c.CheapestQuote().Service != "first" || c.Quotes[c.Fastest].Service != "first" {
		t.Fatal("ties must go to the earlier entry")
	}
	if c.Savings() != 0 {
		t.Fatalf("savings on a tie = %v, want 0", c.Savings())
	}
}

func TestCompareSkipsFailingService(t *testing.T) {
	down := &fakeService{product: core.UberX, err: errors.New("backend down")}
	up := &fakeService{product: core.UberT, low: 6, high: 8, surge: 1, ewt: 240}
	pc := &PriceComparison{Services: []ServiceEntry{
		{Name: "down", Svc: down, Product: core.UberX},
		{Name: "up", Svc: up, Product: core.UberT},
	}}
	c, err := pc.Compare(geo.LatLng{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Quotes) != 1 || c.CheapestQuote().Service != "up" {
		t.Fatalf("expected the healthy service to win alone, got %+v", c.Quotes)
	}
	if c.Savings() != 0 {
		t.Fatal("savings with one quote must be 0")
	}
	// All services down: the first error surfaces.
	pc.Services = pc.Services[:1]
	if _, err := pc.Compare(geo.LatLng{}); err == nil {
		t.Fatal("expected an error with every service down")
	}
}
