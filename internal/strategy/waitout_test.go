package strategy

import (
	"math"
	"testing"

	"repro/internal/api"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
)

func TestWaitOutSyntheticLog(t *testing.T) {
	// Surge 1.0 -> 2.0 at t=300, back to 1.0 at t=600 (a 5-minute blip),
	// then 1.0 -> 1.5 at t=1200 lasting through t=2400.
	log := []measure.SurgeChange{
		{Time: 300, From: 1.0, To: 2.0},
		{Time: 600, From: 2.0, To: 1.0},
		{Time: 1200, From: 1.0, To: 1.5},
	}
	res := WaitOut(log, 1.0, 0, 2400, 300)
	if res.Cases != 2 {
		t.Fatalf("cases = %d, want 2", res.Cases)
	}
	// Onset 1: waiting 300 s lands exactly on the drop to 1.0 (change at
	// 600 applies at 600). Onset 2: still 1.5.
	if res.Improved != 1 || res.Cleared != 1 {
		t.Errorf("improved/cleared = %d/%d, want 1/1", res.Improved, res.Cleared)
	}
	wantMeanSave := ((2.0 - 1.0) + (1.5 - 1.5)) / 2
	if math.Abs(res.MeanSaving-wantMeanSave) > 1e-9 {
		t.Errorf("mean saving = %v, want %v", res.MeanSaving, wantMeanSave)
	}
	if res.ImprovedFrac() != 0.5 || res.ClearedFrac() != 0.5 {
		t.Errorf("fracs = %v/%v", res.ImprovedFrac(), res.ClearedFrac())
	}
}

func TestWaitOutNoSurges(t *testing.T) {
	res := WaitOut(nil, 1.0, 0, 1000, 300)
	if res.Cases != 0 || res.ImprovedFrac() != 0 || res.ClearedFrac() != 0 {
		t.Errorf("empty log produced cases: %+v", res)
	}
}

func TestWaitOutOnsetNearEndSkipped(t *testing.T) {
	log := []measure.SurgeChange{{Time: 900, From: 1.0, To: 2.0}}
	// Waiting would look past the window end: the case is skipped.
	res := WaitOut(log, 1.0, 0, 1000, 300)
	if res.Cases != 0 {
		t.Errorf("cases = %d, want 0", res.Cases)
	}
}

func TestWaitOutOnRealStream(t *testing.T) {
	// On a real SF API stream, waiting one 5-minute interval from onset
	// must beat paying immediately a substantial fraction of the time —
	// the paper's "majority of surges are short-lived" argument.
	svc := api.NewBackend(sim.SanFrancisco(), 17, false)
	svc.Register("waiter")
	loc := svc.World().Projection().ToLatLng(geo.Point{X: 500, Y: -500})
	probe := measure.NewAPIProbe(svc, "waiter", loc)
	end := int64(20 * 3600)
	for svc.Now() < end {
		svc.Step()
		probe.Poll()
	}
	res := WaitOut(probe.Log, 1, 0, end, 300)
	if res.Cases < 10 {
		t.Skipf("only %d onsets", res.Cases)
	}
	if res.ImprovedFrac() < 0.25 {
		t.Errorf("waiting helped only %.0f%% of the time; surges should be short-lived",
			res.ImprovedFrac()*100)
	}
	if res.MeanAfter >= res.MeanOnset {
		t.Errorf("waiting did not reduce the mean multiplier: %.2f -> %.2f",
			res.MeanOnset, res.MeanAfter)
	}

	// Longer waits clear more surges (monotone-ish curve).
	curve := WaitCurve(probe.Log, 1, 0, end, []int64{300, 900, 1800})
	if curve[1800].ClearedFrac() < curve[300].ClearedFrac() {
		t.Errorf("clearing fraction should not fall with longer waits: %v vs %v",
			curve[1800].ClearedFrac(), curve[300].ClearedFrac())
	}
}
