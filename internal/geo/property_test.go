package geo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestGridRandomOpsInvariants drives the grid through random operation
// sequences and checks its bookkeeping against a reference map.
func TestGridRandomOpsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(NewRect(Point{0, 0}, Point{1000, 1000}), 75)
		ref := make(map[int64]Point)
		for op := 0; op < 300; op++ {
			id := int64(rng.Intn(50))
			p := Point{rng.Float64() * 1200, rng.Float64()*1200 - 100} // may exceed bounds
			switch rng.Intn(3) {
			case 0:
				g.Insert(id, p)
				ref[id] = p
			case 1:
				g.Move(id, p)
				ref[id] = p // Move inserts when absent
			case 2:
				g.Remove(id)
				delete(ref, id)
			}
			if g.Len() != len(ref) {
				return false
			}
		}
		// Every reference point must be findable at its exact position.
		for id, p := range ref {
			got, ok := g.Position(id)
			if !ok || got != p {
				return false
			}
		}
		// KNearest over the full set matches brute force.
		want := bruteKNearest(ref, Point{500, 500}, 10)
		got := g.KNearest(Point{500, 500}, 10)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestKNearestIsPrefixProperty checks that KNearest(k) is a prefix of
// KNearest(k+1) for any point set.
func TestKNearestIsPrefixProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(NewRect(Point{0, 0}, Point{500, 500}), 50)
		for id := int64(0); id < 40; id++ {
			g.Insert(id, Point{rng.Float64() * 500, rng.Float64() * 500})
		}
		q := Point{rng.Float64() * 500, rng.Float64() * 500}
		a := g.KNearest(q, k)
		b := g.KNearest(q, k+1)
		if len(a) > len(b) {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPolygonContainsCentroidProperty: for convex (rectangular) polygons
// the centroid is always inside.
func TestPolygonContainsCentroidProperty(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		// Normalize into a non-degenerate rect.
		if x1 == x2 {
			x2 = x1 + 1
		}
		if y1 == y2 {
			y2 = y1 + 1
		}
		pg := RectPolygon(NewRect(Point{x1, y1}, Point{x2, y2}))
		return pg.Contains(pg.Centroid())
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(rng.Float64()*2000 - 1000)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
