package geo

import (
	"math"
	"math/rand"
	"testing"
)

// bruteAreaOf is the reference first-match linear scan (what sim.AreaOf
// does); the index must agree with it on every point.
func bruteAreaOf(areas []Polygon, p Point) int {
	for i, a := range areas {
		if a.Contains(p) {
			return i
		}
	}
	return -1
}

// randomPolygon draws a convex-ish ring around a random center: a
// triangle to hexagon with vertices at jittered angles, so test sets
// include slanted edges, not just the axis-aligned city partitions.
func randomPolygon(rng *rand.Rand) Polygon {
	cx := rng.Float64()*8000 - 1000
	cy := rng.Float64()*8000 - 1000
	n := 3 + rng.Intn(4)
	radius := 200 + rng.Float64()*1500
	var pg Polygon
	for i := 0; i < n; i++ {
		ang := (float64(i) + rng.Float64()*0.8) / float64(n) * 2 * math.Pi
		r := radius * (0.5 + rng.Float64()*0.5)
		pg.Vertices = append(pg.Vertices, Point{
			X: cx + r*math.Cos(ang),
			Y: cy + r*math.Sin(ang),
		})
	}
	return pg
}

func TestAreaIndexMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		nAreas := 1 + rng.Intn(6)
		areas := make([]Polygon, nAreas)
		for i := range areas {
			areas[i] = randomPolygon(rng)
		}
		ai := NewAreaIndex(areas, 150)
		for q := 0; q < 500; q++ {
			p := Point{X: rng.Float64()*11000 - 2000, Y: rng.Float64()*11000 - 2000}
			if got, want := ai.Find(p), bruteAreaOf(areas, p); got != want {
				t.Fatalf("trial %d: Find(%v) = %d, brute force = %d", trial, p, got, want)
			}
		}
		// Points pinned to raster cell boundaries force the mixed-cell /
		// cell-edge corners of the lookup.
		for q := 0; q < 200; q++ {
			cx := rng.Intn(ai.nx + 1)
			cy := rng.Intn(ai.ny + 1)
			p := Point{
				X: ai.bounds.Min.X + float64(cx)*ai.cellW,
				Y: ai.bounds.Min.Y + float64(cy)*ai.cellH,
			}
			if rng.Intn(2) == 0 {
				p.Y = ai.bounds.Min.Y + rng.Float64()*ai.bounds.Height()
			} else {
				p.X = ai.bounds.Min.X + rng.Float64()*ai.bounds.Width()
			}
			if got, want := ai.Find(p), bruteAreaOf(areas, p); got != want {
				t.Fatalf("trial %d: boundary Find(%v) = %d, brute force = %d", trial, p, got, want)
			}
		}
		// Points on polygon vertices and edge midpoints land in mixed
		// cells and must take the exact path.
		for _, pg := range areas {
			n := len(pg.Vertices)
			for i, v := range pg.Vertices {
				w := pg.Vertices[(i+1)%n]
				mid := Point{X: (v.X + w.X) / 2, Y: (v.Y + w.Y) / 2}
				for _, p := range []Point{v, mid} {
					if got, want := ai.Find(p), bruteAreaOf(areas, p); got != want {
						t.Fatalf("trial %d: edge Find(%v) = %d, brute force = %d", trial, p, got, want)
					}
				}
			}
		}
	}
}

func TestAreaIndexOverlappingFirstMatch(t *testing.T) {
	// Two overlapping rectangles: points in the overlap must report the
	// first polygon, as the linear scan does.
	a := RectPolygon(NewRect(Point{0, 0}, Point{1000, 1000}))
	b := RectPolygon(NewRect(Point{500, 500}, Point{1500, 1500}))
	ai := NewAreaIndex([]Polygon{a, b}, 100)
	cases := []struct {
		p    Point
		want int
	}{
		{Point{250, 250}, 0},
		{Point{750, 750}, 0}, // overlap: first match
		{Point{1250, 1250}, 1},
		{Point{1750, 1750}, -1},
		{Point{-10, 500}, -1},
	}
	for _, c := range cases {
		if got := ai.Find(c.p); got != c.want {
			t.Errorf("Find(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestAreaIndexEmpty(t *testing.T) {
	ai := NewAreaIndex(nil, 100)
	if got := ai.Find(Point{1, 2}); got != -1 {
		t.Fatalf("empty index Find = %d, want -1", got)
	}
}

func TestSegIntersectsRect(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{-5, 5}, Point{15, 5}, true},    // crosses horizontally
		{Point{5, 5}, Point{6, 6}, true},      // fully inside
		{Point{-5, -5}, Point{-1, -1}, false}, // stops short of the rect
		{Point{-5, 15}, Point{15, 15}, false},
		{Point{11, 0}, Point{11, 10}, false},
		{Point{0, 10}, Point{10, 10}, true}, // touches the top edge
		{Point{-5, 5}, Point{0, 5}, true},   // ends exactly on the left edge
	}
	for _, c := range cases {
		if got := segIntersectsRect(c.a, c.b, r); got != c.want {
			t.Errorf("segIntersectsRect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
