package geo

import (
	"math"
	"sort"
)

// Grid is a uniform-grid spatial index over moving points, used by the
// service to answer the "eight closest cars" query that drives pingClient.
//
// Cars churn constantly (every tick moves most of them), so the index must
// support cheap updates; a uniform grid with per-cell slices makes Move an
// O(1) amortized operation and KNearest an expanding ring search. The zero
// value is not usable; call NewGrid.
type Grid struct {
	bounds   Rect
	cellSize float64
	nx, ny   int
	cells    [][]int64       // cell index -> ids
	pos      map[int64]Point // id -> position
	cellOf   map[int64]int   // id -> cell index
}

// NewGrid creates an index covering bounds with square cells of the given
// size. Points outside bounds are clamped into the boundary cells, so the
// index tolerates cars that wander slightly outside the measurement region
// (as the paper's edge-filtering logic expects).
func NewGrid(bounds Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geo: NewGrid cellSize must be positive")
	}
	nx := int(math.Ceil(bounds.Width()/cellSize)) + 1
	ny := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]int64, nx*ny),
		pos:      make(map[int64]Point),
		cellOf:   make(map[int64]int),
	}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pos) }

func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Insert adds id at p. Inserting an existing id moves it.
func (g *Grid) Insert(id int64, p Point) {
	if _, ok := g.pos[id]; ok {
		g.Move(id, p)
		return
	}
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], id)
	g.pos[id] = p
	g.cellOf[id] = ci
}

// Remove deletes id from the index. Removing an absent id is a no-op.
func (g *Grid) Remove(id int64) {
	ci, ok := g.cellOf[id]
	if !ok {
		return
	}
	cell := g.cells[ci]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			g.cells[ci] = cell[:len(cell)-1]
			break
		}
	}
	delete(g.pos, id)
	delete(g.cellOf, id)
}

// Move updates id's position, relocating it between cells only when needed.
func (g *Grid) Move(id int64, p Point) {
	old, ok := g.cellOf[id]
	if !ok {
		g.Insert(id, p)
		return
	}
	ni := g.cellIndex(p)
	g.pos[id] = p
	if ni == old {
		return
	}
	cell := g.cells[old]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			g.cells[old] = cell[:len(cell)-1]
			break
		}
	}
	g.cells[ni] = append(g.cells[ni], id)
	g.cellOf[id] = ni
}

// IDPoint pairs an indexed id with a position, the unit of the batched
// mutation API below.
type IDPoint struct {
	ID  int64
	Pos Point
}

// MoveBatch applies Move for every entry in order. Phase-parallel
// callers (internal/sim's tick) buffer position updates per shard and
// commit them through here, so the grid sees one ordered serial write
// stream no matter how many workers produced the updates.
func (g *Grid) MoveBatch(ups []IDPoint) {
	for _, u := range ups {
		g.Move(u.ID, u.Pos)
	}
}

// InsertBatch applies Insert for every entry in order.
func (g *Grid) InsertBatch(ups []IDPoint) {
	for _, u := range ups {
		g.Insert(u.ID, u.Pos)
	}
}

// RemoveBatch applies Remove for every id in order.
func (g *Grid) RemoveBatch(ids []int64) {
	for _, id := range ids {
		g.Remove(id)
	}
}

// Position returns the stored position of id.
func (g *Grid) Position(id int64) (Point, bool) {
	p, ok := g.pos[id]
	return p, ok
}

// Neighbor is a k-nearest query result.
type Neighbor struct {
	ID   int64
	Pos  Point
	Dist float64
}

// KNearest returns up to k indexed points closest to from, sorted by
// ascending distance (ties broken by id for determinism). It expands the
// searched ring of cells until the nearest unexplored cell cannot contain a
// closer point than the current k-th best.
func (g *Grid) KNearest(from Point, k int) []Neighbor {
	if k <= 0 || len(g.pos) == 0 {
		return nil
	}
	cx := int((from.X - g.bounds.Min.X) / g.cellSize)
	cy := int((from.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}

	var found []Neighbor
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once we have k candidates, stop when the closest possible point in
		// this ring is farther than our current k-th distance. A point in
		// ring r is at least (r-1)*cellSize away from `from`.
		if len(found) >= k {
			minPossible := float64(ring-1) * g.cellSize
			sort.Slice(found, func(i, j int) bool {
				if found[i].Dist != found[j].Dist {
					return found[i].Dist < found[j].Dist
				}
				return found[i].ID < found[j].ID
			})
			if found[k-1].Dist <= minPossible {
				break
			}
		}
		added := false
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // interior already scanned in earlier rings
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
					continue
				}
				added = true
				for _, id := range g.cells[y*g.nx+x] {
					p := g.pos[id]
					found = append(found, Neighbor{ID: id, Pos: p, Dist: Dist(from, p)})
				}
			}
		}
		if !added && ring > 0 && len(found) >= k {
			break
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].Dist != found[j].Dist {
			return found[i].Dist < found[j].Dist
		}
		return found[i].ID < found[j].ID
	})
	if len(found) > k {
		found = found[:k]
	}
	return found
}

// Within returns the ids of all indexed points within radius of from.
func (g *Grid) Within(from Point, radius float64) []int64 {
	var out []int64
	minX := int((from.X - radius - g.bounds.Min.X) / g.cellSize)
	maxX := int((from.X + radius - g.bounds.Min.X) / g.cellSize)
	minY := int((from.Y - radius - g.bounds.Min.Y) / g.cellSize)
	maxY := int((from.Y + radius - g.bounds.Min.Y) / g.cellSize)
	for y := max(0, minY); y <= min(g.ny-1, maxY); y++ {
		for x := max(0, minX); x <= min(g.nx-1, maxX); x++ {
			for _, id := range g.cells[y*g.nx+x] {
				if Dist(from, g.pos[id]) <= radius {
					out = append(out, id)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Each calls fn for every indexed point. Iteration order is unspecified.
func (g *Grid) Each(fn func(id int64, p Point)) {
	for id, p := range g.pos {
		fn(id, p)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
