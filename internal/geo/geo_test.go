package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineKnownDistances(t *testing.T) {
	// Times Square to Grand Central is roughly 1.1 km.
	ts := LatLng{Lat: 40.7580, Lng: -73.9855}
	gc := LatLng{Lat: 40.7527, Lng: -73.9772}
	d := HaversineMeters(ts, gc)
	if d < 850 || d > 1200 {
		t.Errorf("Times Square - Grand Central = %.0f m, want ~900-1100 m", d)
	}
	if HaversineMeters(ts, ts) != 0 {
		t.Errorf("distance to self should be 0")
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := LatLng{Lat: math.Mod(lat1, 80), Lng: math.Mod(lng1, 180)}
		b := LatLng{Lat: math.Mod(lat2, 80), Lng: math.Mod(lng2, 180)}
		d1 := HaversineMeters(a, b)
		d2 := HaversineMeters(b, a)
		return almostEqual(d1, d2, 1e-6) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(LatLng{Lat: 40.7549, Lng: -73.9840})
	f := func(dx, dy float64) bool {
		p := Point{X: math.Mod(dx, 5000), Y: math.Mod(dy, 5000)}
		got := pr.ToPlane(pr.ToLatLng(p))
		return almostEqual(got.X, p.X, 0.01) && almostEqual(got.Y, p.Y, 0.01)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionAgreesWithHaversine(t *testing.T) {
	origin := LatLng{Lat: 37.7793, Lng: -122.4193} // downtown SF
	pr := NewProjection(origin)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000}
		ll := pr.ToLatLng(p)
		planar := p.Norm()
		sphere := HaversineMeters(origin, ll)
		if !almostEqual(planar, sphere, planar*0.002+0.5) {
			t.Fatalf("projection error too large: planar=%.2f sphere=%.2f", planar, sphere)
		}
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{100, 50})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{50, 25}, true},
		{Point{0, 0}, true},
		{Point{100, 50}, true},
		{Point{-1, 25}, false},
		{Point{50, 51}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	cl := r.Clamp(Point{150, -20})
	if cl != (Point{100, 0}) {
		t.Errorf("Clamp = %v, want (100,0)", cl)
	}
}

func TestRectDistToBoundary(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{100, 100})
	if d := r.DistToBoundary(Point{50, 50}); d != 50 {
		t.Errorf("center dist = %v, want 50", d)
	}
	if d := r.DistToBoundary(Point{10, 50}); d != 10 {
		t.Errorf("near-west dist = %v, want 10", d)
	}
	if d := r.DistToBoundary(Point{-5, 50}); d != 0 {
		t.Errorf("outside dist = %v, want 0", d)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{100, 50}, Point{0, 0})
	if r.Min != (Point{0, 0}) || r.Max != (Point{100, 50}) {
		t.Errorf("NewRect did not normalize: %+v", r)
	}
}

func TestPolygonContains(t *testing.T) {
	// L-shaped polygon.
	pg := Polygon{Vertices: []Point{
		{0, 0}, {100, 0}, {100, 50}, {50, 50}, {50, 100}, {0, 100},
	}}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{25, 25}, true},
		{Point{75, 25}, true},
		{Point{25, 75}, true},
		{Point{75, 75}, false}, // inside bounding box, outside the L
		{Point{-10, 50}, false},
		{Point{200, 200}, false},
	}
	for _, c := range cases {
		if got := pg.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if (Polygon{}).Contains(Point{0, 0}) {
		t.Error("empty polygon should contain nothing")
	}
	line := Polygon{Vertices: []Point{{0, 0}, {10, 10}}}
	if line.Contains(Point{5, 5}) {
		t.Error("2-vertex polygon should contain nothing")
	}
}

func TestPolygonCentroidAndBounds(t *testing.T) {
	pg := RectPolygon(NewRect(Point{0, 0}, Point{10, 20}))
	c := pg.Centroid()
	if !almostEqual(c.X, 5, 1e-9) || !almostEqual(c.Y, 10, 1e-9) {
		t.Errorf("centroid = %v, want (5,10)", c)
	}
	b := pg.Bounds()
	if b.Min != (Point{0, 0}) || b.Max != (Point{10, 20}) {
		t.Errorf("bounds = %+v", b)
	}
}

func TestRectPolygonContainsMatchesRect(t *testing.T) {
	r := NewRect(Point{-50, -20}, Point{70, 90})
	pg := RectPolygon(r)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := Point{X: rng.Float64()*300 - 150, Y: rng.Float64()*300 - 150}
		// Skip points near the boundary where edge conventions may differ.
		if math.Abs(p.X-r.Min.X) < 1e-6 || math.Abs(p.X-r.Max.X) < 1e-6 ||
			math.Abs(p.Y-r.Min.Y) < 1e-6 || math.Abs(p.Y-r.Max.Y) < 1e-6 {
			continue
		}
		inRect := p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y
		if pg.Contains(p) != inRect {
			t.Fatalf("polygon/rect disagree at %v", p)
		}
	}
}

func TestWalkingTime(t *testing.T) {
	// 830 meters at 83 m/min should take 10 minutes.
	got := WalkingTime(Point{0, 0}, Point{830, 0})
	if !almostEqual(got, 600, 1e-6) {
		t.Errorf("WalkingTime = %v s, want 600", got)
	}
}

func TestPointVectorOps(t *testing.T) {
	a := Point{3, 4}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	if a.Add(Point{1, 1}) != (Point{4, 5}) {
		t.Error("Add failed")
	}
	if a.Sub(Point{1, 1}) != (Point{2, 3}) {
		t.Error("Sub failed")
	}
	if a.Scale(2) != (Point{6, 8}) {
		t.Error("Scale failed")
	}
}
