package geo

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSlotGridMatchesBruteForce churns a SlotGrid through random
// insert/move/remove traffic and checks KNearest and FirstWithin against
// brute-force scans after every batch.
func TestSlotGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := Rect{Min: Point{X: 0, Y: 0}, Max: Point{X: 5000, Y: 3000}}
	g := NewSlotGrid(bounds, 250)
	ref := map[int32]Point{} // live slots

	randPoint := func() Point {
		return Point{
			X: bounds.Min.X - 200 + rng.Float64()*(bounds.Width()+400),
			Y: bounds.Min.Y - 200 + rng.Float64()*(bounds.Height()+400),
		}
	}
	const slots = 400
	for round := 0; round < 60; round++ {
		for op := 0; op < 50; op++ {
			s := int32(rng.Intn(slots))
			switch rng.Intn(3) {
			case 0:
				p := randPoint()
				g.Insert(s, p)
				ref[s] = p
			case 1:
				p := randPoint()
				g.Move(s, p)
				ref[s] = p
			case 2:
				g.Remove(s)
				delete(ref, s)
			}
		}
		if g.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, g.Len(), len(ref))
		}
		for _, s := range []int32{0, 5, 100} {
			p, ok := g.Position(s)
			wp, wok := ref[s]
			if ok != wok || (ok && p != wp) {
				t.Fatalf("round %d: Position(%d) = %v,%v want %v,%v", round, s, p, ok, wp, wok)
			}
		}
		from := randPoint()
		for _, k := range []int{1, 4, 8, 1000} {
			got := g.KNearest(from, k)
			want := bruteNearest(ref, from, k)
			if len(got) != len(want) {
				t.Fatalf("round %d k=%d: got %d results, want %d", round, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Slot != want[i].Slot || got[i].Dist != want[i].Dist {
					t.Fatalf("round %d k=%d idx=%d: got slot %d dist %v, want slot %d dist %v",
						round, k, i, got[i].Slot, got[i].Dist, want[i].Slot, want[i].Dist)
				}
			}
		}
		for _, radius := range []float64{100, 800, 10000} {
			got := g.FirstWithin(from, radius)
			want := int32(-1)
			for s, p := range ref {
				if Dist(from, p) <= radius && (want < 0 || s < want) {
					want = s
				}
			}
			if got != want {
				t.Fatalf("round %d radius=%v: FirstWithin = %d, want %d", round, radius, got, want)
			}
		}
	}
}

func bruteNearest(ref map[int32]Point, from Point, k int) []SlotNeighbor {
	all := make([]SlotNeighbor, 0, len(ref))
	for s, p := range ref {
		all = append(all, SlotNeighbor{Slot: s, Pos: p, Dist: Dist(from, p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Slot < all[j].Slot
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestSlotGridMatchesGrid pins the equivalence the sim's worker-invariance
// rests on: SlotGrid and the legacy Grid must return the same neighbors in
// the same order when slot numbers coincide with ids.
func TestSlotGridMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := Rect{Min: Point{X: -1000, Y: -1000}, Max: Point{X: 4000, Y: 6000}}
	sg := NewSlotGrid(bounds, 250)
	og := NewGrid(bounds, 250)
	for i := 0; i < 500; i++ {
		p := Point{X: rng.Float64()*6000 - 1500, Y: rng.Float64()*8000 - 1500}
		sg.Insert(int32(i), p)
		og.Insert(int64(i), p)
	}
	for q := 0; q < 200; q++ {
		from := Point{X: rng.Float64() * 4000, Y: rng.Float64() * 6000}
		a := sg.KNearest(from, 8)
		b := og.KNearest(from, 8)
		if len(a) != len(b) {
			t.Fatalf("q=%d: SlotGrid %d results, Grid %d", q, len(a), len(b))
		}
		for i := range a {
			if int64(a[i].Slot) != b[i].ID || a[i].Dist != b[i].Dist {
				t.Fatalf("q=%d idx=%d: SlotGrid (%d, %v), Grid (%d, %v)",
					q, i, a[i].Slot, a[i].Dist, b[i].ID, b[i].Dist)
			}
		}
	}
}

// BenchmarkSlotGridMove measures the O(1) move path against steady churn.
func BenchmarkSlotGridMove(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bounds := Rect{Min: Point{}, Max: Point{X: 20000, Y: 20000}}
	g := NewSlotGrid(bounds, 250)
	const n = 10000
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 20000, Y: rng.Float64() * 20000}
		g.Insert(int32(i), pts[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int32(i % n)
		pts[s].X += 15
		if pts[s].X > 20000 {
			pts[s].X = 0
		}
		g.Move(s, pts[s])
	}
}
