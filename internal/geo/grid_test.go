package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func bruteKNearest(pos map[int64]Point, from Point, k int) []Neighbor {
	var all []Neighbor
	for id, p := range pos {
		all = append(all, Neighbor{ID: id, Pos: p, Dist: Dist(from, p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestGridKNearestMatchesBruteForce(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{2000, 2000})
	g := NewGrid(bounds, 100)
	rng := rand.New(rand.NewSource(42))
	pos := make(map[int64]Point)
	for id := int64(0); id < 500; id++ {
		p := Point{rng.Float64() * 2000, rng.Float64() * 2000}
		g.Insert(id, p)
		pos[id] = p
	}
	for trial := 0; trial < 100; trial++ {
		from := Point{rng.Float64() * 2000, rng.Float64() * 2000}
		k := 1 + rng.Intn(12)
		got := g.KNearest(from, k)
		want := bruteKNearest(pos, from, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: k=%d idx=%d got id %d (d=%.3f) want id %d (d=%.3f)",
					trial, k, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
			}
		}
	}
}

func TestGridKNearestAfterMovesAndRemoves(t *testing.T) {
	bounds := NewRect(Point{0, 0}, Point{1000, 1000})
	g := NewGrid(bounds, 50)
	rng := rand.New(rand.NewSource(7))
	pos := make(map[int64]Point)
	for id := int64(0); id < 200; id++ {
		p := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		g.Insert(id, p)
		pos[id] = p
	}
	// Churn: move half, remove a quarter.
	for id := int64(0); id < 100; id++ {
		p := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		g.Move(id, p)
		pos[id] = p
	}
	for id := int64(100); id < 150; id++ {
		g.Remove(id)
		delete(pos, id)
	}
	if g.Len() != len(pos) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(pos))
	}
	for trial := 0; trial < 50; trial++ {
		from := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		got := g.KNearest(from, 8)
		want := bruteKNearest(pos, from, 8)
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d idx %d: got %d want %d", trial, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestGridKNearestFewerThanK(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	g.Insert(1, Point{10, 10})
	g.Insert(2, Point{90, 90})
	got := g.KNearest(Point{0, 0}, 8)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("order wrong: %+v", got)
	}
}

func TestGridKNearestEmptyAndZeroK(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	if got := g.KNearest(Point{0, 0}, 8); got != nil {
		t.Errorf("empty grid should return nil, got %v", got)
	}
	g.Insert(1, Point{5, 5})
	if got := g.KNearest(Point{0, 0}, 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestGridOutOfBoundsPointsClamped(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	g.Insert(1, Point{-500, -500})
	g.Insert(2, Point{600, 600})
	got := g.KNearest(Point{50, 50}, 2)
	if len(got) != 2 {
		t.Fatalf("want both out-of-bounds points indexed, got %d", len(got))
	}
}

func TestGridWithin(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{1000, 1000}), 50)
	g.Insert(1, Point{100, 100})
	g.Insert(2, Point{150, 100})
	g.Insert(3, Point{500, 500})
	got := g.Within(Point{100, 100}, 60)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Within = %v, want [1 2]", got)
	}
	if got := g.Within(Point{900, 900}, 10); len(got) != 0 {
		t.Errorf("expected empty, got %v", got)
	}
}

func TestGridInsertExistingMoves(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	g.Insert(1, Point{10, 10})
	g.Insert(1, Point{90, 90})
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	p, ok := g.Position(1)
	if !ok || p != (Point{90, 90}) {
		t.Errorf("Position = %v %v", p, ok)
	}
}

func TestGridRemoveAbsent(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	g.Remove(99) // must not panic
	g.Insert(1, Point{1, 1})
	g.Remove(1)
	g.Remove(1)
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
}

func TestGridEach(t *testing.T) {
	g := NewGrid(NewRect(Point{0, 0}, Point{100, 100}), 10)
	for id := int64(0); id < 10; id++ {
		g.Insert(id, Point{float64(id), float64(id)})
	}
	seen := make(map[int64]bool)
	g.Each(func(id int64, p Point) { seen[id] = true })
	if len(seen) != 10 {
		t.Errorf("Each visited %d points, want 10", len(seen))
	}
}

func BenchmarkGridKNearest(b *testing.B) {
	bounds := NewRect(Point{0, 0}, Point{4000, 4000})
	g := NewGrid(bounds, 200)
	rng := rand.New(rand.NewSource(1))
	for id := int64(0); id < 1000; id++ {
		g.Insert(id, Point{rng.Float64() * 4000, rng.Float64() * 4000})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNearest(Point{rng.Float64() * 4000, rng.Float64() * 4000}, 8)
	}
}
