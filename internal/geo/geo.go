// Package geo provides the geographic primitives used throughout the
// reproduction: latitude/longitude coordinates, a local tangent-plane
// projection in meters, haversine distances, polygons for surge areas and
// measurement regions, and a uniform-grid spatial index for k-nearest-car
// queries.
//
// All simulator-internal geometry is done on a local plane (east/north
// meters relative to a city origin) because the measurement regions in the
// paper span only a few kilometers; the projection error at that scale is
// far below the GPS noise the paper tolerates. Latitude/longitude appears
// only at the API boundary, matching the real Uber wire format.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for haversine distances.
const EarthRadiusMeters = 6371000.0

// WalkingSpeed is the walking speed assumed by the paper's surge-avoidance
// analysis (§6): 83 meters per minute, i.e. 5 km/h.
const WalkingSpeed = 83.0 / 60.0 // meters per second

// LatLng is a WGS84 coordinate in degrees, as carried on the wire by the
// emulated Uber API.
type LatLng struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// String renders the coordinate with the ~1 m precision smartphones report.
func (ll LatLng) String() string {
	return fmt.Sprintf("(%.5f,%.5f)", ll.Lat, ll.Lng)
}

// HaversineMeters returns the great-circle distance between two coordinates.
func HaversineMeters(a, b LatLng) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLng := (b.Lng - a.Lng) * math.Pi / 180
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLng / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Point is a position on the local tangent plane, in meters east (X) and
// north (Y) of a Projection origin.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Add returns p translated by d.
func (p Point) Add(d Point) Point { return Point{p.X + d.X, p.Y + d.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between two plane points.
func Dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// WalkingTime returns the time needed to walk the straight-line distance
// between a and b at the paper's 5 km/h walking speed, in seconds.
func WalkingTime(a, b Point) float64 { return Dist(a, b) / WalkingSpeed }

// Projection converts between LatLng and local plane coordinates using an
// equirectangular approximation anchored at Origin. Accurate to well under
// 0.1% over the few-kilometer regions this study measures.
type Projection struct {
	Origin LatLng
	// cached meters-per-degree at the origin latitude
	mPerDegLat float64
	mPerDegLng float64
}

// NewProjection returns a local tangent-plane projection anchored at origin.
func NewProjection(origin LatLng) *Projection {
	latRad := origin.Lat * math.Pi / 180
	return &Projection{
		Origin:     origin,
		mPerDegLat: math.Pi / 180 * EarthRadiusMeters,
		mPerDegLng: math.Pi / 180 * EarthRadiusMeters * math.Cos(latRad),
	}
}

// ToPlane projects a coordinate onto the local plane.
func (pr *Projection) ToPlane(ll LatLng) Point {
	return Point{
		X: (ll.Lng - pr.Origin.Lng) * pr.mPerDegLng,
		Y: (ll.Lat - pr.Origin.Lat) * pr.mPerDegLat,
	}
}

// ToLatLng unprojects a plane point back to a coordinate.
func (pr *Projection) ToLatLng(p Point) LatLng {
	return LatLng{
		Lat: pr.Origin.Lat + p.Y/pr.mPerDegLat,
		Lng: pr.Origin.Lng + p.X/pr.mPerDegLng,
	}
}

// Rect is an axis-aligned rectangle on the local plane. Min is the
// south-west corner and Max the north-east corner.
type Rect struct {
	Min, Max Point
}

// NewRect normalizes the two corners into a Rect.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the east-west extent in meters.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the north-south extent in meters.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns the nearest point to p inside r. Branches instead of
// math.Min/Max: this sits on the per-driver cruise path, where the
// function-call dispatch for the NaN-propagating versions is measurable.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.Min.X {
		p.X = r.Min.X
	} else if p.X > r.Max.X {
		p.X = r.Max.X
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	} else if p.Y > r.Max.Y {
		p.Y = r.Max.Y
	}
	return p
}

// DistToBoundary returns the distance from p to the nearest edge of r.
// It is 0 for points outside r.
func (r Rect) DistToBoundary(p Point) float64 {
	if !r.Contains(p) {
		return 0
	}
	d := math.Min(p.X-r.Min.X, r.Max.X-p.X)
	return math.Min(d, math.Min(p.Y-r.Min.Y, r.Max.Y-p.Y))
}

// Polygon is a simple (non-self-intersecting) polygon on the local plane,
// used for surge areas. Vertices are listed in order; the ring is implicitly
// closed.
type Polygon struct {
	Vertices []Point
}

// Contains reports whether p is inside the polygon, using the even-odd
// ray-casting rule. Points exactly on an edge may land on either side, which
// is acceptable: surge areas in the paper are hand-drawn and clients are
// never placed on a boundary.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	in := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				in = !in
			}
		}
		j = i
	}
	return in
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg.Vertices) == 0 {
		return Rect{}
	}
	r := Rect{Min: pg.Vertices[0], Max: pg.Vertices[0]}
	for _, v := range pg.Vertices[1:] {
		r.Min.X = math.Min(r.Min.X, v.X)
		r.Min.Y = math.Min(r.Min.Y, v.Y)
		r.Max.X = math.Max(r.Max.X, v.X)
		r.Max.Y = math.Max(r.Max.Y, v.Y)
	}
	return r
}

// Centroid returns the area centroid of the polygon.
func (pg Polygon) Centroid() Point {
	n := len(pg.Vertices)
	if n == 0 {
		return Point{}
	}
	if n < 3 {
		var c Point
		for _, v := range pg.Vertices {
			c = c.Add(v)
		}
		return c.Scale(1 / float64(n))
	}
	var cx, cy, area float64
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		cross := vj.X*vi.Y - vi.X*vj.Y
		area += cross
		cx += (vj.X + vi.X) * cross
		cy += (vj.Y + vi.Y) * cross
		j = i
	}
	area /= 2
	if area == 0 {
		return pg.Vertices[0]
	}
	return Point{cx / (6 * area), cy / (6 * area)}
}

// RectPolygon returns the polygon covering r.
func RectPolygon(r Rect) Polygon {
	return Polygon{Vertices: []Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}}
}
