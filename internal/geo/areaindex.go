package geo

import "math"

// AreaIndex answers "which polygon contains this point" in O(1) for a
// fixed set of polygons, replacing the linear point-in-polygon scan that
// every request otherwise pays. It rasterizes the polygons' union
// bounding box into a uniform grid and classifies each cell once at build
// time:
//
//   - a cell crossed by no polygon edge lies entirely inside or outside
//     every polygon, so the first-match answer is constant across the
//     cell and can be precomputed from any interior point;
//   - a cell touched by any edge is marked mixed and falls back to the
//     exact polygon tests at query time (first match in input order,
//     identical to the brute-force scan).
//
// The index is immutable after construction and safe for concurrent use.
type AreaIndex struct {
	areas  []Polygon
	bboxes []Rect
	bounds Rect
	cellW  float64
	cellH  float64
	nx, ny int
	cell   []int32 // resolved area per cell, or mixedCell
}

// mixedCell marks a raster cell crossed by a polygon edge; queries landing
// there run the exact test. Resolved cells store the area index, or -1 for
// "outside every polygon".
const mixedCell = int32(-2)

// maxAreaCells bounds the raster size; the cell edge is grown until the
// grid fits, so a tiny cellSize cannot allocate an unbounded index.
const maxAreaCells = 1 << 18

// NewAreaIndex rasterizes areas at the given cell size (meters). A
// non-positive cellSize picks ~128 cells along the longer axis. The input
// slice is retained and must not be mutated afterwards.
func NewAreaIndex(areas []Polygon, cellSize float64) *AreaIndex {
	ai := &AreaIndex{areas: areas}
	if len(areas) == 0 {
		return ai
	}
	ai.bboxes = make([]Rect, len(areas))
	ai.bounds = areas[0].Bounds()
	for i, pg := range areas {
		b := pg.Bounds()
		ai.bboxes[i] = b
		ai.bounds.Min.X = math.Min(ai.bounds.Min.X, b.Min.X)
		ai.bounds.Min.Y = math.Min(ai.bounds.Min.Y, b.Min.Y)
		ai.bounds.Max.X = math.Max(ai.bounds.Max.X, b.Max.X)
		ai.bounds.Max.Y = math.Max(ai.bounds.Max.Y, b.Max.Y)
	}
	w, h := ai.bounds.Width(), ai.bounds.Height()
	if cellSize <= 0 {
		cellSize = math.Max(w, h) / 128
	}
	if cellSize <= 0 {
		cellSize = 1 // degenerate (point/line) bounds
	}
	for {
		ai.nx = int(math.Ceil(w/cellSize)) + 1
		ai.ny = int(math.Ceil(h/cellSize)) + 1
		if ai.nx*ai.ny <= maxAreaCells {
			break
		}
		cellSize *= 2
	}
	ai.cellW = cellSize
	ai.cellH = cellSize
	ai.cell = make([]int32, ai.nx*ai.ny)
	for i := range ai.cell {
		ai.cell[i] = int32(-3) // unclassified
	}

	// Mark every cell overlapped by a polygon edge as mixed. Only cells
	// inside the edge's own bounding box need testing.
	for _, pg := range areas {
		n := len(pg.Vertices)
		for i := 0; i < n; i++ {
			a := pg.Vertices[i]
			b := pg.Vertices[(i+1)%n]
			x0 := ai.clampX(math.Min(a.X, b.X))
			x1 := ai.clampX(math.Max(a.X, b.X))
			y0 := ai.clampY(math.Min(a.Y, b.Y))
			y1 := ai.clampY(math.Max(a.Y, b.Y))
			for cy := y0; cy <= y1; cy++ {
				for cx := x0; cx <= x1; cx++ {
					idx := cy*ai.nx + cx
					if ai.cell[idx] == mixedCell {
						continue
					}
					if segIntersectsRect(a, b, ai.cellRect(cx, cy)) {
						ai.cell[idx] = mixedCell
					}
				}
			}
		}
	}

	// Resolve every untouched cell from its center: with no edge crossing
	// the cell, containment is constant across it.
	for cy := 0; cy < ai.ny; cy++ {
		for cx := 0; cx < ai.nx; cx++ {
			idx := cy*ai.nx + cx
			if ai.cell[idx] == mixedCell {
				continue
			}
			ai.cell[idx] = int32(ai.exact(ai.cellRect(cx, cy).Center()))
		}
	}
	return ai
}

// Len returns the number of indexed polygons.
func (ai *AreaIndex) Len() int { return len(ai.areas) }

// Areas returns the indexed polygons (shared; do not mutate).
func (ai *AreaIndex) Areas() []Polygon { return ai.areas }

func (ai *AreaIndex) clampX(x float64) int {
	c := int((x - ai.bounds.Min.X) / ai.cellW)
	if c < 0 {
		return 0
	}
	if c >= ai.nx {
		return ai.nx - 1
	}
	return c
}

func (ai *AreaIndex) clampY(y float64) int {
	c := int((y - ai.bounds.Min.Y) / ai.cellH)
	if c < 0 {
		return 0
	}
	if c >= ai.ny {
		return ai.ny - 1
	}
	return c
}

func (ai *AreaIndex) cellRect(cx, cy int) Rect {
	return Rect{
		Min: Point{ai.bounds.Min.X + float64(cx)*ai.cellW, ai.bounds.Min.Y + float64(cy)*ai.cellH},
		Max: Point{ai.bounds.Min.X + float64(cx+1)*ai.cellW, ai.bounds.Min.Y + float64(cy+1)*ai.cellH},
	}
}

// Find returns the index of the first polygon containing p, or -1 —
// exactly the answer the brute-force first-match scan gives.
func (ai *AreaIndex) Find(p Point) int {
	if len(ai.areas) == 0 {
		return -1
	}
	if !ai.bounds.Contains(p) {
		return -1 // every polygon lies inside bounds
	}
	if a := ai.cell[ai.clampY(p.Y)*ai.nx+ai.clampX(p.X)]; a != mixedCell {
		return int(a)
	}
	return ai.exact(p)
}

// exact is the brute-force fallback: first polygon (in input order) whose
// bounding box and ring contain p.
func (ai *AreaIndex) exact(p Point) int {
	for i := range ai.areas {
		if ai.bboxes[i].Contains(p) && ai.areas[i].Contains(p) {
			return i
		}
	}
	return -1
}

// segIntersectsRect reports whether segment ab intersects (or touches)
// rect r, via Liang–Barsky clipping. Touching counts as intersecting,
// which only makes the raster conservatively mark more cells mixed.
func segIntersectsRect(a, b Point, r Rect) bool {
	t0, t1 := 0.0, 1.0
	dx, dy := b.X-a.X, b.Y-a.Y
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	return clip(-dx, a.X-r.Min.X) && clip(dx, r.Max.X-a.X) &&
		clip(-dy, a.Y-r.Min.Y) && clip(dy, r.Max.Y-a.Y) && t0 <= t1
}
