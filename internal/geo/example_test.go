package geo_test

import (
	"fmt"

	"repro/internal/geo"
)

func ExampleGrid_KNearest() {
	g := geo.NewGrid(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000}), 100)
	g.Insert(1, geo.Point{X: 100, Y: 100})
	g.Insert(2, geo.Point{X: 150, Y: 100})
	g.Insert(3, geo.Point{X: 900, Y: 900})

	for _, n := range g.KNearest(geo.Point{X: 120, Y: 100}, 2) {
		fmt.Printf("car %d at %.0f m\n", n.ID, n.Dist)
	}
	// Output:
	// car 1 at 20 m
	// car 2 at 30 m
}

func ExampleProjection() {
	proj := geo.NewProjection(geo.LatLng{Lat: 40.7549, Lng: -73.9840})
	p := proj.ToPlane(geo.LatLng{Lat: 40.7580, Lng: -73.9855})
	fmt.Printf("Times Square is %.0f m east, %.0f m north of midtown center\n", p.X, p.Y)
	// Output:
	// Times Square is -126 m east, 345 m north of midtown center
}

func ExamplePolygon_Contains() {
	area := geo.RectPolygon(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 500}))
	fmt.Println(area.Contains(geo.Point{X: 250, Y: 250}))
	fmt.Println(area.Contains(geo.Point{X: 600, Y: 250}))
	// Output:
	// true
	// false
}
