package geo

import "math"

// SlotGrid is a uniform-grid spatial index over moving points identified
// by small dense integer slots, the index form internal/sim's
// struct-of-arrays world uses. Where Grid keys by sparse int64 ids and
// pays two map probes per update, SlotGrid keys by the caller's slot
// number and resolves membership through two flat int32 arrays, so Move
// and Remove are pointer-chase-free O(1) and the per-tick update stream
// of a large fleet stays allocation-free once the cells reach their
// steady-state capacity.
//
// The geometry (bounds, clamping, cell size, ring search order) matches
// Grid exactly; only the identifier space and the tie-break key differ:
// SlotGrid orders equal-distance results by ascending slot.
type SlotGrid struct {
	bounds   Rect
	cellSize float64
	nx, ny   int
	cells    [][]SlotPoint
	cellOf   []int32 // slot -> cell index, -1 when absent
	idxOf    []int32 // slot -> position within its cell slice
	n        int
}

// SlotPoint pairs an indexed slot with its position; the unit of the
// batched mutation API.
type SlotPoint struct {
	Slot int32
	Pos  Point
}

// SlotNeighbor is a k-nearest query result.
type SlotNeighbor struct {
	Slot int32
	Pos  Point
	Dist float64
}

// NewSlotGrid creates an index covering bounds with square cells of the
// given size. Points outside bounds are clamped into the boundary cells,
// like Grid.
func NewSlotGrid(bounds Rect, cellSize float64) *SlotGrid {
	if cellSize <= 0 {
		panic("geo: NewSlotGrid cellSize must be positive")
	}
	nx, ny := gridDims(bounds, cellSize)
	return &SlotGrid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]SlotPoint, nx*ny),
	}
}

// gridDims returns the cell-grid dimensions Grid, SlotGrid, and the
// snapshot index all share for a given bounds/cellSize.
func gridDims(bounds Rect, cellSize float64) (nx, ny int) {
	nx = int(math.Ceil(bounds.Width()/cellSize)) + 1
	ny = int(math.Ceil(bounds.Height()/cellSize)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return nx, ny
}

// Len returns the number of indexed points.
func (g *SlotGrid) Len() int { return g.n }

// Nx and Ny expose the cell-grid dimensions (for mirrors of the layout,
// like internal/sim's snapshot index).
func (g *SlotGrid) Nx() int { return g.nx }

// Ny is the vertical cell count.
func (g *SlotGrid) Ny() int { return g.ny }

// CellIndex returns the clamped cell index for p, identical to Grid's.
func (g *SlotGrid) CellIndex(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// grow extends the slot lookup arrays to cover slot.
func (g *SlotGrid) grow(slot int32) {
	for int32(len(g.cellOf)) <= slot {
		g.cellOf = append(g.cellOf, -1)
		g.idxOf = append(g.idxOf, -1)
	}
}

// Contains reports whether slot is indexed.
func (g *SlotGrid) Contains(slot int32) bool {
	return slot >= 0 && slot < int32(len(g.cellOf)) && g.cellOf[slot] >= 0
}

// Insert adds slot at p. Inserting an existing slot moves it.
func (g *SlotGrid) Insert(slot int32, p Point) {
	g.grow(slot)
	if g.cellOf[slot] >= 0 {
		g.Move(slot, p)
		return
	}
	ci := int32(g.CellIndex(p))
	g.cells[ci] = append(g.cells[ci], SlotPoint{Slot: slot, Pos: p})
	g.cellOf[slot] = ci
	g.idxOf[slot] = int32(len(g.cells[ci]) - 1)
	g.n++
}

// Remove deletes slot from the index. Removing an absent slot is a no-op.
func (g *SlotGrid) Remove(slot int32) {
	if !g.Contains(slot) {
		return
	}
	ci, idx := g.cellOf[slot], g.idxOf[slot]
	cell := g.cells[ci]
	last := int32(len(cell) - 1)
	if idx != last {
		moved := cell[last]
		cell[idx] = moved
		g.idxOf[moved.Slot] = idx
	}
	g.cells[ci] = cell[:last]
	g.cellOf[slot] = -1
	g.idxOf[slot] = -1
	g.n--
}

// Move updates slot's position, relocating it between cells only when
// needed. Moving an absent slot inserts it.
func (g *SlotGrid) Move(slot int32, p Point) {
	if !g.Contains(slot) {
		g.Insert(slot, p)
		return
	}
	ci := g.cellOf[slot]
	ni := int32(g.CellIndex(p))
	if ni == ci {
		g.cells[ci][g.idxOf[slot]].Pos = p
		return
	}
	// Swap-remove from the old cell, append to the new.
	idx := g.idxOf[slot]
	cell := g.cells[ci]
	last := int32(len(cell) - 1)
	if idx != last {
		moved := cell[last]
		cell[idx] = moved
		g.idxOf[moved.Slot] = idx
	}
	g.cells[ci] = cell[:last]
	g.cells[ni] = append(g.cells[ni], SlotPoint{Slot: slot, Pos: p})
	g.cellOf[slot] = ni
	g.idxOf[slot] = int32(len(g.cells[ni]) - 1)
}

// MoveBatch applies Move for every entry in order; phase-parallel callers
// buffer updates per shard and commit them here so the grid sees one
// ordered serial write stream.
func (g *SlotGrid) MoveBatch(ups []SlotPoint) {
	for _, u := range ups {
		g.Move(u.Slot, u.Pos)
	}
}

// InsertBatch applies Insert for every entry in order.
func (g *SlotGrid) InsertBatch(ups []SlotPoint) {
	for _, u := range ups {
		g.Insert(u.Slot, u.Pos)
	}
}

// RemoveBatch applies Remove for every slot in order.
func (g *SlotGrid) RemoveBatch(slots []int32) {
	for _, s := range slots {
		g.Remove(s)
	}
}

// Position returns the stored position of slot.
func (g *SlotGrid) Position(slot int32) (Point, bool) {
	if !g.Contains(slot) {
		return Point{}, false
	}
	return g.cells[g.cellOf[slot]][g.idxOf[slot]].Pos, true
}

// KNearest returns up to k indexed points closest to from, sorted by
// ascending distance with ties broken by ascending slot. It allocates a
// fresh result slice; hot paths use KNearestInto with a reused buffer.
func (g *SlotGrid) KNearest(from Point, k int) []SlotNeighbor {
	return g.KNearestInto(from, k, nil)
}

// KNearestInto is KNearest writing into buf (reused, returned re-sliced).
// The search keeps a sorted bounded top-k while expanding cell rings, so
// it never materializes or sorts the full candidate set — with dense
// cells this is the difference between O(cells·k) and O(cands·log cands)
// per query. The result set and order are identical to a full
// collect-and-sort.
func (g *SlotGrid) KNearestInto(from Point, k int, buf []SlotNeighbor) []SlotNeighbor {
	buf = buf[:0]
	if k <= 0 || g.n == 0 {
		return buf
	}
	cx := int((from.X - g.bounds.Min.X) / g.cellSize)
	cy := int((from.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once k candidates are held, stop when the closest possible point
		// in this ring ((ring-1)·cellSize away) cannot beat the k-th best.
		if len(buf) >= k {
			if buf[k-1].Dist <= float64(ring-1)*g.cellSize {
				break
			}
		}
		added := false
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // interior already scanned in earlier rings
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
					continue
				}
				added = true
				for _, sp := range g.cells[y*g.nx+x] {
					buf = insertNeighbor(buf, k, SlotNeighbor{
						Slot: sp.Slot, Pos: sp.Pos, Dist: Dist(from, sp.Pos),
					})
				}
			}
		}
		if !added && ring > 0 && len(buf) >= k {
			break
		}
	}
	return buf
}

// insertNeighbor inserts nb into buf, kept sorted by (Dist, Slot) and
// capped at k entries.
func insertNeighbor(buf []SlotNeighbor, k int, nb SlotNeighbor) []SlotNeighbor {
	if len(buf) == k {
		last := buf[k-1]
		if nb.Dist > last.Dist || (nb.Dist == last.Dist && nb.Slot >= last.Slot) {
			return buf
		}
		buf = buf[:k-1]
	}
	i := len(buf)
	buf = append(buf, nb)
	for i > 0 {
		p := buf[i-1]
		if p.Dist < nb.Dist || (p.Dist == nb.Dist && p.Slot < nb.Slot) {
			break
		}
		buf[i] = p
		i--
	}
	buf[i] = nb
	return buf
}

// FirstWithin returns the lowest slot within radius of from, or -1. This
// is the deterministic "first eligible in registration order" query the
// POOL join matcher uses.
func (g *SlotGrid) FirstWithin(from Point, radius float64) int32 {
	best := int32(-1)
	minX := int((from.X - radius - g.bounds.Min.X) / g.cellSize)
	maxX := int((from.X + radius - g.bounds.Min.X) / g.cellSize)
	minY := int((from.Y - radius - g.bounds.Min.Y) / g.cellSize)
	maxY := int((from.Y + radius - g.bounds.Min.Y) / g.cellSize)
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > g.nx-1 {
		maxX = g.nx - 1
	}
	if maxY > g.ny-1 {
		maxY = g.ny - 1
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			for _, sp := range g.cells[y*g.nx+x] {
				if best >= 0 && sp.Slot >= best {
					continue
				}
				if Dist(from, sp.Pos) <= radius {
					best = sp.Slot
				}
			}
		}
	}
	return best
}

// Each calls fn for every indexed point. Iteration order is by cell, then
// insertion order within the cell — deterministic for a deterministic
// mutation history.
func (g *SlotGrid) Each(fn func(slot int32, p Point)) {
	for _, cell := range g.cells {
		for _, sp := range cell {
			fn(sp.Slot, sp.Pos)
		}
	}
}
