package transition

import (
	"testing"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

func TestStateString(t *testing.T) {
	want := []string{"New", "Old", "In", "Out", "Dying"}
	for i, w := range want {
		if got := State(i).String(); got != w {
			t.Errorf("State(%d) = %q, want %q", i, got, w)
		}
	}
	if State(99).String() != "?" {
		t.Error("unknown state should be ?")
	}
}

// fakeResponse builds a ping response placing cars (by id) at positions.
func fakeResponse(now int64, cars map[string]geo.Point, proj *geo.Projection) *core.PingResponse {
	st := core.TypeStatus{Type: core.UberX, TypeName: "uberX", Surge: 1}
	for id, p := range cars {
		st.Cars = append(st.Cars, core.CarView{ID: id, Pos: proj.ToLatLng(p)})
	}
	return &core.PingResponse{Time: now, Types: []core.TypeStatus{st}}
}

func TestClassification(t *testing.T) {
	profile := sim.Manhattan()
	areas := profile.SurgeAreas()
	proj := geo.NewProjection(profile.Origin)
	// One client per area so surge medians resolve.
	var clientPos []geo.Point
	for _, a := range areas {
		clientPos = append(clientPos, a.Centroid())
	}
	s := NewSink(profile, clientPos)

	// Pick representative points in areas 0 and 1.
	p0 := areas[0].Centroid()
	p1 := areas[1].Centroid()

	// Interval 1 (t in [300,600)): cars A (area 0), B (area 0), C (area 1).
	s.Observe(0, clientPos[0], fakeResponse(305, map[string]geo.Point{"A": p0, "B": p0, "C": p1}, proj))
	s.EndRound(305)
	// Interval 2: A stays in 0 (Old), B moves to 1 (Out of 0, In to 1),
	// C gone (Dying from 1), D appears in 0 (New).
	s.Observe(0, clientPos[0], fakeResponse(605, map[string]geo.Point{"A": p0, "B": p1, "D": p0}, proj))
	// Crossing into the next interval flushes the previous one and
	// classifies the transition between the two snapshots.
	s.EndRound(605)

	// All areas had equal surge (all 1) in the preceding interval.
	if got := s.Share(CondEqual, StateOld, 0); got != 1 {
		t.Errorf("Old share area0 = %v, want 1 (A is the only Old car)", got)
	}
	if got := s.Share(CondEqual, StateNew, 0); got != 1 {
		t.Errorf("New share area0 = %v, want 1 (D)", got)
	}
	if got := s.Share(CondEqual, StateIn, 1); got != 1 {
		t.Errorf("In share area1 = %v, want 1 (B)", got)
	}
	if got := s.Share(CondEqual, StateOut, 0); got != 1 {
		t.Errorf("Out share area0 = %v, want 1 (B left 0)", got)
	}
	if got := s.Share(CondEqual, StateDying, 1); got != 1 {
		t.Errorf("Dying share area1 = %v, want 1 (C)", got)
	}
	if got := s.Share(CondEqual, StateDying, 0); got != 0 {
		t.Errorf("Dying share area0 = %v, want 0", got)
	}
	if s.Intervals(CondEqual, 0) == 0 {
		t.Error("no equal-surge intervals recorded")
	}
}

func TestConditionOf(t *testing.T) {
	profile := sim.Manhattan()
	s := NewSink(profile, nil)
	s.prevSurge = []float64{1, 1, 1, 1}
	for a := 0; a < 4; a++ {
		if got := s.conditionOf(a); got != CondEqual {
			t.Errorf("area %d: cond = %v, want equal", a, got)
		}
	}
	s.prevSurge = []float64{1.5, 1, 1, 1.2}
	if got := s.conditionOf(0); got != CondSurging {
		t.Errorf("area 0: cond = %v, want surging (1.5 ≥ all+0.2)", got)
	}
	if got := s.conditionOf(3); got != -1 {
		t.Errorf("area 3: cond = %v, want -1 (not 0.2 above area 0)", got)
	}
	if got := s.conditionOf(1); got != -1 {
		t.Errorf("area 1: cond = %v, want -1", got)
	}
	// Exactly 0.2 above all: surging.
	s.prevSurge = []float64{1.2, 1.0, 1.0, 1.0}
	if got := s.conditionOf(0); got != CondSurging {
		t.Errorf("margin boundary: cond = %v, want surging", got)
	}
}

func TestEndToEndSurgeEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	// Run SF (surges often) with the real campaign and check the paper's
	// directional findings: the share of new cars appearing in an area
	// rises when that area surges above its neighbors, and dying falls.
	profile := sim.SanFrancisco()
	svc := api.NewBackend(profile, 19, false)
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)
	sink := NewSink(profile, pts)
	camp.AddSink(sink)
	camp.RunSim(svc, 16*3600)
	sink.Close()

	surgingSamples := 0
	newUp, dyingDown, checked := 0, 0, 0
	for a := 0; a < sink.NumAreas(); a++ {
		if sink.Intervals(CondSurging, a) < 5 || sink.Intervals(CondEqual, a) < 5 {
			continue
		}
		surgingSamples += sink.Intervals(CondSurging, a)
		checked++
		if sink.Share(CondSurging, StateNew, a) > sink.Share(CondEqual, StateNew, a) {
			newUp++
		}
		if sink.Share(CondSurging, StateDying, a) < sink.Share(CondEqual, StateDying, a) {
			dyingDown++
		}
	}
	if checked == 0 {
		t.Skip("no area had enough intervals under both conditions")
	}
	// Directional check on the majority of comparable areas.
	if newUp*2 < checked {
		t.Errorf("New share rose in only %d/%d areas under surge", newUp, checked)
	}
	if dyingDown*2 < checked {
		t.Errorf("Dying share fell in only %d/%d areas under surge", dyingDown, checked)
	}
}
