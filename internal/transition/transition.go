// Package transition implements the §5.5 driver state-machine analysis
// (Fig 22): cars observed by the measurement campaign are treated as
// state machines over 5-minute intervals, classified per interval
// transition as New, Old, Move-in, Move-out, or Dying relative to each
// surge area, and the per-area shares are compared between times when all
// areas surge equally and times when one area's multiplier is at least
// 0.2 above all of its neighbors.
package transition

import (
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
)

// State is a car's classification for one interval transition.
type State int

// The five states of Fig 22.
const (
	StateNew State = iota
	StateOld
	StateIn
	StateOut
	StateDying
	numStates
)

// NumStates is the number of transition states.
const NumStates = int(numStates)

// String names the state as the figure labels it.
func (s State) String() string {
	switch s {
	case StateNew:
		return "New"
	case StateOld:
		return "Old"
	case StateIn:
		return "In"
	case StateOut:
		return "Out"
	case StateDying:
		return "Dying"
	default:
		return "?"
	}
}

// Condition partitions interval transitions by the surge configuration of
// the preceding interval.
type Condition int

// Fig 22's two conditions (transitions not matching either are dropped).
const (
	CondEqual   Condition = iota // all areas share one multiplier
	CondSurging                  // the area is ≥ 0.2 above every neighbor
	numConds
)

// SurgeMargin is the paper's "at least 0.2 higher than its neighbors".
const SurgeMargin = 0.2

// Sink implements client.Sink, accumulating Fig 22's transition counts.
type Sink struct {
	areas       []geo.Polygon
	clientAreas []int
	proj        *geo.Projection

	// car -> last observed area, current and previous interval.
	cur, prev map[string]int
	// surge samples per area for the current interval.
	surgeBuf [][]float64
	// previous interval's median multiplier per area.
	prevSurge []float64
	havePrev  bool

	curInterval int64

	// counts[cond][state][area]: events in the area during intervals
	// where the area's condition was cond; denom[cond][state][area]: all
	// events city-wide during those same intervals.
	counts [numConds][numStates][]float64
	denom  [numConds][numStates][]float64
	// Intervals seen per condition per area (CondSurging is per-area).
	condIntervals [numConds][]int
}

// NewSink builds a sink for a city profile and the campaign's client
// positions.
func NewSink(profile *sim.CityProfile, clientPositions []geo.Point) *Sink {
	areas := profile.SurgeAreas()
	s := &Sink{
		areas: areas,
		proj:  geo.NewProjection(profile.Origin),
		cur:   make(map[string]int),
		prev:  make(map[string]int),
	}
	for _, p := range clientPositions {
		s.clientAreas = append(s.clientAreas, sim.AreaOf(areas, p))
	}
	s.surgeBuf = make([][]float64, len(areas))
	s.prevSurge = make([]float64, len(areas))
	for c := range s.counts {
		for st := range s.counts[c] {
			s.counts[c][st] = make([]float64, len(areas))
			s.denom[c][st] = make([]float64, len(areas))
		}
		s.condIntervals[c] = make([]int, len(areas))
	}
	return s
}

// Observe implements client.Sink: track UberX car areas and per-area
// surge samples.
func (s *Sink) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	st := resp.Status(core.UberX)
	if st == nil {
		return
	}
	if clientIdx < len(s.clientAreas) {
		if a := s.clientAreas[clientIdx]; a >= 0 {
			s.surgeBuf[a] = append(s.surgeBuf[a], st.Surge)
		}
	}
	for i := range st.Cars {
		p := s.proj.ToPlane(st.Cars[i].Pos)
		if a := sim.AreaOf(s.areas, p); a >= 0 {
			s.cur[st.Cars[i].ID] = a
		}
	}
}

// EndRound implements client.Sink: at each 5-minute boundary, classify
// the interval transition and rotate state.
func (s *Sink) EndRound(now int64) {
	iv := now / measure.Interval
	if iv == s.curInterval {
		return
	}
	s.flush()
	s.curInterval = iv
}

// flush closes the current interval: computes its surge medians,
// classifies transitions from the previous interval, and rotates.
func (s *Sink) flush() {
	surge := make([]float64, len(s.areas))
	for a := range s.areas {
		surge[a] = median(s.surgeBuf[a])
		s.surgeBuf[a] = s.surgeBuf[a][:0]
	}
	if s.havePrev {
		s.classify()
	}
	s.prev, s.cur = s.cur, make(map[string]int)
	copy(s.prevSurge, surge)
	s.havePrev = true
}

// conditionOf returns, for each area, whether the previous interval was
// "equal" everywhere or this specific area was surging above all
// neighbors (or neither: -1).
func (s *Sink) conditionOf(area int) Condition {
	equal := true
	for a := 1; a < len(s.prevSurge); a++ {
		if s.prevSurge[a] != s.prevSurge[0] {
			equal = false
			break
		}
	}
	if equal {
		return CondEqual
	}
	above := true
	for a := range s.prevSurge {
		if a == area {
			continue
		}
		if s.prevSurge[area] < s.prevSurge[a]+SurgeMargin {
			above = false
			break
		}
	}
	if above {
		return CondSurging
	}
	return -1
}

// classify compares the previous and current interval snapshots.
func (s *Sink) classify() {
	// Per-interval event counts: ev[state][area] and city totals.
	var ev [numStates][]float64
	var total [numStates]float64
	for st := range ev {
		ev[st] = make([]float64, len(s.areas))
	}
	add := func(state State, area int) {
		ev[state][area]++
		total[state]++
	}
	for id, curArea := range s.cur {
		prevArea, existed := s.prev[id]
		switch {
		case !existed:
			add(StateNew, curArea)
		case prevArea == curArea:
			add(StateOld, curArea)
		default:
			add(StateIn, curArea)
			add(StateOut, prevArea)
		}
	}
	for id, prevArea := range s.prev {
		if _, alive := s.cur[id]; !alive {
			add(StateDying, prevArea)
		}
	}
	// Attribute the interval to each area's condition.
	for a := range s.areas {
		cond := s.conditionOf(a)
		if cond < 0 {
			continue
		}
		s.condIntervals[cond][a]++
		for st := 0; st < NumStates; st++ {
			s.counts[cond][st][a] += ev[st][a]
			s.denom[cond][st][a] += total[State(st)]
		}
	}
}

// Close flushes the trailing interval.
func (s *Sink) Close() { s.flush() }

// Share returns the Fig 22 quantity: of all cars city-wide in `state`
// during intervals where `area` was under `cond`, the fraction located in
// the area itself.
func (s *Sink) Share(cond Condition, state State, area int) float64 {
	if s.denom[cond][state][area] == 0 {
		return 0
	}
	return s.counts[cond][state][area] / s.denom[cond][state][area]
}

// Intervals returns how many interval transitions matched the condition
// for the area.
func (s *Sink) Intervals(cond Condition, area int) int {
	return s.condIntervals[cond][area]
}

// NumAreas returns the number of surge areas.
func (s *Sink) NumAreas() int { return len(s.areas) }

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return c[len(c)/2]
}
