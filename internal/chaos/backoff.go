package chaos

import (
	"math/rand"
	"time"
)

// Backoff is an exponential backoff policy with full jitter (the AWS
// "full jitter" scheme: sleep uniformly in [0, min(cap, base·2^attempt))),
// which decorrelates a fleet of retrying clients instead of stampeding
// them onto the recovering backend in lockstep.
type Backoff struct {
	// Base is the first attempt's ceiling (default 50ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 2s).
	Cap time.Duration
	// MaxAttempts is the total number of tries including the first
	// (default 5). 1 disables retries.
	MaxAttempts int
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 2 * time.Second
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 5
	}
	return b
}

// Delay draws the sleep before retry number attempt (0-based: attempt 0 is
// the delay after the first failure). rng may be nil (the shared
// math/rand source is used).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	ceil := b.Base << uint(attempt)
	if ceil > b.Cap || ceil <= 0 { // <=0 guards shift overflow
		ceil = b.Cap
	}
	var f float64
	if rng != nil {
		f = rng.Float64()
	} else {
		f = rand.Float64()
	}
	return time.Duration(f * float64(ceil))
}
