package chaos

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 99, ErrorProb: 0.1, ResetProb: 0.05, TruncateProb: 0.05,
		LatencyProb: 0.3, Latency: 20 * time.Millisecond,
	}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 10000; i++ {
		da, db := a.Decide(), b.Decide()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
	// A different seed produces a different stream.
	other := NewInjector(Config{Seed: 100, ErrorProb: 0.1, ResetProb: 0.05,
		TruncateProb: 0.05, LatencyProb: 0.3, Latency: 20 * time.Millisecond})
	same := 0
	c := NewInjector(cfg)
	for i := 0; i < 1000; i++ {
		if c.Decide() == other.Decide() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestInjectorFaultRates(t *testing.T) {
	cfg := Config{Seed: 7, ErrorProb: 0.2, ResetProb: 0.1, TruncateProb: 0.1}
	inj := NewInjector(cfg)
	const n = 100000
	var counts [4]int
	for i := 0; i < n; i++ {
		counts[inj.Decide().Fault]++
	}
	check := func(f Fault, want float64) {
		got := float64(counts[f]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s rate = %.3f, want %.3f ± 0.01", f, got, want)
		}
	}
	check(FaultError, 0.2)
	check(FaultReset, 0.1)
	check(FaultTruncate, 0.1)
	check(FaultNone, 0.6)
}

func TestInjectorNilAndDisabled(t *testing.T) {
	var nilInj *Injector
	if d := nilInj.Decide(); d.Fault != FaultNone || d.Delay != 0 {
		t.Errorf("nil injector decided %+v", d)
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{ErrorProb: 0.1}).Enabled() {
		t.Error("error config reports disabled")
	}
	// Latency needs both a probability and a duration.
	if (Config{LatencyProb: 0.5}).Enabled() {
		t.Error("latency prob without duration reports enabled")
	}
	h := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	if got := nilInj.Middleware(h, obs.NewRegistry()); got == nil {
		t.Error("nil injector middleware returned nil handler")
	}
}

func TestInjectorLatencyBounded(t *testing.T) {
	maxDelay := 30 * time.Millisecond
	inj := NewInjector(Config{Seed: 3, LatencyProb: 1, Latency: maxDelay})
	sawDelay := false
	for i := 0; i < 1000; i++ {
		d := inj.Decide()
		if d.Delay <= 0 || d.Delay > maxDelay {
			t.Fatalf("delay %v outside (0, %v]", d.Delay, maxDelay)
		}
		if d.Delay > 0 {
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Error("LatencyProb=1 injected no delays")
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","payload":"0123456789abcdef"}`)
	})
}

func TestMiddlewareInjectsErrors(t *testing.T) {
	reg := obs.NewRegistry()
	inj := NewInjector(Config{Seed: 1, ErrorProb: 1})
	ts := httptest.NewServer(inj.Middleware(okHandler(), reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Errorf("body %q does not identify the injected fault", body)
	}
	if n := reg.Counter("chaos_faults_total", obs.L("kind", "error")).Value(); n != 1 {
		t.Errorf("chaos_faults_total{kind=error} = %d, want 1", n)
	}
}

func TestMiddlewareInjectsResets(t *testing.T) {
	reg := obs.NewRegistry()
	inj := NewInjector(Config{Seed: 1, ResetProb: 1})
	ts := httptest.NewServer(inj.Middleware(okHandler(), reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected a transport error from the aborted connection")
	}
	if n := reg.Counter("chaos_faults_total", obs.L("kind", "reset")).Value(); n != 1 {
		t.Errorf("chaos_faults_total{kind=reset} = %d, want 1", n)
	}
}

func TestMiddlewareTruncatesBodies(t *testing.T) {
	reg := obs.NewRegistry()
	inj := NewInjector(Config{Seed: 1, TruncateProb: 1})
	ts := httptest.NewServer(inj.Middleware(okHandler(), reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200 (truncation cuts the body, not the status)", resp.StatusCode)
	}
	body, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Errorf("read completed cleanly; want an unexpected EOF (got %d bytes)", len(body))
	}
	full := len(`{"status":"ok","payload":"0123456789abcdef"}`)
	if len(body) >= full {
		t.Errorf("got %d bytes, want fewer than the full %d", len(body), full)
	}
	if n := reg.Counter("chaos_faults_total", obs.L("kind", "truncate")).Value(); n != 1 {
		t.Errorf("chaos_faults_total{kind=truncate} = %d, want 1", n)
	}
}

func TestRecoverTurnsPanicsInto500s(t *testing.T) {
	reg := obs.NewRegistry()
	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	ts := httptest.NewServer(Recover(boom, reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if n := reg.Counter("server_panics_total").Value(); n != 1 {
		t.Errorf("server_panics_total = %d, want 1", n)
	}
	// The server survived: a second request still works.
	resp2, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatalf("server died after recovered panic: %v", err)
	}
	resp2.Body.Close()
}

func TestRecoverReRaisesAbortHandler(t *testing.T) {
	reg := obs.NewRegistry()
	abort := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(Recover(abort, reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("ErrAbortHandler should abort the connection, not answer")
	}
	if n := reg.Counter("server_panics_total").Value(); n != 0 {
		t.Errorf("server_panics_total = %d, want 0 (aborts are not panics)", n)
	}
}

func TestShedRejectsAboveLimit(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	entered := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	ts := httptest.NewServer(Shed(slow, 1, 3*time.Second, reg))
	defer ts.Close()
	defer close(release)

	// Occupy the single slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// The second concurrent request is shed.
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if n := reg.Counter("server_shed_total").Value(); n != 1 {
		t.Errorf("server_shed_total = %d, want 1", n)
	}
	release <- struct{}{}
	wg.Wait()
}

func TestShedDisabled(t *testing.T) {
	h := http.NewServeMux() // comparable handler type
	if got := Shed(h, 0, time.Second, obs.NewRegistry()); got != http.Handler(h) {
		t.Error("maxInFlight=0 should return the handler unchanged")
	}
}

func TestTimeoutCutsSlowHandlers(t *testing.T) {
	reg := obs.NewRegistry()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	})
	ts := httptest.NewServer(Timeout(slow, 50*time.Millisecond, reg))
	defer ts.Close()

	start := time.Now()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Errorf("body %q does not mention the timeout", body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("request took %v; timeout did not cut it short", elapsed)
	}
	if n := reg.Counter("server_timeouts_total").Value(); n != 1 {
		t.Errorf("server_timeouts_total = %d, want 1", n)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  time.Second,
		Clock:     clock,
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	// Closed: failures below threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Report(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2 failures, want closed", b.State())
	}

	// Third consecutive failure opens the circuit.
	b.Allow()
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe: reopen for a full cooldown.
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a request right after a failed probe")
	}

	// Second probe succeeds: circuit closes and stays closed.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker did not admit the second probe")
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}
	b.Report(true)

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3})
	for round := 0; round < 5; round++ {
		b.Allow()
		b.Report(false)
		b.Allow()
		b.Report(false)
		b.Allow()
		b.Report(true) // a success between failures resets the streak
	}
	if b.State() != BreakerClosed {
		t.Errorf("state = %v, want closed (failures never consecutive)", b.State())
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker rejected a request")
	}
	b.Report(false) // must not panic
	if b.State() != BreakerClosed {
		t.Error("nil breaker state not closed")
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	rng := rand.New(rand.NewSource(5))
	for attempt := 0; attempt < 12; attempt++ {
		ceil := b.Base << uint(attempt)
		if ceil > b.Cap || ceil <= 0 {
			ceil = b.Cap
		}
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt, rng)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
	// Huge attempt numbers must not overflow the shift into a negative ceiling.
	if d := b.Delay(200, rng); d < 0 || d >= b.Cap {
		t.Errorf("attempt 200: delay %v outside [0, %v)", d, b.Cap)
	}
}

func TestBackoffDefaults(t *testing.T) {
	d := Backoff{}.withDefaults()
	if d.Base != 50*time.Millisecond || d.Cap != 2*time.Second || d.MaxAttempts != 5 {
		t.Errorf("defaults = %+v", d)
	}
	if got := (Backoff{}).Delay(0, rand.New(rand.NewSource(1))); got < 0 || got >= 50*time.Millisecond {
		t.Errorf("default first delay %v outside [0, 50ms)", got)
	}
}

func TestFaultString(t *testing.T) {
	cases := map[Fault]string{
		FaultNone: "none", FaultError: "error", FaultReset: "reset", FaultTruncate: "truncate",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
}
