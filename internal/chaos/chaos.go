// Package chaos is the repo's fault-injection and resilience toolkit.
//
// The paper's four-week campaign ran against a backend the authors did not
// control: pings were lost, the per-client jitter bug served stale
// multipliers, and rate limits locked accounts out (§3.3, §5). This package
// makes those failure modes reproducible on demand — a deterministic,
// seedable Injector that a server mounts as HTTP middleware to inject
// latency, 5xx errors, connection resets, and truncated bodies — and
// provides the standard defenses both sides of the wire use to survive
// them: panic recovery, per-request timeouts, admission control (load
// shedding with Retry-After), exponential backoff with full jitter, and a
// circuit breaker with half-open probing.
//
// Determinism: every fault decision is derived by hashing the injector
// seed with a per-request sequence number (splitmix64), so a run against
// the same seed replays the same fault sequence — concurrency may reorder
// which request draws which sequence number, but the multiset of injected
// faults is identical, which is what makes chaos runs comparable across
// PRs.
package chaos

import (
	"sync/atomic"
	"time"
)

// Fault enumerates the injectable request outcomes.
type Fault int

const (
	// FaultNone leaves the request alone (latency may still be injected).
	FaultNone Fault = iota
	// FaultError answers 500 without invoking the handler.
	FaultError
	// FaultReset aborts the connection mid-request (the client sees a
	// reset/EOF, like the paper's lost pings).
	FaultReset
	// FaultTruncate serves the real response but cuts the body short, so
	// the client's JSON decode fails partway.
	FaultTruncate
)

// String names the fault for metric labels.
func (f Fault) String() string {
	switch f {
	case FaultError:
		return "error"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	default:
		return "none"
	}
}

// Config parameterizes an Injector. Probabilities are per-request and
// independent of one another except that at most one of Error/Reset/
// Truncate fires (they partition a single uniform draw, in that order).
type Config struct {
	// Seed fixes the fault sequence; two injectors with the same seed and
	// config produce the same decision stream.
	Seed int64
	// ErrorProb is the probability of answering 500.
	ErrorProb float64
	// ResetProb is the probability of aborting the connection.
	ResetProb float64
	// TruncateProb is the probability of truncating the response body.
	TruncateProb float64
	// LatencyProb is the probability of delaying the request.
	LatencyProb float64
	// Latency is the maximum injected delay; the actual delay is uniform
	// in (0, Latency].
	Latency time.Duration
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.ErrorProb > 0 || c.ResetProb > 0 || c.TruncateProb > 0 ||
		(c.LatencyProb > 0 && c.Latency > 0)
}

// Decision is one request's injected behavior.
type Decision struct {
	Fault Fault
	Delay time.Duration
}

// Injector hands out deterministic per-request fault decisions. A nil
// *Injector never injects, so callers can wire it unconditionally.
type Injector struct {
	cfg Config
	seq atomic.Uint64

	// onFault is the optional injected-fault callback (see SetFaultSink).
	onFault atomic.Pointer[func(Fault, string)]
}

// SetFaultSink installs fn to be called for every injected fault with
// the fault kind and the request path. The callback runs on the request
// goroutine, concurrently; uberd uses it to publish chaos events to the
// bus. Safe on a nil *Injector (no faults, nothing to observe).
func (i *Injector) SetFaultSink(fn func(Fault, string)) {
	if i == nil {
		return
	}
	if fn == nil {
		i.onFault.Store(nil)
		return
	}
	i.onFault.Store(&fn)
}

// fireFault invokes the fault sink, if any.
func (i *Injector) fireFault(f Fault, path string) {
	if fn := i.onFault.Load(); fn != nil {
		(*fn)(f, path)
	}
}

// NewInjector builds an injector for cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg}
}

// splitmix64 is the standard 64-bit finalizer; one application per stream
// position gives independent, well-distributed draws.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Decide draws the next decision in the seeded stream.
func (i *Injector) Decide() Decision {
	if i == nil {
		return Decision{}
	}
	seq := i.seq.Add(1)
	base := uint64(i.cfg.Seed)*0x9e3779b97f4a7c15 + seq
	var d Decision
	u := unit(splitmix64(base))
	switch {
	case u < i.cfg.ErrorProb:
		d.Fault = FaultError
	case u < i.cfg.ErrorProb+i.cfg.ResetProb:
		d.Fault = FaultReset
	case u < i.cfg.ErrorProb+i.cfg.ResetProb+i.cfg.TruncateProb:
		d.Fault = FaultTruncate
	}
	if i.cfg.Latency > 0 && unit(splitmix64(base^0xd1b54a32d192ed03)) < i.cfg.LatencyProb {
		frac := unit(splitmix64(base ^ 0x8cb92ba72f3d8dd7))
		d.Delay = time.Duration(frac * float64(i.cfg.Latency))
		if d.Delay <= 0 {
			d.Delay = time.Nanosecond
		}
	}
	return d
}
