package chaos

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) by callers whose breaker is
// rejecting requests without trying the backend.
var ErrCircuitOpen = errors.New("chaos: circuit open")

// BreakerState enumerates the classic three circuit states.
type BreakerState int

const (
	// BreakerClosed passes requests through and counts failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between reopening and closing.
	BreakerHalfOpen
)

// String names the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before allowing a
	// half-open probe (default 1s).
	Cooldown time.Duration
	// Clock overrides time.Now in tests.
	Clock func() time.Time
	// OnStateChange, when set, observes every transition (called with the
	// breaker's lock held — keep it cheap, e.g. an obs counter bump).
	OnStateChange func(from, to BreakerState)
}

// Breaker is a consecutive-failure circuit breaker with half-open
// probing: after Threshold consecutive failures it fails fast for
// Cooldown, then admits a single probe; a successful probe closes the
// circuit, a failed one reopens it for another full cooldown.
//
// The campaign client keeps one Breaker per endpoint, so a backend whose
// pingClient path is down doesn't drag the estimates endpoints (and their
// rate-limit budget) down with it.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker; zero-valued config fields get defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg}
}

// setState transitions the state under the caller-held lock, notifying the
// hook on real changes.
func (b *Breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// Allow reports whether a request may proceed. A nil breaker always
// allows. When it returns false the caller should fail fast with
// ErrCircuitOpen; when it returns true the caller must follow up with
// Report so half-open probes resolve.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report records the outcome of an allowed request.
func (b *Breaker) Report(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.setState(BreakerClosed)
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// Failed probe: back to a full cooldown.
		b.setState(BreakerOpen)
		b.openedAt = b.cfg.Clock()
		b.probing = false
	default:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.setState(BreakerOpen)
			b.openedAt = b.cfg.Clock()
		}
	}
}

// State returns the current state (resolving an elapsed cooldown to
// half-open is Allow's job; State reports the stored value).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
