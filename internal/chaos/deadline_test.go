package chaos

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestEffectiveTimeout(t *testing.T) {
	req := func(header string) *http.Request {
		r := httptest.NewRequest("GET", "/x", nil)
		if header != "" {
			r.Header.Set(DeadlineHeader, header)
		}
		return r
	}
	cases := []struct {
		name   string
		header string
		max    time.Duration
		want   time.Duration
	}{
		{"no header", "", time.Second, time.Second},
		{"header tighter", "100", time.Second, 100 * time.Millisecond},
		{"header looser", "5000", time.Second, time.Second},
		{"header only", "250", 0, 250 * time.Millisecond},
		{"no bound at all", "", 0, 0},
		{"garbage ignored", "soon", time.Second, time.Second},
		{"non-positive ignored", "-5", time.Second, time.Second},
	}
	for _, c := range cases {
		if got := EffectiveTimeout(req(c.header), c.max); got != c.want {
			t.Errorf("%s: EffectiveTimeout = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTimeoutClampsToPropagatedDeadline is the deadline-propagation
// contract: a shard whose own limit is generous must still answer within
// the budget the gateway forwarded.
func TestTimeoutClampsToPropagatedDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
			w.WriteHeader(http.StatusOK)
		case <-r.Context().Done():
		}
	})
	h := Timeout(slow, 10*time.Second, reg)

	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(DeadlineHeader, "30")
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, r)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("handler held the request %v despite a 30ms propagated budget", d)
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if reg.Counter("server_timeouts_total").Value() != 1 {
		t.Error("timeout not counted")
	}
	if reg.Counter("server_deadline_clamped_total").Value() != 1 {
		t.Error("clamp not counted")
	}
}

func TestTimeoutFastHandlerUnaffectedByHeader(t *testing.T) {
	reg := obs.NewRegistry()
	h := Timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), time.Second, reg)
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(DeadlineHeader, "500")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusTeapot {
		t.Errorf("status = %d, want 418 passed through", rec.Code)
	}
	if reg.Counter("server_timeouts_total").Value() != 0 {
		t.Error("fast handler counted as timeout")
	}
}

func TestTimeoutZeroUsesHeaderOnly(t *testing.T) {
	// d = 0 historically meant "no timeout"; it still does locally, but a
	// propagated deadline is always honored.
	reg := obs.NewRegistry()
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	h := Timeout(blocked, 0, reg)
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(DeadlineHeader, "20")
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, r)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("header-only budget not applied with d = 0")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
}
