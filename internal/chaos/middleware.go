package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Middleware wraps next with fault injection driven by the injector's
// seeded decision stream. Injected faults are counted in reg as
// chaos_faults_total{kind="error"|"reset"|"truncate"} and injected delays
// as chaos_delays_total plus the chaos_injected_delay_seconds histogram.
// A nil injector returns next unchanged.
func (i *Injector) Middleware(next http.Handler, reg *obs.Registry) http.Handler {
	if i == nil || !i.cfg.Enabled() {
		return next
	}
	faults := [4]*obs.Counter{
		FaultError:    reg.Counter("chaos_faults_total", obs.L("kind", "error")),
		FaultReset:    reg.Counter("chaos_faults_total", obs.L("kind", "reset")),
		FaultTruncate: reg.Counter("chaos_faults_total", obs.L("kind", "truncate")),
	}
	delays := reg.Counter("chaos_delays_total")
	delayHist := reg.Histogram("chaos_injected_delay_seconds", obs.DefLatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := i.Decide()
		if d.Delay > 0 {
			delays.Inc()
			delayHist.ObserveDuration(d.Delay)
			time.Sleep(d.Delay)
		}
		switch d.Fault {
		case FaultError:
			faults[FaultError].Inc()
			i.fireFault(FaultError, r.URL.Path)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"chaos: injected server error"}`)
		case FaultReset:
			faults[FaultReset].Inc()
			i.fireFault(FaultReset, r.URL.Path)
			// net/http treats ErrAbortHandler as "drop the connection
			// without replying": the client observes a reset/EOF.
			panic(http.ErrAbortHandler)
		case FaultTruncate:
			faults[FaultTruncate].Inc()
			i.fireFault(FaultTruncate, r.URL.Path)
			i.truncate(w, r, next)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// truncate runs the real handler against a buffer, replays the status and
// headers with the full Content-Length, writes only half the body, and
// aborts the connection — the client sees a well-formed response cut off
// mid-body (unexpected EOF on decode).
func (i *Injector) truncate(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := &bufferedResponse{status: http.StatusOK, header: make(http.Header)}
	next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		w.Header()[k] = vs
	}
	body := rec.body.Bytes()
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.status)
	if len(body) > 1 {
		_, _ = w.Write(body[:len(body)/2])
	}
	// Flush so the half body actually reaches the wire; the abort below
	// would otherwise discard the buffered bytes along with the connection
	// and the client would see a bare EOF instead of a truncated response.
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// bufferedResponse captures a handler's full response for truncation.
type bufferedResponse struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (b *bufferedResponse) Header() http.Header         { return b.header }
func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }
func (b *bufferedResponse) WriteHeader(code int)        { b.status = code }

// Recover wraps next so a panicking handler answers 500 instead of killing
// the connection (and, unrecovered, the whole server loop in handlers that
// spawn goroutines). Panics are counted as server_panics_total.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// connection (the fault injector and net/http itself both use it).
func Recover(next http.Handler, reg *obs.Registry) http.Handler {
	panics := reg.Counter("server_panics_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && err == http.ErrAbortHandler {
				panic(rec)
			}
			panics.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"internal server error"}`)
		}()
		next.ServeHTTP(w, r)
	})
}

// Shed applies admission control: when more than maxInFlight requests are
// already being served, new arrivals are rejected immediately with
// 503 + Retry-After instead of queueing until the whole server tips over.
// Shed requests are counted as server_shed_total; the current in-flight
// count is exported as the server_inflight_requests gauge.
func Shed(next http.Handler, maxInFlight int, retryAfter time.Duration, reg *obs.Registry) http.Handler {
	if maxInFlight <= 0 {
		return next
	}
	shed := reg.Counter("server_shed_total")
	gauge := reg.Gauge("server_inflight_requests")
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	retryVal := strconv.Itoa(secs)
	var inflight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inflight.Add(1)
		defer func() {
			gauge.Set(float64(inflight.Add(-1)))
		}()
		gauge.Set(float64(n))
		if n > int64(maxInFlight) {
			shed.Inc()
			w.Header().Set("Retry-After", retryVal)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"overloaded, retry later"}`)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// DeadlineHeader is the wire header carrying a request's remaining
// deadline budget in integer milliseconds. The gateway stamps it on every
// forwarded request (and the resilient client on calls whose context has a
// deadline); shards clamp their per-request timeout to it, so a slow shard
// cannot hold gateway or client connections past the caller's own timeout.
const DeadlineHeader = "X-Request-Deadline-Ms"

// EffectiveTimeout resolves the handler budget for r: the configured max
// clamped to the caller-propagated DeadlineHeader when one is present and
// tighter. max <= 0 means "no local limit" (the header alone governs);
// 0 is returned only when neither side imposes a bound.
func EffectiveTimeout(r *http.Request, max time.Duration) time.Duration {
	d := max
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			if hd := time.Duration(ms) * time.Millisecond; d <= 0 || hd < d {
				d = hd
			}
		}
	}
	return d
}

// Timeout bounds each request's handler time at min(d, the caller's
// propagated DeadlineHeader); requests that exceed the budget answer
// 503 (counted as server_timeouts_total). Requests whose header tightened
// the local limit are counted as server_deadline_clamped_total. Unlike
// http.TimeoutHandler the budget is resolved per request, which is what
// deadline propagation across the gateway hop needs.
//
// The handler runs in a goroutine against a buffered response; on timeout
// the buffer is discarded and the goroutine's eventual writes go nowhere.
// Handler panics are re-raised on the serving goroutine (matching
// http.TimeoutHandler), so Recover/ErrAbortHandler semantics compose.
func Timeout(next http.Handler, d time.Duration, reg *obs.Registry) http.Handler {
	timeouts := reg.Counter("server_timeouts_total")
	clamped := reg.Counter("server_deadline_clamped_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budget := EffectiveTimeout(r, d)
		if budget != d {
			clamped.Inc()
		}
		if budget <= 0 { // neither a local limit nor a propagated one
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)
		rec := &bufferedResponse{status: http.StatusOK, header: make(http.Header)}
		done := make(chan struct{})
		panicCh := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicCh <- p
					return
				}
				close(done)
			}()
			next.ServeHTTP(rec, r)
		}()
		select {
		case <-done:
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.status)
			_, _ = w.Write(rec.body.Bytes())
		case p := <-panicCh:
			panic(p)
		case <-ctx.Done():
			timeouts.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"request timed out"}`)
		}
	})
}
