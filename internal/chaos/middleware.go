package chaos

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Middleware wraps next with fault injection driven by the injector's
// seeded decision stream. Injected faults are counted in reg as
// chaos_faults_total{kind="error"|"reset"|"truncate"} and injected delays
// as chaos_delays_total plus the chaos_injected_delay_seconds histogram.
// A nil injector returns next unchanged.
func (i *Injector) Middleware(next http.Handler, reg *obs.Registry) http.Handler {
	if i == nil || !i.cfg.Enabled() {
		return next
	}
	faults := [4]*obs.Counter{
		FaultError:    reg.Counter("chaos_faults_total", obs.L("kind", "error")),
		FaultReset:    reg.Counter("chaos_faults_total", obs.L("kind", "reset")),
		FaultTruncate: reg.Counter("chaos_faults_total", obs.L("kind", "truncate")),
	}
	delays := reg.Counter("chaos_delays_total")
	delayHist := reg.Histogram("chaos_injected_delay_seconds", obs.DefLatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := i.Decide()
		if d.Delay > 0 {
			delays.Inc()
			delayHist.ObserveDuration(d.Delay)
			time.Sleep(d.Delay)
		}
		switch d.Fault {
		case FaultError:
			faults[FaultError].Inc()
			i.fireFault(FaultError, r.URL.Path)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"chaos: injected server error"}`)
		case FaultReset:
			faults[FaultReset].Inc()
			i.fireFault(FaultReset, r.URL.Path)
			// net/http treats ErrAbortHandler as "drop the connection
			// without replying": the client observes a reset/EOF.
			panic(http.ErrAbortHandler)
		case FaultTruncate:
			faults[FaultTruncate].Inc()
			i.fireFault(FaultTruncate, r.URL.Path)
			i.truncate(w, r, next)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// truncate runs the real handler against a buffer, replays the status and
// headers with the full Content-Length, writes only half the body, and
// aborts the connection — the client sees a well-formed response cut off
// mid-body (unexpected EOF on decode).
func (i *Injector) truncate(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := &bufferedResponse{status: http.StatusOK, header: make(http.Header)}
	next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		w.Header()[k] = vs
	}
	body := rec.body.Bytes()
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.status)
	if len(body) > 1 {
		_, _ = w.Write(body[:len(body)/2])
	}
	// Flush so the half body actually reaches the wire; the abort below
	// would otherwise discard the buffered bytes along with the connection
	// and the client would see a bare EOF instead of a truncated response.
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// bufferedResponse captures a handler's full response for truncation.
type bufferedResponse struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (b *bufferedResponse) Header() http.Header         { return b.header }
func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }
func (b *bufferedResponse) WriteHeader(code int)        { b.status = code }

// Recover wraps next so a panicking handler answers 500 instead of killing
// the connection (and, unrecovered, the whole server loop in handlers that
// spawn goroutines). Panics are counted as server_panics_total.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// connection (the fault injector and net/http itself both use it).
func Recover(next http.Handler, reg *obs.Registry) http.Handler {
	panics := reg.Counter("server_panics_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && err == http.ErrAbortHandler {
				panic(rec)
			}
			panics.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"internal server error"}`)
		}()
		next.ServeHTTP(w, r)
	})
}

// Shed applies admission control: when more than maxInFlight requests are
// already being served, new arrivals are rejected immediately with
// 503 + Retry-After instead of queueing until the whole server tips over.
// Shed requests are counted as server_shed_total; the current in-flight
// count is exported as the server_inflight_requests gauge.
func Shed(next http.Handler, maxInFlight int, retryAfter time.Duration, reg *obs.Registry) http.Handler {
	if maxInFlight <= 0 {
		return next
	}
	shed := reg.Counter("server_shed_total")
	gauge := reg.Gauge("server_inflight_requests")
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	retryVal := strconv.Itoa(secs)
	var inflight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inflight.Add(1)
		defer func() {
			gauge.Set(float64(inflight.Add(-1)))
		}()
		gauge.Set(float64(n))
		if n > int64(maxInFlight) {
			shed.Inc()
			w.Header().Set("Retry-After", retryVal)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"overloaded, retry later"}`)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Timeout bounds each request's handler time at d; requests that exceed it
// answer 503 (counted as server_timeouts_total via the handler body write).
// It is http.TimeoutHandler with a JSON body, kept here so the daemon
// assembles its whole middleware chain from one package.
func Timeout(next http.Handler, d time.Duration, reg *obs.Registry) http.Handler {
	if d <= 0 {
		return next
	}
	timeouts := reg.Counter("server_timeouts_total")
	// http.TimeoutHandler doesn't expose its timeout path, so count from
	// the inside: a handler whose request context is already dead when it
	// returns was cut off (timeout, or a client that gave up — both are
	// lost work worth counting).
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		if err := r.Context().Err(); err != nil {
			timeouts.Inc()
		}
	})
	return http.TimeoutHandler(inner, d, `{"error":"request timed out"}`)
}
