package surge

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PipStep is the USD quantum of the additive surcharge: pips move on a
// 25-cent grid (Garg & Nazerzadeh report Uber's successor scheme paying
// drivers flat per-trip "surge pips" in small fixed increments).
const PipStep = 0.25

// Additive implements the post-2015 driver surge scheme described by
// Garg & Nazerzadeh (*Driver Surge Pricing*): instead of scaling the
// whole fare by a multiplier, the engine adds a flat, quantized USD pip
// to every surgeable trip in the area. The rider's quote becomes
// base + pip, and the driver keeps the entire pip on top of the usual
// 80% of the base fare (the sim's settleFare applies that split through
// the pip provider installed here).
//
// The engine prices the same underlying market signal as Mult2015 — the
// identical rawPressures features, with its own RNG stream — but
// publishes it through the standard View as an *effective multiplier*
// 1 + pip/base (base = the nominal UberX trip fare), so the lock-free
// query path, the measurement pipeline, and the elasticity/flocking
// feedback all work unchanged. The distinguishing external signature the
// 2015 audit can look for: effective multipliers land on a $0.25/base
// grid rather than the 0.1 multiplier grid, and the client stream never
// jitters (the additive rollout postdates the April bug).
type Additive struct {
	world *sim.World
	cfg   Config
	rng   *rand.Rand
	base  float64 // nominal UberX trip fare at multiplier 1

	pip, prevPip []float64 // surcharge per area, USD, on the PipStep grid
	cur, prev    []float64 // effective multipliers encoding the pips

	intervalStart int64
	apiSwitchAt   int64
	view          *View

	// History records the effective-multiplier series per area, one entry
	// per completed update. Empty unless Config.KeepHistory is set.
	History [][]float64

	// nil-safe metric handles; zero until Instrument is called.
	mUpdates    *obs.Counter
	mChanges    *obs.Counter
	hUpdateDur  *obs.Histogram
	gMaxMult    *obs.Gauge
	gSurgeAreas *obs.Gauge

	events   func(bus.Event)
	areaKeys []string
}

// nominalBaseFare is the fare the estimates/price endpoint quotes for its
// nominal 5 km / 15 minute trip at multiplier 1 — the denominator that
// converts a USD pip into an effective multiplier (and back, exactly, for
// the nominal UberX quote).
func nominalBaseFare() float64 {
	return core.DefaultFares()[core.UberX].Fare(5000, 900, 1)
}

// NewAdditive builds an additive-pip engine over the world and installs
// it as the world's surge and pip provider. Config.Jitter is ignored:
// the additive datastream never exhibits the April bug.
func NewAdditive(w *sim.World, cfg Config) *Additive {
	if cfg.JitterProb == 0 {
		cfg.JitterProb = 0.25
	}
	cfg.Jitter = false
	n := len(w.Areas())
	e := &Additive{
		world:   w,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5e1fca5e)),
		base:    nominalBaseFare(),
		pip:     make([]float64, n),
		prevPip: make([]float64, n),
		cur:     ones(n),
		prev:    ones(n),
	}
	e.areaKeys = make([]string, n)
	for a := range e.areaKeys {
		e.areaKeys[a] = fmt.Sprintf("area-%02d", a)
	}
	e.scheduleSwitches(w.Now() - w.Now()%UpdatePeriod)
	e.rebuildView()
	w.SetSurgeProvider(func(area int) float64 {
		return e.APIMultiplier(area, w.Now())
	})
	// The pip the sim settles fares with tracks the API stream exactly:
	// riders are charged what the quote showed.
	w.SetPipProvider(func(area int) float64 {
		return (e.APIMultiplier(area, w.Now()) - 1) * e.base
	})
	return e
}

// Name identifies the additive engine.
func (e *Additive) Name() string { return "additive" }

// SetEventSink installs fn to receive a bus.KindSurgeChange event for
// every area whose effective multiplier changes at an update boundary.
func (e *Additive) SetEventSink(fn func(bus.Event)) { e.events = fn }

// Instrument wires the engine's metrics into reg under the same names as
// the multiplicative engine, so dashboards work for either regime.
func (e *Additive) Instrument(reg *obs.Registry) {
	e.mUpdates = reg.Counter("surge_updates_total")
	e.mChanges = reg.Counter("surge_multiplier_changes_total")
	e.hUpdateDur = reg.Histogram("surge_update_duration_seconds", nil)
	e.gMaxMult = reg.Gauge("surge_max_multiplier")
	e.gSurgeAreas = reg.Gauge("surge_areas_surging")
}

// Step advances the engine to time now, recomputing pips at each
// 5-minute boundary.
func (e *Additive) Step(now int64) {
	boundary := now - now%UpdatePeriod
	if boundary > e.intervalStart {
		e.update(boundary)
	}
}

// update recomputes every area's pip for the interval starting at
// boundary: the raw multiplicative pressure above 1 converts to USD on
// the nominal fare, quantizes to the PipStep grid, and re-encodes as an
// effective multiplier for the View.
func (e *Additive) update(boundary int64) {
	updateStart := time.Now()
	p := e.cfg.Params
	copy(e.prevPip, e.pip)
	copy(e.prev, e.cur)
	raws := make([]float64, len(e.cur))
	rawPressures(e.world, p, e.rng, raws)
	maxPip := (p.MaxMultiplier - 1) * e.base
	for a := range e.cur {
		raw := raws[a]
		if s := e.cfg.Smoothing; s > 0 {
			raw = s*e.prev[a] + (1-s)*raw
		}
		pip := (raw - 1) * e.base
		pip = math.Round(pip/PipStep) * PipStep
		// Normalize binary noise to whole cents.
		pip = math.Round(pip*100) / 100
		if pip < 0 {
			pip = 0
		}
		if pip > maxPip {
			pip = maxPip
		}
		e.pip[a] = pip
		e.cur[a] = 1 + pip/e.base
	}
	if e.cfg.KeepHistory {
		e.History = append(e.History, append([]float64(nil), e.cur...))
	}
	e.scheduleSwitches(boundary)
	e.rebuildView()

	e.mUpdates.Inc()
	e.hUpdateDur.ObserveDuration(time.Since(updateStart))
	var changed int64
	maxMult := 1.0
	surging := 0.0
	for a := range e.cur {
		if e.cur[a] != e.prev[a] {
			changed++
			if e.events != nil {
				e.events(bus.Event{
					Time: boundary, Kind: bus.KindSurgeChange,
					Key: e.areaKeys[a], Area: int32(a), Num: e.cur[a],
				})
			}
		}
		if e.cur[a] > maxMult {
			maxMult = e.cur[a]
		}
		if e.cur[a] > 1 {
			surging++
		}
	}
	e.mChanges.Add(changed)
	e.gMaxMult.Set(maxMult)
	e.gSurgeAreas.Set(surging)
}

// scheduleSwitches draws this interval's API propagation delay — the same
// ~35-second band as the 2015 engine; the rollout changed the price form,
// not the propagation pipeline.
func (e *Additive) scheduleSwitches(boundary int64) {
	e.intervalStart = boundary
	e.apiSwitchAt = boundary + 5 + int64(e.rng.Float64()*35)
}

// rebuildView publishes a fresh immutable View; jitter is always off.
func (e *Additive) rebuildView() {
	e.view = &View{
		jitter:        false,
		jitterProb:    e.cfg.JitterProb,
		seed:          e.cfg.Seed,
		intervalStart: e.intervalStart,
		apiSwitchAt:   e.apiSwitchAt,
		cur:           append([]float64(nil), e.cur...),
		prev:          append([]float64(nil), e.prev...),
	}
}

// View returns the engine's current immutable read state.
func (e *Additive) View() *View { return e.view }

// APIMultiplier returns the effective multiplier (1 + pip/base) the
// estimates/price API serves for an area at time now.
func (e *Additive) APIMultiplier(area int, now int64) float64 {
	return e.view.APIMultiplier(area, now)
}

// ClientMultiplier returns the effective multiplier the pingClient
// stream serves; with jitter permanently off it equals the API stream.
func (e *Additive) ClientMultiplier(clientID string, area int, now int64) float64 {
	return e.view.ClientMultiplier(clientID, area, now)
}

// InJitter always reports false: the additive datastream never jitters.
func (e *Additive) InJitter(clientID string, now int64) bool {
	return e.view.InJitter(clientID, now)
}

// CurrentMultiplier returns the interval's ground-truth effective
// multiplier.
func (e *Additive) CurrentMultiplier(area int) float64 {
	if area < 0 || area >= len(e.cur) {
		return 1
	}
	return e.cur[area]
}

// PrevMultiplier returns the previous interval's effective multiplier.
func (e *Additive) PrevMultiplier(area int) float64 {
	if area < 0 || area >= len(e.prev) {
		return 1
	}
	return e.prev[area]
}

// CurrentPip returns the interval's ground-truth surcharge in USD.
func (e *Additive) CurrentPip(area int) float64 {
	if area < 0 || area >= len(e.pip) {
		return 0
	}
	return e.pip[area]
}

// NominalBase returns the base fare the pip is quoted against.
func (e *Additive) NominalBase() float64 { return e.base }
