// Package surge implements the surge pricing engine whose externally
// visible behaviour the paper reverse-engineers in §5:
//
//   - the city is hand-partitioned into surge areas with independent
//     multipliers (Figs 18, 19);
//   - multipliers update on a 5-minute clock, with the API observing the
//     change inside a ~35-second band of each interval and the Client app
//     inside a wider ~2-minute band (Fig 15);
//   - each area's multiplier is computed from the trailing window's
//     supply/demand slack and EWT, which is why the paper finds the
//     strongest cross-correlations at Δt = 0 (Figs 20, 21);
//   - the April 2015 datastream additionally contains "jitter": individual
//     clients receive the previous interval's multiplier for 20-30 seconds
//     at random moments — later confirmed by Uber to be a consistency bug
//     serving stale multipliers to random customers (Figs 14, 16, 17).
//
// The engine's inputs deliberately include latent demand (quantity
// demanded), which outside measurement cannot see; that is what makes the
// paper's forecasting models top out around R² ≈ 0.4 (Table 1).
package surge

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/bus"
	"repro/internal/obs"
	"repro/internal/sim"
)

// UpdatePeriod is the surge clock period in seconds.
const UpdatePeriod = 300

// OccupancySeconds is the car-time one fulfilled request consumes
// (dispatch approach plus trip); used to convert latent demand counts into
// capacity utilization.
const OccupancySeconds = 600

// Config configures an Engine.
type Config struct {
	Params sim.SurgeParams
	Seed   int64
	// Jitter enables the April 2015 consistency bug in the client
	// datastream. The API stream is never jittered.
	Jitter bool
	// JitterProb is the per-client, per-interval probability of one
	// jitter event. The default 0.25 is high enough that jitter
	// fragments a large share of client-stream surges (Fig 13's 40%
	// under a minute) while onsets rarely coincide across the 43 clients
	// (Fig 17's ~90% single-client events).
	JitterProb float64
	// Smoothing implements the paper's §8 proposal: update surge as an
	// exponentially weighted moving average instead of jumping to each
	// interval's raw value, making prices "more predictable and less
	// dramatic". 0 disables smoothing; otherwise it is the weight of the
	// previous multiplier (e.g. 0.6 keeps 60% of the old value).
	Smoothing float64
	// QuantStep overrides the multiplier grid. Uber's is 0.1 (the
	// default); Lyft's contemporaneous "Prime Time" used 25% increments
	// (0.25), which §3.3 mentions as the pricing the authors could not
	// ethically measure.
	QuantStep float64
	// KeepHistory records the ground-truth multiplier series per area,
	// one snapshot per completed update, in Engine.History. Experiments
	// and tests turn it on; a long-running uberd leaves it off — the
	// history grows by one slice per 5-minute update forever, a slow leak
	// on a server that never reads it.
	KeepHistory bool
}

// Engine computes and serves surge multipliers for one world.
type Engine struct {
	world *sim.World
	cfg   Config
	rng   *rand.Rand

	cur  []float64 // multiplier computed for the current interval
	prev []float64 // previous interval's multiplier

	intervalStart int64
	apiSwitchAt   int64 // when the API stream starts serving cur

	// view is the published immutable read state; every externally
	// visible multiplier/jitter answer is served through it, so the
	// lock-free query path and the engine's own accessors cannot diverge.
	view *View

	// History records the ground-truth multiplier series per area, one
	// entry per completed update, for tests and ablations. Empty unless
	// Config.KeepHistory is set.
	History [][]float64

	// nil-safe metric handles; zero until Instrument is called.
	mUpdates    *obs.Counter
	mChanges    *obs.Counter
	hUpdateDur  *obs.Histogram
	gMaxMult    *obs.Gauge
	gSurgeAreas *obs.Gauge

	// events receives one SurgeChange per area whose multiplier moved at
	// an update (see SetEventSink); areaKeys holds the precomputed
	// per-area event keys so the update loop does not format strings.
	events   func(bus.Event)
	areaKeys []string
}

// SetEventSink installs fn to receive a bus.KindSurgeChange event for
// every area whose multiplier changes at an update boundary. The
// callback runs synchronously inside update. Pass nil to detach.
func (e *Engine) SetEventSink(fn func(bus.Event)) { e.events = fn }

// Instrument wires the engine's metrics into reg:
//
//	surge_updates_total            completed 5-minute updates
//	surge_multiplier_changes_total areas whose multiplier moved at an update
//	surge_update_duration_seconds  wall-clock cost of one update pass
//	surge_max_multiplier           highest current multiplier across areas
//	surge_areas_surging            areas currently above 1.0
func (e *Engine) Instrument(reg *obs.Registry) {
	e.mUpdates = reg.Counter("surge_updates_total")
	e.mChanges = reg.Counter("surge_multiplier_changes_total")
	e.hUpdateDur = reg.Histogram("surge_update_duration_seconds", nil)
	e.gMaxMult = reg.Gauge("surge_max_multiplier")
	e.gSurgeAreas = reg.Gauge("surge_areas_surging")
}

// New builds an engine over the world and installs it as the world's surge
// provider (the feedback loop through which surge influences driver
// arrivals and passenger elasticity).
func New(w *sim.World, cfg Config) *Engine {
	if cfg.JitterProb == 0 {
		cfg.JitterProb = 0.25
	}
	if cfg.QuantStep == 0 {
		cfg.QuantStep = 0.1
	}
	n := len(w.Areas())
	e := &Engine{
		world: w,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5e1fca5e)),
		cur:   ones(n),
		prev:  ones(n),
	}
	e.areaKeys = make([]string, n)
	for a := range e.areaKeys {
		e.areaKeys[a] = fmt.Sprintf("area-%02d", a)
	}
	e.scheduleSwitches(w.Now() - w.Now()%UpdatePeriod)
	e.rebuildView()
	w.SetSurgeProvider(func(area int) float64 {
		return e.APIMultiplier(area, w.Now())
	})
	return e
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Step advances the engine to time now, recomputing multipliers at each
// 5-minute boundary. Call once per world tick, after world.Step.
func (e *Engine) Step(now int64) {
	boundary := now - now%UpdatePeriod
	if boundary > e.intervalStart {
		e.update(boundary)
	}
}

// rawPressures computes every area's raw — pre-smoothing, pre-quantized —
// surge signal for one interval: the trailing window's utilization and EWT
// features folded through the profile params, with the interval's
// stochastic demand shocks drawn from rng, capped at MaxMultiplier. Shared
// by the multiplicative and additive engines so both regimes price the
// same underlying market signal. The draw order — one city-wide shock,
// then one local shock per area — is part of the determinism contract.
func rawPressures(w *sim.World, p sim.SurgeParams, rng *rand.Rand, out []float64) {
	// Demand fluctuations have a city-wide component (weather, events,
	// transit failures) and an area-local one; NoiseCorr sets the mix.
	cityShock := rng.NormFloat64()
	corr := p.NoiseCorr
	local := math.Sqrt(math.Max(0, 1-corr*corr))

	// First pass: each area's raw utilization and EWT feature. The city
	// pressure is capacity-weighted (total demand over total capacity) so
	// small areas' noisy ratios don't distort it.
	utils := make([]float64, len(out))
	ewts := make([]float64, len(out))
	var cityLoad, cityCap float64
	for a := range out {
		st := w.ConsumeWindow(a)
		window := float64(st.Ticks) * float64(w.TickSeconds())
		if window <= 0 {
			window = UpdatePeriod
		}
		capacity := st.AvgIdle() + st.AvgBusy()
		load := float64(st.LatentDemand) * OccupancySeconds / window
		utils[a] = load / math.Max(capacity, 1)
		ewts[a] = st.AvgEWT()
		cityLoad += load
		cityCap += capacity
	}
	cityUtil := cityLoad / math.Max(cityCap, 1)

	for a := range out {
		// Area coupling pools each area's pressure with the city mean
		// (§6: SF's areas move together far more than Manhattan's).
		util := (1-p.AreaCoupling)*utils[a] + p.AreaCoupling*cityUtil
		// Stochastic demand fluctuation: the short window sees a noisy
		// sample of the true intensity. This is what makes most surges
		// last a single interval (Fig 13).
		shock := corr*cityShock + local*rng.NormFloat64()
		util *= 1 + p.Noise*shock

		raw := 1.0
		if denom := math.Max(1-p.UtilThreshold, 0.05); util > p.UtilThreshold {
			raw += p.Gain * (util - p.UtilThreshold) / denom
		}
		if ewt := ewts[a]; ewt > p.EWTRef {
			raw += p.EWTGain * (ewt - p.EWTRef)
		}
		if raw > p.MaxMultiplier {
			raw = p.MaxMultiplier
		}
		out[a] = raw
	}
}

// update recomputes every area's multiplier for the interval starting at
// boundary.
func (e *Engine) update(boundary int64) {
	updateStart := time.Now()
	copy(e.prev, e.cur)
	raws := make([]float64, len(e.cur))
	rawPressures(e.world, e.cfg.Params, e.rng, raws)
	for a := range e.cur {
		raw := raws[a]
		if s := e.cfg.Smoothing; s > 0 {
			raw = s*e.prev[a] + (1-s)*raw
		}
		e.cur[a] = QuantizeStep(raw, e.cfg.QuantStep)
	}
	if e.cfg.KeepHistory {
		e.History = append(e.History, append([]float64(nil), e.cur...))
	}
	e.scheduleSwitches(boundary)
	e.rebuildView()

	e.mUpdates.Inc()
	e.hUpdateDur.ObserveDuration(time.Since(updateStart))
	var changed int64
	maxMult := 1.0
	surging := 0.0
	for a := range e.cur {
		if e.cur[a] != e.prev[a] {
			changed++
			if e.events != nil {
				e.events(bus.Event{
					Time: boundary, Kind: bus.KindSurgeChange,
					Key: e.areaKeys[a], Area: int32(a), Num: e.cur[a],
				})
			}
		}
		if e.cur[a] > maxMult {
			maxMult = e.cur[a]
		}
		if e.cur[a] > 1 {
			surging++
		}
	}
	e.mChanges.Add(changed)
	e.gMaxMult.Set(maxMult)
	e.gSurgeAreas.Set(surging)
}

// InJitter reports whether clientID is inside an April-bug jitter window
// at simulation time now (always false when Jitter is off). The api layer
// uses this to count jitter servings without duplicating the schedule
// math.
func (e *Engine) InJitter(clientID string, now int64) bool {
	return e.view.InJitter(clientID, now)
}

// scheduleSwitches draws this interval's API propagation delay: updates
// land within a ~35 s band of each interval (Fig 15). Client-stream
// delays are per-client; see clientSwitchFor.
func (e *Engine) scheduleSwitches(boundary int64) {
	e.intervalStart = boundary
	e.apiSwitchAt = boundary + 5 + int64(e.rng.Float64()*35)
}

// Quantize snaps a raw multiplier to Uber's 0.1 steps with a floor of 1.
func Quantize(m float64) float64 { return QuantizeStep(m, 0.1) }

// QuantizeStep snaps a raw multiplier to the given grid with a floor of 1
// (0.1 for Uber, 0.25 for Lyft-style Prime Time).
func QuantizeStep(m, step float64) float64 {
	if step <= 0 {
		step = 0.1
	}
	q := math.Round(m/step) * step
	// Normalize binary noise (0.30000000000000004 -> 0.3).
	q = math.Round(q*1e9) / 1e9
	if q < 1 {
		return 1
	}
	return q
}

// APIMultiplier returns the multiplier the estimates/price API serves for
// an area at time now. The API stream has no jitter.
func (e *Engine) APIMultiplier(area int, now int64) float64 {
	return e.view.APIMultiplier(area, now)
}

// ClientMultiplier returns the multiplier the pingClient stream serves to
// a specific client at time now.
//
// In February mode (Jitter off) the client stream behaves exactly like
// the API: one shared switch moment inside a ~35-second band, so
// co-located clients always agree — the paper's calibration finding.
//
// In April mode (Jitter on) each client switches to the new multiplier at
// its own moment inside a ~2-minute band (Fig 15's wider spread), and
// per-client jitter windows leak the previous interval's multiplier for
// 20-30 s (Figs 14, 16, 17).
func (e *Engine) ClientMultiplier(clientID string, area int, now int64) float64 {
	return e.view.ClientMultiplier(clientID, area, now)
}

// clientSwitchFor derives the client's personal switch moment for the
// interval: 10-130 seconds in, deterministically from (client, interval,
// seed).
func (e *Engine) clientSwitchFor(clientID string, boundary int64) int64 {
	return clientSwitchAt(e.cfg.Seed, clientID, boundary)
}

// CurrentMultiplier returns the ground-truth multiplier computed for the
// current interval (what the whole area converges to once both streams
// switch).
func (e *Engine) CurrentMultiplier(area int) float64 {
	if area < 0 || area >= len(e.cur) {
		return 1
	}
	return e.cur[area]
}

// PrevMultiplier returns the previous interval's ground-truth multiplier.
func (e *Engine) PrevMultiplier(area int) float64 {
	if area < 0 || area >= len(e.prev) {
		return 1
	}
	return e.prev[area]
}

// jitterWindow deterministically derives the jitter schedule for a client
// in the interval starting at boundary: a hash of (seed, client, interval)
// decides whether a jitter event occurs, when it starts (uniform in the
// interval) and how long it lasts (20-30 s for 90% of events, 30-60 s for
// the rest — matching the paper's measured durations). It returns
// (-1, 0) when the client has no jitter event this interval.
func (e *Engine) jitterWindow(clientID string, boundary int64) (start, dur int64) {
	return jitterWindowFor(e.cfg.Seed, e.cfg.JitterProb, clientID, boundary)
}

// Runner couples a world and its multiplicative engine and advances them
// together; it is the minimal "backend main loop" the experiment harness
// and the surge tests drive. Code that must be engine-agnostic steps a
// Pricer directly (w.Step() then p.Step(w.Now())), as api.Service does.
type Runner struct {
	World  *sim.World
	Engine *Engine
}

// NewRunner builds a world plus engine pair.
func NewRunner(w *sim.World, cfg Config) *Runner {
	return &Runner{World: w, Engine: New(w, cfg)}
}

// Step advances the backend by one tick.
func (r *Runner) Step() {
	r.World.Step()
	r.Engine.Step(r.World.Now())
}

// RunUntil advances the backend to time end.
func (r *Runner) RunUntil(end int64) {
	for r.World.Now() < end {
		r.Step()
	}
}
