package surge

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// A View must answer exactly as the live engine does inside its interval,
// and keep answering for its own interval after the engine moves on.
func TestViewMatchesEngineAndStaysFrozen(t *testing.T) {
	p := sim.SanFrancisco()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: 9, StartTime: 17 * 3600})
	e := New(w, Config{Params: p.Surge, Seed: 9, Jitter: true})
	r := &Runner{World: w, Engine: e}
	r.RunUntil(18 * 3600)

	v := e.View()
	start := e.intervalStart
	for c := 0; c < 8; c++ {
		id := fmt.Sprintf("probe-%02d", c)
		for a := 0; a < len(w.Areas()); a++ {
			for dt := int64(0); dt < UpdatePeriod; dt += 13 {
				now := start + dt
				if got, want := v.ClientMultiplier(id, a, now), e.ClientMultiplier(id, a, now); got != want {
					t.Fatalf("ClientMultiplier(%s, %d, %d) view=%v engine=%v", id, a, now, got, want)
				}
				if got, want := v.APIMultiplier(a, now), e.APIMultiplier(a, now); got != want {
					t.Fatalf("APIMultiplier(%d, %d) view=%v engine=%v", a, now, got, want)
				}
				if got, want := v.InJitter(id, now), e.InJitter(id, now); got != want {
					t.Fatalf("InJitter(%s, %d) view=%v engine=%v", id, now, got, want)
				}
			}
		}
	}

	// Freeze the old view's answers, advance the engine across several
	// updates, and check the captured view is unaffected.
	type key struct {
		a  int
		dt int64
	}
	frozen := make(map[key]float64)
	for a := 0; a < len(w.Areas()); a++ {
		for dt := int64(0); dt < UpdatePeriod; dt += 60 {
			frozen[key{a, dt}] = v.ClientMultiplier("probe-00", a, start+dt)
		}
	}
	r.RunUntil(w.Now() + 4*UpdatePeriod)
	if e.View() == v {
		t.Fatal("engine did not publish a new view across updates")
	}
	for k, want := range frozen {
		if got := v.ClientMultiplier("probe-00", k.a, start+k.dt); got != want {
			t.Fatalf("frozen view changed: area %d dt %d: %v -> %v", k.a, k.dt, want, got)
		}
	}
}

// Out-of-range areas serve multiplier 1 from a View, as from the engine.
func TestViewOutOfRangeAreas(t *testing.T) {
	p := sim.Manhattan()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: 3})
	e := New(w, Config{Params: p.Surge, Seed: 3})
	v := e.View()
	for _, a := range []int{-1, len(w.Areas()), 99} {
		if got := v.APIMultiplier(a, w.Now()); got != 1 {
			t.Errorf("APIMultiplier(%d) = %v, want 1", a, got)
		}
		if got := v.ClientMultiplier("x", a, w.Now()); got != 1 {
			t.Errorf("ClientMultiplier(%d) = %v, want 1", a, got)
		}
	}
}
