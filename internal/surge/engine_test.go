package surge

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
)

func newRunner(t testing.TB, p *sim.CityProfile, seed int64, jitter bool) *Runner {
	t.Helper()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: seed})
	return NewRunner(w, Config{Params: p.Surge, Seed: seed, Jitter: jitter, KeepHistory: true})
}

func TestQuantize(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.3, 1}, {1.0, 1}, {1.04, 1}, {1.05, 1.1}, {1.26, 1.3},
		{2.549, 2.5}, {4.1, 4.1},
	}
	for _, c := range cases {
		if got := Quantize(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeStepLyft(t *testing.T) {
	// Lyft's Prime Time moves in 25% increments.
	cases := []struct{ in, want float64 }{
		{1.1, 1}, {1.13, 1.25}, {1.4, 1.5}, {1.8, 1.75}, {2.0, 2.0},
	}
	for _, c := range cases {
		if got := QuantizeStep(c.in, 0.25); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("QuantizeStep(%v, 0.25) = %v, want %v", c.in, got, c.want)
		}
	}
	// Zero step falls back to Uber's grid.
	if got := QuantizeStep(1.26, 0); got != 1.3 {
		t.Errorf("fallback = %v", got)
	}
}

func TestEngineWithPrimeTimeGrid(t *testing.T) {
	p := sim.SanFrancisco()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: 3})
	e := New(w, Config{Params: p.Surge, Seed: 3, QuantStep: 0.25, KeepHistory: true})
	r := &Runner{World: w, Engine: e}
	r.RunUntil(8 * 3600)
	for _, snap := range e.History {
		for _, m := range snap {
			if q := QuantizeStep(m, 0.25); math.Abs(q-m) > 1e-9 {
				t.Fatalf("multiplier %v not on the 0.25 grid", m)
			}
		}
	}
}

func TestEngineUpdatesOnFiveMinuteClock(t *testing.T) {
	r := newRunner(t, sim.SanFrancisco(), 1, false)
	r.RunUntil(3600)
	// 3600 s = 12 intervals; one update per boundary crossed.
	if got := len(r.Engine.History); got != 12 {
		t.Errorf("updates = %d, want 12", got)
	}
	for _, snap := range r.Engine.History {
		if len(snap) != 4 {
			t.Fatalf("snapshot covers %d areas, want 4", len(snap))
		}
		for _, m := range snap {
			if m < 1 {
				t.Errorf("multiplier %v below 1", m)
			}
			if m > r.World.Profile().Surge.MaxMultiplier {
				t.Errorf("multiplier %v above cap", m)
			}
			// Quantization: multiplier must sit on a 0.1 step.
			if q := Quantize(m); math.Abs(q-m) > 1e-9 {
				t.Errorf("multiplier %v not quantized", m)
			}
		}
	}
}

// TestHistoryOffByDefault is the regression test for the History leak: a
// long-running engine (uberd) must not accumulate one snapshot per
// 5-minute update forever. History records only under Config.KeepHistory,
// which experiments and tests set and uberd does not.
func TestHistoryOffByDefault(t *testing.T) {
	p := sim.SanFrancisco()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: 1})
	r := NewRunner(w, Config{Params: p.Surge, Seed: 1})
	r.RunUntil(3600)
	if got := len(r.Engine.History); got != 0 {
		t.Errorf("History grew to %d snapshots without KeepHistory", got)
	}
}

func TestEngineDeterminism(t *testing.T) {
	collect := func() []float64 {
		r := newRunner(t, sim.Manhattan(), 7, true)
		r.RunUntil(2 * 3600)
		var out []float64
		for _, snap := range r.Engine.History {
			out = append(out, snap...)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histories diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAPISwitchWithinInterval(t *testing.T) {
	r := newRunner(t, sim.SanFrancisco(), 3, false)
	// API switch time must fall in the first 5-40 s of the interval
	// (Fig 15: a ~35-second band).
	for i := 0; i < 20; i++ {
		r.RunUntil(r.World.Now() + 300)
		off := r.Engine.apiSwitchAt - r.Engine.intervalStart
		if off < 5 || off > 40 {
			t.Errorf("API switch offset %d s outside [5,40]", off)
		}
		for c := 0; c < 5; c++ {
			id := fmt.Sprintf("sw-%d", c)
			coff := r.Engine.clientSwitchFor(id, r.Engine.intervalStart) - r.Engine.intervalStart
			if coff < 10 || coff > 130 {
				t.Errorf("client switch offset %d s outside [10,130]", coff)
			}
		}
	}
}

func TestAPIMultiplierServesPrevBeforeSwitch(t *testing.T) {
	r := newRunner(t, sim.SanFrancisco(), 5, false)
	// Run until we find an interval where cur != prev for some area.
	for i := 0; i < 400; i++ {
		r.RunUntil(r.World.Now() + 300)
		e := r.Engine
		for a := 0; a < 4; a++ {
			if e.CurrentMultiplier(a) == e.PrevMultiplier(a) {
				continue
			}
			before := e.APIMultiplier(a, e.intervalStart+1)
			after := e.APIMultiplier(a, e.apiSwitchAt)
			if before != e.PrevMultiplier(a) {
				t.Errorf("before switch: got %v, want prev %v", before, e.PrevMultiplier(a))
			}
			if after != e.CurrentMultiplier(a) {
				t.Errorf("after switch: got %v, want cur %v", after, e.CurrentMultiplier(a))
			}
			return
		}
	}
	t.Skip("no multiplier change observed (extremely unlikely)")
}

func TestJitterServesStaleMultiplier(t *testing.T) {
	r := newRunner(t, sim.SanFrancisco(), 11, true)
	e := r.Engine
	found := false
	// Scan many intervals and synthetic clients for a jitter window and
	// verify the served value inside it equals the previous interval's.
	for i := 0; i < 200 && !found; i++ {
		r.RunUntil(r.World.Now() + 300)
		for c := 0; c < 43; c++ {
			id := fmt.Sprintf("client-%d", c)
			start, _ := e.jitterWindow(id, e.intervalStart)
			if start < 0 {
				continue
			}
			for a := 0; a < 4; a++ {
				if e.CurrentMultiplier(a) == e.PrevMultiplier(a) {
					continue
				}
				// Query inside the jitter window, after this client's
				// switch so that the base value would be cur.
				at := e.intervalStart + start + 1
				if at < e.clientSwitchFor(id, e.intervalStart) {
					continue
				}
				got := e.ClientMultiplier(id, a, at)
				if got != e.PrevMultiplier(a) {
					t.Errorf("jitter at t=%d served %v, want prev %v", at, got, e.PrevMultiplier(a))
				}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no observable jitter event found in 200 intervals")
	}
}

func TestJitterDisabledMeansConsistentClients(t *testing.T) {
	r := newRunner(t, sim.SanFrancisco(), 13, false)
	for i := 0; i < 50; i++ {
		r.RunUntil(r.World.Now() + 300)
		e := r.Engine
		// February mode: the client stream equals the API stream at every
		// instant, so any probe moment works.
		t1 := e.intervalStart + 150
		for a := 0; a < 4; a++ {
			m0 := e.ClientMultiplier("alpha", a, t1)
			m1 := e.ClientMultiplier("beta", a, t1)
			if m0 != m1 {
				t.Fatalf("clients disagree without jitter: %v vs %v", m0, m1)
			}
		}
	}
}

func TestJitterWindowProperties(t *testing.T) {
	r := newRunner(t, sim.Manhattan(), 17, true)
	e := r.Engine
	events, total := 0, 0
	shortDur := 0
	for k := int64(0); k < 2000; k++ {
		boundary := k * 300
		for c := 0; c < 5; c++ {
			id := fmt.Sprintf("c%d", c)
			total++
			start, dur := e.jitterWindow(id, boundary)
			if start < 0 {
				continue
			}
			events++
			if dur < 20 || dur > 60 {
				t.Errorf("jitter duration %d outside [20,60]", dur)
			}
			if dur <= 30 {
				shortDur++
			}
			if start < 0 || start+dur > 300 {
				t.Errorf("jitter window [%d,%d) outside interval", start, start+dur)
			}
		}
	}
	rate := float64(events) / float64(total)
	if rate < 0.18 || rate > 0.32 {
		t.Errorf("jitter rate = %.3f, want ~0.25", rate)
	}
	// ~90% of events last 20-30 s.
	frac := float64(shortDur) / float64(events)
	if frac < 0.8 || frac > 0.98 {
		t.Errorf("short-duration fraction = %.3f, want ~0.9", frac)
	}
}

func TestJitterIndependentAcrossClients(t *testing.T) {
	r := newRunner(t, sim.Manhattan(), 19, true)
	e := r.Engine
	// Count how often two specific clients jitter in the same interval;
	// with p=0.35 the expected coincidence rate is ~0.12, not ~0.35.
	both, either := 0, 0
	for k := int64(0); k < 3000; k++ {
		b := k * 300
		s1, _ := e.jitterWindow("one", b)
		s2, _ := e.jitterWindow("two", b)
		if s1 >= 0 || s2 >= 0 {
			either++
		}
		if s1 >= 0 && s2 >= 0 {
			both++
		}
	}
	if either == 0 {
		t.Fatal("no jitter at all")
	}
	coincidence := float64(both) / 3000
	if coincidence > 0.2 {
		t.Errorf("coincidence rate %.3f too high; jitter must be per-client", coincidence)
	}
}

func TestSurgeFrequenciesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	measure := func(p *sim.CityProfile) (frac, mean, max float64) {
		r := newRunner(t, p, 42, false)
		n := 0
		for r.World.Now() < 2*sim.SecondsPerDay {
			r.RunUntil(r.World.Now() + 300)
			for a := 0; a < 4; a++ {
				m := r.Engine.CurrentMultiplier(a)
				n++
				mean += m
				if m > 1 {
					frac++
				}
				if m > max {
					max = m
				}
			}
		}
		return frac / float64(n), mean / float64(n), max
	}
	mf, mm, mx := measure(sim.Manhattan())
	sf, sm, sx := measure(sim.SanFrancisco())
	// Paper: Manhattan surges 14% of the time, SF 57%; means 1.07 vs 1.36;
	// maxima 2.8 vs 4.1. Accept generous bands around those shapes.
	if mf < 0.05 || mf > 0.30 {
		t.Errorf("Manhattan surge fraction = %.3f, want ~0.14", mf)
	}
	if sf < 0.40 || sf > 0.75 {
		t.Errorf("SF surge fraction = %.3f, want ~0.57", sf)
	}
	if sf <= mf {
		t.Errorf("SF (%.2f) must surge more than Manhattan (%.2f)", sf, mf)
	}
	if mm < 1.01 || mm > 1.20 {
		t.Errorf("Manhattan mean = %.3f, want ~1.07", mm)
	}
	if sm < 1.15 || sm > 1.55 {
		t.Errorf("SF mean = %.3f, want ~1.36", sm)
	}
	if sm <= mm {
		t.Errorf("SF mean (%.2f) must exceed Manhattan's (%.2f)", sm, mm)
	}
	if mx < 1.5 || mx > 3.01 {
		t.Errorf("Manhattan max = %.1f, want ~2.8", mx)
	}
	if sx < 2.5 || sx > 4.51 {
		t.Errorf("SF max = %.1f, want ~4.1", sx)
	}
}

func TestElasticityFeedbackDampsDemand(t *testing.T) {
	// With the engine installed, priced-out requests must appear in SF
	// (it surges most of the time).
	r := newRunner(t, sim.SanFrancisco(), 23, false)
	r.RunUntil(12 * 3600)
	if r.World.TotalPricedOut == 0 {
		t.Error("no priced-out passengers despite surge feedback")
	}
}

func TestOutOfRangeAreas(t *testing.T) {
	r := newRunner(t, sim.Manhattan(), 29, true)
	e := r.Engine
	if e.APIMultiplier(-1, 0) != 1 || e.APIMultiplier(99, 0) != 1 {
		t.Error("out-of-range API multiplier should be 1")
	}
	if e.ClientMultiplier("x", -1, 0) != 1 || e.ClientMultiplier("x", 99, 0) != 1 {
		t.Error("out-of-range client multiplier should be 1")
	}
	if e.CurrentMultiplier(-1) != 1 || e.PrevMultiplier(99) != 1 {
		t.Error("out-of-range current/prev multiplier should be 1")
	}
}
