package surge

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Pricer is the pricing-engine contract the backend layers (api.Service,
// cmd/uberd, the experiment harness) program against. A Pricer owns the
// 5-minute update clock and per-area price state for one world, publishes
// an immutable View for the lock-free query path, and emits SurgeChange
// events when prices move.
//
// Implementations must keep three invariants the audit methodology and
// the parallel simulator rely on:
//
//   - Determinism: every externally visible answer is a pure function of
//     (Config.Seed, world history, clientID, time). Any incentive-response
//     hooks installed into the sim must run in serial phases only, so
//     TestStepWorkerInvariance holds at every worker count.
//   - Floor: multipliers never fall below 1; an engine that prices in
//     additive USD pips encodes them as effective multipliers ≥ 1.
//   - API stream purity: jitter (the April 2015 bug) may only ever affect
//     the client stream; APIMultiplier answers are never jittered.
//
// The three shipped engines: Mult2015 (the paper's §5 multiplicative
// algorithm, the default), Additive (Garg & Nazerzadeh's driver surge
// pips), and Withholding (Mult2015 plus Schröder et al.'s strategic
// driver withholding below a personal threshold).
type Pricer interface {
	// Name identifies the engine ("mult2015", "additive", "withholding").
	Name() string
	// Step advances the engine to time now, recomputing prices at each
	// 5-minute boundary. Call once per world tick, after world.Step.
	Step(now int64)
	// View returns the engine's current immutable read state.
	View() *View
	// Instrument wires the engine's metrics into reg.
	Instrument(reg *obs.Registry)
	// SetEventSink installs fn to receive a bus.KindSurgeChange event per
	// area whose price moves at an update boundary; nil detaches.
	SetEventSink(fn func(bus.Event))
	// APIMultiplier is the multiplier the estimates/price API serves.
	APIMultiplier(area int, now int64) float64
	// ClientMultiplier is the multiplier the pingClient stream serves to
	// one client (the only stream jitter may touch).
	ClientMultiplier(clientID string, area int, now int64) float64
	// InJitter reports whether the client is inside a jitter window.
	InJitter(clientID string, now int64) bool
	// CurrentMultiplier is the interval's ground-truth multiplier.
	CurrentMultiplier(area int) float64
	// PrevMultiplier is the previous interval's ground-truth multiplier.
	PrevMultiplier(area int) float64
}

var (
	_ Pricer = (*Engine)(nil)
	_ Pricer = (*Additive)(nil)
	_ Pricer = (*Withholding)(nil)
)

// Mult2015 is the paper's multiplicative surge algorithm — the engine
// this package reverse-engineers in §5 and the default pricing regime.
// The name aliases Engine so existing code and tests keep compiling.
type Mult2015 = Engine

// Name identifies the multiplicative 2015 engine.
func (e *Engine) Name() string { return "mult2015" }

// EngineNames lists the selectable pricing engines, default first.
func EngineNames() []string { return []string{"mult2015", "additive", "withholding"} }

// NewPricer builds the named pricing engine over the world and installs
// it as the world's price provider. An empty name selects the default
// mult2015 engine; an unknown name is an error (callers surface it at
// flag-parse time).
func NewPricer(w *sim.World, name string, cfg Config) (Pricer, error) {
	switch name {
	case "", "mult2015":
		return New(w, cfg), nil
	case "additive":
		return NewAdditive(w, cfg), nil
	case "withholding":
		return NewWithholding(w, cfg), nil
	default:
		return nil, fmt.Errorf("surge: unknown pricing engine %q (want one of %v)", name, EngineNames())
	}
}
