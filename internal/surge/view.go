package surge

import "hash/fnv"

// View is an immutable snapshot of the engine's externally visible
// pricing state: the current and previous interval multipliers and the
// interval's switch schedule. The engine publishes a fresh View at every
// 5-minute update; the api layer pairs it with a sim.Snapshot so the
// query path can resolve per-client multipliers, propagation delay, and
// jitter without locking the engine.
//
// All schedule math (API switch moment, per-client switch moments, jitter
// windows) is deterministic in (seed, client, interval), so a View can
// answer any client's question for any time inside its interval exactly
// as the live engine would.
type View struct {
	jitter        bool
	jitterProb    float64
	seed          int64
	intervalStart int64
	apiSwitchAt   int64
	cur, prev     []float64
}

// View returns the engine's current immutable read state. Call it after
// Step, under whatever serializes Step against other engine writes; the
// returned View itself is safe for unlimited concurrent use.
func (e *Engine) View() *View { return e.view }

// rebuildView publishes a fresh immutable View of cur/prev and the switch
// schedule; called whenever an update completes (and once at New).
func (e *Engine) rebuildView() {
	e.view = &View{
		jitter:        e.cfg.Jitter,
		jitterProb:    e.cfg.JitterProb,
		seed:          e.cfg.Seed,
		intervalStart: e.intervalStart,
		apiSwitchAt:   e.apiSwitchAt,
		cur:           append([]float64(nil), e.cur...),
		prev:          append([]float64(nil), e.prev...),
	}
}

// APIMultiplier returns the multiplier the estimates/price API serves for
// an area at time now. The API stream has no jitter.
func (v *View) APIMultiplier(area int, now int64) float64 {
	if area < 0 || area >= len(v.cur) {
		return 1
	}
	if now < v.apiSwitchAt {
		return v.prev[area]
	}
	return v.cur[area]
}

// ClientMultiplier returns the multiplier the pingClient stream serves to
// a specific client at time now; see Engine.ClientMultiplier for the
// February/April semantics.
func (v *View) ClientMultiplier(clientID string, area int, now int64) float64 {
	if area < 0 || area >= len(v.cur) {
		return 1
	}
	if !v.jitter {
		return v.APIMultiplier(area, now)
	}
	if start, dur := jitterWindowFor(v.seed, v.jitterProb, clientID, v.intervalStart); start >= 0 {
		t := now - v.intervalStart
		if t >= start && t < start+dur {
			return v.prev[area]
		}
	}
	if now < clientSwitchAt(v.seed, clientID, v.intervalStart) {
		return v.prev[area]
	}
	return v.cur[area]
}

// InJitter reports whether clientID is inside an April-bug jitter window
// at time now (always false when jitter is off).
func (v *View) InJitter(clientID string, now int64) bool {
	if !v.jitter {
		return false
	}
	start, dur := jitterWindowFor(v.seed, v.jitterProb, clientID, v.intervalStart)
	if start < 0 {
		return false
	}
	t := now - v.intervalStart
	return t >= start && t < start+dur
}

// CurrentMultiplier returns the interval's ground-truth multiplier.
func (v *View) CurrentMultiplier(area int) float64 {
	if area < 0 || area >= len(v.cur) {
		return 1
	}
	return v.cur[area]
}

// clientSwitchAt derives the client's personal switch moment for the
// interval: 10-130 seconds in, deterministically from (client, interval,
// seed).
func clientSwitchAt(seed int64, clientID string, boundary int64) int64 {
	u := hash01(seed, clientID, boundary, 0xc11e)
	return boundary + 10 + int64(u*120)
}

// jitterWindowFor deterministically derives the jitter schedule for a
// client in the interval starting at boundary; see Engine.jitterWindow.
// It returns (-1, 0) when the client has no jitter event this interval.
func jitterWindowFor(seed int64, prob float64, clientID string, boundary int64) (start, dur int64) {
	v := hashBits(seed, clientID, boundary, 0x71772)
	u1 := float64(v&0xFFFF) / 65536     // occurrence
	u2 := float64(v>>16&0xFFFF) / 65536 // start offset
	u3 := float64(v>>32&0xFFFF) / 65536 // duration
	if u1 >= prob {
		return -1, 0
	}
	if u3 < 0.9 {
		dur = 20 + int64(u3/0.9*10) // 20-30 s
	} else {
		dur = 30 + int64((u3-0.9)/0.1*30) // 30-60 s
	}
	maxStart := int64(UpdatePeriod) - dur
	start = int64(u2 * float64(maxStart))
	return start, dur
}

// hashBits mixes (client, interval, seed, salt) into 64 deterministic
// pseudo-random bits.
func hashBits(seed int64, clientID string, boundary, salt int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(clientID))
	var buf [24]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(boundary >> (8 * i))
		buf[8+i] = byte(seed >> (8 * i))
		buf[16+i] = byte(salt >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// hash01 returns a deterministic uniform value in [0, 1).
func hash01(seed int64, clientID string, boundary, salt int64) float64 {
	return float64(hashBits(seed, clientID, boundary, salt)&0xFFFFFF) / float64(1<<24)
}
