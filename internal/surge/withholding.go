package surge

import "repro/internal/sim"

// Withholding is the 2015 multiplicative engine coupled to Schröder et
// al.'s strategic driver response (*Anomalous supply shortages from
// dynamic pricing in on-demand mobility*): each driver carries a
// personal surge threshold, and when the posted multiplier in their area
// sits below it, they may go offline for a spell rather than accept
// low-priced work — withholding supply exactly when the multiplier
// should be clearing the market.
//
// Pricing is bit-identical to Mult2015 (same Config, same RNG stream,
// same View and jitter semantics); only the supply side changes, through
// the incentive-response hook installed into the world's serial spawn
// phase (sim.WithholdingConfig). Withheld drivers leave through the
// same suspension machinery as regulator force-offline events, so they
// show up as DriverSuspend events and in TotalSuspended/TotalWithheld.
type Withholding struct {
	*Engine
}

// NewWithholding builds a mult2015-priced engine and arms the world's
// strategic-withholding response with the default Schröder et al.
// parameters.
func NewWithholding(w *sim.World, cfg Config) *Withholding {
	e := &Withholding{Engine: New(w, cfg)}
	w.SetWithholding(sim.DefaultWithholding())
	return e
}

// Name identifies the withholding engine.
func (e *Withholding) Name() string { return "withholding" }
