package surge

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/sim"
)

// newPricerWorld builds a Manhattan world with a demand shock hot enough
// to guarantee surge activity, fronted by the named pricing engine.
func newPricerWorld(t *testing.T, name string, seed int64, workers int, jitter bool) (*sim.World, Pricer) {
	t.Helper()
	p := sim.Manhattan()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: seed, Workers: workers})
	pr, err := NewPricer(w, name, Config{Params: p.Surge, Seed: seed, Jitter: jitter})
	if err != nil {
		t.Fatalf("NewPricer(%q): %v", name, err)
	}
	w.InjectDemandShock(0, 8, 4*3600)
	w.InjectDemandShock(2, 8, 4*3600)
	return w, pr
}

// TestPricerConformance runs every engine through the interface contract
// the backends rely on: names round-trip through the selector, ground
// truth never drops below the floor of 1, the published View agrees with
// the engine, and the API stream serves at most the interval's prev/cur
// pair — never a jittered third value.
func TestPricerConformance(t *testing.T) {
	for _, name := range EngineNames() {
		t.Run(name, func(t *testing.T) {
			w, pr := newPricerWorld(t, name, 11, 0, true)
			if pr.Name() != name {
				t.Fatalf("Name() = %q, want %q", pr.Name(), name)
			}
			areas := len(w.Areas())
			sawSurge := false
			for w.Now() < 2*3600 {
				w.Step()
				pr.Step(w.Now())
				now := w.Now()
				v := pr.View()
				for a := 0; a < areas; a++ {
					cur, prev := pr.CurrentMultiplier(a), pr.PrevMultiplier(a)
					if cur < 1 || prev < 1 {
						t.Fatalf("area %d: multiplier below floor: cur=%v prev=%v", a, cur, prev)
					}
					if cur > 1 {
						sawSurge = true
					}
					if vc := v.CurrentMultiplier(a); vc != cur {
						t.Fatalf("area %d: view cur %v != engine cur %v", a, vc, cur)
					}
					api := pr.APIMultiplier(a, now)
					if api != v.APIMultiplier(a, now) {
						t.Fatalf("area %d: engine API %v != view API %v", a, api, v.APIMultiplier(a, now))
					}
					if api != cur && api != prev {
						t.Fatalf("area %d: API stream served %v, not the interval's prev %v / cur %v",
							a, api, prev, cur)
					}
				}
			}
			if !sawSurge {
				t.Fatal("shocked world never surged; conformance checks exercised nothing")
			}
		})
	}
}

// TestAdditiveNeverJitters pins the Additive datastream's defining
// absence: the additive rollout postdates the April bug, so even a
// Config asking for jitter yields none — client stream and API stream
// agree for every client at every moment.
func TestAdditiveNeverJitters(t *testing.T) {
	w, pr := newPricerWorld(t, "additive", 5, 0, true)
	clients := []string{"c00", "c07", "c13", "c21", "c34"}
	for w.Now() < 3600 {
		w.Step()
		pr.Step(w.Now())
		now := w.Now()
		for _, id := range clients {
			if pr.InJitter(id, now) {
				t.Fatalf("client %s in a jitter window at t=%d under the additive engine", id, now)
			}
			for a := 0; a < len(w.Areas()); a++ {
				if cm, am := pr.ClientMultiplier(id, a, now), pr.APIMultiplier(a, now); cm != am {
					t.Fatalf("client %s area %d t=%d: client stream %v != API stream %v", id, a, now, cm, am)
				}
			}
		}
	}
}

// TestAdditivePipsOnGrid pins the engine's external signature: every
// effective multiplier encodes a USD pip on the $0.25 grid — the
// off-multiplier-grid residue the 2015 audit methodology can detect.
func TestAdditivePipsOnGrid(t *testing.T) {
	w, pr := newPricerWorld(t, "additive", 17, 0, false)
	add := pr.(*Additive)
	base := add.NominalBase()
	sawPip := false
	for w.Now() < 2*3600 {
		w.Step()
		pr.Step(w.Now())
		for a := 0; a < len(w.Areas()); a++ {
			pip := (pr.CurrentMultiplier(a) - 1) * base
			if pip != add.CurrentPip(a) {
				t.Fatalf("area %d: multiplier encodes pip %v, engine says %v", a, pip, add.CurrentPip(a))
			}
			cents := pip * 100
			if q := float64(int64(cents/25+0.5)) * 25; cents < 0 || absDiff(q, cents) > 1e-6 {
				t.Fatalf("area %d: pip $%.4f not on the $0.25 grid", a, pip)
			}
			if pip > 0 {
				sawPip = true
			}
		}
	}
	if !sawPip {
		t.Fatal("shocked world never produced a nonzero pip")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// engineStateHash digests the complete exported end state of a run —
// every driver column, every lifetime counter, the economics, and the
// engine's ground-truth multipliers — so any divergence between worker
// counts shows up, not just aggregate drift.
func engineStateHash(w *sim.World, pr Pricer) uint64 {
	h := fnv.New64a()
	w.EachDriver(func(d *sim.Driver) {
		fmt.Fprintf(h, "%d|%s|%d|%v|%v|%d|%v|%v|%d|%d|%v|%v\n",
			d.ID, d.Session, d.Type, d.Pos, d.State, d.PoolRiders,
			d.Pickup, d.Dest, d.OfflineAt, int64(d.PriceFactor*1e9), d.EarnedUSD, d.PathPoints())
	})
	fmt.Fprintf(h, "counters|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
		w.TotalSpawned, w.TotalOffline, w.TotalSuspended, w.TotalResumed, w.TotalWithheld,
		w.TotalPickups, w.TotalDropoffs, w.TotalPricedOut, w.TotalUnmet, w.TotalPoolJoins)
	fmt.Fprintf(h, "economics|%v|%v\n", w.FareVolume, w.CommissionUSD)
	for a := 0; a < len(w.Areas()); a++ {
		fmt.Fprintf(h, "mult|%d|%v|%v\n", a, pr.CurrentMultiplier(a), pr.PrevMultiplier(a))
	}
	return h.Sum64()
}

// TestStepWorkerInvarianceEngines is the per-engine golden-hash gate: a
// world fronted by each pricing engine — including Withholding's
// incentive-response hook in the serial spawn phase — must reach a
// bit-identical exported state at workers 1, 2, and 8.
func TestStepWorkerInvarianceEngines(t *testing.T) {
	for _, name := range EngineNames() {
		t.Run(name, func(t *testing.T) {
			var want uint64
			var withheld int64
			for i, workers := range []int{1, 2, 8} {
				w, pr := newPricerWorld(t, name, 42, workers, true)
				for w.Now() < 3600 {
					w.Step()
					pr.Step(w.Now())
				}
				h := engineStateHash(w, pr)
				if i == 0 {
					want, withheld = h, w.TotalWithheld
					continue
				}
				if h != want {
					t.Fatalf("workers=%d: state hash %x, want %x (workers=1)", workers, h, want)
				}
			}
			if name == "withholding" && withheld == 0 {
				t.Fatal("withholding engine never withheld a driver; invariance exercised nothing")
			}
		})
	}
}
