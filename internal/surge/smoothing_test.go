package surge

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// volatility sums |Δm| over an engine's history for one area.
func volatility(history [][]float64, area int) float64 {
	var v float64
	for i := 1; i < len(history); i++ {
		v += math.Abs(history[i][area] - history[i-1][area])
	}
	return v
}

// episodes counts distinct surge episodes (runs of m > 1) in the history.
func episodes(history [][]float64, area int) int {
	n := 0
	surging := false
	for _, snap := range history {
		if snap[area] > 1 && !surging {
			n++
			surging = true
		} else if snap[area] <= 1 {
			surging = false
		}
	}
	return n
}

func TestSmoothingReducesVolatility(t *testing.T) {
	// The paper's §8 proposal: a weighted moving average should make
	// surge changes less dramatic and episodes less fragmented.
	run := func(smoothing float64) *Engine {
		p := sim.SanFrancisco()
		w := sim.NewWorld(sim.Config{Profile: p, Seed: 99})
		e := New(w, Config{Params: p.Surge, Seed: 99, Smoothing: smoothing, KeepHistory: true})
		r := &Runner{World: w, Engine: e}
		r.RunUntil(16 * 3600)
		return e
	}
	raw := run(0)
	smooth := run(0.6)
	if len(raw.History) != len(smooth.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(raw.History), len(smooth.History))
	}
	var vRaw, vSmooth float64
	epRaw, epSmooth := 0, 0
	for a := 0; a < 4; a++ {
		vRaw += volatility(raw.History, a)
		vSmooth += volatility(smooth.History, a)
		epRaw += episodes(raw.History, a)
		epSmooth += episodes(smooth.History, a)
	}
	if vSmooth >= vRaw {
		t.Errorf("smoothing did not reduce volatility: %.1f vs %.1f", vSmooth, vRaw)
	}
	if epRaw == 0 {
		t.Fatal("no surge episodes at all")
	}
	// Fragmentation: smoothing merges flickering episodes.
	if epSmooth >= epRaw {
		t.Errorf("smoothing did not reduce episode count: %d vs %d", epSmooth, epRaw)
	}
}

func TestSmoothingStillTracksDemand(t *testing.T) {
	// Smoothing must lag, not erase, surge: a smoothed SF still surges a
	// substantial fraction of the time.
	p := sim.SanFrancisco()
	w := sim.NewWorld(sim.Config{Profile: p, Seed: 3})
	e := New(w, Config{Params: p.Surge, Seed: 3, Smoothing: 0.6, KeepHistory: true})
	r := &Runner{World: w, Engine: e}
	r.RunUntil(12 * 3600)
	surged, total := 0, 0
	for _, snap := range e.History {
		for _, m := range snap {
			total++
			if m > 1 {
				surged++
			}
		}
	}
	frac := float64(surged) / float64(total)
	if frac < 0.2 {
		t.Errorf("smoothed SF surge fraction = %.2f, want > 0.2", frac)
	}
}

func TestSmoothingZeroIsIdentity(t *testing.T) {
	// Smoothing=0 must reproduce the unsmoothed engine exactly.
	run := func(smoothing float64) [][]float64 {
		p := sim.Manhattan()
		w := sim.NewWorld(sim.Config{Profile: p, Seed: 5})
		e := New(w, Config{Params: p.Surge, Seed: 5, Smoothing: smoothing, KeepHistory: true})
		r := &Runner{World: w, Engine: e}
		r.RunUntil(2 * 3600)
		return e.History
	}
	a, b := run(0), run(0)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("default engine not deterministic at %d/%d", i, j)
			}
		}
	}
}
