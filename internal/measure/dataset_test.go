package measure

import (
	"math"
	"testing"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

// runCampaign runs a full measurement campaign over the window and
// returns the dataset.
func runCampaign(t testing.TB, profile *sim.CityProfile, seed, start, end int64, jitter bool) (*Dataset, *client.Campaign) {
	t.Helper()
	svc := api.NewBackend(profile, seed, jitter)
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)

	areas := profile.SurgeAreas()
	clientAreas := make([]int, len(pts))
	for i, p := range pts {
		clientAreas[i] = sim.AreaOf(areas, p)
	}
	ds := NewDataset(Config{
		Profile:     profile,
		Start:       start,
		End:         end,
		ClientAreas: clientAreas,
	}, len(pts))
	camp.AddSink(ds)

	svc.RunUntil(start)
	camp.RunSim(svc, end)
	ds.Close()
	return ds, camp
}

// One shared 3-hour Manhattan campaign for the cheap assertions.
var mhtnDS *Dataset

func getMHTN(t testing.TB) *Dataset {
	if mhtnDS == nil {
		mhtnDS, _ = runCampaign(t, sim.Manhattan(), 21, 0, 3*3600, false)
	}
	return mhtnDS
}

func TestSupplySeriesPlausible(t *testing.T) {
	ds := getMHTN(t)
	s := ds.SupplySeries(core.UberX)
	nonEmpty := 0
	for _, v := range s.Values {
		if !math.IsNaN(v) {
			nonEmpty++
			if v < 1 || v > 2000 {
				t.Errorf("supply value %v implausible", v)
			}
		}
	}
	if nonEmpty < s.Len()/2 {
		t.Errorf("only %d/%d supply buckets filled", nonEmpty, s.Len())
	}
	// UberX must outnumber UberXL (fleet shares).
	xl := ds.SupplySeries(core.UberXL)
	var sumX, sumXL, n float64
	for i := range s.Values {
		if !math.IsNaN(s.Values[i]) && !math.IsNaN(xl.Values[i]) {
			sumX += s.Values[i]
			sumXL += xl.Values[i]
			n++
		}
	}
	if n > 0 && sumX <= sumXL {
		t.Errorf("UberX supply (%v) should exceed UberXL (%v)", sumX/n, sumXL/n)
	}
}

func TestDeathSeriesBounded(t *testing.T) {
	ds := getMHTN(t)
	deaths := ds.DeathSeries(core.UberX)
	var total float64
	for _, v := range deaths.Values {
		if !math.IsNaN(v) {
			if v < 0 {
				t.Errorf("negative deaths %v", v)
			}
			total += v
		}
	}
	if total == 0 {
		t.Error("no deaths recorded in 3 hours")
	}
}

func TestEWTSamplesInRange(t *testing.T) {
	ds := getMHTN(t)
	if len(ds.EWTSamples) == 0 {
		t.Fatal("no EWT samples")
	}
	for _, v := range ds.EWTSamples[:min(1000, len(ds.EWTSamples))] {
		if v <= 0 || v > 43.1 {
			t.Errorf("EWT sample %v minutes out of range", v)
		}
	}
}

func TestSurgeSamplesQuantized(t *testing.T) {
	ds := getMHTN(t)
	if len(ds.SurgeSamples) == 0 {
		t.Fatal("no surge samples")
	}
	for _, v := range ds.SurgeSamples[:min(2000, len(ds.SurgeSamples))] {
		if v < 1 {
			t.Errorf("surge sample %v below 1", v)
		}
		got := float64(v)
		q := math.Round(got*10) / 10
		if math.Abs(q-got) > 1e-5 {
			t.Errorf("surge sample %v not on 0.1 grid", v)
		}
	}
}

func TestAreaSeriesShapes(t *testing.T) {
	ds := getMHTN(t)
	if ds.NumAreas() != 4 {
		t.Fatalf("areas = %d", ds.NumAreas())
	}
	for a := 0; a < ds.NumAreas(); a++ {
		sup := ds.AreaSupplySeries(a)
		ewt := ds.AreaEWTSeries(a)
		sur := ds.AreaSurgeSeries(a)
		if sup.Len() != 36 || ewt.Len() != 36 || sur.Len() != 36 {
			t.Fatalf("area %d: series lengths %d/%d/%d, want 36", a, sup.Len(), ewt.Len(), sur.Len())
		}
		for i, v := range sur.Values {
			if math.IsNaN(v) || v < 1 {
				t.Errorf("area %d interval %d surge %v", a, i, v)
			}
		}
	}
}

func TestLifespansCleaned(t *testing.T) {
	// Lifespans need a longer window to accumulate; reuse the 3h dataset.
	ds := getMHTN(t)
	spans := ds.Lifespans(core.UberX)
	if len(spans) == 0 {
		t.Fatal("no UberX lifespans")
	}
	for _, s := range spans {
		if s < shortLivedSeconds {
			t.Errorf("lifespan %v below cleaning threshold", s)
		}
	}
}

func TestHeatmapOutputs(t *testing.T) {
	ds := getMHTN(t)
	withEWT := 0
	for i := 0; i < client.NumClients; i++ {
		if !math.IsNaN(ds.ClientMeanEWT(i)) {
			withEWT++
			if m := ds.ClientMeanEWT(i); m <= 0 || m > 43.1 {
				t.Errorf("client %d mean EWT %v", i, m)
			}
		}
	}
	if withEWT < client.NumClients*9/10 {
		t.Errorf("only %d clients have EWT heatmap data", withEWT)
	}
	// Day-unique counts appear once a full day has elapsed; with a 3 h
	// run, Close flushes partial days.
	nonzero := 0
	for _, days := range ds.ClientCarDays {
		for _, n := range days {
			if n > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Error("no heatmap car counts recorded")
	}
}

func TestCleaningStats(t *testing.T) {
	ds := getMHTN(t)
	c := ds.Cleaning()
	if c.TotalCars == 0 {
		t.Fatal("no cars tracked")
	}
	if c.ShortLived != ds.ShortLived {
		t.Errorf("ShortLived mismatch: %d vs %d", c.ShortLived, ds.ShortLived)
	}
	if len(c.ObsPerCar)+c.ShortLived != c.TotalCars {
		t.Errorf("partition broken: %d surviving + %d filtered != %d total",
			len(c.ObsPerCar), c.ShortLived, c.TotalCars)
	}
	for _, n := range c.ObsPerCar {
		if n < 1 {
			t.Fatalf("surviving car with %v observations", n)
		}
	}
}

func TestCloseIdempotentEnough(t *testing.T) {
	// Close twice must not panic or duplicate day flushes unreasonably.
	ds, _ := runCampaign(t, sim.Manhattan(), 23, 0, 1800, false)
	before := len(ds.ClientCarDays[0])
	ds.Close()
	after := len(ds.ClientCarDays[0])
	if after > before+1 {
		t.Errorf("Close duplicated flushes: %d -> %d", before, after)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pingWithCar builds a minimal UberX response showing one car at pos.
func pingWithCar(now int64, carID string, pos geo.LatLng) *core.PingResponse {
	return &core.PingResponse{
		Time: now,
		Types: []core.TypeStatus{{
			Type: core.UberX, TypeName: "uberX", Surge: 1, EWTSeconds: 120,
			Cars: []core.CarView{{ID: carID, Pos: pos}},
		}},
	}
}

// interiorCar returns a wire position well inside the measurement rect, so
// a disappearance there passes the edge filter.
func interiorCar(profile *sim.CityProfile) (geo.LatLng, geo.Point) {
	r := profile.MeasureRect
	center := geo.Point{X: r.Min.X + r.Width()/2, Y: r.Min.Y + r.Height()/2}
	return geo.NewProjection(profile.Origin).ToLatLng(center), center
}

func newGapTestDataset(profile *sim.CityProfile) *Dataset {
	return NewDataset(Config{
		Profile: profile, Start: 0, End: 3600, ClientAreas: []int{0, 0},
	}, 2)
}

func deathTotal(ds *Dataset) float64 {
	var sum float64
	for _, v := range ds.DeathSeries(core.UberX).Values {
		if !math.IsNaN(v) {
			sum += v
		}
	}
	return sum
}

// TestGapSuppressesPhantomDeath is the skew the gap plumbing exists to
// prevent: a car that "disappears" because its only watcher failed to ping
// must not be counted as a death (phantom fulfilled demand).
func TestGapSuppressesPhantomDeath(t *testing.T) {
	profile := sim.Manhattan()
	carLL, clientPos := interiorCar(profile)

	// Control: the car vanishes with its watcher healthy → one death.
	ctl := newGapTestDataset(profile)
	ctl.Observe(0, clientPos, pingWithCar(5, "car-1", carLL))
	ctl.EndRound(5)
	ctl.EndRound(10)
	ctl.EndRound(15) // second consecutive miss confirms the death
	if got := deathTotal(ctl); got != 1 {
		t.Fatalf("control deaths = %v, want 1", got)
	}

	// Same disappearance, but the watcher gapped: blind miss, no death.
	ds := newGapTestDataset(profile)
	ds.Observe(0, clientPos, pingWithCar(5, "car-1", carLL))
	ds.EndRound(5)
	for _, now := range []int64{10, 15, 20} {
		ds.ObserveGap(0, clientPos, 5, nil)
		ds.EndRound(now)
	}
	if got := deathTotal(ds); got != 0 {
		t.Errorf("deaths with blind watcher = %v, want 0", got)
	}
	if ds.Gaps != 3 || ds.ClientGaps[0] != 3 {
		t.Errorf("Gaps = %d, ClientGaps[0] = %d, want 3, 3", ds.Gaps, ds.ClientGaps[0])
	}

	// A gap on some *other* client does not blind this car's watcher: the
	// death is still counted.
	other := newGapTestDataset(profile)
	other.Observe(0, clientPos, pingWithCar(5, "car-1", carLL))
	other.EndRound(5)
	for _, now := range []int64{10, 15} {
		other.ObserveGap(1, clientPos, 5, nil)
		other.EndRound(now)
	}
	if got := deathTotal(other); got != 1 {
		t.Errorf("deaths with unrelated gap = %v, want 1", got)
	}
}

// TestGapThenRecoveryKeepsCarAlive checks that a blind round does not
// advance the missed count: once the watcher recovers and the car is still
// there, tracking continues as if nothing happened.
func TestGapThenRecoveryKeepsCarAlive(t *testing.T) {
	profile := sim.Manhattan()
	carLL, clientPos := interiorCar(profile)
	ds := newGapTestDataset(profile)

	ds.Observe(0, clientPos, pingWithCar(5, "car-1", carLL))
	ds.EndRound(5)
	ds.ObserveGap(0, clientPos, 5, nil) // one blind round
	ds.EndRound(10)
	ds.Observe(0, clientPos, pingWithCar(15, "car-1", carLL)) // recovered
	ds.EndRound(15)
	// Now a real two-round disappearance: exactly one death, at the
	// post-recovery position.
	ds.EndRound(20)
	ds.EndRound(25)
	if got := deathTotal(ds); got != 1 {
		t.Errorf("deaths = %v, want 1 (gap must not double-count or lose the car)", got)
	}
}
