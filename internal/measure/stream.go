// StreamAnalyzer: the always-on counterpart of Dataset. Where Dataset
// replays a finished campaign store, StreamAnalyzer consumes the live
// event bus (api.pings, sim.cars, surge.changes) and maintains the same
// 5-minute aggregates the paper's Figs 20/21 correlate — supply (unique
// visible cars), fulfilled demand (trip dispatches), EWT, and surge —
// windowed, so `analyze -follow` can report while the campaign runs.
//
// Scope: region-wide series only. The per-area breakdown needs each
// client's surge-area assignment, which the batch path takes from the
// campaign header; a live tail has no header, so it reports the
// city-wide aggregate and leaves per-area work to the stored campaign.

package measure

import (
	"fmt"
	"math"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/stats"
)

// StreamConfig configures a StreamAnalyzer.
type StreamConfig struct {
	// Window is the aggregation bucket in simulation seconds
	// (default Interval, the paper's 5 minutes).
	Window int64
	// History bounds the windows retained for correlations
	// (default 288 = one day of 5-minute windows).
	History int
}

// WindowStats is one sealed aggregation window.
type WindowStats struct {
	// Start is the window's first simulation second.
	Start int64
	// Supply is the number of distinct car IDs observed in pings.
	Supply int
	// Dispatches counts trip-dispatch events (fulfilled demand).
	Dispatches int
	// MeanEWT is the mean UberX wait estimate over the window's pings,
	// in seconds; NaN-free (0 when no pings carried UberX).
	MeanEWT float64
	// MeanSurge is the mean UberX multiplier over the window's pings.
	MeanSurge float64
	// Pings counts the observations aggregated.
	Pings int
}

// StreamAnalyzer aggregates bus events into rolling windows. Not safe
// for concurrent use: one goroutine feeds it (the tail loop).
type StreamAnalyzer struct {
	window  int64
	history int

	cur      WindowStats
	curOpen  bool
	cars     map[string]struct{}
	ewtSum   float64
	surgeSum float64
	samples  int

	windows []WindowStats
	// Late counts events that arrived after their window was sealed
	// (cross-partition skew); they are folded into the current window
	// rather than reopening a sealed one.
	Late int64
}

// NewStreamAnalyzer returns an analyzer with cfg's window and history
// (defaults applied).
func NewStreamAnalyzer(cfg StreamConfig) *StreamAnalyzer {
	if cfg.Window <= 0 {
		cfg.Window = Interval
	}
	if cfg.History <= 0 {
		cfg.History = 288
	}
	return &StreamAnalyzer{
		window:  cfg.Window,
		history: cfg.History,
		cars:    make(map[string]struct{}),
	}
}

// Feed consumes one bus event. When the event's time enters a new
// window, the finished window is sealed and returned (nil otherwise).
func (a *StreamAnalyzer) Feed(ev bus.Event) *WindowStats {
	var sealed *WindowStats
	start := ev.Time - ev.Time%a.window
	if a.curOpen && start > a.cur.Start {
		sealed = a.seal()
	}
	if !a.curOpen {
		a.cur = WindowStats{Start: start}
		a.curOpen = true
	}
	if start < a.cur.Start {
		a.Late++
	}
	switch ev.Kind {
	case bus.KindPing:
		a.feedPing(ev)
	case bus.KindTripDispatch:
		a.cur.Dispatches++
	}
	return sealed
}

func (a *StreamAnalyzer) feedPing(ev bus.Event) {
	if len(ev.Data) == 0 {
		return
	}
	o, err := bus.DecodeObservation(ev.Data)
	if err != nil {
		return
	}
	a.cur.Pings++
	for i := range o.Types {
		t := &o.Types[i]
		for _, c := range t.Cars {
			a.cars[c.ID] = struct{}{}
		}
		if t.Name == core.UberX.String() {
			a.ewtSum += t.EWT
			a.surgeSum += t.Surge
			a.samples++
		}
	}
}

func (a *StreamAnalyzer) seal() *WindowStats {
	w := a.cur
	w.Supply = len(a.cars)
	if a.samples > 0 {
		w.MeanEWT = a.ewtSum / float64(a.samples)
		w.MeanSurge = a.surgeSum / float64(a.samples)
	}
	a.windows = append(a.windows, w)
	if len(a.windows) > a.history {
		a.windows = a.windows[len(a.windows)-a.history:]
	}
	a.curOpen = false
	clear(a.cars)
	a.ewtSum, a.surgeSum, a.samples = 0, 0, 0
	return &w
}

// Flush seals and returns the partial current window, if any.
func (a *StreamAnalyzer) Flush() *WindowStats {
	if !a.curOpen {
		return nil
	}
	return a.seal()
}

// Windows returns the sealed windows, oldest first (bounded by History).
func (a *StreamAnalyzer) Windows() []WindowStats { return a.windows }

// Correlations reports the Fig 20/21-style Pearson correlations of mean
// surge against supply, EWT, and dispatches across the sealed windows,
// and the window count they were computed over. A correlation whose
// inputs are degenerate (fewer than 3 windows, or a constant series)
// comes back NaN.
func (a *StreamAnalyzer) Correlations() (surgeSupply, surgeEWT, surgeDemand float64, n int) {
	n = len(a.windows)
	surge := make([]float64, n)
	supply := make([]float64, n)
	ewt := make([]float64, n)
	demand := make([]float64, n)
	for i, w := range a.windows {
		surge[i] = w.MeanSurge
		supply[i] = float64(w.Supply)
		ewt[i] = w.MeanEWT
		demand[i] = float64(w.Dispatches)
	}
	corr := func(y []float64) float64 {
		r, err := stats.Pearson(surge, y)
		if err != nil {
			return math.NaN()
		}
		return r
	}
	return corr(supply), corr(ewt), corr(demand), n
}

// String formats one window as the `analyze -follow` report line.
func (w *WindowStats) String() string {
	return fmt.Sprintf("t=%d supply=%d dispatches=%d ewt=%.1fs surge=%.2f pings=%d",
		w.Start, w.Supply, w.Dispatches, w.MeanEWT, w.MeanSurge, w.Pings)
}
