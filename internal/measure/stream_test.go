package measure

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
)

func pingEvent(t int64, client string, surge, ewt float64, carIDs ...string) bus.Event {
	o := bus.Observation{Client: client, Time: t}
	ty := bus.TypeObs{Name: core.UberX.String(), Surge: surge, EWT: ewt}
	for _, id := range carIDs {
		ty.Cars = append(ty.Cars, bus.Car{ID: id, Lat: 40.75, Lng: -73.99})
	}
	o.Types = append(o.Types, ty)
	return bus.Event{
		Time: t, Kind: bus.KindPing, Key: client,
		Data: bus.AppendObservation(nil, &o),
	}
}

// TestStreamAnalyzerWindows: windows seal on time boundaries with the
// expected supply (unique cars), dispatch counts, and means.
func TestStreamAnalyzerWindows(t *testing.T) {
	a := NewStreamAnalyzer(StreamConfig{Window: 300})

	// Window [0,300): two pings sharing one car, one dispatch.
	if s := a.Feed(pingEvent(10, "c0", 1.0, 120, "carA", "carB")); s != nil {
		t.Fatalf("window sealed early: %+v", s)
	}
	a.Feed(pingEvent(15, "c1", 1.2, 180, "carB", "carC"))
	a.Feed(bus.Event{Time: 20, Kind: bus.KindTripDispatch, Key: "d1", Num: 1.5})

	// First event of [300,600) seals the previous window.
	sealed := a.Feed(pingEvent(305, "c0", 2.0, 240, "carA"))
	if sealed == nil {
		t.Fatal("crossing the window boundary sealed nothing")
	}
	if sealed.Start != 0 || sealed.Supply != 3 || sealed.Dispatches != 1 || sealed.Pings != 2 {
		t.Fatalf("sealed window = %+v, want start=0 supply=3 dispatches=1 pings=2", sealed)
	}
	if got, want := sealed.MeanSurge, 1.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanSurge = %g, want %g", got, want)
	}
	if got, want := sealed.MeanEWT, 150.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanEWT = %g, want %g", got, want)
	}

	// A straggler from the sealed window folds into the open one and is
	// counted as late, never reopening history.
	a.Feed(pingEvent(295, "c1", 1.0, 60, "carZ"))
	if a.Late != 1 {
		t.Errorf("Late = %d, want 1", a.Late)
	}
	if got := a.Flush(); got == nil || got.Supply != 2 || got.Pings != 2 {
		t.Errorf("flushed window = %+v, want supply=2 pings=2 (carA + late carZ)", got)
	}
	if len(a.Windows()) != 2 {
		t.Errorf("retained %d windows, want 2", len(a.Windows()))
	}
}

// TestStreamAnalyzerCorrelations: a constructed campaign where surge
// rises exactly when supply falls and EWT rises must report the Fig
// 20/21 signs: corr(surge, supply) < 0, corr(surge, EWT) > 0.
func TestStreamAnalyzerCorrelations(t *testing.T) {
	a := NewStreamAnalyzer(StreamConfig{Window: 300})
	for w := 0; w < 12; w++ {
		base := int64(w) * 300
		// Supply alternates rich/poor out of phase with surge.
		nCars := 8 - (w%4)*2
		surge := 1.0 + float64(w%4)*0.5
		ewt := 60 + float64(w%4)*90
		for p := 0; p < 3; p++ {
			ids := make([]string, nCars)
			for c := range ids {
				ids[c] = fmt.Sprintf("car-%d-%d", w, c)
			}
			a.Feed(pingEvent(base+int64(p)*5, fmt.Sprintf("c%d", p), surge, ewt, ids...))
		}
		for d := 0; d < nCars; d++ {
			a.Feed(bus.Event{Time: base + 100, Kind: bus.KindTripDispatch, Key: "d", Num: surge})
		}
	}
	a.Feed(bus.Event{Time: 12 * 300, Kind: bus.KindTripDispatch, Key: "d"}) // seal the last full window

	surgeSupply, surgeEWT, surgeDemand, n := a.Correlations()
	if n != 12 {
		t.Fatalf("correlated over %d windows, want 12", n)
	}
	if !(surgeSupply < -0.9) {
		t.Errorf("corr(surge, supply) = %.3f, want strongly negative", surgeSupply)
	}
	if !(surgeEWT > 0.9) {
		t.Errorf("corr(surge, EWT) = %.3f, want strongly positive", surgeEWT)
	}
	if !(surgeDemand < -0.9) {
		t.Errorf("corr(surge, dispatches) = %.3f, want strongly negative here (dispatches track supply)", surgeDemand)
	}
}

// TestStreamAnalyzerDegenerate: constant series yield NaN, not a panic
// or a fake correlation.
func TestStreamAnalyzerDegenerate(t *testing.T) {
	a := NewStreamAnalyzer(StreamConfig{Window: 300})
	for w := 0; w < 4; w++ {
		a.Feed(pingEvent(int64(w)*300+5, "c0", 1.0, 120, "carA"))
	}
	s, e, d, n := a.Correlations()
	if n != 3 {
		t.Fatalf("n = %d, want 3 sealed windows", n)
	}
	if !math.IsNaN(s) || !math.IsNaN(e) || !math.IsNaN(d) {
		t.Errorf("constant series correlations = %g/%g/%g, want NaN", s, e, d)
	}
}
