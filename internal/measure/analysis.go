package measure

import (
	"repro/internal/core"
	"repro/internal/geo"
)

// JitterEvent is one detected stale-multiplier episode in a client's
// stream: the multiplier briefly reverted to another value and bounced
// back within a minute (§5.2).
type JitterEvent struct {
	Client int
	Start  int64
	End    int64
	During float64 // the multiplier served during the jitter
	Base   float64 // the interval's true multiplier around it
}

// Duration returns the episode length in seconds.
func (j JitterEvent) Duration() int64 { return j.End - j.Start }

// maxJitterSeconds bounds a jitter episode; the paper observed 100% of
// jitter lasting under a minute.
const maxJitterSeconds = 65

// ExtractJitter scans per-client surge change logs for the jitter
// signature: a change m→x immediately followed by the reverse change x→m
// within a minute. Returns events in client order, then time order.
func ExtractJitter(changes [][]SurgeChange) []JitterEvent {
	var out []JitterEvent
	for client, log := range changes {
		for i := 0; i+1 < len(log); i++ {
			c1, c2 := log[i], log[i+1]
			if c2.To == c1.From && c2.Time-c1.Time <= maxJitterSeconds {
				out = append(out, JitterEvent{
					Client: client,
					Start:  c1.Time,
					End:    c2.Time,
					During: c1.To,
					Base:   c1.From,
				})
			}
		}
	}
	return out
}

// SimultaneousJitter returns, for each jitter event, how many distinct
// clients observed a jitter onset at the same moment (the same 5-second
// ping round) — the quantity in Fig 17 (~90% of events are seen by
// exactly one client, none by more than five).
func SimultaneousJitter(events []JitterEvent) []int {
	out := make([]int, len(events))
	for i, e := range events {
		clients := map[int]bool{e.Client: true}
		for j, f := range events {
			if i == j {
				continue
			}
			if d := e.Start - f.Start; d > -5 && d < 5 {
				clients[f.Client] = true
			}
		}
		out[i] = len(clients)
	}
	return out
}

// SurgeDurations reconstructs the lengths of continuous surge episodes
// (multiplier > 1) from a change log covering [start, end). The stream is
// assumed to begin at multiplier initial (1 for a fresh campaign).
func SurgeDurations(log []SurgeChange, initial float64, start, end int64) []float64 {
	var out []float64
	cur := initial
	var surgeStart int64 = -1
	if cur > 1 {
		surgeStart = start
	}
	emit := func(until int64) {
		if surgeStart >= 0 && until > surgeStart {
			out = append(out, float64(until-surgeStart))
		}
		surgeStart = -1
	}
	for _, c := range log {
		if c.Time < start || c.Time >= end {
			continue
		}
		if cur <= 1 && c.To > 1 {
			surgeStart = c.Time
		} else if cur > 1 && c.To <= 1 {
			emit(c.Time)
		}
		cur = c.To
	}
	if cur > 1 {
		emit(end)
	}
	return out
}

// ChangeMoments returns, for each change in the log, the offset in seconds
// of the change within its 5-minute interval — the Fig 15 histogram input.
func ChangeMoments(log []SurgeChange) []float64 {
	out := make([]float64, 0, len(log))
	for _, c := range log {
		out = append(out, float64(c.Time%Interval))
	}
	return out
}

// APIProbe polls the estimates/price endpoint from one account at a fixed
// location and keeps a change log of the UberX multiplier. This is the
// §3.2/§5 API datastream: 5-minute clock, no jitter. One poll every 5
// seconds stays within the 1,000 req/hr rate limit (720/hr).
type APIProbe struct {
	Svc      core.Service
	ClientID string
	Loc      geo.LatLng

	Cur     float64
	Log     []SurgeChange
	Samples []float32
	// Errs counts failed polls (rate limiting, transport).
	Errs int
}

// NewAPIProbe builds a probe; register the account on the backend first.
func NewAPIProbe(svc core.Service, clientID string, loc geo.LatLng) *APIProbe {
	return &APIProbe{Svc: svc, ClientID: clientID, Loc: loc, Cur: 1}
}

// Poll queries the price endpoint once and records the UberX multiplier.
func (p *APIProbe) Poll() {
	prices, err := p.Svc.EstimatePrice(p.ClientID, p.Loc)
	if err != nil {
		p.Errs++
		return
	}
	now := p.Svc.Now()
	for _, pe := range prices {
		if pe.TypeName != core.UberX.String() {
			continue
		}
		p.Samples = append(p.Samples, float32(pe.Surge))
		if pe.Surge != p.Cur {
			p.Log = append(p.Log, SurgeChange{Time: now, From: p.Cur, To: pe.Surge})
			p.Cur = pe.Surge
		}
		return
	}
}
