// Package measure turns raw pingClient streams into the quantities the
// paper analyzes: supply (unique cars per interval), fulfilled demand
// (car "deaths" with edge filtering, §3.3), car lifespans with
// short-lived-car cleaning (§4.1), EWT and surge distributions, per-area
// 5-minute feature series for the correlation and forecasting analyses
// (§5.4), spatial heatmaps (Figs 9, 10), and per-client surge change logs
// from which surge durations, update timing, and jitter events are
// recovered (Figs 13-17).
//
// Dataset implements client.Sink and aggregates online: nothing retains
// the raw 391 GB firehose the paper stored; every figure's input is
// reduced as it streams.
package measure

import (
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Interval is the paper's analysis bucket: 5 minutes.
const Interval = 300

// DefaultEdgeMargin is how close to the measurement boundary a car's last
// position may be before its disappearance is discarded as a possible
// drive-out rather than a booking (§3.3, restriction 2).
const DefaultEdgeMargin = 100.0

// shortLivedSeconds is the cleaning threshold of §4.1: cars observed for
// less than this total time are treated as pass-through traffic near the
// visibility boundary and excluded from lifespan analysis.
const shortLivedSeconds = 120

// deathGraceRounds is how many consecutive missed rounds confirm a death.
// One missed round can be a visibility flicker (the car was the 9th
// nearest for a moment); two misses (10 s) means it is gone.
const deathGraceRounds = 2

// SurgeChange is one observed change in a client's surge multiplier.
type SurgeChange struct {
	Time int64
	From float64
	To   float64
}

// carState tracks one currently visible car.
type carState struct {
	vt       core.VehicleType
	lastSeen int64
	lastPos  geo.Point
	missed   int
	// interval indices at which this car was already counted.
	countedInterval     int
	areaCountedInterval [8]int // per area (supports up to 8 areas)
	// observers are the clients that saw the car in the most recent round
	// it was seen, and obsTime that round's timestamp. When the car goes
	// missing while one of its observers has a gap (failed ping), the miss
	// is not evidence of a death — the watcher was blind, not the car gone.
	observers []int32
	obsTime   int64
}

// lifeRecord tracks a car ID's total observed lifespan across trips.
type lifeRecord struct {
	vt    core.VehicleType
	first int64
	last  int64
	obs   int64 // raw observation rows mentioning the car
}

// Config configures a Dataset.
type Config struct {
	Profile *sim.CityProfile
	// Start and End bound the recorded series, in simulation seconds.
	Start, End int64
	// ClientAreas maps each campaign client index to its surge area.
	ClientAreas []int
	// EdgeMargin overrides DefaultEdgeMargin when > 0.
	EdgeMargin float64
	// TrackTypes overrides TrackedTypes (the products with full
	// supply/death series) when non-nil. The taxi validation harness
	// tracks UberT only.
	TrackTypes []core.VehicleType
}

// Dataset is the streaming aggregation of one measurement campaign.
type Dataset struct {
	cfg        Config
	areas      []geo.Polygon
	projection *geo.Projection
	edgeMargin float64
	nIntervals int

	cars  map[string]*carState
	lives map[string]*lifeRecord

	seenRound map[string]bool // scratch: ids seen this round

	// Region-wide series per tracked product.
	supplyAcc map[core.VehicleType]*stats.Accumulator
	deathAcc  map[core.VehicleType]*stats.Accumulator

	// Per-area UberX series.
	areaSupply []*stats.Accumulator
	areaDeath  []*stats.Accumulator
	areaEWT    []*stats.Accumulator
	areaSurge  [][]float64 // [area][interval] median client multiplier
	areaSurgeN [][]int     // sample counts backing the median
	areaBuf    [][][]float64

	// Region-wide 5-minute means.
	ewtAcc   *stats.Accumulator
	surgeAcc *stats.Accumulator

	// Raw samples for the CDFs (UberX).
	EWTSamples   []float32
	SurgeSamples []float32

	// Per-client UberX surge state and change logs.
	curSurge []float64
	Changes  [][]SurgeChange

	// Heatmaps: per client, unique UberX cars per day and mean EWT.
	clientDaySeen []map[string]bool
	clientDay     []int64
	ClientCarDays [][]int // per client: unique cars for each completed day
	clientEWTSum  []float64
	clientEWTN    []int64

	// Lifespan output per product (seconds), after cleaning.
	lifespans map[core.VehicleType][]float64
	// ShortLived counts cars filtered by the §4.1 cleaning rule.
	ShortLived int

	// Gaps counts failed pings reported by the campaign (the paper lost
	// ~2.5% of its observations the same way); ClientGaps breaks the count
	// down per client. gapped marks which clients gapped in the current
	// round so death detection can discount blind watchers.
	Gaps       int64
	ClientGaps []int64
	gapped     map[int32]bool
}

// TrackedTypes are the products with full supply/demand series (the four
// the paper plots in Fig 8).
var TrackedTypes = []core.VehicleType{core.UberX, core.UberXL, core.UberBLACK, core.UberSUV}

// NewDataset builds the aggregation state for a campaign with nClients
// clients.
func NewDataset(cfg Config, nClients int) *Dataset {
	if cfg.EdgeMargin <= 0 {
		cfg.EdgeMargin = DefaultEdgeMargin
	}
	n := int((cfg.End - cfg.Start) / Interval)
	if n < 1 {
		n = 1
	}
	areas := cfg.Profile.SurgeAreas()
	d := &Dataset{
		cfg:        cfg,
		areas:      areas,
		projection: geo.NewProjection(cfg.Profile.Origin),
		edgeMargin: cfg.EdgeMargin,
		nIntervals: n,
		cars:       make(map[string]*carState),
		lives:      make(map[string]*lifeRecord),
		seenRound:  make(map[string]bool),
		supplyAcc:  make(map[core.VehicleType]*stats.Accumulator),
		deathAcc:   make(map[core.VehicleType]*stats.Accumulator),
		ewtAcc:     stats.NewAccumulator(cfg.Start, Interval, n),
		surgeAcc:   stats.NewAccumulator(cfg.Start, Interval, n),
		curSurge:   make([]float64, nClients),
		Changes:    make([][]SurgeChange, nClients),
		lifespans:  make(map[core.VehicleType][]float64),
		ClientGaps: make([]int64, nClients),
		gapped:     make(map[int32]bool),
	}
	tracked := cfg.TrackTypes
	if tracked == nil {
		tracked = TrackedTypes
	}
	for _, vt := range tracked {
		d.supplyAcc[vt] = stats.NewAccumulator(cfg.Start, Interval, n)
		d.deathAcc[vt] = stats.NewAccumulator(cfg.Start, Interval, n)
	}
	for range areas {
		d.areaSupply = append(d.areaSupply, stats.NewAccumulator(cfg.Start, Interval, n))
		d.areaDeath = append(d.areaDeath, stats.NewAccumulator(cfg.Start, Interval, n))
		d.areaEWT = append(d.areaEWT, stats.NewAccumulator(cfg.Start, Interval, n))
		d.areaSurge = append(d.areaSurge, make([]float64, n))
		d.areaSurgeN = append(d.areaSurgeN, make([]int, n))
		d.areaBuf = append(d.areaBuf, make([][]float64, n))
	}
	for i := range d.curSurge {
		d.curSurge[i] = 1
	}
	d.clientDaySeen = make([]map[string]bool, nClients)
	d.clientDay = make([]int64, nClients)
	d.ClientCarDays = make([][]int, nClients)
	d.clientEWTSum = make([]float64, nClients)
	d.clientEWTN = make([]int64, nClients)
	for i := range d.clientDaySeen {
		d.clientDaySeen[i] = make(map[string]bool)
		d.clientDay[i] = -1
	}
	return d
}

func (d *Dataset) intervalIndex(t int64) int {
	i := int((t - d.cfg.Start) / Interval)
	if i < 0 || i >= d.nIntervals {
		return -1
	}
	return i
}

// Observe implements client.Sink.
func (d *Dataset) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	now := resp.Time
	iv := d.intervalIndex(now)
	day := now / sim.SecondsPerDay

	for ti := range resp.Types {
		ts := &resp.Types[ti]
		// Car bookkeeping for every product; series only for tracked ones.
		for ci := range ts.Cars {
			d.observeCar(ts.Type, &ts.Cars[ci], clientIdx, now, iv)
		}
		if ts.Type != core.UberX {
			continue
		}

		// UberX-only per-client records.
		d.EWTSamples = append(d.EWTSamples, float32(ts.EWTSeconds/60)) // minutes
		d.SurgeSamples = append(d.SurgeSamples, float32(ts.Surge))
		d.ewtAcc.Add(now, ts.EWTSeconds/60)
		d.surgeAcc.Add(now, ts.Surge)

		if clientIdx < len(d.curSurge) {
			if ts.Surge != d.curSurge[clientIdx] {
				d.Changes[clientIdx] = append(d.Changes[clientIdx], SurgeChange{
					Time: now, From: d.curSurge[clientIdx], To: ts.Surge,
				})
				d.curSurge[clientIdx] = ts.Surge
			}
			// Area-level features.
			if a := d.clientArea(clientIdx); a >= 0 {
				d.areaEWT[a].Add(now, ts.EWTSeconds/60)
				if iv >= 0 {
					d.areaBuf[a][iv] = append(d.areaBuf[a][iv], ts.Surge)
				}
			}
			// Heatmap EWT.
			d.clientEWTSum[clientIdx] += ts.EWTSeconds / 60
			d.clientEWTN[clientIdx]++
			// Heatmap unique cars per day.
			if d.clientDay[clientIdx] != day {
				if d.clientDay[clientIdx] >= 0 {
					d.ClientCarDays[clientIdx] = append(d.ClientCarDays[clientIdx], len(d.clientDaySeen[clientIdx]))
				}
				d.clientDaySeen[clientIdx] = make(map[string]bool)
				d.clientDay[clientIdx] = day
			}
			for ci := range ts.Cars {
				d.clientDaySeen[clientIdx][ts.Cars[ci].ID] = true
			}
		}
	}
}

func (d *Dataset) clientArea(clientIdx int) int {
	if clientIdx < len(d.cfg.ClientAreas) {
		return d.cfg.ClientAreas[clientIdx]
	}
	return -1
}

// observeCar updates per-car tracking state and the supply series.
func (d *Dataset) observeCar(vt core.VehicleType, car *core.CarView, clientIdx int, now int64, iv int) {
	d.seenRound[car.ID] = true
	cs, ok := d.cars[car.ID]
	if !ok {
		cs = &carState{vt: vt, countedInterval: -1}
		for i := range cs.areaCountedInterval {
			cs.areaCountedInterval[i] = -1
		}
		d.cars[car.ID] = cs
	}
	if cs.obsTime != now {
		cs.observers = cs.observers[:0]
		cs.obsTime = now
	}
	cs.observers = append(cs.observers, int32(clientIdx))
	cs.lastSeen = now
	cs.missed = 0
	// Positions arrive as lat/lng; project once per observation.
	cs.lastPos = d.proj(car.Pos)

	if lr, ok := d.lives[car.ID]; ok {
		lr.last = now
		lr.obs++
	} else {
		d.lives[car.ID] = &lifeRecord{vt: vt, first: now, last: now, obs: 1}
	}

	if iv >= 0 && d.cfg.Profile.MeasureRect.Contains(cs.lastPos) {
		// Cars glimpsed outside the measurement rect (visible to boundary
		// clients) are not part of the region's supply.
		if acc, tracked := d.supplyAcc[vt]; tracked && cs.countedInterval != iv {
			cs.countedInterval = iv
			acc.AddCount(now, 1)
		}
		if vt == core.UberX {
			if a := sim.AreaOf(d.areas, cs.lastPos); a >= 0 && a < len(cs.areaCountedInterval) {
				if cs.areaCountedInterval[a] != iv {
					cs.areaCountedInterval[a] = iv
					d.areaSupply[a].AddCount(now, 1)
				}
			}
		}
	}
}

// proj converts a wire coordinate to plane coordinates using the profile
// origin (same projection the campaign used to place clients).
func (d *Dataset) proj(ll geo.LatLng) geo.Point {
	return d.projection.ToPlane(ll)
}

// ObserveGap implements client.GapSink: a failed ping is an explicit hole
// in the record. The gap is counted, and the client is marked blind for
// this round so cars only it was watching aren't mistaken for deaths.
func (d *Dataset) ObserveGap(clientIdx int, pos geo.Point, lastSeen int64, err error) {
	d.Gaps++
	if clientIdx >= 0 && clientIdx < len(d.ClientGaps) {
		d.ClientGaps[clientIdx]++
	}
	d.gapped[int32(clientIdx)] = true
}

// blindMiss reports whether a car's disappearance this round is explained
// by a gap: some client that saw it last round failed to ping this round,
// so the car may well still be there, unobserved.
func (d *Dataset) blindMiss(cs *carState) bool {
	if len(d.gapped) == 0 {
		return false
	}
	for _, c := range cs.observers {
		if d.gapped[c] {
			return true
		}
	}
	return false
}

// EndRound implements client.Sink: detects deaths (cars missing for
// deathGraceRounds consecutive rounds) and applies the edge filter.
// Rounds in which a car's observers gapped don't advance its missed
// count — without this, transport failures against a remote backend read
// as bursts of phantom demand (the skew the paper's §3.3 accounting
// avoids).
func (d *Dataset) EndRound(now int64) {
	for id, cs := range d.cars {
		if d.seenRound[id] {
			continue
		}
		if d.blindMiss(cs) {
			continue
		}
		cs.missed++
		if cs.missed < deathGraceRounds {
			continue
		}
		// Confirmed disappearance. The lifespan record stays in d.lives so
		// a car re-appearing after a trip extends the same lifespan.
		delete(d.cars, id)
		// Edge filter: a car last seen near the measurement boundary may
		// simply have driven out (§3.3); only interior disappearances
		// count as fulfilled demand.
		if d.cfg.Profile.MeasureRect.DistToBoundary(cs.lastPos) <= d.edgeMargin {
			continue
		}
		if acc, tracked := d.deathAcc[cs.vt]; tracked {
			acc.AddCount(cs.lastSeen, 1)
		}
		if cs.vt == core.UberX {
			if a := sim.AreaOf(d.areas, cs.lastPos); a >= 0 {
				d.areaDeath[a].AddCount(cs.lastSeen, 1)
			}
		}
	}
	clear(d.seenRound)
	clear(d.gapped)
}

// Close finalizes streaming state: flushes per-day heatmap counts, folds
// surge sample buffers into medians, and materializes lifespans.
func (d *Dataset) Close() {
	for i := range d.clientDaySeen {
		if d.clientDay[i] >= 0 && len(d.clientDaySeen[i]) > 0 {
			d.ClientCarDays[i] = append(d.ClientCarDays[i], len(d.clientDaySeen[i]))
		}
	}
	for a := range d.areaBuf {
		for iv, buf := range d.areaBuf[a] {
			if len(buf) == 0 {
				d.areaSurge[a][iv] = 1
				continue
			}
			d.areaSurge[a][iv] = stats.NewCDF(buf).Median()
			d.areaSurgeN[a][iv] = len(buf)
		}
		d.areaBuf[a] = nil
	}
	for _, lr := range d.lives {
		span := float64(lr.last - lr.first)
		if span < shortLivedSeconds {
			d.ShortLived++
			continue
		}
		d.lifespans[lr.vt] = append(d.lifespans[lr.vt], span)
	}
}

// SupplySeries returns the region-wide unique-cars-per-interval series for
// a tracked product.
func (d *Dataset) SupplySeries(vt core.VehicleType) *stats.Series {
	if acc, ok := d.supplyAcc[vt]; ok {
		return acc.Sums()
	}
	return stats.NewSeries(d.cfg.Start, Interval, d.nIntervals)
}

// DeathSeries returns the region-wide deaths-per-interval series (the
// fulfilled-demand upper bound) for a tracked product.
func (d *Dataset) DeathSeries(vt core.VehicleType) *stats.Series {
	if acc, ok := d.deathAcc[vt]; ok {
		return acc.Sums()
	}
	return stats.NewSeries(d.cfg.Start, Interval, d.nIntervals)
}

// AreaSupplySeries returns UberX unique cars per interval for one area.
func (d *Dataset) AreaSupplySeries(area int) *stats.Series { return d.areaSupply[area].Sums() }

// AreaDeathSeries returns UberX deaths per interval for one area.
func (d *Dataset) AreaDeathSeries(area int) *stats.Series { return d.areaDeath[area].Sums() }

// AreaEWTSeries returns the mean UberX EWT (minutes) per interval for one
// area.
func (d *Dataset) AreaEWTSeries(area int) *stats.Series { return d.areaEWT[area].Means() }

// AreaSurgeSeries returns the median observed UberX multiplier per
// interval for one area (medians discard jitter, as the paper does).
func (d *Dataset) AreaSurgeSeries(area int) *stats.Series {
	s := stats.NewSeries(d.cfg.Start, Interval, d.nIntervals)
	copy(s.Values, d.areaSurge[area])
	return s
}

// EWTSeries returns the region-wide mean EWT (minutes) per interval.
func (d *Dataset) EWTSeries() *stats.Series { return d.ewtAcc.Means() }

// SurgeSeries returns the region-wide mean multiplier per interval.
func (d *Dataset) SurgeSeries() *stats.Series { return d.surgeAcc.Means() }

// Lifespans returns the cleaned lifespans (seconds) for a product. Call
// Close first.
func (d *Dataset) Lifespans(vt core.VehicleType) []float64 { return d.lifespans[vt] }

// CleaningStats summarizes the §4.1 data-cleaning step (the content of
// the paper's truncated Figs 5/6): how many distinct car IDs were seen,
// how many the short-lived filter removed, and the observation counts
// per surviving car.
type CleaningStats struct {
	TotalCars  int
	ShortLived int
	// ObsPerCar is each surviving car's raw observation count.
	ObsPerCar []float64
}

// Cleaning computes the cleaning summary. Call Close first.
func (d *Dataset) Cleaning() CleaningStats {
	st := CleaningStats{TotalCars: len(d.lives), ShortLived: d.ShortLived}
	for _, lr := range d.lives {
		if float64(lr.last-lr.first) < shortLivedSeconds {
			continue
		}
		st.ObsPerCar = append(st.ObsPerCar, float64(lr.obs))
	}
	return st
}

// NumAreas returns the number of surge areas.
func (d *Dataset) NumAreas() int { return len(d.areas) }

// ClientMeanEWT returns a client's mean observed EWT in minutes (NaN if
// the client saw nothing).
func (d *Dataset) ClientMeanEWT(clientIdx int) float64 {
	if d.clientEWTN[clientIdx] == 0 {
		return math.NaN()
	}
	return d.clientEWTSum[clientIdx] / float64(d.clientEWTN[clientIdx])
}
