package measure

import (
	"testing"

	"repro/internal/api"
	"repro/internal/geo"
	"repro/internal/sim"
)

func TestExtractJitterFindsPattern(t *testing.T) {
	changes := [][]SurgeChange{
		{
			{Time: 100, From: 1.0, To: 1.5}, // surge onset
			{Time: 400, From: 1.5, To: 1.0}, // jitter start (revert to prev)
			{Time: 425, From: 1.0, To: 1.5}, // jitter end (back to cur)
			{Time: 900, From: 1.5, To: 1.0}, // real drop
		},
	}
	events := ExtractJitter(changes)
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Start != 400 || e.End != 425 {
		t.Errorf("window = [%d,%d], want [400,425]", e.Start, e.End)
	}
	if e.During != 1.0 || e.Base != 1.5 {
		t.Errorf("During=%v Base=%v", e.During, e.Base)
	}
	if e.Duration() != 25 {
		t.Errorf("Duration = %d", e.Duration())
	}
}

func TestExtractJitterIgnoresSlowReversals(t *testing.T) {
	changes := [][]SurgeChange{
		{
			{Time: 100, From: 1.0, To: 1.5},
			{Time: 400, From: 1.5, To: 1.0}, // 5-minute-clock change
			{Time: 700, From: 1.0, To: 1.5}, // next interval: back up
		},
	}
	if events := ExtractJitter(changes); len(events) != 0 {
		t.Errorf("slow reversal misdetected as jitter: %+v", events)
	}
}

func TestSimultaneousJitter(t *testing.T) {
	events := []JitterEvent{
		{Client: 0, Start: 100, End: 125},
		{Client: 1, Start: 100, End: 130}, // same onset round as event 0
		{Client: 2, Start: 110, End: 140}, // overlaps 0/1 but different onset
		{Client: 3, Start: 500, End: 520}, // alone
	}
	counts := SimultaneousJitter(events)
	want := []int{2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
			break
		}
	}
	// The same client jittering twice at one moment still counts as one
	// client.
	same := []JitterEvent{
		{Client: 7, Start: 100, End: 120},
		{Client: 7, Start: 101, End: 130},
	}
	for _, c := range SimultaneousJitter(same) {
		if c != 1 {
			t.Errorf("same-client events should count as 1, got %v", c)
		}
	}
	if got := SimultaneousJitter(nil); len(got) != 0 {
		t.Errorf("nil events: %v", got)
	}
}

func TestSurgeDurations(t *testing.T) {
	log := []SurgeChange{
		{Time: 300, From: 1.0, To: 1.5},
		{Time: 600, From: 1.5, To: 2.0}, // still surging
		{Time: 900, From: 2.0, To: 1.0}, // ends: 600 s episode
		{Time: 1500, From: 1.0, To: 1.3},
	}
	durs := SurgeDurations(log, 1.0, 0, 2000)
	if len(durs) != 2 {
		t.Fatalf("durations = %v, want 2 episodes", durs)
	}
	if durs[0] != 600 {
		t.Errorf("first episode = %v, want 600", durs[0])
	}
	if durs[1] != 500 { // truncated at end
		t.Errorf("second episode = %v, want 500", durs[1])
	}
}

func TestSurgeDurationsInitialSurge(t *testing.T) {
	log := []SurgeChange{{Time: 250, From: 1.4, To: 1.0}}
	durs := SurgeDurations(log, 1.4, 0, 1000)
	if len(durs) != 1 || durs[0] != 250 {
		t.Errorf("durs = %v, want [250]", durs)
	}
	// No changes, never surging.
	if durs := SurgeDurations(nil, 1.0, 0, 1000); len(durs) != 0 {
		t.Errorf("expected none, got %v", durs)
	}
	// No changes, surging throughout.
	if durs := SurgeDurations(nil, 2.0, 0, 1000); len(durs) != 1 || durs[0] != 1000 {
		t.Errorf("expected [1000], got %v", durs)
	}
}

func TestChangeMoments(t *testing.T) {
	log := []SurgeChange{
		{Time: 310}, {Time: 635}, {Time: 900},
	}
	moments := ChangeMoments(log)
	want := []float64{10, 35, 0}
	for i := range want {
		if moments[i] != want[i] {
			t.Errorf("moment[%d] = %v, want %v", i, moments[i], want[i])
		}
	}
}

func TestAPIProbe(t *testing.T) {
	svc := api.NewBackend(sim.SanFrancisco(), 31, true)
	svc.Register("api-probe")
	loc := svc.World().Projection().ToLatLng(geo.Point{X: 1000, Y: 1000})
	probe := NewAPIProbe(svc, "api-probe", loc)
	// Poll every 5 s for 2 simulated hours.
	for svc.Now() < 2*3600 {
		svc.Step()
		probe.Poll()
	}
	if probe.Errs != 0 {
		t.Errorf("probe errors: %d", probe.Errs)
	}
	if len(probe.Samples) == 0 {
		t.Fatal("no samples")
	}
	// The API stream never jitters: no change may revert within 60 s.
	if events := ExtractJitter([][]SurgeChange{probe.Log}); len(events) != 0 {
		t.Errorf("API stream contains jitter: %+v", events)
	}
	// All changes must land within the 5..40 s band of their interval
	// (the engine's API switch window).
	for _, m := range ChangeMoments(probe.Log) {
		if m < 5 || m > 45 {
			t.Errorf("API change at offset %v s, want within [5,45]", m)
		}
	}
}

func TestAPIProbeRateLimitSurfaces(t *testing.T) {
	svc := api.NewBackend(sim.Manhattan(), 33, false)
	svc.Register("greedy")
	loc := svc.World().Projection().ToLatLng(geo.Point{})
	probe := NewAPIProbe(svc, "greedy", loc)
	// Poll 1200 times without advancing the hour: must hit the limit.
	for i := 0; i < 1200; i++ {
		probe.Poll()
	}
	if probe.Errs == 0 {
		t.Error("expected rate-limit errors")
	}
	if len(probe.Samples) > api.RateLimitPerHour {
		t.Errorf("samples = %d exceeds rate limit", len(probe.Samples))
	}
}
