package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func floatsConfig(n int, scale float64) *quick.Config {
	return &quick.Config{
		MaxCount: n,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(rng.Float64()*scale - scale/2)
			}
		},
	}
}

// Pearson is invariant to affine transforms with positive slope.
func TestPearsonAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.5*x[i] + rng.NormFloat64()
	}
	r0, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		scale := math.Abs(a) + 0.1
		y2 := make([]float64, len(y))
		for i := range y {
			y2[i] = scale*y[i] + b
		}
		r1, err := Pearson(x, y2)
		if err != nil {
			return false
		}
		return math.Abs(r1-r0) < 1e-9
	}
	if err := quick.Check(f, floatsConfig(50, 100)); err != nil {
		t.Error(err)
	}
}

// CDF.At is monotone non-decreasing in x.
func TestCDFAtMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	c := NewCDF(xs)
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		return c.At(lo) <= c.At(hi)+1e-12
	}
	if err := quick.Check(f, floatsConfig(200, 60)); err != nil {
		t.Error(err)
	}
}

// Quantile stays within the sample's range and is monotone in q.
func TestQuantileRangeAndMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Float64()*50 - 25
	}
	c := NewCDF(xs)
	min, max := c.Quantile(0), c.Quantile(1)
	f := func(q1, q2 float64) bool {
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		lo, hi := math.Min(a, b), math.Max(a, b)
		vLo, vHi := c.Quantile(lo), c.Quantile(hi)
		return vLo <= vHi+1e-12 && vLo >= min-1e-12 && vHi <= max+1e-12
	}
	if err := quick.Check(f, floatsConfig(200, 2)); err != nil {
		t.Error(err)
	}
}

// RegIncBeta is monotone non-decreasing in x for fixed (a, b).
func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw, x1, x2 float64) bool {
		a := math.Abs(math.Mod(aRaw, 10)) + 0.2
		b := math.Abs(math.Mod(bRaw, 10)) + 0.2
		u := math.Abs(math.Mod(x1, 1))
		v := math.Abs(math.Mod(x2, 1))
		lo, hi := math.Min(u, v), math.Max(u, v)
		return RegIncBeta(a, b, lo) <= RegIncBeta(a, b, hi)+1e-9
	}
	if err := quick.Check(f, floatsConfig(200, 20)); err != nil {
		t.Error(err)
	}
}

// RegIncBeta symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
func TestRegIncBetaSymmetryProperty(t *testing.T) {
	f := func(aRaw, bRaw, xRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 8)) + 0.3
		b := math.Abs(math.Mod(bRaw, 8)) + 0.3
		x := math.Abs(math.Mod(xRaw, 1))
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return math.Abs(lhs-rhs) < 1e-8
	}
	if err := quick.Check(f, floatsConfig(200, 20)); err != nil {
		t.Error(err)
	}
}

// OLS residuals are orthogonal to the fitted features (normal equations).
func TestOLSResidualOrthogonalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 80
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = 1 + 2*rows[i][0] - rows[i][1] + rng.NormFloat64()
		}
		reg, err := FitOLS(rows, y)
		if err != nil {
			return false
		}
		var s0, s1, sI float64
		for i := 0; i < n; i++ {
			r := y[i] - reg.Predict(rows[i])
			s0 += r * rows[i][0]
			s1 += r * rows[i][1]
			sI += r
		}
		return math.Abs(s0) < 1e-6*float64(n) &&
			math.Abs(s1) < 1e-6*float64(n) &&
			math.Abs(sI) < 1e-6*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
