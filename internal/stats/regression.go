package stats

import (
	"errors"
	"fmt"
	"math"
)

// Regression is a fitted ordinary-least-squares linear model
// y = Intercept + Σ Coef[i]·x[i], with its R² score on the training data.
// The paper's Table 1 fits three-feature models (supply−demand difference,
// EWT, previous surge multiplier) to predict the next interval's surge.
type Regression struct {
	Intercept float64
	Coef      []float64
	R2        float64
	N         int
}

// FitOLS fits y ≈ intercept + X·coef by solving the normal equations with
// Gaussian elimination (partial pivoting). rows[i] is the feature vector for
// sample i. All rows must share the same length.
func FitOLS(rows [][]float64, y []float64) (*Regression, error) {
	n := len(rows)
	if n == 0 || n != len(y) {
		return nil, errors.New("stats: empty or mismatched regression input")
	}
	p := len(rows[0])
	for i, r := range rows {
		if len(r) != p {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(r), p)
		}
	}
	if n <= p {
		return nil, fmt.Errorf("stats: need more samples (%d) than features (%d)", n, p)
	}
	d := p + 1 // intercept column

	// Build X'X and X'y with an implicit leading 1 column.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	feat := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for s := 0; s < n; s++ {
		for i := 0; i < d; i++ {
			fi := feat(rows[s], i)
			xty[i] += fi * y[s]
			for j := i; j < d; j++ {
				xtx[i][j] += fi * feat(rows[s], j)
			}
		}
	}
	for i := 1; i < d; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	beta, err := solveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}

	reg := &Regression{Intercept: beta[0], Coef: beta[1:], N: n}
	// R² on training data.
	my := Mean(y)
	var ssRes, ssTot float64
	for s := 0; s < n; s++ {
		pred := reg.Predict(rows[s])
		ssRes += (y[s] - pred) * (y[s] - pred)
		ssTot += (y[s] - my) * (y[s] - my)
	}
	if ssTot == 0 {
		reg.R2 = 0
	} else {
		reg.R2 = 1 - ssRes/ssTot
	}
	return reg, nil
}

// Predict evaluates the fitted model on a feature vector.
func (r *Regression) Predict(x []float64) float64 {
	y := r.Intercept
	for i, c := range r.Coef {
		if i < len(x) {
			y += c * x[i]
		}
	}
	return y
}

// Score returns R² of the model evaluated on a held-out set.
func (r *Regression) Score(rows [][]float64, y []float64) float64 {
	if len(rows) == 0 || len(rows) != len(y) {
		return math.NaN()
	}
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range rows {
		pred := r.Predict(rows[i])
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// solveLinear solves A·x = b with Gaussian elimination and partial pivoting.
// A and b are modified in place.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, errors.New("stats: singular design matrix (collinear features)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
