package stats

import (
	"math"
	"testing"
)

func TestSeriesSetAtIndex(t *testing.T) {
	s := NewSeries(1000, 300, 10)
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !math.IsNaN(s.At(1000)) {
		t.Error("fresh series should be NaN")
	}
	s.Set(1000, 5)
	s.Set(1299, 7) // same bucket as 1000
	if got := s.At(1100); got != 7 {
		t.Errorf("At(1100) = %v, want 7 (overwritten)", got)
	}
	s.Set(1300, 9)
	if got := s.At(1300); got != 9 {
		t.Errorf("At(1300) = %v, want 9", got)
	}
	// Out of range: ignored / NaN.
	s.Set(999, 1)
	s.Set(1000+300*10, 1)
	if !math.IsNaN(s.At(999)) || !math.IsNaN(s.At(1000+300*10)) {
		t.Error("out-of-range access should be NaN")
	}
}

func TestAccumulatorMeans(t *testing.T) {
	a := NewAccumulator(0, 300, 3)
	a.Add(0, 10)
	a.Add(100, 20)
	a.Add(299, 30)
	a.Add(300, 5)
	a.Add(1000, 99) // out of range: dropped
	s := a.Means()
	if got := s.At(0); got != 20 {
		t.Errorf("bucket 0 mean = %v, want 20", got)
	}
	if got := s.At(300); got != 5 {
		t.Errorf("bucket 1 mean = %v, want 5", got)
	}
	if !math.IsNaN(s.At(600)) {
		t.Error("empty bucket should be NaN")
	}
}

func TestAccumulatorAddCountSums(t *testing.T) {
	a := NewAccumulator(0, 300, 2)
	a.AddCount(10, 1)
	a.AddCount(20, 1)
	a.AddCount(250, 3)
	s := a.Sums()
	if got := s.At(0); got != 5 {
		t.Errorf("bucket 0 sum = %v, want 5", got)
	}
	if !math.IsNaN(s.At(300)) {
		t.Error("untouched bucket should be NaN in Sums")
	}
	// AddCount then Means should not divide by event count.
	m := a.Means()
	if got := m.At(0); got != 5 {
		t.Errorf("bucket 0 mean after AddCount = %v, want 5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Counts[i])
		}
		if got := h.Fraction(i); got != 0.1 {
			t.Errorf("Fraction(%d) = %v", i, got)
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v, want 0.5", got)
	}
}
