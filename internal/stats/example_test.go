package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleCDF() {
	waits := []float64{1.2, 2.5, 3.1, 3.8, 4.4, 9.9} // minutes
	c := stats.NewCDF(waits)
	fmt.Printf("P(EWT <= 4 min) = %.2f\n", c.At(4))
	fmt.Printf("median = %.2f min\n", c.Median())
	// Output:
	// P(EWT <= 4 min) = 0.67
	// median = 3.45 min
}

func ExampleFitOLS() {
	// Fit y = 1 + 2x exactly.
	rows := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{3, 5, 7, 9}
	reg, err := stats.FitOLS(rows, y)
	if err != nil {
		panic(err)
	}
	fmt.Printf("y = %.1f + %.1fx (R² = %.2f)\n", reg.Intercept, reg.Coef[0], reg.R2)
	// Output:
	// y = 1.0 + 2.0x (R² = 1.00)
}

func ExampleCrossCorrelate() {
	x := []float64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4}
	y := append([]float64{0}, x[:len(x)-1]...) // y lags x by one step
	for _, lc := range stats.CrossCorrelate(x, y, 1) {
		if lc.HasR && lc.Lag == 1 {
			fmt.Printf("correlation at lag +1: %.2f\n", lc.R)
		}
	}
	// Output:
	// correlation at lag +1: 1.00
}
