// Package stats implements the statistical machinery the paper's analysis
// relies on: means with 95% confidence intervals, empirical CDFs and
// quantiles, Pearson and lagged cross-correlation with p-values, and
// ordinary-least-squares multiple linear regression with R² scores
// (§5.4's Raw/Threshold/Rush models).
//
// Everything is implemented from scratch on top of math; the p-value for a
// correlation coefficient uses the exact t-distribution via the regularized
// incomplete beta function.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanCI holds a sample mean together with the half-width of its 95%
// confidence interval, the form in which the paper reports every aggregate
// ("3.0 ± 2×10⁻⁴ minutes").
type MeanCI struct {
	Mean float64
	CI   float64 // 95% half-width
	N    int
}

// MeanWithCI computes the mean and its 95% confidence half-width using the
// normal approximation (the paper's samples are all n >> 30).
func MeanWithCI(xs []float64) MeanCI {
	n := len(xs)
	if n == 0 {
		return MeanCI{Mean: math.NaN(), CI: math.NaN()}
	}
	m := Mean(xs)
	if n < 2 {
		return MeanCI{Mean: m, CI: math.NaN(), N: n}
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	return MeanCI{Mean: m, CI: 1.96 * se, N: n}
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample (which it copies).
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// rendering the CDF curves in the paper's figures.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / maxInt(n-1, 1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns an error if the series differ in length, are shorter than 3,
// or either has zero variance.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: series length mismatch")
	}
	n := len(x)
	if n < 3 {
		return 0, errors.New("stats: need at least 3 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CorrelationPValue returns the two-sided p-value for the null hypothesis of
// zero correlation, given coefficient r over n samples, using the exact
// t-distribution with n-2 degrees of freedom.
func CorrelationPValue(r float64, n int) float64 {
	if n <= 2 {
		return math.NaN()
	}
	if math.Abs(r) >= 1 {
		return 0
	}
	df := float64(n - 2)
	t := r * math.Sqrt(df/(1-r*r))
	return 2 * studentTSF(math.Abs(t), df)
}

// studentTSF returns P(T > t) for a Student t with df degrees of freedom.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// LagCorrelation is one point of a cross-correlation sweep: the correlation
// between surge(t) and feature(t+lag), with its p-value.
type LagCorrelation struct {
	Lag  int // in series steps (5-minute intervals in the paper)
	R    float64
	P    float64
	N    int
	HasR bool
}

// CrossCorrelate computes the correlation between x(t) and y(t+lag) for each
// lag in [-maxLag, maxLag], reproducing the sweeps in Figures 20 and 21.
// NaN entries in either series cause that aligned pair to be skipped.
func CrossCorrelate(x, y []float64, maxLag int) []LagCorrelation {
	out := make([]LagCorrelation, 0, 2*maxLag+1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		var xs, ys []float64
		for t := range x {
			u := t + lag
			if u < 0 || u >= len(y) {
				continue
			}
			if math.IsNaN(x[t]) || math.IsNaN(y[u]) {
				continue
			}
			xs = append(xs, x[t])
			ys = append(ys, y[u])
		}
		lc := LagCorrelation{Lag: lag, N: len(xs)}
		if r, err := Pearson(xs, ys); err == nil {
			lc.R = r
			lc.P = CorrelationPValue(r, len(xs))
			lc.HasR = true
		}
		out = append(out, lc)
	}
	return out
}
