package stats

import "math"

// Series is a regularly spaced time series: Values[i] covers the interval
// [Start + i·Step, Start + (i+1)·Step) in simulation seconds. The paper's
// analysis works in 5-minute buckets; Step is therefore usually 300.
type Series struct {
	Start  int64 // simulation time of the first bucket, seconds
	Step   int64 // bucket width, seconds
	Values []float64
}

// NewSeries allocates a series of n buckets initialized to NaN (missing).
func NewSeries(start, step int64, n int) *Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.NaN()
	}
	return &Series{Start: start, Step: step, Values: v}
}

// Index returns the bucket index for time t, which may be out of range.
// Times before Start map to negative indices (floor division).
func (s *Series) Index(t int64) int {
	d := t - s.Start
	if d < 0 {
		return int((d - s.Step + 1) / s.Step)
	}
	return int(d / s.Step)
}

// At returns the value covering time t, or NaN if out of range.
func (s *Series) At(t int64) float64 {
	i := s.Index(t)
	if i < 0 || i >= len(s.Values) {
		return math.NaN()
	}
	return s.Values[i]
}

// Set assigns the bucket covering time t; out-of-range times are ignored.
func (s *Series) Set(t int64, v float64) {
	i := s.Index(t)
	if i >= 0 && i < len(s.Values) {
		s.Values[i] = v
	}
}

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.Values) }

// Accumulator builds bucket means incrementally: feed raw samples with Add,
// then call Means to collapse each bucket to its average. This is exactly
// how the paper turns 5-second ping observations into 5-minute features.
type Accumulator struct {
	Start int64
	Step  int64
	sum   []float64
	n     []int
}

// NewAccumulator allocates an accumulator with nBuckets buckets.
func NewAccumulator(start, step int64, nBuckets int) *Accumulator {
	return &Accumulator{
		Start: start,
		Step:  step,
		sum:   make([]float64, nBuckets),
		n:     make([]int, nBuckets),
	}
}

func (a *Accumulator) index(t int64) int {
	d := t - a.Start
	if d < 0 {
		return -1
	}
	return int(d / a.Step)
}

// Add records one raw sample at time t. Samples outside the covered range
// are dropped.
func (a *Accumulator) Add(t int64, v float64) {
	i := a.index(t)
	if i < 0 || i >= len(a.sum) {
		return
	}
	a.sum[i] += v
	a.n[i]++
}

// AddCount increments the bucket at time t by v without affecting the
// denominator used by Means; used for event counts per bucket (deaths).
func (a *Accumulator) AddCount(t int64, v float64) {
	i := a.index(t)
	if i < 0 || i >= len(a.sum) {
		return
	}
	a.sum[i] += v
	if a.n[i] == 0 {
		a.n[i] = 1
	}
}

// Means returns the per-bucket averages as a Series; empty buckets are NaN.
func (a *Accumulator) Means() *Series {
	s := NewSeries(a.Start, a.Step, len(a.sum))
	for i := range a.sum {
		if a.n[i] > 0 {
			s.Values[i] = a.sum[i] / float64(a.n[i])
		}
	}
	return s
}

// Sums returns the per-bucket sums as a Series; untouched buckets are NaN.
func (a *Accumulator) Sums() *Series {
	s := NewSeries(a.Start, a.Step, len(a.sum))
	for i := range a.sum {
		if a.n[i] > 0 {
			s.Values[i] = a.sum[i]
		}
	}
	return s
}

// Histogram counts samples into uniform bins over [min, max); samples
// outside the range clamp into the first or last bin.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram creates a histogram with n bins spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int((x - h.Min) / (h.Max - h.Min) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.Total++
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}
