package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMeanWithCI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	mc := MeanWithCI(xs)
	if math.Abs(mc.Mean-10) > 0.1 {
		t.Errorf("Mean = %v, want ~10", mc.Mean)
	}
	// CI half-width should be about 1.96*2/sqrt(10000) = 0.0392.
	if mc.CI < 0.03 || mc.CI > 0.05 {
		t.Errorf("CI = %v, want ~0.039", mc.CI)
	}
	if mc.N != 10000 {
		t.Errorf("N = %d", mc.N)
	}
	empty := MeanWithCI(nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty CI should be NaN")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Median(); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v, want 5", got)
	}
	if got := c.Quantile(0.25); got != 2 {
		t.Errorf("Quantile(0.25) = %v, want 2", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.At(c.Quantile(q))
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("len = %d, want 5", len(pts))
	}
	if pts[0][0] != 1 || pts[4][0] != 10 {
		t.Errorf("endpoints wrong: %v", pts)
	}
	if pts[4][1] != 1.0 {
		t.Errorf("last cumulative fraction = %v, want 1", pts[4][1])
	}
	if (&CDF{}).Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v err = %v, want 1", r, err)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too short should error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestPearsonIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.03 {
		t.Errorf("independent r = %v, want ~0", r)
	}
	p := CorrelationPValue(r, n)
	if p < 0.01 {
		t.Errorf("p = %v, should not be significant", p)
	}
}

func TestCorrelationPValueSignificance(t *testing.T) {
	// Strong correlation over many samples must give a tiny p-value.
	rng := rand.New(rand.NewSource(5))
	n := 1000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = 0.8*x[i] + 0.2*rng.NormFloat64()
	}
	r, _ := Pearson(x, y)
	p := CorrelationPValue(r, n)
	if p > 1e-10 {
		t.Errorf("p = %v, want ~0 for r=%v n=%v", p, r, n)
	}
	if !math.IsNaN(CorrelationPValue(0.5, 2)) {
		t.Error("n<=2 should be NaN")
	}
	if CorrelationPValue(1.0, 100) != 0 {
		t.Error("|r|=1 should give p=0")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x  (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_0.5(a,a) = 0.5 by symmetry.
	for _, a := range []float64{0.5, 2, 7.5} {
		if got := RegIncBeta(a, a, 0.5); math.Abs(got-0.5) > 1e-10 {
			t.Errorf("I_0.5(%v,%v) = %v, want 0.5", a, a, got)
		}
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestStudentTMatchesNormalForLargeDF(t *testing.T) {
	// For df -> inf, P(T > 1.96) -> 0.025.
	p := studentTSF(1.96, 1e6)
	if math.Abs(p-0.025) > 0.001 {
		t.Errorf("P(T>1.96, df=1e6) = %v, want ~0.025", p)
	}
	// Exact value for df=1 (Cauchy): P(T > 1) = 0.25.
	p = studentTSF(1, 1)
	if math.Abs(p-0.25) > 1e-6 {
		t.Errorf("P(T>1, df=1) = %v, want 0.25", p)
	}
}

func TestCrossCorrelatePeakAtKnownLag(t *testing.T) {
	// y is x shifted by +3 steps: y(t+3) = x(t), so correlating x(t) with
	// y(t+lag) must peak at lag = +3.
	rng := rand.New(rand.NewSource(9))
	n := 500
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	for i := 3; i < n; i++ {
		y[i] = x[i-3]
	}
	res := CrossCorrelate(x, y, 10)
	best := res[0]
	for _, lc := range res {
		if lc.HasR && lc.R > best.R {
			best = lc
		}
	}
	if best.Lag != 3 {
		t.Errorf("peak at lag %d, want 3 (r=%v)", best.Lag, best.R)
	}
	if best.R < 0.95 {
		t.Errorf("peak r = %v, want ~1", best.R)
	}
}

func TestCrossCorrelateSkipsNaN(t *testing.T) {
	x := []float64{1, 2, math.NaN(), 4, 5, 6, 7, 8}
	y := []float64{2, 4, 6, math.NaN(), 10, 12, 14, 16}
	res := CrossCorrelate(x, y, 0)
	if len(res) != 1 {
		t.Fatalf("len = %d", len(res))
	}
	if !res[0].HasR {
		t.Fatal("expected a correlation")
	}
	if res[0].N != 6 {
		t.Errorf("N = %d, want 6 (two NaN pairs dropped)", res[0].N)
	}
	if math.Abs(res[0].R-1) > 1e-12 {
		t.Errorf("r = %v, want 1", res[0].R)
	}
}
