package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitOLSRecoversKnownCoefficients(t *testing.T) {
	// y = 3 + 2*x1 - 0.5*x2 + noise
	rng := rand.New(rand.NewSource(17))
	n := 2000
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1 := rng.Float64() * 10
		x2 := rng.Float64() * 4
		rows[i] = []float64{x1, x2}
		y[i] = 3 + 2*x1 - 0.5*x2 + rng.NormFloat64()*0.1
	}
	reg, err := FitOLS(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Intercept-3) > 0.05 {
		t.Errorf("intercept = %v, want ~3", reg.Intercept)
	}
	if math.Abs(reg.Coef[0]-2) > 0.02 {
		t.Errorf("coef[0] = %v, want ~2", reg.Coef[0])
	}
	if math.Abs(reg.Coef[1]+0.5) > 0.02 {
		t.Errorf("coef[1] = %v, want ~-0.5", reg.Coef[1])
	}
	if reg.R2 < 0.99 {
		t.Errorf("R2 = %v, want ~1", reg.R2)
	}
	if reg.N != n {
		t.Errorf("N = %d", reg.N)
	}
}

func TestFitOLSPerfectFit(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	reg, err := FitOLS(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.R2-1) > 1e-10 {
		t.Errorf("R2 = %v, want 1", reg.R2)
	}
	if math.Abs(reg.Predict([]float64{10})-21) > 1e-9 {
		t.Errorf("Predict(10) = %v, want 21", reg.Predict([]float64{10}))
	}
}

func TestFitOLSNoisyR2Low(t *testing.T) {
	// Pure noise target: R² should be near zero.
	rng := rand.New(rand.NewSource(23))
	n := 5000
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = []float64{rng.Float64()}
		y[i] = rng.NormFloat64()
	}
	reg, err := FitOLS(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if reg.R2 > 0.01 {
		t.Errorf("R2 = %v, want ~0 for noise", reg.R2)
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitOLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	// Collinear features -> singular matrix.
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := FitOLS(rows, y); err == nil {
		t.Error("collinear features should error")
	}
	// Fewer samples than features.
	if _, err := FitOLS([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Error("underdetermined should error")
	}
}

func TestRegressionScoreHeldOut(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mk := func(n int) ([][]float64, []float64) {
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x := rng.Float64() * 5
			rows[i] = []float64{x}
			y[i] = 1 + 4*x + rng.NormFloat64()*0.5
		}
		return rows, y
	}
	trainX, trainY := mk(1000)
	testX, testY := mk(500)
	reg, err := FitOLS(trainX, trainY)
	if err != nil {
		t.Fatal(err)
	}
	score := reg.Score(testX, testY)
	if score < 0.95 {
		t.Errorf("held-out R2 = %v, want > 0.95", score)
	}
	if !math.IsNaN(reg.Score(nil, nil)) {
		t.Error("empty Score should be NaN")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Error("singular system should error")
	}
}
