// Package forecast fits the paper's Table 1 linear-regression models for
// predicting the next 5-minute interval's surge multiplier from the
// current interval's features: supply−demand difference, EWT, and the
// current multiplier.
//
// Three model variants mirror §5.4:
//
//   - Raw: fitted on all intervals (after removing surge=1 intervals
//     that neither precede nor follow a surge, the paper's cleaning rule);
//   - Threshold: fitted only on intervals where surge was already > 1;
//   - Rush: fitted only on rush-hour intervals (6-10am, 4-8pm).
//
// The paper's headline result is that none of these reach useful accuracy
// (R² ≈ 0.4), because the algorithm's inputs include non-public data;
// this package exists to reproduce that negative result.
package forecast

import (
	"errors"
	"math"

	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sample is one (features, label) pair: features describe interval t,
// the label is the multiplier of interval t+1.
type Sample struct {
	SDDiff    float64 // avg supply − demand over interval t
	EWT       float64 // avg EWT (minutes) over interval t
	PrevSurge float64 // multiplier during interval t
	NextSurge float64 // label: multiplier during interval t+1
	Time      int64   // start of interval t
}

// BuildSamples extracts per-area samples from a measured dataset,
// applying the paper's cleaning rule: intervals with surge = 1 are
// dropped unless they directly precede or follow a surging interval.
func BuildSamples(ds *measure.Dataset, area int) []Sample {
	return BuildSamplesRange(ds, area, math.MinInt64, math.MaxInt64)
}

// BuildSamplesRange is BuildSamples restricted to intervals starting in
// [from, to) — the window cmd/analyze selects with -from/-to, so a fit
// over one evening of a long campaign doesn't pay for the other weeks.
func BuildSamplesRange(ds *measure.Dataset, area int, from, to int64) []Sample {
	supply := ds.AreaSupplySeries(area)
	deaths := ds.AreaDeathSeries(area)
	ewt := ds.AreaEWTSeries(area)
	surge := ds.AreaSurgeSeries(area)
	n := surge.Len()
	var out []Sample
	for i := 0; i+1 < n; i++ {
		if t := surge.Start + int64(i)*measure.Interval; t < from || t >= to {
			continue
		}
		s, d, e := supply.Values[i], deaths.Values[i], ewt.Values[i]
		m, next := surge.Values[i], surge.Values[i+1]
		if math.IsNaN(s) || math.IsNaN(e) || math.IsNaN(m) || math.IsNaN(next) {
			continue
		}
		if math.IsNaN(d) {
			d = 0
		}
		// Cleaning rule: drop all-quiet intervals.
		if m == 1 && next == 1 {
			prevSurging := i > 0 && !math.IsNaN(surge.Values[i-1]) && surge.Values[i-1] > 1
			if !prevSurging {
				continue
			}
		}
		out = append(out, Sample{
			SDDiff:    s - d,
			EWT:       e,
			PrevSurge: m,
			NextSurge: next,
			Time:      surge.Start + int64(i)*measure.Interval,
		})
	}
	return out
}

// Model is one fitted Table 1 row entry.
type Model struct {
	Name string
	// ThetaSDDiff, ThetaEWT, ThetaPrevSurge are the learned coefficients
	// (the paper's θ_sd-diff, θ_ewt, θ_prev-surge).
	ThetaSDDiff    float64
	ThetaEWT       float64
	ThetaPrevSurge float64
	Intercept      float64
	R2             float64
	N              int
}

var errTooFew = errors.New("forecast: too few samples to fit")

// fit runs OLS over the subset and packages the coefficients.
func fit(name string, samples []Sample) (Model, error) {
	if len(samples) < 8 {
		return Model{Name: name}, errTooFew
	}
	rows := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		rows[i] = []float64{s.SDDiff, s.EWT, s.PrevSurge}
		y[i] = s.NextSurge
	}
	reg, err := stats.FitOLS(rows, y)
	if err != nil {
		return Model{Name: name}, err
	}
	return Model{
		Name:           name,
		ThetaSDDiff:    reg.Coef[0],
		ThetaEWT:       reg.Coef[1],
		ThetaPrevSurge: reg.Coef[2],
		Intercept:      reg.Intercept,
		R2:             reg.R2,
		N:              reg.N,
	}, nil
}

// Predict evaluates the model on a sample's features.
func (m Model) Predict(s Sample) float64 {
	return m.Intercept + m.ThetaSDDiff*s.SDDiff + m.ThetaEWT*s.EWT + m.ThetaPrevSurge*s.PrevSurge
}

// Table is the per-city Table 1 row: the three models.
type Table struct {
	Raw       Model
	Threshold Model
	Rush      Model
}

// FitTable fits all three §5.4 variants on the samples.
func FitTable(samples []Sample) (Table, error) {
	var t Table
	var err error
	if t.Raw, err = fit("Raw", samples); err != nil {
		return t, err
	}
	var thr, rush []Sample
	for _, s := range samples {
		if s.PrevSurge > 1 {
			thr = append(thr, s)
		}
		if sim.Rush(sim.HourOfDay(s.Time)) {
			rush = append(rush, s)
		}
	}
	// Threshold and Rush can legitimately lack data on a quiet city; a
	// zero-value model (N=0) records that.
	if m, err := fit("Threshold", thr); err == nil {
		t.Threshold = m
	} else {
		t.Threshold = Model{Name: "Threshold"}
	}
	if m, err := fit("Rush", rush); err == nil {
		t.Rush = m
	} else {
		t.Rush = Model{Name: "Rush"}
	}
	return t, nil
}

// FitCity builds samples for every area of a dataset and fits one pooled
// table (the paper fits per-area models and reports the average R²; with
// identical per-area feature semantics, pooling gives the same shape with
// more data).
func FitCity(ds *measure.Dataset) (Table, []Sample, error) {
	return FitCityRange(ds, math.MinInt64, math.MaxInt64)
}

// FitCityRange is FitCity restricted to intervals starting in [from, to).
func FitCityRange(ds *measure.Dataset, from, to int64) (Table, []Sample, error) {
	var all []Sample
	for a := 0; a < ds.NumAreas(); a++ {
		all = append(all, BuildSamplesRange(ds, a, from, to)...)
	}
	t, err := FitTable(all)
	return t, all, err
}
