package forecast

import (
	"math"
	"testing"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/measure"
	"repro/internal/sim"
)

var sfDatasetCache *measure.Dataset

func sfDataset(t testing.TB) *measure.Dataset {
	t.Helper()
	if sfDatasetCache != nil {
		return sfDatasetCache
	}
	profile := sim.SanFrancisco()
	svc := api.NewBackend(profile, 77, false)
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)
	areas := profile.SurgeAreas()
	clientAreas := make([]int, len(pts))
	for i, p := range pts {
		clientAreas[i] = sim.AreaOf(areas, p)
	}
	ds := measure.NewDataset(measure.Config{
		Profile: profile, Start: 0, End: 12 * 3600, ClientAreas: clientAreas,
	}, len(pts))
	camp.AddSink(ds)
	camp.RunSim(svc, 12*3600)
	ds.Close()
	sfDatasetCache = ds
	return ds
}

func TestBuildSamplesCleaningRule(t *testing.T) {
	ds := sfDataset(t)
	samples := BuildSamples(ds, 0)
	if len(samples) == 0 {
		t.Fatal("no samples built")
	}
	// Cleaning: no sample may sit in a fully quiet stretch (surge 1 now,
	// next, and before).
	surge := ds.AreaSurgeSeries(0)
	for _, s := range samples {
		i := surge.Index(s.Time)
		if s.PrevSurge == 1 && s.NextSurge == 1 {
			if i == 0 || surge.Values[i-1] <= 1 {
				t.Errorf("sample at interval %d violates cleaning rule", i)
			}
		}
	}
	// Features must be finite.
	for _, s := range samples {
		for _, v := range []float64{s.SDDiff, s.EWT, s.PrevSurge, s.NextSurge} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite feature in %+v", s)
			}
		}
	}
}

func TestFitTableShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	ds := sfDataset(t)
	table, samples, err := FitCity(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 50 {
		t.Fatalf("only %d samples", len(samples))
	}
	// The paper's central negative result: no model reaches strong
	// predictive performance (R² >= 0.9); all land in a weak-to-moderate
	// band.
	for _, m := range []Model{table.Raw, table.Threshold, table.Rush} {
		if m.N == 0 {
			continue
		}
		if m.R2 >= 0.9 {
			t.Errorf("%s: R² = %.3f — surge should NOT be this forecastable", m.Name, m.R2)
		}
		if m.R2 < 0 {
			t.Errorf("%s: R² = %.3f negative", m.Name, m.R2)
		}
	}
	if table.Raw.N == 0 {
		t.Fatal("raw model did not fit")
	}
	// Previous surge is the dominant signal (Table 1: θ_prev-surge is the
	// largest coefficient in SF).
	if table.Raw.ThetaPrevSurge <= 0 {
		t.Errorf("θ_prev-surge = %v, want positive", table.Raw.ThetaPrevSurge)
	}
}

func TestModelPredict(t *testing.T) {
	m := Model{Intercept: 0.5, ThetaSDDiff: 0.01, ThetaEWT: 0.1, ThetaPrevSurge: 0.4}
	s := Sample{SDDiff: 10, EWT: 3, PrevSurge: 1.5}
	want := 0.5 + 0.1 + 0.3 + 0.6
	if got := m.Predict(s); math.Abs(got-want) > 1e-12 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestFitTooFewSamples(t *testing.T) {
	if _, err := fit("x", make([]Sample, 3)); err == nil {
		t.Error("expected error for tiny sample set")
	}
}
