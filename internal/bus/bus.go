// The broker: topics, partitions, the append path, and backpressure.
//
// Layout on disk:
//
//	<dir>/<topic>/TOPIC.json            partition count (fixed at creation)
//	<dir>/<topic>/p<k>/<base>.seg       append-only segments, named by the
//	                                    offset of their first event
//	<dir>/<topic>/groups/<group>.off    a consumer group's committed offsets
//
// The write path appends one frame per event with a single unbuffered
// write, so the bytes are visible to same-host readers (the in-process
// disk path and the cross-process Tailer) immediately through the page
// cache; fsync happens only on Sync/Close. Each partition also keeps a
// bounded in-memory ring of recently published events, so a caught-up
// consumer is served without touching the disk at all — segments are read
// back only when a consumer resumes from an old committed offset.
//
// Backpressure is per partition: publishing stalls (or drops, by policy)
// while any attached consumer is more than MaxInflight bytes behind the
// bytes appended since it attached. Attach-relative accounting means a
// consumer resuming into a large historical backlog does not instantly
// freeze publishers; it throttles only growth it has seen and not yet
// consumed. The ring is sized ≥ 2×MaxInflight, so a consumer inside its
// backpressure budget always finds its next event in the ring.

package bus

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// Errors returned by the publish path.
var (
	ErrClosed       = errors.New("bus: broker closed")
	ErrBackpressure = errors.New("bus: event dropped (consumer too far behind)")
)

func crc32Sum(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// Options configures a Broker. The zero value is usable.
type Options struct {
	// SegmentBytes rolls a partition's active segment once it exceeds
	// this many bytes (default 1 MiB). Rolling also resets the string
	// dictionary, so segments stay self-contained.
	SegmentBytes int
	// MaxInflight bounds, per partition, how many bytes may be appended
	// beyond what the slowest attached consumer has read since it
	// attached (default 1 MiB).
	MaxInflight int
	// RingBytes is the per-partition in-memory cache of recent events
	// (default 2×MaxInflight; never set below that, or consumers inside
	// their backpressure budget would thrash the disk).
	RingBytes int
	// Drop makes publishers over the MaxInflight bound drop the event
	// (counted, ErrBackpressure) instead of blocking.
	Drop bool
	// Metrics receives the broker's counters and gauges; nil disables.
	Metrics *obs.Registry
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 1 << 20
	}
	if o.RingBytes < 2*o.MaxInflight {
		o.RingBytes = 2 * o.MaxInflight
	}
}

// Broker is an embedded event broker rooted at one directory. All
// methods are safe for concurrent use.
type Broker struct {
	dir  string
	opts Options

	mu     sync.Mutex
	topics map[string]*Topic
	closed bool
	done   chan struct{}
}

// Open opens (creating if needed) a broker rooted at dir.
func Open(dir string, opts Options) (*Broker, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Broker{
		dir:    dir,
		opts:   opts,
		topics: make(map[string]*Topic),
		done:   make(chan struct{}),
	}, nil
}

// topicMeta is the content of TOPIC.json.
type topicMeta struct {
	Partitions int `json:"partitions"`
}

// Topic opens (creating if needed) a topic with the given partition
// count. The count is fixed at creation: reopening an existing topic
// uses the stored count and errors if a different non-zero count is
// requested (repartitioning would scramble per-key order).
func (b *Broker) Topic(name string, partitions int) (*Topic, error) {
	if partitions <= 0 {
		partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if t, ok := b.topics[name]; ok {
		return t, nil
	}
	dir := filepath.Join(b.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, "TOPIC.json")
	var meta topicMeta
	if data, err := os.ReadFile(metaPath); err == nil {
		if err := json.Unmarshal(data, &meta); err != nil || meta.Partitions <= 0 {
			return nil, fmt.Errorf("bus: %s: TOPIC.json: %w", name, ErrCorrupt)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		meta.Partitions = partitions
		blob, _ := json.Marshal(meta)
		if err := atomicWrite(metaPath, blob); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}
	if partitions != meta.Partitions && partitions != 1 {
		return nil, fmt.Errorf("bus: topic %s has %d partitions, requested %d",
			name, meta.Partitions, partitions)
	}

	t := &Topic{
		b:      b,
		name:   name,
		dir:    dir,
		notif:  make(map[chan struct{}]struct{}),
		m:      newTopicMetrics(b.opts.Metrics, name),
		groups: filepath.Join(dir, "groups"),
	}
	for k := 0; k < meta.Partitions; k++ {
		p, err := openPartition(t, k, filepath.Join(dir, "p"+strconv.Itoa(k)))
		if err != nil {
			return nil, err
		}
		t.parts = append(t.parts, p)
	}
	b.topics[name] = t
	return t, nil
}

// Sync fsyncs every partition's active segment.
func (b *Broker) Sync() error {
	b.mu.Lock()
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	var firstErr error
	for _, t := range topics {
		for _, p := range t.parts {
			p.mu.Lock()
			if p.f != nil {
				if err := p.f.Sync(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			p.mu.Unlock()
		}
	}
	return firstErr
}

// Close syncs and closes every partition and unblocks stalled
// publishers and waiting consumers. Events already published remain
// readable (consumers drain from the ring and from disk); new publishes
// fail with ErrClosed.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()

	var firstErr error
	for _, t := range topics {
		for _, p := range t.parts {
			p.mu.Lock()
			p.closed = true
			if p.f != nil {
				if err := p.f.Sync(); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := p.f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
				p.f = nil
			}
			p.pubWait.Broadcast()
			p.mu.Unlock()
		}
		t.wake()
	}
	close(b.done)
	return firstErr
}

// Topic is one named event stream, split into partitions.
type Topic struct {
	b      *Broker
	name   string
	dir    string
	groups string
	parts  []*partition
	m      *topicMetrics

	// consMu guards the consumer wake-up registry. Lock order: a
	// partition's mu may be held when taking consMu (the publish path
	// wakes consumers); never the reverse.
	consMu sync.Mutex
	notif  map[chan struct{}]struct{}
}

// Partitions returns the topic's partition count.
func (t *Topic) Partitions() int { return len(t.parts) }

// Name returns the topic's name.
func (t *Topic) Name() string { return t.name }

// Publish appends ev to the partition its Key hashes to, assigning
// ev.Seq/ev.Part. It blocks while the partition is over its in-flight
// budget (or drops, under Options.Drop).
func (t *Topic) Publish(ev Event) error {
	p := t.parts[partitionOf(ev.Key, len(t.parts))]
	if err := p.publish(&ev); err != nil {
		return err
	}
	t.wake()
	return nil
}

// wake nudges every subscribed consumer (non-blocking).
func (t *Topic) wake() {
	t.consMu.Lock()
	for ch := range t.notif {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	t.consMu.Unlock()
}

func (t *Topic) addNotify(ch chan struct{}) {
	t.consMu.Lock()
	t.notif[ch] = struct{}{}
	t.consMu.Unlock()
}

func (t *Topic) delNotify(ch chan struct{}) {
	t.consMu.Lock()
	delete(t.notif, ch)
	t.consMu.Unlock()
}

// partitionOf maps a key to a partition by FNV-1a hash.
func partitionOf(key string, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// segInfo locates one segment file.
type segInfo struct {
	base int64
	path string
}

// ringEv is one cached event plus the cumulative appended-bytes
// watermark after it (the unit of backpressure accounting).
type ringEv struct {
	ev   Event
	size int64
	cum  int64
}

// partition is one append-only log. All mutable state is guarded by mu.
type partition struct {
	t   *Topic
	idx int
	dir string

	mu      sync.Mutex
	pubWait sync.Cond // publishers stalled on backpressure
	closed  bool

	f       *os.File // active segment (last of segs)
	enc     *encDict
	scratch []byte
	segSize int64 // bytes written to the active segment
	segs    []segInfo

	next int64 // next offset to assign
	cum  int64 // cumulative frame bytes appended since open

	ring     []ringEv
	ringLo   int64 // offset of ring[0]
	ringSize int64

	readers map[*partReader]struct{}
}

// openPartition opens (creating if needed) one partition directory,
// recovering the write frontier from the newest segment: its intact
// frames fix the next offset and the dictionary state, and any torn tail
// left by a crash is truncated away, exactly like the tsdb WAL.
func openPartition(t *Topic, idx int, dir string) (*partition, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := &partition{
		t:       t,
		idx:     idx,
		dir:     dir,
		readers: make(map[*partReader]struct{}),
	}
	p.pubWait.L = &p.mu

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	p.segs = segs
	if len(segs) == 0 {
		if err := p.roll(0); err != nil {
			return nil, err
		}
		return p, nil
	}
	last := segs[len(segs)-1]
	body, err := readSegmentBody(last.path)
	if err != nil {
		return nil, err
	}
	evs, goodSize, dict := decodeFrames(body, last.base)
	f, err := os.OpenFile(last.path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodSize, 0); err != nil {
		f.Close()
		return nil, err
	}
	p.f = f
	p.enc = dict.toEnc()
	p.segSize = goodSize - int64(len(segMagic))
	p.next = last.base + int64(len(evs))
	p.ringLo = p.next
	return p, nil
}

// roll closes the active segment and starts a fresh one whose base
// offset is base, resetting the string dictionary.
func (p *partition) roll(base int64) error {
	if p.f != nil {
		if err := p.f.Close(); err != nil {
			return err
		}
		p.f = nil
	}
	path := filepath.Join(p.dir, fmt.Sprintf("%016d.seg", base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	p.f = f
	p.enc = newEncDict()
	p.segSize = 0
	p.segs = append(p.segs, segInfo{base: base, path: path})
	return nil
}

// overLimit reports whether any attached reader is more than MaxInflight
// bytes behind the append watermark. Callers hold mu.
func (p *partition) overLimit() bool {
	limit := int64(p.t.b.opts.MaxInflight)
	for r := range p.readers {
		if p.cum-r.readCum > limit {
			return true
		}
	}
	return false
}

func (p *partition) publish(ev *Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.t.b.opts.Drop {
		if p.overLimit() {
			p.t.m.dropped.Inc()
			return ErrBackpressure
		}
	} else {
		for p.overLimit() {
			p.t.m.blocked.Inc()
			p.pubWait.Wait()
			if p.closed {
				return ErrClosed
			}
		}
	}

	// Roll before encoding: encoding mutates the dictionary, which must
	// match what the frame's segment will replay. The size check is a
	// threshold, not a cap — one frame may overshoot SegmentBytes.
	if p.segSize >= int64(p.t.b.opts.SegmentBytes) || p.enc.full() {
		if err := p.roll(p.next); err != nil {
			return err
		}
	}
	p.scratch = p.scratch[:0]
	p.scratch = append(p.scratch, 0, 0, 0, 0, 0, 0, 0, 0) // frame header
	p.scratch = appendEvent(p.scratch, ev, p.enc)
	payload := p.scratch[8:]
	binary.LittleEndian.PutUint32(p.scratch[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(p.scratch[4:], crc32Sum(payload))
	if _, err := p.f.Write(p.scratch); err != nil {
		return err
	}
	size := int64(len(p.scratch))
	p.segSize += size

	ev.Seq = p.next
	ev.Part = p.idx
	p.next++
	p.cum += size
	p.ring = append(p.ring, ringEv{ev: *ev, size: size, cum: p.cum})
	p.ringSize += size
	for p.ringSize > int64(p.t.b.opts.RingBytes) && len(p.ring) > 1 {
		p.ringSize -= p.ring[0].size
		p.ring = p.ring[1:]
		p.ringLo++
	}

	p.t.m.published.Inc()
	p.t.m.pubBytes.Add(size)
	return nil
}

// End returns the partition's next offset (== number of events ever
// appended). Used by tests and lag accounting.
func (p *partition) end() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// listSegments returns dir's segment files sorted by base offset.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) != ".seg" {
			continue
		}
		base, err := strconv.ParseInt(name[:len(name)-len(".seg")], 10, 64)
		if err != nil || base < 0 {
			continue
		}
		segs = append(segs, segInfo{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// readSegmentBody reads a segment file and validates its magic,
// returning the frame bytes after it.
func readSegmentBody(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("bus: %s: bad segment magic: %w", path, ErrCorrupt)
	}
	return data[len(segMagic):], nil
}

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// topicMetrics are the nil-safe per-topic handles.
type topicMetrics struct {
	published *obs.Counter
	pubBytes  *obs.Counter
	dropped   *obs.Counter
	blocked   *obs.Counter
	reg       *obs.Registry
	name      string
}

func newTopicMetrics(reg *obs.Registry, topic string) *topicMetrics {
	m := &topicMetrics{reg: reg, name: topic}
	if reg == nil {
		return m
	}
	m.published = reg.Counter("bus_publish_total", obs.L("topic", topic))
	m.pubBytes = reg.Counter("bus_publish_bytes_total", obs.L("topic", topic))
	m.dropped = reg.Counter("bus_dropped_total", obs.L("topic", topic))
	m.blocked = reg.Counter("bus_backpressure_waits_total", obs.L("topic", topic))
	return m
}

// consumed returns the consume counter for a group (nil-safe).
func (m *topicMetrics) consumed(group string) *obs.Counter {
	if m.reg == nil {
		return nil
	}
	return m.reg.Counter("bus_consume_total", obs.L("topic", m.name), obs.L("group", group))
}

// lagGauge returns the lag gauge for a group (nil-safe).
func (m *topicMetrics) lagGauge(group string) *obs.Gauge {
	if m.reg == nil {
		return nil
	}
	return m.reg.Gauge("bus_consumer_lag_events", obs.L("topic", m.name), obs.L("group", group))
}
