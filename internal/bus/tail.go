// Tailer: a read-only, cross-process follower of one topic.
//
// A Tailer never talks to the owning Broker — it watches the segment
// files directly, which is what lets `analyze -follow` and `bustail`
// attach to a live uberd from another process. The write path makes this
// safe to poll: every frame is appended with a single write call, so a
// poll either sees a complete frame or an incomplete tail that will be
// complete on the next poll. A new segment file appearing with a higher
// base offset means the current one is sealed; an incomplete tail on a
// sealed segment is a crash artifact and is skipped.
//
// Tailers exert no backpressure (they are not attached readers); they
// are observers, not participants.

package bus

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Tailer follows one topic's partitions read-only. Not safe for
// concurrent use.
type Tailer struct {
	dir  string
	curs []*tailCursor
}

type tailCursor struct {
	dir     string
	segBase int64 // base offset of the segment being read (-1 before the first)
	off     int64 // byte offset of the next frame in that segment
	next    int64 // next event offset to deliver
	dict    *decDict
	f       *os.File
}

// OpenTail opens a follower over <busdir>/<topic>, starting at each
// partition's first retained event. The topic must exist (its TOPIC.json
// written), which it is as soon as the publishing process opened it.
func OpenTail(busDir, topic string) (*Tailer, error) {
	dir := filepath.Join(busDir, topic)
	data, err := os.ReadFile(filepath.Join(dir, "TOPIC.json"))
	if err != nil {
		return nil, err
	}
	var meta topicMeta
	if err := json.Unmarshal(data, &meta); err != nil || meta.Partitions <= 0 {
		return nil, fmt.Errorf("bus: %s: TOPIC.json: %w", topic, ErrCorrupt)
	}
	t := &Tailer{dir: dir}
	for k := 0; k < meta.Partitions; k++ {
		t.curs = append(t.curs, &tailCursor{
			dir:     filepath.Join(dir, "p"+strconv.Itoa(k)),
			segBase: -1,
		})
	}
	return t, nil
}

// Poll appends every newly readable event (across all partitions, in
// per-partition order) to dst and returns the extended slice. It never
// blocks; an empty poll means no complete new frames yet.
func (t *Tailer) Poll(dst []Event) []Event {
	for part, c := range t.curs {
		dst = c.poll(dst, part)
	}
	return dst
}

// Close releases the tailer's file handles.
func (t *Tailer) Close() {
	for _, c := range t.curs {
		if c.f != nil {
			c.f.Close()
			c.f = nil
		}
	}
}

func (c *tailCursor) poll(dst []Event, part int) []Event {
	for {
		if c.f == nil && !c.openSegment() {
			return dst
		}
		ev, ok := c.readFrame()
		if ok {
			ev.Seq = c.next
			ev.Part = part
			c.next++
			dst = append(dst, ev)
			continue
		}
		// No complete frame at off. If a newer segment exists, this one
		// is sealed: anything unread here is a torn crash tail — skip to
		// the next segment (accounting the skipped offsets by base).
		nextSeg, found := c.nextSegmentBase()
		if !found {
			return dst
		}
		c.f.Close()
		c.f = nil
		c.segBase = nextSeg - 1 // openSegment looks for base > segBase
		if c.next < nextSeg {
			c.next = nextSeg
		}
	}
}

// openSegment opens the next segment after segBase (or the first), and
// positions the cursor at its first frame.
func (c *tailCursor) openSegment() bool {
	segs, err := listSegments(c.dir)
	if err != nil {
		return false
	}
	for _, s := range segs {
		if s.base <= c.segBase {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			return false
		}
		var magic [len(segMagic)]byte
		if n, _ := f.ReadAt(magic[:], 0); n != len(magic) || string(magic[:]) != segMagic {
			// Header not fully written yet; retry next poll.
			f.Close()
			return false
		}
		c.f = f
		c.segBase = s.base
		c.off = int64(len(segMagic))
		c.dict = newDecDict()
		if c.next < s.base {
			c.next = s.base
		}
		return true
	}
	return false
}

// readFrame reads and decodes the frame at off, advancing on success.
// A short or failed read leaves the cursor unmoved (retry next poll).
func (c *tailCursor) readFrame() (Event, bool) {
	var hdr [8]byte
	if n, _ := c.f.ReadAt(hdr[:], c.off); n != 8 {
		return Event{}, false
	}
	ln := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if ln > maxFramePayload {
		return Event{}, false
	}
	payload := make([]byte, ln)
	if n, _ := c.f.ReadAt(payload, c.off+8); n != int(ln) {
		return Event{}, false
	}
	if crc32Sum(payload) != crc {
		return Event{}, false
	}
	ev, err := decodeEvent(payload, c.dict)
	if err != nil {
		return Event{}, false
	}
	c.off += 8 + int64(ln)
	return ev, true
}

// nextSegmentBase returns the smallest segment base greater than the
// current one, if any.
func (c *tailCursor) nextSegmentBase() (int64, bool) {
	segs, err := listSegments(c.dir)
	if err != nil {
		return 0, false
	}
	for _, s := range segs {
		if s.base > c.segBase {
			return s.base, true
		}
	}
	return 0, false
}
