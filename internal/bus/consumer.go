// Consumer groups: named cursors over a topic with committed offsets
// that survive restart.
//
// A group is a file of per-partition offsets, committed atomically
// (write-temp + rename). Delivery is at-least-once: Commit persists the
// position *after* the consumer has processed the events, so a crash
// between processing and Commit replays from the last committed offset.
// Downstream sinks deduplicate (the tsdb ingester skips rows at or
// before each series' stored last time).
//
// One consumer per group per process: the broker does not arbitrate
// concurrent claims on a group (there is no membership protocol), it
// just persists the cursor. That is enough for the embedded use case —
// uberd owns its ingest group, each tail owns its own.

package bus

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Consumer is one group's cursor over a topic's partitions. It is not
// safe for concurrent use (one goroutine drives a consumer).
type Consumer struct {
	t      *Topic
	group  string
	prs    []*partReader
	rr     int // round-robin start for fairness across partitions
	notify chan struct{}
	mCons  *obs.Counter
	closed bool
}

// partReader is the consumer's cursor into one partition.
type partReader struct {
	p   *partition
	pos int64 // next offset to deliver
	// readCum is the backpressure watermark: the cumulative-bytes value
	// of the newest ring event this reader has consumed, initialized to
	// the partition's watermark at attach (resuming through an old
	// backlog must not stall publishers).
	readCum int64
	// buf holds disk-read events pending delivery (pos has not advanced
	// past them yet).
	buf []Event
}

// Subscribe opens the group's cursor over the topic, resuming from its
// committed offsets (zero for a new group).
func (t *Topic) Subscribe(group string) (*Consumer, error) {
	offs, err := loadOffsets(t.offsetsPath(group), len(t.parts))
	if err != nil {
		return nil, err
	}
	c := &Consumer{
		t:      t,
		group:  group,
		notify: make(chan struct{}, 1),
		mCons:  t.m.consumed(group),
	}
	for i, p := range t.parts {
		pr := &partReader{p: p, pos: offs[i]}
		p.mu.Lock()
		if pr.pos > p.next {
			// Offsets ahead of the log (a copied offsets file, a wiped
			// topic dir): clamp rather than stall forever.
			pr.pos = p.next
		}
		pr.readCum = p.cum
		p.readers[pr] = struct{}{}
		p.mu.Unlock()
		c.prs = append(c.prs, pr)
	}
	t.addNotify(c.notify)
	return c, nil
}

func (t *Topic) offsetsPath(group string) string {
	return filepath.Join(t.groups, group+".off")
}

// TryNext returns the next event if one is available, scanning
// partitions round-robin for fairness.
func (c *Consumer) TryNext() (Event, bool) {
	n := len(c.prs)
	for i := 0; i < n; i++ {
		pr := c.prs[(c.rr+i)%n]
		if ev, ok := pr.nextEvent(); ok {
			c.rr = (c.rr + i + 1) % n
			c.mCons.Inc()
			return ev, true
		}
	}
	return Event{}, false
}

// Next blocks until an event is available or the broker is closed with
// nothing left to drain, in which case ok is false.
func (c *Consumer) Next() (Event, bool) {
	for {
		if ev, ok := c.TryNext(); ok {
			return ev, true
		}
		select {
		case <-c.notify:
		case <-c.t.b.done:
			// Closed: deliver whatever is still unread, then report end.
			if ev, ok := c.TryNext(); ok {
				return ev, true
			}
			return Event{}, false
		}
	}
}

// Lag returns how many published events the consumer has not yet
// delivered, summed over partitions.
func (c *Consumer) Lag() int64 {
	var lag int64
	for _, pr := range c.prs {
		pr.p.mu.Lock()
		lag += pr.p.next - pr.pos + int64(len(pr.buf))
		pr.p.mu.Unlock()
	}
	return lag
}

// Commit durably records the consumer's position. Events delivered
// before Commit will not be redelivered after a restart; events
// delivered after the last Commit will be (at-least-once).
func (c *Consumer) Commit() error {
	offs := make([]int64, len(c.prs))
	for i, pr := range c.prs {
		offs[i] = pr.pos
	}
	if err := os.MkdirAll(c.t.groups, 0o755); err != nil {
		return err
	}
	if err := saveOffsets(c.t.offsetsPath(c.group), offs); err != nil {
		return err
	}
	c.t.m.lagGauge(c.group).Set(float64(c.Lag()))
	return nil
}

// Close detaches the consumer from the topic, releasing its
// backpressure claim. It does not commit.
func (c *Consumer) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.t.delNotify(c.notify)
	for _, pr := range c.prs {
		pr.p.mu.Lock()
		delete(pr.p.readers, pr)
		pr.p.pubWait.Broadcast()
		pr.p.mu.Unlock()
	}
}

// nextEvent returns the reader's next event: buffered disk events first,
// then the ring, then a segment read for positions the ring has evicted.
func (pr *partReader) nextEvent() (Event, bool) {
	if len(pr.buf) > 0 {
		ev := pr.buf[0]
		pr.buf = pr.buf[1:]
		pr.pos++
		return ev, true
	}
	p := pr.p
	p.mu.Lock()
	if pr.pos >= p.next {
		p.mu.Unlock()
		return Event{}, false
	}
	if pr.pos >= p.ringLo {
		e := p.ring[pr.pos-p.ringLo]
		if e.cum > pr.readCum {
			pr.readCum = e.cum
			p.pubWait.Broadcast()
		}
		pr.pos++
		p.mu.Unlock()
		return e.ev, true
	}
	// Behind the ring: read the gap [pos, ringLo) back from segments.
	// Everything below ringLo is fully framed on disk (frames are
	// written before offsets advance), so a short read here is real
	// corruption, surfaced as "no event" after the scan comes up empty.
	segs := make([]segInfo, len(p.segs))
	copy(segs, p.segs)
	limit := p.ringLo
	p.mu.Unlock()

	evs := readRange(segs, pr.pos, limit)
	if len(evs) == 0 {
		return Event{}, false
	}
	for i := range evs {
		evs[i].Part = p.idx // decodeFrames knows offsets, not partitions
	}
	pr.buf = evs[1:]
	pr.pos++
	return evs[0], true
}

// readRange decodes events with offsets in [pos, limit) from the segment
// that contains pos (one segment per call; the caller comes back for
// more). Unreadable segments yield nothing.
func readRange(segs []segInfo, pos, limit int64) []Event {
	// Find the last segment with base <= pos.
	idx := -1
	for i := range segs {
		if segs[i].base <= pos {
			idx = i
		}
	}
	if idx < 0 {
		return nil
	}
	body, err := readSegmentBody(segs[idx].path)
	if err != nil {
		return nil
	}
	evs, _, _ := decodeFrames(body, segs[idx].base)
	lo := pos - segs[idx].base
	if lo >= int64(len(evs)) {
		return nil
	}
	evs = evs[lo:]
	if end := limit - pos; end < int64(len(evs)) {
		evs = evs[:end]
	}
	return evs
}

// Offsets file: magic, then one length+CRC frame whose payload is the
// per-partition offsets. Written atomically, so a reader sees the old or
// the new file, never a torn one.
const offMagic = "UBUSOFF1"

func saveOffsets(path string, offs []int64) error {
	payload := binary.AppendUvarint(nil, uint64(len(offs)))
	for _, o := range offs {
		payload = binary.AppendUvarint(payload, uint64(o))
	}
	buf := make([]byte, 0, len(offMagic)+8+len(payload))
	buf = append(buf, offMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32Sum(payload))
	buf = append(buf, payload...)
	return atomicWrite(path, buf)
}

// loadOffsets reads a group's committed offsets, returning zeros if the
// group has never committed. n is the expected partition count.
func loadOffsets(path string, n int) ([]int64, error) {
	offs := make([]int64, n)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return offs, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < len(offMagic)+8 || string(data[:len(offMagic)]) != offMagic {
		return nil, fmt.Errorf("bus: %s: %w", path, ErrCorrupt)
	}
	body := data[len(offMagic):]
	ln := binary.LittleEndian.Uint32(body[0:])
	crc := binary.LittleEndian.Uint32(body[4:])
	payload := body[8:]
	if uint32(len(payload)) != ln || crc32Sum(payload) != crc {
		return nil, fmt.Errorf("bus: %s: %w", path, ErrCorrupt)
	}
	r := &byteReader{b: payload}
	cnt := r.uvarint()
	if r.err != nil || cnt != uint64(n) {
		return nil, fmt.Errorf("bus: %s: offset count %d, want %d: %w", path, cnt, n, ErrCorrupt)
	}
	for i := range offs {
		offs[i] = int64(r.uvarint())
	}
	if r.err != nil || r.remaining() != 0 {
		return nil, fmt.Errorf("bus: %s: %w", path, ErrCorrupt)
	}
	return offs, nil
}
