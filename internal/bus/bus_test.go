package bus

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestBroker(t *testing.T, dir string, opts Options) *Broker {
	t.Helper()
	b, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return b
}

func mustTopic(t *testing.T, b *Broker, name string, parts int) *Topic {
	t.Helper()
	tp, err := b.Topic(name, parts)
	if err != nil {
		t.Fatalf("Topic(%s): %v", name, err)
	}
	return tp
}

func mustPublish(t *testing.T, tp *Topic, ev Event) {
	t.Helper()
	if err := tp.Publish(ev); err != nil {
		t.Fatalf("Publish: %v", err)
	}
}

// drain consumes everything currently published.
func drain(c *Consumer) []Event {
	var out []Event
	for {
		ev, ok := c.TryNext()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestPerPartitionOrdering(t *testing.T) {
	b := openTestBroker(t, t.TempDir(), Options{})
	defer b.Close()
	tp := mustTopic(t, b, "t", 4)

	const keys, perKey = 13, 50
	for i := 0; i < perKey; i++ {
		for k := 0; k < keys; k++ {
			mustPublish(t, tp, Event{
				Time: int64(i), Kind: KindTripDispatch,
				Key: fmt.Sprintf("car-%d", k), Num: float64(i),
			})
		}
	}
	c, err := tp.Subscribe("g")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer c.Close()
	evs := drain(c)
	if len(evs) != keys*perKey {
		t.Fatalf("got %d events, want %d", len(evs), keys*perKey)
	}
	// Per-key order must match publish order, and per-partition Seq must
	// be dense and monotone.
	lastPerKey := make(map[string]int64)
	lastSeq := make(map[int]int64)
	for _, ev := range evs {
		if prev, ok := lastPerKey[ev.Key]; ok && ev.Time <= prev {
			t.Fatalf("key %s: time %d after %d", ev.Key, ev.Time, prev)
		}
		lastPerKey[ev.Key] = ev.Time
		if prev, ok := lastSeq[ev.Part]; ok && ev.Seq != prev+1 {
			t.Fatalf("partition %d: seq %d after %d", ev.Part, ev.Seq, prev)
		} else if !ok && ev.Seq != 0 {
			t.Fatalf("partition %d: first seq %d, want 0", ev.Part, ev.Seq)
		}
		lastSeq[ev.Part] = ev.Seq
	}
}

func TestOffsetResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	b := openTestBroker(t, dir, Options{SegmentBytes: 256}) // force several segments
	tp := mustTopic(t, b, "t", 2)
	for i := 0; i < 100; i++ {
		mustPublish(t, tp, Event{Time: int64(i), Kind: KindPing, Key: fmt.Sprintf("c-%d", i%7)})
	}
	c, err := tp.Subscribe("g")
	if err != nil {
		t.Fatal(err)
	}
	var firstHalf []Event
	for i := 0; i < 60; i++ {
		ev, ok := c.TryNext()
		if !ok {
			t.Fatalf("TryNext dry after %d events", i)
		}
		firstHalf = append(firstHalf, ev)
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	c.Close()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: same dir, new broker. The group resumes where it
	// committed; together the two sessions see every event exactly once
	// (no crash between processing and commit here).
	b2 := openTestBroker(t, dir, Options{SegmentBytes: 256})
	defer b2.Close()
	tp2 := mustTopic(t, b2, "t", 2)
	for i := 100; i < 120; i++ {
		mustPublish(t, tp2, Event{Time: int64(i), Kind: KindPing, Key: fmt.Sprintf("c-%d", i%7)})
	}
	c2, err := tp2.Subscribe("g")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rest := drain(c2)
	if got, want := len(firstHalf)+len(rest), 120; got != want {
		t.Fatalf("saw %d events across restart, want %d", got, want)
	}
	seen := make(map[string]int)
	for _, ev := range append(firstHalf, rest...) {
		seen[fmt.Sprintf("%d/%d", ev.Part, ev.Seq)]++
	}
	for off, n := range seen {
		if n != 1 {
			t.Fatalf("offset %s delivered %d times, want 1", off, n)
		}
	}
}

func TestAtLeastOnceRedeliveryWithoutCommit(t *testing.T) {
	dir := t.TempDir()
	b := openTestBroker(t, dir, Options{})
	tp := mustTopic(t, b, "t", 1)
	for i := 0; i < 20; i++ {
		mustPublish(t, tp, Event{Time: int64(i), Kind: KindPing, Key: "k"})
	}
	c, _ := tp.Subscribe("g")
	if got := len(drain(c)); got != 20 {
		t.Fatalf("first consumer saw %d events, want 20", got)
	}
	// "Crash": no Commit. Close and restart.
	c.Close()
	b.Close()

	b2 := openTestBroker(t, dir, Options{})
	defer b2.Close()
	tp2 := mustTopic(t, b2, "t", 1)
	c2, _ := tp2.Subscribe("g")
	defer c2.Close()
	redelivered := drain(c2)
	if len(redelivered) != 20 {
		t.Fatalf("redelivered %d events, want all 20 (at-least-once)", len(redelivered))
	}
	for i, ev := range redelivered {
		if ev.Seq != int64(i) || ev.Time != int64(i) {
			t.Fatalf("redelivery out of order at %d: seq=%d time=%d", i, ev.Seq, ev.Time)
		}
	}
}

func TestResumeReadsFromDiskThenRing(t *testing.T) {
	dir := t.TempDir()
	b := openTestBroker(t, dir, Options{SegmentBytes: 512})
	tp := mustTopic(t, b, "t", 1)
	for i := 0; i < 50; i++ {
		mustPublish(t, tp, Event{Time: int64(i), Kind: KindSurgeChange, Key: "area-01", Num: 1.5})
	}
	b.Close()

	// The reopened broker's ring is empty: the first 50 events must come
	// back from segment files, the next 10 from the live ring.
	b2 := openTestBroker(t, dir, Options{SegmentBytes: 512})
	defer b2.Close()
	tp2 := mustTopic(t, b2, "t", 1)
	c, _ := tp2.Subscribe("g")
	defer c.Close()
	for i := 50; i < 60; i++ {
		mustPublish(t, tp2, Event{Time: int64(i), Kind: KindSurgeChange, Key: "area-01", Num: 1.5})
	}
	evs := drain(c)
	if len(evs) != 60 {
		t.Fatalf("got %d events, want 60", len(evs))
	}
	for i, ev := range evs {
		if ev.Time != int64(i) {
			t.Fatalf("event %d has time %d", i, ev.Time)
		}
		if ev.Key != "area-01" || ev.Num != 1.5 {
			t.Fatalf("event %d corrupted: %+v", i, ev)
		}
	}
}

func TestBackpressureBlocksPublisher(t *testing.T) {
	b := openTestBroker(t, t.TempDir(), Options{MaxInflight: 4096})
	defer b.Close()
	tp := mustTopic(t, b, "t", 1)
	c, err := tp.Subscribe("g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := make([]byte, 512)
	blocked := make(chan struct{})
	var published sync.WaitGroup
	published.Add(1)
	go func() {
		defer published.Done()
		for i := 0; i < 64; i++ {
			if i == 16 {
				// Well past MaxInflight/event-size by now if nothing
				// blocked; signal progress so the test can assert the
				// publisher is stuck before this point.
				close(blocked)
			}
			if err := tp.Publish(Event{Time: int64(i), Kind: KindPing, Key: "k", Data: data}); err != nil {
				t.Errorf("Publish: %v", err)
				return
			}
		}
	}()

	// The publisher must stall before event 16: 4096/520 ≈ 7 events fit
	// in flight with nothing consumed.
	select {
	case <-blocked:
		t.Fatal("publisher ran past the in-flight budget without blocking")
	case <-time.After(200 * time.Millisecond):
	}
	// A consuming reader releases it.
	got := 0
	for got < 64 {
		if ev, ok := c.Next(); !ok {
			t.Fatalf("consumer ended early after %d events", got)
		} else if ev.Seq != int64(got) {
			t.Fatalf("seq %d at position %d", ev.Seq, got)
		}
		got++
	}
	published.Wait()
}

func TestDropPolicyCountsDrops(t *testing.T) {
	b := openTestBroker(t, t.TempDir(), Options{MaxInflight: 2048, Drop: true})
	defer b.Close()
	tp := mustTopic(t, b, "t", 1)
	c, _ := tp.Subscribe("g")
	defer c.Close()

	data := make([]byte, 512)
	var dropped int
	for i := 0; i < 32; i++ {
		err := tp.Publish(Event{Time: int64(i), Kind: KindPing, Key: "k", Data: data})
		switch err {
		case nil:
		case ErrBackpressure:
			dropped++
		default:
			t.Fatalf("Publish: %v", err)
		}
	}
	if dropped == 0 {
		t.Fatal("no events dropped despite a stalled consumer over the budget")
	}
	if kept := len(drain(c)); kept+dropped != 32 {
		t.Fatalf("kept %d + dropped %d != 32", kept, dropped)
	}
}

func TestConcurrentPublishConsumeRace(t *testing.T) {
	// Exercised under -race in CI: concurrent publishers on distinct
	// keys, one consumer, commit/lag in the loop.
	b := openTestBroker(t, t.TempDir(), Options{MaxInflight: 1 << 16})
	defer b.Close()
	tp := mustTopic(t, b, "t", 4)
	c, _ := tp.Subscribe("g")
	defer c.Close()

	const pubs, each = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < pubs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := tp.Publish(Event{Time: int64(i), Kind: KindPing, Key: fmt.Sprintf("p%d", g)}); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}(g)
	}
	got := 0
	for got < pubs*each {
		if _, ok := c.Next(); !ok {
			t.Fatalf("consumer ended early after %d", got)
		}
		got++
		if got%100 == 0 {
			if err := c.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
	}
	wg.Wait()
	if lag := c.Lag(); lag != 0 {
		t.Fatalf("lag %d after full drain", lag)
	}
}

func TestTailerFollowsLiveTopic(t *testing.T) {
	dir := t.TempDir()
	b := openTestBroker(t, dir, Options{SegmentBytes: 256})
	defer b.Close()
	tp := mustTopic(t, b, "surge.changes", 2)
	for i := 0; i < 30; i++ {
		mustPublish(t, tp, Event{Time: int64(i), Kind: KindSurgeChange, Key: fmt.Sprintf("area-%02d", i%5), Num: 1 + float64(i%4)/10})
	}

	tail, err := OpenTail(dir, "surge.changes")
	if err != nil {
		t.Fatalf("OpenTail: %v", err)
	}
	defer tail.Close()
	evs := tail.Poll(nil)
	if len(evs) != 30 {
		t.Fatalf("tailer saw %d events, want 30", len(evs))
	}
	// More events arrive; the tailer picks up exactly the delta.
	for i := 30; i < 45; i++ {
		mustPublish(t, tp, Event{Time: int64(i), Kind: KindSurgeChange, Key: fmt.Sprintf("area-%02d", i%5), Num: 2})
	}
	more := tail.Poll(nil)
	if len(more) != 15 {
		t.Fatalf("tailer saw %d new events, want 15", len(more))
	}
	for _, ev := range more {
		if ev.Num != 2 {
			t.Fatalf("stale event in delta: %+v", ev)
		}
	}
	if extra := tail.Poll(nil); len(extra) != 0 {
		t.Fatalf("empty poll returned %d events", len(extra))
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	b := openTestBroker(t, dir, Options{})
	tp := mustTopic(t, b, "t", 1)
	for i := 0; i < 10; i++ {
		mustPublish(t, tp, Event{Time: int64(i), Kind: KindPing, Key: "k"})
	}
	b.Close()

	// Simulate a crash mid-frame: append garbage to the active segment.
	segs, err := listSegments(filepath.Join(dir, "t", "p0"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0x00})
	f.Close()

	b2 := openTestBroker(t, dir, Options{})
	defer b2.Close()
	tp2 := mustTopic(t, b2, "t", 1)
	// The torn tail is gone; appends continue at offset 10.
	mustPublish(t, tp2, Event{Time: 10, Kind: KindPing, Key: "k"})
	c, _ := tp2.Subscribe("g")
	defer c.Close()
	evs := drain(c)
	if len(evs) != 11 {
		t.Fatalf("got %d events, want 11", len(evs))
	}
	for i, ev := range evs {
		if ev.Time != int64(i) {
			t.Fatalf("event %d has time %d", i, ev.Time)
		}
	}
}

func TestObservationRoundTrip(t *testing.T) {
	o := Observation{
		Client: "probe-07", Lat: 40.75, Lng: -73.99, Time: 3600,
		Types: []TypeObs{
			{Name: "UberX", Surge: 1.5, EWT: 240, Cars: []Car{
				{ID: "sess-1", Lat: 40.74, Lng: -73.98},
				{ID: "sess-2", Lat: 40.76, Lng: -74.0},
			}},
			{Name: "UberT", Surge: 1, EWT: 600},
		},
	}
	enc := AppendObservation(nil, &o)
	got, err := DecodeObservation(enc)
	if err != nil {
		t.Fatalf("DecodeObservation: %v", err)
	}
	re := AppendObservation(nil, &got)
	if string(re) != string(enc) {
		t.Fatalf("observation codec not canonical")
	}
}
