// The wire format.
//
// Segment file layout:
//
//	magic "UBERBUS1" (8 bytes)
//	frame*: len u32 ‖ crc32(payload) u32 ‖ payload (one event)
//
// An event's offset is implied by its position: the segment's base offset
// (from the file name) plus its frame index. The payload codec is a flat
// varint encoding with a per-segment string dictionary: Key and Str
// values repeat heavily (the same driver session across a trip, the same
// area label every update), so each unique string is written once and
// referenced by index afterwards. The dictionary resets at every segment
// boundary, which keeps segments self-contained — a reader can start at
// any segment with no external state.
//
// The codec is canonical: varints must be minimal, a dictionary
// new-entry for an already-known string is rejected, and decoders must
// consume their input exactly. Canonicality is what lets the fuzz target
// assert decode→encode byte-identity, the same witness the tsdb codec
// uses.

package bus

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt marks undecodable bytes (bad magic, bad CRC, non-canonical
// or truncated payloads).
var ErrCorrupt = errors.New("bus: corrupt data")

const segMagic = "UBERBUS1"

// Sanity caps applied when decoding untrusted bytes, generous multiples
// of anything the backend actually publishes.
const (
	maxFramePayload = 1 << 22 // 4 MiB per event
	maxDictEntries  = 4096    // unique strings per segment
	maxStringLen    = 1 << 12
	maxDataLen      = 1 << 21
	maxObsTypes     = 256
	maxObsCars      = 4096
)

// zigzag maps signed to unsigned so small magnitudes encode short.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// byteReader is a bounds-checked cursor over untrusted bytes. The first
// error sticks; callers check err (or use the helpers' zero values) once
// at the end.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail() { r.err = ErrCorrupt }

func (r *byteReader) remaining() int { return len(r.b) - r.off }

// uvarint decodes a minimally-encoded varint; a non-minimal encoding
// (trailing zero continuation byte) is rejected to keep the codec
// canonical.
func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 || (n > 1 && r.b[r.off+n-1] == 0) {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 { return unzigzag(r.uvarint()) }

func (r *byteReader) byte() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail()
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *byteReader) f64() float64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// str decodes a raw (non-dictionary) length-prefixed string.
func (r *byteReader) str() string {
	n := r.uvarint()
	if r.err != nil || n > maxStringLen || n > uint64(r.remaining()) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || n > maxDataLen || n > uint64(r.remaining()) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encDict is the encoder side of the per-segment string dictionary.
type encDict struct {
	idx map[string]uint64
}

func newEncDict() *encDict { return &encDict{idx: make(map[string]uint64)} }

// full reports whether the next event could overflow the dictionary (an
// event introduces at most two new strings: Key and Str).
func (d *encDict) full() bool { return len(d.idx)+2 > maxDictEntries }

// appendStr writes s as a dictionary reference, adding it on first use:
// a known string is its index; a new string is index==len(dict) followed
// by the raw bytes.
func (d *encDict) appendStr(buf []byte, s string) []byte {
	if i, ok := d.idx[s]; ok {
		return binary.AppendUvarint(buf, i)
	}
	i := uint64(len(d.idx))
	d.idx[s] = i
	buf = binary.AppendUvarint(buf, i)
	return appendString(buf, s)
}

// decDict is the decoder side; it tracks entries both by index (for
// references) and by value (to reject duplicate new-entries, which would
// break canonicality).
type decDict struct {
	entries []string
	seen    map[string]struct{}
}

func newDecDict() *decDict { return &decDict{seen: make(map[string]struct{})} }

func (d *decDict) str(r *byteReader) string {
	i := r.uvarint()
	if r.err != nil {
		return ""
	}
	if i < uint64(len(d.entries)) {
		return d.entries[i]
	}
	if i != uint64(len(d.entries)) || i >= maxDictEntries {
		r.fail()
		return ""
	}
	s := r.str()
	if r.err != nil {
		return ""
	}
	if _, dup := d.seen[s]; dup {
		// A new-entry for a known string: the canonical encoder would
		// have emitted a reference.
		r.fail()
		return ""
	}
	d.entries = append(d.entries, s)
	d.seen[s] = struct{}{}
	return s
}

// toEnc rebuilds the matching encoder state, so a reopened segment keeps
// encoding with the dictionary its existing frames established.
func (d *decDict) toEnc() *encDict {
	e := newEncDict()
	for i, s := range d.entries {
		e.idx[s] = uint64(i)
	}
	return e
}

// appendEvent appends ev's payload encoding (no frame) using dict.
func appendEvent(buf []byte, ev *Event, dict *encDict) []byte {
	buf = binary.AppendUvarint(buf, zigzag(ev.Time))
	buf = append(buf, byte(ev.Kind))
	buf = dict.appendStr(buf, ev.Key)
	buf = binary.AppendUvarint(buf, zigzag(int64(ev.Area)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Num))
	buf = dict.appendStr(buf, ev.Str)
	buf = binary.AppendUvarint(buf, uint64(len(ev.Data)))
	buf = append(buf, ev.Data...)
	return buf
}

// decodeEvent decodes one payload, which must be consumed exactly.
func decodeEvent(data []byte, dict *decDict) (Event, error) {
	r := &byteReader{b: data}
	var ev Event
	ev.Time = r.varint()
	ev.Kind = Kind(r.byte())
	ev.Key = dict.str(r)
	area := r.varint()
	if area < math.MinInt32 || area > math.MaxInt32 {
		return Event{}, ErrCorrupt
	}
	ev.Area = int32(area)
	ev.Num = r.f64()
	ev.Str = dict.str(r)
	ev.Data = r.bytes()
	if r.err != nil || r.remaining() != 0 {
		return Event{}, ErrCorrupt
	}
	return ev, nil
}

// AppendObservation appends o's flat encoding. Unlike the event codec it
// is stateless (an Observation travels inside one event's Data), but it
// follows the same canonical rules.
func AppendObservation(buf []byte, o *Observation) []byte {
	buf = binary.AppendUvarint(buf, zigzag(o.Time))
	buf = appendString(buf, o.Client)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Lat))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Lng))
	buf = binary.AppendUvarint(buf, uint64(len(o.Types)))
	for i := range o.Types {
		t := &o.Types[i]
		buf = appendString(buf, t.Name)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Surge))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.EWT))
		buf = binary.AppendUvarint(buf, uint64(len(t.Cars)))
		for _, c := range t.Cars {
			buf = appendString(buf, c.ID)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Lat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Lng))
		}
	}
	return buf
}

// DecodeObservation decodes data, which must contain exactly one
// encoded Observation.
func DecodeObservation(data []byte) (Observation, error) {
	r := &byteReader{b: data}
	var o Observation
	o.Time = r.varint()
	o.Client = r.str()
	o.Lat = r.f64()
	o.Lng = r.f64()
	nTypes := r.uvarint()
	// Each type costs ≥ 18 bytes (name prefix + two floats + car count).
	if r.err != nil || nTypes > maxObsTypes || nTypes > uint64(r.remaining()/18+1) {
		return Observation{}, ErrCorrupt
	}
	if nTypes > 0 {
		o.Types = make([]TypeObs, 0, nTypes)
	}
	for i := uint64(0); i < nTypes; i++ {
		var t TypeObs
		t.Name = r.str()
		t.Surge = r.f64()
		t.EWT = r.f64()
		nCars := r.uvarint()
		// Each car costs ≥ 17 bytes (id prefix + two floats).
		if r.err != nil || nCars > maxObsCars || nCars > uint64(r.remaining()/17+1) {
			return Observation{}, ErrCorrupt
		}
		if nCars > 0 {
			t.Cars = make([]Car, 0, nCars)
		}
		for j := uint64(0); j < nCars; j++ {
			var c Car
			c.ID = r.str()
			c.Lat = r.f64()
			c.Lng = r.f64()
			t.Cars = append(t.Cars, c)
		}
		o.Types = append(o.Types, t)
	}
	if r.err != nil || r.remaining() != 0 {
		return Observation{}, ErrCorrupt
	}
	return o, nil
}

// decodeFrames decodes every intact frame in a segment body (the bytes
// after the magic), assigning offsets base, base+1, … It stops without
// error at a torn tail — for the active segment that is simply the write
// frontier; for sealed segments callers decide whether short is corrupt.
// It returns the events, the byte size of the intact prefix (including
// the magic), and the dictionary state after the last intact frame.
func decodeFrames(body []byte, base int64) (evs []Event, goodSize int64, dict *decDict) {
	dict = newDecDict()
	goodSize = int64(len(segMagic))
	off := 0
	for {
		if len(body)-off < 8 {
			return evs, goodSize, dict
		}
		n := binary.LittleEndian.Uint32(body[off:])
		crc := binary.LittleEndian.Uint32(body[off+4:])
		if n > maxFramePayload || int(n) > len(body)-off-8 {
			return evs, goodSize, dict
		}
		payload := body[off+8 : off+8+int(n)]
		if crc32Sum(payload) != crc {
			return evs, goodSize, dict
		}
		ev, err := decodeEvent(payload, dict)
		if err != nil {
			return evs, goodSize, dict
		}
		ev.Seq = base + int64(len(evs))
		evs = append(evs, ev)
		off += 8 + int(n)
		goodSize += 8 + int64(n)
	}
}
