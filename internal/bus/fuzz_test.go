package bus

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzEventCodec drives the bus wire format with raw bytes. The first
// byte routes the operation; the rest is the input. Invariants:
//
//   - no decoder panics or over-allocates on arbitrary input
//   - any accepted input re-encodes byte-identically (the codec is
//     canonical, so decode is injective on the accepted set)
//   - frame scanning (decodeFrames) accepts exactly a prefix of the
//     body, and re-framing that prefix reproduces its bytes
func FuzzEventCodec(f *testing.F) {
	// A framed segment body with dictionary reuse across frames.
	enc := newEncDict()
	var seg []byte
	for _, ev := range []Event{
		{Time: 60, Kind: KindDriverSpawn, Key: "sess-aa", Area: 12},
		{Time: 65, Kind: KindTripDispatch, Key: "sess-aa", Area: 12, Num: 1.5, Str: "UberX"},
		{Time: 120, Kind: KindTripComplete, Key: "sess-aa", Area: 14, Num: 23.40, Str: "UberX"},
	} {
		payload := appendEvent(nil, &ev, enc)
		seg = binary.LittleEndian.AppendUint32(seg, uint32(len(payload)))
		seg = binary.LittleEndian.AppendUint32(seg, crc32Sum(payload))
		seg = append(seg, payload...)
	}
	f.Add(append([]byte{0}, seg...))

	ev := Event{Time: 3600, Kind: KindSurgeChange, Key: "area-07", Area: 7, Num: 2.1}
	f.Add(append([]byte{1}, appendEvent(nil, &ev, newEncDict())...))

	o := Observation{
		Client: "probe-03", Lat: 40.7, Lng: -74.0, Time: 1800,
		Types: []TypeObs{{Name: "UberX", Surge: 1.2, EWT: 300,
			Cars: []Car{{ID: "s-1", Lat: 40.71, Lng: -74.01}}}},
	}
	f.Add(append([]byte{2}, AppendObservation(nil, &o)...))
	f.Add([]byte{3, 0x80, 0x00})       // non-minimal varint
	f.Add([]byte{0, 0xff, 0xff, 0xff}) // torn frame header

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		op, body := data[0]%4, data[1:]
		switch op {
		case 0:
			fuzzFrames(t, body)
		case 1:
			fuzzEvent(t, body)
		case 2:
			fuzzObservation(t, body)
		case 3:
			fuzzVarint(t, body)
		}
	})
}

// fuzzFrames: decodeFrames accepts a prefix; re-encoding the decoded
// events with a fresh dictionary must reproduce that prefix exactly.
func fuzzFrames(t *testing.T, body []byte) {
	evs, goodSize, _ := decodeFrames(body, 100)
	prefix := goodSize - int64(len(segMagic))
	if prefix < 0 || prefix > int64(len(body)) {
		t.Fatalf("goodSize %d out of range for %d-byte body", goodSize, len(body))
	}
	for i, ev := range evs {
		if ev.Seq != 100+int64(i) {
			t.Fatalf("frame %d assigned seq %d", i, ev.Seq)
		}
	}
	enc := newEncDict()
	var re []byte
	for i := range evs {
		payload := appendEvent(nil, &evs[i], enc)
		re = binary.LittleEndian.AppendUint32(re, uint32(len(payload)))
		re = binary.LittleEndian.AppendUint32(re, crc32Sum(payload))
		re = append(re, payload...)
	}
	if !bytes.Equal(re, body[:prefix]) {
		t.Fatalf("re-framing %d events: got %d bytes != accepted %d-byte prefix", len(evs), len(re), prefix)
	}
}

// fuzzEvent: a single accepted payload re-encodes byte-identically
// under the reconstructed dictionary state.
func fuzzEvent(t *testing.T, body []byte) {
	dict := newDecDict()
	ev, err := decodeEvent(body, dict)
	if err != nil {
		return
	}
	re := appendEvent(nil, &ev, newEncDict())
	if !bytes.Equal(re, body) {
		t.Fatalf("event not canonical: %d bytes in, %d out", len(body), len(re))
	}
}

func fuzzObservation(t *testing.T, body []byte) {
	o, err := DecodeObservation(body)
	if err != nil {
		return
	}
	if len(o.Types) > maxObsTypes {
		t.Fatalf("decoded %d types past cap", len(o.Types))
	}
	re := AppendObservation(nil, &o)
	if !bytes.Equal(re, body) {
		t.Fatalf("observation not canonical: %d bytes in, %d out", len(body), len(re))
	}
}

// fuzzVarint: the canonical uvarint reader must agree with
// binary.Uvarint on accepted values and reject non-minimal forms.
func fuzzVarint(t *testing.T, body []byte) {
	r := &byteReader{b: body}
	v := r.uvarint()
	if r.err != nil {
		return
	}
	min := binary.AppendUvarint(nil, v)
	if !bytes.Equal(min, body[:r.off]) {
		t.Fatalf("accepted non-minimal varint for %d: %x vs %x", v, body[:r.off], min)
	}
	sv := unzigzag(zigzag(unzigzag(v)))
	if sv != unzigzag(v) {
		t.Fatalf("zigzag not involutive at %d", v)
	}
}
