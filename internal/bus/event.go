// Package bus is an embedded, stdlib-only event broker: append-only
// partitioned topics on disk, consumer groups with committed offsets that
// survive restart, and explicit backpressure. It is the streaming
// counterpart of the batch measure→record→analyze pipeline: the backend
// layers publish typed events as they happen, and consumers (the live
// tsdb ingester, the streaming analyzer, the surgemap tail) turn them
// into the always-on measurement system the longitudinal-audit literature
// calls for.
//
// Guarantees:
//
//   - per-key ordering: events are partitioned by Key (car session, area
//     label, client ID), and one partition is one append-only log, so all
//     events for a key are delivered in publish order;
//   - at-least-once delivery: a consumer that crashes after processing
//     but before Commit re-reads from its last committed offset;
//   - bounded memory: each partition caps publisher-ahead-of-consumer
//     bytes (MaxInflight). Publishers block (default) or drop with a
//     counter — the broker never buffers unboundedly.
package bus

// Kind identifies an event's type. The zero value is invalid.
type Kind uint8

// Event kinds, one per instrumented behaviour of the backend layers.
const (
	_ Kind = iota
	// sim: driver lifecycle and trips.
	KindDriverSpawn   // a driver session came online (organic arrival)
	KindDriverOffline // a session ended (organic death)
	KindDriverSuspend // coordinated-logoff suspension (ForceOffline)
	KindDriverResume  // a suspended driver returned as a fresh session
	KindTripDispatch  // a request booked a driver (Num = price multiplier)
	KindTripComplete  // a trip finished; the car is visible again
	// surge: one area's multiplier moved at a 5-minute update.
	KindSurgeChange // Num = new multiplier, Area = area index
	// api: the serving surface.
	KindPing     // a pingClient request was served (Data = Observation)
	KindRegister // an account was created
	// chaos: a fault was injected into a request (Str = fault kind).
	KindFault
	kindEnd
)

var kindNames = [kindEnd]string{
	KindDriverSpawn:   "driver-spawn",
	KindDriverOffline: "driver-offline",
	KindDriverSuspend: "driver-suspend",
	KindDriverResume:  "driver-resume",
	KindTripDispatch:  "trip-dispatch",
	KindTripComplete:  "trip-complete",
	KindSurgeChange:   "surge-change",
	KindPing:          "ping",
	KindRegister:      "register",
	KindFault:         "fault",
}

// String returns the kind's wire-stable name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Topic names the backend publishes on. One topic per producing layer
// keeps consumers cheap: the tsdb ingester subscribes to pings only, the
// surgemap tail to surge changes only.
const (
	TopicCars   = "sim.cars"      // driver lifecycle + trips, keyed by session
	TopicSurge  = "surge.changes" // multiplier changes, keyed by area label
	TopicPings  = "api.pings"     // served pings, keyed by client ID
	TopicFaults = "chaos.faults"  // injected faults, keyed by fault kind
)

// Event is one published record. Key selects the partition (and thus the
// ordering domain); the remaining fields are a small fixed schema chosen
// so every layer's events fit without per-kind structs — Data carries the
// one large payload (ping observations).
//
// The broker retains Key, Str, and Data after Publish returns; callers
// must hand over buffers they will not mutate.
type Event struct {
	// Seq is the event's offset within its partition, assigned by
	// Publish (dense, starting at 0, monotone per partition).
	Seq int64
	// Part is the partition the event landed in, set on publish/delivery.
	Part int
	// Time is the simulation time the event happened, in seconds.
	Time int64
	Kind Kind
	// Key is the partition and ordering key: driver session, area label,
	// or client ID.
	Key string
	// Area is the surge-area index the event happened in (-1 outside).
	Area int32
	// Num is the kind's numeric payload: price multiplier for dispatches,
	// new multiplier for surge changes, 0 otherwise.
	Num float64
	// Str is the kind's string payload: product name for driver/trip
	// events, fault kind for chaos events.
	Str string
	// Data is the kind's opaque payload: an encoded Observation for
	// KindPing, nil otherwise.
	Data []byte
}

// Observation is the bus-side mirror of one pingClient response: what the
// live tsdb ingester needs to reconstruct exactly the rows the poll-based
// recorder writes, plus the client's reported location so the ingester
// can build the campaign header. Car path vectors are dropped, as both
// campaign stores drop them.
type Observation struct {
	Client   string
	Lat, Lng float64 // the client's reported (wire) location
	Time     int64
	Types    []TypeObs
}

// TypeObs is one product's section of an Observation.
type TypeObs struct {
	Name       string
	Surge, EWT float64
	Cars       []Car
}

// Car is one visible vehicle: per-session randomized ID and position.
type Car struct {
	ID       string
	Lat, Lng float64
}
