// Package obs is the repo's dependency-free observability kit: a metrics
// registry (atomic counters, gauges, and fixed-bucket latency histograms
// with quantile snapshots) plus a ring-buffered structured event tracer.
//
// The paper this repo reproduces is a measurement study — pingClient
// latency bands, the 5-minute surge clock, jitter windows — so the serving
// stack instruments those exact signals. Every future "measurably faster"
// PR is expected to justify itself with numbers from this package (via
// cmd/loadgen or GET /metrics on cmd/uberd).
//
// All metric handles are nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, or *Tracer are no-ops, and a nil *Registry hands out nil
// handles. Instrumented code therefore wires metrics unconditionally and
// pays nothing when observability is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label; it keeps call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind tags a registry entry for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	name   string
	labels string // rendered {k="v",...} or ""
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry owns a namespace of metrics. Handle lookup is idempotent:
// asking twice for the same (name, labels) returns the same handle, so
// callers may resolve handles lazily on hot paths.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// renderLabels canonicalizes labels into `{k="v",...}` (keys sorted) or ""
// when there are none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name string, labels []Label, kind metricKind) *metricEntry {
	if r == nil {
		return nil
	}
	rendered := renderLabels(labels)
	id := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		return e
	}
	e := &metricEntry{name: name, labels: rendered, kind: kind}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	}
	r.entries[id] = e
	return e
}

// Counter returns (creating if needed) the counter for (name, labels).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e := r.lookup(name, labels, kindCounter)
	if e == nil {
		return nil
	}
	return e.counter
}

// Gauge returns (creating if needed) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e := r.lookup(name, labels, kindGauge)
	if e == nil {
		return nil
	}
	return e.gauge
}

// Histogram returns (creating if needed) the histogram for (name, labels).
// buckets are ascending upper bounds; they are fixed on first creation and
// ignored on later lookups of the same metric. Nil buckets means
// DefLatencyBuckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	e := r.lookup(name, labels, kindHistogram)
	if e == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.hist == nil {
		e.hist = NewHistogram(buckets)
	}
	return e.hist
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), grouped by metric name with names sorted for a
// stable, diffable output.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typeString(e.kind))
			lastName = e.name
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", e.name, e.labels, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", e.name, e.labels, formatFloat(e.gauge.Value()))
		case kindHistogram:
			writeHistogram(w, e.name, e.labels, e.hist.Snapshot())
		}
	}
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// formatFloat renders floats the way Prometheus expects (no exponent for
// ordinary magnitudes, +Inf spelled out).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// mergeLabels splices an extra label into an already-rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func writeHistogram(w io.Writer, name, labels string, s HistSnapshot) {
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, mergeLabels(labels, fmt.Sprintf("le=%q", formatFloat(b))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
