package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("endpoint", "/ping"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same (name, labels) -> same handle, label order irrelevant.
	if r.Counter("reqs_total", L("endpoint", "/ping")) != c {
		t.Error("counter lookup not idempotent")
	}
	g := r.Gauge("drivers")
	g.Set(42.5)
	if got := g.Value(); got != 42.5 {
		t.Errorf("gauge = %g, want 42.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	var tr *Tracer
	c.Inc()
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	tr.Record("e", time.Now(), 0)
	sp := tr.Start("e")
	sp.AddAttr("k", "v")
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil metrics recorded values")
	}
	if tr.Drain() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer not empty")
	}
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Error("nil registry wrote output")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	// 100 observations uniform over (0, 10]: v = 0.1, 0.2, ... 10.0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Sum; math.Abs(got-505) > 1e-9 {
		t.Errorf("sum = %g, want 505", got)
	}
	if got := s.Mean(); math.Abs(got-5.05) > 1e-9 {
		t.Errorf("mean = %g, want 5.05", got)
	}
	// Exact bucket counts: 10 in (0,1], 10 in (1,2], 30 in (2,5], 50 in (5,10].
	for i, want := range []int64{10, 10, 30, 50, 0} {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	// Interpolated quantiles: p50 lands mid-way through the (2,5] bucket.
	cases := []struct{ q, want float64 }{
		{0.10, 1},   // exactly exhausts bucket 0
		{0.50, 5},   // rank 50 = cum 20 + 30/30 through (2,5]
		{0.25, 2.5}, // rank 25 = 5/30 through (2,5]
		{0.95, 9.5}, // rank 95 = 45/50 through (5,10]
		{1.00, 10},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q%g = %g, want %g", c.q*100, got, c.want)
		}
	}
	// Empty histogram.
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(0.5)
	s := h.Snapshot()
	if s.Counts[2] != 1 {
		t.Errorf("overflow count = %d", s.Counts[2])
	}
	// Overflow observations are attributed to the highest finite bound.
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("q99 = %g, want 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 || s.Counts[0] != 8000 {
		t.Errorf("count = %d / bucket0 = %d, want 8000", s.Count, s.Counts[0])
	}
	if math.Abs(s.Sum-2000) > 1e-6 {
		t.Errorf("sum = %g, want 2000", s.Sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", L("endpoint", "/ping"), L("code", "2xx")).Add(7)
	r.Gauge("sim_drivers_online").Set(123)
	h := r.Histogram("rt_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE http_requests_total counter\n",
		`http_requests_total{code="2xx",endpoint="/ping"} 7` + "\n",
		"# TYPE sim_drivers_online gauge\n",
		"sim_drivers_online 123\n",
		"# TYPE rt_seconds histogram\n",
		`rt_seconds_bucket{le="0.1"} 1` + "\n",
		`rt_seconds_bucket{le="1"} 2` + "\n",
		`rt_seconds_bucket{le="+Inf"} 3` + "\n",
		"rt_seconds_sum 3.55\n",
		"rt_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Histogram labels merge with le=.
	r2 := NewRegistry()
	r2.Histogram("d_seconds", []float64{1}, L("endpoint", "/x")).Observe(0.5)
	buf.Reset()
	r2.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `d_seconds_bucket{endpoint="/x",le="1"} 1`) {
		t.Errorf("labeled histogram exposition wrong:\n%s", buf.String())
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		tr.Record("step", base.Add(time.Duration(i)*time.Second),
			time.Millisecond, L("i", string(rune('a'+i))))
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	spans := tr.Drain()
	if len(spans) != 3 {
		t.Fatalf("drained %d spans, want 3", len(spans))
	}
	// Oldest-first: records c, d, e survive.
	for i, want := range []string{"c", "d", "e"} {
		if got := spans[i].Attr("i"); got != want {
			t.Errorf("span %d attr = %q, want %q", i, got, want)
		}
	}
	if spans[0].Attr("missing") != "" {
		t.Error("absent attr not empty")
	}
	if tr.Len() != 0 {
		t.Error("drain did not clear")
	}
	// Start/End path records a measured duration.
	sp := tr.Start("op", L("k", "v"))
	sp.End()
	got := tr.Drain()
	if len(got) != 1 || got[0].Name != "op" || got[0].Attr("k") != "v" || got[0].Dur < 0 {
		t.Errorf("active span recorded wrong: %+v", got)
	}
}
