package obs

import (
	"sync"
	"time"
)

// Span is one completed traced event: a name, optional attributes, and
// when/how long it ran.
type Span struct {
	Name  string
	Attrs []Label
	Start time.Time
	Dur   time.Duration
}

// Attr returns the value of the named attribute ("" when absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Tracer keeps the most recent spans in a fixed-capacity ring buffer.
// When the ring is full, the oldest span is overwritten and Dropped
// increments — tracing never blocks or grows without bound. A nil *Tracer
// is a valid no-op tracer.
type Tracer struct {
	mu      sync.Mutex
	buf     []Span
	next    int // ring write cursor
	n       int // live spans (<= cap)
	dropped int64
}

// NewTracer returns a tracer retaining up to capacity spans (min 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// Record appends a completed span.
func (t *Tracer) Record(name string, start time.Time, dur time.Duration, attrs ...Label) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = Span{Name: name, Attrs: attrs, Start: start, Dur: dur}
	t.next = (t.next + 1) % len(t.buf)
}

// ActiveSpan is an in-flight span; End records it.
type ActiveSpan struct {
	t     *Tracer
	name  string
	start time.Time
	attrs []Label
}

// Start opens a span; call End (or AddAttr then End) to record it.
func (t *Tracer) Start(name string, attrs ...Label) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, start: time.Now(), attrs: attrs}
}

// AddAttr attaches an attribute to the span before it ends.
func (a *ActiveSpan) AddAttr(key, value string) {
	if a == nil {
		return
	}
	a.attrs = append(a.attrs, Label{Key: key, Value: value})
}

// End records the span with its measured duration.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.t.Record(a.name, a.start, time.Since(a.start), a.attrs...)
}

// Drain returns all retained spans oldest-first and empties the ring.
func (t *Tracer) Drain() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := (t.next - t.n + len(t.buf)) % len(t.buf)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	t.n, t.next = 0, 0
	return out
}

// Len returns how many spans are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many spans were overwritten before being drained.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
