package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default request-latency bucket upper bounds in
// seconds: 100µs to 10s, roughly ×2.5 per step. They bracket both an
// in-process httptest round trip (tens of µs) and a badly overloaded
// server (seconds).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with lock-free Observe. Bucket i
// counts observations v <= bounds[i] (and > bounds[i-1]); one implicit
// overflow bucket catches everything above the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil means DefLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		neu := floatBitsAdd(old, v)
		if h.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time copy of a histogram, cheap to take and
// safe to analyze while the histogram keeps filling.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, ascending
	Counts []int64   // per-bucket counts; Counts[len(Bounds)] is overflow
	Count  int64
	Sum    float64
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    floatFromBits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Observations in the
// overflow bucket are attributed to the highest finite bound. Returns 0
// when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			break // overflow bucket
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

func floatBitsAdd(bits uint64, v float64) uint64 {
	return math.Float64bits(math.Float64frombits(bits) + v)
}

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
