// Package record persists a measurement campaign's pingClient stream to
// disk and replays it later — the paper's workflow of collecting hundreds
// of gigabytes first and analyzing offline afterwards. The format is
// gzip-compressed JSON lines: a header describing the campaign, then one
// record per (round, client) observation. Car path vectors are dropped
// (no analysis consumes them); everything else the Dataset needs is kept.
package record

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
)

// Version is the current file format version. Version 2 added explicit
// gap rows (failed pings recorded as holes, not silently dropped).
const Version = 2

// ErrTruncated marks a recording with a truncated or corrupt tail (a
// crashed campaign, a partial copy). Replay returns it wrapped after
// delivering every row it could decode, so callers can analyze the
// partial data: errors.Is(err, ErrTruncated) distinguishes "the tail is
// missing" from "the file is unreadable".
var ErrTruncated = errors.New("record: truncated recording")

// Header opens every recording.
type Header struct {
	Version int         `json:"version"`
	City    string      `json:"city"`
	Start   int64       `json:"start"`
	Clients []geo.Point `json:"clients"`
	// ClientIDs names each series' client account, index-aligned with
	// Clients. Batch recordings may omit it (their series order is the
	// campaign's construction order); the live bus ingester writes it so
	// a resumed ingest maps returning clients to their original series.
	ClientIDs []string `json:"client_ids,omitempty"`
}

type carRec struct {
	ID  string  `json:"i"`
	Lat float64 `json:"a"`
	Lng float64 `json:"o"`
}

type typeRec struct {
	Type  string   `json:"t"`
	Surge float64  `json:"s"`
	EWT   float64  `json:"e"`
	Cars  []carRec `json:"c,omitempty"`
}

type obsRec struct {
	Time   int64     `json:"t"`
	Client int       `json:"c"`
	Types  []typeRec `json:"y,omitempty"`
	// Gap marks a row recording a failed ping instead of an observation;
	// Reason carries the error text.
	Gap    bool   `json:"g,omitempty"`
	Reason string `json:"r,omitempty"`
}

// Writer streams observations to disk. It implements client.Sink (and
// client.GapSink: failed pings are written as explicit gap rows, the way
// the paper's dataset accounts for its ~2.5% loss), so it can be attached
// to a campaign next to the live Dataset.
type Writer struct {
	gz   *gzip.Writer
	bw   *bufio.Writer
	enc  *json.Encoder
	err  error
	Rows int64
	// Gaps counts gap rows written.
	Gaps int64
	// pendingGaps buffers the round's failed pings until EndRound, when
	// the round's timestamp is known.
	pendingGaps []obsRec
}

// NewWriter writes the header and returns a sink-compatible writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	hdr.Version = Version
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriterSize(gz, 1<<16)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("record: write header: %w", err)
	}
	return &Writer{gz: gz, bw: bw, enc: enc}, nil
}

// Observe implements client.Sink.
func (w *Writer) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	if w.err != nil {
		return
	}
	rec := obsRec{Time: resp.Time, Client: clientIdx}
	for i := range resp.Types {
		ts := &resp.Types[i]
		tr := typeRec{Type: ts.TypeName, Surge: ts.Surge, EWT: ts.EWTSeconds}
		for _, c := range ts.Cars {
			tr.Cars = append(tr.Cars, carRec{ID: c.ID, Lat: c.Pos.Lat, Lng: c.Pos.Lng})
		}
		rec.Types = append(rec.Types, tr)
	}
	if err := w.enc.Encode(&rec); err != nil {
		w.err = err
		return
	}
	w.Rows++
}

// ObserveGap implements client.GapSink. The row is buffered until
// EndRound supplies the round's timestamp (a gap can precede the round's
// first successful ping, whose response carries the time).
func (w *Writer) ObserveGap(clientIdx int, pos geo.Point, lastSeen int64, err error) {
	if w.err != nil {
		return
	}
	reason := ""
	if err != nil {
		reason = err.Error()
	}
	w.pendingGaps = append(w.pendingGaps, obsRec{Client: clientIdx, Gap: true, Reason: reason})
}

// EndRound implements client.Sink; rounds are reconstructed on replay
// from the shared timestamp, so only the round's buffered gap rows are
// written. (If every ping in a round failed, the gaps attach to the
// previous round's timestamp — the closest time the recording knows.)
func (w *Writer) EndRound(now int64) {
	for i := range w.pendingGaps {
		w.pendingGaps[i].Time = now
		if w.err != nil {
			break
		}
		if err := w.enc.Encode(&w.pendingGaps[i]); err != nil {
			w.err = err
			break
		}
		w.Rows++
		w.Gaps++
	}
	w.pendingGaps = w.pendingGaps[:0]
}

// Close flushes and finalizes the stream.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.gz.Close()
}

// Written reports the rows (total) and gap rows recorded so far.
func (w *Writer) Written() (rows, gaps int64) { return w.Rows, w.Gaps }

// ReadHeader decodes only a recording's header, without decompressing the
// observation stream behind it.
func ReadHeader(r io.Reader) (Header, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Header{}, fmt.Errorf("record: open: %w", err)
	}
	defer gz.Close()
	var hdr Header
	if err := json.NewDecoder(bufio.NewReaderSize(gz, 1<<16)).Decode(&hdr); err != nil {
		return Header{}, fmt.Errorf("record: read header: %w", err)
	}
	if hdr.Version != Version {
		return hdr, fmt.Errorf("record: unsupported version %d", hdr.Version)
	}
	return hdr, nil
}

// Replay streams a recording into sinks, reconstructing round boundaries
// (all observations of one round share a timestamp). It returns the
// header and the number of rounds replayed. If the stream ends in a
// truncated or corrupt tail, every decodable row is delivered first and
// the returned error wraps ErrTruncated.
func Replay(r io.Reader, sinks ...client.Sink) (Header, int64, error) {
	return replayRange(r, minTime, maxTime, sinks...)
}

// ReplayRange is Replay restricted to rows with from ≤ time < to.
// Rounds outside the window are skipped entirely (no EndRound).
func ReplayRange(r io.Reader, from, to int64, sinks ...client.Sink) (Header, int64, error) {
	return replayRange(r, from, to, sinks...)
}

// MinTime and MaxTime are open range bounds for the *Range replay
// helpers: [MinTime, MaxTime) covers every observation.
const (
	MinTime = int64(-1) << 62
	MaxTime = int64(1) << 62
)

const (
	minTime = MinTime
	maxTime = MaxTime
)

func replayRange(r io.Reader, from, to int64, sinks ...client.Sink) (Header, int64, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Header{}, 0, fmt.Errorf("record: open: %w", err)
	}
	defer gz.Close()
	dec := json.NewDecoder(bufio.NewReaderSize(gz, 1<<16))

	var hdr Header
	if err := dec.Decode(&hdr); err != nil {
		return Header{}, 0, fmt.Errorf("record: read header: %w", err)
	}
	if hdr.Version != Version {
		return hdr, 0, fmt.Errorf("record: unsupported version %d", hdr.Version)
	}

	rp := newRoundPlayer(hdr, sinks)
	for {
		var rec obsRec
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A tail the campaign never finished writing (crash mid-row,
			// missing gzip trailer): deliver what decoded, mark the rest.
			rp.finish()
			return hdr, rp.rounds, fmt.Errorf("record: read row: %v: %w", err, ErrTruncated)
		}
		if rec.Time < from || rec.Time >= to {
			continue
		}
		if err := rp.play(&rec); err != nil {
			return hdr, rp.rounds, err
		}
	}
	rp.finish()
	return hdr, rp.rounds, nil
}

// roundPlayer feeds decoded rows to sinks, closing each round when the
// shared timestamp changes. It is the common replay tail for the gzip
// and tsdb stores.
type roundPlayer struct {
	hdr     Header
	sinks   []client.Sink
	curTime int64
	rounds  int64
}

func newRoundPlayer(hdr Header, sinks []client.Sink) *roundPlayer {
	return &roundPlayer{hdr: hdr, sinks: sinks, curTime: -1}
}

func (rp *roundPlayer) play(rec *obsRec) error {
	if rp.curTime >= 0 && rec.Time != rp.curTime {
		rp.endRound()
	}
	rp.curTime = rec.Time
	var pos geo.Point
	if rec.Client >= 0 && rec.Client < len(rp.hdr.Clients) {
		pos = rp.hdr.Clients[rec.Client]
	}
	if rec.Gap {
		// The reason is passed through verbatim so a recording survives
		// store conversions without accreting wrapper prefixes.
		gapErr := errors.New(rec.Reason)
		for _, s := range rp.sinks {
			if gs, ok := s.(client.GapSink); ok {
				gs.ObserveGap(rec.Client, pos, rec.Time, gapErr)
			}
		}
		return nil
	}
	resp, err := rec.toResponse()
	if err != nil {
		return err
	}
	for _, s := range rp.sinks {
		s.Observe(rec.Client, pos, resp)
	}
	return nil
}

func (rp *roundPlayer) endRound() {
	for _, s := range rp.sinks {
		s.EndRound(rp.curTime)
	}
	rp.rounds++
}

// finish closes the final round, if any.
func (rp *roundPlayer) finish() {
	if rp.curTime >= 0 {
		rp.endRound()
	}
}

func (r *obsRec) toResponse() (*core.PingResponse, error) {
	resp := &core.PingResponse{Time: r.Time}
	for _, tr := range r.Types {
		vt, err := core.ParseVehicleType(tr.Type)
		if err != nil {
			return nil, fmt.Errorf("record: row at t=%d: %w", r.Time, err)
		}
		ts := core.TypeStatus{
			Type: vt, TypeName: tr.Type,
			Surge: tr.Surge, EWTSeconds: tr.EWT,
		}
		for _, c := range tr.Cars {
			ts.Cars = append(ts.Cars, core.CarView{
				ID: c.ID, Pos: geo.LatLng{Lat: c.Lat, Lng: c.Lng},
			})
		}
		resp.Types = append(resp.Types, ts)
	}
	return resp, nil
}
