package record

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

// ingestRowCollector records every replayed observation as a canonical string
// per round. Rows are keyed by client ID, not series index: the live
// ingester numbers series in bus-delivery (partition round-robin)
// order, a stable but arbitrary permutation of campaign order, so raw
// indices are not comparable across stores. Positions are ignored (the
// live header roundtrips them through LatLng so the plane points
// differ in the last ulps; the rows themselves carry no positions).
type ingestRowCollector struct {
	ids  []string // series index → client ID
	rows map[int64][]string
}

func (rc *ingestRowCollector) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	id := fmt.Sprintf("series-%d", clientIdx)
	if clientIdx >= 0 && clientIdx < len(rc.ids) {
		id = rc.ids[clientIdx]
	}
	for i := range resp.Types {
		ts := &resp.Types[i]
		s := fmt.Sprintf("%s|%s|%g|%g", id, ts.TypeName, ts.Surge, ts.EWTSeconds)
		for _, c := range ts.Cars {
			s += fmt.Sprintf("|%s@%.9f,%.9f", c.ID, c.Pos.Lat, c.Pos.Lng)
		}
		rc.rows[resp.Time] = append(rc.rows[resp.Time], s)
	}
}

func (rc *ingestRowCollector) EndRound(int64) {}

func collectStore(t *testing.T, path string) (map[int64][]string, int64) {
	t.Helper()
	hdr, err := ReadHeaderPath(path)
	if err != nil {
		t.Fatalf("read header %s: %v", path, err)
	}
	rc := &ingestRowCollector{ids: hdr.ClientIDs, rows: make(map[int64][]string)}
	_, rounds, err := ReplayPath(path, rc)
	if err != nil {
		t.Fatalf("replay %s: %v", path, err)
	}
	for _, rows := range rc.rows {
		sort.Strings(rows)
	}
	return rc.rows, rounds
}

// TestLiveIngestMatchesBatchStore runs one campaign writing the batch
// tsdb store (the poll path measure uses) while publishing the same
// served responses over the bus, ingests the bus topic into a second
// store — with a mid-stream ingester restart to exercise offset resume
// and at-least-once dedup — and asserts both stores replay identical
// per-round row sets.
func TestLiveIngestMatchesBatchStore(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 21, true)
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, 12)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	if err := camp.RegisterAll(svc); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	batchDir := filepath.Join(dir, "batch")
	liveDir := filepath.Join(dir, "live")
	ids := make([]string, len(pts))
	for i := range ids {
		ids[i] = fmt.Sprintf("probe-%02d", i)
	}
	hdr := Header{City: profile.Name, Start: 0, Clients: pts, ClientIDs: ids}
	batch, err := CreateTSDB(batchDir, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	camp.AddSink(batch)

	br, err := bus.Open(filepath.Join(dir, "bus"), bus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	topic, err := br.Topic(bus.TopicPings, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetEventSinks(func(ev bus.Event) {
		if err := topic.Publish(ev); err != nil {
			t.Errorf("publish: %v", err)
		}
	}, nil)

	camp.RunSim(svc, 1800)
	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}

	ingestHdr := Header{City: profile.Name, Start: 0}
	proj := svc.World().Projection()

	// First ingester session: stop mid-stream without committing the
	// tail, as a crash would.
	cons, err := topic.Subscribe("ingest")
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewLiveIngester(liveDir, ingestHdr, proj, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 1000; n++ {
		ev, ok := cons.TryNext()
		if !ok {
			t.Fatal("bus drained before the restart point; lower the cutoff")
		}
		done, err := ing.Handle(ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if err := cons.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	cons.Close()

	// Second session: resumes from the last committed round and must
	// skip the redelivered tail of the first.
	cons2, err := topic.Subscribe("ingest")
	if err != nil {
		t.Fatal(err)
	}
	ing2, err := NewLiveIngester(liveDir, ingestHdr, proj, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, ok := cons2.TryNext()
		if !ok {
			break
		}
		done, err := ing2.Handle(ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if err := cons2.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, dups, _ := ing2.Stats()
	if dups == 0 {
		t.Error("restart redelivered nothing: the at-least-once dedup path went unexercised")
	}
	if err := ing2.Close(); err != nil {
		t.Fatal(err)
	}
	cons2.Close()

	batchRows, batchRounds := collectStore(t, batchDir)
	liveRows, liveRounds := collectStore(t, liveDir)
	if batchRounds == 0 {
		t.Fatal("batch store replayed zero rounds")
	}
	if batchRounds != liveRounds {
		t.Errorf("rounds: batch %d, live %d", batchRounds, liveRounds)
	}
	if len(batchRows) != len(liveRows) {
		t.Fatalf("round timestamps: batch %d, live %d", len(batchRows), len(liveRows))
	}
	for tm, want := range batchRows {
		got, ok := liveRows[tm]
		if !ok {
			t.Fatalf("round %d missing from live store", tm)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: batch %d rows, live %d rows", tm, len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d row %d differs:\n  batch: %s\n  live:  %s", tm, i, want[i], got[i])
			}
		}
	}

	// The live header must name every campaign client exactly once (in
	// bus-delivery order, some permutation of campaign order), with each
	// series' stored position matching that client's grid point.
	liveHdr, err := ReadHeaderPath(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveHdr.ClientIDs) != len(pts) {
		t.Fatalf("live header has %d client IDs, want %d", len(liveHdr.ClientIDs), len(pts))
	}
	seen := make(map[string]bool)
	for i, id := range liveHdr.ClientIDs {
		if seen[id] {
			t.Fatalf("client %s mapped to two series", id)
		}
		seen[id] = true
		var campIdx int
		if _, err := fmt.Sscanf(id, "probe-%d", &campIdx); err != nil || campIdx < 0 || campIdx >= len(pts) {
			t.Fatalf("unexpected client ID %q in live header", id)
		}
		want, got := pts[campIdx], liveHdr.Clients[i]
		if dx, dy := got.X-want.X, got.Y-want.Y; dx*dx+dy*dy > 1e-6 {
			t.Errorf("series %d (%s) stored at %v, campaign placed it at %v", i, id, got, want)
		}
	}
}
