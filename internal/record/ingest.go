// LiveIngester: the bus→tsdb bridge. It consumes api.pings events off
// the event bus and writes the exact rows the poll-based campaign
// (measure -store tsdb) would have written, so cmd/analyze works
// unchanged on a store that was ingested live.
//
// Series assignment: the first time a client ID appears it gets the next
// series index, and the growing ID↔series map is persisted in the
// campaign header (tsdb Extra) — a restarted ingester maps returning
// clients back to their original series. Because the consumer drains
// the topic's partitions round-robin, first-appearance order is a
// stable but arbitrary interleaving of the clients, not campaign
// order; ClientIDs in the header is the authoritative series→client
// mapping, and comparisons against a poll-recorded store must join on
// it rather than on raw series numbers.
//
// Delivery is at-least-once: after a crash between tsdb commit and
// consumer-offset commit, the bus redelivers the tail. The ingester
// deduplicates against each series' newest stored timestamp
// (tsdb.SeriesLastTime), which survives restart, so replayed rows are
// skipped rather than double-appended.

package record

import (
	"encoding/json"
	"fmt"

	"repro/internal/bus"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// LiveIngester writes bus ping events into a tsdb campaign store. Not
// safe for concurrent use: one goroutine drives it (the bus consumer
// loop).
type LiveIngester struct {
	db   *tsdb.DB
	proj *geo.Projection
	hdr  Header

	series map[string]int // client ID → series index
	last   map[int]int64  // series → newest appended time (dedup floor)

	// roundTime is the timestamp of the round currently accumulating;
	// an event with a later time commits the finished round first.
	roundTime  int64
	roundOpen  bool
	rows, dups int64
	rounds     int64
}

// NewLiveIngester opens (or resumes) a tsdb campaign store at dir fed
// from the bus. hdr supplies City and Start for a fresh store; proj maps
// client ping locations into the store's plane coordinates. On resume
// the existing header wins and its client→series map is adopted.
func NewLiveIngester(dir string, hdr Header, proj *geo.Projection, metrics *obs.Registry) (*LiveIngester, error) {
	hdr.Version = Version
	extra, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	db, err := tsdb.Open(dir, tsdb.Options{Extra: extra, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	ing := &LiveIngester{
		db:     db,
		proj:   proj,
		hdr:    hdr,
		series: make(map[string]int),
		last:   make(map[int]int64),
	}
	if stored, err := headerFromStore(db); err == nil {
		ing.hdr = stored
	}
	if len(ing.hdr.ClientIDs) != len(ing.hdr.Clients) && len(ing.hdr.ClientIDs) > 0 {
		db.Close()
		return nil, fmt.Errorf("record: %s: header has %d client IDs for %d clients",
			dir, len(ing.hdr.ClientIDs), len(ing.hdr.Clients))
	}
	for i, id := range ing.hdr.ClientIDs {
		ing.series[id] = i
		if t, ok := db.SeriesLastTime(i); ok {
			ing.last[i] = t
		}
	}
	return ing, nil
}

// Handle ingests one bus event. Non-ping events are ignored, so the
// whole api.pings topic can be piped in unfiltered. It reports whether
// the event closed out a ping round (one tsdb commit) — the caller
// commits its consumer offsets on that signal, keeping "rows durable"
// ahead of "offsets durable" (at-least-once).
func (ing *LiveIngester) Handle(ev bus.Event) (roundDone bool, err error) {
	if ev.Kind != bus.KindPing || len(ev.Data) == 0 {
		return false, nil
	}
	o, err := bus.DecodeObservation(ev.Data)
	if err != nil {
		return false, fmt.Errorf("record: ping event %d/%d: %w", ev.Part, ev.Seq, err)
	}

	// A later timestamp means every client of the previous round has
	// reported (the campaign serializes rounds): seal it.
	if ing.roundOpen && o.Time > ing.roundTime {
		if err := ing.commitRound(); err != nil {
			return false, err
		}
		roundDone = true
	}

	idx, ok := ing.series[o.Client]
	if !ok {
		idx, err = ing.addClient(&o)
		if err != nil {
			return roundDone, err
		}
	}
	if last, seen := ing.last[idx]; seen && o.Time <= last {
		// Redelivered after a crash (or a duplicate ping inside one
		// round): the batch path never writes two rows of a series with
		// one timestamp, so neither do we.
		ing.dups++
		return roundDone, nil
	}

	row := tsdb.Row{Time: o.Time, Series: idx}
	for i := range o.Types {
		t := &o.Types[i]
		tr := tsdb.TypeObs{Name: t.Name, Surge: t.Surge, EWT: t.EWT}
		for _, c := range t.Cars {
			tr.Cars = append(tr.Cars, tsdb.Car{ID: c.ID, Lat: c.Lat, Lng: c.Lng})
		}
		row.Types = append(row.Types, tr)
	}
	if err := ing.db.Append(row); err != nil {
		return roundDone, err
	}
	ing.last[idx] = o.Time
	ing.rows++
	ing.roundTime = o.Time
	ing.roundOpen = true
	return roundDone, nil
}

// addClient assigns the next series index to a first-seen client and
// persists the grown header.
func (ing *LiveIngester) addClient(o *bus.Observation) (int, error) {
	idx := len(ing.hdr.ClientIDs)
	ing.hdr.ClientIDs = append(ing.hdr.ClientIDs, o.Client)
	ing.hdr.Clients = append(ing.hdr.Clients, ing.proj.ToPlane(geo.LatLng{Lat: o.Lat, Lng: o.Lng}))
	extra, err := json.Marshal(ing.hdr)
	if err != nil {
		return 0, err
	}
	if err := ing.db.SetExtra(extra); err != nil {
		return 0, err
	}
	ing.series[o.Client] = idx
	return idx, nil
}

// commitRound makes the accumulated round durable (one WAL fsync, like
// the batch writer's EndRound).
func (ing *LiveIngester) commitRound() error {
	ing.roundOpen = false
	ing.rounds++
	return ing.db.Commit()
}

// Stats reports rows appended, redeliveries skipped, and rounds
// committed by this ingester instance.
func (ing *LiveIngester) Stats() (rows, dups, rounds int64) {
	return ing.rows, ing.dups, ing.rounds
}

// Close seals the open round, if any, and closes the store.
func (ing *LiveIngester) Close() error {
	var err error
	if ing.roundOpen {
		err = ing.commitRound()
	}
	if cerr := ing.db.Close(); err == nil {
		err = cerr
	}
	return err
}
