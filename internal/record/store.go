// The tsdb-backed campaign store. The gzip-JSONL format (record.go) is
// one flat file; the tsdb store is a directory managed by internal/tsdb:
// crash-safe (WAL), compressed (columnar chunks), and range-queryable, so
// cmd/analyze can read one evening of a four-week campaign without
// decompressing the rest. Both stores hold the same rows; Convert maps
// between them losslessly (car path vectors are dropped by both).
//
// Path-based helpers (ReadHeaderPath, ReplayPath, ReplayPathRange)
// dispatch on the store kind so callers never branch on the format.

package record

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// CampaignWriter is the write side of a campaign store. Both the
// gzip-JSONL Writer and the tsdb-backed TSDBWriter implement it, so
// cmd/measure attaches either as a campaign sink via -store.
type CampaignWriter interface {
	client.Sink
	client.GapSink
	Close() error
	Written() (rows, gaps int64)
}

// StoreKinds lists the values Create accepts.
const (
	StoreJSONL = "jsonl"
	StoreTSDB  = "tsdb"
)

// Create opens a campaign store of the given kind at path. metrics may be
// nil; the tsdb store reports compression/fsync/compaction metrics to it.
func Create(kind, path string, hdr Header, metrics *obs.Registry) (CampaignWriter, error) {
	switch kind {
	case StoreJSONL, "":
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		w, err := NewWriter(f, hdr)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &fileWriter{Writer: w, f: f}, nil
	case StoreTSDB:
		return CreateTSDB(path, hdr, metrics)
	default:
		return nil, fmt.Errorf("record: unknown store kind %q (want %s or %s)", kind, StoreJSONL, StoreTSDB)
	}
}

// fileWriter pairs a Writer with the file it owns.
type fileWriter struct {
	*Writer
	f *os.File
}

func (w *fileWriter) Close() error {
	err := w.Writer.Close()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// TSDBWriter streams a campaign into a tsdb store: one series per client,
// one Commit (one WAL fsync) per ping round. It implements client.Sink
// and client.GapSink exactly like Writer, including buffering gap rows
// until EndRound supplies the round's timestamp.
type TSDBWriter struct {
	db   *tsdb.DB
	err  error
	rows int64
	gaps int64
	// pendingGaps buffers the round's failed pings until EndRound.
	pendingGaps []tsdb.Row
}

// CreateTSDB creates (or reopens) a tsdb campaign store at dir. The
// campaign header is stored in the tsdb metadata; reopening an existing
// store resumes it (rows recovered from the WAL are counted as written).
func CreateTSDB(dir string, hdr Header, metrics *obs.Registry) (*TSDBWriter, error) {
	hdr.Version = Version
	extra, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	db, err := tsdb.Open(dir, tsdb.Options{Extra: extra, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	return &TSDBWriter{db: db, rows: int64(db.Recovered())}, nil
}

// Observe implements client.Sink.
func (w *TSDBWriter) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	if w.err != nil {
		return
	}
	row := tsdb.Row{Time: resp.Time, Series: clientIdx}
	for i := range resp.Types {
		ts := &resp.Types[i]
		obs := tsdb.TypeObs{Name: ts.TypeName, Surge: ts.Surge, EWT: ts.EWTSeconds}
		for _, c := range ts.Cars {
			obs.Cars = append(obs.Cars, tsdb.Car{ID: c.ID, Lat: c.Pos.Lat, Lng: c.Pos.Lng})
		}
		row.Types = append(row.Types, obs)
	}
	if err := w.db.Append(row); err != nil {
		w.err = err
		return
	}
	w.rows++
}

// ObserveGap implements client.GapSink; the row is buffered until
// EndRound supplies the round's timestamp.
func (w *TSDBWriter) ObserveGap(clientIdx int, pos geo.Point, lastSeen int64, err error) {
	if w.err != nil {
		return
	}
	reason := ""
	if err != nil {
		reason = err.Error()
	}
	w.pendingGaps = append(w.pendingGaps, tsdb.Row{Series: clientIdx, Gap: true, Reason: reason})
}

// EndRound implements client.Sink: buffered gap rows get the round's
// timestamp, and the round is committed (one WAL fsync).
func (w *TSDBWriter) EndRound(now int64) {
	for i := range w.pendingGaps {
		if w.err != nil {
			break
		}
		w.pendingGaps[i].Time = now
		if err := w.db.Append(w.pendingGaps[i]); err != nil {
			w.err = err
			break
		}
		w.rows++
		w.gaps++
	}
	w.pendingGaps = w.pendingGaps[:0]
	if w.err == nil {
		if err := w.db.Commit(); err != nil {
			w.err = err
		}
	}
}

// Written reports rows (total) and gap rows stored so far.
func (w *TSDBWriter) Written() (rows, gaps int64) { return w.rows, w.gaps }

// Close seals and closes the store.
func (w *TSDBWriter) Close() error {
	cerr := w.db.Close()
	if w.err != nil {
		return w.err
	}
	return cerr
}

// headerFromStore decodes the campaign header a tsdb store carries.
func headerFromStore(db *tsdb.DB) (Header, error) {
	var hdr Header
	if len(db.Extra()) == 0 {
		return hdr, errors.New("record: tsdb store has no campaign header")
	}
	if err := json.Unmarshal(db.Extra(), &hdr); err != nil {
		return hdr, fmt.Errorf("record: tsdb store header: %w", err)
	}
	if hdr.Version != Version {
		return hdr, fmt.Errorf("record: unsupported version %d", hdr.Version)
	}
	return hdr, nil
}

// ReadHeaderPath reads just the campaign header of either store kind,
// without touching the observation data.
func ReadHeaderPath(path string) (Header, error) {
	if tsdb.IsStore(path) {
		db, err := tsdb.Open(path, tsdb.Options{ReadOnly: true})
		if err != nil {
			return Header{}, err
		}
		defer db.Close()
		return headerFromStore(db)
	}
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return ReadHeader(f)
}

// ReplayPath replays either store kind into sinks. See Replay for the
// round-reconstruction and ErrTruncated semantics.
func ReplayPath(path string, sinks ...client.Sink) (Header, int64, error) {
	return ReplayPathRange(path, minTime, maxTime, sinks...)
}

// ReplayPathRange replays rows with from ≤ time < to. On a tsdb store
// this reads only the chunks overlapping the window; on a gzip recording
// it streams the whole file and filters.
func ReplayPathRange(path string, from, to int64, sinks ...client.Sink) (Header, int64, error) {
	if tsdb.IsStore(path) {
		return replayTSDBRange(path, from, to, sinks...)
	}
	f, err := os.Open(path)
	if err != nil {
		return Header{}, 0, err
	}
	defer f.Close()
	return ReplayRange(f, from, to, sinks...)
}

func replayTSDBRange(dir string, from, to int64, sinks ...client.Sink) (Header, int64, error) {
	db, err := tsdb.Open(dir, tsdb.Options{ReadOnly: true})
	if err != nil {
		return Header{}, 0, err
	}
	defer db.Close()
	hdr, err := headerFromStore(db)
	if err != nil {
		return hdr, 0, err
	}
	rp := newRoundPlayer(hdr, sinks)
	it := db.QueryAll(from, to)
	var rec obsRec
	for it.Next() {
		rowToObs(it.Row(), &rec)
		if err := rp.play(&rec); err != nil {
			return hdr, rp.rounds, err
		}
	}
	if err := it.Err(); err != nil {
		rp.finish()
		// Damaged chunks behave like a truncated tail: partial data plus a
		// sentinel the caller can tolerate.
		return hdr, rp.rounds, fmt.Errorf("record: %v: %w", err, ErrTruncated)
	}
	rp.finish()
	return hdr, rp.rounds, nil
}

// rowToObs converts a stored tsdb row back to the wire record shape.
func rowToObs(row *tsdb.Row, rec *obsRec) {
	rec.Time = row.Time
	rec.Client = row.Series
	rec.Gap = row.Gap
	rec.Reason = row.Reason
	rec.Types = rec.Types[:0]
	for i := range row.Types {
		t := &row.Types[i]
		tr := typeRec{Type: t.Name, Surge: t.Surge, EWT: t.EWT}
		for _, c := range t.Cars {
			tr.Cars = append(tr.Cars, carRec{ID: c.ID, Lat: c.Lat, Lng: c.Lng})
		}
		rec.Types = append(rec.Types, tr)
	}
}

// StoreBounds reports the [min, max] observation time range a tsdb store
// holds. ok is false (with nil error) for an empty store or a gzip
// recording, whose extent is only known after a full replay.
func StoreBounds(path string) (minT, maxT int64, ok bool, err error) {
	if !tsdb.IsStore(path) {
		return 0, 0, false, nil
	}
	db, err := tsdb.Open(path, tsdb.Options{ReadOnly: true})
	if err != nil {
		return 0, 0, false, err
	}
	defer db.Close()
	minT, maxT, ok = db.Bounds()
	return minT, maxT, ok, nil
}

// Convert copies a campaign between store kinds, direction inferred from
// the input (tsdb directory → gzip file, gzip file → tsdb directory).
// It returns the header and the number of rows copied.
func Convert(in, out string, metrics *obs.Registry) (Header, int64, error) {
	hdr, err := ReadHeaderPath(in)
	if err != nil {
		return hdr, 0, err
	}
	kind := StoreTSDB
	if tsdb.IsStore(in) {
		kind = StoreJSONL
	}
	w, err := Create(kind, out, hdr, metrics)
	if err != nil {
		return hdr, 0, err
	}
	if _, _, err := ReplayPath(in, w); err != nil {
		w.Close()
		return hdr, 0, err
	}
	if err := w.Close(); err != nil {
		return hdr, 0, err
	}
	rows, _ := w.Written()
	return hdr, rows, nil
}
