package record

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
)

// benchRound feeds one realistic ping round into sinks: nClients clients,
// 4 products each, 6-8 visible cars per product with slowly-churning IDs
// (the regime the dictionary encoder sees in a real campaign).
func benchRound(rng *rand.Rand, sinks []client.Sink, now int64, nClients int) {
	for c := 0; c < nClients; c++ {
		resp := &core.PingResponse{Time: now}
		for p := 0; p < 4; p++ {
			ts := core.TypeStatus{
				Type:       core.VehicleType(p),
				TypeName:   core.VehicleType(p).String(),
				Surge:      1 + float64(rng.Intn(15))*0.1,
				EWTSeconds: float64(60 + rng.Intn(500)),
			}
			for k := 0; k < 6+rng.Intn(3); k++ {
				// Car IDs churn slowly: mostly the same pool round to round.
				ts.Cars = append(ts.Cars, core.CarView{
					ID:  fmt.Sprintf("car-%d-%d-%d", c, p, rng.Intn(12)),
					Pos: geo.LatLng{Lat: 37.7 + rng.Float64()*0.1, Lng: -122.4 + rng.Float64()*0.1},
				})
			}
			resp.Types = append(resp.Types, ts)
		}
		for _, s := range sinks {
			s.Observe(c, geo.Point{}, resp)
		}
	}
	for _, s := range sinks {
		s.EndRound(now)
	}
}

const (
	benchClients = 43 // the paper's SF campaign used 43 measurement points
	benchStart   = 1000
)

// writeBenchStore records a synthetic campaign to one store kind and
// returns the on-disk size in bytes.
func writeBenchStore(tb testing.TB, kind, path string, rounds int) int64 {
	hdr := Header{City: "bench", Start: benchStart, Clients: make([]geo.Point, benchClients)}
	w, err := Create(kind, path, hdr, nil)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < rounds; r++ {
		benchRound(rng, []client.Sink{w}, benchStart+int64(r)*5, benchClients)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return diskSize(tb, path)
}

func diskSize(tb testing.TB, path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		tb.Fatal(err)
	}
	if !fi.IsDir() {
		return fi.Size()
	}
	var total int64
	err = filepath.Walk(path, func(_ string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			total += fi.Size()
		}
		return err
	})
	if err != nil {
		tb.Fatal(err)
	}
	return total
}

// BenchmarkStoreWriteJSONL and BenchmarkStoreWriteTSDB record the same
// 200-round, 43-client campaign; bytes/row is the per-observation cost
// on disk (tsdb is measured sealed, as a long campaign mostly is).
func BenchmarkStoreWriteJSONL(b *testing.B) {
	const rounds = 200
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = writeBenchStore(b, StoreJSONL, filepath.Join(b.TempDir(), "c.gz"), rounds)
	}
	b.ReportMetric(float64(bytes)/float64(rounds*benchClients), "bytes/row")
	b.ReportMetric(float64(rounds*benchClients*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkStoreWriteTSDB(b *testing.B) {
	const rounds = 200
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes = writeBenchStore(b, StoreTSDB, filepath.Join(b.TempDir(), "c.tsdb"), rounds)
	}
	b.ReportMetric(float64(bytes)/float64(rounds*benchClients), "bytes/row")
	b.ReportMetric(float64(rounds*benchClients*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// countSink tallies replayed rows without retaining them.
type countSink struct{ rows int64 }

func (s *countSink) Observe(int, geo.Point, *core.PingResponse) { s.rows++ }
func (s *countSink) EndRound(int64)                             {}

// BenchmarkStoreRangeJSONL and BenchmarkStoreRangeTSDB replay the same
// 120-round window out of a 2000-round campaign — the "analyze one
// evening of a four-week campaign" access pattern. The gzip recording
// must stream and decode the whole file; the tsdb store reads only the
// chunks whose time range overlaps the window.
func BenchmarkStoreRangeJSONL(b *testing.B) {
	path := filepath.Join(b.TempDir(), "c.gz")
	writeBenchStore(b, StoreJSONL, path, 2000)
	benchRange(b, path)
}

func BenchmarkStoreRangeTSDB(b *testing.B) {
	path := filepath.Join(b.TempDir(), "c.tsdb")
	writeBenchStore(b, StoreTSDB, path, 2000)
	benchRange(b, path)
}

func benchRange(b *testing.B, path string) {
	from := int64(benchStart + 1000*5)
	to := from + 120*5
	b.ResetTimer()
	var rows int64
	for i := 0; i < b.N; i++ {
		var s countSink
		if _, _, err := ReplayPathRange(path, from, to, &s); err != nil {
			b.Fatal(err)
		}
		rows = s.rows
	}
	if rows != 120*benchClients {
		b.Fatalf("window replayed %d rows, want %d", rows, 120*benchClients)
	}
	b.ReportMetric(float64(rows), "rows/op")
}
