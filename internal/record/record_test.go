package record

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
)

// runRecordedCampaign runs a 1-hour campaign writing both a live dataset
// and a recording, then replays the recording into a second dataset.
func runRecordedCampaign(t *testing.T) (live, replayed *measure.Dataset, hdr Header, rounds int64) {
	t.Helper()
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 77, true)
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)

	areas := profile.SurgeAreas()
	clientAreas := make([]int, len(pts))
	for i, p := range pts {
		clientAreas[i] = sim.AreaOf(areas, p)
	}
	mkDataset := func() *measure.Dataset {
		return measure.NewDataset(measure.Config{
			Profile: profile, Start: 0, End: 3600, ClientAreas: clientAreas,
		}, len(pts))
	}

	live = mkDataset()
	camp.AddSink(live)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{City: profile.Name, Start: 0, Clients: pts})
	if err != nil {
		t.Fatal(err)
	}
	camp.AddSink(w)
	camp.RunSim(svc, 3600)
	live.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Rows == 0 {
		t.Fatal("nothing recorded")
	}

	replayed = mkDataset()
	hdr, rounds, err = Replay(&buf, replayed)
	if err != nil {
		t.Fatal(err)
	}
	replayed.Close()
	return live, replayed, hdr, rounds
}

func TestRoundTripMatchesLiveDataset(t *testing.T) {
	live, replayed, hdr, rounds := runRecordedCampaign(t)

	if hdr.City != "manhattan" || len(hdr.Clients) != client.NumClients {
		t.Errorf("header = %+v", hdr)
	}
	if rounds != 720 {
		t.Errorf("rounds = %d, want 720", rounds)
	}
	// The replayed dataset must match the live one on every series.
	for _, vt := range measure.TrackedTypes {
		a, b := live.SupplySeries(vt), replayed.SupplySeries(vt)
		for i := range a.Values {
			if !eqNaN(a.Values[i], b.Values[i]) {
				t.Fatalf("%v supply[%d]: %v vs %v", vt, i, a.Values[i], b.Values[i])
			}
		}
		da, db := live.DeathSeries(vt), replayed.DeathSeries(vt)
		for i := range da.Values {
			if !eqNaN(da.Values[i], db.Values[i]) {
				t.Fatalf("%v deaths[%d]: %v vs %v", vt, i, da.Values[i], db.Values[i])
			}
		}
	}
	if len(live.SurgeSamples) != len(replayed.SurgeSamples) {
		t.Fatalf("surge samples: %d vs %d", len(live.SurgeSamples), len(replayed.SurgeSamples))
	}
	for i := range live.SurgeSamples {
		if live.SurgeSamples[i] != replayed.SurgeSamples[i] {
			t.Fatalf("surge sample %d differs", i)
		}
	}
	// Jitter events survive the round trip (change logs identical).
	le := measure.ExtractJitter(live.Changes)
	re := measure.ExtractJitter(replayed.Changes)
	if len(le) != len(re) {
		t.Errorf("jitter events: %d vs %d", len(le), len(re))
	}
}

func eqNaN(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

func TestReplayCorruptInput(t *testing.T) {
	if _, _, err := Replay(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("garbage input should error")
	}
	// Valid gzip, garbage JSON.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{City: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Empty body: header only, zero rounds.
	hdr, rounds, err := Replay(&buf)
	if err != nil {
		t.Fatalf("empty recording should replay cleanly: %v", err)
	}
	if hdr.City != "x" || rounds != 0 {
		t.Errorf("hdr=%+v rounds=%d", hdr, rounds)
	}
}

func TestWriterPreservesUnknownTypesError(t *testing.T) {
	// A record with an unknown vehicle type fails replay loudly rather
	// than being silently dropped.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{City: "x", Clients: []geo.Point{{}}})
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(0, geo.Point{}, &core.PingResponse{
		Time:  5,
		Types: []core.TypeStatus{{TypeName: "uberWARP", Surge: 1}},
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(&buf, discardSink{}); err == nil {
		t.Error("unknown type should fail replay")
	}
}

type discardSink struct{}

func (discardSink) Observe(int, geo.Point, *core.PingResponse) {}
func (discardSink) EndRound(int64)                             {}

// flakyPinger fails a fraction of pings so the recording contains gap rows.
type flakyPinger struct {
	core.Service
	rng      *rand.Rand
	failProb float64
}

func (f *flakyPinger) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	if f.rng.Float64() < f.failProb {
		return nil, errors.New("simulated transport failure")
	}
	return f.Service.PingClient(clientID, loc)
}

// TestRoundTripPreservesGaps runs a lossy campaign and checks the replayed
// dataset sees the same explicit gaps — and therefore the same death
// series — as the live one. This is the v2 format's reason to exist.
func TestRoundTripPreservesGaps(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 78, false)
	flaky := &flakyPinger{Service: svc, rng: rand.New(rand.NewSource(9)), failProb: 0.1}
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	camp := client.NewCampaign(flaky, svc.World().Projection(), pts)
	camp.RegisterAll(svc)

	mkDataset := func() *measure.Dataset {
		return measure.NewDataset(measure.Config{
			Profile: profile, Start: 0, End: 1800,
		}, len(pts))
	}
	live := mkDataset()
	camp.AddSink(live)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{City: profile.Name, Start: 0, Clients: pts})
	if err != nil {
		t.Fatal(err)
	}
	camp.AddSink(w)
	camp.RunSim(svc, 1800)
	live.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if camp.Errors == 0 || w.Gaps == 0 {
		t.Fatalf("campaign errors = %d, recorded gaps = %d; want both > 0", camp.Errors, w.Gaps)
	}
	if w.Gaps != camp.Errors {
		t.Errorf("recorded gaps = %d, campaign errors = %d", w.Gaps, camp.Errors)
	}

	replayed := mkDataset()
	if _, _, err := Replay(&buf, replayed); err != nil {
		t.Fatal(err)
	}
	replayed.Close()

	if replayed.Gaps != live.Gaps {
		t.Errorf("replayed gaps = %d, live = %d", replayed.Gaps, live.Gaps)
	}
	for i := range live.ClientGaps {
		if live.ClientGaps[i] != replayed.ClientGaps[i] {
			t.Fatalf("client %d gaps: live %d, replayed %d", i, live.ClientGaps[i], replayed.ClientGaps[i])
		}
	}
	// Gap-aware death detection must agree between live and replay: blind
	// misses suppressed identically.
	a, b := live.DeathSeries(core.UberX), replayed.DeathSeries(core.UberX)
	for i := range a.Values {
		if !eqNaN(a.Values[i], b.Values[i]) {
			t.Fatalf("deaths[%d]: live %v, replayed %v", i, a.Values[i], b.Values[i])
		}
	}
}
