package record

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/tsdb"
)

// synthRound feeds one synthetic ping round (with an optional gap for
// client gapIdx, -1 for none) into sinks the way a campaign would.
func synthRound(rng *rand.Rand, sinks []client.Sink, now int64, nClients, gapIdx int) {
	for c := 0; c < nClients; c++ {
		if c == gapIdx {
			for _, s := range sinks {
				if gs, ok := s.(client.GapSink); ok {
					gs.ObserveGap(c, geo.Point{}, now, errors.New("synthetic failure"))
				}
			}
			continue
		}
		resp := &core.PingResponse{Time: now}
		for p := 0; p < 2; p++ {
			ts := core.TypeStatus{
				Type:       core.VehicleType(p),
				TypeName:   core.VehicleType(p).String(),
				Surge:      1 + float64(rng.Intn(10))*0.1,
				EWTSeconds: float64(60 + rng.Intn(500)),
			}
			for k := 0; k < rng.Intn(5); k++ {
				ts.Cars = append(ts.Cars, core.CarView{
					ID:  fmt.Sprintf("car-%d-%d", c, k),
					Pos: geo.LatLng{Lat: 37.7 + rng.Float64()*0.1, Lng: -122.4 + rng.Float64()*0.1},
				})
			}
			resp.Types = append(resp.Types, ts)
		}
		for _, s := range sinks {
			s.Observe(c, geo.Point{}, resp)
		}
	}
	for _, s := range sinks {
		s.EndRound(now)
	}
}

// rowCollector records the exact observation stream a replay delivers.
type rowCollector struct {
	lines []string
}

func (rc *rowCollector) Observe(clientIdx int, pos geo.Point, resp *core.PingResponse) {
	line := fmt.Sprintf("obs c=%d t=%d", clientIdx, resp.Time)
	for _, ts := range resp.Types {
		line += fmt.Sprintf(" [%s s=%v e=%v", ts.TypeName, ts.Surge, ts.EWTSeconds)
		for _, car := range ts.Cars {
			line += fmt.Sprintf(" (%s %v %v)", car.ID, car.Pos.Lat, car.Pos.Lng)
		}
		line += "]"
	}
	rc.lines = append(rc.lines, line)
}

func (rc *rowCollector) ObserveGap(clientIdx int, pos geo.Point, lastSeen int64, err error) {
	rc.lines = append(rc.lines, fmt.Sprintf("gap c=%d t=%d err=%v", clientIdx, lastSeen, err))
}

func (rc *rowCollector) EndRound(now int64) {
	rc.lines = append(rc.lines, fmt.Sprintf("end t=%d", now))
}

// rounds splits a stream at its "end" lines, sorting each round's lines:
// within a round the delivery order is not part of the format contract
// (the gzip store appends buffered gap rows last, the tsdb store merges
// by series id), so equivalence is per-round set equality in round order.
func (rc *rowCollector) roundSets() [][]string {
	var out [][]string
	var cur []string
	for _, l := range rc.lines {
		cur = append(cur, l)
		if len(l) >= 3 && l[:3] == "end" {
			sort.Strings(cur)
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		sort.Strings(cur)
		out = append(out, cur)
	}
	return out
}

// dataLines returns a stream's observation and gap lines, without the
// round-boundary markers.
func dataLines(rc *rowCollector) []string {
	var out []string
	for _, l := range rc.lines {
		if len(l) < 3 || l[:3] != "end" {
			out = append(out, l)
		}
	}
	return out
}

func requireSameStream(t *testing.T, got, want *rowCollector) {
	t.Helper()
	g, w := got.roundSets(), want.roundSets()
	if len(g) != len(w) {
		t.Fatalf("stream has %d rounds, want %d", len(g), len(w))
	}
	for r := range w {
		if len(g[r]) != len(w[r]) {
			t.Fatalf("round %d has %d lines, want %d", r, len(g[r]), len(w[r]))
		}
		for i := range w[r] {
			if g[r][i] != w[r][i] {
				t.Fatalf("round %d diverges:\n got %s\nwant %s", r, g[r][i], w[r][i])
			}
		}
	}
}

// writeBothStores runs the same synthetic campaign into a gzip recording
// and a tsdb store, returning the recording bytes and the tsdb dir.
func writeBothStores(t *testing.T, rounds int) ([]byte, string, Header) {
	t.Helper()
	hdr := Header{City: "sf", Start: 0, Clients: make([]geo.Point, 4)}
	var buf bytes.Buffer
	jw, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "campaign.tsdb")
	tw, err := CreateTSDB(dir, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < rounds; i++ {
		gapIdx := -1
		if i%7 == 3 {
			gapIdx = i % 4
		}
		synthRound(rng, []client.Sink{jw, tw}, int64(5+i*5), 4, gapIdx)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	jr, jg := jw.Written()
	tr, tg := tw.Written()
	if jr == 0 || jg == 0 {
		t.Fatalf("jsonl wrote rows=%d gaps=%d; want both > 0", jr, jg)
	}
	if jr != tr || jg != tg {
		t.Fatalf("stores disagree: jsonl rows=%d gaps=%d, tsdb rows=%d gaps=%d", jr, jg, tr, tg)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), dir, hdr
}

// TestTSDBReplayMatchesJSONL is the store-equivalence pin: the exact
// observation stream (every value, every gap, every round boundary) must
// be identical whichever store served it.
func TestTSDBReplayMatchesJSONL(t *testing.T) {
	rec, dir, _ := writeBothStores(t, 40)

	var fromJSONL, fromTSDB rowCollector
	if _, _, err := Replay(bytes.NewReader(rec), &fromJSONL); err != nil {
		t.Fatal(err)
	}
	hdr, rounds, err := ReplayPath(dir, &fromTSDB)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.City != "sf" || len(hdr.Clients) != 4 {
		t.Fatalf("tsdb header = %+v", hdr)
	}
	if rounds != 40 {
		t.Fatalf("tsdb replay rounds = %d, want 40", rounds)
	}
	requireSameStream(t, &fromTSDB, &fromJSONL)
}

func TestReplayPathRangeMatchesAcrossStores(t *testing.T) {
	rec, dir, _ := writeBothStores(t, 40)
	from, to := int64(50), int64(120)

	var fromJSONL, fromTSDB rowCollector
	if _, _, err := ReplayRange(bytes.NewReader(rec), from, to, &fromJSONL); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayPathRange(dir, from, to, &fromTSDB); err != nil {
		t.Fatal(err)
	}
	if len(fromJSONL.lines) == 0 {
		t.Fatal("window selected nothing; widen the test range")
	}
	requireSameStream(t, &fromTSDB, &fromJSONL)
	// The window excludes rounds outside [from, to).
	var all rowCollector
	if _, _, err := ReplayPath(dir, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.lines) <= len(fromTSDB.lines) {
		t.Fatalf("window (%d lines) did not restrict the stream (%d lines)", len(fromTSDB.lines), len(all.lines))
	}
}

func TestReadHeaderPath(t *testing.T) {
	rec, dir, hdr := writeBothStores(t, 5)
	for _, src := range []struct {
		name string
		get  func() (Header, error)
	}{
		{"jsonl-reader", func() (Header, error) { return ReadHeader(bytes.NewReader(rec)) }},
		{"tsdb-path", func() (Header, error) { return ReadHeaderPath(dir) }},
	} {
		got, err := src.get()
		if err != nil {
			t.Fatalf("%s: %v", src.name, err)
		}
		if got.City != hdr.City || got.Version != Version || len(got.Clients) != len(hdr.Clients) {
			t.Fatalf("%s: header = %+v", src.name, got)
		}
	}
	// ReadHeaderPath also handles plain files.
	f := filepath.Join(t.TempDir(), "c.jsonl.gz")
	if err := os.WriteFile(f, rec, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadHeaderPath(f); err != nil || got.City != hdr.City {
		t.Fatalf("file path header: %+v, %v", got, err)
	}
}

// TestReplayTruncatedTail cuts a recording mid-stream: every complete row
// before the damage must be delivered, with ErrTruncated as the verdict.
func TestReplayTruncatedTail(t *testing.T) {
	rec, _, _ := writeBothStores(t, 40)

	var whole rowCollector
	if _, _, err := Replay(bytes.NewReader(rec), &whole); err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{len(rec) - 1, len(rec) * 3 / 4, len(rec) / 2} {
		var partial rowCollector
		hdr, rounds, err := Replay(bytes.NewReader(rec[:cut]), &partial)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrTruncated", cut, len(rec), err)
		}
		if hdr.City != "sf" {
			t.Fatalf("cut at %d: header lost: %+v", cut, hdr)
		}
		if rounds == 0 || len(partial.lines) == 0 {
			t.Fatalf("cut at %d: no partial data delivered (rounds=%d lines=%d)", cut, rounds, len(partial.lines))
		}
		// The partial data lines are a prefix of the full stream's. ("end"
		// lines are excluded: the truncated final round is closed early, and
		// cutting only the gzip trailer can still deliver every row.)
		pd, wd := dataLines(&partial), dataLines(&whole)
		if len(pd) > len(wd) {
			t.Fatalf("cut at %d: partial stream longer than whole (%d vs %d)", cut, len(pd), len(wd))
		}
		if cut <= len(rec)*3/4 && len(pd) >= len(wd) {
			t.Fatalf("cut at %d: partial stream not shorter (%d vs %d)", cut, len(pd), len(wd))
		}
		for i := range pd {
			if pd[i] != wd[i] {
				t.Fatalf("cut at %d: partial stream diverges at data line %d", cut, i)
			}
		}
	}
	// Truncating inside the header is a hard error, not ErrTruncated.
	if _, _, err := Replay(bytes.NewReader(rec[:4])); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("header truncation: err = %v", err)
	}
}

func TestConvertBothWays(t *testing.T) {
	rec, dir, _ := writeBothStores(t, 30)

	// gzip file → tsdb directory.
	tmp := t.TempDir()
	src := filepath.Join(tmp, "c.jsonl.gz")
	if err := os.WriteFile(src, rec, 0o644); err != nil {
		t.Fatal(err)
	}
	toTSDB := filepath.Join(tmp, "converted.tsdb")
	if _, rows, err := Convert(src, toTSDB, nil); err != nil || rows == 0 {
		t.Fatalf("convert to tsdb: rows=%d err=%v", rows, err)
	}
	// tsdb directory → gzip file.
	toJSONL := filepath.Join(tmp, "back.jsonl.gz")
	if _, rows, err := Convert(dir, toJSONL, nil); err != nil || rows == 0 {
		t.Fatalf("convert to jsonl: rows=%d err=%v", rows, err)
	}

	var want, viaTSDB, viaJSONL rowCollector
	if _, _, err := Replay(bytes.NewReader(rec), &want); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayPath(toTSDB, &viaTSDB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayPath(toJSONL, &viaJSONL); err != nil {
		t.Fatal(err)
	}
	requireSameStream(t, &viaTSDB, &want)
	requireSameStream(t, &viaJSONL, &want)
}

// TestTSDBWriterResumesAfterCrash abandons a tsdb store without closing
// it (the committed WAL is what a kill -9 leaves) and checks a replay
// sees every committed round, then resumes the campaign on reopen.
func TestTSDBWriterResumesAfterCrash(t *testing.T) {
	hdr := Header{City: "sf", Start: 0, Clients: make([]geo.Point, 3)}
	dir := filepath.Join(t.TempDir(), "crash.tsdb")
	w, err := CreateTSDB(dir, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		synthRound(rng, []client.Sink{w}, int64(5+i*5), 3, -1)
	}
	// No Close: the store on disk is exactly what a crash leaves behind.

	rep, err := tsdb.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALRows == 0 {
		t.Fatal("verify found no WAL rows to recover")
	}
	var got rowCollector
	if _, rounds, err := ReplayPath(dir, &got); err != nil || rounds != 10 {
		t.Fatalf("replay after crash: rounds=%d err=%v", rounds, err)
	}

	// Reopen WITHOUT closing w — a clean Close would seal the head and
	// leave nothing for recovery. The abandoned handles just leak until
	// the test ends, as a crashed process's would.
	w2, err := CreateTSDB(dir, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := w2.Written()
	if rows == 0 {
		t.Fatal("reopened writer does not count recovered rows")
	}
	synthRound(rng, []client.Sink{w2}, 5+10*5, 3, -1)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var resumed rowCollector
	if _, rounds, err := ReplayPath(dir, &resumed); err != nil || rounds != 11 {
		t.Fatalf("replay after resume: rounds=%d err=%v", rounds, err)
	}
}

func TestCreateRejectsUnknownKind(t *testing.T) {
	_, err := Create("parquet", filepath.Join(t.TempDir(), "x"), Header{}, nil)
	if err == nil {
		t.Fatal("unknown store kind accepted")
	}
}
