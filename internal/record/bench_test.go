package record

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// syntheticResponse builds a plausible ping response for throughput
// benchmarks (9 products, 8 cars each).
func syntheticResponse(t int64) *core.PingResponse {
	resp := &core.PingResponse{Time: t}
	for _, vt := range core.AllVehicleTypes() {
		ts := core.TypeStatus{Type: vt, TypeName: vt.String(), Surge: 1.3, EWTSeconds: 142}
		for c := 0; c < core.MaxVisibleCars; c++ {
			ts.Cars = append(ts.Cars, core.CarView{
				ID:  fmt.Sprintf("c%08x%08x", t, c),
				Pos: geo.LatLng{Lat: 40.75 + float64(c)*1e-4, Lng: -73.98},
			})
		}
		resp.Types = append(resp.Types, ts)
	}
	return resp
}

func BenchmarkRecordWrite(b *testing.B) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{City: "manhattan", Clients: make([]geo.Point, 43)})
	if err != nil {
		b.Fatal(err)
	}
	resp := syntheticResponse(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(i%43, geo.Point{}, resp)
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len())/float64(b.N), "bytes/row")
}

func BenchmarkRecordReplay(b *testing.B) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{City: "manhattan", Clients: make([]geo.Point, 43)})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 2000
	for i := 0; i < rows; i++ {
		w.Observe(i%43, geo.Point{}, syntheticResponse(int64(i/43)*5))
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Replay(bytes.NewReader(data), discardSink{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows, "rows/op")
}
