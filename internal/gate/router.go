package gate

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/geo"
)

// Routing errors.
var (
	// ErrOutOfRegion means no configured region contains the location:
	// the multi-city equivalent of api.ErrOutOfService, answered 404.
	ErrOutOfRegion = errors.New("gate: location outside every service region")
	// ErrRegionDown means the owning region (and its failover, if any)
	// has no eligible shard: answered 503 + Retry-After, never a
	// wrong-city answer.
	ErrRegionDown = errors.New("gate: region has no eligible shard")
)

// RegionSpec declares one city region the gateway routes for. The rect is
// in the region's own tangent-plane coordinates (meters around Origin),
// exactly as sim.CityProfile.Region is — so the gateway's in/out decision
// is bit-identical to the shard's own ErrOutOfService check and a request
// is never forwarded to a shard that would reject it as out of region.
type RegionSpec struct {
	Name   string
	Origin geo.LatLng
	Rect   geo.Rect
	// Failover optionally names the region whose shards serve this
	// region's traffic when every local shard is gone — an operator
	// decision (e.g. a warm standby running the same city's world), never
	// an implicit cross-city reroute.
	Failover string
}

// region is a RegionSpec bound to its projection and shard set.
type region struct {
	spec   RegionSpec
	proj   *geo.Projection
	shards []*Shard
}

// contains reports whether the location falls inside the region.
func (rg *region) contains(loc geo.LatLng) bool {
	return rg.spec.Rect.Contains(rg.proj.ToPlane(loc))
}

// Router maps a GPS location to a shard: first to the owning region by
// rectangle containment, then to one of the region's shards by rendezvous
// (highest-random-weight) hashing on the location's quantized cell.
//
// Rendezvous hashing gives the two properties the failover test pins:
// deterministic placement (the score depends only on shard name and cell,
// so the same GPS routes to the same shard across gateway restarts — no
// state to persist) and minimal disruption (when a shard dies, only its
// own cells move, each independently to its next-ranked survivor; when it
// returns, exactly those cells move back).
type Router struct {
	regions []*region
	byName  map[string]*region
}

// cellDegrees quantizes GPS for the routing key: ~0.002° ≈ 200 m cells,
// fine enough that one city splits across replicas, coarse enough that a
// measurement client pinging from a fixed spot never flaps between
// shards (and so keeps one shard's view of its session).
const cellDegrees = 0.002

// NewRouter builds the routing table. Every shard must reference a
// declared region; every failover target must exist.
func NewRouter(regions []RegionSpec, shards []*Shard) (*Router, error) {
	rt := &Router{byName: make(map[string]*region)}
	for _, spec := range regions {
		if spec.Name == "" {
			return nil, errors.New("gate: region needs a name")
		}
		if _, dup := rt.byName[spec.Name]; dup {
			return nil, fmt.Errorf("gate: duplicate region %q", spec.Name)
		}
		rg := &region{spec: spec, proj: geo.NewProjection(spec.Origin)}
		rt.regions = append(rt.regions, rg)
		rt.byName[spec.Name] = rg
	}
	for _, spec := range regions {
		if spec.Failover == "" {
			continue
		}
		if _, ok := rt.byName[spec.Failover]; !ok {
			return nil, fmt.Errorf("gate: region %q fails over to unknown region %q", spec.Name, spec.Failover)
		}
	}
	for _, s := range shards {
		rg, ok := rt.byName[s.Region]
		if !ok {
			return nil, fmt.Errorf("gate: shard %q references unknown region %q", s.Name, s.Region)
		}
		rg.shards = append(rg.shards, s)
	}
	return rt, nil
}

// Locate returns the region containing loc, or nil.
func (rt *Router) Locate(loc geo.LatLng) *region {
	for _, rg := range rt.regions {
		if rg.contains(loc) {
			return rg
		}
	}
	return nil
}

// Region returns a region's shards by name (metrics and tests).
func (rt *Router) Region(name string) []*Shard {
	if rg, ok := rt.byName[name]; ok {
		return rg.shards
	}
	return nil
}

// cellKey quantizes a location to its routing cell.
func cellKey(loc geo.LatLng) (int64, int64) {
	return int64(math.Floor(loc.Lat / cellDegrees)),
		int64(math.Floor(loc.Lng / cellDegrees))
}

// score is the rendezvous weight of shard name for a cell: a pure
// function of (name, cell), so the ranking is identical in every gateway
// process that ever runs.
func score(name string, cx, cy int64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [17]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(cx >> (8 * i))
		buf[8+i] = byte(cy >> (8 * i))
	}
	buf[16] = 0xA5 // domain separator from any future hash of the same fields
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// rank orders a region's shards by descending rendezvous score for loc,
// ties broken by name so the order is total and stable.
func (rg *region) rank(loc geo.LatLng) []*Shard {
	cx, cy := cellKey(loc)
	ranked := make([]*Shard, len(rg.shards))
	copy(ranked, rg.shards)
	scores := make(map[*Shard]uint64, len(ranked))
	for _, s := range ranked {
		scores[s] = score(s.Name, cx, cy)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i].Name < ranked[j].Name
	})
	return ranked
}

// Route is one routing decision.
type Route struct {
	// Shard is the chosen target. Its breaker Allow was consumed: the
	// caller must Report the forward's outcome.
	Shard *Shard
	// Primary is the rank-0 shard ignoring health — when Shard differs,
	// the request was rerouted around a failure.
	Primary *Shard
	// Region is the owning region's name (the failover target's name when
	// FailedOver).
	Region string
	// FailedOver marks a static cross-region failover.
	FailedOver bool
}

// Rerouted reports whether the request left its primary shard.
func (r Route) Rerouted() bool { return r.Shard != r.Primary || r.FailedOver }

// Pick chooses the shard for loc, skipping shards in exclude (callers
// pass the shard that just failed a forward so the retry goes elsewhere).
// The chosen shard's breaker Allow is consumed; the caller must Report.
// Errors: ErrOutOfRegion when no region contains loc; ErrRegionDown when
// the owning region and its failover have no eligible shard (the error
// still carries the region name via RouteError).
func (rt *Router) Pick(loc geo.LatLng, exclude ...*Shard) (Route, error) {
	rg := rt.Locate(loc)
	if rg == nil {
		return Route{}, ErrOutOfRegion
	}
	ranked := rg.rank(loc)
	var primary *Shard
	if len(ranked) > 0 {
		primary = ranked[0]
	}
	if s := pickEligible(ranked, exclude); s != nil {
		return Route{Shard: s, Primary: primary, Region: rg.spec.Name}, nil
	}
	if fo := rg.spec.Failover; fo != "" {
		forg := rt.byName[fo]
		if s := pickEligible(forg.rank(loc), exclude); s != nil {
			return Route{Shard: s, Primary: primary, Region: fo, FailedOver: true}, nil
		}
	}
	return Route{Region: rg.spec.Name}, &RouteError{Region: rg.spec.Name, Err: ErrRegionDown}
}

// pickEligible walks the ranking and returns the first shard that is
// alive, ready, not excluded, and whose breaker admits the request.
func pickEligible(ranked, exclude []*Shard) *Shard {
	for _, s := range ranked {
		if excluded(s, exclude) || !s.Eligible() {
			continue
		}
		if !s.breaker.Allow() {
			continue
		}
		return s
	}
	return nil
}

func excluded(s *Shard, exclude []*Shard) bool {
	for _, e := range exclude {
		if s == e {
			return true
		}
	}
	return false
}

// RouteError carries the region a routing failure applies to.
type RouteError struct {
	Region string
	Err    error
}

func (e *RouteError) Error() string { return fmt.Sprintf("%v (region %s)", e.Err, e.Region) }
func (e *RouteError) Unwrap() error { return e.Err }
