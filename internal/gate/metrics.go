package gate

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/obs"
)

// MetricsHandler serves the fan-in /metrics exposition: the gateway's own
// registry first, then every shard's /metrics scraped concurrently with
// each sample rewritten to carry a shard="name" label. The aggregation
// degrades to partial results — a dead or slow shard contributes a
// labeled absence comment (and gate_shard_up already reads 0) instead of
// blocking or failing the scrape. Shard TYPE/HELP comments are dropped:
// the same metric arrives from several shards and a strict parser would
// reject duplicate metadata; the series themselves stay grep- and
// PromQL-shaped.
func (g *Gateway) MetricsHandler() http.Handler {
	scrapeErrs := func(shard string) {
		g.cfg.Registry.Counter("gate_scrape_errors_total", obs.L("shard", shard)).Inc()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		type scrape struct {
			text string
			err  error
		}
		results := make([]scrape, len(g.shards))
		var wg sync.WaitGroup
		for i, s := range g.shards {
			wg.Add(1)
			go func(i int, s *Shard) {
				defer wg.Done()
				text, err := g.scrapeShard(r.Context(), s)
				results[i] = scrape{text: text, err: err}
			}(i, s)
		}
		wg.Wait()

		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.cfg.Registry.WritePrometheus(w)
		for i, s := range g.shards {
			if results[i].err != nil {
				scrapeErrs(s.Name)
				fmt.Fprintf(w, "# ubergate: shard %s metrics unavailable: %v\n", s.Name, results[i].err)
				continue
			}
			writeLabeled(w, results[i].text, `shard="`+s.Name+`"`)
		}
	})
}

// scrapeShard fetches one shard's exposition under the scrape budget.
func (g *Gateway) scrapeShard(ctx context.Context, s *Shard) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := g.cfg.HTTPClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	const maxExposition = 8 << 20 // a shard exposition is tens of KiB; 8 MiB is a hard stop
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxExposition))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// writeLabeled copies exposition text with label injected into every
// sample line, dropping comments.
func writeLabeled(w io.Writer, text, label string) {
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Fprintln(w, injectLabel(line, label))
	}
}

// injectLabel rewrites one Prometheus sample line to carry an extra
// label: `name{a="b"} v` → `name{LABEL,a="b"} v`, `name v` →
// `name{LABEL} v`. Lines that don't parse pass through unchanged.
func injectLabel(line, label string) string {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	switch {
	case brace >= 0 && (space < 0 || brace < space):
		return line[:brace+1] + label + "," + line[brace+1:]
	case space > 0:
		return line[:space] + "{" + label + "}" + line[space:]
	default:
		return line
	}
}
