package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/geo"
	"repro/internal/obs"
)

// Config parameterizes a Gateway.
type Config struct {
	// Regions declares the routable city regions.
	Regions []RegionSpec
	// Shards declares the backend shards (each referencing a region).
	Shards []ShardSpec

	// HealthInterval is the active probe period (default 500ms); a dead
	// shard is detected within FailThreshold (default 2) intervals.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe round (default HealthInterval).
	HealthTimeout time.Duration
	// FailThreshold is how many consecutive failed liveness probes mark a
	// shard down (default 2).
	FailThreshold int

	// ForwardTimeout bounds one proxied request, further clamped per
	// request by the caller's propagated deadline (default 5s).
	ForwardTimeout time.Duration
	// RetryAfter is advertised on 503 shed responses (default 1s).
	RetryAfter time.Duration
	// ScrapeTimeout bounds each shard's /metrics scrape in the fan-in
	// (default 2s); a slow or dead shard is labeled missing, never
	// blocks the exposition.
	ScrapeTimeout time.Duration

	// Breaker is the per-shard data-path circuit breaker policy; zero
	// fields default to Threshold 3, Cooldown 2×HealthInterval.
	Breaker chaos.BreakerConfig

	// Registry receives gateway metrics (private one when nil).
	Registry *obs.Registry
	// HTTPClient overrides the proxy/probe transport (httptest servers
	// pass theirs). The default pools enough idle connections per shard
	// to carry a loadgen fleet.
	HTTPClient *http.Client
}

func (c *Config) defaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthInterval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 2 * time.Second
	}
	if c.Breaker.Threshold <= 0 {
		c.Breaker.Threshold = 3
	}
	if c.Breaker.Cooldown <= 0 {
		c.Breaker.Cooldown = 2 * c.HealthInterval
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{
			Timeout: c.ForwardTimeout + time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
			},
		}
	}
}

// login is one remembered registration (client or partner), replayed into
// shards that recover or join after the account was created.
type login struct {
	path string
	body []byte
}

// Gateway fronts the shard fleet. Create with NewGateway, wire its
// handlers into a mux (or use Handler), call Start to begin health
// probing, Close to stop.
type Gateway struct {
	cfg    Config
	router *Router
	shards []*Shard
	ready  *api.Readiness

	mu     sync.Mutex
	logins map[string]login // key: path + client id

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mRequests  func(shard, class string) *obs.Counter
	mReroutes  *obs.Counter
	mFailovers *obs.Counter
	mSheds     func(region string) *obs.Counter
	mProxyErrs *obs.Counter
	mRelogins  *obs.Counter
	mReplays   *obs.Counter
}

// NewGateway validates cfg and builds the gateway (probing starts with
// Start). All shards begin down: the synchronous first probe round in
// Start brings the live ones up before the listener should open.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg.defaults()
	reg := cfg.Registry
	g := &Gateway{
		cfg:    cfg,
		logins: make(map[string]login),
		ready:  api.NewReadiness(),
	}
	for _, spec := range cfg.Shards {
		if err := spec.validate(); err != nil {
			return nil, err
		}
		s := &Shard{
			ShardSpec: spec,
			breaker:   chaos.NewBreaker(cfg.Breaker),
			onUp:      g.replayLogins,
			mUp:       reg.Gauge("gate_shard_up", obs.L("shard", spec.Name)),
			mReady:    reg.Gauge("gate_shard_ready", obs.L("shard", spec.Name)),
			mDown:     reg.Counter("gate_shard_down_total", obs.L("shard", spec.Name)),
		}
		g.shards = append(g.shards, s)
	}
	if len(g.shards) == 0 {
		return nil, errors.New("gate: no shards configured")
	}
	router, err := NewRouter(cfg.Regions, g.shards)
	if err != nil {
		return nil, err
	}
	g.router = router
	g.ready.AddCheck("shards", g.AnyEligible)

	g.mRequests = func(shard, class string) *obs.Counter {
		return reg.Counter("gate_requests_total", obs.L("shard", shard), obs.L("class", class))
	}
	g.mReroutes = reg.Counter("gate_reroutes_total")
	g.mFailovers = reg.Counter("gate_failovers_total")
	g.mSheds = func(region string) *obs.Counter {
		return reg.Counter("gate_shed_total", obs.L("region", region))
	}
	g.mProxyErrs = reg.Counter("gate_proxy_errors_total")
	g.mRelogins = reg.Counter("gate_relogins_total")
	g.mReplays = reg.Counter("gate_login_replays_total")
	return g, nil
}

// Start runs one synchronous probe round (so the routing table reflects
// reality before the first request) and then launches the per-shard
// health-check loops.
func (g *Gateway) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	g.cancel = cancel
	var first sync.WaitGroup
	for _, s := range g.shards {
		first.Add(1)
		go func(s *Shard) {
			defer first.Done()
			alive, ready := s.probeOnce(ctx, g.cfg.HTTPClient, g.cfg.HealthTimeout)
			s.setAlive(alive)
			s.setReady(alive && ready)
		}(s)
	}
	first.Wait()
	for _, s := range g.shards {
		g.wg.Add(1)
		go func(s *Shard) {
			defer g.wg.Done()
			s.probeLoop(ctx, g.cfg.HTTPClient, g.cfg.HealthInterval, g.cfg.HealthTimeout, g.cfg.FailThreshold)
		}(s)
	}
}

// Close stops the health-check loops.
func (g *Gateway) Close() {
	if g.cancel != nil {
		g.cancel()
	}
	g.wg.Wait()
}

// AnyEligible reports whether at least one shard can take traffic — the
// gateway's own readiness condition.
func (g *Gateway) AnyEligible() bool {
	for _, s := range g.shards {
		if s.Eligible() {
			return true
		}
	}
	return false
}

// Shards exposes the shard fleet (tests, status pages).
func (g *Gateway) Shards() []*Shard { return g.shards }

// Router exposes the routing table (tests).
func (g *Gateway) Router() *Router { return g.router }

// Readiness exposes the gateway's readiness state machine so the daemon
// can add its own checks and flip draining on shutdown.
func (g *Gateway) Readiness() *api.Readiness { return g.ready }

// APIHandler returns the forwarding surface: every endpoint uberd serves,
// routed by GPS (GETs) or broadcast (logins). Mount it at / — and wrap it
// in whatever chaos middleware the deployment wants; the health and
// metrics handlers stay outside so the gateway remains observable while
// being tortured.
func (g *Gateway) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /login", g.handleLogin("/login", "client_id"))
	mux.HandleFunc("POST /partner/login", g.handleLogin("/partner/login", "driver_id"))
	mux.HandleFunc("GET /pingClient", g.handleRouted)
	mux.HandleFunc("GET /estimates/price", g.handleRouted)
	mux.HandleFunc("GET /estimates/time", g.handleRouted)
	mux.HandleFunc("GET /partner/surgeMap", g.handleSurgeMap)
	mux.HandleFunc("GET /health", g.handleHealth)
	return mux
}

// Handler assembles the full gateway mux: the API surface at /, the
// fan-in /metrics, and the gateway's own /healthz + /readyz (cmd/ubergate
// builds its own mux so it can wrap only the API surface in chaos
// middleware; tests use this one).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", g.APIHandler())
	mux.Handle("GET /metrics", g.MetricsHandler())
	mux.Handle("GET /healthz", api.Healthz(nil))
	mux.Handle("GET /readyz", g.ready.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// shed answers 503 + Retry-After for a region with no eligible shard.
func (g *Gateway) shed(w http.ResponseWriter, region string) {
	g.mSheds(region).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(max(1, int(g.cfg.RetryAfter/time.Second))))
	writeJSON(w, http.StatusServiceUnavailable,
		map[string]string{"error": fmt.Sprintf("region %s temporarily unavailable", region)})
}

// queryLoc extracts and validates the lat/lng of a routed GET.
func queryLoc(r *http.Request) (geo.LatLng, error) {
	q := r.URL.Query()
	lat, err := strconv.ParseFloat(q.Get("lat"), 64)
	if err != nil || math.IsNaN(lat) || math.IsInf(lat, 0) {
		return geo.LatLng{}, errors.New("lat parameter invalid")
	}
	lng, err := strconv.ParseFloat(q.Get("lng"), 64)
	if err != nil || math.IsNaN(lng) || math.IsInf(lng, 0) {
		return geo.LatLng{}, errors.New("lng parameter invalid")
	}
	return geo.LatLng{Lat: lat, Lng: lng}, nil
}

// handleRouted proxies a GPS-keyed GET to its shard: route, forward,
// reroute once around a transport failure, re-login once on a 401 from a
// shard that lost the account (a recovered shard with an empty table),
// and shed with 503 + Retry-After when the region is down.
func (g *Gateway) handleRouted(w http.ResponseWriter, r *http.Request) {
	loc, err := queryLoc(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	g.routeAndForward(w, r, loc)
}

// handleSurgeMap routes the partner surge map, which carries no GPS of
// its own: by lat/lng when the caller supplies them, else by explicit
// region= parameter, else — with exactly one region configured — to it.
func (g *Gateway) handleSurgeMap(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("lat") != "" || q.Get("lng") != "" {
		g.handleRouted(w, r)
		return
	}
	name := q.Get("region")
	if name == "" && len(g.router.regions) == 1 {
		name = g.router.regions[0].spec.Name
	}
	rg, ok := g.router.byName[name]
	if !ok {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "region parameter required (or lat/lng)"})
		return
	}
	// Route at the region's origin: a deterministic representative cell.
	g.routeAndForward(w, r, rg.spec.Origin)
}

// routeAndForward runs the full pick → forward → reroute/relogin ladder.
func (g *Gateway) routeAndForward(w http.ResponseWriter, r *http.Request, loc geo.LatLng) {
	route, err := g.router.Pick(loc)
	if err != nil {
		g.routeFail(w, err)
		return
	}
	g.countRoute(route)
	resp, err := g.do(route.Shard, r)
	if err != nil {
		// Transport failure: the shard never answered. Reroute once to
		// the next-ranked eligible shard; GETs are idempotent.
		g.mProxyErrs.Inc()
		retry, rerr := g.router.Pick(loc, route.Shard)
		if rerr != nil {
			g.routeFail(w, rerr)
			return
		}
		g.countRoute(retry)
		resp, err = g.do(retry.Shard, r)
		if err != nil {
			g.mProxyErrs.Inc()
			g.shed(w, retry.Region)
			return
		}
		route = retry
	}
	if resp.StatusCode == http.StatusUnauthorized {
		if resp2, ok := g.relogin(route.Shard, r); ok {
			resp.Body.Close()
			resp = resp2
		}
	}
	g.relay(w, route, resp)
}

// routeFail translates a routing error into the client-facing response.
func (g *Gateway) routeFail(w http.ResponseWriter, err error) {
	var re *RouteError
	if errors.As(err, &re) {
		g.shed(w, re.Region)
		return
	}
	// Out of every region: same shape and status as api.ErrOutOfService,
	// so clients cannot tell a gateway edge from a shard edge.
	writeJSON(w, http.StatusNotFound, map[string]string{"error": api.ErrOutOfService.Error()})
}

// countRoute bumps the reroute/failover counters for a pick.
func (g *Gateway) countRoute(route Route) {
	if route.FailedOver {
		g.mFailovers.Inc()
	} else if route.Rerouted() {
		g.mReroutes.Inc()
	}
}

// do forwards r to the shard with the remaining deadline propagated, and
// reports the outcome to the shard's breaker (any HTTP answer below 500
// proves the shard alive; transport errors and 5xx count as failures).
func (g *Gateway) do(s *Shard, r *http.Request) (*http.Response, error) {
	budget := g.cfg.ForwardTimeout
	if dl, ok := r.Context().Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	if hd := chaos.EffectiveTimeout(r, 0); hd > 0 && hd < budget {
		budget = hd
	}
	if budget <= 0 {
		return nil, context.DeadlineExceeded
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	req, err := http.NewRequestWithContext(ctx, r.Method, s.BaseURL+r.URL.RequestURI(), nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.Header.Set(chaos.DeadlineHeader, strconv.FormatInt(budget.Milliseconds(), 10))
	resp, err := g.cfg.HTTPClient.Do(req)
	if err != nil {
		cancel()
		s.breaker.Report(false)
		return nil, err
	}
	// Hand the cancel to the response body: relay closes it after copying.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	s.breaker.Report(resp.StatusCode < 500)
	return resp, nil
}

// cancelBody releases the forward's context when the relayed body closes.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// relay copies a shard response to the client, labeling which shard
// served it.
func (g *Gateway) relay(w http.ResponseWriter, route Route, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Ubergate-Shard", route.Shard.Name)
	if route.FailedOver {
		w.Header().Set("X-Ubergate-Failover", route.Region)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	g.mRequests(route.Shard.Name, statusClass(resp.StatusCode)).Inc()
}

func statusClass(code int) string {
	return strconv.Itoa(code/100) + "xx"
}

// relogin replays a remembered registration into a shard that answered
// 401 (it lost its account table — a restart or failover replacement) and
// retries the original request once.
func (g *Gateway) relogin(s *Shard, r *http.Request) (*http.Response, bool) {
	client := r.URL.Query().Get("client")
	if client == "" {
		client = r.URL.Query().Get("driver")
	}
	g.mu.Lock()
	l, ok := g.logins["/login\x00"+client]
	if !ok {
		l, ok = g.logins["/partner/login\x00"+client]
	}
	g.mu.Unlock()
	if !ok {
		return nil, false
	}
	if !g.postLogin(context.Background(), s, l) {
		return nil, false
	}
	g.mRelogins.Inc()
	resp, err := g.do(s, r)
	if err != nil {
		return nil, false
	}
	return resp, true
}

// handleLogin broadcasts a registration to every currently eligible
// shard and remembers it for replay into shards that recover later. One
// acknowledging shard is enough to answer 200: the account exists
// somewhere, and the replay/relogin paths heal the rest — refusing the
// login because one replica is mid-crash would fail work the fleet can
// absorb.
func (g *Gateway) handleLogin(path, idField string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<10))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unreadable body"})
			return
		}
		var fields map[string]any
		var id string
		if err := json.Unmarshal(body, &fields); err == nil {
			id, _ = fields[idField].(string)
		}
		if id == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": idField + " required"})
			return
		}
		l := login{path: path, body: body}
		g.mu.Lock()
		g.logins[path+"\x00"+id] = l
		g.mu.Unlock()

		acks := 0
		for _, s := range g.shards {
			if !s.Eligible() {
				continue
			}
			if g.postLogin(r.Context(), s, l) {
				acks++
			}
		}
		if acks == 0 {
			w.Header().Set("Retry-After", strconv.Itoa(max(1, int(g.cfg.RetryAfter/time.Second))))
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "no shard accepted the registration"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}
}

// postLogin posts one remembered registration to one shard.
func (g *Gateway) postLogin(ctx context.Context, s *Shard, l login) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.BaseURL+l.path, bytes.NewReader(l.body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.cfg.HTTPClient.Do(req)
	if err != nil {
		s.breaker.Report(false)
		return false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}()
	s.breaker.Report(resp.StatusCode < 500)
	return resp.StatusCode == http.StatusOK
}

// replayLogins pushes every remembered registration into a shard that
// just became ready, so accounts created while it was down (or before it
// joined) exist there before any query is routed to it.
func (g *Gateway) replayLogins(s *Shard) {
	g.mu.Lock()
	all := make([]login, 0, len(g.logins))
	for _, l := range g.logins {
		all = append(all, l)
	}
	g.mu.Unlock()
	if len(all) == 0 {
		return
	}
	go func() {
		for _, l := range all {
			if g.postLogin(context.Background(), s, l) {
				g.mReplays.Inc()
			}
		}
	}()
}

// handleHealth answers /health with the maximum simulation time across
// eligible shards — each shard runs its own world, and the campaign
// client only needs a monotone clock — or 503 when no shard is eligible.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	best, any := int64(0), false
	for _, s := range g.shards {
		if !s.Eligible() {
			continue
		}
		any = true
		if t := s.SimTime(); t > best {
			best = t
		}
	}
	if !any {
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int(g.cfg.RetryAfter/time.Second))))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no shard eligible"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"time": best})
}
