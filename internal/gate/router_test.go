package gate

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sim"
)

// regionSpec builds a RegionSpec from a city profile, exactly as
// cmd/ubergate does.
func regionSpec(p *sim.CityProfile) RegionSpec {
	return RegionSpec{Name: p.Name, Origin: p.Origin, Rect: p.Region}
}

// testShard builds an eligible shard without a gateway (router-only
// tests): health bits set directly, metrics on a throwaway registry.
func testShard(name, region string) *Shard {
	reg := obs.NewRegistry()
	s := &Shard{
		ShardSpec: ShardSpec{Name: name, Region: region, BaseURL: "http://" + name},
		breaker:   chaos.NewBreaker(chaos.BreakerConfig{Threshold: 3}),
		mUp:       reg.Gauge("gate_shard_up"),
		mReady:    reg.Gauge("gate_shard_ready"),
		mDown:     reg.Counter("gate_shard_down_total"),
	}
	s.setAlive(true)
	s.setReady(true)
	return s
}

// grid yields locations spread across a city's region.
func grid(p *sim.CityProfile, n int) []geo.LatLng {
	proj := geo.NewProjection(p.Origin)
	var locs []geo.LatLng
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			locs = append(locs, proj.ToLatLng(geo.Point{
				X: p.Region.Min.X + p.Region.Width()*(float64(i)+0.5)/float64(n),
				Y: p.Region.Min.Y + p.Region.Height()*(float64(j)+0.5)/float64(n),
			}))
		}
	}
	return locs
}

func TestRouterDeterministicAcrossInstances(t *testing.T) {
	mh := sim.Manhattan()
	build := func() *Router {
		shards := []*Shard{
			testShard("manhattan-0", mh.Name),
			testShard("manhattan-1", mh.Name),
			testShard("manhattan-2", mh.Name),
		}
		rt, err := NewRouter([]RegionSpec{regionSpec(mh)}, shards)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	// Two independent routers (fresh shard structs, as after a gateway
	// restart) must agree on every placement: the score is a pure function
	// of shard name and GPS cell.
	a, b := build(), build()
	for _, loc := range grid(mh, 12) {
		ra, erra := a.Pick(loc)
		rb, errb := b.Pick(loc)
		if erra != nil || errb != nil {
			t.Fatalf("pick at %v: %v / %v", loc, erra, errb)
		}
		if ra.Shard.Name != rb.Shard.Name {
			t.Fatalf("restart changed placement at %v: %s vs %s", loc, ra.Shard.Name, rb.Shard.Name)
		}
		if ra.Rerouted() {
			t.Fatalf("healthy fleet rerouted at %v", loc)
		}
	}
}

func TestRouterSpreadsCells(t *testing.T) {
	mh := sim.Manhattan()
	shards := []*Shard{
		testShard("manhattan-0", mh.Name),
		testShard("manhattan-1", mh.Name),
		testShard("manhattan-2", mh.Name),
	}
	rt, err := NewRouter([]RegionSpec{regionSpec(mh)}, shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	locs := grid(mh, 16)
	for _, loc := range locs {
		r, err := rt.Pick(loc)
		if err != nil {
			t.Fatal(err)
		}
		counts[r.Shard.Name]++
	}
	// Rendezvous over 3 replicas should give each a meaningful share; an
	// off-by-one in the cell key or hash would funnel everything to one.
	for _, s := range shards {
		if got := counts[s.Name]; got < len(locs)/10 {
			t.Errorf("shard %s owns %d/%d cells, want >= %d", s.Name, got, len(locs), len(locs)/10)
		}
	}
}

func TestRouterMinimalDisruptionOnShardDeath(t *testing.T) {
	mh := sim.Manhattan()
	shards := []*Shard{
		testShard("manhattan-0", mh.Name),
		testShard("manhattan-1", mh.Name),
		testShard("manhattan-2", mh.Name),
	}
	rt, err := NewRouter([]RegionSpec{regionSpec(mh)}, shards)
	if err != nil {
		t.Fatal(err)
	}
	locs := grid(mh, 12)
	before := make([]string, len(locs))
	for i, loc := range locs {
		r, err := rt.Pick(loc)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = r.Shard.Name
	}
	shards[1].setReady(false) // manhattan-1 drains
	moved := 0
	for i, loc := range locs {
		r, err := rt.Pick(loc)
		if err != nil {
			t.Fatal(err)
		}
		if before[i] == "manhattan-1" {
			moved++
			if !r.Rerouted() {
				t.Errorf("cell that lost its shard not marked rerouted at %v", loc)
			}
			if r.Shard.Name == "manhattan-1" {
				t.Errorf("picked the drained shard at %v", loc)
			}
		} else if r.Shard.Name != before[i] {
			t.Errorf("cell at %v moved %s -> %s though its shard survived", loc, before[i], r.Shard.Name)
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: manhattan-1 owned no cells")
	}
	// Recovery moves exactly those cells back.
	shards[1].setReady(true)
	for i, loc := range locs {
		r, err := rt.Pick(loc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Shard.Name != before[i] {
			t.Errorf("cell at %v did not return home after recovery: %s vs %s", loc, r.Shard.Name, before[i])
		}
	}
}

func TestRouterExcludeRoutesElsewhere(t *testing.T) {
	mh := sim.Manhattan()
	shards := []*Shard{testShard("manhattan-0", mh.Name), testShard("manhattan-1", mh.Name)}
	rt, err := NewRouter([]RegionSpec{regionSpec(mh)}, shards)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.Pick(mh.Origin)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rt.Pick(mh.Origin, r.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Shard == r.Shard {
		t.Fatalf("exclusion ignored: got %s twice", r.Shard.Name)
	}
	if !r2.Rerouted() {
		t.Error("excluded pick not marked rerouted")
	}
}

func TestRouterRegionDownAndFailover(t *testing.T) {
	mh, sf := sim.Manhattan(), sim.SanFrancisco()
	sfShard := testShard("sf-0", sf.Name)
	mhShard := testShard("manhattan-0", mh.Name)
	sfSpec := regionSpec(sf)
	sfSpec.Failover = mh.Name
	rt, err := NewRouter([]RegionSpec{regionSpec(mh), sfSpec}, []*Shard{mhShard, sfShard})
	if err != nil {
		t.Fatal(err)
	}

	sfShard.setAlive(false)
	r, err := rt.Pick(sf.Origin)
	if err != nil {
		t.Fatalf("failover pick: %v", err)
	}
	if !r.FailedOver || r.Shard != mhShard || r.Region != mh.Name {
		t.Fatalf("expected failover to manhattan, got %+v", r)
	}

	// Without a failover target the region is down, and the error names it.
	rt2, err := NewRouter([]RegionSpec{regionSpec(mh), regionSpec(sf)}, []*Shard{mhShard, sfShard})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt2.Pick(sf.Origin)
	var re *RouteError
	if !errors.As(err, &re) || re.Region != sf.Name {
		t.Fatalf("want RouteError for %s, got %v", sf.Name, err)
	}

	// Outside every region.
	if _, err := rt2.Pick(geo.LatLng{}); err != ErrOutOfRegion {
		t.Fatalf("want ErrOutOfRegion, got %v", err)
	}
}

func TestRouterRejectsBadConfig(t *testing.T) {
	mh := sim.Manhattan()
	cases := []struct {
		name    string
		regions []RegionSpec
		shards  []*Shard
	}{
		{"dup region", []RegionSpec{regionSpec(mh), regionSpec(mh)}, nil},
		{"unknown failover", []RegionSpec{{Name: "x", Origin: mh.Origin, Rect: mh.Region, Failover: "nope"}}, nil},
		{"unknown shard region", []RegionSpec{regionSpec(mh)}, []*Shard{testShard("s", "nope")}},
	}
	for _, tc := range cases {
		if _, err := NewRouter(tc.regions, tc.shards); err == nil {
			t.Errorf("%s: NewRouter accepted invalid config", tc.name)
		}
	}
}

func TestScoreIsStable(t *testing.T) {
	// Pin a few hash values: if the routing function ever changes, every
	// deployed gateway would re-shard the world on upgrade — that must be a
	// deliberate, reviewed decision, not an accident.
	got := fmt.Sprintf("%x %x %x", score("sf-0", 0, 0), score("sf-0", 1, 0), score("manhattan-1", 0, 0))
	const want = "3ca64d61becc9f14 edce0b6951f2b907 eb774831330809bc"
	if got != want {
		t.Fatalf("routing hash changed: got %s, want %s", got, want)
	}
}
