// Package gate is the multi-city shard gateway: it fronts N uberd shards
// (each owning one city world, surge engine, and bus) and routes requests
// by GPS to the shard responsible for that region, with robustness as the
// design center — active health checks against each shard's /healthz and
// /readyz, per-shard circuit breakers on the data path, deterministic
// rendezvous rerouting inside a region when a replica dies, and graceful
// degradation (503 + Retry-After, never a wrong-city answer) when a whole
// region is down.
//
// The paper measured Uber as one logical service spanning SF and
// Manhattan through fleets of imperfect clients, and its methodology had
// to survive losing ~2.5% of samples without fabricating supply collapse.
// This package is the server-side counterpart of that discipline: the
// measurement plane keeps serving, labels what is missing, and sheds
// exactly the traffic it cannot answer correctly.
package gate

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// ShardSpec declares one backend shard to the gateway.
type ShardSpec struct {
	// Name uniquely identifies the shard in metrics, logs, and the
	// X-Ubergate-Shard response header (e.g. "sf-0").
	Name string
	// Region names the RegionSpec whose traffic this shard serves.
	Region string
	// BaseURL is the shard's HTTP base, e.g. "http://127.0.0.1:18081".
	BaseURL string
}

// Shard is a backend shard plus the gateway's view of its health. The
// prober goroutine writes the state; the routing hot path only reads
// atomics.
//
// Health is two independent bits. alive is liveness: /healthz answered
// recently (flips down only after FailThreshold consecutive probe
// failures, so one dropped packet doesn't evict a shard; flips up on the
// first success). ready is readiness: the shard's own /readyz verdict,
// applied immediately in both directions — a draining shard must leave
// the routing table on the very next probe, not after a threshold. The
// data-path breaker is the third, faster signal: transport errors and
// 5xx responses open it between probes, so a shard that dies mid-interval
// stops receiving traffic before the prober notices.
type Shard struct {
	ShardSpec

	breaker *chaos.Breaker

	alive   atomic.Bool
	ready   atomic.Bool
	simTime atomic.Int64 // last simulation time /healthz reported

	// onUp, when set, fires on every not-ready→ready transition (the
	// gateway replays known logins into the recovered shard).
	onUp func(*Shard)

	mUp    *obs.Gauge   // 1 while alive
	mReady *obs.Gauge   // 1 while ready
	mDown  *obs.Counter // transitions alive→down
}

// Alive reports the liveness probe state.
func (s *Shard) Alive() bool { return s.alive.Load() }

// Ready reports the readiness probe state.
func (s *Shard) Ready() bool { return s.ready.Load() }

// Eligible reports whether the routing table may offer this shard:
// alive, ready, and not currently rejected by its breaker. It does not
// consume a breaker probe slot (that happens when the shard is chosen).
func (s *Shard) Eligible() bool {
	return s.alive.Load() && s.ready.Load()
}

// SimTime returns the shard's last reported simulation time.
func (s *Shard) SimTime() int64 { return s.simTime.Load() }

// setAlive records a liveness transition.
func (s *Shard) setAlive(v bool) {
	if s.alive.Swap(v) == v {
		return
	}
	if v {
		s.mUp.Set(1)
	} else {
		s.mUp.Set(0)
		s.mDown.Inc()
	}
}

// setReady records a readiness transition, firing onUp on recovery.
func (s *Shard) setReady(v bool) {
	if s.ready.Swap(v) == v {
		return
	}
	if v {
		s.mReady.Set(1)
		if s.onUp != nil {
			s.onUp(s)
		}
	} else {
		s.mReady.Set(0)
	}
}

// probeOnce runs one health-check round against the shard: liveness via
// /healthz (parsing the reported sim time), then readiness via /readyz.
// A shard that is not alive is never ready.
func (s *Shard) probeOnce(ctx context.Context, hc *http.Client, timeout time.Duration) (alive, ready bool) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var health struct {
		Time int64 `json:"time"`
	}
	if !probeGet(pctx, hc, s.BaseURL+"/healthz", &health) {
		return false, false
	}
	s.simTime.Store(health.Time)
	return true, probeGet(pctx, hc, s.BaseURL+"/readyz", nil)
}

// probeGet fetches url and reports 2xx, decoding the body into out when
// non-nil. Any transport error or non-2xx status is a failed probe.
func probeGet(ctx context.Context, hc *http.Client, url string, out any) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return false
	}
	if out != nil {
		// Probe bodies are one-line JSON; a garbled body is a failed probe.
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false
		}
	}
	return true
}

// probeLoop is the per-shard health checker: an immediate probe, then one
// per interval until ctx ends. failThreshold consecutive liveness
// failures mark the shard down; one success marks it back up. Readiness
// follows the probe verdict immediately in both directions.
func (s *Shard) probeLoop(ctx context.Context, hc *http.Client, interval, timeout time.Duration, failThreshold int) {
	fails := 0
	apply := func() {
		alive, ready := s.probeOnce(ctx, hc, timeout)
		if alive {
			fails = 0
			s.setAlive(true)
		} else {
			fails++
			if fails >= failThreshold {
				s.setAlive(false)
			}
		}
		s.setReady(alive && ready)
	}
	apply()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			apply()
		}
	}
}

// validate checks a spec before the gateway accepts it.
func (sp ShardSpec) validate() error {
	if sp.Name == "" || sp.Region == "" || sp.BaseURL == "" {
		return fmt.Errorf("gate: shard spec needs name, region, and base URL (got %+v)", sp)
	}
	return nil
}
