package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/geo"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/sim"
)

// backendServer runs a warm city backend behind an httptest server, the
// way a real uberd shard looks to the gateway (API + /healthz + /readyz).
func backendServer(t *testing.T, profile *sim.CityProfile, seed int64, opts ...api.ServerOption) *httptest.Server {
	t.Helper()
	svc := api.NewBackend(profile, seed, false)
	svc.RunUntil(600)
	ts := httptest.NewServer(api.NewServer(svc, opts...))
	t.Cleanup(ts.Close)
	return ts
}

// startGateway assembles and starts a gateway over the given shards with
// test-speed health checking.
func startGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 25 * time.Millisecond
	}
	if cfg.HealthTimeout == 0 {
		// Probes against a live httptest backend can exceed the short test
		// intervals under -race; a dead shard still fails instantly
		// (connection refused), so this doesn't slow detection.
		cfg.HealthTimeout = time.Second
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Close)
	return g
}

// registerVia posts a client registration through the gateway.
func registerVia(t *testing.T, gwURL, clientID string) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"client_id": clientID})
	resp, err := http.Post(gwURL+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login via gateway: status %d", resp.StatusCode)
	}
}

func getShardHeader(t *testing.T, gwURL, clientID string, loc geo.LatLng) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/estimates/price?client=%s&lat=%f&lng=%f",
		gwURL, clientID, loc.Lat, loc.Lng))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Ubergate-Shard")
}

func TestGatewayRoutesByGPSAcrossCities(t *testing.T) {
	mh, sf := sim.Manhattan(), sim.SanFrancisco()
	tsMH := backendServer(t, mh, 1)
	tsSF := backendServer(t, sf, 2)
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh), regionSpec(sf)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsMH.URL},
			{Name: "sf-0", Region: sf.Name, BaseURL: tsSF.URL},
		},
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	registerVia(t, gw.URL, "c1")

	// Same client, two cities: each query lands on the shard owning that
	// city, and the response says which.
	if code, shard := getShardHeader(t, gw.URL, "c1", mh.Origin); code != 200 || shard != "manhattan-0" {
		t.Fatalf("manhattan query: code %d via %q", code, shard)
	}
	if code, shard := getShardHeader(t, gw.URL, "c1", sf.Origin); code != 200 || shard != "sf-0" {
		t.Fatalf("sf query: code %d via %q", code, shard)
	}

	// The full client library works through the gateway end to end.
	remote := api.NewRemote(gw.URL, nil)
	ping, err := remote.PingClient("c1", mh.Origin)
	if err != nil {
		t.Fatalf("ping via gateway: %v", err)
	}
	if ping.Time != 600 {
		t.Errorf("ping time = %d, want 600", ping.Time)
	}
	if now := remote.Now(); now != 600 {
		t.Errorf("gateway /health time = %d, want 600", now)
	}

	// Outside both cities: the 404 is indistinguishable from a shard's own
	// out-of-service answer.
	if code, _ := getShardHeader(t, gw.URL, "c1", geo.LatLng{}); code != http.StatusNotFound {
		t.Errorf("out-of-region code = %d, want 404", code)
	}
}

func TestGatewayPlacementSurvivesRestart(t *testing.T) {
	mh := sim.Manhattan()
	tsA := backendServer(t, mh, 1)
	tsB := backendServer(t, mh, 1)
	cfg := func() Config {
		return Config{
			Regions: []RegionSpec{regionSpec(mh)},
			Shards: []ShardSpec{
				{Name: "manhattan-0", Region: mh.Name, BaseURL: tsA.URL},
				{Name: "manhattan-1", Region: mh.Name, BaseURL: tsB.URL},
			},
		}
	}
	locs := grid(mh, 6)

	run := func() []string {
		g := startGateway(t, cfg())
		gw := httptest.NewServer(g.Handler())
		defer gw.Close()
		registerVia(t, gw.URL, "c1")
		placement := make([]string, len(locs))
		for i, loc := range locs {
			code, shard := getShardHeader(t, gw.URL, "c1", loc)
			if code != 200 {
				t.Fatalf("query %d: code %d", i, code)
			}
			placement[i] = shard
		}
		return placement
	}
	first := run()
	second := run() // a brand-new gateway process, same shard fleet
	for i := range locs {
		if first[i] != second[i] {
			t.Fatalf("restart moved cell %d: %s -> %s", i, first[i], second[i])
		}
	}
}

// TestGatewayKillShardMidCampaign is the headline robustness scenario:
// three shards serve two cities, a multi-city loadgen fleet runs, and one
// city's only shard is killed mid-run. The gateway must detect the death
// within a couple of health-check intervals, shed that region with
// 503 + Retry-After, and keep the other city's error rate at exactly zero.
func TestGatewayKillShardMidCampaign(t *testing.T) {
	mh, sf := sim.Manhattan(), sim.SanFrancisco()
	tsMH0 := backendServer(t, mh, 1)
	tsMH1 := backendServer(t, mh, 2)
	tsSF := backendServer(t, sf, 3)

	const interval = 50 * time.Millisecond
	reg := obs.NewRegistry()
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh), regionSpec(sf)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsMH0.URL},
			{Name: "manhattan-1", Region: mh.Name, BaseURL: tsMH1.URL},
			{Name: "sf-0", Region: sf.Name, BaseURL: tsSF.URL},
		},
		HealthInterval: interval,
		FailThreshold:  2,
		Registry:       reg,
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	reportCh := make(chan *loadgen.Report, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:  gw.URL,
			Clients:  6,
			Duration: 1500 * time.Millisecond,
			Cities:   map[string]geo.LatLng{mh.Name: mh.Origin, sf.Name: sf.Origin},
		})
		if err != nil {
			errCh <- err
			return
		}
		reportCh <- rep
	}()

	// Kill SF's only shard mid-campaign, abruptly (in-flight connections
	// die too, like kill -9).
	time.Sleep(500 * time.Millisecond)
	killed := time.Now()
	tsSF.CloseClientConnections()
	tsSF.Close()

	var sfShard *Shard
	for _, s := range g.Shards() {
		if s.Name == "sf-0" {
			sfShard = s
		}
	}
	for sfShard.Alive() {
		if time.Since(killed) > 2*time.Second {
			t.Fatal("gateway never marked sf-0 down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// FailThreshold probes plus one in-flight one, with scheduler slack:
	// the acceptance bound is "within two health-check intervals".
	if d := time.Since(killed); d > 3*interval+500*time.Millisecond {
		t.Errorf("detection took %v, want ~%v", d, 2*interval)
	}

	// A dead region is shed, not misrouted: direct probe sees the 503
	// contract.
	resp, err := http.Get(fmt.Sprintf("%s/estimates/price?client=probe&lat=%f&lng=%f",
		gw.URL, sf.Origin.Lat, sf.Origin.Lng))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("dead-region status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("dead-region 503 missing Retry-After")
	}

	var rep *loadgen.Report
	select {
	case rep = <-reportCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("loadgen never finished")
	}

	sfStats, mhStats := rep.Cities[sf.Name], rep.Cities[mh.Name]
	if mhStats.Requests == 0 || sfStats.Requests == 0 {
		t.Fatalf("degenerate run: %+v", rep.Cities)
	}
	// The healthy city never sees the other city's outage.
	if mhStats.Errors != 0 {
		t.Errorf("manhattan errors = %d, want 0 (sf death must not leak)", mhStats.Errors)
	}
	// The dead city's clients do see errors — shedding is loud, not a
	// silent wrong-city answer.
	if sfStats.Errors == 0 {
		t.Error("sf clients saw no errors despite their region dying")
	}
	if v := reg.Counter("gate_shed_total", obs.L("region", sf.Name)).Value(); v == 0 {
		t.Error("gate_shed_total{region=sf} = 0, want > 0")
	}
	if v := reg.Gauge("gate_shard_up", obs.L("shard", "sf-0")).Value(); v != 0 {
		t.Errorf("gate_shard_up{sf-0} = %v, want 0", v)
	}
}

// TestGatewayReroutesWithinRegion kills one of two replicas of the same
// city: traffic reroutes to the survivor and clients see zero errors.
func TestGatewayReroutesWithinRegion(t *testing.T) {
	mh := sim.Manhattan()
	tsA := backendServer(t, mh, 1)
	tsB := backendServer(t, mh, 1) // same seed: identical worlds, true replicas
	reg := obs.NewRegistry()
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsA.URL},
			{Name: "manhattan-1", Region: mh.Name, BaseURL: tsB.URL},
		},
		HealthInterval: 25 * time.Millisecond,
		Registry:       reg,
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// All loadgen clients query from the city center, i.e. one routing
	// cell: find its owner so the kill hits the serving replica.
	registerVia(t, gw.URL, "scout")
	_, owner := getShardHeader(t, gw.URL, "scout", mh.Origin)
	victim := tsA
	if owner == "manhattan-1" {
		victim = tsB
	}

	reportCh := make(chan *loadgen.Report, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:  gw.URL,
			Clients:  4,
			Duration: 1200 * time.Millisecond,
			Loc:      mh.Origin,
		})
		if err != nil {
			errCh <- err
			return
		}
		reportCh <- rep
	}()

	time.Sleep(400 * time.Millisecond)
	victim.CloseClientConnections()
	victim.Close()

	var rep *loadgen.Report
	select {
	case rep = <-reportCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("loadgen never finished")
	}
	if rep.Errors != 0 {
		t.Errorf("client-visible errors = %d, want 0 (survivor should absorb the kill)", rep.Errors)
	}
	if v := reg.Counter("gate_reroutes_total").Value(); v == 0 {
		t.Error("gate_reroutes_total = 0, want > 0")
	}
}

// swapHandler lets a test replace a shard's entire backend behind a fixed
// URL — the moral equivalent of the process being replaced by a fresh one
// that lost its account table.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func TestGatewayReloginAfterShardLosesAccounts(t *testing.T) {
	mh := sim.Manhattan()
	svc1 := api.NewBackend(mh, 1, false)
	svc1.RunUntil(600)
	sw := &swapHandler{}
	sw.h.Store(http.Handler(api.NewServer(svc1)))
	tsB := httptest.NewServer(sw)
	defer tsB.Close()
	tsA := backendServer(t, mh, 1)

	reg := obs.NewRegistry()
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsA.URL},
			{Name: "manhattan-1", Region: mh.Name, BaseURL: tsB.URL},
		},
		Registry: reg,
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	registerVia(t, gw.URL, "c1") // broadcast: both shards know c1

	// The shard is replaced by a fresh process with an empty account table.
	svc2 := api.NewBackend(mh, 1, false)
	svc2.RunUntil(600)
	sw.h.Store(http.Handler(api.NewServer(svc2)))

	// Find a location manhattan-1 owns and query it: the fresh backend
	// answers 401, the gateway replays the remembered login and retries.
	for _, loc := range grid(mh, 8) {
		route, err := g.Router().Pick(loc)
		if err != nil {
			t.Fatal(err)
		}
		if route.Shard.Name != "manhattan-1" {
			continue
		}
		code, shard := getShardHeader(t, gw.URL, "c1", loc)
		if code != 200 || shard != "manhattan-1" {
			t.Fatalf("query after account loss: code %d via %q", code, shard)
		}
		if v := reg.Counter("gate_relogins_total").Value(); v == 0 {
			t.Error("gate_relogins_total = 0, want > 0")
		}
		return
	}
	t.Fatal("test is vacuous: manhattan-1 owns no grid cell")
}

func TestGatewayReplaysLoginsIntoRecoveredShard(t *testing.T) {
	mh := sim.Manhattan()
	tsA := backendServer(t, mh, 1)

	// Shard B reports not-ready until the test flips it — a shard that is
	// warming up while accounts are being created elsewhere.
	var up atomic.Bool
	rd := api.NewReadiness()
	rd.AddCheck("warm", up.Load)
	tsB := backendServer(t, mh, 1, api.WithReadiness(rd))

	reg := obs.NewRegistry()
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsA.URL},
			{Name: "manhattan-1", Region: mh.Name, BaseURL: tsB.URL},
		},
		HealthInterval: 20 * time.Millisecond,
		Registry:       reg,
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	registerVia(t, gw.URL, "c1") // only manhattan-0 is ready to take it

	up.Store(true) // shard B becomes ready; the gateway replays c1 into it
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/estimates/price?client=c1&lat=%f&lng=%f",
			tsB.URL, mh.Origin.Lat, mh.Origin.Lng))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break // B knows the account now
		}
		if time.Now().After(deadline) {
			t.Fatalf("login never replayed into recovered shard (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := reg.Counter("gate_login_replays_total").Value(); v == 0 {
		t.Error("gate_login_replays_total = 0, want > 0")
	}
}

func TestGatewayMetricsFanIn(t *testing.T) {
	mh := sim.Manhattan()
	tsA := backendServer(t, mh, 1)
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsA.URL},
			// A shard that was configured but never came up: the fan-in must
			// label its absence, not fail or block.
			{Name: "manhattan-1", Region: mh.Name, BaseURL: "http://127.0.0.1:1"},
		},
		ScrapeTimeout: 500 * time.Millisecond,
	})
	// Generate one request so the live shard has series to relabel.
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	registerVia(t, gw.URL, "c1")
	getShardHeader(t, gw.URL, "c1", mh.Origin)

	rec := httptest.NewRecorder()
	g.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	if !strings.Contains(body, `shard="manhattan-0"`) {
		t.Error("fan-in missing relabeled series from the live shard")
	}
	if !strings.Contains(body, "# ubergate: shard manhattan-1 metrics unavailable") {
		t.Error("fan-in missing the dead-shard absence comment")
	}
	if !strings.Contains(body, "gate_shard_up") {
		t.Error("fan-in missing the gateway's own series")
	}
	// No shard comment lines survive relabeling (duplicate TYPE metadata
	// would break strict parsers).
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE") && strings.Contains(line, "uberd_") {
			t.Errorf("shard TYPE comment leaked into fan-in: %q", line)
		}
	}
}

func TestInjectLabel(t *testing.T) {
	cases := [][3]string{
		{`requests_total{endpoint="/ping"} 4`, `shard="a"`, `requests_total{shard="a",endpoint="/ping"} 4`},
		{`up 1`, `shard="a"`, `up{shard="a"} 1`},
		{`weird`, `shard="a"`, `weird`},
	}
	for _, c := range cases {
		if got := injectLabel(c[0], c[1]); got != c[2] {
			t.Errorf("injectLabel(%q) = %q, want %q", c[0], got, c[2])
		}
	}
}

func TestGatewaySurgeMapRoutesByRegionParam(t *testing.T) {
	mh, sf := sim.Manhattan(), sim.SanFrancisco()
	tsMH := backendServer(t, mh, 1)
	tsSF := backendServer(t, sf, 2)
	g := startGateway(t, Config{
		Regions: []RegionSpec{regionSpec(mh), regionSpec(sf)},
		Shards: []ShardSpec{
			{Name: "manhattan-0", Region: mh.Name, BaseURL: tsMH.URL},
			{Name: "sf-0", Region: sf.Name, BaseURL: tsSF.URL},
		},
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// Register a driver through the gateway (broadcast, like clients).
	body, _ := json.Marshal(map[string]any{"driver_id": "d1", "agree_no_scraping": true})
	resp, err := http.Post(gw.URL+"/partner/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("partner login: status %d", resp.StatusCode)
	}

	resp, err = http.Get(gw.URL + "/partner/surgeMap?driver=d1&region=" + sf.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := httputil.DumpResponse(resp, true)
		t.Fatalf("surgeMap via region param: status %d\n%s", resp.StatusCode, b)
	}
	if shard := resp.Header.Get("X-Ubergate-Shard"); shard != "sf-0" {
		t.Errorf("surgeMap served by %q, want sf-0", shard)
	}

	// No region, no GPS, two regions configured: ambiguous, a 400.
	resp, err = http.Get(gw.URL + "/partner/surgeMap?driver=d1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous surgeMap: status %d, want 400", resp.StatusCode)
	}
}
