package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func posConfig(n int) *quick.Config {
	return &quick.Config{
		MaxCount: n,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(rng.Float64() * 20000)
			}
		},
	}
}

// Fare is monotone non-decreasing in distance, duration, and surge.
func TestFareMonotoneProperty(t *testing.T) {
	fares := DefaultFares()
	f := func(m1, m2, s1, s2, g1, g2 float64) bool {
		for _, sched := range fares {
			dLo, dHi := math.Min(m1, m2), math.Max(m1, m2)
			tLo, tHi := math.Min(s1, s2), math.Max(s1, s2)
			gLo := 1 + math.Min(g1, g2)/10000
			gHi := 1 + math.Max(g1, g2)/10000
			if sched.Fare(dHi, tLo, gLo) < sched.Fare(dLo, tLo, gLo)-1e-9 {
				return false
			}
			if sched.Fare(dLo, tHi, gLo) < sched.Fare(dLo, tLo, gLo)-1e-9 {
				return false
			}
			if sched.Fare(dLo, tLo, gHi) < sched.Fare(dLo, tLo, gLo)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, posConfig(60)); err != nil {
		t.Error(err)
	}
}

// Fare never goes below the minimum plus the booking fee.
func TestFareFloorProperty(t *testing.T) {
	f := func(meters, seconds, surge float64) bool {
		for _, sched := range DefaultFares() {
			got := sched.Fare(meters, seconds, 1+surge/10000)
			if got < sched.MinimumUSD+sched.BookingFeeUSD-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, posConfig(60)); err != nil {
		t.Error(err)
	}
}
