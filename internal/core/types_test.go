package core

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestVehicleTypeStringRoundTrip(t *testing.T) {
	for _, v := range AllVehicleTypes() {
		got, err := ParseVehicleType(v.String())
		if err != nil {
			t.Fatalf("ParseVehicleType(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
	if _, err := ParseVehicleType("uberWARP"); err == nil {
		t.Error("unknown type should error")
	}
	if s := VehicleType(99).String(); s != "VehicleType(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestAllVehicleTypesCount(t *testing.T) {
	if len(AllVehicleTypes()) != NumVehicleTypes {
		t.Errorf("len = %d, want %d", len(AllVehicleTypes()), NumVehicleTypes)
	}
	if NumVehicleTypes != 9 {
		t.Errorf("expected the paper's 9 products, got %d", NumVehicleTypes)
	}
}

func TestSurgeable(t *testing.T) {
	if UberT.Surgeable() {
		t.Error("UberT must not surge (§4.2)")
	}
	for _, v := range []VehicleType{UberX, UberXL, UberBLACK, UberSUV, UberPOOL} {
		if !v.Surgeable() {
			t.Errorf("%v should surge", v)
		}
	}
}

func TestPingResponseStatus(t *testing.T) {
	r := &PingResponse{Types: []TypeStatus{
		{Type: UberX, Surge: 1.5},
		{Type: UberBLACK, Surge: 1.0},
	}}
	if s := r.Status(UberX); s == nil || s.Surge != 1.5 {
		t.Errorf("Status(UberX) = %+v", s)
	}
	if s := r.Status(UberSUV); s != nil {
		t.Errorf("Status(UberSUV) should be nil, got %+v", s)
	}
}

func TestFareScheduleBasics(t *testing.T) {
	f := FareSchedule{BaseUSD: 2, PerMileUSD: 1, PerMinuteUSD: 0.5, MinimumUSD: 5}
	// Long trip: 2 miles, 10 minutes, no surge: 2 + 2 + 5 = 9.
	got := f.Fare(2*1609.344, 600, 1.0)
	if math.Abs(got-9) > 1e-9 {
		t.Errorf("Fare = %v, want 9", got)
	}
	// Surge doubles the metered part.
	got = f.Fare(2*1609.344, 600, 2.0)
	if math.Abs(got-18) > 1e-9 {
		t.Errorf("surged Fare = %v, want 18", got)
	}
	// Minimum applies to short trips.
	got = f.Fare(100, 60, 1.0)
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("minimum Fare = %v, want 5", got)
	}
	// Surge below 1 is clamped to 1.
	got = f.Fare(100, 60, 0.5)
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("clamped Fare = %v, want 5", got)
	}
}

func TestFareBookingFeeNotSurged(t *testing.T) {
	f := FareSchedule{BaseUSD: 4, PerMileUSD: 0, PerMinuteUSD: 0, BookingFeeUSD: 1}
	base := f.Fare(0, 0, 1)
	surged := f.Fare(0, 0, 3)
	if math.Abs(base-5) > 1e-9 {
		t.Errorf("base = %v, want 5", base)
	}
	// 4*3 + 1 = 13: fee excluded from the multiplier.
	if math.Abs(surged-13) > 1e-9 {
		t.Errorf("surged = %v, want 13", surged)
	}
}

func TestDefaultFaresCoverAllTypes(t *testing.T) {
	fares := DefaultFares()
	for _, v := range AllVehicleTypes() {
		f, ok := fares[v]
		if !ok {
			t.Errorf("no fare for %v", v)
			continue
		}
		if f.Fare(5000, 900, 1) <= 0 {
			t.Errorf("non-positive fare for %v", v)
		}
	}
	// Luxury products must cost more than UberX for the same trip.
	x := fares[UberX].Fare(8000, 1200, 1)
	black := fares[UberBLACK].Fare(8000, 1200, 1)
	suv := fares[UberSUV].Fare(8000, 1200, 1)
	if !(x < black && black < suv) {
		t.Errorf("fare ordering wrong: X=%v BLACK=%v SUV=%v", x, black, suv)
	}
}

func TestCarViewZeroValue(t *testing.T) {
	var cv CarView
	if cv.ID != "" || cv.Path != nil || cv.Pos != (geo.LatLng{}) {
		t.Error("zero CarView should be empty")
	}
}
