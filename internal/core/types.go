// Package core defines the domain types shared by every layer of the
// reproduction — vehicle types, the pingClient wire format, fare schedules —
// and the Service interface that both the simulated Uber backend
// (internal/api) and the taxi ground-truth replayer (internal/taxi)
// implement. The measurement apparatus (internal/client) is written purely
// against this interface, which is what lets the paper's §3.5 validation
// work: the same methodology code runs against either backend.
package core

import (
	"fmt"

	"repro/internal/geo"
)

// VehicleType enumerates the Uber products the paper observes (§2).
type VehicleType int

// The vehicle types offered in SF and Manhattan during the measurement
// period. UberT is an ordinary taxi hailed through the app and is not
// subject to surge pricing.
const (
	UberX VehicleType = iota
	UberXL
	UberBLACK
	UberSUV
	UberFAMILY
	UberPOOL
	UberWAV
	UberRUSH
	UberT
	numVehicleTypes
)

// AllVehicleTypes lists every product in declaration order.
func AllVehicleTypes() []VehicleType {
	out := make([]VehicleType, numVehicleTypes)
	for i := range out {
		out[i] = VehicleType(i)
	}
	return out
}

// NumVehicleTypes is the number of distinct products.
const NumVehicleTypes = int(numVehicleTypes)

var vehicleTypeNames = [...]string{
	"uberX", "uberXL", "uberBLACK", "uberSUV",
	"uberFAMILY", "uberPOOL", "uberWAV", "uberRUSH", "uberT",
}

// String returns the product name as the Uber API spells it.
func (v VehicleType) String() string {
	if v < 0 || int(v) >= len(vehicleTypeNames) {
		return fmt.Sprintf("VehicleType(%d)", int(v))
	}
	return vehicleTypeNames[v]
}

// ParseVehicleType converts a product name back to its VehicleType.
func ParseVehicleType(s string) (VehicleType, error) {
	for i, n := range vehicleTypeNames {
		if n == s {
			return VehicleType(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown vehicle type %q", s)
}

// Surgeable reports whether the product participates in surge pricing.
// UberT (ordinary taxis) does not (§4.2).
func (v VehicleType) Surgeable() bool { return v != UberT }

// CarView is one vehicle as seen in a pingClient response: a per-session
// randomized ID, the current position, and a short path vector tracing
// recent movement (§3.3). IDs are NOT stable across driver sessions, which
// is why the paper cannot track individual drivers.
type CarView struct {
	ID   string       `json:"id"`
	Pos  geo.LatLng   `json:"pos"`
	Path []geo.LatLng `json:"path,omitempty"`
}

// TypeStatus is the per-product section of a pingClient response: the
// (up to) eight nearest cars, the estimated wait time, and the surge
// multiplier in effect at the queried location.
type TypeStatus struct {
	Type       VehicleType `json:"-"`
	TypeName   string      `json:"type"`
	Cars       []CarView   `json:"cars"`
	EWTSeconds float64     `json:"ewt_seconds"`
	Surge      float64     `json:"surge"`
}

// MaxVisibleCars is the number of nearest cars a client can see per product.
const MaxVisibleCars = 8

// PingResponse is the JSON document the emulated Client app receives every
// five seconds.
type PingResponse struct {
	Time  int64        `json:"time"` // simulation time, seconds
	Types []TypeStatus `json:"types"`
}

// Status returns the TypeStatus for v, or nil if the product is not offered
// at the queried location.
func (r *PingResponse) Status(v VehicleType) *TypeStatus {
	for i := range r.Types {
		if r.Types[i].Type == v {
			return &r.Types[i]
		}
	}
	return nil
}

// PriceEstimate is one entry of an estimates/price API response.
type PriceEstimate struct {
	TypeName string  `json:"type"`
	Surge    float64 `json:"surge_multiplier"`
	LowUSD   float64 `json:"low_estimate"`
	HighUSD  float64 `json:"high_estimate"`
	Currency string  `json:"currency_code"`
}

// TimeEstimate is one entry of an estimates/time API response.
type TimeEstimate struct {
	TypeName   string  `json:"type"`
	EWTSeconds float64 `json:"estimate_seconds"`
}

// Service is the measurement-facing surface of a ride-sharing backend.
// internal/api implements it for the simulated Uber service; internal/taxi
// implements it for the ground-truth taxi replayer (without surge).
//
// PingClient emulates the smartphone app's 5-second ping: clientID
// identifies the logged-in account (jitter in the April 2015 datastream was
// per-client, so the backend needs to know who is asking).
//
// EstimatePrice and EstimateTime emulate the public HTTP API, which serves
// surge without jitter but is rate limited per account.
type Service interface {
	PingClient(clientID string, loc geo.LatLng) (*PingResponse, error)
	EstimatePrice(clientID string, loc geo.LatLng) ([]PriceEstimate, error)
	EstimateTime(clientID string, loc geo.LatLng) ([]TimeEstimate, error)
	// Now returns the backend's current simulation time in seconds.
	Now() int64
}

// FareSchedule is the static fare structure for one product (§2): a base
// fare plus per-mile and per-minute charges, with a minimum. The surge
// multiplier scales the metered part.
type FareSchedule struct {
	BaseUSD       float64
	PerMileUSD    float64
	PerMinuteUSD  float64
	MinimumUSD    float64
	BookingFeeUSD float64
}

// Fare computes the fare for a trip of the given distance and duration
// under multiplier surge.
func (f FareSchedule) Fare(meters float64, seconds float64, surge float64) float64 {
	if surge < 1 {
		surge = 1
	}
	miles := meters / 1609.344
	minutes := seconds / 60
	metered := f.BaseUSD + f.PerMileUSD*miles + f.PerMinuteUSD*minutes
	if metered < f.MinimumUSD {
		metered = f.MinimumUSD
	}
	return metered*surge + f.BookingFeeUSD
}

// DefaultFares returns the circa-2015 fare schedules used for price
// estimates, keyed by product. Values follow Uber's published SF rate card
// of the period; they only need to be plausible since the paper never
// compares absolute fares.
func DefaultFares() map[VehicleType]FareSchedule {
	return map[VehicleType]FareSchedule{
		UberX:      {BaseUSD: 2.20, PerMileUSD: 1.30, PerMinuteUSD: 0.26, MinimumUSD: 6.55, BookingFeeUSD: 1.00},
		UberXL:     {BaseUSD: 5.00, PerMileUSD: 2.15, PerMinuteUSD: 0.45, MinimumUSD: 8.00, BookingFeeUSD: 1.00},
		UberBLACK:  {BaseUSD: 8.00, PerMileUSD: 3.75, PerMinuteUSD: 0.65, MinimumUSD: 15.00},
		UberSUV:    {BaseUSD: 15.00, PerMileUSD: 4.50, PerMinuteUSD: 0.90, MinimumUSD: 25.00},
		UberFAMILY: {BaseUSD: 2.20, PerMileUSD: 1.30, PerMinuteUSD: 0.26, MinimumUSD: 6.55, BookingFeeUSD: 3.00},
		UberPOOL:   {BaseUSD: 2.20, PerMileUSD: 1.00, PerMinuteUSD: 0.20, MinimumUSD: 5.00, BookingFeeUSD: 1.00},
		UberWAV:    {BaseUSD: 2.20, PerMileUSD: 1.30, PerMinuteUSD: 0.26, MinimumUSD: 6.55, BookingFeeUSD: 1.00},
		UberRUSH:   {BaseUSD: 3.00, PerMileUSD: 2.50, PerMinuteUSD: 0.00, MinimumUSD: 7.00},
		UberT:      {BaseUSD: 2.50, PerMileUSD: 2.50, PerMinuteUSD: 0.50, MinimumUSD: 2.50},
	}
}
