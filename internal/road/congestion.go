package road

// Congestion is the per-directed-edge time-varying slowdown state. Each
// tick the sim tallies, in a serial phase, how many active (en-route or
// on-trip) vehicles currently occupy each edge via AddLoad, then Commit
// folds the loads into the factor table:
//
//	factor' = clamp(1 + (factor−1)·Decay + Gain·load/capacity, 1, Max)
//
// Decay < 1 pulls an unloaded edge back toward free flow; Gain·load/cap
// pushes a loaded one up. The update is monotone non-decreasing in load
// (Gain > 0), which is what the never-faster-traversal test pins: more
// trips on an edge can only slow it.
//
// Phase discipline: AddLoad and Commit run only in serial commit
// sections; Factors() hands the live table to the parallel phases as a
// read-only view (it only changes inside Commit). The routers' landmark
// bounds stay valid because factors never drop below 1.
type Congestion struct {
	g      *Graph
	factor []float64
	load   []int32
	cap    []float64 // vehicles an edge absorbs before slowing

	// Gain, Decay, and Max are the update-rule constants; exported so
	// experiments can stiffen or soften a city's traffic response.
	Gain  float64
	Decay float64
	Max   float64
}

// Default congestion constants: an edge at capacity gains ~0.9 factor
// points per commit, memory halves in ~4 ticks, and gridlock tops out at
// 4× free-flow time.
const (
	defaultGain  = 0.9
	defaultDecay = 0.85
	defaultMax   = 4.0
)

// NewCongestion returns free-flow congestion state for g. Edge capacity
// scales with length (one vehicle per 60 m, min 1): a long arterial
// absorbs more trips than a short block before slowing.
func NewCongestion(g *Graph) *Congestion {
	m := g.NumEdges()
	c := &Congestion{
		g:      g,
		factor: make([]float64, m),
		load:   make([]int32, m),
		cap:    make([]float64, m),
		Gain:   defaultGain,
		Decay:  defaultDecay,
		Max:    defaultMax,
	}
	for e := 0; e < m; e++ {
		c.factor[e] = 1
		cp := g.length[e] / 60
		if cp < 1 {
			cp = 1
		}
		c.cap[e] = cp
	}
	return c
}

// AddLoad counts one active vehicle on directed edge e this tick.
// Serial-phase only.
func (c *Congestion) AddLoad(e int32) { c.load[e]++ }

// Commit folds the tick's loads into the factor table and resets them.
// Serial-phase only; in a shared-network (two-service) setup exactly one
// party calls Commit per tick, after every world has tallied.
func (c *Congestion) Commit() {
	for e := range c.factor {
		f := 1 + (c.factor[e]-1)*c.Decay + c.Gain*float64(c.load[e])/c.cap[e]
		if f < 1 {
			f = 1
		}
		if f > c.Max {
			f = c.Max
		}
		c.factor[e] = f
		c.load[e] = 0
	}
}

// Factor returns edge e's current slowdown multiple (≥ 1).
func (c *Congestion) Factor(e int32) float64 { return c.factor[e] }

// Factors returns the live factor table as a read-only view: it is
// stable between Commits, so the parallel phases may read it freely.
func (c *Congestion) Factors() []float64 { return c.factor }

// CloneFactors returns a frozen copy of the factor table, appended to
// buf — what a snapshot embeds so lock-free queries survive later
// Commits.
func (c *Congestion) CloneFactors(buf []float64) []float64 {
	return append(buf[:0], c.factor...)
}
