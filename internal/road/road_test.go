package road

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func testGraph(seed uint64) *Graph {
	return Generate(GenConfig{
		Region: geo.NewRect(geo.Point{X: -1500, Y: -1200}, geo.Point{X: 1500, Y: 1200}),
		Block:  130,
		Seed:   seed,
	})
}

// graphFingerprint hashes every structural field of the graph.
func graphFingerprint(g *Graph) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, p := range g.nodes {
		mix(math.Float64bits(p.X))
		mix(math.Float64bits(p.Y))
	}
	for i, e := range g.to {
		mix(uint64(e))
		mix(math.Float64bits(g.base[i]))
		mix(math.Float64bits(g.length[i]))
		mix(uint64(g.class[i]))
	}
	for _, s := range g.start {
		mix(uint64(s))
	}
	return h
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := testGraph(7), testGraph(7)
	if graphFingerprint(a) != graphFingerprint(b) {
		t.Fatal("same config produced different graphs")
	}
	c := testGraph(8)
	if graphFingerprint(a) == graphFingerprint(c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGraphConnected(t *testing.T) {
	for _, g := range []*Graph{
		testGraph(1),
		ForProfile("manhattan", geo.NewRect(geo.Point{X: -1700, Y: -1500}, geo.Point{X: 1700, Y: 1500})).Graph,
		ForProfile("sf", geo.NewRect(geo.Point{X: -2400, Y: -2400}, geo.Point{X: 2400, Y: 2400})).Graph,
	} {
		n := g.NumNodes()
		seen := make([]bool, n)
		queue := []int32{0}
		seen[0] = true
		reached := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for e := g.start[u]; e < g.start[u+1]; e++ {
				if v := g.to[e]; !seen[v] {
					seen[v] = true
					reached++
					queue = append(queue, v)
				}
			}
		}
		if reached != n {
			t.Fatalf("graph disconnected: reached %d of %d nodes", reached, n)
		}
	}
}

func TestReverseEdges(t *testing.T) {
	g := testGraph(3)
	for a := int32(0); int(a) < g.NumNodes(); a++ {
		for e := g.start[a]; e < g.start[a+1]; e++ {
			rev := g.rev[e]
			if rev < 0 || g.to[rev] != a {
				t.Fatalf("edge %d: rev %d does not return to %d", e, rev, a)
			}
			if g.base[rev] != g.base[e] {
				t.Fatalf("edge %d: asymmetric base time", e)
			}
		}
	}
}

func TestNearestNodeExact(t *testing.T) {
	g := testGraph(11)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := geo.Point{
			X: (rng.Float64() - 0.5) * 4000,
			Y: (rng.Float64() - 0.5) * 3500,
		}
		got := g.NearestNode(p)
		best, bestD := int32(-1), math.Inf(1)
		for v := int32(0); int(v) < g.NumNodes(); v++ {
			if d := geo.Dist(p, g.NodePos(v)); d < bestD {
				best, bestD = v, d
			}
		}
		if got != best {
			t.Fatalf("NearestNode(%v) = %d (%.2fm), brute force %d (%.2fm)",
				p, got, geo.Dist(p, g.NodePos(got)), best, bestD)
		}
	}
}

// refDijkstra is the brute-force reference: plain Dijkstra over the
// congested costs, accumulating dist along parent chains — the ordered
// path sum the router must reproduce bit for bit.
func refDijkstra(g *Graph, factors []float64, from, to int32) (float64, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[from] = 0
	h := pq{{key: 0, node: from}}
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		if u == to {
			return dist[u], true
		}
		done[u] = true
		for e := g.start[u]; e < g.start[u+1]; e++ {
			v := g.to[e]
			if nd := dist[u] + edgeCost(g, factors, e); nd < dist[v] {
				dist[v] = nd
				h.push(pqItem{key: nd, node: v})
			}
		}
	}
	return 0, false
}

// TestRouteMatchesDijkstra is the property test pinning A*+ALT to the
// brute-force reference: random seeded graphs, random congestion, random
// endpoint pairs, exact float equality.
func TestRouteMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for gi := 0; gi < 4; gi++ {
		g := Generate(GenConfig{
			Region: geo.NewRect(
				geo.Point{X: -1000 - rng.Float64()*1000, Y: -900 - rng.Float64()*800},
				geo.Point{X: 1000 + rng.Float64()*1000, Y: 900 + rng.Float64()*800}),
			Block:      100 + rng.Float64()*60,
			Bridges:    2 + rng.Intn(3),
			JitterFrac: 0.3,
			Seed:       rng.Uint64(),
		})
		// Alternate free flow and random congestion.
		var factors []float64
		if gi%2 == 1 {
			factors = make([]float64, g.NumEdges())
			for e := range factors {
				factors[e] = 1 + rng.Float64()*2.5
			}
		}
		r := NewRouter(g)
		n := int32(g.NumNodes())
		for q := 0; q < 40; q++ {
			from, to := rng.Int31n(n), rng.Int31n(n)
			want, wok := refDijkstra(g, factors, from, to)
			path, sec, meters, ok := r.RoutePath(from, to, factors, nil)
			if ok != wok {
				t.Fatalf("graph %d %d→%d: ok=%v want %v", gi, from, to, ok, wok)
			}
			if !ok {
				continue
			}
			if sec != want {
				t.Fatalf("graph %d %d→%d: route cost %v != dijkstra %v (Δ %g)",
					gi, from, to, sec, want, sec-want)
			}
			if path[0] != from || path[len(path)-1] != to {
				t.Fatalf("graph %d: path endpoints %d..%d, want %d..%d",
					gi, path[0], path[len(path)-1], from, to)
			}
			var wantM float64
			for i := 0; i+1 < len(path); i++ {
				e := g.EdgeBetween(path[i], path[i+1])
				if e < 0 {
					t.Fatalf("graph %d: path hop %d→%d is not an edge", gi, path[i], path[i+1])
				}
				wantM += g.EdgeLen(e)
			}
			if meters != wantM {
				t.Fatalf("graph %d: meters %v != path sum %v", gi, meters, wantM)
			}
		}
	}
}

// TestLandmarkBoundsAdmissible checks the ALT potential never exceeds the
// true free-flow distance (admissibility).
func TestLandmarkBoundsAdmissible(t *testing.T) {
	g := testGraph(21)
	rng := rand.New(rand.NewSource(4))
	n := int32(g.NumNodes())
	for q := 0; q < 25; q++ {
		tgt := rng.Int31n(n)
		dist := g.baseDijkstra(tgt) // symmetric: d(v, tgt) too
		for probe := 0; probe < 50; probe++ {
			v := rng.Int31n(n)
			var bound float64
			for _, d := range g.lm {
				if b := math.Abs(d[v] - d[tgt]); b > bound {
					bound = b
				}
			}
			if bound > dist[v]+1e-9 {
				t.Fatalf("landmark bound %g exceeds true distance %g (%d→%d)",
					bound, dist[v], v, tgt)
			}
		}
	}
}

func TestCongestionMonotonic(t *testing.T) {
	g := testGraph(31)
	e := int32(g.NumNodes()) // an arbitrary edge id in range
	if int(e) >= g.NumEdges() {
		e = 0
	}
	// More trips ⇒ never-faster traversal, across repeated commits.
	prevTime := -1.0
	for load := 0; load <= 40; load += 5 {
		c := NewCongestion(g)
		for tick := 0; tick < 10; tick++ {
			for i := 0; i < load; i++ {
				c.AddLoad(e)
			}
			c.Commit()
		}
		tt := g.EdgeBase(e) * c.Factor(e)
		if tt < prevTime {
			t.Fatalf("load %d: traversal %gs faster than lighter load's %gs", load, tt, prevTime)
		}
		if tt < g.EdgeBase(e) {
			t.Fatalf("congested traversal %gs below free flow %gs", tt, g.EdgeBase(e))
		}
		prevTime = tt
	}

	// Decay: after load stops, the factor falls monotonically back to 1.
	c := NewCongestion(g)
	for tick := 0; tick < 10; tick++ {
		for i := 0; i < 30; i++ {
			c.AddLoad(e)
		}
		c.Commit()
	}
	prev := c.Factor(e)
	if prev <= 1 {
		t.Fatal("sustained load never raised the factor")
	}
	for tick := 0; tick < 200; tick++ {
		c.Commit()
		f := c.Factor(e)
		if f > prev {
			t.Fatalf("factor rose without load: %g → %g", prev, f)
		}
		prev = f
	}
	if prev > 1.01 {
		t.Fatalf("factor %g failed to decay toward free flow", prev)
	}

	// The cap holds under any load.
	c2 := NewCongestion(g)
	for tick := 0; tick < 50; tick++ {
		for i := 0; i < 10000; i++ {
			c2.AddLoad(e)
		}
		c2.Commit()
	}
	if f := c2.Factor(e); f > c2.Max {
		t.Fatalf("factor %g exceeds cap %g", f, c2.Max)
	}
}

// TestRouterDeterministic: identical queries on distinct routers (and on
// a reused router) return identical paths and costs — the property the
// per-shard router scheme rests on.
func TestRouterDeterministic(t *testing.T) {
	g := testGraph(41)
	factors := make([]float64, g.NumEdges())
	rng := rand.New(rand.NewSource(6))
	for e := range factors {
		factors[e] = 1 + rng.Float64()
	}
	r1, r2 := NewRouter(g), NewRouter(g)
	n := int32(g.NumNodes())
	for q := 0; q < 30; q++ {
		from, to := rng.Int31n(n), rng.Int31n(n)
		p1, s1, m1, ok1 := r1.RoutePath(from, to, factors, nil)
		// Burn an unrelated query through r2 first: scratch reuse must not
		// leak between queries.
		r2.Route(rng.Int31n(n), rng.Int31n(n), nil)
		p2, s2, m2, ok2 := r2.RoutePath(from, to, factors, nil)
		if ok1 != ok2 || s1 != s2 || m1 != m2 || len(p1) != len(p2) {
			t.Fatalf("%d→%d: routers disagree (%v/%v, %v/%v)", from, to, s1, s2, m1, m2)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%d→%d: paths diverge at hop %d", from, to, i)
			}
		}
	}
}

func TestBenchGraphSize(t *testing.T) {
	g := BenchGraph()
	if g.NumNodes() < 45000 {
		t.Fatalf("bench graph has %d nodes, want ~50k", g.NumNodes())
	}
	// A long cross-city route must exist and beat the worst-case straight
	// line at local speed (the ring road and arterials make routes fast).
	r := NewRouter(g)
	a := g.NearestNode(geo.Point{X: -11000, Y: -11000})
	b := g.NearestNode(geo.Point{X: 11000, Y: 11000})
	sec, meters, ok := r.Route(a, b, nil)
	if !ok {
		t.Fatal("no route across the bench graph")
	}
	straight := geo.Dist(g.NodePos(a), g.NodePos(b))
	if meters < straight {
		t.Fatalf("route %gm shorter than straight line %gm", meters, straight)
	}
	if sec > straight/classSpeed[ClassLocal]*2 {
		t.Fatalf("cross-city route %gs implausibly slow", sec)
	}
}
