package road

import (
	"hash/fnv"

	"repro/internal/geo"
)

// GenConfig parameterizes the synthetic street generator.
type GenConfig struct {
	// Region is the rectangle the grid spans; nodes cover it exactly.
	Region geo.Rect
	// Block is the target block edge length in meters (default 120).
	Block float64
	// ArterialEvery makes every k-th row and column a faster arterial
	// (default 4; 0 disables arterials).
	ArterialEvery int
	// Bridges is how many interior crossings span the river band cut
	// through the middle of the grid (default 3). The perimeter ring road
	// always crosses at both banks, so connectivity never depends on it.
	Bridges int
	// JitterFrac displaces interior nodes by up to this fraction of a
	// block in each axis (default 0.18); boundary (ring) nodes stay on
	// the perimeter. Jitter is hashed per node, not drawn from a stream,
	// so the graph is identical however it is built.
	JitterFrac float64
	// Seed keys the jitter hash.
	Seed uint64
}

func (c *GenConfig) defaults() {
	if c.Block <= 0 {
		c.Block = 120
	}
	if c.ArterialEvery < 0 {
		c.ArterialEvery = 0
	} else if c.ArterialEvery == 0 {
		c.ArterialEvery = 4
	}
	if c.Bridges <= 0 {
		c.Bridges = 3
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.18
	}
}

// Generate builds the street graph for the config. The topology is a
// cols×rows lattice: every node connects to its 4-neighbors, perimeter
// edges form a fast ring road, every ArterialEvery-th interior row and
// column is an arterial, and a horizontal river band severs the interior
// vertical edges between the two middle rows except at Bridges evenly
// spaced crossing columns. Both directions of every street are emitted
// with identical base times.
func Generate(cfg GenConfig) *Graph {
	cfg.defaults()
	w, h := cfg.Region.Width(), cfg.Region.Height()
	cols := int(w/cfg.Block) + 1
	rows := int(h/cfg.Block) + 1
	if cols < 3 {
		cols = 3
	}
	if rows < 3 {
		rows = 3
	}
	dx := w / float64(cols-1)
	dy := h / float64(rows-1)

	g := &Graph{nodes: make([]geo.Point, cols*rows)}
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			p := geo.Point{
				X: cfg.Region.Min.X + float64(i)*dx,
				Y: cfg.Region.Min.Y + float64(j)*dy,
			}
			if i > 0 && i < cols-1 && j > 0 && j < rows-1 {
				jx, jy := nodeJitter(cfg.Seed, i, j)
				p.X += jx * cfg.JitterFrac * dx
				p.Y += jy * cfg.JitterFrac * dy
			}
			g.nodes[j*cols+i] = p
		}
	}

	riverRow := rows/2 - 1 // river lies between riverRow and riverRow+1
	bridgeCols := make(map[int]bool, cfg.Bridges)
	for k := 1; k <= cfg.Bridges; k++ {
		bridgeCols[k*(cols-1)/(cfg.Bridges+1)] = true
	}

	type rawEdge struct {
		a, b  int32
		class uint8
	}
	edges := make([]rawEdge, 0, 2*cols*rows)
	add := func(ai, aj, bi, bj int, class uint8) {
		edges = append(edges, rawEdge{
			a: int32(aj*cols + ai), b: int32(bj*cols + bi), class: class,
		})
	}
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			// Horizontal street to the east neighbor.
			if i+1 < cols {
				class := ClassLocal
				switch {
				case j == 0 || j == rows-1:
					class = ClassRing
				case j%cfg.ArterialEvery == 0:
					class = ClassArterial
				}
				add(i, j, i+1, j, class)
			}
			// Vertical street to the north neighbor.
			if j+1 < rows {
				class := ClassLocal
				switch {
				case i == 0 || i == cols-1:
					class = ClassRing
				case i%cfg.ArterialEvery == 0:
					class = ClassArterial
				}
				if j == riverRow && i > 0 && i < cols-1 {
					if !bridgeCols[i] {
						continue // the river: no crossing here
					}
					class = ClassBridge
				}
				add(i, j, i, j+1, class)
			}
		}
	}

	// CSR over both directions of every street.
	n := len(g.nodes)
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e.a+1]++
		deg[e.b+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	m := 2 * len(edges)
	g.start = deg
	g.to = make([]int32, m)
	g.length = make([]float64, m)
	g.base = make([]float64, m)
	g.class = make([]uint8, m)
	fill := make([]int32, n)
	place := func(a, b int32, class uint8, length float64) {
		e := g.start[a] + fill[a]
		fill[a]++
		g.to[e] = b
		g.length[e] = length
		g.base[e] = length / classSpeed[class]
		g.class[e] = class
	}
	for _, e := range edges {
		l := geo.Dist(g.nodes[e.a], g.nodes[e.b])
		place(e.a, e.b, e.class, l)
		place(e.b, e.a, e.class, l)
	}
	// Reverse-partner table: every street was emitted in both directions,
	// so the lookup always succeeds. The backward search costs incoming
	// edges through this.
	g.rev = make([]int32, m)
	for a := int32(0); int(a) < n; a++ {
		for e := g.start[a]; e < g.start[a+1]; e++ {
			g.rev[e] = g.EdgeBetween(g.to[e], a)
		}
	}

	g.buildNodeGrid(2 * cfg.Block)
	g.computeLandmarks(defaultLandmarks)
	return g
}

// nodeJitter returns two deterministic uniforms in [-1, 1) for node (i, j).
func nodeJitter(seed uint64, i, j int) (x, y float64) {
	h := splitmix(seed ^ 0x8f4a91c36e5d201b)
	h = splitmix(h ^ uint64(i))
	h = splitmix(h ^ uint64(j))
	x = float64(h>>11)/(1<<53)*2 - 1
	h = splitmix(h)
	y = float64(h>>11)/(1<<53)*2 - 1
	return x, y
}

// splitmix is the splitmix64 finalizer, the jitter hash.
func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ForProfile builds the network for a named city region. The seed hashes
// the city name only — never the sim seed or worker count — so every
// world of a city (any seed, any shard layout) drives the same streets.
func ForProfile(name string, region geo.Rect) *Network {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewNetwork(Generate(GenConfig{Region: region, Seed: h.Sum64()}))
}

// BenchGraph returns the ~50k-node default grid BenchmarkRoute runs
// against: a 22.4 km square at 100 m blocks (225×225 nodes).
func BenchGraph() *Graph {
	return Generate(GenConfig{
		Region: geo.NewRect(geo.Point{X: -11200, Y: -11200}, geo.Point{X: 11200, Y: 11200}),
		Block:  100,
		Seed:   0x5eed0f50ad,
	})
}
