// Package road models the street network the euclidean sim abstracts
// away: a deterministic synthetic graph generator (grid blocks, faster
// arterials, a perimeter ring road, and a river band crossed by a few
// bridges), compact CSR adjacency storage, bidirectional A* point-to-point
// routing with precomputed landmark (ALT) lower bounds, and per-edge
// time-varying congestion fed back from trip density.
//
// Everything in the package is deterministic: the generator derives all
// jitter from hashes of (seed, node), the router is a pure function of
// (graph, congestion factors, endpoints), and the congestion update is a
// serial commit. The sim relies on this — route queries run inside its
// parallel phases and must be bit-for-bit identical for every worker
// count.
package road

import (
	"sync"

	"repro/internal/geo"
)

// Edge classes, ordered by typical free-flow speed. The class determines
// the base (uncongested) traversal speed of an edge.
const (
	ClassLocal uint8 = iota // block-to-block street
	ClassBridge
	ClassArterial
	ClassRing
	numClasses
)

// classSpeed is the free-flow speed of each edge class in m/s.
var classSpeed = [numClasses]float64{
	ClassLocal:    6.5,
	ClassBridge:   8.5,
	ClassArterial: 10.0,
	ClassRing:     12.5,
}

// OffRoadSpeed is the speed used for the legs connecting an arbitrary
// point to its nearest graph node (driveway/curb approach).
const OffRoadSpeed = 6.0

// Graph is an immutable street network in compact CSR form: node i's
// outgoing edges are edges [start[i], start[i+1]). Edges are directed;
// the generator emits both directions of every street with identical
// base times, so the base graph is symmetric (the ALT landmark bounds
// depend on this). All methods are safe for concurrent use.
type Graph struct {
	nodes []geo.Point

	start  []int32   // len(nodes)+1
	to     []int32   // head node of each directed edge
	length []float64 // meters
	base   []float64 // free-flow traversal seconds
	class  []uint8
	rev    []int32 // opposite direction of the same street

	// Node-lookup grid (CSR again): cellNodes[cellStart[c]:cellStart[c+1]]
	// lists the nodes in cell c, ascending.
	bounds    geo.Rect
	cellSize  float64
	nx, ny    int
	cellStart []int32
	cellNodes []int32

	// lm[l][v] is the base-time distance from landmark l to node v
	// (symmetric graph: also v to l). See landmarks.go.
	lm [][]float64

	routers sync.Pool
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.to) }

// NodePos returns the plane position of node v.
func (g *Graph) NodePos(v int32) geo.Point { return g.nodes[v] }

// EdgeLen returns edge e's length in meters.
func (g *Graph) EdgeLen(e int32) float64 { return g.length[e] }

// EdgeBase returns edge e's free-flow traversal time in seconds.
func (g *Graph) EdgeBase(e int32) float64 { return g.base[e] }

// EdgeClass returns edge e's class.
func (g *Graph) EdgeClass(e int32) uint8 { return g.class[e] }

// EdgeSpeed returns edge e's free-flow speed in m/s.
func (g *Graph) EdgeSpeed(e int32) float64 { return classSpeed[g.class[e]] }

// EdgeBetween returns the directed edge from a to b, or -1. Degrees are
// ≤ 4, so the scan is constant-time.
func (g *Graph) EdgeBetween(a, b int32) int32 {
	for e := g.start[a]; e < g.start[a+1]; e++ {
		if g.to[e] == b {
			return e
		}
	}
	return -1
}

// NearestNode returns the node closest to p (ties broken by lowest
// index). The expanding ring search over the node grid mirrors
// geo.SlotGrid's, so it is exact, not approximate.
func (g *Graph) NearestNode(p geo.Point) int32 {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	best := int32(-1)
	bestD := 0.0
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Any node in an unexplored ring is at least (ring-1) cells away;
		// once the best found is closer than that bound, it is exact.
		if best >= 0 && bestD <= float64(ring-1)*g.cellSize {
			break
		}
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if absInt(dx) != ring && absInt(dy) != ring {
					continue
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
					continue
				}
				c := y*g.nx + x
				for i := g.cellStart[c]; i < g.cellStart[c+1]; i++ {
					v := g.cellNodes[i]
					d := geo.Dist(p, g.nodes[v])
					if best < 0 || d < bestD || (d == bestD && v < best) {
						best, bestD = v, d
					}
				}
			}
		}
	}
	return best
}

// AcquireRouter returns a router bound to this graph from an internal
// pool; callers on concurrent query paths (snapshot EWT) use this instead
// of holding a router per goroutine. Release with ReleaseRouter.
func (g *Graph) AcquireRouter() *Router {
	if r, ok := g.routers.Get().(*Router); ok {
		return r
	}
	return NewRouter(g)
}

// ReleaseRouter returns a router obtained from AcquireRouter to the pool.
func (g *Graph) ReleaseRouter(r *Router) { g.routers.Put(r) }

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// buildNodeGrid indexes the nodes into cells of roughly 2 blocks for
// NearestNode queries.
func (g *Graph) buildNodeGrid(cellSize float64) {
	g.bounds = boundsOf(g.nodes)
	g.cellSize = cellSize
	g.nx = int(g.bounds.Width()/cellSize) + 1
	g.ny = int(g.bounds.Height()/cellSize) + 1
	cells := g.nx * g.ny
	counts := make([]int32, cells+1)
	idx := make([]int32, len(g.nodes))
	for v, p := range g.nodes {
		cx := int((p.X - g.bounds.Min.X) / g.cellSize)
		cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
		if cx >= g.nx {
			cx = g.nx - 1
		}
		if cy >= g.ny {
			cy = g.ny - 1
		}
		c := int32(cy*g.nx + cx)
		idx[v] = c
		counts[c+1]++
	}
	for c := 0; c < cells; c++ {
		counts[c+1] += counts[c]
	}
	g.cellStart = counts
	g.cellNodes = make([]int32, len(g.nodes))
	fill := make([]int32, cells)
	// Nodes are visited in ascending order, so each cell's list is sorted.
	for v := range g.nodes {
		c := idx[v]
		g.cellNodes[counts[c]+fill[c]] = int32(v)
		fill[c]++
	}
}

func boundsOf(pts []geo.Point) geo.Rect {
	r := geo.NewRect(pts[0], pts[0])
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// Network bundles a graph with its mutable congestion state; the sim and
// the two-service harness share one Network between worlds so trip
// density on either service slows both.
type Network struct {
	Graph *Graph
	Cong  *Congestion
}

// NewNetwork wraps a graph with fresh (free-flow) congestion state.
func NewNetwork(g *Graph) *Network {
	return &Network{Graph: g, Cong: NewCongestion(g)}
}
