package road

import "math"

// Point-to-point routing: bidirectional A* with ALT (A*, Landmarks,
// Triangle inequality) lower bounds.
//
// Landmarks are chosen by farthest-point sampling over base (free-flow)
// times and a single-source distance table is stored per landmark. For a
// query s→t the forward potential is
//
//	pf(v) = (πf(v) − πb(v)) / 2
//	πf(v) = max_L |d(L,v) − d(L,t)|   (lower bound on d(v,t))
//	πb(v) = max_L |d(L,v) − d(L,s)|   (lower bound on d(s,v))
//
// and the backward potential is pb = −pf, so pf+pb is the constant 0 and
// the searches stop as soon as topF + topB ≥ μ (the best s→t cost seen).
// Both potentials are feasible on the *congested* graph: the landmark
// tables are over base times, congestion factors are ≥ 1, and the base
// graph is symmetric, so for any edge (u,v),
// pf(u) − pf(v) ≤ d_base(u,v) ≤ cost(u,v).
//
// The returned cost is recomputed as the ordered s→t sum over the found
// path, so when the shortest path is unique it is bit-for-bit equal to a
// textbook Dijkstra's dist[t] (which accumulates along the same chain in
// the same order) — the property test pins this.

// defaultLandmarks is how many ALT landmarks Generate precomputes.
const defaultLandmarks = 8

// computeLandmarks farthest-point-samples k landmarks and stores their
// base-time distance tables. Deterministic: the seed vertex is the node
// farthest from node 0.
func (g *Graph) computeLandmarks(k int) {
	n := g.NumNodes()
	if n == 0 || k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	d0 := g.baseDijkstra(0)
	cur, best := int32(0), -1.0
	for v, dv := range d0 {
		if !math.IsInf(dv, 1) && dv > best {
			best, cur = dv, int32(v)
		}
	}
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = math.Inf(1)
	}
	g.lm = make([][]float64, 0, k)
	for len(g.lm) < k {
		d := g.baseDijkstra(cur)
		g.lm = append(g.lm, d)
		next, far := int32(-1), 0.0
		for v := range minD {
			if d[v] < minD[v] {
				minD[v] = d[v]
			}
			if !math.IsInf(minD[v], 1) && minD[v] > far {
				far, next = minD[v], int32(v)
			}
		}
		if next < 0 || far == 0 {
			break
		}
		cur = next
	}
}

// baseDijkstra returns single-source free-flow distances from src.
func (g *Graph) baseDijkstra(src int32) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := pq{{key: 0, node: src}}
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for e := g.start[u]; e < g.start[u+1]; e++ {
			v := g.to[e]
			if nd := dist[u] + g.base[e]; nd < dist[v] {
				dist[v] = nd
				h.push(pqItem{key: nd, node: v})
			}
		}
	}
	return dist
}

// pqItem is one binary-heap entry.
type pqItem struct {
	key  float64
	node int32
}

// pq is a slice-backed binary min-heap with lazy deletion (stale entries
// are skipped by the settled check at pop sites).
type pq []pqItem

func (h *pq) push(it pqItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].key <= s[i].key {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *pq) pop() pqItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].key < s[m].key {
			m = l
		}
		if r < n && s[r].key < s[m].key {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// Router holds the per-query scratch of the bidirectional search. A
// Router serves one query at a time; the sim keeps one per shard (and one
// for serial phases), the snapshot query path borrows from the graph's
// pool. Version stamps make query start O(1) — no array clearing.
type Router struct {
	g *Graph

	distF, distB []float64
	parF, parB   []int32 // parent toward s / toward t
	seenF, seenB []int32 // stamp: label valid
	doneF, doneB []int32 // stamp: node settled
	stamp        int32

	heapF, heapB pq
	lmS, lmT     []float64 // landmark distances to s and t, per query
	path         []int32
}

// NewRouter returns a router bound to g.
func NewRouter(g *Graph) *Router {
	n := g.NumNodes()
	return &Router{
		g:     g,
		distF: make([]float64, n), distB: make([]float64, n),
		parF: make([]int32, n), parB: make([]int32, n),
		seenF: make([]int32, n), seenB: make([]int32, n),
		doneF: make([]int32, n), doneB: make([]int32, n),
		lmS: make([]float64, len(g.lm)), lmT: make([]float64, len(g.lm)),
	}
}

// cost returns edge e's traversal time under the factor table (nil =
// free flow).
func edgeCost(g *Graph, factors []float64, e int32) float64 {
	if factors == nil {
		return g.base[e]
	}
	return g.base[e] * factors[e]
}

// pf is the forward potential at v (backward is its negation).
func (r *Router) pf(v int32) float64 {
	var hf, hb float64
	for l, d := range r.g.lm {
		f := math.Abs(d[v] - r.lmT[l])
		if f > hf {
			hf = f
		}
		b := math.Abs(d[v] - r.lmS[l])
		if b > hb {
			hb = b
		}
	}
	return (hf - hb) / 2
}

// Route returns the congested travel time and street distance of the
// shortest s→t path; ok is false when no path exists. factors is the
// per-edge congestion table (nil = free flow); it is only read.
func (r *Router) Route(from, to int32, factors []float64) (seconds, meters float64, ok bool) {
	r.path, seconds, meters, ok = r.route(from, to, factors, r.path[:0])
	return seconds, meters, ok
}

// RoutePath is Route, also appending the node sequence (from … to) to
// buf and returning it.
func (r *Router) RoutePath(from, to int32, factors []float64, buf []int32) (path []int32, seconds, meters float64, ok bool) {
	return r.route(from, to, factors, buf)
}

func (r *Router) route(from, to int32, factors []float64, buf []int32) ([]int32, float64, float64, bool) {
	g := r.g
	if from == to {
		return append(buf, from), 0, 0, true
	}
	r.stamp++
	if r.stamp == math.MaxInt32 {
		// Stamp wrap (after ~2^31 queries): flush the version arrays so
		// stale stamps can never collide with reused values.
		for i := range r.seenF {
			r.seenF[i], r.seenB[i], r.doneF[i], r.doneB[i] = 0, 0, 0, 0
		}
		r.stamp = 1
	}
	for l, d := range g.lm {
		r.lmS[l] = d[from]
		r.lmT[l] = d[to]
	}
	r.heapF = r.heapF[:0]
	r.heapB = r.heapB[:0]
	st := r.stamp

	r.distF[from] = 0
	r.seenF[from] = st
	r.parF[from] = -1
	r.heapF.push(pqItem{key: r.pf(from), node: from})

	r.distB[to] = 0
	r.seenB[to] = st
	r.parB[to] = -1
	r.heapB.push(pqItem{key: -r.pf(to), node: to})

	mu := math.Inf(1)
	meetF, meetB := int32(-1), int32(-1)

	// relaxF settles u forward and scans its outgoing edges.
	relaxF := func(u int32) {
		du := r.distF[u]
		for e := g.start[u]; e < g.start[u+1]; e++ {
			v := g.to[e]
			if r.doneF[v] == st {
				continue
			}
			nd := du + edgeCost(g, factors, e)
			if r.seenF[v] != st || nd < r.distF[v] {
				r.distF[v] = nd
				r.seenF[v] = st
				r.parF[v] = u
				r.heapF.push(pqItem{key: nd + r.pf(v), node: v})
			}
			if r.seenB[v] == st {
				if c := nd + r.distB[v]; c < mu {
					mu, meetF, meetB = c, u, v
				}
			}
		}
	}
	// relaxB settles x backward and scans its incoming edges via the
	// reverse-partner table (every street has both directions).
	relaxB := func(x int32) {
		dx := r.distB[x]
		for e := g.start[x]; e < g.start[x+1]; e++ {
			u := g.to[e]
			if r.doneB[u] == st {
				continue
			}
			rev := g.rev[e] // original edge u→x
			nd := dx + edgeCost(g, factors, rev)
			if r.seenB[u] != st || nd < r.distB[u] {
				r.distB[u] = nd
				r.seenB[u] = st
				r.parB[u] = x
				r.heapB.push(pqItem{key: nd - r.pf(u), node: u})
			}
			if r.seenF[u] == st {
				if c := r.distF[u] + edgeCost(g, factors, rev) + dx; c < mu {
					mu, meetF, meetB = c, u, x
				}
			}
		}
	}

	for len(r.heapF) > 0 && len(r.heapB) > 0 {
		if r.heapF[0].key+r.heapB[0].key >= mu {
			break
		}
		if r.heapF[0].key <= r.heapB[0].key {
			it := r.heapF.pop()
			u := it.node
			if r.doneF[u] == st {
				continue
			}
			r.doneF[u] = st
			relaxF(u)
		} else {
			it := r.heapB.pop()
			x := it.node
			if r.doneB[x] == st {
				continue
			}
			r.doneB[x] = st
			relaxB(x)
		}
	}
	if math.IsInf(mu, 1) {
		return buf, 0, 0, false
	}

	// Assemble s..meetF then meetB..t, then recompute the cost as the
	// ordered s→t sum so it is bit-equal to a serial Dijkstra's.
	head := len(buf)
	for v := meetF; v >= 0; v = r.parF[v] {
		buf = append(buf, v)
	}
	// Reverse the prefix in place (it was appended meetF→s).
	for i, j := head, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	for v := meetB; v >= 0; v = r.parB[v] {
		buf = append(buf, v)
	}
	var seconds, meters float64
	for i := head; i+1 < len(buf); i++ {
		e := g.EdgeBetween(buf[i], buf[i+1])
		seconds += edgeCost(g, factors, e)
		meters += g.length[e]
	}
	return buf, seconds, meters, true
}
