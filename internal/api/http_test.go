package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

func testHTTP(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewBackend(sim.Manhattan(), 3, false)
	svc.RunUntil(600)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

func TestHTTPLoginAndPing(t *testing.T) {
	svc, ts := testHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())

	if err := remote.Register("httpclient"); err != nil {
		t.Fatal(err)
	}
	loc := center(svc)
	resp, err := remote.PingClient("httpclient", loc)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Time != 600 {
		t.Errorf("Time = %d", resp.Time)
	}
	x := resp.Status(core.UberX)
	if x == nil || len(x.Cars) == 0 {
		t.Fatalf("UberX status missing or empty: %+v", x)
	}
	// Enum rebuilt from the wire name.
	if x.Type != core.UberX || x.TypeName != "uberX" {
		t.Errorf("type mapping broken: %v %q", x.Type, x.TypeName)
	}
}

func TestHTTPEstimates(t *testing.T) {
	svc, ts := testHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())
	if err := remote.Register("c2"); err != nil {
		t.Fatal(err)
	}
	loc := center(svc)
	prices, err := remote.EstimatePrice("c2", loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) == 0 {
		t.Error("no prices over HTTP")
	}
	times, err := remote.EstimateTime("c2", loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 {
		t.Error("no times over HTTP")
	}
	if got := remote.Now(); got != svc.Now() {
		t.Errorf("remote Now = %d, local %d", got, svc.Now())
	}
}

func TestHTTPErrors(t *testing.T) {
	svc, ts := testHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())
	loc := center(svc)

	// Unknown account -> 401 -> ErrUnknownAccount.
	if _, err := remote.PingClient("ghost", loc); err != ErrUnknownAccount {
		t.Errorf("err = %v, want ErrUnknownAccount", err)
	}
	// Bad query params -> 400.
	resp, err := http.Get(ts.URL + "/pingClient?client=x&lat=abc&lng=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	// Missing client id on login -> 400.
	resp, err = http.Post(ts.URL+"/login", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("login status = %d, want 400", resp.StatusCode)
	}
	// Out of region -> 404.
	if err := remote.Register("far"); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.PingClient("far", geo.LatLng{}); err != ErrOutOfService {
		t.Errorf("err = %v, want ErrOutOfService", err)
	}
}

func TestHTTPRateLimitStatus(t *testing.T) {
	svc, ts := testHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())
	if err := remote.Register("heavy"); err != nil {
		t.Fatal(err)
	}
	loc := center(svc)
	// Exhaust the limit in-process (faster), then observe 429 via HTTP.
	for i := 0; i < RateLimitPerHour; i++ {
		if _, err := svc.EstimatePrice("heavy", loc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := remote.EstimatePrice("heavy", loc); err != ErrRateLimited {
		t.Errorf("err = %v, want ErrRateLimited", err)
	}
}

func TestHTTPResponseIsValidJSON(t *testing.T) {
	svc, ts := testHTTP(t)
	svc.Register("raw")
	loc := center(svc)
	resp, err := http.Get(ts.URL + "/pingClient?client=raw&lat=" +
		jsonNum(loc.Lat) + "&lng=" + jsonNum(loc.Lng))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["types"]; !ok {
		t.Error("response missing types field")
	}
}

func jsonNum(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}
