package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func readyzStatus(t *testing.T, rd *Readiness) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	rd.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return rec.Code, body
}

func TestReadinessLifecycle(t *testing.T) {
	rd := NewReadiness()
	if code, _ := readyzStatus(t, rd); code != http.StatusOK {
		t.Fatalf("no checks, not draining: status %d, want 200", code)
	}

	var epoch, bus atomic.Bool
	rd.AddCheck("epoch", epoch.Load)
	rd.AddCheck("bus", bus.Load)
	if code, body := readyzStatus(t, rd); code != http.StatusServiceUnavailable || body["reason"] != "epoch" {
		t.Fatalf("failing first check: %d %v", code, body)
	}
	epoch.Store(true)
	if _, body := readyzStatus(t, rd); body["reason"] != "bus" {
		t.Fatalf("want second check named, got %v", body)
	}
	bus.Store(true)
	if code, _ := readyzStatus(t, rd); code != http.StatusOK {
		t.Fatal("all checks passing but not ready")
	}

	// Draining wins over passing checks, and is reversible.
	rd.SetDraining(true)
	if code, body := readyzStatus(t, rd); code != http.StatusServiceUnavailable || body["reason"] != "draining" {
		t.Fatalf("draining: %d %v", code, body)
	}
	if !rd.Draining() {
		t.Error("Draining() = false while draining")
	}
	rd.SetDraining(false)
	if code, _ := readyzStatus(t, rd); code != http.StatusOK {
		t.Error("undrain did not restore readiness")
	}

	// Nil receiver is ready (servers without a readiness state machine).
	var nilRd *Readiness
	if ok, _ := nilRd.Ready(); !ok {
		t.Error("nil Readiness not ready")
	}
}

func TestHealthzReportsSimTime(t *testing.T) {
	rec := httptest.NewRecorder()
	Healthz(func() int64 { return 1234 }).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var body struct {
		Status string `json:"status"`
		Time   int64  `json:"time"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 200 || body.Status != "ok" || body.Time != 1234 {
		t.Fatalf("healthz = %d %+v", rec.Code, body)
	}

	// The gateway variant has no sim clock; the time field is absent.
	rec = httptest.NewRecorder()
	Healthz(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, has := raw["time"]; has {
		t.Error("nil-clock healthz reports a time")
	}
}

// TestServerHealthEndpoints pins the wiring NewServer does by default:
// /healthz reports the sim clock, /readyz passes (the constructor
// publishes the first epoch), and a caller-supplied Readiness can gate
// and drain the shard.
func TestServerHealthEndpoints(t *testing.T) {
	svc := NewBackend(sim.Manhattan(), 3, false)
	svc.RunUntil(600)
	rd := NewReadiness()
	rd.AddCheck("epoch", svc.EpochPublished)
	ts := httptest.NewServer(NewServer(svc, WithReadiness(rd)))
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", code)
	}
	var body struct {
		Time int64 `json:"time"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Time != 600 {
		t.Errorf("healthz time = %d, want 600 (the gateway prober reads this)", body.Time)
	}

	// Draining fails readiness while liveness stays up — the shutdown
	// sequence a fronting gateway observes.
	rd.SetDraining(true)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", code)
	}
}
