package api

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

func testBackend(t testing.TB, jitter bool) *Service {
	t.Helper()
	s := NewBackend(sim.Manhattan(), 7, jitter)
	s.Register("tester")
	s.RunUntil(600)
	return s
}

func center(s *Service) geo.LatLng {
	return s.World().Projection().ToLatLng(geo.Point{})
}

func TestPingClientBasics(t *testing.T) {
	s := testBackend(t, false)
	resp, err := s.PingClient("tester", center(s))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Time != 600 {
		t.Errorf("Time = %d, want 600", resp.Time)
	}
	x := resp.Status(core.UberX)
	if x == nil {
		t.Fatal("no UberX section")
	}
	if len(x.Cars) == 0 || len(x.Cars) > core.MaxVisibleCars {
		t.Errorf("UberX cars = %d, want 1..8", len(x.Cars))
	}
	if x.EWTSeconds <= 0 {
		t.Errorf("EWT = %v", x.EWTSeconds)
	}
	if x.Surge < 1 {
		t.Errorf("surge = %v", x.Surge)
	}
	// UberT present in Manhattan and never surged.
	ut := resp.Status(core.UberT)
	if ut == nil {
		t.Fatal("Manhattan should offer UberT")
	}
	if ut.Surge != 1 {
		t.Errorf("UberT surge = %v, want 1", ut.Surge)
	}
}

func TestPingClientAuth(t *testing.T) {
	s := testBackend(t, false)
	if _, err := s.PingClient("stranger", center(s)); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("err = %v, want ErrUnknownAccount", err)
	}
	s.Register("stranger")
	if _, err := s.PingClient("stranger", center(s)); err != nil {
		t.Errorf("after Register: %v", err)
	}
	// Registering twice is a no-op.
	s.Register("stranger")
	if got := s.Accounts(); got != 2 {
		t.Errorf("Accounts = %d, want 2", got)
	}
}

func TestPingClientOutOfRegion(t *testing.T) {
	s := testBackend(t, false)
	far := geo.LatLng{Lat: 0, Lng: 0}
	if _, err := s.PingClient("tester", far); !errors.Is(err, ErrOutOfService) {
		t.Errorf("err = %v, want ErrOutOfService", err)
	}
}

func TestPingClientNotRateLimited(t *testing.T) {
	s := testBackend(t, false)
	loc := center(s)
	// The app pings every 5 s forever; way more than 1000 pings must work.
	for i := 0; i < RateLimitPerHour+10; i++ {
		if _, err := s.PingClient("tester", loc); err != nil {
			t.Fatalf("ping %d failed: %v", i, err)
		}
	}
}

func TestEstimateEndpointsRateLimited(t *testing.T) {
	s := testBackend(t, false)
	loc := center(s)
	for i := 0; i < RateLimitPerHour; i++ {
		if _, err := s.EstimatePrice("tester", loc); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if _, err := s.EstimatePrice("tester", loc); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	// Time endpoint shares the same budget.
	if _, err := s.EstimateTime("tester", loc); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	// A new hour resets the limit.
	s.RunUntil(3700)
	if _, err := s.EstimatePrice("tester", loc); err != nil {
		t.Fatalf("after hour rollover: %v", err)
	}
}

func TestEstimatePriceShape(t *testing.T) {
	s := testBackend(t, false)
	prices, err := s.EstimatePrice("tester", center(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) == 0 {
		t.Fatal("no price estimates")
	}
	for _, p := range prices {
		if p.LowUSD <= 0 || p.HighUSD < p.LowUSD {
			t.Errorf("%s: bad range [%v, %v]", p.TypeName, p.LowUSD, p.HighUSD)
		}
		if p.Surge < 1 {
			t.Errorf("%s: surge %v < 1", p.TypeName, p.Surge)
		}
		if p.Currency != "USD" {
			t.Errorf("currency = %q", p.Currency)
		}
		if p.TypeName == core.UberT.String() && p.Surge != 1 {
			t.Errorf("UberT surged via API: %v", p.Surge)
		}
	}
}

func TestEstimateTimeShape(t *testing.T) {
	s := testBackend(t, false)
	times, err := s.EstimateTime("tester", center(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 {
		t.Fatal("no time estimates")
	}
	for _, e := range times {
		if e.EWTSeconds <= 0 {
			t.Errorf("%s: EWT %v", e.TypeName, e.EWTSeconds)
		}
	}
}

func TestAPIAndClientStreamsAgreeWithoutJitter(t *testing.T) {
	s := testBackend(t, false)
	loc := center(s)
	// After the client switch moment both streams serve cur; scan a few
	// intervals asserting they never diverge for long. Without jitter the
	// only divergence window is between the two switch times.
	for i := 0; i < 20; i++ {
		s.RunUntil(s.Now() + 300)
		// Move to ~2.5 minutes into the interval: both streams switched.
		s.RunUntil(s.Now()/300*300 + 150)
		ping, err := s.PingClient("tester", loc)
		if err != nil {
			t.Fatal(err)
		}
		prices, err := s.EstimatePrice("tester", loc)
		if err != nil {
			t.Fatal(err)
		}
		var apiSurge float64
		for _, p := range prices {
			if p.TypeName == core.UberX.String() {
				apiSurge = p.Surge
			}
		}
		if got := ping.Status(core.UberX).Surge; got != apiSurge {
			t.Errorf("interval %d: client %v != api %v", i, got, apiSurge)
		}
	}
}

func TestDeterministicResponses(t *testing.T) {
	collect := func() []float64 {
		s := NewBackend(sim.SanFrancisco(), 11, true)
		s.Register("a")
		var out []float64
		loc := s.World().Projection().ToLatLng(geo.Point{X: 100, Y: 100})
		for i := 0; i < 100; i++ {
			s.RunUntil(s.Now() + 60)
			resp, err := s.PingClient("a", loc)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, resp.Status(core.UberX).Surge, resp.Status(core.UberX).EWTSeconds)
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("responses diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
