package api

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sim"
)

// legacyPing reassembles a PingResponse the way the pre-snapshot service
// did: straight off the live world and engine (brute-force AreaOf, direct
// NearestCars/EWT calls). The lock-free path must be indistinguishable
// from it at every tick.
func legacyPing(s *Service, clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	if err := s.auth(clientID); err != nil {
		return nil, err
	}
	w, e := s.World(), s.Engine()
	proj := w.Projection()
	p := proj.ToPlane(loc)
	if !w.Profile().Region.Contains(p) {
		return nil, ErrOutOfService
	}
	area := sim.AreaOf(w.Areas(), p)
	now := w.Now()
	fuzz := s.fuzzMeters()
	resp := &core.PingResponse{Time: now}
	for _, vt := range s.offered {
		ts := core.TypeStatus{
			Type:       vt,
			TypeName:   vt.String(),
			Cars:       w.NearestCars(vt, p, core.MaxVisibleCars),
			EWTSeconds: w.EWT(vt, p),
			Surge:      1,
		}
		if vt.Surgeable() {
			ts.Surge = e.ClientMultiplier(clientID, area, now)
		}
		if fuzz > 0 {
			for i := range ts.Cars {
				ts.Cars[i].Pos = fuzzPos(proj, fuzz, ts.Cars[i].ID, now, ts.Cars[i].Pos)
			}
		}
		resp.Types = append(resp.Types, ts)
	}
	return resp, nil
}

// legacyPrice mirrors the pre-snapshot EstimatePrice (minus the rate-limit
// charge, which the snapshot path still performs through the shared table).
func legacyPrice(s *Service, clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	w, e := s.World(), s.Engine()
	p := w.Projection().ToPlane(loc)
	if !w.Profile().Region.Contains(p) {
		return nil, ErrOutOfService
	}
	area := sim.AreaOf(w.Areas(), p)
	now := w.Now()
	out := make([]core.PriceEstimate, 0, len(s.offered))
	for _, vt := range s.offered {
		m := 1.0
		if vt.Surgeable() {
			m = e.APIMultiplier(area, now)
		}
		const nominalMeters, nominalSeconds = 5000.0, 900.0
		mid := s.fares[vt].Fare(nominalMeters, nominalSeconds, m)
		out = append(out, core.PriceEstimate{
			TypeName: vt.String(),
			Surge:    m,
			LowUSD:   mid * 0.8,
			HighUSD:  mid * 1.2,
			Currency: "USD",
		})
	}
	return out, nil
}

func legacyTime(s *Service, loc geo.LatLng) ([]core.TimeEstimate, error) {
	w := s.World()
	p := w.Projection().ToPlane(loc)
	if !w.Profile().Region.Contains(p) {
		return nil, ErrOutOfService
	}
	out := make([]core.TimeEstimate, 0, len(s.offered))
	for _, vt := range s.offered {
		out = append(out, core.TimeEstimate{
			TypeName:   vt.String(),
			EWTSeconds: w.EWT(vt, p),
		})
	}
	return out, nil
}

// TestSnapshotServedEquivalence pins the tentpole's safety property: for
// any tick, client, and location, the snapshot-served endpoints return
// exactly what the locked implementation returned — same floats, same car
// order, same jitter windows — with location fuzz both off and on, and
// with the simulation tick running both serially and multi-worker (the
// phase-parallel Step and concurrent snapshot build must not change a
// single response byte).
func TestSnapshotServedEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, fuzz := range []float64{0, 25} {
			t.Run(fmt.Sprintf("workers=%d/fuzz=%v", workers, fuzz), func(t *testing.T) {
				s := NewBackendWorkers(sim.SanFrancisco(), 11, true, workers)
				s.SetLocationFuzz(fuzz)
				clients := make([]string, 6)
				for i := range clients {
					clients[i] = fmt.Sprintf("eq-%02d", i)
					s.Register(clients[i])
				}
				region := s.World().Profile().Region
				proj := s.World().Projection()
				pts := make([]geo.LatLng, 0, 9)
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						pts = append(pts, proj.ToLatLng(geo.Point{
							X: region.Min.X + (0.1+0.4*float64(i))*(region.Max.X-region.Min.X),
							Y: region.Min.Y + (0.1+0.4*float64(j))*(region.Max.Y-region.Min.Y),
						}))
					}
				}
				for tick := 0; tick < 40; tick++ {
					s.Step()
					c := clients[tick%len(clients)]
					for _, loc := range pts {
						got, err := s.PingClient(c, loc)
						if err != nil {
							t.Fatal(err)
						}
						want, err := legacyPing(s, c, loc)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("tick %d client %s loc %v: snapshot ping diverges\n got %+v\nwant %+v",
								tick, c, loc, got, want)
						}
						gp, err := s.EstimatePrice(c, loc)
						if err != nil {
							t.Fatal(err)
						}
						wp, err := legacyPrice(s, c, loc)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gp, wp) {
							t.Fatalf("tick %d: snapshot price diverges\n got %+v\nwant %+v", tick, gp, wp)
						}
						gt, err := s.EstimateTime(c, loc)
						if err != nil {
							t.Fatal(err)
						}
						wt, err := legacyTime(s, loc)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gt, wt) {
							t.Fatalf("tick %d: snapshot time diverges\n got %+v\nwant %+v", tick, gt, wt)
						}
					}
				}
			})
		}
	}
}

// TestSnapshotServedOutOfService checks the error path is served from the
// snapshot with identical semantics.
func TestSnapshotServedOutOfService(t *testing.T) {
	s := NewBackend(sim.Manhattan(), 5, false)
	s.Register("eq-err")
	far := geo.LatLng{Lat: 0, Lng: 0}
	if _, err := s.PingClient("eq-err", far); err != ErrOutOfService {
		t.Fatalf("PingClient far away: err = %v, want ErrOutOfService", err)
	}
	if _, err := s.EstimatePrice("eq-err", far); err != ErrOutOfService {
		t.Fatalf("EstimatePrice far away: err = %v, want ErrOutOfService", err)
	}
	if _, err := s.PingClient("nobody", far); err == nil {
		t.Fatal("unknown account must fail before region check")
	}
}
