package api

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// TestConcurrentQueriesDuringSteps hammers the lock-free query path from
// several goroutines while the backend steps continuously, with account
// registration churn on top. Run under -race this proves the tentpole
// claim: queries and snapshot publication never touch shared mutable
// state. Each goroutine also checks that the response timestamps it sees
// never go backwards — epochs are published monotonically.
func TestConcurrentQueriesDuringSteps(t *testing.T) {
	s := NewBackend(sim.SanFrancisco(), 77, true)
	stressQueriesDuringSteps(t, s, 200)
}

// TestParallelStepConcurrentQueries runs the same gauntlet against a
// backend whose tick itself fans out over multiple workers: the parallel
// movement/stats/snapshot phases must not leak shared mutable state to
// the lock-free query path (this is the -race probe for Step-internal
// parallelism meeting concurrent reads).
func TestParallelStepConcurrentQueries(t *testing.T) {
	s := NewBackendWorkers(sim.SanFrancisco(), 78, true, 4)
	stressQueriesDuringSteps(t, s, 120)
}

func stressQueriesDuringSteps(t *testing.T, s *Service, steps int) {
	s.SetLocationFuzz(15)
	const pingers, estimators = 4, 2
	ids := make([]string, pingers+estimators)
	for i := range ids {
		ids[i] = fmt.Sprintf("stress-%02d", i)
		s.Register(ids[i])
	}
	loc := center(s)
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
		stop.Store(true)
	}
	for i := 0; i < pingers; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			last := int64(-1)
			for !stop.Load() {
				resp, err := s.PingClient(id, loc)
				if err != nil {
					fail("PingClient(%s): %v", id, err)
					return
				}
				if resp.Time < last {
					fail("PingClient(%s): time went backwards %d -> %d", id, last, resp.Time)
					return
				}
				last = resp.Time
				if len(resp.Types) == 0 {
					fail("PingClient(%s): empty response", id)
					return
				}
			}
		}(ids[i])
	}
	for i := 0; i < estimators; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.EstimatePrice(id, loc); err != nil && !errors.Is(err, ErrRateLimited) {
					fail("EstimatePrice(%s): %v", id, err)
					return
				}
				if _, err := s.EstimateTime(id, loc); err != nil && !errors.Is(err, ErrRateLimited) {
					fail("EstimateTime(%s): %v", id, err)
					return
				}
			}
		}(ids[pingers+i])
	}
	// Registration churn across all shards while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for !stop.Load() {
			s.Register(fmt.Sprintf("churn-%04d", n))
			if n%7 == 0 {
				s.Accounts()
			}
			n++
		}
	}()
	for i := 0; i < steps; i++ {
		s.Step()
	}
	stop.Store(true)
	wg.Wait()
}

// TestConcurrentPartnerMapDuringSteps covers the remaining snapshot-served
// surface under the same churn.
func TestConcurrentPartnerMapDuringSteps(t *testing.T) {
	s := NewBackend(sim.Manhattan(), 13, false)
	if err := s.RegisterPartner("drv-1", true); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			m, err := s.PartnerMap("drv-1")
			if err != nil || len(m) == 0 {
				t.Errorf("PartnerMap: %v (len %d)", err, len(m))
				stop.Store(true)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		s.Step()
	}
	stop.Store(true)
	wg.Wait()
}

// TestShardedAccountsConcurrent drives the account table from many
// goroutines: registration, auth, and rate-limit charges on overlapping
// IDs must be linearizable per account under -race.
func TestShardedAccountsConcurrent(t *testing.T) {
	s := NewBackend(sim.SanFrancisco(), 3, false)
	loc := center(s)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("acct-%03d", i%37) // deliberate collisions
				s.Register(id)
				if _, err := s.EstimateTime(id, loc); err != nil && !errors.Is(err, ErrRateLimited) {
					t.Errorf("EstimateTime(%s): %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Accounts(); got != 37 {
		t.Fatalf("Accounts() = %d, want 37", got)
	}
	// 8 goroutines * 200 charges = 1600 attempts on 37 accounts; none
	// should have exceeded the per-account limit, so a fresh charge on a
	// cold account still succeeds.
	s.Register("fresh")
	if _, err := s.EstimateTime("fresh", loc); err != nil {
		t.Fatalf("fresh account charge: %v", err)
	}
}
