package api

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
)

// TestRetryBudgetBoundsAggregateRetries pins the retry-budget contract:
// once the token bucket is spent, further calls make exactly one attempt
// instead of amplifying load against a failing backend, and the exhaustion
// is counted.
func TestRetryBudgetBoundsAggregateRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	remote := NewRemote(ts.URL, ts.Client(),
		WithBackoff(fastBackoff), // 4 attempts per call
		WithRetryBudget(2, 0),    // 2 retries total, nothing earned back
		WithoutBreaker(),         // isolate the budget from breaker fast-fails
		WithRegistry(reg))

	// First call: attempt + 2 budgeted retries, then the bucket is empty.
	if _, err := remote.PingClient("c1", geo.LatLng{}); err == nil {
		t.Fatal("expected failure from an all-500 backend")
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("first call made %d attempts, want 3 (1 + 2 budget)", n)
	}
	// Subsequent calls are single attempts: the fleet stops hammering.
	for i := 0; i < 3; i++ {
		calls.Store(0)
		if _, err := remote.PingClient("c1", geo.LatLng{}); err == nil {
			t.Fatal("expected failure")
		}
		if n := calls.Load(); n != 1 {
			t.Fatalf("post-exhaustion call made %d attempts, want 1", n)
		}
	}
	if v := reg.Counter("client_retry_budget_exhausted_total").Value(); v < 3 {
		t.Errorf("client_retry_budget_exhausted_total = %d, want >= 3", v)
	}
}

// TestRetryBudgetRefillsOnSuccess: successful traffic earns retries back,
// so a budget exhausted during an outage recovers with the backend.
func TestRetryBudgetRefillsOnSuccess(t *testing.T) {
	var failing atomic.Bool
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		writePing(w)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(),
		WithBackoff(fastBackoff),
		WithRetryBudget(1, 1), // one token; each success earns one back
		WithoutBreaker())

	// Burn the budget.
	failing.Store(true)
	if _, err := remote.PingClient("c1", geo.LatLng{}); err == nil {
		t.Fatal("expected failure")
	}
	// Heal the backend; one success refills one token...
	failing.Store(false)
	if _, err := remote.PingClient("c1", geo.LatLng{}); err != nil {
		t.Fatal(err)
	}
	// ...which funds exactly one retry on the next flap.
	failing.Store(true)
	calls.Store(0)
	if _, err := remote.PingClient("c1", geo.LatLng{}); err == nil {
		t.Fatal("expected failure")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("post-refill call made %d attempts, want 2 (1 + 1 refilled)", n)
	}
}

// TestDeadlineHeaderStamped: calls whose context carries a deadline
// advertise the remaining budget to the server.
func TestDeadlineHeaderStamped(t *testing.T) {
	headerCh := make(chan string, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case headerCh <- r.Header.Get("X-Request-Deadline-Ms"):
		default:
		}
		writePing(w)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithoutRetry())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := remote.PingClientCtx(ctx, "c1", geo.LatLng{}); err != nil {
		t.Fatal(err)
	}
	got := <-headerCh
	if got == "" {
		t.Fatal("deadline header missing on a call with a context deadline")
	}

	// No deadline, no header.
	headerCh = make(chan string, 1)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case headerCh <- r.Header.Get("X-Request-Deadline-Ms"):
		default:
		}
		writePing(w)
	}))
	defer ts2.Close()
	remote2 := NewRemote(ts2.URL, ts2.Client(), WithoutRetry())
	if _, err := remote2.PingClient("c1", geo.LatLng{}); err != nil {
		t.Fatal(err)
	}
	if got := <-headerCh; got != "" {
		t.Fatalf("deadline header %q stamped without a context deadline", got)
	}
}
