package api

import "sync"

// accountShards is the number of independently locked account shards.
// Before sharding, every request — including the lock-free snapshot
// queries — funneled through one account mutex for auth; 16 shards keyed
// by an FNV-1a hash of the client ID let unrelated accounts authenticate
// and charge their rate limits concurrently. Must be a power of two.
const accountShards = 16

// accountShard is one lock domain of the table.
type accountShard struct {
	mu       sync.Mutex
	accounts map[string]*account
	partners map[string]bool
}

// accountTable is the sharded registry of user accounts and partner
// flags. The zero value is not usable; call init first.
type accountTable struct {
	shards [accountShards]accountShard
}

func (t *accountTable) init() {
	for i := range t.shards {
		t.shards[i].accounts = make(map[string]*account)
		t.shards[i].partners = make(map[string]bool)
	}
}

// shard returns the shard owning id (FNV-1a, inlined for the hot path).
func (t *accountTable) shard(id string) *accountShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &t.shards[h&(accountShards-1)]
}

// register creates the account if absent; reports whether it was created.
func (t *accountTable) register(id string) bool {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[id]; ok {
		return false
	}
	s.accounts[id] = &account{}
	return true
}

// registerPartner marks id as a partner, creating the account if absent;
// reports whether a new account was created.
func (t *accountTable) registerPartner(id string) (created bool) {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[id]; !ok {
		s.accounts[id] = &account{}
		created = true
	}
	s.partners[id] = true
	return created
}

// exists reports whether id is registered.
func (t *accountTable) exists(id string) bool {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.accounts[id]
	return ok
}

// isPartner reports whether id is a registered partner.
func (t *accountTable) isPartner(id string) bool {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partners[id]
}

// chargeResult is the outcome of a rate-limit charge attempt.
type chargeResult int

const (
	chargeOK chargeResult = iota
	chargeUnknownAccount
	chargeLimited
)

// charge validates id and charges one API call against the hourly rate
// limit at simulation time now.
func (t *accountTable) charge(id string, now int64) chargeResult {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accounts[id]
	if !ok {
		return chargeUnknownAccount
	}
	bucket := now / 3600
	if a.hourBucket != bucket {
		a.hourBucket = bucket
		a.calls = 0
	}
	if a.calls >= RateLimitPerHour {
		return chargeLimited
	}
	a.calls++
	return chargeOK
}

// count returns the number of registered accounts, locking one shard at a
// time so the count never blocks the whole request stream.
func (t *accountTable) count() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.accounts)
		s.mu.Unlock()
	}
	return n
}
