package api

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

func TestLocationFuzzBounded(t *testing.T) {
	s := testBackend(t, false)
	loc := center(s)
	clean, err := s.PingClient("tester", loc)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLocationFuzz(25)
	fuzzed, err := s.PingClient("tester", loc)
	if err != nil {
		t.Fatal(err)
	}
	proj := s.World().Projection()
	cx, fx := clean.Status(core.UberX), fuzzed.Status(core.UberX)
	if len(cx.Cars) != len(fx.Cars) {
		t.Fatalf("car counts differ: %d vs %d", len(cx.Cars), len(fx.Cars))
	}
	moved := 0
	for i := range cx.Cars {
		if cx.Cars[i].ID != fx.Cars[i].ID {
			t.Fatalf("fuzz must not change car identity or order")
		}
		d := geo.Dist(proj.ToPlane(cx.Cars[i].Pos), proj.ToPlane(fx.Cars[i].Pos))
		if d > 25.01 {
			t.Errorf("car %d displaced %.1f m, cap is 25", i, d)
		}
		if d > 0.5 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("fuzz had no effect")
	}
}

func TestLocationFuzzDeterministicAcrossClients(t *testing.T) {
	// The §3.4 calibration finding must survive perturbation: co-located
	// clients see identical (fuzzed) positions.
	s := testBackend(t, false)
	s.SetLocationFuzz(25)
	s.Register("other")
	loc := center(s)
	a, err := s.PingClient("tester", loc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PingClient("other", loc)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Status(core.UberX).Cars, b.Status(core.UberX).Cars
	if len(ca) != len(cb) {
		t.Fatal("car counts differ")
	}
	for i := range ca {
		if ca[i].ID != cb[i].ID || ca[i].Pos != cb[i].Pos {
			t.Fatalf("co-located clients disagree at %d: %+v vs %+v", i, ca[i], cb[i])
		}
	}
}

func TestLocationFuzzStableWithinWindow(t *testing.T) {
	// Within a 30-second window the same car keeps the same perturbed
	// position (no artificial motion).
	s := testBackend(t, false)
	proj := s.World().Projection()
	p := fuzzPos(proj, 25, "car-x", 990, center(s))
	q := fuzzPos(proj, 25, "car-x", 1015, center(s)) // same 30 s window [990,1020)
	r := fuzzPos(proj, 25, "car-x", 1020, center(s)) // next window
	if p != q {
		t.Error("perturbation changed within a window")
	}
	if p == r {
		t.Error("perturbation never re-rolls")
	}
}
