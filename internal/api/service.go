// Package api implements the emulated Uber service surface: the
// pingClient stream the smartphone app consumes every five seconds, and
// the estimates/price + estimates/time HTTP API endpoints with their
// 1,000 requests/hour/account rate limit (§3.2, §3.3).
//
// Service implements core.Service in-process (how the experiment harness
// drives it, at simulation speed); Server exposes the same service over
// HTTP for cmd/uberd.
package api

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/surge"
)

// RateLimitPerHour is Uber's documented API rate limit per user account.
const RateLimitPerHour = 1000

// Errors returned by the service.
var (
	ErrUnknownAccount = errors.New("api: unknown account")
	ErrRateLimited    = errors.New("api: rate limit exceeded")
	ErrOutOfService   = errors.New("api: location outside service region")
)

// account tracks one registered user's API usage.
type account struct {
	hourBucket int64
	calls      int
}

// queryState is one published epoch of the lock-free query path: an
// immutable world snapshot paired with the surge engine's immutable read
// view, both taken at the end of the same tick.
type queryState struct {
	world *sim.Snapshot
	surge *surge.View
}

// Service answers client and API queries against a running backend.
// All methods are safe for concurrent use.
//
// Concurrency model: the query endpoints (PingClient, EstimatePrice,
// EstimateTime, PartnerMap) are lock-free. Step holds mu while advancing
// the world and engine, then publishes an immutable queryState through an
// atomic pointer; queries load the pointer and serve entirely from that
// snapshot, so they never contend with Step or with each other. Answers
// are at most one tick (5 simulated seconds) stale — the same quantization
// the surge clock already imposes on the data. Account bookkeeping (auth
// and rate-limit charges) lives in a 16-way sharded table with per-shard
// mutexes, so the per-request auth write doesn't serialize the request
// stream either.
type Service struct {
	mu     sync.Mutex // serializes Step and the world/engine writers
	world  *sim.World
	engine surge.Pricer
	fares  map[core.VehicleType]core.FareSchedule

	state    atomic.Pointer[queryState]
	accounts accountTable

	// events holds the optional bus sinks (see SetEventSinks); swapped
	// atomically because the query path that fires them is lock-free.
	events atomic.Pointer[eventSinks]

	// locationFuzz perturbs reported car positions (§3.3: Uber stated
	// car locations "may be slightly perturbed to protect drivers'
	// safety"). 0 disables. The perturbation is deterministic per
	// (car, 30-second window) so co-located clients still agree. Stored
	// as float64 bits so the lock-free query path can read it atomically.
	locationFuzz atomic.Uint64

	// offered products (fleet share > 0), precomputed and immutable.
	offered []core.VehicleType

	// nil-safe metric handles; zero until Instrument is called.
	mRegistrations *obs.Counter
	mRateLimited   *obs.Counter
	mJitterServed  *obs.Counter
}

var _ core.Service = (*Service)(nil)

// NewService wraps a world/engine pair — any surge.Pricer works; the
// query path reads only the engine's published View. Accounts must be
// registered before they can query (the paper created 43
// credit-card-backed accounts).
func NewService(w *sim.World, e surge.Pricer) *Service {
	s := &Service{
		world:  w,
		engine: e,
		fares:  core.DefaultFares(),
	}
	s.accounts.init()
	shares := sim.NormalizedShares(w.Profile().FleetShare)
	for _, vt := range core.AllVehicleTypes() {
		if shares[int(vt)] > 0 {
			s.offered = append(s.offered, vt)
		}
	}
	s.publish()
	return s
}

// publish freezes the current world/engine state into a fresh queryState
// epoch. Callers must hold mu (or be the constructor).
func (s *Service) publish() {
	s.state.Store(&queryState{world: s.world.Snapshot(), surge: s.engine.View()})
}

// Instrument wires the service's counters into reg and cascades to the
// world and engine, so one call instruments the whole backend:
//
//	api_registrations_total    accounts created
//	api_rate_limited_total     estimates requests rejected with 429
//	api_jitter_served_total    pings answered inside a jitter window
func (s *Service) Instrument(reg *obs.Registry) {
	s.mRegistrations = reg.Counter("api_registrations_total")
	s.mRateLimited = reg.Counter("api_rate_limited_total")
	s.mJitterServed = reg.Counter("api_jitter_served_total")
	s.world.Instrument(reg)
	s.engine.Instrument(reg)
}

// Register creates an account for clientID; registering twice is a no-op.
// The error is always nil for the in-process service; it exists so Service
// satisfies client.Registrar, whose remote implementation can fail.
func (s *Service) Register(clientID string) error {
	if s.accounts.register(clientID) {
		s.mRegistrations.Inc()
		s.emitRegister(clientID, s.Now())
	}
	return nil
}

// Accounts returns the number of registered accounts.
func (s *Service) Accounts() int { return s.accounts.count() }

// Step advances the backend one tick and publishes a fresh snapshot epoch
// to the query path. Exposed so a real-time shell (cmd/uberd) and the
// measurement campaign can drive the same instance.
func (s *Service) Step() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.world.Step()
	s.engine.Step(s.world.Now())
	s.publish()
}

// RunUntil advances the backend to simulation time end.
func (s *Service) RunUntil(end int64) {
	for s.Now() < end {
		s.Step()
	}
}

// Now returns the backend's simulation time (of the published snapshot).
func (s *Service) Now() int64 {
	return s.state.Load().world.Now
}

// EpochPublished reports whether a query epoch has been published — the
// readiness condition for the lock-free query path (non-nil
// atomic.Pointer). True from construction on; it exists so /readyz states
// the invariant instead of assuming it.
func (s *Service) EpochPublished() bool {
	return s.state.Load() != nil
}

// World exposes the underlying world for ground-truth validation in tests
// and experiments. Production callers use only core.Service.
func (s *Service) World() *sim.World { return s.world }

// Engine exposes the pricing engine for ground-truth validation.
func (s *Service) Engine() surge.Pricer { return s.engine }

// auth validates the account without rate limiting (pingClient is not
// rate limited: the app itself pings every 5 seconds, §3.3).
func (s *Service) auth(clientID string) error {
	if !s.accounts.exists(clientID) {
		return fmt.Errorf("%w: %q", ErrUnknownAccount, clientID)
	}
	return nil
}

// authLimited validates the account and charges one API call against the
// hourly rate limit at simulation time now.
func (s *Service) authLimited(clientID string, now int64) error {
	switch s.accounts.charge(clientID, now) {
	case chargeUnknownAccount:
		return fmt.Errorf("%w: %q", ErrUnknownAccount, clientID)
	case chargeLimited:
		s.mRateLimited.Inc()
		return ErrRateLimited
	}
	return nil
}

// PingClient emulates the Client app's 5-second ping: for each offered
// product it returns the eight nearest available cars (randomized session
// IDs and path vectors), the EWT, and the surge multiplier — including,
// when the April bug is active, per-client jitter. The response is served
// entirely from the published snapshot epoch; no lock is taken.
func (s *Service) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	if err := s.auth(clientID); err != nil {
		return nil, err
	}
	st := s.state.Load()
	snap, sv := st.world, st.surge
	p := snap.Proj.ToPlane(loc)
	if !snap.Region.Contains(p) {
		return nil, ErrOutOfService
	}
	area := snap.AreaOf(p)
	now := snap.Now
	fuzz := s.fuzzMeters()
	resp := &core.PingResponse{Time: now}
	for _, vt := range s.offered {
		ts := core.TypeStatus{
			Type:       vt,
			TypeName:   vt.String(),
			Cars:       snap.NearestCars(vt, p, core.MaxVisibleCars),
			EWTSeconds: snap.EWT(vt, p),
			Surge:      1,
		}
		if vt.Surgeable() {
			ts.Surge = sv.ClientMultiplier(clientID, area, now)
		}
		if fuzz > 0 {
			for i := range ts.Cars {
				ts.Cars[i].Pos = fuzzPos(snap.Proj, fuzz, ts.Cars[i].ID, now, ts.Cars[i].Pos)
			}
		}
		resp.Types = append(resp.Types, ts)
	}
	if sv.InJitter(clientID, now) {
		s.mJitterServed.Inc()
	}
	s.emitPing(clientID, loc, area, resp)
	return resp, nil
}

// SetLocationFuzz enables deterministic perturbation of reported car
// positions by up to meters.
func (s *Service) SetLocationFuzz(meters float64) {
	s.locationFuzz.Store(math.Float64bits(meters))
}

func (s *Service) fuzzMeters() float64 {
	return math.Float64frombits(s.locationFuzz.Load())
}

// fuzzPos displaces a reported position inside a disc of radius fuzz,
// deterministically per (car, 30-second window).
func fuzzPos(proj *geo.Projection, fuzz float64, carID string, now int64, ll geo.LatLng) geo.LatLng {
	h := fnv.New64a()
	h.Write([]byte(carID))
	var buf [8]byte
	w := now / 30
	for i := 0; i < 8; i++ {
		buf[i] = byte(w >> (8 * i))
	}
	h.Write(buf[:])
	v := h.Sum64()
	ang := float64(v&0xFFFF) / 65536 * 2 * math.Pi
	rad := math.Sqrt(float64(v>>16&0xFFFF)/65536) * fuzz
	p := proj.ToPlane(ll)
	return proj.ToLatLng(geo.Point{X: p.X + rad*math.Cos(ang), Y: p.Y + rad*math.Sin(ang)})
}

// EstimatePrice emulates the estimates/price endpoint: fare ranges for a
// nominal 5 km / 15 minute trip under the current API-stream surge
// multiplier (no jitter), rate limited per account. Lock-free.
func (s *Service) EstimatePrice(clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	st := s.state.Load()
	snap, sv := st.world, st.surge
	now := snap.Now
	if err := s.authLimited(clientID, now); err != nil {
		return nil, err
	}
	p := snap.Proj.ToPlane(loc)
	if !snap.Region.Contains(p) {
		return nil, ErrOutOfService
	}
	area := snap.AreaOf(p)
	out := make([]core.PriceEstimate, 0, len(s.offered))
	for _, vt := range s.offered {
		m := 1.0
		if vt.Surgeable() {
			m = sv.APIMultiplier(area, now)
		}
		const nominalMeters, nominalSeconds = 5000.0, 900.0
		mid := s.fares[vt].Fare(nominalMeters, nominalSeconds, m)
		out = append(out, core.PriceEstimate{
			TypeName: vt.String(),
			Surge:    m,
			LowUSD:   mid * 0.8,
			HighUSD:  mid * 1.2,
			Currency: "USD",
		})
	}
	return out, nil
}

// EstimateTime emulates the estimates/time endpoint: EWT per product,
// rate limited per account. Lock-free.
func (s *Service) EstimateTime(clientID string, loc geo.LatLng) ([]core.TimeEstimate, error) {
	st := s.state.Load()
	snap := st.world
	if err := s.authLimited(clientID, snap.Now); err != nil {
		return nil, err
	}
	p := snap.Proj.ToPlane(loc)
	if !snap.Region.Contains(p) {
		return nil, ErrOutOfService
	}
	out := make([]core.TimeEstimate, 0, len(s.offered))
	for _, vt := range s.offered {
		out = append(out, core.TimeEstimate{
			TypeName:   vt.String(),
			EWTSeconds: snap.EWT(vt, p),
		})
	}
	return out, nil
}

// NewBackend is a convenience constructor: build the world, engine, and
// service for a city profile in one call. The simulation uses
// GOMAXPROCS-many tick workers; results are identical for every worker
// count, so callers that don't care never need NewBackendWorkers.
func NewBackend(profile *sim.CityProfile, seed int64, jitter bool) *Service {
	return NewBackendWorkers(profile, seed, jitter, 0)
}

// NewBackendWorkers is NewBackend with an explicit simulation worker
// count for the phase-parallel tick (0 = GOMAXPROCS).
func NewBackendWorkers(profile *sim.CityProfile, seed int64, jitter bool, workers int) *Service {
	w := sim.NewWorld(sim.Config{Profile: profile, Seed: seed, Workers: workers})
	e := surge.New(w, surge.Config{Params: profile.Surge, Seed: seed, Jitter: jitter})
	return NewService(w, e)
}

// NewBackendEngine is NewBackendWorkers with a selectable pricing engine
// ("", "mult2015", "additive", "withholding"); an unknown engine name is
// an error for the caller's flag handling to surface.
func NewBackendEngine(profile *sim.CityProfile, seed int64, jitter bool, workers int, engine string) (*Service, error) {
	w := sim.NewWorld(sim.Config{Profile: profile, Seed: seed, Workers: workers})
	e, err := surge.NewPricer(w, engine, surge.Config{Params: profile.Surge, Seed: seed, Jitter: jitter})
	if err != nil {
		return nil, err
	}
	return NewService(w, e), nil
}
