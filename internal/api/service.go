// Package api implements the emulated Uber service surface: the
// pingClient stream the smartphone app consumes every five seconds, and
// the estimates/price + estimates/time HTTP API endpoints with their
// 1,000 requests/hour/account rate limit (§3.2, §3.3).
//
// Service implements core.Service in-process (how the experiment harness
// drives it, at simulation speed); Server exposes the same service over
// HTTP for cmd/uberd.
package api

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/surge"
)

// RateLimitPerHour is Uber's documented API rate limit per user account.
const RateLimitPerHour = 1000

// Errors returned by the service.
var (
	ErrUnknownAccount = errors.New("api: unknown account")
	ErrRateLimited    = errors.New("api: rate limit exceeded")
	ErrOutOfService   = errors.New("api: location outside service region")
)

// account tracks one registered user's API usage.
type account struct {
	hourBucket int64
	calls      int
}

// Service answers client and API queries against a running backend.
// All methods are safe for concurrent use.
//
// Locking: mu guards the world/engine pair — queries take it shared, so
// the read-dominant pingClient/estimates endpoints run concurrently and
// only Step (and the rare setters) exclude them. Account bookkeeping
// lives under its own amu so the per-request auth write (rate-limit
// charge) never serializes the world readers behind it. Lock order is
// always mu before amu; no path holds amu while acquiring mu.
type Service struct {
	mu     sync.RWMutex
	world  *sim.World
	engine *surge.Engine
	fares  map[core.VehicleType]core.FareSchedule

	amu      sync.Mutex
	accounts map[string]*account
	partners map[string]bool

	// locationFuzz perturbs reported car positions (§3.3: Uber stated
	// car locations "may be slightly perturbed to protect drivers'
	// safety"). 0 disables. The perturbation is deterministic per
	// (car, 30-second window) so co-located clients still agree.
	locationFuzz float64

	// offered products (fleet share > 0), precomputed and immutable.
	offered []core.VehicleType

	// nil-safe metric handles; zero until Instrument is called.
	mRegistrations *obs.Counter
	mRateLimited   *obs.Counter
	mJitterServed  *obs.Counter
}

var _ core.Service = (*Service)(nil)

// NewService wraps a world/engine pair. Accounts must be registered before
// they can query (the paper created 43 credit-card-backed accounts).
func NewService(w *sim.World, e *surge.Engine) *Service {
	s := &Service{
		world:    w,
		engine:   e,
		fares:    core.DefaultFares(),
		accounts: make(map[string]*account),
		partners: make(map[string]bool),
	}
	shares := sim.NormalizedShares(w.Profile().FleetShare)
	for _, vt := range core.AllVehicleTypes() {
		if shares[int(vt)] > 0 {
			s.offered = append(s.offered, vt)
		}
	}
	return s
}

// Instrument wires the service's counters into reg and cascades to the
// world and engine, so one call instruments the whole backend:
//
//	api_registrations_total    accounts created
//	api_rate_limited_total     estimates requests rejected with 429
//	api_jitter_served_total    pings answered inside a jitter window
func (s *Service) Instrument(reg *obs.Registry) {
	s.mRegistrations = reg.Counter("api_registrations_total")
	s.mRateLimited = reg.Counter("api_rate_limited_total")
	s.mJitterServed = reg.Counter("api_jitter_served_total")
	s.world.Instrument(reg)
	s.engine.Instrument(reg)
}

// Register creates an account for clientID; registering twice is a no-op.
func (s *Service) Register(clientID string) {
	s.amu.Lock()
	defer s.amu.Unlock()
	if _, ok := s.accounts[clientID]; !ok {
		s.accounts[clientID] = &account{}
		s.mRegistrations.Inc()
	}
}

// Accounts returns the number of registered accounts.
func (s *Service) Accounts() int {
	s.amu.Lock()
	defer s.amu.Unlock()
	return len(s.accounts)
}

// Step advances the backend one tick. Exposed so a real-time shell
// (cmd/uberd) and the measurement campaign can drive the same instance.
func (s *Service) Step() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.world.Step()
	s.engine.Step(s.world.Now())
}

// RunUntil advances the backend to simulation time end.
func (s *Service) RunUntil(end int64) {
	for s.Now() < end {
		s.Step()
	}
}

// Now returns the backend's simulation time.
func (s *Service) Now() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.world.Now()
}

// World exposes the underlying world for ground-truth validation in tests
// and experiments. Production callers use only core.Service.
func (s *Service) World() *sim.World { return s.world }

// Engine exposes the surge engine for ground-truth validation.
func (s *Service) Engine() *surge.Engine { return s.engine }

// auth validates the account without rate limiting (pingClient is not
// rate limited: the app itself pings every 5 seconds, §3.3).
func (s *Service) auth(clientID string) error {
	s.amu.Lock()
	defer s.amu.Unlock()
	if _, ok := s.accounts[clientID]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAccount, clientID)
	}
	return nil
}

// authLimited validates the account and charges one API call against the
// hourly rate limit. now is the simulation time (read under mu by the
// caller; amu alone guards the account state).
func (s *Service) authLimited(clientID string, now int64) error {
	s.amu.Lock()
	defer s.amu.Unlock()
	a, ok := s.accounts[clientID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAccount, clientID)
	}
	bucket := now / 3600
	if a.hourBucket != bucket {
		a.hourBucket = bucket
		a.calls = 0
	}
	if a.calls >= RateLimitPerHour {
		s.mRateLimited.Inc()
		return ErrRateLimited
	}
	a.calls++
	return nil
}

// PingClient emulates the Client app's 5-second ping: for each offered
// product it returns the eight nearest available cars (randomized session
// IDs and path vectors), the EWT, and the surge multiplier — including,
// when the April bug is active, per-client jitter.
func (s *Service) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.auth(clientID); err != nil {
		return nil, err
	}
	p := s.world.Projection().ToPlane(loc)
	if !s.world.Profile().Region.Contains(p) {
		return nil, ErrOutOfService
	}
	area := sim.AreaOf(s.world.Areas(), p)
	now := s.world.Now()
	resp := &core.PingResponse{Time: now}
	for _, vt := range s.offered {
		st := core.TypeStatus{
			Type:       vt,
			TypeName:   vt.String(),
			Cars:       s.world.NearestCars(vt, p, core.MaxVisibleCars),
			EWTSeconds: s.world.EWT(vt, p),
			Surge:      1,
		}
		if vt.Surgeable() {
			st.Surge = s.engine.ClientMultiplier(clientID, area, now)
		}
		if s.locationFuzz > 0 {
			for i := range st.Cars {
				st.Cars[i].Pos = s.fuzzPos(st.Cars[i].ID, now, st.Cars[i].Pos)
			}
		}
		resp.Types = append(resp.Types, st)
	}
	if s.engine.InJitter(clientID, now) {
		s.mJitterServed.Inc()
	}
	return resp, nil
}

// SetLocationFuzz enables deterministic perturbation of reported car
// positions by up to meters.
func (s *Service) SetLocationFuzz(meters float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locationFuzz = meters
}

// fuzzPos displaces a reported position inside a disc of radius
// locationFuzz, deterministically per (car, 30-second window).
func (s *Service) fuzzPos(carID string, now int64, ll geo.LatLng) geo.LatLng {
	h := fnv.New64a()
	h.Write([]byte(carID))
	var buf [8]byte
	w := now / 30
	for i := 0; i < 8; i++ {
		buf[i] = byte(w >> (8 * i))
	}
	h.Write(buf[:])
	v := h.Sum64()
	ang := float64(v&0xFFFF) / 65536 * 2 * math.Pi
	rad := math.Sqrt(float64(v>>16&0xFFFF)/65536) * s.locationFuzz
	proj := s.world.Projection()
	p := proj.ToPlane(ll)
	return proj.ToLatLng(geo.Point{X: p.X + rad*math.Cos(ang), Y: p.Y + rad*math.Sin(ang)})
}

// EstimatePrice emulates the estimates/price endpoint: fare ranges for a
// nominal 5 km / 15 minute trip under the current API-stream surge
// multiplier (no jitter), rate limited per account.
func (s *Service) EstimatePrice(clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.authLimited(clientID, s.world.Now()); err != nil {
		return nil, err
	}
	p := s.world.Projection().ToPlane(loc)
	if !s.world.Profile().Region.Contains(p) {
		return nil, ErrOutOfService
	}
	area := sim.AreaOf(s.world.Areas(), p)
	now := s.world.Now()
	out := make([]core.PriceEstimate, 0, len(s.offered))
	for _, vt := range s.offered {
		m := 1.0
		if vt.Surgeable() {
			m = s.engine.APIMultiplier(area, now)
		}
		const nominalMeters, nominalSeconds = 5000.0, 900.0
		mid := s.fares[vt].Fare(nominalMeters, nominalSeconds, m)
		out = append(out, core.PriceEstimate{
			TypeName: vt.String(),
			Surge:    m,
			LowUSD:   mid * 0.8,
			HighUSD:  mid * 1.2,
			Currency: "USD",
		})
	}
	return out, nil
}

// EstimateTime emulates the estimates/time endpoint: EWT per product,
// rate limited per account.
func (s *Service) EstimateTime(clientID string, loc geo.LatLng) ([]core.TimeEstimate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.authLimited(clientID, s.world.Now()); err != nil {
		return nil, err
	}
	p := s.world.Projection().ToPlane(loc)
	if !s.world.Profile().Region.Contains(p) {
		return nil, ErrOutOfService
	}
	out := make([]core.TimeEstimate, 0, len(s.offered))
	for _, vt := range s.offered {
		out = append(out, core.TimeEstimate{
			TypeName:   vt.String(),
			EWTSeconds: s.world.EWT(vt, p),
		})
	}
	return out, nil
}

// NewBackend is a convenience constructor: build the world, engine, and
// service for a city profile in one call.
func NewBackend(profile *sim.CityProfile, seed int64, jitter bool) *Service {
	w := sim.NewWorld(sim.Config{Profile: profile, Seed: seed})
	e := surge.New(w, surge.Config{Params: profile.Surge, Seed: seed, Jitter: jitter})
	return NewService(w, e)
}
