package api

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/geo"
)

// PartnerArea is one polygon of the Partner (driver) app's surge map
// (Fig 1): the area outline and its current multiplier. Unlike the Client
// app, the Partner app shows the whole city's surge at once — and no car
// locations.
type PartnerArea struct {
	Area     int          `json:"area"`
	Vertices []geo.LatLng `json:"vertices"`
	Surge    float64      `json:"surge"`
}

// ErrNotPartner is returned when a non-driver account queries the
// Partner surface.
var ErrNotPartner = errors.New("api: account is not a registered partner")

// RegisterPartner creates a driver account. The paper notes Uber requires
// drivers to sign a data-collection prohibition before using this
// surface; agreeing is a precondition here too (the authors declined, and
// reconstructed the map from the public API instead — see
// internal/surgemap).
func (s *Service) RegisterPartner(driverID string, agreeNoScraping bool) error {
	if !agreeNoScraping {
		return errors.New("api: partners must accept the data-collection agreement")
	}
	if s.accounts.registerPartner(driverID) {
		s.mRegistrations.Inc()
	}
	return nil
}

// PartnerMap returns the surge map the Partner app renders: every surge
// area polygon with its current multiplier (API stream semantics — the
// driver map has no jitter). Served from the published snapshot, lock-free.
func (s *Service) PartnerMap(driverID string) ([]PartnerArea, error) {
	if !s.accounts.isPartner(driverID) {
		return nil, ErrNotPartner
	}
	st := s.state.Load()
	snap, sv := st.world, st.surge
	out := make([]PartnerArea, 0, len(snap.Areas))
	for a, pg := range snap.Areas {
		pa := PartnerArea{Area: a, Surge: sv.APIMultiplier(a, snap.Now)}
		for _, v := range pg.Vertices {
			pa.Vertices = append(pa.Vertices, snap.Proj.ToLatLng(v))
		}
		out = append(out, pa)
	}
	return out, nil
}

// handlePartnerMap serves GET /partner/surgeMap?driver=...
func (s *Server) handlePartnerMap(w http.ResponseWriter, r *http.Request) {
	driver := r.URL.Query().Get("driver")
	if driver == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "driver parameter required"})
		return
	}
	m, err := s.svc.PartnerMap(driver)
	if err != nil {
		if errors.Is(err, ErrNotPartner) {
			writeJSON(w, http.StatusForbidden, map[string]string{"error": err.Error()})
			return
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handlePartnerLogin serves POST /partner/login.
func (s *Server) handlePartnerLogin(w http.ResponseWriter, r *http.Request) {
	var body struct {
		DriverID string `json:"driver_id"`
		Agree    bool   `json:"agree_no_scraping"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.DriverID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "driver_id required"})
		return
	}
	if err := s.svc.RegisterPartner(body.DriverID, body.Agree); err != nil {
		writeJSON(w, http.StatusForbidden, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
