package api

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// testObsHTTP builds an instrumented server over a warmed backend.
func testObsHTTP(t *testing.T) (*Service, *obs.Registry, *obs.Tracer, *httptest.Server) {
	t.Helper()
	svc := NewBackend(sim.Manhattan(), 3, false)
	svc.RunUntil(600)
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	tracer := obs.NewTracer(1024)
	ts := httptest.NewServer(NewServer(svc, WithMetrics(reg), WithTracer(tracer)))
	t.Cleanup(ts.Close)
	return svc, reg, tracer, ts
}

func TestMiddlewareRecordsStatusAndLatency(t *testing.T) {
	svc, reg, tracer, ts := testObsHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())
	if err := remote.Register("mw"); err != nil {
		t.Fatal(err)
	}
	loc := center(svc)
	for i := 0; i < 3; i++ {
		if _, err := remote.PingClient("mw", loc); err != nil {
			t.Fatal(err)
		}
	}
	// A bad probe -> 400 on the same endpoint.
	resp, err := http.Get(ts.URL + "/pingClient?client=mw&lat=abc&lng=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ping := obs.L("endpoint", "/pingClient")
	if got := reg.Counter("http_requests_total", ping, obs.L("class", "2xx")).Value(); got != 3 {
		t.Errorf("2xx count = %d, want 3", got)
	}
	if got := reg.Counter("http_requests_total", ping, obs.L("class", "4xx")).Value(); got != 1 {
		t.Errorf("4xx count = %d, want 1", got)
	}
	if got := reg.Counter("http_requests_total", ping, obs.L("class", "400")).Value(); got != 1 {
		t.Errorf("400 count = %d, want 1", got)
	}
	hist := reg.Histogram("http_request_duration_seconds", obs.DefLatencyBuckets, ping)
	if s := hist.Snapshot(); s.Count != 4 || s.Quantile(0.5) <= 0 {
		t.Errorf("latency histogram count = %d p50 = %g", s.Count, s.Quantile(0.5))
	}
	// The login endpoint is tracked separately.
	if got := reg.Counter("http_requests_total", obs.L("endpoint", "/login"), obs.L("class", "2xx")).Value(); got != 1 {
		t.Errorf("login 2xx count = %d, want 1", got)
	}
	// Every request left a span with endpoint + status attributes.
	spans := tracer.Drain()
	byStatus := map[string]int{}
	for _, sp := range spans {
		if sp.Name != "http" {
			t.Fatalf("span name = %q", sp.Name)
		}
		byStatus[sp.Attr("status")]++
	}
	if byStatus["200"] != 4 || byStatus["400"] != 1 { // login + 3 pings, 1 bad probe
		t.Errorf("span statuses = %v", byStatus)
	}
}

func TestMiddlewareRecords429AndServiceCounters(t *testing.T) {
	svc, reg, _, ts := testObsHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())
	if err := remote.Register("heavy"); err != nil {
		t.Fatal(err)
	}
	loc := center(svc)
	// Exhaust the hourly budget in-process, then hit the limit over HTTP.
	for i := 0; i < RateLimitPerHour; i++ {
		if _, err := svc.EstimatePrice("heavy", loc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := remote.EstimatePrice("heavy", loc); err != ErrRateLimited {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	price := obs.L("endpoint", "/estimates/price")
	if got := reg.Counter("http_requests_total", price, obs.L("class", "429")).Value(); got != 1 {
		t.Errorf("429 count = %d, want 1", got)
	}
	if got := reg.Counter("http_requests_total", price, obs.L("class", "4xx")).Value(); got != 1 {
		t.Errorf("4xx count = %d, want 1", got)
	}
	if got := reg.Counter("api_rate_limited_total").Value(); got != 1 {
		t.Errorf("api_rate_limited_total = %d, want 1", got)
	}
	if got := reg.Counter("api_registrations_total").Value(); got != 1 {
		t.Errorf("api_registrations_total = %d, want 1", got)
	}
}

func TestMetricsExpositionEndToEnd(t *testing.T) {
	svc, reg, _, ts := testObsHTTP(t)
	remote := NewRemote(ts.URL, ts.Client())
	if err := remote.Register("expo"); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.PingClient("expo", center(svc)); err != nil {
		t.Fatal(err)
	}
	svc.Step() // populate sim gauges

	// Serve the registry the way cmd/uberd mounts it at /metrics.
	ms := httptest.NewServer(reg.Handler())
	defer ms.Close()
	resp, err := http.Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{class="2xx",endpoint="/pingClient"} 1`,
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{endpoint="/pingClient",le="+Inf"} 1`,
		"# TYPE sim_drivers_online gauge",
		"# TYPE sim_step_duration_seconds histogram",
		"api_registrations_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestQueryArgsRejectNonFinite(t *testing.T) {
	svc, ts := testHTTP(t)
	svc.Register("nan")
	for _, q := range []string{
		"lat=NaN&lng=0", "lat=0&lng=NaN",
		"lat=Inf&lng=0", "lat=0&lng=-Inf",
		"lat=+Inf&lng=0", "lat=inf&lng=0",
	} {
		resp, err := http.Get(ts.URL + "/pingClient?client=nan&" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestLoginBodyCapped(t *testing.T) {
	_, ts := testHTTP(t)
	// A 1 MiB body must be rejected, not buffered.
	huge := bytes.Repeat([]byte("x"), 1<<20)
	resp, err := http.Post(ts.URL+"/login", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	// A normal-sized login still works.
	resp, err = http.Post(ts.URL+"/login", "application/json",
		strings.NewReader(`{"client_id":"ok"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
}

// TestConcurrentQueriesAndSteps exercises the RWMutex split: readers
// (pings, estimates) run concurrently with writers (Step) and account
// churn. Run with -race to validate the locking.
func TestConcurrentQueriesAndSteps(t *testing.T) {
	svc := NewBackend(sim.Manhattan(), 7, true)
	svc.RunUntil(600)
	loc := center(svc)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		id := fmt.Sprintf("c%d", c)
		svc.Register(id)
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := svc.PingClient(id, loc); err != nil {
					t.Error(err)
					return
				}
				if _, err := svc.EstimateTime(id, loc); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			svc.Step()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			svc.Register(fmt.Sprintf("new%d", i))
			svc.Accounts()
		}
	}()
	wg.Wait()
}
