package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/core"
	"repro/internal/geo"
)

// Remote is a core.Service backed by a Server over HTTP: what cmd/measure
// uses to run a campaign against a separately running cmd/uberd, mirroring
// the paper's setup of measurement scripts talking to a remote service.
type Remote struct {
	base string
	hc   *http.Client
}

var _ core.Service = (*Remote)(nil)

// NewRemote returns a client for the service at base (e.g.
// "http://localhost:8080"). It does not dial until the first call.
func NewRemote(base string, hc *http.Client) *Remote {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Remote{base: base, hc: hc}
}

// Register creates the account on the remote service.
func (r *Remote) Register(clientID string) error {
	body, _ := json.Marshal(map[string]string{"client_id": clientID})
	resp, err := r.hc.Post(r.base+"/login", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("api: login: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("api: login: status %d", resp.StatusCode)
	}
	return nil
}

func (r *Remote) get(path, clientID string, loc geo.LatLng, out any) error {
	u := fmt.Sprintf("%s%s?client=%s&lat=%.7f&lng=%.7f",
		r.base, path, url.QueryEscape(clientID), loc.Lat, loc.Lng)
	resp, err := r.hc.Get(u)
	if err != nil {
		return fmt.Errorf("api: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusUnauthorized:
		return ErrUnknownAccount
	case http.StatusTooManyRequests:
		return ErrRateLimited
	case http.StatusNotFound:
		return ErrOutOfService
	default:
		return fmt.Errorf("api: GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PingClient implements core.Service over the wire.
func (r *Remote) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	var resp core.PingResponse
	if err := r.get("/pingClient", clientID, loc, &resp); err != nil {
		return nil, err
	}
	// TypeName travels on the wire; rebuild the enum for local use.
	for i := range resp.Types {
		vt, err := core.ParseVehicleType(resp.Types[i].TypeName)
		if err != nil {
			return nil, fmt.Errorf("api: bad type in response: %w", err)
		}
		resp.Types[i].Type = vt
	}
	return &resp, nil
}

// EstimatePrice implements core.Service over the wire.
func (r *Remote) EstimatePrice(clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	var out []core.PriceEstimate
	if err := r.get("/estimates/price", clientID, loc, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateTime implements core.Service over the wire.
func (r *Remote) EstimateTime(clientID string, loc geo.LatLng) ([]core.TimeEstimate, error) {
	var out []core.TimeEstimate
	if err := r.get("/estimates/time", clientID, loc, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Now returns the remote backend's simulation time (0 on error, matching
// an unreachable backend at epoch).
func (r *Remote) Now() int64 {
	resp, err := r.hc.Get(r.base + "/health")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var body struct {
		Time int64 `json:"time"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0
	}
	return body.Time
}
