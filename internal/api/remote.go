package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
)

// DefaultTimeout bounds each HTTP attempt when the caller doesn't supply
// its own *http.Client. The paper's scripts hung on lost pings until the
// authors added timeouts; we don't repeat that.
const DefaultTimeout = 10 * time.Second

// maxRetryAfter caps how long a server-supplied Retry-After header can
// make the client sleep between attempts (a misbehaving server must not
// be able to park the campaign for an hour).
const maxRetryAfter = 10 * time.Second

// Remote is a core.Service backed by a Server over HTTP: what cmd/measure
// uses to run a campaign against a separately running cmd/uberd, mirroring
// the paper's setup of measurement scripts talking to a remote service.
//
// Unlike the paper's first-cut scripts, Remote assumes the transport is
// unreliable: every call carries a timeout, transient failures (transport
// errors, 5xx, truncated bodies, 429/503 with Retry-After) are retried
// with exponential backoff and full jitter, and a per-endpoint circuit
// breaker fails fast while the backend is down, probing half-open until it
// recovers. Semantic errors (ErrUnknownAccount, ErrRateLimited without
// Retry-After, ErrOutOfService) are surfaced immediately — the backend
// answered, retrying can't change the answer.
type Remote struct {
	base string
	hc   *http.Client

	retry      chaos.Backoff
	noRetry    bool
	breakerCfg chaos.BreakerConfig
	noBreaker  bool
	budget     *retryBudget

	mu       sync.Mutex
	breakers map[string]*chaos.Breaker

	// nil-safe metric handles (wired by WithRegistry).
	mRetries   *obs.Counter // attempts beyond the first
	mGiveUps   *obs.Counter // calls that exhausted every attempt
	mFastFail  *obs.Counter // calls rejected by an open breaker
	mOpens     *obs.Counter // breaker transitions into open
	mNowErrs   *obs.Counter // Now() calls that hit a dead backend
	mExhausted *obs.Counter // retries skipped on an empty retry budget
}

// retryBudget is a token bucket bounding the client's aggregate retry
// volume across all endpoints. Exponential backoff decorrelates retries
// in time but does not bound how many are in flight against a recovering
// shard: a fleet of clients each retrying 12% of its requests is still a
// 12% overload forever. The bucket makes the aggregate self-limiting:
// each retry spends one token, and only successful requests earn tokens
// back (refill per success, capped), so sustained retry volume can never
// exceed the refill fraction of goodput. When the bucket is empty the
// call gives up instead of retrying (counted, so an exhausted budget is
// visible in /metrics rather than masquerading as backend failure).
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	refill float64 // tokens credited per successful request
}

// defaultRetryBudget allows bursts of 20 retries and a sustained retry
// rate of 20% of successful traffic — comfortably above the chaos-smoke
// fault rates, far below a retry storm.
func defaultRetryBudget() *retryBudget {
	return &retryBudget{tokens: 20, cap: 20, refill: 0.2}
}

// takeRetry spends one token; false means the budget is exhausted.
func (b *retryBudget) takeRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// creditSuccess refills the bucket for one successful request.
func (b *retryBudget) creditSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.refill
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

var _ core.Service = (*Remote)(nil)

// RemoteOption configures a Remote.
type RemoteOption func(*Remote)

// WithTimeout sets the per-attempt timeout of the default HTTP client. It
// has no effect when NewRemote was given an explicit *http.Client (that
// client's own timeout governs).
func WithTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if r.hc == defaultClient() {
			r.hc = &http.Client{Timeout: d}
		}
	}
}

// WithBackoff overrides the retry policy.
func WithBackoff(b chaos.Backoff) RemoteOption {
	return func(r *Remote) { r.retry = b }
}

// WithoutRetry disables retries: every call makes exactly one attempt
// (the pre-resilience behavior; some tests and probes want it).
func WithoutRetry() RemoteOption {
	return func(r *Remote) { r.noRetry = true }
}

// WithBreaker overrides the per-endpoint circuit-breaker policy.
func WithBreaker(cfg chaos.BreakerConfig) RemoteOption {
	return func(r *Remote) { r.breakerCfg = cfg }
}

// WithoutBreaker disables circuit breaking.
func WithoutBreaker() RemoteOption {
	return func(r *Remote) { r.noBreaker = true }
}

// WithRetryBudget overrides the client-wide retry token bucket: capacity
// tokens of burst, refillPerSuccess tokens earned back per successful
// request. The budget bounds aggregate retry volume across every
// endpoint so retries cannot storm a recovering shard.
func WithRetryBudget(capacity int, refillPerSuccess float64) RemoteOption {
	return func(r *Remote) {
		r.budget = &retryBudget{
			tokens: float64(capacity),
			cap:    float64(capacity),
			refill: refillPerSuccess,
		}
	}
}

// WithoutRetryBudget removes the retry budget (retries bounded only by
// per-call attempt counts; tests that count exact attempts want this).
func WithoutRetryBudget() RemoteOption {
	return func(r *Remote) { r.budget = nil }
}

// WithRegistry wires the client's resilience counters into reg:
//
//	client_retries_total          retry attempts (beyond each call's first)
//	client_giveups_total          calls that failed after every attempt
//	client_breaker_fastfail_total calls rejected while a breaker was open
//	client_breaker_opens_total    breaker transitions into the open state
//	client_now_errors_total       Now() calls answered 0 for a dead backend
func WithRegistry(reg *obs.Registry) RemoteOption {
	return func(r *Remote) {
		r.mRetries = reg.Counter("client_retries_total")
		r.mGiveUps = reg.Counter("client_giveups_total")
		r.mFastFail = reg.Counter("client_breaker_fastfail_total")
		r.mOpens = reg.Counter("client_breaker_opens_total")
		r.mNowErrs = reg.Counter("client_now_errors_total")
		r.mExhausted = reg.Counter("client_retry_budget_exhausted_total")
	}
}

var sharedDefaultClient *http.Client
var sharedDefaultOnce sync.Once

// defaultClient is the client used when the caller passes nil: the
// standard transport with DefaultTimeout (never http.DefaultClient, which
// waits forever).
func defaultClient() *http.Client {
	sharedDefaultOnce.Do(func() {
		sharedDefaultClient = &http.Client{Timeout: DefaultTimeout}
	})
	return sharedDefaultClient
}

// NewRemote returns a client for the service at base (e.g.
// "http://localhost:8080"). It does not dial until the first call. A nil
// hc selects a default client with DefaultTimeout (override the timeout
// with WithTimeout, or pass your own client).
func NewRemote(base string, hc *http.Client, opts ...RemoteOption) *Remote {
	if hc == nil {
		hc = defaultClient()
	}
	r := &Remote{
		base:     base,
		hc:       hc,
		breakers: make(map[string]*chaos.Breaker),
		budget:   defaultRetryBudget(),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// breaker returns (creating if needed) the endpoint's circuit breaker.
func (r *Remote) breaker(endpoint string) *chaos.Breaker {
	if r.noBreaker {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[endpoint]
	if !ok {
		cfg := r.breakerCfg
		prev := cfg.OnStateChange
		cfg.OnStateChange = func(from, to chaos.BreakerState) {
			if to == chaos.BreakerOpen {
				r.mOpens.Inc()
			}
			if prev != nil {
				prev(from, to)
			}
		}
		b = chaos.NewBreaker(cfg)
		r.breakers[endpoint] = b
	}
	return b
}

// BreakerState exposes an endpoint's breaker state (tests and dashboards).
func (r *Remote) BreakerState(endpoint string) chaos.BreakerState {
	return r.breaker(endpoint).State()
}

// attempt is one try's classified outcome. terminal means retrying cannot
// help (the backend answered with a semantic error); retryAfter carries a
// server-requested delay when present.
type attemptOutcome struct {
	err        error
	terminal   bool
	retryAfter time.Duration
}

// call runs try under the endpoint's breaker and retry policy.
func (r *Remote) call(ctx context.Context, endpoint string, try func(context.Context) attemptOutcome) error {
	br := r.breaker(endpoint)
	if !br.Allow() {
		r.mFastFail.Inc()
		return fmt.Errorf("api: %s: %w", endpoint, chaos.ErrCircuitOpen)
	}
	max := r.maxAttempts()
	var out attemptOutcome
	for a := 0; a < max; a++ {
		out = try(ctx)
		if out.err == nil {
			br.Report(true)
			r.budget.creditSuccess()
			return nil
		}
		if out.terminal {
			// The backend is alive and answered; don't trip the breaker.
			br.Report(true)
			return out.err
		}
		if a == max-1 {
			break
		}
		if !r.budget.takeRetry() {
			// The aggregate retry budget is spent: give up instead of
			// joining a retry storm against a recovering backend.
			r.mExhausted.Inc()
			break
		}
		r.mRetries.Inc()
		sleep := r.retry.Delay(a, nil)
		if out.retryAfter > 0 {
			sleep = out.retryAfter
			if sleep > maxRetryAfter {
				sleep = maxRetryAfter
			}
		}
		if err := sleepCtx(ctx, sleep); err != nil {
			br.Report(false)
			return fmt.Errorf("api: %s: %w (last error: %v)", endpoint, err, out.err)
		}
	}
	br.Report(false)
	r.mGiveUps.Inc()
	return out.err
}

// maxAttempts resolves the effective attempt budget.
func (r *Remote) maxAttempts() int {
	if r.noRetry {
		return 1
	}
	if r.retry.MaxAttempts > 0 {
		return r.retry.MaxAttempts
	}
	return 5 // chaos.Backoff default
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// applyDeadlineHeader stamps the remaining context deadline onto req as
// chaos.DeadlineHeader so the server (and, through the gateway, the
// shard behind it) can clamp its handler timeout to the caller's budget.
func applyDeadlineHeader(ctx context.Context, req *http.Request) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	if ms := time.Until(dl).Milliseconds(); ms > 0 {
		req.Header.Set(chaos.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
}

// retryAfterHeader parses a Retry-After value in seconds (the form our
// server and most APIs emit; HTTP dates are ignored).
func retryAfterHeader(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// drain empties and closes a response body so the connection can be
// reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// RegisterCtx creates the account on the remote service.
func (r *Remote) RegisterCtx(ctx context.Context, clientID string) error {
	body, _ := json.Marshal(map[string]string{"client_id": clientID})
	return r.call(ctx, "/login", func(ctx context.Context) attemptOutcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/login", bytes.NewReader(body))
		if err != nil {
			return attemptOutcome{err: fmt.Errorf("api: login: %w", err), terminal: true}
		}
		req.Header.Set("Content-Type", "application/json")
		applyDeadlineHeader(ctx, req)
		resp, err := r.hc.Do(req)
		if err != nil {
			return attemptOutcome{err: fmt.Errorf("api: login: %w", err)}
		}
		defer drain(resp)
		if resp.StatusCode == http.StatusOK {
			return attemptOutcome{}
		}
		out := attemptOutcome{
			err:        fmt.Errorf("api: login: status %d", resp.StatusCode),
			terminal:   resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests,
			retryAfter: retryAfterHeader(resp),
		}
		if resp.StatusCode == http.StatusTooManyRequests && out.retryAfter == 0 {
			out.err, out.terminal = ErrRateLimited, true
		}
		return out
	})
}

// Register creates the account on the remote service (client.Registrar).
func (r *Remote) Register(clientID string) error {
	return r.RegisterCtx(context.Background(), clientID)
}

// get performs one resilient GET against a query endpoint, decoding the
// JSON response into out.
func (r *Remote) get(ctx context.Context, path, clientID string, loc geo.LatLng, out any) error {
	u := fmt.Sprintf("%s%s?client=%s&lat=%.7f&lng=%.7f",
		r.base, path, url.QueryEscape(clientID), loc.Lat, loc.Lng)
	return r.call(ctx, path, func(ctx context.Context) attemptOutcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return attemptOutcome{err: fmt.Errorf("api: GET %s: %w", path, err), terminal: true}
		}
		applyDeadlineHeader(ctx, req)
		resp, err := r.hc.Do(req)
		if err != nil {
			return attemptOutcome{err: fmt.Errorf("api: GET %s: %w", path, err)}
		}
		switch resp.StatusCode {
		case http.StatusOK:
			err := json.NewDecoder(resp.Body).Decode(out)
			drain(resp)
			if err != nil {
				// A decode failure on a 200 is a truncated or garbled body:
				// transport-class, retryable.
				return attemptOutcome{err: fmt.Errorf("api: GET %s: decode: %w", path, err)}
			}
			return attemptOutcome{}
		case http.StatusUnauthorized:
			drain(resp)
			return attemptOutcome{err: ErrUnknownAccount, terminal: true}
		case http.StatusTooManyRequests:
			ra := retryAfterHeader(resp)
			drain(resp)
			// A 429 with Retry-After is the server pacing us: honor it. A
			// bare 429 is the hourly budget — waiting a backoff won't help.
			return attemptOutcome{err: ErrRateLimited, terminal: ra == 0, retryAfter: ra}
		case http.StatusNotFound:
			drain(resp)
			return attemptOutcome{err: ErrOutOfService, terminal: true}
		default:
			ra := retryAfterHeader(resp)
			code := resp.StatusCode
			drain(resp)
			return attemptOutcome{
				err:        fmt.Errorf("api: GET %s: status %d", path, code),
				terminal:   code < 500,
				retryAfter: ra,
			}
		}
	})
}

// PingClientCtx implements core.Service over the wire with a caller
// context.
func (r *Remote) PingClientCtx(ctx context.Context, clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	var resp core.PingResponse
	if err := r.get(ctx, "/pingClient", clientID, loc, &resp); err != nil {
		return nil, err
	}
	// TypeName travels on the wire; rebuild the enum for local use.
	for i := range resp.Types {
		vt, err := core.ParseVehicleType(resp.Types[i].TypeName)
		if err != nil {
			return nil, fmt.Errorf("api: bad type in response: %w", err)
		}
		resp.Types[i].Type = vt
	}
	return &resp, nil
}

// PingClient implements core.Service over the wire.
func (r *Remote) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	return r.PingClientCtx(context.Background(), clientID, loc)
}

// EstimatePriceCtx implements core.Service over the wire with a caller
// context.
func (r *Remote) EstimatePriceCtx(ctx context.Context, clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	var out []core.PriceEstimate
	if err := r.get(ctx, "/estimates/price", clientID, loc, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// EstimatePrice implements core.Service over the wire.
func (r *Remote) EstimatePrice(clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	return r.EstimatePriceCtx(context.Background(), clientID, loc)
}

// EstimateTimeCtx implements core.Service over the wire with a caller
// context.
func (r *Remote) EstimateTimeCtx(ctx context.Context, clientID string, loc geo.LatLng) ([]core.TimeEstimate, error) {
	var out []core.TimeEstimate
	if err := r.get(ctx, "/estimates/time", clientID, loc, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateTime implements core.Service over the wire.
func (r *Remote) EstimateTime(clientID string, loc geo.LatLng) ([]core.TimeEstimate, error) {
	return r.EstimateTimeCtx(context.Background(), clientID, loc)
}

// NowErr returns the remote backend's simulation time, or an error when
// the backend is unreachable — so callers can tell a dead service from one
// at epoch.
func (r *Remote) NowErr() (int64, error) {
	return r.NowCtx(context.Background())
}

// NowCtx is NowErr with a caller context.
func (r *Remote) NowCtx(ctx context.Context) (int64, error) {
	var body struct {
		Time int64 `json:"time"`
	}
	err := r.call(ctx, "/health", func(ctx context.Context) attemptOutcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/health", nil)
		if err != nil {
			return attemptOutcome{err: err, terminal: true}
		}
		applyDeadlineHeader(ctx, req)
		resp, err := r.hc.Do(req)
		if err != nil {
			return attemptOutcome{err: fmt.Errorf("api: GET /health: %w", err)}
		}
		if resp.StatusCode != http.StatusOK {
			ra := retryAfterHeader(resp)
			code := resp.StatusCode
			drain(resp)
			return attemptOutcome{
				err:        fmt.Errorf("api: GET /health: status %d", code),
				terminal:   code < 500 && code != http.StatusTooManyRequests,
				retryAfter: ra,
			}
		}
		derr := json.NewDecoder(resp.Body).Decode(&body)
		drain(resp)
		if derr != nil {
			return attemptOutcome{err: fmt.Errorf("api: GET /health: decode: %w", derr)}
		}
		return attemptOutcome{}
	})
	if err != nil {
		return 0, err
	}
	return body.Time, nil
}

// Now implements core.Service. The interface cannot carry an error, so a
// dead backend reads as 0 (epoch) — but the failure is counted in
// client_now_errors_total when a registry is wired, and callers that care
// use NowErr.
func (r *Remote) Now() int64 {
	t, err := r.NowErr()
	if err != nil {
		r.mNowErrs.Inc()
		return 0
	}
	return t
}
