package api

import (
	"net/http"
	"sync"
	"sync/atomic"
)

// Readiness is the readiness state machine a serving process exposes on
// GET /readyz: ready iff it is not draining and every registered check
// passes. Liveness (GET /healthz) is separate and unconditional — a
// process that can answer at all is alive; readiness is the signal the
// gateway's health prober gates routing on.
//
// The draining flag exists for graceful shutdown: a shard flips it before
// its HTTP server closes, so the gateway stops routing new requests to it
// while in-flight ones finish, instead of discovering the closure as
// connection errors.
type Readiness struct {
	draining atomic.Bool

	mu     sync.Mutex
	checks []readyCheck
}

type readyCheck struct {
	name string
	fn   func() bool
}

// NewReadiness returns a Readiness with no checks: ready until draining.
func NewReadiness() *Readiness { return &Readiness{} }

// AddCheck registers a named readiness condition. Checks are evaluated on
// every /readyz request, so fn must be cheap and safe for concurrent use.
func (rd *Readiness) AddCheck(name string, fn func() bool) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	rd.checks = append(rd.checks, readyCheck{name: name, fn: fn})
}

// SetDraining marks the process as draining (failing readiness) or back in
// service.
func (rd *Readiness) SetDraining(v bool) { rd.draining.Store(v) }

// Draining reports whether the process is draining.
func (rd *Readiness) Draining() bool { return rd.draining.Load() }

// Ready evaluates the state: true with "" when ready, else false with the
// reason (the word "draining" or the first failing check's name).
func (rd *Readiness) Ready() (bool, string) {
	if rd == nil {
		return true, ""
	}
	if rd.draining.Load() {
		return false, "draining"
	}
	rd.mu.Lock()
	checks := rd.checks
	rd.mu.Unlock()
	for _, c := range checks {
		if !c.fn() {
			return false, c.name
		}
	}
	return true, ""
}

// Handler serves GET /readyz: 200 {"ready":true} when ready,
// 503 {"ready":false,"reason":...} when not.
func (rd *Readiness) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := rd.Ready(); !ok {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"ready": false, "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
}

// Healthz serves GET /healthz: liveness plus the backend's simulation
// time, 200 for as long as the process can answer at all. now may be nil
// (the gateway has no simulation clock of its own).
func Healthz(now func() int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"status": "ok"}
		if now != nil {
			body["time"] = now()
		}
		writeJSON(w, http.StatusOK, body)
	})
}
