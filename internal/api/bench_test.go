package api

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// BenchmarkPingClientParallel measures the lock-free ping path under
// contention: a background goroutine steps the world (publishing a fresh
// snapshot every tick) while b.RunParallel hammers PingClient. Before the
// snapshot refactor every iteration serialized on Service.mu; now
// throughput should scale with GOMAXPROCS.
func BenchmarkPingClientParallel(b *testing.B) {
	s := NewBackend(sim.SanFrancisco(), 42, true)
	for i := 0; i < 64; i++ {
		s.Register(fmt.Sprintf("bench-%02d", i))
	}
	loc := center(s)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			s.Step()
		}
	}()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprintf("bench-%02d", ctr.Add(1)%64)
		for pb.Next() {
			if _, err := s.PingClient(id, loc); err != nil {
				b.Errorf("PingClient: %v", err)
				return
			}
		}
	})
	b.StopTimer()
	stop.Store(true)
	<-done
}

// BenchmarkPingClientSerial is the single-goroutine baseline for the
// parallel benchmark (no background stepping).
func BenchmarkPingClientSerial(b *testing.B) {
	s := NewBackend(sim.SanFrancisco(), 42, true)
	s.Register("bench-00")
	loc := center(s)
	s.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PingClient("bench-00", loc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatePriceParallel exercises the sharded rate-limit charge
// plus the snapshot read, across 64 accounts so charges spread over all
// 16 shards.
func BenchmarkEstimatePriceParallel(b *testing.B) {
	s := NewBackend(sim.SanFrancisco(), 42, false)
	for i := 0; i < 64; i++ {
		s.Register(fmt.Sprintf("bench-%02d", i))
	}
	loc := center(s)
	s.Step()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprintf("bench-%02d", ctr.Add(1)%64)
		for pb.Next() {
			if _, err := s.EstimatePrice(id, loc); err != nil && !errors.Is(err, ErrRateLimited) {
				b.Errorf("EstimatePrice: %v", err)
				return
			}
		}
	})
}
