package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/sim"
)

func TestPartnerMapRequiresAgreement(t *testing.T) {
	s := testBackend(t, false)
	if err := s.RegisterPartner("driver-1", false); err == nil {
		t.Fatal("registration without agreement should fail")
	}
	if _, err := s.PartnerMap("driver-1"); !errors.Is(err, ErrNotPartner) {
		t.Fatalf("err = %v, want ErrNotPartner", err)
	}
	if err := s.RegisterPartner("driver-1", true); err != nil {
		t.Fatal(err)
	}
	m, err := s.PartnerMap("driver-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Fatalf("areas = %d, want 4", len(m))
	}
	for _, pa := range m {
		if len(pa.Vertices) < 3 {
			t.Errorf("area %d has %d vertices", pa.Area, len(pa.Vertices))
		}
		if pa.Surge < 1 {
			t.Errorf("area %d surge %v", pa.Area, pa.Surge)
		}
	}
}

func TestPartnerMapMatchesAPIStream(t *testing.T) {
	s := testBackend(t, true) // jitter on: partner map must still be jitter-free
	if err := s.RegisterPartner("d", true); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2 * 3600)
	m, err := s.PartnerMap("d")
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range m {
		want := s.Engine().APIMultiplier(pa.Area, s.Now())
		if pa.Surge != want {
			t.Errorf("area %d: partner %v != api %v", pa.Area, pa.Surge, want)
		}
	}
}

func TestClientAccountIsNotPartner(t *testing.T) {
	s := testBackend(t, false)
	// "tester" is a rider account; the partner surface must reject it.
	if _, err := s.PartnerMap("tester"); !errors.Is(err, ErrNotPartner) {
		t.Fatalf("err = %v, want ErrNotPartner", err)
	}
}

func TestPartnerHTTPEndpoints(t *testing.T) {
	svc := NewBackend(sim.SanFrancisco(), 3, false)
	svc.RunUntil(600)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	// Login without agreement: 403.
	body, _ := json.Marshal(map[string]any{"driver_id": "d9", "agree_no_scraping": false})
	resp, err := http.Post(ts.URL+"/partner/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("login without agreement: status %d, want 403", resp.StatusCode)
	}

	// Proper login.
	body, _ = json.Marshal(map[string]any{"driver_id": "d9", "agree_no_scraping": true})
	resp, err = http.Post(ts.URL+"/partner/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login: status %d", resp.StatusCode)
	}

	// Fetch the surge map.
	resp, err = http.Get(ts.URL + "/partner/surgeMap?driver=d9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surgeMap: status %d", resp.StatusCode)
	}
	var m []PartnerArea
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Errorf("areas = %d", len(m))
	}

	// Unknown driver: 403.
	resp, err = http.Get(ts.URL + "/partner/surgeMap?driver=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("ghost driver: status %d, want 403", resp.StatusCode)
	}
	// Missing driver param: 400.
	resp, err = http.Get(ts.URL + "/partner/surgeMap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing param: status %d, want 400", resp.StatusCode)
	}
}
