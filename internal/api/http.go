package api

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
)

// maxLoginBody caps the JSON body accepted by the login endpoints so a
// hostile client cannot stream an unbounded request.
const maxLoginBody = 4 << 10 // 4 KiB

// Server exposes a Service over HTTP with the endpoint shapes the paper
// scripts against:
//
//	POST /login            {"client_id": "..."}        -> {"ok": true}
//	GET  /pingClient       ?client=...&lat=..&lng=..   -> core.PingResponse
//	GET  /estimates/price  ?client=...&lat=..&lng=..   -> []core.PriceEstimate
//	GET  /estimates/time   ?client=...&lat=..&lng=..   -> []core.TimeEstimate
//	GET  /health                                       -> {"time": <sim seconds>}
//
// The HTTP layer is a thin shell: all behaviour (jitter, rate limits,
// visibility) lives in Service so the in-process and HTTP paths cannot
// diverge.
//
// When built with WithMetrics, every endpoint records request counts by
// status class and a latency histogram under the "endpoint" label; with
// WithTracer, each request leaves a span named "http" carrying endpoint
// and status attributes.
type Server struct {
	svc    *Service
	mux    *http.ServeMux
	reg    *obs.Registry
	tracer *obs.Tracer
	ready  *Readiness
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMetrics wires per-endpoint request/latency metrics into reg.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.reg = reg }
}

// WithTracer records one span per request into t.
func WithTracer(t *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithReadiness serves GET /readyz from rd instead of the default
// (epoch-published) readiness, so a daemon can fold draining and bus
// state into the same endpoint the gateway probes.
func WithReadiness(rd *Readiness) ServerOption {
	return func(s *Server) { s.ready = rd }
}

// NewServer wraps svc in an HTTP handler.
func NewServer(svc *Service, opts ...ServerOption) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	if s.ready == nil {
		s.ready = NewReadiness()
		s.ready.AddCheck("epoch", svc.EpochPublished)
	}
	s.route("POST /login", "/login", s.handleLogin)
	s.route("GET /pingClient", "/pingClient", s.handlePing)
	s.route("GET /estimates/price", "/estimates/price", s.handlePrice)
	s.route("GET /estimates/time", "/estimates/time", s.handleTime)
	s.route("GET /health", "/health", s.handleHealth)
	s.route("POST /partner/login", "/partner/login", s.handlePartnerLogin)
	s.route("GET /partner/surgeMap", "/partner/surgeMap", s.handlePartnerMap)
	// Liveness and readiness are not instrumented endpoints: they are the
	// gateway prober's signal and must stay cheap and unconditional.
	s.mux.Handle("GET /healthz", Healthz(svc.Now))
	s.mux.Handle("GET /readyz", s.ready.Handler())
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// route registers pattern on the mux with metrics/tracing instrumentation
// keyed by the stable endpoint name.
func (s *Server) route(pattern, endpoint string, h http.HandlerFunc) {
	if s.reg == nil && s.tracer == nil {
		s.mux.HandleFunc(pattern, h)
		return
	}
	// Resolve metric handles once per endpoint, not per request: the
	// status-class counters and the latency histogram are the hot path.
	lbl := obs.L("endpoint", endpoint)
	classes := [4]*obs.Counter{
		s.reg.Counter("http_requests_total", lbl, obs.L("class", "2xx")),
		s.reg.Counter("http_requests_total", lbl, obs.L("class", "3xx")),
		s.reg.Counter("http_requests_total", lbl, obs.L("class", "4xx")),
		s.reg.Counter("http_requests_total", lbl, obs.L("class", "5xx")),
	}
	hist := s.reg.Histogram("http_request_duration_seconds", obs.DefLatencyBuckets, lbl)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		dur := time.Since(start)
		hist.ObserveDuration(dur)
		if i := rec.status/100 - 2; i >= 0 && i < len(classes) {
			classes[i].Inc()
		}
		// Specific counters for the statuses the paper's measurement
		// campaign cares about (rate limiting and bad probes).
		switch rec.status {
		case http.StatusTooManyRequests:
			s.reg.Counter("http_requests_total", lbl, obs.L("class", "429")).Inc()
		case http.StatusBadRequest:
			s.reg.Counter("http_requests_total", lbl, obs.L("class", "400")).Inc()
		}
		s.tracer.Record("http", start, dur, lbl,
			obs.L("status", strconv.Itoa(rec.status)))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownAccount):
		status = http.StatusUnauthorized
	case errors.Is(err, ErrRateLimited):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrOutOfService):
		status = http.StatusNotFound
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var body struct {
		ClientID string `json:"client_id"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxLoginBody)
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.ClientID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "client_id required"})
		return
	}
	if err := s.svc.Register(body.ClientID); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// queryArgs extracts the client id and location common to all GET
// endpoints. Coordinates must be finite: strconv.ParseFloat accepts
// "NaN" and "Inf", which would otherwise flow into the geo math.
func queryArgs(r *http.Request) (string, geo.LatLng, error) {
	q := r.URL.Query()
	client := q.Get("client")
	if client == "" {
		return "", geo.LatLng{}, errors.New("client parameter required")
	}
	lat, err := strconv.ParseFloat(q.Get("lat"), 64)
	if err != nil || math.IsNaN(lat) || math.IsInf(lat, 0) {
		return "", geo.LatLng{}, errors.New("lat parameter invalid")
	}
	lng, err := strconv.ParseFloat(q.Get("lng"), 64)
	if err != nil || math.IsNaN(lng) || math.IsInf(lng, 0) {
		return "", geo.LatLng{}, errors.New("lng parameter invalid")
	}
	return client, geo.LatLng{Lat: lat, Lng: lng}, nil
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	client, loc, err := queryArgs(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.svc.PingClient(client, loc)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	client, loc, err := queryArgs(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.svc.EstimatePrice(client, loc)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTime(w http.ResponseWriter, r *http.Request) {
	client, loc, err := queryArgs(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.svc.EstimateTime(client, loc)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int64{"time": s.svc.Now()})
}
