package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/geo"
)

// Server exposes a Service over HTTP with the endpoint shapes the paper
// scripts against:
//
//	POST /login            {"client_id": "..."}        -> {"ok": true}
//	GET  /pingClient       ?client=...&lat=..&lng=..   -> core.PingResponse
//	GET  /estimates/price  ?client=...&lat=..&lng=..   -> []core.PriceEstimate
//	GET  /estimates/time   ?client=...&lat=..&lng=..   -> []core.TimeEstimate
//	GET  /health                                       -> {"time": <sim seconds>}
//
// The HTTP layer is a thin shell: all behaviour (jitter, rate limits,
// visibility) lives in Service so the in-process and HTTP paths cannot
// diverge.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps svc in an HTTP handler.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /login", s.handleLogin)
	s.mux.HandleFunc("GET /pingClient", s.handlePing)
	s.mux.HandleFunc("GET /estimates/price", s.handlePrice)
	s.mux.HandleFunc("GET /estimates/time", s.handleTime)
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.HandleFunc("POST /partner/login", s.handlePartnerLogin)
	s.mux.HandleFunc("GET /partner/surgeMap", s.handlePartnerMap)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownAccount):
		status = http.StatusUnauthorized
	case errors.Is(err, ErrRateLimited):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrOutOfService):
		status = http.StatusNotFound
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var body struct {
		ClientID string `json:"client_id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.ClientID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "client_id required"})
		return
	}
	s.svc.Register(body.ClientID)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// queryArgs extracts the client id and location common to all GET
// endpoints.
func queryArgs(r *http.Request) (string, geo.LatLng, error) {
	q := r.URL.Query()
	client := q.Get("client")
	if client == "" {
		return "", geo.LatLng{}, errors.New("client parameter required")
	}
	lat, err := strconv.ParseFloat(q.Get("lat"), 64)
	if err != nil {
		return "", geo.LatLng{}, errors.New("lat parameter invalid")
	}
	lng, err := strconv.ParseFloat(q.Get("lng"), 64)
	if err != nil {
		return "", geo.LatLng{}, errors.New("lng parameter invalid")
	}
	return client, geo.LatLng{Lat: lat, Lng: lng}, nil
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	client, loc, err := queryArgs(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.svc.PingClient(client, loc)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	client, loc, err := queryArgs(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.svc.EstimatePrice(client, loc)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTime(w http.ResponseWriter, r *http.Request) {
	client, loc, err := queryArgs(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.svc.EstimateTime(client, loc)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int64{"time": s.svc.Now()})
}
