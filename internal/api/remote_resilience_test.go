package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/geo"
	"repro/internal/obs"
)

// fastBackoff keeps retry sleeps negligible in tests.
var fastBackoff = chaos.Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond, MaxAttempts: 4}

func writePing(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"time": 600,
		"types": []map[string]any{
			{"type": "uberX", "ewt_seconds": 120.0, "surge": 1.0, "cars": []any{}},
		},
	})
}

func TestRemoteRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		writePing(w)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff), WithRegistry(reg))
	resp, err := remote.PingClient("c1", geo.LatLng{})
	if err != nil {
		t.Fatalf("ping after two 500s: %v", err)
	}
	if resp.Time != 600 {
		t.Errorf("time = %d, want 600", resp.Time)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
	if n := reg.Counter("client_retries_total").Value(); n != 2 {
		t.Errorf("client_retries_total = %d, want 2", n)
	}
	if n := reg.Counter("client_giveups_total").Value(); n != 0 {
		t.Errorf("client_giveups_total = %d, want 0", n)
	}
}

func TestRemoteGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	remote := NewRemote(ts.URL, ts.Client(),
		WithBackoff(fastBackoff), WithoutBreaker(), WithRegistry(reg))
	_, err := remote.PingClient("c1", geo.LatLng{})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if n := calls.Load(); n != int64(fastBackoff.MaxAttempts) {
		t.Errorf("server saw %d attempts, want %d", n, fastBackoff.MaxAttempts)
	}
	if n := reg.Counter("client_giveups_total").Value(); n != 1 {
		t.Errorf("client_giveups_total = %d, want 1", n)
	}
}

func TestRemoteHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		writePing(w)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff))
	start := time.Now()
	if _, err := remote.PingClient("c1", geo.LatLng{}); err != nil {
		t.Fatalf("ping after shed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retried after %v; want ≥ 1s (the advertised Retry-After)", elapsed)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}

func TestRemote429WithRetryAfterIsRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		writePing(w)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff))
	if _, err := remote.PingClient("c1", geo.LatLng{}); err != nil {
		t.Fatalf("ping after paced 429: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}

func TestRemoteBare429IsTerminal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "hourly budget exhausted", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff))
	_, err := remote.PingClient("c1", geo.LatLng{})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1 (waiting cannot refill the budget)", n)
	}
}

func TestRemoteTerminalSentinels(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		switch r.URL.Query().Get("client") {
		case "ghost":
			http.Error(w, "unknown", http.StatusUnauthorized)
		default:
			http.Error(w, "out of service area", http.StatusNotFound)
		}
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff))
	if _, err := remote.PingClient("ghost", geo.LatLng{}); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("401 → %v, want ErrUnknownAccount", err)
	}
	if _, err := remote.PingClient("c1", geo.LatLng{}); !errors.Is(err, ErrOutOfService) {
		t.Errorf("404 → %v, want ErrOutOfService", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2 (no retries on semantic errors)", n)
	}
}

func TestRemoteRetriesTruncatedBody(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Well-formed status, garbage half-response: decode must fail.
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"time": 600, "typ`)
			return
		}
		writePing(w)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff))
	if _, err := remote.PingClient("c1", geo.LatLng{}); err != nil {
		t.Fatalf("ping after truncated body: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}

func TestRemoteCircuitBreaker(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			if r.URL.Path == "/estimates/time" {
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprint(w, `[]`)
				return
			}
			writePing(w)
			return
		}
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	remote := NewRemote(ts.URL, ts.Client(),
		WithBackoff(chaos.Backoff{Base: time.Millisecond, Cap: time.Millisecond, MaxAttempts: 2}),
		WithBreaker(chaos.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond}),
		WithRegistry(reg))

	// Two failed calls (each exhausting its 2 attempts) trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := remote.PingClient("c1", geo.LatLng{}); err == nil {
			t.Fatal("want error while backend is down")
		}
	}
	if st := remote.BreakerState("/pingClient"); st != chaos.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	if n := reg.Counter("client_breaker_opens_total").Value(); n != 1 {
		t.Errorf("client_breaker_opens_total = %d, want 1", n)
	}

	// While open, calls fail fast without touching the backend.
	before := calls.Load()
	_, err := remote.PingClient("c1", geo.LatLng{})
	if !errors.Is(err, chaos.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still hit the backend")
	}
	if n := reg.Counter("client_breaker_fastfail_total").Value(); n != 1 {
		t.Errorf("client_breaker_fastfail_total = %d, want 1", n)
	}

	// Each endpoint gets its own breaker: estimates still reach the server.
	healthy.Store(true)
	if _, err := remote.EstimateTime("c1", geo.LatLng{}); err != nil {
		t.Fatalf("estimates/time while pingClient breaker open: %v", err)
	}

	// After the cooldown, the half-open probe succeeds and closes the circuit.
	time.Sleep(60 * time.Millisecond)
	if _, err := remote.PingClient("c1", geo.LatLng{}); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if st := remote.BreakerState("/pingClient"); st != chaos.BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}
}

func TestRemoteNowErrDistinguishesDeadBackend(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"time": 4242}`)
	}))
	reg := obs.NewRegistry()
	remote := NewRemote(ts.URL, ts.Client(),
		WithBackoff(fastBackoff), WithoutBreaker(), WithRegistry(reg))

	now, err := remote.NowErr()
	if err != nil || now != 4242 {
		t.Fatalf("NowErr = %d, %v; want 4242, nil", now, err)
	}
	if got := remote.Now(); got != 4242 {
		t.Fatalf("Now = %d, want 4242", got)
	}

	ts.Close() // the backend dies
	if _, err := remote.NowErr(); err == nil {
		t.Fatal("NowErr on a dead backend returned nil error")
	}
	if got := remote.Now(); got != 0 {
		t.Errorf("Now on a dead backend = %d, want 0", got)
	}
	if n := reg.Counter("client_now_errors_total").Value(); n != 1 {
		t.Errorf("client_now_errors_total = %d, want 1", n)
	}
}

func TestRemoteWithoutRetrySingleAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithoutRetry(), WithoutBreaker())
	if _, err := remote.PingClient("c1", geo.LatLng{}); err == nil {
		t.Fatal("want error")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1", n)
	}
}

func TestRemoteNilClientHasTimeout(t *testing.T) {
	remote := NewRemote("http://example.invalid", nil)
	if remote.hc == http.DefaultClient {
		t.Fatal("nil client resolved to http.DefaultClient (no timeout)")
	}
	if remote.hc.Timeout != DefaultTimeout {
		t.Errorf("default client timeout = %v, want %v", remote.hc.Timeout, DefaultTimeout)
	}
	custom := NewRemote("http://example.invalid", nil, WithTimeout(3*time.Second))
	if custom.hc.Timeout != 3*time.Second {
		t.Errorf("WithTimeout client timeout = %v, want 3s", custom.hc.Timeout)
	}
	// WithTimeout must not mutate the shared default client.
	if remote.hc.Timeout != DefaultTimeout {
		t.Error("WithTimeout mutated the shared default client")
	}
}

func TestRemoteRegisterRetriesShed(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client(), WithBackoff(fastBackoff))
	if err := remote.Register("c1"); err != nil {
		t.Fatalf("register after shed: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}
