// API event emission. The query path is lock-free and concurrent, so the
// sink lives behind an atomic pointer and the sink function itself must
// be safe for concurrent use (bus.Topic.Publish is).

package api

import (
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/geo"
)

// eventSinks holds the service's event callbacks; one immutable struct
// swapped atomically.
type eventSinks struct {
	pings     func(bus.Event) // served pingClient responses
	registers func(bus.Event) // first-time account registrations
}

// SetEventSinks installs callbacks for ping and registration events.
// Either may be nil. Ping events carry the full served response encoded
// as a bus Observation in Data — the payload the live tsdb ingester
// persists. Callbacks run on the request goroutine, concurrently.
func (s *Service) SetEventSinks(pings, registers func(bus.Event)) {
	if pings == nil && registers == nil {
		s.events.Store(nil)
		return
	}
	s.events.Store(&eventSinks{pings: pings, registers: registers})
}

// emitPing publishes the response served to one pingClient call.
func (s *Service) emitPing(clientID string, loc geo.LatLng, area int, resp *core.PingResponse) {
	sinks := s.events.Load()
	if sinks == nil || sinks.pings == nil {
		return
	}
	o := bus.Observation{
		Client: clientID,
		Lat:    loc.Lat,
		Lng:    loc.Lng,
		Time:   resp.Time,
	}
	for i := range resp.Types {
		ts := &resp.Types[i]
		to := bus.TypeObs{Name: ts.TypeName, Surge: ts.Surge, EWT: ts.EWTSeconds}
		for _, c := range ts.Cars {
			to.Cars = append(to.Cars, bus.Car{ID: c.ID, Lat: c.Pos.Lat, Lng: c.Pos.Lng})
		}
		o.Types = append(o.Types, to)
	}
	sinks.pings(bus.Event{
		Time: resp.Time,
		Kind: bus.KindPing,
		Key:  clientID,
		Area: int32(area),
		Data: bus.AppendObservation(nil, &o),
	})
}

// emitRegister publishes a first-time account registration.
func (s *Service) emitRegister(clientID string, now int64) {
	sinks := s.events.Load()
	if sinks == nil || sinks.registers == nil {
		return
	}
	sinks.registers(bus.Event{Time: now, Kind: bus.KindRegister, Key: clientID})
}
