package taxi

import (
	"math"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NumTaxiClients is the paper's taxi measurement fleet: taxis are denser
// than Ubers, so the visibility radius shrinks to ~100 m and it takes
// 172 clients (300% more) to blanket midtown (§3.5).
const NumTaxiClients = 172

// TaxiClientSpacing is the grid spacing for the 100 m visibility radius.
const TaxiClientSpacing = 140

// Result is the outcome of a Fig 4 validation run.
type Result struct {
	// SupplyCapture and DeathCapture are the fractions of ground truth
	// recovered by the measurement methodology (the paper reports 97%
	// and 95%).
	SupplyCapture float64
	DeathCapture  float64
	// Correlation between the measured and true supply series.
	SupplyCorrelation float64

	MeasuredSupply, TruthSupply *stats.Series
	MeasuredDeaths, TruthDeaths *stats.Series
}

// profileFor wraps the trace geometry in the minimal CityProfile the
// measurement layer needs (projection origin, rects, areas).
func profileFor(tr *Trace) *sim.CityProfile {
	return &sim.CityProfile{
		Name:        "taxi-manhattan",
		Origin:      tr.Origin,
		Region:      tr.Region,
		MeasureRect: tr.MeasureRect,
	}
}

// Validate runs the §3.5 experiment: a 172-client campaign measures the
// replayer over [start, end), and the measured supply/death series are
// compared against the trace's ground truth.
func Validate(tr *Trace, seed, start, end int64) *Result {
	rep := NewReplayer(tr, seed)
	pts := client.GridLayout(tr.MeasureRect, TaxiClientSpacing, NumTaxiClients)
	camp := client.NewCampaign(rep, rep.Projection(), pts)
	camp.RegisterAll(rep)

	ds := measure.NewDataset(measure.Config{
		Profile:    profileFor(tr),
		Start:      start,
		End:        end,
		TrackTypes: []core.VehicleType{core.UberT},
	}, len(pts))
	camp.AddSink(ds)

	rep.RunUntil(start)
	camp.RunSim(rep, end)
	ds.Close()

	res := &Result{
		MeasuredSupply: ds.SupplySeries(core.UberT),
		MeasuredDeaths: ds.DeathSeries(core.UberT),
	}
	res.TruthSupply, res.TruthDeaths = tr.GroundTruth(start, end, measure.Interval)

	res.SupplyCapture = captureRate(res.MeasuredSupply, res.TruthSupply)
	res.DeathCapture = captureRate(res.MeasuredDeaths, res.TruthDeaths)
	if r, err := stats.Pearson(cleanPair(res.MeasuredSupply, res.TruthSupply)); err == nil {
		res.SupplyCorrelation = r
	}
	return res
}

// captureRate sums both series over aligned non-NaN buckets and returns
// measured/truth.
func captureRate(measured, truth *stats.Series) float64 {
	var m, t float64
	for i := range truth.Values {
		tv := truth.Values[i]
		if math.IsNaN(tv) || tv == 0 {
			continue
		}
		mv := 0.0
		if i < len(measured.Values) && !math.IsNaN(measured.Values[i]) {
			mv = measured.Values[i]
		}
		m += mv
		t += tv
	}
	if t == 0 {
		return math.NaN()
	}
	return m / t
}

// cleanPair aligns two series dropping buckets where either is NaN.
func cleanPair(a, b *stats.Series) ([]float64, []float64) {
	var xs, ys []float64
	for i := range a.Values {
		if i >= len(b.Values) {
			break
		}
		if math.IsNaN(a.Values[i]) || math.IsNaN(b.Values[i]) {
			continue
		}
		xs = append(xs, a.Values[i])
		ys = append(ys, b.Values[i])
	}
	return xs, ys
}
