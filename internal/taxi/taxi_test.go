package taxi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

func smallTrace(t testing.TB) *Trace {
	t.Helper()
	return GenerateTrace(GenConfig{Seed: 1, Days: 1, Taxis: 400})
}

func TestSegmentPos(t *testing.T) {
	s := Segment{Start: 0, End: 100, From: geo.Point{X: 0}, To: geo.Point{X: 200}}
	if s.Pos(0) != (geo.Point{X: 0}) {
		t.Error("start pos wrong")
	}
	if s.Pos(50) != (geo.Point{X: 100}) {
		t.Error("mid pos wrong")
	}
	if s.Pos(100) != (geo.Point{X: 200}) {
		t.Error("end pos wrong")
	}
	if s.Pos(-10) != (geo.Point{X: 0}) || s.Pos(500) != (geo.Point{X: 200}) {
		t.Error("clamping wrong")
	}
	// Degenerate zero-length segment.
	z := Segment{Start: 5, End: 5, From: geo.Point{X: 7}, To: geo.Point{X: 9}}
	if z.Pos(5) != (geo.Point{X: 7}) {
		t.Error("degenerate segment should return From")
	}
}

func TestGenerateTraceStructure(t *testing.T) {
	tr := smallTrace(t)
	if len(tr.Sessions) == 0 {
		t.Fatal("no sessions generated")
	}
	for si, s := range tr.Sessions {
		prevEnd := int64(-1 << 60)
		for gi, seg := range s.Segments {
			if seg.End < seg.Start {
				t.Fatalf("session %d seg %d: End < Start", si, gi)
			}
			if seg.Start < prevEnd {
				t.Fatalf("session %d seg %d: overlaps previous", si, gi)
			}
			prevEnd = seg.End
			if !tr.Region.Contains(seg.From) || !tr.Region.Contains(seg.To) {
				t.Fatalf("session %d seg %d: endpoints outside region", si, gi)
			}
		}
		// Segments alternate: first is visible (idle).
		if len(s.Segments) > 0 && !s.Segments[0].Visible {
			t.Fatalf("session %d starts with a trip", si)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a := GenerateTrace(GenConfig{Seed: 9, Days: 1, Taxis: 50})
	b := GenerateTrace(GenConfig{Seed: 9, Days: 1, Taxis: 50})
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatal("session counts differ")
	}
	for i := range a.Sessions {
		if len(a.Sessions[i].Segments) != len(b.Sessions[i].Segments) {
			t.Fatalf("session %d segment counts differ", i)
		}
		for j := range a.Sessions[i].Segments {
			if a.Sessions[i].Segments[j] != b.Sessions[i].Segments[j] {
				t.Fatalf("session %d segment %d differs", i, j)
			}
		}
	}
}

func TestGroundTruthSane(t *testing.T) {
	tr := smallTrace(t)
	supply, deaths := tr.GroundTruth(0, 86400, 300)
	var supplyPeak, deathTotal float64
	for i := range supply.Values {
		if v := supply.Values[i]; !math.IsNaN(v) && v > supplyPeak {
			supplyPeak = v
		}
		if v := deaths.Values[i]; !math.IsNaN(v) {
			deathTotal += v
		}
	}
	if supplyPeak == 0 {
		t.Error("ground-truth supply always zero")
	}
	if deathTotal == 0 {
		t.Error("no ground-truth pickups")
	}
	// Taxis per interval cannot exceed the fleet.
	if supplyPeak > 400 {
		t.Errorf("supply peak %v exceeds fleet size", supplyPeak)
	}
}

func TestReplayerVisibilityAndIDs(t *testing.T) {
	tr := smallTrace(t)
	rep := NewReplayer(tr, 3)
	rep.RunUntil(12 * 3600)
	if rep.VisibleTaxis() == 0 {
		t.Fatal("no taxis visible at noon")
	}
	loc := rep.Projection().ToLatLng(geo.Point{})
	resp, err := rep.PingClient("anyone", loc)
	if err != nil {
		t.Fatal(err)
	}
	st := resp.Status(core.UberT)
	if st == nil {
		t.Fatal("no UberT status")
	}
	if len(st.Cars) == 0 || len(st.Cars) > core.MaxVisibleCars {
		t.Fatalf("cars = %d", len(st.Cars))
	}
	for _, c := range st.Cars {
		if c.ID == "" {
			t.Error("taxi with empty public ID")
		}
	}
	if st.Surge != 1 {
		t.Errorf("taxi surge = %v, want 1", st.Surge)
	}
	if st.EWTSeconds <= 0 {
		t.Errorf("EWT = %v", st.EWTSeconds)
	}
}

func TestReplayerIDRandomizedPerIdlePeriod(t *testing.T) {
	// Track one session across an idle->trip->idle transition and verify
	// the public ID changes.
	tr := smallTrace(t)
	var si int = -1
	for i, s := range tr.Sessions {
		if len(s.Segments) >= 3 && s.Segments[0].Visible && !s.Segments[1].Visible {
			si = i
			break
		}
	}
	if si < 0 {
		t.Skip("no suitable session")
	}
	segs := tr.Sessions[si].Segments
	rep := NewReplayer(tr, 3)
	rep.RunUntil(segs[0].Start + TickSeconds)
	id1 := rep.pubID[si]
	rep.RunUntil(segs[2].Start + 2*TickSeconds)
	id2 := rep.pubID[si]
	if id1 == "" || id2 == "" {
		t.Skip("session not visible at probe times")
	}
	if id1 == id2 {
		t.Error("public ID must be re-randomized per idle period")
	}
}

func TestEstimateEndpoints(t *testing.T) {
	tr := smallTrace(t)
	rep := NewReplayer(tr, 3)
	rep.RunUntil(8 * 3600)
	loc := rep.Projection().ToLatLng(geo.Point{})
	prices, err := rep.EstimatePrice("x", loc)
	if err != nil || len(prices) != 1 || prices[0].Surge != 1 {
		t.Errorf("prices = %+v, err = %v", prices, err)
	}
	times, err := rep.EstimateTime("x", loc)
	if err != nil || len(times) != 1 || times[0].EWTSeconds <= 0 {
		t.Errorf("times = %+v, err = %v", times, err)
	}
}

func TestValidationCaptureRates(t *testing.T) {
	if testing.Short() {
		t.Skip("validation campaign is slow")
	}
	tr := GenerateTrace(GenConfig{Seed: 7, Days: 1, Taxis: 1200})
	// Validate over 6 busy hours (8am-2pm) to keep runtime modest.
	res := Validate(tr, 7, 8*3600, 14*3600)
	// Paper: 97% of cars, 95% of deaths. Accept ≥85% here; the shape
	// being validated is "a probe grid recovers nearly all ground truth".
	if res.SupplyCapture < 0.85 || res.SupplyCapture > 1.1 {
		t.Errorf("supply capture = %.3f, want ≥ 0.85", res.SupplyCapture)
	}
	if res.DeathCapture < 0.75 || res.DeathCapture > 1.25 {
		t.Errorf("death capture = %.3f, want ~0.95", res.DeathCapture)
	}
	if res.SupplyCorrelation < 0.9 {
		t.Errorf("measured/truth supply correlation = %.3f, want > 0.9", res.SupplyCorrelation)
	}
}
