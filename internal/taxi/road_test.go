package taxi

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/road"
)

func snapFixture() (*Trace, *road.Graph) {
	tr := GenerateTrace(GenConfig{Seed: 11, Days: 1, Taxis: 120})
	net := road.ForProfile("taxi-snap-test", tr.Region)
	return tr, net.Graph
}

// TestSnapEndpointsExact: snapping must not move where a taxi appears or
// disappears — only how it travels in between. Trace durations are
// likewise untouched, so supply/demand ground truth is identical.
func TestSnapEndpointsExact(t *testing.T) {
	tr, g := snapFixture()
	r := NewReplayer(tr, 1)
	r.EnableRoads(g)
	checked := 0
	for s := range tr.Sessions {
		for i, seg := range tr.Sessions[s].Segments {
			if !seg.Visible || checked >= 200 {
				continue
			}
			if got := r.snapPos(s, i, seg, seg.Start); got != seg.From {
				t.Fatalf("session %d seg %d: start pos %v, want %v", s, i, got, seg.From)
			}
			if got := r.snapPos(s, i, seg, seg.End); got != seg.To {
				t.Fatalf("session %d seg %d: end pos %v, want %v", s, i, got, seg.To)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no visible segments checked")
	}
}

// TestSnapFollowsStreets: mid-segment positions deviate from the straight
// chord (the whole point of snapping) while staying inside the region.
func TestSnapFollowsStreets(t *testing.T) {
	tr, g := snapFixture()
	r := NewReplayer(tr, 1)
	r.EnableRoads(g)
	deviated := false
	for s := range tr.Sessions {
		for i, seg := range tr.Sessions[s].Segments {
			if !seg.Visible || geo.Dist(seg.From, seg.To) < 500 {
				continue
			}
			mid := (seg.Start + seg.End) / 2
			snapped := r.snapPos(s, i, seg, mid)
			if !tr.Region.Contains(snapped) {
				t.Fatalf("snapped position %v left the region", snapped)
			}
			if geo.Dist(snapped, seg.Pos(mid)) > 40 {
				deviated = true
			}
		}
	}
	if !deviated {
		t.Fatal("no segment ever deviated from its straight chord: snapping inert")
	}
}

// TestSnapVisibilityUnchanged: the road mode changes positions, never
// timing — a snapped and a straight-line replay of the same trace show
// the same taxi count at every tick.
func TestSnapVisibilityUnchanged(t *testing.T) {
	tr, g := snapFixture()
	straight := NewReplayer(tr, 1)
	snapped := NewReplayer(tr, 1)
	snapped.EnableRoads(g)
	for tick := 0; tick < 720; tick++ { // one replayed hour
		straight.Step()
		snapped.Step()
		if a, b := straight.VisibleTaxis(), snapped.VisibleTaxis(); a != b {
			t.Fatalf("tick %d: straight sees %d taxis, snapped %d", tick, a, b)
		}
	}
	if straight.VisibleTaxis() == 0 {
		t.Fatal("replay had no visible taxis to compare")
	}
}
