package taxi

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/road"
)

// Snap-to-road playback. The straight-line replayer absorbs street
// detours into an effective point-to-point speed (taxiSpeed); with a
// street network attached, each visible segment instead plays back along
// its free-flow route. The segment's recorded duration is authoritative —
// the polyline's free-flow leg times only set the *relative* pacing, and
// the whole route is rescaled so the taxi leaves From at Start and
// reaches To exactly at End. Per-leg speed is therefore proportional to
// the edge's free-flow speed, scaled by T_freeflow/Duration, which keeps
// replayed trip durations equal to trace durations while positions hug
// the streets. GroundTruth stays straight-line: it defines what the
// probes are validated against and must not depend on the movement model.

// roadPath is one snapped segment: a polyline through street nodes with
// cumulative free-flow seconds at each vertex (cum[0] = 0). Off-road curb
// legs (From to the entry node, exit node to To) weigh in at taxiSpeed.
type roadPath struct {
	pts []geo.Point
	cum []float64
}

// EnableRoads switches visible-segment playback to snap-to-road along g.
// Must be called before the replay is stepped past interesting times;
// it re-syncs current positions immediately.
func (r *Replayer) EnableRoads(g *road.Graph) {
	r.roadG = g
	r.roadRt = road.NewRouter(g)
	r.roadSeg = make([]int, len(r.trace.Sessions))
	for i := range r.roadSeg {
		r.roadSeg[i] = -1
	}
	r.roadPaths = make([]roadPath, len(r.trace.Sessions))
	r.sync()
}

// segPos returns session s's position within its current segment,
// snapped to the road network when one is attached.
func (r *Replayer) segPos(s, i int, seg Segment) geo.Point {
	if r.roadG == nil || !seg.Visible {
		return seg.Pos(r.now)
	}
	return r.snapPos(s, i, seg, r.now)
}

// snapPos evaluates the snapped position at time t, building (and
// caching) the segment's route polyline on first use. One path is cached
// per session — segments play back in order, so the cache is a cursor,
// not a map.
func (r *Replayer) snapPos(s, i int, seg Segment, t int64) geo.Point {
	p := &r.roadPaths[s]
	if r.roadSeg[s] != i {
		r.buildPath(p, seg)
		r.roadSeg[s] = i
	}
	return p.pos(seg, t)
}

// buildPath routes seg.From → seg.To on free flow and fills p with the
// polyline and cumulative leg times. When routing fails (degenerate or
// disconnected endpoints) the path collapses to the straight line, which
// reproduces Segment.Pos exactly.
func (r *Replayer) buildPath(p *roadPath, seg Segment) {
	p.pts = append(p.pts[:0], seg.From)
	p.cum = append(p.cum[:0], 0)
	g := r.roadG
	a, b := g.NearestNode(seg.From), g.NearestNode(seg.To)
	if a >= 0 && b >= 0 && a != b {
		if path, _, _, ok := r.roadRt.RoutePath(a, b, nil, r.pathBuf); ok {
			// Curb leg From→entry node at the replay speed, then
			// node-to-node legs weighted by edge free-flow time.
			p.push(g.NodePos(path[0]), geo.Dist(seg.From, g.NodePos(path[0]))/taxiSpeed)
			for k := 1; k < len(path); k++ {
				dt := 0.0
				if e := g.EdgeBetween(path[k-1], path[k]); e >= 0 {
					dt = g.EdgeBase(e)
				} else {
					dt = geo.Dist(g.NodePos(path[k-1]), g.NodePos(path[k])) / taxiSpeed
				}
				p.push(g.NodePos(path[k]), dt)
			}
			r.pathBuf = path[:0]
		}
	}
	// Exit curb leg (or, with no route, the whole straight-line fallback).
	p.push(seg.To, geo.Dist(p.pts[len(p.pts)-1], seg.To)/taxiSpeed)
}

// push appends a vertex with a provisional cumulative time.
func (p *roadPath) push(pt geo.Point, dt float64) {
	p.pts = append(p.pts, pt)
	p.cum = append(p.cum, p.cum[len(p.cum)-1]+dt)
}

// pos maps the segment's time fraction through the time-weighted
// polyline. Endpoints are exact: t ≤ Start pins From, t ≥ End pins To.
func (p *roadPath) pos(seg Segment, t int64) geo.Point {
	last := len(p.pts) - 1
	total := p.cum[last]
	if t <= seg.Start || seg.End <= seg.Start || total <= 0 {
		return p.pts[0]
	}
	if t >= seg.End {
		return p.pts[last]
	}
	f := float64(t-seg.Start) / float64(seg.End-seg.Start)
	target := f * total
	k := sort.SearchFloat64s(p.cum, target)
	if k == 0 {
		k = 1
	}
	if k > last {
		k = last
	}
	legT := p.cum[k] - p.cum[k-1]
	lf := 1.0
	if legT > 0 {
		lf = (target - p.cum[k-1]) / legT
	}
	a, b := p.pts[k-1], p.pts[k]
	return a.Add(b.Sub(a).Scale(lf))
}
