// Package taxi is the ground-truth validation substrate of §3.5. The
// paper validated its Uber measurement methodology against the public
// 2013 NYC taxi trip dataset by replaying all taxi rides through a
// simulator that exposes the same eight-nearest-vehicles API, then
// checking that 172 emulated clients captured ≥95% of cars and deaths.
//
// That dataset is not shippable here, so GenerateTrace synthesizes an
// equivalent trip table: taxis working shifts, chaining trips with idle
// cruising between them, under a diurnal demand curve. The validation
// property being tested — does a grid of k-nearest probes recover the
// true supply/demand of a dense vehicle fleet? — depends only on the
// geometry and density dynamics, which the synthetic table matches
// (midtown densities, shift changes, trips of a few minutes).
//
// Replayer "drives" each taxi in a straight line point-to-point, exactly
// like the paper's simulator, randomizes the public ID each time a taxi
// becomes available, and treats a taxi idle for more than three hours as
// offline.
package taxi

import (
	"math/rand"

	"repro/internal/geo"
)

// MaxIdleSeconds is the §3.5 filter: a taxi idle longer than this goes
// offline instead of staying visible.
const MaxIdleSeconds = 3 * 3600

// Segment is one leg of a taxi's day. Visible segments are idle cruising
// between a drop-off and the next pickup (the taxi is on the map); hidden
// segments are passenger trips.
type Segment struct {
	Start, End int64
	From, To   geo.Point
	Visible    bool
}

// Pos interpolates the taxi's position at time t within the segment.
func (s Segment) Pos(t int64) geo.Point {
	if s.End <= s.Start || t <= s.Start {
		return s.From
	}
	if t >= s.End {
		return s.To
	}
	f := float64(t-s.Start) / float64(s.End-s.Start)
	return s.From.Add(s.To.Sub(s.From).Scale(f))
}

// Session is one taxi's continuous working period: alternating visible
// (idle) and hidden (trip) segments.
type Session struct {
	Taxi     int64
	Segments []Segment
}

// Trace is a synthetic stand-in for one city-week of the NYC taxi data.
type Trace struct {
	Origin      geo.LatLng
	Region      geo.Rect
	MeasureRect geo.Rect
	Start, End  int64
	Sessions    []Session
}

// GenConfig parameterizes trace synthesis.
type GenConfig struct {
	Seed int64
	// Days of data to generate (starting Monday midnight).
	Days int
	// Taxis is the fleet size; midtown Manhattan saw thousands of
	// distinct taxis per day (an order of magnitude more than Ubers, §4.2).
	Taxis int
}

// taxiSpeed is the straight-line replay speed in m/s (the paper's
// simulator drives point-to-point, absorbing street detours into the
// effective speed).
const taxiSpeed = 5.0

// GenerateTrace synthesizes the trip table. Geometry matches the midtown
// Manhattan measurement region (Fig 3c covers the same area as 3b).
func GenerateTrace(cfg GenConfig) *Trace {
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.Taxis <= 0 {
		cfg.Taxis = 2000
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7a71))
	tr := &Trace{
		Origin:      geo.LatLng{Lat: 40.7549, Lng: -73.9840},
		Region:      geo.NewRect(geo.Point{X: -1700, Y: -1500}, geo.Point{X: 1700, Y: 1500}),
		MeasureRect: geo.NewRect(geo.Point{X: -1100, Y: -900}, geo.Point{X: 1100, Y: 900}),
		Start:       0,
		End:         int64(cfg.Days) * 86400,
	}
	for id := int64(0); id < int64(cfg.Taxis); id++ {
		for day := 0; day < cfg.Days; day++ {
			base := int64(day) * 86400
			// NYC taxi shift changes cluster at ~5am and ~5pm.
			var shiftStart int64
			if id%2 == 0 {
				shiftStart = base + 5*3600 + int64(rng.Intn(2*3600))
			} else {
				shiftStart = base + 17*3600 + int64(rng.Intn(2*3600)) - 86400
				if shiftStart < 0 {
					shiftStart = base + int64(rng.Intn(4*3600))
				}
			}
			shiftLen := int64(8*3600 + rng.Intn(3*3600))
			s := genShift(rng, tr, id, shiftStart, shiftStart+shiftLen)
			if len(s.Segments) > 0 {
				tr.Sessions = append(tr.Sessions, s)
			}
		}
	}
	return tr
}

// genShift builds one session: idle → trip → idle → ... within the shift.
func genShift(rng *rand.Rand, tr *Trace, id int64, start, end int64) Session {
	s := Session{Taxi: id}
	pos := randPlace(rng, tr)
	t := start
	for t < end {
		// Idle: cruise toward the next fare. Idle durations shrink during
		// busy hours.
		h := t % 86400 / 3600
		meanIdle := 420.0 // 7 minutes
		if h >= 7 && h < 20 {
			meanIdle = 240.0
		} else if h >= 2 && h < 5 {
			meanIdle = 900.0
		}
		idle := int64(rng.ExpFloat64() * meanIdle)
		if idle < 30 {
			idle = 30
		}
		if idle > MaxIdleSeconds {
			// Taxi gives up: session ends here (offline, not a booking).
			s.Segments = append(s.Segments, Segment{
				Start: t, End: t + MaxIdleSeconds, From: pos, To: pos, Visible: true,
			})
			return s
		}
		pickup := nearPlace(rng, tr, pos, float64(idle)*taxiSpeed)
		s.Segments = append(s.Segments, Segment{
			Start: t, End: t + idle, From: pos, To: pickup, Visible: true,
		})
		t += idle
		if t >= end {
			break
		}
		// Trip: straight line to the drop-off.
		drop := randPlace(rng, tr)
		dur := int64(geo.Dist(pickup, drop)/taxiSpeed) + 60
		s.Segments = append(s.Segments, Segment{
			Start: t, End: t + dur, From: pickup, To: drop, Visible: false,
		})
		t += dur
		pos = drop
	}
	return s
}

// randPlace draws a position concentrated inside the measurement rect
// (midtown) with some spillover into the margin.
func randPlace(rng *rand.Rand, tr *Trace) geo.Point {
	r := tr.MeasureRect
	if rng.Float64() < 0.15 {
		r = tr.Region
	}
	return geo.Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

// nearPlace draws a position reachable from p within dist meters, clamped
// to the region.
func nearPlace(rng *rand.Rand, tr *Trace, p geo.Point, dist float64) geo.Point {
	if dist > 1500 {
		dist = 1500
	}
	q := geo.Point{
		X: p.X + (rng.Float64()*2-1)*dist,
		Y: p.Y + (rng.Float64()*2-1)*dist,
	}
	return tr.Region.Clamp(q)
}
