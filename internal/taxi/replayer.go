package taxi

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/road"
	"repro/internal/stats"
)

// TickSeconds is the replay step, matching the ping cadence.
const TickSeconds = 5

// Replayer plays a Trace back in simulation time and serves the same
// eight-nearest query surface as the Uber backend, so the identical
// measurement code can be validated against known ground truth (§3.5).
// Taxis appear as the UberT product with no surge.
type Replayer struct {
	trace *Trace
	proj  *geo.Projection
	rng   *rand.Rand
	now   int64

	grid   *geo.Grid
	segIdx []int    // per session: current segment cursor
	pubID  []string // per session: public ID of the current idle period
	inGrid []bool

	// Snap-to-road playback (nil/empty unless EnableRoads was called).
	roadG     *road.Graph
	roadRt    *road.Router
	roadSeg   []int      // per session: segment index the cached path is for
	roadPaths []roadPath // per session: cached route polyline
	pathBuf   []int32
}

var _ core.Service = (*Replayer)(nil)

// NewReplayer builds a replayer positioned at the trace start.
func NewReplayer(trace *Trace, seed int64) *Replayer {
	r := &Replayer{
		trace:  trace,
		proj:   geo.NewProjection(trace.Origin),
		rng:    rand.New(rand.NewSource(seed ^ 0x7471)),
		now:    trace.Start,
		grid:   geo.NewGrid(trace.Region, 150),
		segIdx: make([]int, len(trace.Sessions)),
		pubID:  make([]string, len(trace.Sessions)),
		inGrid: make([]bool, len(trace.Sessions)),
	}
	r.sync()
	return r
}

// Now returns the replay clock.
func (r *Replayer) Now() int64 { return r.now }

// Projection returns the trace's plane projection.
func (r *Replayer) Projection() *geo.Projection { return r.proj }

// Step advances the replay by one tick.
func (r *Replayer) Step() {
	r.now += TickSeconds
	r.sync()
}

// RunUntil advances the replay clock to end.
func (r *Replayer) RunUntil(end int64) {
	for r.now < end {
		r.Step()
	}
}

// sync brings every session's visibility and position up to r.now.
func (r *Replayer) sync() {
	for s := range r.trace.Sessions {
		segs := r.trace.Sessions[s].Segments
		i := r.segIdx[s]
		for i < len(segs) && segs[i].End <= r.now {
			// Leaving a segment; a new idle period will need a fresh ID.
			if segs[i].Visible {
				r.pubID[s] = ""
			}
			i++
		}
		r.segIdx[s] = i
		id := int64(s)
		if i >= len(segs) || segs[i].Start > r.now || !segs[i].Visible {
			if r.inGrid[s] {
				r.grid.Remove(id)
				r.inGrid[s] = false
				r.pubID[s] = ""
			}
			continue
		}
		// Visible now.
		if r.pubID[s] == "" {
			r.pubID[s] = fmt.Sprintf("t%08x%08x", r.rng.Uint32(), r.rng.Uint32())
		}
		pos := r.segPos(s, i, segs[i])
		if r.inGrid[s] {
			r.grid.Move(id, pos)
		} else {
			r.grid.Insert(id, pos)
			r.inGrid[s] = true
		}
	}
}

// Register implements the campaign's Registrar; the taxi simulator has no
// accounts, so it always succeeds.
func (r *Replayer) Register(clientID string) error { return nil }

// PingClient returns the eight nearest available taxis as UberT.
func (r *Replayer) PingClient(clientID string, loc geo.LatLng) (*core.PingResponse, error) {
	p := r.proj.ToPlane(loc)
	near := r.grid.KNearest(p, core.MaxVisibleCars)
	st := core.TypeStatus{
		Type:     core.UberT,
		TypeName: core.UberT.String(),
		Surge:    1,
	}
	for _, n := range near {
		st.Cars = append(st.Cars, core.CarView{
			ID:  r.pubID[n.ID],
			Pos: r.proj.ToLatLng(n.Pos),
		})
	}
	st.EWTSeconds = r.ewt(p)
	return &core.PingResponse{Time: r.now, Types: []core.TypeStatus{st}}, nil
}

func (r *Replayer) ewt(p geo.Point) float64 {
	near := r.grid.KNearest(p, 1)
	if len(near) == 0 {
		return 2580
	}
	return 30 + near[0].Dist/taxiSpeed
}

// EstimatePrice serves flat taxi fares (no surge), mirroring UberT.
func (r *Replayer) EstimatePrice(clientID string, loc geo.LatLng) ([]core.PriceEstimate, error) {
	f := core.DefaultFares()[core.UberT]
	mid := f.Fare(5000, 900, 1)
	return []core.PriceEstimate{{
		TypeName: core.UberT.String(), Surge: 1,
		LowUSD: mid * 0.8, HighUSD: mid * 1.2, Currency: "USD",
	}}, nil
}

// EstimateTime serves the nearest-taxi EWT.
func (r *Replayer) EstimateTime(clientID string, loc geo.LatLng) ([]core.TimeEstimate, error) {
	p := r.proj.ToPlane(loc)
	return []core.TimeEstimate{{TypeName: core.UberT.String(), EWTSeconds: r.ewt(p)}}, nil
}

// VisibleTaxis returns the instantaneous number of taxis on the map.
func (r *Replayer) VisibleTaxis() int { return r.grid.Len() }

// GroundTruth computes the true supply (unique available taxis inside the
// measurement rect per interval) and demand (pickups per interval) series
// from the trace itself — the quantities Fig 4 compares the measured
// series against.
func (t *Trace) GroundTruth(start, end, interval int64) (supply, deaths *stats.Series) {
	n := int((end - start) / interval)
	if n < 1 {
		n = 1
	}
	supply = stats.NewSeries(start, interval, n)
	deaths = stats.NewSeries(start, interval, n)
	for i := 0; i < n; i++ {
		supply.Values[i] = 0
		deaths.Values[i] = 0
	}
	for s := range t.Sessions {
		segs := t.Sessions[s].Segments
		for gi, seg := range segs {
			if !seg.Visible {
				continue
			}
			// Supply: each idle period contributes one "car" to every
			// interval during which it sits visibly inside the rect. The
			// unit is idle periods, not taxis, because public IDs are
			// randomized per idle period — the same unit the measured
			// unique-ID counts use.
			lo, hi := seg.Start, seg.End
			if lo < start {
				lo = start
			}
			if hi > end {
				hi = end
			}
			for iv := (lo - start) / interval; iv*interval+start < hi; iv++ {
				if iv < 0 || int(iv) >= n {
					continue
				}
				// Count the taxi if it sits inside the rect at any point
				// of the interval (sampled every 30 s), so ground truth
				// is a superset of what any probe could observe.
				wLo := max64(seg.Start, start+iv*interval)
				wHi := min64(seg.End, start+(iv+1)*interval)
				for ts := wLo; ts <= wHi; ts += 30 {
					if t.MeasureRect.Contains(seg.Pos(ts)) {
						supply.Values[iv]++
						break
					}
				}
			}
			// Demand: a visible segment followed by a trip is a pickup.
			if gi+1 < len(segs) && !segs[gi+1].Visible &&
				seg.End >= start && seg.End < end &&
				t.MeasureRect.Contains(seg.To) {
				iv := (seg.End - start) / interval
				if iv >= 0 && int(iv) < n {
					deaths.Values[iv]++
				}
			}
		}
	}
	return supply, deaths
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
