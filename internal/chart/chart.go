// Package chart renders time series and CDFs as plain-text plots for
// EXPERIMENTS.md and the CLI tools — the closest an offline, stdlib-only
// reproduction gets to the paper's figures.
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Line renders one series as an ASCII line chart of the given width and
// height. NaN values are gaps. Values are bucket-averaged down to width
// columns. The y-axis is annotated with the min and max.
func Line(values []float64, width, height int) string {
	return Lines([][]float64{values}, width, height, nil)
}

// Lines overlays several aligned series. Each series is drawn with its
// own glyph ('*', 'o', '+', 'x', ...); labels, when provided, produce a
// legend line.
func Lines(series [][]float64, width, height int, labels []string) string {
	if len(series) == 0 || width < 2 || height < 2 {
		return ""
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Downsample every series to width columns.
	cols := make([][]float64, len(series))
	lo, hi := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		cols[si] = downsample(s, width)
		for _, v := range cols[si] {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si := range cols {
		g := glyphs[si%len(glyphs)]
		for c, v := range cols[si] {
			if math.IsNaN(v) {
				continue
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][c] = g
		}
	}

	var sb strings.Builder
	yTop := fmt.Sprintf("%.2f", hi)
	yBot := fmt.Sprintf("%.2f", lo)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&sb, "%*s |", pad, yTop)
		case height - 1:
			fmt.Fprintf(&sb, "%*s |", pad, yBot)
		default:
			fmt.Fprintf(&sb, "%*s |", pad, "")
		}
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%*s +%s\n", pad, "", strings.Repeat("-", width))
	if len(labels) > 0 {
		fmt.Fprintf(&sb, "%*s  ", pad, "")
		for i, l := range labels {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%c=%s", glyphs[i%len(glyphs)], l)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// downsample averages values into n buckets, propagating NaN only for
// fully empty buckets.
func downsample(values []float64, n int) []float64 {
	out := make([]float64, n)
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		var sum float64
		cnt := 0
		for _, v := range values[lo:hi] {
			if math.IsNaN(v) {
				continue
			}
			sum += v
			cnt++
		}
		if cnt == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(cnt)
		}
	}
	return out
}

// CDF renders an empirical CDF (quantile curve sampled at width points)
// with P on the y-axis.
func CDF(quantile func(float64) float64, width, height int) string {
	xs := make([]float64, width)
	for i := range xs {
		xs[i] = quantile(float64(i) / float64(width-1))
	}
	return Line(xs, width, height)
}
