package chart

import (
	"math"
	"strings"
	"testing"
)

func TestLineBasicShape(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	out := Line(values, 40, 10)
	if out == "" {
		t.Fatal("empty chart")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // 10 rows + axis
		t.Fatalf("lines = %d, want 11", len(lines))
	}
	// Monotone series: first data row has the glyph near the right, last
	// near the left.
	top, bottom := lines[0], lines[9]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatal("glyphs missing")
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Error("rising series should place top glyphs to the right of bottom glyphs")
	}
	// Axis annotations (bucket averages: 100 values into 40 columns).
	if !strings.Contains(top, "98.00") || !strings.Contains(bottom, "0.50") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestLinesLegendAndOverlay(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	out := Lines([][]float64{a, b}, 20, 6, []string{"up", "down"})
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("second series glyph missing")
	}
}

func TestLineHandlesNaNAndEmpty(t *testing.T) {
	if Line(nil, 20, 5) != "" {
		t.Error("empty series should render empty")
	}
	allNaN := []float64{math.NaN(), math.NaN()}
	if Line(allNaN, 20, 5) != "" {
		t.Error("all-NaN series should render empty")
	}
	mixed := []float64{1, math.NaN(), 3, math.NaN(), 5}
	out := Line(mixed, 10, 4)
	if out == "" {
		t.Error("mixed series should render")
	}
}

func TestLineConstantSeries(t *testing.T) {
	out := Line([]float64{2, 2, 2, 2}, 10, 4)
	if out == "" {
		t.Fatal("constant series should render")
	}
	if !strings.Contains(out, "2.00") {
		t.Errorf("axis missing value:\n%s", out)
	}
}

func TestDegenerateDimensions(t *testing.T) {
	if Lines([][]float64{{1, 2}}, 1, 5, nil) != "" {
		t.Error("width < 2 should render empty")
	}
	if Lines([][]float64{{1, 2}}, 5, 1, nil) != "" {
		t.Error("height < 2 should render empty")
	}
	if Lines(nil, 5, 5, nil) != "" {
		t.Error("no series should render empty")
	}
}

func TestDownsample(t *testing.T) {
	v := []float64{1, 1, 3, 3}
	out := downsample(v, 2)
	if out[0] != 1 || out[1] != 3 {
		t.Errorf("downsample = %v", out)
	}
	// Upsampling repeats values without NaN.
	out = downsample([]float64{5}, 3)
	for _, x := range out {
		if x != 5 {
			t.Errorf("upsample = %v", out)
		}
	}
}

func TestCDFPlot(t *testing.T) {
	q := func(p float64) float64 { return p * p } // convex quantile curve
	out := CDF(q, 30, 8)
	if out == "" {
		t.Fatal("empty CDF plot")
	}
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "0.00") {
		t.Errorf("axis wrong:\n%s", out)
	}
}
