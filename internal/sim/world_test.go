package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

func newTestWorld(t testing.TB, profile *CityProfile, seed int64) *World {
	t.Helper()
	return NewWorld(Config{Profile: profile, Seed: seed})
}

func TestWorldInitialPopulation(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 1)
	n := w.OnlineDrivers()
	// Midnight population: PeakDrivers * SupplyDiurnal[0].
	want := int(float64(w.Profile().PeakDrivers) * w.Profile().SupplyDiurnal[0])
	if n != want {
		t.Errorf("initial drivers = %d, want %d", n, want)
	}
	if w.Now() != 0 {
		t.Errorf("Now = %d, want 0", w.Now())
	}
}

func TestWorldStepAdvancesTime(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 1)
	for i := 0; i < 10; i++ {
		w.Step()
	}
	if w.Now() != 50 {
		t.Errorf("Now = %d, want 50", w.Now())
	}
	w.Run(300)
	if w.Now() != 300 {
		t.Errorf("Now = %d, want 300", w.Now())
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() (int64, int64, int) {
		w := newTestWorld(t, SanFrancisco(), 99)
		w.Run(3600)
		return w.TotalPickups, w.TotalSpawned, w.OnlineDrivers()
	}
	p1, s1, n1 := run()
	p2, s2, n2 := run()
	if p1 != p2 || s1 != s2 || n1 != n2 {
		t.Errorf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", p1, s1, n1, p2, s2, n2)
	}
}

func TestWorldSeedsDiffer(t *testing.T) {
	w1 := newTestWorld(t, Manhattan(), 1)
	w2 := newTestWorld(t, Manhattan(), 2)
	w1.Run(3600)
	w2.Run(3600)
	if w1.TotalPickups == w2.TotalPickups && w1.TotalSpawned == w2.TotalSpawned {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestPopulationTracksDiurnalCurve(t *testing.T) {
	w := newTestWorld(t, SanFrancisco(), 5)
	// Run to 4am (low) and then to noon (high).
	w.Run(4 * 3600)
	low := w.OnlineDrivers()
	w.Run(12 * 3600)
	high := w.OnlineDrivers()
	if low >= high {
		t.Errorf("population should grow from 4am (%d) to noon (%d)", low, high)
	}
	p := w.Profile()
	// Noon population should be within 35% of the steady-state target.
	want := float64(p.PeakDrivers) * p.SupplyDiurnal[12]
	if math.Abs(float64(high)-want) > want*0.35 {
		t.Errorf("noon population = %d, want ~%.0f", high, want)
	}
}

func TestPickupsHappen(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 7)
	w.Run(2 * 3600)
	if w.TotalPickups == 0 {
		t.Fatal("no pickups in 2 hours")
	}
	if w.TotalDropoffs == 0 {
		t.Fatal("no dropoffs in 2 hours")
	}
	if w.TotalDropoffs > w.TotalPickups {
		t.Errorf("dropoffs (%d) exceed pickups (%d)", w.TotalDropoffs, w.TotalPickups)
	}
}

func TestBookedCarsInvisible(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 11)
	w.Run(3600)
	idle, enroute, ontrip := w.CountByState(core.UberX)
	if enroute+ontrip == 0 {
		t.Skip("no busy cars at this instant")
	}
	// Count visible UberX cars by querying a huge k from the center.
	visible := w.NearestCars(core.UberX, geo.Point{}, 100000)
	if len(visible) != idle {
		t.Errorf("visible cars = %d, idle = %d: booked cars must be hidden", len(visible), idle)
	}
}

func TestNearestCarsOrderingAndViews(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 13)
	w.Run(600)
	pos := geo.Point{X: 0, Y: 0}
	cars := w.NearestCars(core.UberX, pos, core.MaxVisibleCars)
	if len(cars) == 0 {
		t.Fatal("no cars visible in midtown at midnight+10m")
	}
	if len(cars) > core.MaxVisibleCars {
		t.Errorf("returned %d cars, cap is %d", len(cars), core.MaxVisibleCars)
	}
	proj := w.Projection()
	prev := -1.0
	for _, c := range cars {
		if c.ID == "" {
			t.Error("car with empty session id")
		}
		d := geo.Dist(pos, proj.ToPlane(c.Pos))
		if d < prev-1e-9 {
			t.Error("cars not sorted by distance")
		}
		prev = d
		if len(c.Path) == 0 {
			t.Error("car missing path vector")
		}
	}
}

func TestSessionIDsRandomizedPerSession(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 17)
	seen := make(map[string]bool)
	w.EachDriver(func(d *Driver) {
		if seen[d.Session] {
			t.Errorf("duplicate session id %s", d.Session)
		}
		seen[d.Session] = true
	})
	// After heavy churn, total distinct session ids == TotalSpawned.
	w.Run(6 * 3600)
	if w.TotalSpawned <= int64(len(seen)) {
		t.Error("expected new drivers to have spawned")
	}
}

func TestEWTReasonableRange(t *testing.T) {
	w := newTestWorld(t, SanFrancisco(), 19)
	w.Run(12 * 3600) // noon, dense supply
	ewt := w.EWT(core.UberX, geo.Point{})
	if ewt < dispatchOverhead || ewt > maxEWTSeconds {
		t.Errorf("EWT = %v, out of [%v, %v]", ewt, dispatchOverhead, maxEWTSeconds)
	}
	// Paper: average EWT ~3 minutes in city centers. Allow 1-8 min here.
	if ewt < 60 || ewt > 480 {
		t.Errorf("EWT at noon downtown = %.0fs, want 60-480s", ewt)
	}
	// A product with no cars gives the max.
	empty := NewWorld(Config{Profile: &CityProfile{
		Name: "empty", Origin: geo.LatLng{}, Region: geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}),
		MeasureRect:   geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}),
		PeakDrivers:   0,
		FleetShare:    map[core.VehicleType]float64{core.UberX: 1},
		DemandShare:   map[core.VehicleType]float64{core.UberX: 1},
		SupplyDiurnal: [24]float64{}, DemandDiurnal: [24]float64{}, WeekendDemandDiurnal: [24]float64{},
		MeanSessionMinutes: 60, Hotspots: nil,
	}, Seed: 1})
	if got := empty.EWT(core.UberX, geo.Point{}); got != maxEWTSeconds {
		t.Errorf("empty world EWT = %v, want %v", got, maxEWTSeconds)
	}
}

func TestSurgeElasticityReducesDemand(t *testing.T) {
	// With a surge provider pinning multiplier 3 everywhere, pickups must
	// drop sharply compared to no surge.
	run := func(m float64) int64 {
		w := newTestWorld(t, Manhattan(), 23)
		w.SetSurgeProvider(func(int) float64 { return m })
		w.Run(2 * 3600)
		return w.TotalPickups
	}
	base := run(1.0)
	surged := run(3.0)
	if base == 0 {
		t.Fatal("no baseline pickups")
	}
	if float64(surged) > float64(base)*0.5 {
		t.Errorf("pickups under 3.0 surge = %d, want well below baseline %d", surged, base)
	}
}

func TestSurgeBoostIncreasesArrivals(t *testing.T) {
	run := func(m float64) int64 {
		w := newTestWorld(t, SanFrancisco(), 29)
		w.SetSurgeProvider(func(int) float64 { return m })
		w.Run(4 * 3600)
		return w.TotalSpawned
	}
	base := run(1.0)
	surged := run(3.0)
	// SupplyBoost 0.12 with surge 3 means ~24% more arrivals; the effect is
	// small but must be visible over 4 hours.
	if float64(surged) < float64(base)*1.05 {
		t.Errorf("spawns under surge = %d, want > 1.05x baseline %d", surged, base)
	}
}

func TestWindowStatsAccumulateAndReset(t *testing.T) {
	w := newTestWorld(t, Manhattan(), 31)
	w.Run(300)
	st := w.PeekWindow(0)
	if st.Ticks != 60 {
		t.Errorf("Ticks = %d, want 60 (300s / 5s)", st.Ticks)
	}
	if st.IdleCarTicks == 0 {
		t.Error("no idle car ticks accumulated")
	}
	// The EWT feature is demand-weighted: one sample per latent request.
	if st.EWTN != st.LatentDemand {
		t.Errorf("EWT sampled %d times, want one per latent request (%d)", st.EWTN, st.LatentDemand)
	}
	got := w.ConsumeWindow(0)
	if got.Ticks != st.Ticks {
		t.Error("ConsumeWindow should return the accumulated stats")
	}
	if w.PeekWindow(0).Ticks != 0 {
		t.Error("ConsumeWindow should reset the window")
	}
	if w.PeekWindow(1).Ticks != 60 {
		t.Error("other areas should be untouched")
	}
}

func TestWindowStatsAverages(t *testing.T) {
	st := WindowStats{Ticks: 10, IdleCarTicks: 50, BusyCarTicks: 20, EWTSum: 1000, EWTN: 10}
	if st.AvgIdle() != 5 {
		t.Errorf("AvgIdle = %v", st.AvgIdle())
	}
	if st.AvgBusy() != 2 {
		t.Errorf("AvgBusy = %v", st.AvgBusy())
	}
	if st.AvgEWT() != 100 {
		t.Errorf("AvgEWT = %v", st.AvgEWT())
	}
	var zero WindowStats
	if zero.AvgIdle() != 0 || zero.AvgBusy() != 0 || zero.AvgEWT() != 0 {
		t.Error("zero-window averages should be 0")
	}
}

func TestDemandShock(t *testing.T) {
	base := func() int {
		w := newTestWorld(t, Manhattan(), 37)
		w.Run(1800)
		return w.PeekWindow(0).LatentDemand
	}()
	shocked := func() int {
		w := newTestWorld(t, Manhattan(), 37)
		w.InjectDemandShock(0, 2.0, 1800)
		w.Run(1800)
		return w.PeekWindow(0).LatentDemand
	}()
	if shocked <= base {
		t.Errorf("shocked demand (%d) should exceed base (%d)", shocked, base)
	}
}

func TestDriversStayInRegion(t *testing.T) {
	w := newTestWorld(t, SanFrancisco(), 41)
	w.Run(3 * 3600)
	r := w.Profile().Region
	w.EachDriver(func(d *Driver) {
		if !r.Contains(d.Pos) {
			t.Errorf("driver %d at %v outside region", d.ID, d.Pos)
		}
	})
}

func TestUberTNeverSurged(t *testing.T) {
	// UberT requests must ignore elasticity: pin an absurd surge and check
	// UberT pickups continue.
	w := newTestWorld(t, Manhattan(), 43)
	w.SetSurgeProvider(func(int) float64 { return 10 })
	w.Run(4 * 3600)
	_, enroute, ontrip := w.CountByState(core.UberT)
	idle, _, _ := w.CountByState(core.UberT)
	if idle+enroute+ontrip == 0 {
		t.Skip("no UberT drivers online")
	}
	// With surge 10, surgeable demand is ~95% priced out but UberT demand
	// is untouched, so some UberT pickups should exist.
	if w.TotalPickups == 0 {
		t.Error("expected some pickups (UberT is surge-immune)")
	}
}

func TestDriverPathRing(t *testing.T) {
	d := &Driver{}
	for i := 1; i <= 7; i++ {
		d.Pos = geo.Point{X: float64(i)}
		d.recordPath()
	}
	pts := d.PathPoints()
	if len(pts) != pathLen {
		t.Fatalf("len = %d, want %d", len(pts), pathLen)
	}
	// Oldest-first: 3,4,5,6,7.
	for i, p := range pts {
		if p.X != float64(i+3) {
			t.Errorf("pts[%d].X = %v, want %v", i, p.X, float64(i+3))
		}
	}
}

func TestStepToward(t *testing.T) {
	d := &Driver{Pos: geo.Point{X: 0, Y: 0}}
	if d.stepToward(geo.Point{X: 10, Y: 0}, 5) {
		t.Error("should not reach in one 5m step")
	}
	if d.Pos.X != 5 {
		t.Errorf("Pos.X = %v, want 5", d.Pos.X)
	}
	if !d.stepToward(geo.Point{X: 10, Y: 0}, 100) {
		t.Error("should reach with 100m step")
	}
	if d.Pos != (geo.Point{X: 10, Y: 0}) {
		t.Errorf("Pos = %v", d.Pos)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const mean = 4.2
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := float64(poisson(rng, mean))
		sum += x
		sum2 += x * x
	}
	m := sum / float64(n)
	v := sum2/float64(n) - m*m
	if math.Abs(m-mean) > 0.1 {
		t.Errorf("poisson mean = %v, want %v", m, mean)
	}
	if math.Abs(v-mean) > 0.3 {
		t.Errorf("poisson variance = %v, want %v", v, mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestStreetSpeedPattern(t *testing.T) {
	// Weekday rush slower than weekday midday, overnight fastest.
	rush := StreetSpeed(8 * 3600)                // Monday 8am
	midday := StreetSpeed(13 * 3600)             // Monday 1pm
	night := StreetSpeed(3 * 3600)               // Monday 3am
	weekendRush := StreetSpeed(5*86400 + 8*3600) // Saturday 8am
	if !(rush < midday && midday < night) {
		t.Errorf("speed ordering wrong: rush=%v midday=%v night=%v", rush, midday, night)
	}
	if weekendRush <= rush {
		t.Errorf("weekend morning (%v) should be faster than weekday rush (%v)", weekendRush, rush)
	}
}

func TestCalendarHelpers(t *testing.T) {
	if Weekend(0) {
		t.Error("t=0 is Monday")
	}
	if !Weekend(5 * SecondsPerDay) {
		t.Error("day 5 is Saturday")
	}
	if !Weekend(6*SecondsPerDay + 3600) {
		t.Error("day 6 is Sunday")
	}
	if Weekend(7 * SecondsPerDay) {
		t.Error("day 7 wraps to Monday")
	}
	if HourOfDay(26*3600) != 2 {
		t.Errorf("HourOfDay(26h) = %d, want 2", HourOfDay(26*3600))
	}
	if !Rush(8) || !Rush(17) || Rush(12) || Rush(3) {
		t.Error("Rush hours wrong")
	}
}

func TestSurgeAreasPartitionRegion(t *testing.T) {
	for _, p := range []*CityProfile{Manhattan(), SanFrancisco()} {
		areas := p.SurgeAreas()
		if len(areas) != 4 {
			t.Fatalf("%s: %d areas, want 4", p.Name, len(areas))
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			pt := geo.Point{
				X: p.Region.Min.X + rng.Float64()*p.Region.Width(),
				Y: p.Region.Min.Y + rng.Float64()*p.Region.Height(),
			}
			n := 0
			for _, a := range areas {
				if a.Contains(pt) {
					n++
				}
			}
			if n > 1 {
				t.Fatalf("%s: point %v in %d areas", p.Name, pt, n)
			}
		}
	}
}

func TestAreaOf(t *testing.T) {
	p := Manhattan()
	areas := p.SurgeAreas()
	if got := AreaOf(areas, geo.Point{X: 1e9, Y: 1e9}); got != -1 {
		t.Errorf("far point area = %d, want -1", got)
	}
	c := p.MeasureRect.Center()
	if got := AreaOf(areas, c); got < 0 {
		t.Errorf("center not in any area")
	}
}

func TestNormalizedShares(t *testing.T) {
	shares := NormalizedShares(map[core.VehicleType]float64{core.UberX: 3, core.UberXL: 1})
	if math.Abs(shares[int(core.UberX)]-0.75) > 1e-9 {
		t.Errorf("UberX share = %v", shares[int(core.UberX)])
	}
	if math.Abs(shares[int(core.UberXL)]-0.25) > 1e-9 {
		t.Errorf("UberXL share = %v", shares[int(core.UberXL)])
	}
	empty := NormalizedShares(nil)
	for _, v := range empty {
		if v != 0 {
			t.Error("empty shares should be all zero")
		}
	}
}

func TestProfilesMatchPaperOrdering(t *testing.T) {
	m, s := Manhattan(), SanFrancisco()
	// SF has ~58% more Ubers than Manhattan.
	ratio := float64(s.PeakDrivers) / float64(m.PeakDrivers)
	if ratio < 1.3 || ratio > 1.9 {
		t.Errorf("SF/MHTN fleet ratio = %.2f, want ~1.58", ratio)
	}
	// UberX is the most common product in both; Manhattan has more
	// BLACK/SUV share than SF.
	if m.FleetShare[core.UberX] <= m.FleetShare[core.UberBLACK] {
		t.Error("Manhattan: UberX should dominate")
	}
	if m.FleetShare[core.UberBLACK] <= s.FleetShare[core.UberBLACK] {
		t.Error("Manhattan should have relatively more UberBLACK than SF")
	}
	// Manhattan has UberT; SF does not.
	if m.FleetShare[core.UberT] == 0 {
		t.Error("Manhattan needs UberT")
	}
	if s.FleetShare[core.UberT] != 0 {
		t.Error("SF should have no UberT")
	}
	// SF visibility radius, and hence client spacing, is larger.
	if s.ClientSpacing <= m.ClientSpacing {
		t.Error("SF spacing should exceed Manhattan's")
	}
}
