package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/road"
)

// TestStepWorkerInvarianceRoad is the road-mode golden test: with
// street-network movement, congestion feedback, and road-ETA dispatch
// all active, the full world state (including every planned route and
// the congestion factor table) hashes identically for workers ∈ {1, 2, 8}.
func TestStepWorkerInvarianceRoad(t *testing.T) {
	profile := Manhattan()
	profile.RoadNetwork = true
	base := Config{Profile: profile, Seed: 42}
	const ticks = 400
	want := uint64(0)
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		h := hashAfter(cfg, ticks)
		if want == 0 {
			want = h
			continue
		}
		if h != want {
			t.Fatalf("workers=%d: road state hash %x, want %x (workers=1)", workers, h, want)
		}
	}
}

// TestRoadWorldRuns drives a road world through a busy stretch and checks
// the network is actually in use: trips complete, congestion rises above
// free flow somewhere, and every driver stays inside the region.
func TestRoadWorldRuns(t *testing.T) {
	profile := Manhattan()
	profile.RoadNetwork = true
	w := NewWorld(Config{Profile: profile, Seed: 7, StartTime: 17 * 3600, Workers: 4})
	sawCongestion := false
	for i := 0; i < 720; i++ { // one busy evening hour
		w.Step()
		if !sawCongestion {
			for _, f := range w.Road().Cong.Factors() {
				if f > 1.01 {
					sawCongestion = true
					break
				}
			}
		}
	}
	if w.TotalPickups == 0 || w.TotalDropoffs == 0 {
		t.Fatalf("road world moved no passengers: pickups=%d dropoffs=%d",
			w.TotalPickups, w.TotalDropoffs)
	}
	if !sawCongestion {
		t.Fatal("an hour of evening-rush trips never pushed any edge above free flow")
	}
	r := profile.Region
	w.EachDriver(func(d *Driver) {
		if !r.Contains(d.Pos) {
			t.Fatalf("driver %d escaped the region at %v", d.ID, d.Pos)
		}
	})
	if w.Road() == nil {
		t.Fatal("Road() nil on a RoadNetwork profile")
	}
}

// TestRoadSnapshotEWTMatchesWorld pins the frozen-factor snapshot EWT to
// the live World.EWT at the same tick boundary.
func TestRoadSnapshotEWTMatchesWorld(t *testing.T) {
	profile := Manhattan()
	profile.RoadNetwork = true
	w := NewWorld(Config{Profile: profile, Seed: 3, StartTime: 8 * 3600})
	for i := 0; i < 240; i++ {
		w.Step()
	}
	s := w.Snapshot()
	probes := []geo.Point{{}, {X: -800, Y: 600}, {X: 1200, Y: -900}, {X: 400, Y: 300}}
	for _, p := range probes {
		for _, vt := range []core.VehicleType{core.UberX, core.UberBLACK} {
			if got, want := s.EWT(vt, p), w.EWT(vt, p); got != want {
				t.Fatalf("EWT(%v, %v): snapshot %v, world %v", vt, p, got, want)
			}
		}
	}
}

// TestRoadSharedNetwork runs two worlds on one network with RoadShared:
// the worlds tally loads but never commit, the harness commits once per
// tick, and congestion produced by one fleet's trips slows the other's
// routes too (the coupling the two-service scenario rests on).
func TestRoadSharedNetwork(t *testing.T) {
	profile := Manhattan()
	net := road.ForProfile(profile.Name, profile.Region)
	uber := NewWorld(Config{Profile: profile, Seed: 1, StartTime: 17 * 3600, Road: net, RoadShared: true})
	taxi := NewWorld(Config{Profile: profile.TaxiCity(1), Seed: 2, StartTime: 17 * 3600, Road: net, RoadShared: true})
	if uber.Road() != taxi.Road() {
		t.Fatal("worlds did not share the network")
	}
	for i := 0; i < 360; i++ {
		uber.Step()
		taxi.Step()
		net.Cong.Commit()
	}
	if uber.TotalDropoffs == 0 || taxi.TotalDropoffs == 0 {
		t.Fatalf("shared-network fleets idle: uber=%d taxi=%d dropoffs",
			uber.TotalDropoffs, taxi.TotalDropoffs)
	}
	loaded := false
	for _, f := range net.Cong.Factors() {
		if f > 1.0 {
			loaded = true
			break
		}
	}
	if !loaded {
		t.Fatal("two fleets of evening trips left the shared network at free flow")
	}
}

// TestRoadFareUsesRoute checks road-mode fares price the street route:
// with a detour-heavy network the charged distance exceeds the straight
// line, so fare volume per trip is strictly above the degenerate
// zero-distance floor and the settle path consulted the router.
func TestRoadFareUsesRoute(t *testing.T) {
	profile := Manhattan()
	profile.RoadNetwork = true
	w := NewWorld(Config{Profile: profile, Seed: 9, StartTime: 17 * 3600})
	for i := 0; i < 360; i++ {
		w.Step()
	}
	if w.TotalPickups == 0 {
		t.Fatal("no pickups to settle fares for")
	}
	if w.FareVolume <= 0 {
		t.Fatalf("fare volume %v after %d pickups", w.FareVolume, w.TotalPickups)
	}
	// Commission split must be preserved in road mode.
	if got, want := w.CommissionUSD/w.FareVolume, CommissionRate; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("commission share %v, want %v", got, want)
	}
}
