package sim

// Road-network movement: the opt-in model (CityProfile.RoadNetwork or an
// explicit Config.Road) that replaces straight-line-with-detour-factor
// motion with driving along a street graph. Idle drivers cruise block to
// block, dispatched drivers follow congested shortest routes, fares and
// EWTs price the actual route, and each tick's trip density feeds back
// into per-edge congestion.
//
// Phase discipline (see parallel.go): route queries are pure reads of the
// immutable graph plus the congestion factor table, which only changes in
// Commit — a serial-phase call. Each movement shard owns a preallocated
// router, so the parallel phase performs no locking and no allocation,
// and results stay bit-identical for every worker count. The congestion
// tally walks slots in slot order inside the serial stats phase.

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/road"
)

// maxCruiseLeg caps how far an idle driver plans one cruise leg in road
// mode. The hotspot drift of the euclidean cruise is preserved (the
// target direction still comes from samplePlaceRand); the clamp just
// keeps the per-retarget route query short.
const maxCruiseLeg = 600.0

// roadRefineK is how many still-idle straight-line-nearest candidates the
// dispatch commit re-ranks by road ETA. The SlotGrid top-k is the
// pre-filter; the road refinement picks among them.
const roadRefineK = 4

// Road returns the world's street network, or nil when the world moves
// drivers on the euclidean plane.
func (w *World) Road() *road.Network { return w.road }

// ensureRoadRouters grows the per-shard router pool to shards entries.
// Serial-phase only (moveDrivers' preamble), so the parallel fan-out sees
// a fully built slice.
func (w *World) ensureRoadRouters(shards int) {
	if w.road == nil {
		return
	}
	for len(w.roadRouters) < shards {
		w.roadRouters = append(w.roadRouters, road.NewRouter(w.road.Graph))
	}
}

// planRoute computes a fresh route for slot s from its position to
// target, reusing the slot's route buffer. factors selects congested
// (live table) or free-flow (nil) edge costs. On failure (disconnected
// endpoints cannot happen on generated graphs, but custom networks may)
// the route is left empty and followRoute falls back to a straight leg.
func (w *World) planRoute(s int32, target geo.Point, rt *road.Router, factors []float64) {
	f := &w.fleet
	g := w.road.Graph
	from := g.NearestNode(f.pos[s])
	to := g.NearestNode(target)
	path, _, _, ok := rt.RoutePath(from, to, factors, f.route[s][:0])
	if !ok {
		path = path[:0]
	}
	f.route[s] = path
	f.routeHop[s] = 0
	f.routeEdge[s] = -1
	f.routeGoal[s] = target
}

// followRoute advances slot s along its planned route toward target by
// dt seconds, replanning when the goal changed or no route exists.
// fixedSpeed > 0 forces that speed on every leg (idle cruising);
// otherwise legs on graph edges run at the edge's congested speed and
// the off-road approach/egress legs at road.OffRoadSpeed. Reports
// whether the target was reached this tick.
func (w *World) followRoute(s int32, target geo.Point, dt, fixedSpeed float64, rt *road.Router, factors []float64) bool {
	f := &w.fleet
	g := w.road.Graph
	if f.routeHop[s] < 0 || f.routeGoal[s] != target {
		w.planRoute(s, target, rt, factors)
	}
	budget := dt
	for budget > 0 {
		route := f.route[s]
		hop := int(f.routeHop[s])
		var next geo.Point
		sp := fixedSpeed
		if hop < len(route) {
			next = g.NodePos(route[hop])
			if sp <= 0 {
				if e := f.routeEdge[s]; e >= 0 {
					fac := 1.0
					if factors != nil {
						fac = factors[e]
					}
					sp = g.EdgeSpeed(e) / fac
				} else {
					sp = road.OffRoadSpeed // curb approach to the first node
				}
			}
		} else {
			next = target
			if sp <= 0 {
				sp = road.OffRoadSpeed
			}
		}
		d := geo.Dist(f.pos[s], next)
		if step := sp * budget; step < d {
			f.pos[s] = f.pos[s].Add(next.Sub(f.pos[s]).Scale(step / d))
			return false
		}
		f.pos[s] = next
		budget -= d / sp
		if hop < len(route) {
			f.routeHop[s] = int32(hop + 1)
			if hop+1 < len(route) {
				f.routeEdge[s] = g.EdgeBetween(route[hop], route[hop+1])
			} else {
				f.routeEdge[s] = -1
			}
		} else {
			f.routeHop[s], f.routeEdge[s] = -1, -1
			return true
		}
	}
	return false
}

// advance moves a dispatched (en-route or on-trip) driver toward target:
// along the congested road network when one is active, otherwise the
// straight line with the Manhattan detour factor.
func (w *World) advance(s int32, target geo.Point, dt, speed float64, rt *road.Router) bool {
	if w.road == nil {
		return w.fleet.stepToward(s, target, speed*dt/manhattanFactor)
	}
	return w.followRoute(s, target, dt, 0, rt, w.road.Cong.Factors())
}

// roadCruise is the road-mode idle walk: drift toward sampled places
// (hotspot-weighted, like the euclidean cruise) but along streets, one
// clamped leg at a time. Idle legs route on free flow — a cruising driver
// has no passenger clock to optimize — and drive at idleSpeed. Reports
// whether the position moved.
func (w *World) roadCruise(s int32, dt float64, rng *rand.Rand, rt *road.Router, o *shardOps) bool {
	f := &w.fleet
	if w.cfg.Pricing == PricingDriverSet && w.now-f.idleSince[s] > 1200 {
		// No fare for 20 minutes: lower the asking price and keep
		// waiting (lose-shift).
		f.priceFactor[s] = clampFactor(f.priceFactor[s] - 0.1)
		f.idleSince[s] = w.now
	}
	if w.now >= f.cruiseUntil[s] ||
		(f.routeHop[s] < 0 && geo.Dist(f.pos[s], f.cruiseTarget[s]) < 20) {
		tgt := w.samplePlaceRand(rng)
		if v := tgt.Sub(f.pos[s]); v.Norm() > maxCruiseLeg {
			tgt = f.pos[s].Add(v.Scale(maxCruiseLeg / v.Norm()))
		}
		f.cruiseTarget[s] = tgt
		f.cruiseUntil[s] = w.now + int64(120+rng.Intn(600))
	}
	before := f.pos[s]
	w.followRoute(s, f.cruiseTarget[s], dt, idleSpeed, rt, nil)
	if f.pos[s] == before {
		return false
	}
	o.moves[f.typ[s]] = append(o.moves[f.typ[s]], geo.SlotPoint{Slot: s, Pos: f.pos[s]})
	return true
}

// roadTravelTime returns the door-to-door travel time from from to to:
// curb legs to the nearest nodes at road.OffRoadSpeed plus the congested
// route between them. Falls back to the euclidean detour formula when the
// endpoints are not connected.
func roadTravelTime(g *road.Graph, rt *road.Router, factors []float64, from, to geo.Point) float64 {
	a, b := g.NearestNode(from), g.NearestNode(to)
	sec, _, ok := rt.Route(a, b, factors)
	if !ok {
		return geo.Dist(from, to) * manhattanFactor / road.OffRoadSpeed
	}
	return geo.Dist(from, g.NodePos(a))/road.OffRoadSpeed + sec +
		geo.Dist(g.NodePos(b), to)/road.OffRoadSpeed
}

// roadEWT is the road-mode wait-time formula: dispatch overhead plus the
// congested road travel time of the car, capped at the paper's observed
// maximum. World.EWT uses it with the live factor table, Snapshot.EWT
// with the frozen clone — same formula, so the two agree at a tick
// boundary.
func roadEWT(g *road.Graph, rt *road.Router, factors []float64, carPos, pos geo.Point) float64 {
	t := dispatchOverhead + roadTravelTime(g, rt, factors, carPos, pos)
	if t > maxEWTSeconds {
		t = maxEWTSeconds
	}
	return t
}

// roadEWTFrom is roadEWT against the live world (serial phases only).
func (w *World) roadEWTFrom(carPos, pos geo.Point) float64 {
	return roadEWT(w.road.Graph, w.roadRouter, w.road.Cong.Factors(), carPos, pos)
}

// roadTripEstimate returns the street distance (meters) and congested
// duration (seconds, excluding boarding time) of a pickup→dest trip.
func roadTripEstimate(g *road.Graph, rt *road.Router, factors []float64, pickup, dest geo.Point) (meters, seconds float64) {
	a, b := g.NearestNode(pickup), g.NearestNode(dest)
	sec, m, ok := rt.Route(a, b, factors)
	if !ok {
		m = geo.Dist(pickup, dest) * manhattanFactor
		return m, m / road.OffRoadSpeed
	}
	legA := geo.Dist(pickup, g.NodePos(a))
	legB := geo.Dist(g.NodePos(b), dest)
	return legA + m + legB, legA/road.OffRoadSpeed + sec + legB/road.OffRoadSpeed
}

// roadPickCandidate is the road-mode dispatch refinement: among up to
// roadRefineK still-idle straight-line-nearest candidates within the
// dispatch radius, pick the one with the lowest congested road ETA (ties:
// the straight-line-nearest, since it is considered first). Runs in the
// serial commit, so the single serial router suffices.
func (w *World) roadPickCandidate(sub *subPlan) (int32, bool) {
	f := &w.fleet
	g := w.road.Graph
	factors := w.road.Cong.Factors()
	best := int32(-1)
	var bestETA float64
	consider := func(slot int32, dist float64) {
		if dist > dispatchRadius {
			return
		}
		eta := roadTravelTime(g, w.roadRouter, factors, f.pos[slot], sub.pickup)
		if best < 0 || eta < bestETA {
			best, bestETA = slot, eta
		}
	}
	n := 0
	for i := 0; i < int(sub.candN) && n < roadRefineK; i++ {
		c := sub.cand[i]
		if DriverState(f.state[c.slot]) != StateIdle {
			continue
		}
		n++
		consider(c.slot, c.dist)
	}
	if best < 0 && !sub.candAll {
		// No in-radius candidate survived from the phase-start list — either
		// earlier bookings this tick took them all, or the only idle entries
		// left sit beyond the dispatch radius. Re-query the live grid, like
		// the euclidean fallback. (Gating on n == 0 would skip the re-query
		// whenever an out-of-radius idle candidate inflated the count.)
		w.knnBuf = w.grids[sub.vt].KNearestInto(sub.pickup, roadRefineK, w.knnBuf)
		for _, nbr := range w.knnBuf {
			consider(nbr.Slot, nbr.Dist)
		}
	}
	return best, best >= 0
}

// roadTally counts each busy driver on its current edge and commits the
// tick's loads into the congestion table. Serial stats phase only. In a
// shared-network setup (two services on one city's streets) every world
// tallies but only the harness commits, once, after all of them.
func (w *World) roadTally() {
	if w.road == nil {
		return
	}
	f := &w.fleet
	cong := w.road.Cong
	for s := int32(0); int(s) < f.high; s++ {
		if !f.live[s] || DriverState(f.state[s]) == StateIdle {
			continue
		}
		if e := f.routeEdge[s]; e >= 0 {
			cong.AddLoad(e)
		}
	}
	if !w.cfg.RoadShared {
		cong.Commit()
	}
}
