package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// checkInvariants verifies the world's internal bookkeeping: the driver
// index maps every driver to its slice slot, the per-product grids hold
// exactly the idle drivers, and every grid position matches the driver.
func checkInvariants(t *testing.T, w *World) {
	t.Helper()
	idleByType := make(map[core.VehicleType]map[int64]geo.Point)
	seen := 0
	w.EachDriver(func(d *Driver) {
		seen++
		if d.State == StateIdle {
			m := idleByType[d.Type]
			if m == nil {
				m = make(map[int64]geo.Point)
				idleByType[d.Type] = m
			}
			m[d.ID] = d.Pos
		}
	})
	if seen != w.OnlineDrivers() {
		t.Fatalf("EachDriver visited %d, OnlineDrivers says %d", seen, w.OnlineDrivers())
	}
	for _, vt := range core.AllVehicleTypes() {
		grid := w.grids[int(vt)]
		want := idleByType[vt]
		if grid.Len() != len(want) {
			t.Fatalf("%v grid holds %d, want %d idle drivers", vt, grid.Len(), len(want))
		}
		grid.Each(func(id int64, p geo.Point) {
			wp, ok := want[id]
			if !ok {
				t.Fatalf("%v grid holds non-idle or unknown driver %d", vt, id)
			}
			if wp != p {
				t.Fatalf("%v grid position for %d is stale: %v vs %v", vt, id, p, wp)
			}
		})
	}
	for id, idx := range w.driverIdx {
		if idx < 0 || idx >= len(w.drivers) || w.drivers[idx].ID != id {
			t.Fatalf("driverIdx[%d] = %d is stale", id, idx)
		}
	}
}

func TestWorldInvariantsUnderChurn(t *testing.T) {
	for _, mode := range []PricingMode{PricingSurge, PricingDriverSet} {
		w := NewWorld(Config{Profile: SanFrancisco(), Seed: 99, Pricing: mode})
		w.SetSurgeProvider(func(int) float64 { return 1.3 })
		for hour := 0; hour < 6; hour++ {
			w.Run(int64(hour+1) * 3600)
			checkInvariants(t, w)
		}
	}
}

func TestWorldInvariantsWithCollusionAndShocks(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 5})
	w.Run(8 * 3600)
	checkInvariants(t, w)
	w.ForceOffline(core.UberX, 0, 30, 600)
	w.InjectDemandShock(1, 1.8, 1200)
	checkInvariants(t, w)
	w.Run(w.Now() + 1800)
	checkInvariants(t, w)
}

func TestPoolWorldInvariants(t *testing.T) {
	w := NewWorld(Config{Profile: poolProfile(), Seed: 13})
	w.Run(3 * 3600)
	checkInvariants(t, w)
}
