package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// checkInvariants verifies the world's internal bookkeeping: the fleet's
// slot accounting balances, the per-product grids hold exactly the idle
// drivers with fresh positions, and the joinable-POOL index holds exactly
// the joinable trips.
func checkInvariants(t *testing.T, w *World) {
	t.Helper()
	f := &w.fleet
	idleByType := make(map[core.VehicleType]map[int32]geo.Point)
	seen := 0
	for s := int32(0); int(s) < f.high; s++ {
		if !f.live[s] {
			continue
		}
		seen++
		if DriverState(f.state[s]) == StateIdle {
			vt := core.VehicleType(f.typ[s])
			m := idleByType[vt]
			if m == nil {
				m = make(map[int32]geo.Point)
				idleByType[vt] = m
			}
			m[s] = f.pos[s]
		}
	}
	if seen != w.OnlineDrivers() {
		t.Fatalf("saw %d live slots, OnlineDrivers says %d", seen, w.OnlineDrivers())
	}
	if f.n+len(f.free) != f.high {
		t.Fatalf("slot accounting broken: n=%d free=%d high=%d", f.n, len(f.free), f.high)
	}
	for _, s := range f.free {
		if f.live[s] {
			t.Fatalf("free slot %d is marked live", s)
		}
	}
	for _, vt := range core.AllVehicleTypes() {
		grid := w.grids[int(vt)]
		want := idleByType[vt]
		if grid.Len() != len(want) {
			t.Fatalf("%v grid holds %d, want %d idle drivers", vt, grid.Len(), len(want))
		}
		grid.Each(func(slot int32, p geo.Point) {
			wp, ok := want[slot]
			if !ok {
				t.Fatalf("%v grid holds non-idle or unknown slot %d", vt, slot)
			}
			if wp != p {
				t.Fatalf("%v grid position for %d is stale: %v vs %v", vt, slot, p, wp)
			}
		})
	}
	joinable := 0
	for s := int32(0); int(s) < f.high; s++ {
		if w.joinableSlot(s) {
			joinable++
			if !w.poolGrid.Contains(s) {
				t.Fatalf("joinable POOL slot %d missing from pool index", s)
			}
			if p, _ := w.poolGrid.Position(s); p != f.pos[s] {
				t.Fatalf("pool index position for %d is stale: %v vs %v", s, p, f.pos[s])
			}
		}
	}
	if w.poolGrid.Len() != joinable {
		t.Fatalf("pool index holds %d, want %d joinable trips", w.poolGrid.Len(), joinable)
	}
}

func TestWorldInvariantsUnderChurn(t *testing.T) {
	for _, mode := range []PricingMode{PricingSurge, PricingDriverSet} {
		w := NewWorld(Config{Profile: SanFrancisco(), Seed: 99, Pricing: mode})
		w.SetSurgeProvider(func(int) float64 { return 1.3 })
		for hour := 0; hour < 6; hour++ {
			w.Run(int64(hour+1) * 3600)
			checkInvariants(t, w)
		}
	}
}

func TestWorldInvariantsWithCollusionAndShocks(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 5})
	w.Run(8 * 3600)
	checkInvariants(t, w)
	w.ForceOffline(core.UberX, 0, 30, 600)
	w.InjectDemandShock(1, 1.8, 1200)
	checkInvariants(t, w)
	w.Run(w.Now() + 1800)
	checkInvariants(t, w)
}

func TestPoolWorldInvariants(t *testing.T) {
	w := NewWorld(Config{Profile: poolProfile(), Seed: 13})
	w.Run(3 * 3600)
	checkInvariants(t, w)
}
