package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// poolProfile is a POOL-heavy city so shared-ride matches are frequent.
func poolProfile() *CityProfile {
	p := Manhattan()
	p.FleetShare = map[core.VehicleType]float64{core.UberPOOL: 1}
	p.DemandShare = map[core.VehicleType]float64{core.UberPOOL: 1}
	p.PeakDrivers = 120
	p.PeakRequestsPerHour = 600
	return p
}

func TestPoolJoinsHappen(t *testing.T) {
	w := NewWorld(Config{Profile: poolProfile(), Seed: 3})
	w.Run(6 * 3600)
	if w.TotalPickups == 0 {
		t.Fatal("no pickups")
	}
	if w.TotalPoolJoins == 0 {
		t.Fatal("no POOL joins despite a POOL-only city")
	}
	// Joins are a subset of pickups.
	if w.TotalPoolJoins >= w.TotalPickups {
		t.Errorf("joins (%d) should be a fraction of pickups (%d)", w.TotalPoolJoins, w.TotalPickups)
	}
	// Every rider is eventually dropped: dropoffs track pickups.
	if w.TotalDropoffs == 0 {
		t.Fatal("no dropoffs")
	}
}

func TestPoolAccountingBalances(t *testing.T) {
	w := NewWorld(Config{Profile: poolProfile(), Seed: 9})
	w.Run(4 * 3600)
	// Drain all in-flight trips by stopping demand (run in a world copy
	// is impossible; instead let remaining trips finish: pool trips are
	// bounded, so a generous grace period suffices with demand still
	// arriving — dropoffs must stay within riders picked up).
	if w.TotalDropoffs > w.TotalPickups {
		t.Errorf("dropoffs (%d) exceed pickups (%d)", w.TotalDropoffs, w.TotalPickups)
	}
	// Riders in cars are bounded by 2 per POOL driver.
	w.EachDriver(func(d *Driver) {
		if d.PoolRiders < 0 || d.PoolRiders > 2 {
			t.Errorf("driver %d has %d riders", d.ID, d.PoolRiders)
		}
		if d.State != StateOnTrip && d.State != StateEnRoute && d.PoolRiders != 0 {
			t.Errorf("idle driver %d carries %d riders", d.ID, d.PoolRiders)
		}
	})
}

func TestPoolJoinDivertsRoute(t *testing.T) {
	w := NewWorld(Config{Profile: poolProfile(), Seed: 5})
	w.Run(600)
	// Find the lowest-slot joinable POOL trip; the matcher picks the
	// lowest slot within the radius, so a pickup right next to this
	// driver must join exactly this trip.
	f := &w.fleet
	target := int32(-1)
	for s := int32(0); int(s) < f.high; s++ {
		if w.joinableSlot(s) {
			target = s
			break
		}
	}
	if target < 0 {
		t.Skip("no single-rider POOL trip at probe time")
	}
	oldDest := f.dest[target]
	pickup := f.pos[target].Add(geo.Point{X: 50, Y: 50})
	if !w.joinPool(pickup, -1) {
		t.Fatal("join refused despite an eligible trip nearby")
	}
	if f.poolRiders[target] != 2 {
		t.Errorf("riders = %d, want 2", f.poolRiders[target])
	}
	if f.dest[target] != pickup || f.destDrop[target] {
		t.Error("driver should divert to the new pickup first")
	}
	if st := f.stops[target]; len(st) != 2 || !st[0].Drop || st[0].Pos != oldDest {
		t.Errorf("stop queue wrong: %+v", st)
	}
}

func TestPoolJoinRespectsRadius(t *testing.T) {
	w := NewWorld(Config{Profile: poolProfile(), Seed: 7})
	w.Run(600)
	far := geo.Point{X: 99999, Y: 99999}
	if w.joinPool(far, -1) {
		t.Error("joined a pool from outside the match radius")
	}
}
