package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// fnvHash accumulates an FNV-1a 64 digest over primitive values; the
// world-state hash below feeds every observable field through it so two
// worlds hash equal only when they are field-for-field identical.
type fnvHash struct{ h uint64 }

func newFnvHash() *fnvHash { return &fnvHash{h: 1469598103934665603} }

func (f *fnvHash) byte(b byte) {
	f.h ^= uint64(b)
	f.h *= 1099511628211
}

func (f *fnvHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

func (f *fnvHash) i64(v int64)    { f.u64(uint64(v)) }
func (f *fnvHash) int(v int)      { f.u64(uint64(int64(v))) }
func (f *fnvHash) f64(v float64)  { f.u64(math.Float64bits(v)) }
func (f *fnvHash) pt(p geo.Point) { f.f64(p.X); f.f64(p.Y) }
func (f *fnvHash) bool(b bool) {
	if b {
		f.byte(1)
	} else {
		f.byte(0)
	}
}
func (f *fnvHash) str(s string) {
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
	f.byte(0)
}

// worldHash digests the full observable world state: every driver field
// (in slice order), the suspension and shock queues, all lifetime
// counters, the price and fare ledgers, and the window stats. Two runs
// that diverge anywhere — a single RNG draw, one swapped commit — hash
// differently.
func worldHash(w *World) uint64 {
	f := newFnvHash()
	f.i64(w.now)
	f.i64(w.tick)
	f.i64(w.nextID)
	f.int(w.fleet.n)
	f.int(w.fleet.high)
	f.int(len(w.fleet.free))
	var d Driver
	for s := int32(0); int(s) < w.fleet.high; s++ {
		if !w.fleet.live[s] {
			continue
		}
		w.fleet.view(s, &d)
		f.i64(d.ID)
		f.str(d.Session)
		f.int(int(d.Type))
		f.pt(d.Pos)
		f.int(int(d.State))
		f.pt(d.Pickup)
		f.pt(d.Dest)
		f.bool(d.destDrop)
		f.int(len(d.stops))
		for _, s := range d.stops {
			f.pt(s.Pos)
			f.bool(s.Drop)
		}
		f.int(d.PoolRiders)
		f.i64(d.OfflineAt)
		f.f64(d.PriceFactor)
		f.i64(d.idleSince)
		f.f64(d.EarnedUSD)
		f.pt(d.cruiseTarget)
		f.i64(d.cruiseUntil)
		f.int(d.pathN)
		f.int(d.pathPos)
		for _, p := range d.path {
			f.pt(p)
		}
		// Road-route state (zero/-1 on euclidean worlds, hashed anyway).
		f.int(int(w.fleet.routeHop[s]))
		f.int(int(w.fleet.routeEdge[s]))
		f.pt(w.fleet.routeGoal[s])
		f.int(len(w.fleet.route[s]))
		for _, v := range w.fleet.route[s] {
			f.int(int(v))
		}
	}
	if w.road != nil {
		for _, v := range w.road.Cong.Factors() {
			f.f64(v)
		}
	}
	f.int(len(w.suspended))
	for _, s := range w.suspended {
		f.int(int(s.vt))
		f.pt(s.pos)
		f.i64(s.returnAt)
	}
	f.int(len(w.shocks))
	for _, s := range w.shocks {
		f.int(s.area)
		f.f64(s.factor)
		f.i64(s.until)
	}
	f.i64(w.TotalSpawned)
	f.i64(w.TotalOffline)
	f.i64(w.TotalSuspended)
	f.i64(w.TotalResumed)
	f.i64(w.TotalPickups)
	f.i64(w.TotalDropoffs)
	f.i64(w.TotalPricedOut)
	f.i64(w.TotalUnmet)
	f.i64(w.TotalPoolJoins)
	f.f64(w.priceSum)
	f.f64(w.priceSumSq)
	f.i64(w.priceN)
	f.f64(w.FareVolume)
	f.f64(w.CommissionUSD)
	for _, v := range w.AreaFares {
		f.f64(v)
	}
	for _, st := range w.areaStats {
		f.int(st.Ticks)
		f.f64(st.IdleCarTicks)
		f.f64(st.BusyCarTicks)
		f.int(st.Pickups)
		f.int(st.LatentDemand)
		f.int(st.PricedOut)
		f.int(st.Unfulfilled)
		f.f64(st.EWTSum)
		f.int(st.EWTN)
	}
	for vt := range w.grids {
		f.int(w.grids[vt].Len())
	}
	return f.h
}

// hashAfter runs a fresh world for ticks steps with the given worker
// count and returns its state hash.
func hashAfter(cfg Config, ticks int) uint64 {
	w := NewWorld(cfg)
	w.SetSurgeProvider(func(a int) float64 { return 1 + 0.1*float64(a) })
	for i := 0; i < ticks; i++ {
		w.Step()
	}
	return worldHash(w)
}

// TestStepWorkerInvariance is the tentpole's golden test: after 1000
// ticks at a fixed seed, the full world state hashes identically for
// workers ∈ {1, 2, 8}, and identically across repeat runs.
func TestStepWorkerInvariance(t *testing.T) {
	base := Config{Profile: Manhattan(), Seed: 42}
	const ticks = 1000
	want := uint64(0)
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		h := hashAfter(cfg, ticks)
		if want == 0 {
			want = h
			continue
		}
		if h != want {
			t.Fatalf("workers=%d: state hash %x, want %x (workers=1)", workers, h, want)
		}
	}
	cfg := base
	cfg.Workers = 2
	if h := hashAfter(cfg, ticks); h != want {
		t.Fatalf("repeat run with workers=2: state hash %x, want %x", h, want)
	}
}

// TestStepWorkerInvarianceDriverSet covers the pricing-sensitive paths
// (lose-shift in cruise, suspension/resume) under the parallel tick.
func TestStepWorkerInvarianceDriverSet(t *testing.T) {
	run := func(workers int) uint64 {
		w := NewWorld(Config{Profile: SanFrancisco(), Seed: 7, Pricing: PricingDriverSet, Workers: workers})
		for i := 0; i < 300; i++ {
			w.Step()
		}
		w.ForceOffline(core.UberX, 0, 15, 300)
		for i := 0; i < 300; i++ {
			w.Step()
		}
		return worldHash(w)
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if h := run(workers); h != want {
			t.Fatalf("workers=%d: state hash %x, want %x (workers=1)", workers, h, want)
		}
	}
}

// TestParallelStepInvariants runs the multi-worker tick under the full
// bookkeeping invariant check (grids vs drivers vs index); with -race
// this is also the data-race probe for the compute/commit split.
func TestParallelStepInvariants(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 11, Workers: 8})
	for hour := 0; hour < 3; hour++ {
		w.Run(int64(hour+1) * 3600)
		checkInvariants(t, w)
		if s := w.Snapshot(); s.Now != w.Now() {
			t.Fatalf("snapshot time %d, want %d", s.Now, w.Now())
		}
	}
}

// TestShardStreamIndependence pins the shard RNG keying: the same
// (seed, tick, shard) triple replays the same stream, and changing any
// component of the triple changes the draws.
func TestShardStreamIndependence(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 1})
	a := w.shardRand(3).Uint64()
	if b := w.shardRand(3).Uint64(); b != a {
		t.Fatalf("same (seed,tick,shard) drew %x then %x", a, b)
	}
	if b := w.shardRand(4).Uint64(); b == a {
		t.Fatal("neighboring shards share a stream")
	}
	w.tick++
	if b := w.shardRand(3).Uint64(); b == a {
		t.Fatal("consecutive ticks share a stream")
	}
	w2 := NewWorld(Config{Profile: Manhattan(), Seed: 2})
	if b := w2.shardRand(3).Uint64(); b == a {
		t.Fatal("different seeds share a stream")
	}
}

// benchProfile10k is a Manhattan variant sized so the world holds about
// ten thousand online drivers at the midnight start.
func benchProfile10k() *CityProfile {
	p := Manhattan()
	p.PeakDrivers = 22200
	p.PeakRequestsPerHour = 2600
	return p
}

// BenchmarkWorldStep is the serial reference: one worker, ~10k drivers.
func BenchmarkWorldStep(b *testing.B) {
	w := NewWorld(Config{Profile: benchProfile10k(), Seed: 1, Workers: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

// BenchmarkWorldStepParallel sweeps the tick worker count on the same
// ~10k-driver world. Scaling beyond 1× needs GOMAXPROCS > 1; on a
// single-core host the sub-benchmarks only demonstrate that the
// fan-out overhead is small.
func BenchmarkWorldStepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := NewWorld(Config{Profile: benchProfile10k(), Seed: 1, Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		})
	}
}
