package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// clearFleet takes every seeded driver offline so a test can lay out a
// hand-built fleet at exact positions.
func clearFleet(w *World) {
	f := &w.fleet
	for s := int32(0); int(s) < f.high; s++ {
		if f.live[s] {
			w.removeSlot(s)
		}
	}
}

// TestRoadPickCandidateRequeriesWhenNoInRadius is the regression test for
// the road-dispatch fallback gate: the phase-start candidate list can be
// "non-empty" yet useless — its near entries booked away by earlier
// requests this tick, its only idle entry beyond the dispatch radius.
// The old `n == 0` gate counted that far idle candidate and skipped the
// live-grid re-query, failing a request the euclidean mechanism would
// have served; the fix re-queries whenever no in-radius candidate was
// found.
func TestRoadPickCandidateRequeriesWhenNoInRadius(t *testing.T) {
	profile := Manhattan()
	profile.RoadNetwork = true
	w := NewWorld(Config{Profile: profile, Seed: 1})
	clearFleet(w)

	pickup := geo.Point{X: -1600, Y: -1400}
	// A: nearest at phase start, booked away mid-tick below.
	a := w.addDriver(core.UberX, geo.Point{X: -1550, Y: -1400})
	// B: idle but far beyond dispatchRadius — the candidate that fooled
	// the n == 0 gate.
	b := w.addDriver(core.UberX, geo.Point{X: 1650, Y: 1450})
	if d := geo.Dist(pickup, w.fleet.pos[b]); d <= dispatchRadius {
		t.Fatalf("test geometry broken: far driver at %.0f m, need > %d", d, int64(dispatchRadius))
	}
	// C: idle and within radius, but absent from the frozen list (at phase
	// start it was ranked behind since-booked cars).
	c := w.addDriver(core.UberX, geo.Point{X: -1100, Y: -1400})

	sub := &subPlan{pickup: pickup, vt: uint8(core.UberX), candN: 2}
	sub.cand[0] = slotDist{slot: a, dist: geo.Dist(pickup, w.fleet.pos[a])}
	sub.cand[1] = slotDist{slot: b, dist: geo.Dist(pickup, w.fleet.pos[b])}

	// An earlier request this tick books A: off the idle grid, en route.
	w.grids[w.fleet.typ[a]].Remove(a)
	w.fleet.state[a] = uint8(StateEnRoute)

	got, ok := w.roadPickCandidate(sub)
	if !ok {
		t.Fatal("dispatch failed: far frozen candidate suppressed the live-grid re-query")
	}
	if got != c {
		t.Fatalf("picked slot %d, want the in-radius live-grid driver %d", got, c)
	}
}
