package sim

import (
	"math"
	"testing"
)

func TestFareLedgerBalances(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 3})
	w.Run(4 * 3600)
	if w.FareVolume <= 0 {
		t.Fatal("no fare volume after 4 hours")
	}
	// Commission is exactly 20% of volume.
	if math.Abs(w.CommissionUSD-w.FareVolume*CommissionRate) > 1e-6 {
		t.Errorf("commission %v != 20%% of volume %v", w.CommissionUSD, w.FareVolume)
	}
	// Driver earnings plus commission equal the volume. Earnings of
	// departed drivers are gone from the roster, so check the invariant
	// the other way: online drivers' earnings never exceed the 80% pool.
	var earned float64
	w.EachDriver(func(d *Driver) { earned += d.EarnedUSD })
	if earned > w.FareVolume*(1-CommissionRate)+1e-6 {
		t.Errorf("online drivers earned %v, exceeding the 80%% pool of %v", earned, w.FareVolume*0.8)
	}
	// Area fares sum to (nearly) the total. The shortfall comes from
	// pickups clamped exactly onto the region boundary, which sit outside
	// every area polygon under the ray-casting edge convention.
	var areaSum float64
	for _, f := range w.AreaFares {
		areaSum += f
	}
	if areaSum > w.FareVolume+1e-6 {
		t.Errorf("area fares %v exceed volume %v", areaSum, w.FareVolume)
	}
	if areaSum < w.FareVolume*0.95 {
		t.Errorf("area fares %v far below volume %v", areaSum, w.FareVolume)
	}
}

func TestSurgeRaisesFarePerTrip(t *testing.T) {
	run := func(m float64) float64 {
		w := NewWorld(Config{Profile: Manhattan(), Seed: 7})
		w.SetSurgeProvider(func(int) float64 { return m })
		w.Run(2 * 3600)
		if w.TotalPickups == 0 {
			t.Fatal("no pickups")
		}
		return w.FareVolume / float64(w.TotalPickups)
	}
	base := run(1.0)
	surged := run(2.0)
	if surged <= base*1.3 {
		t.Errorf("fare/trip under 2.0 surge = %.2f, want well above base %.2f", surged, base)
	}
}

func TestDriversEarn(t *testing.T) {
	w := NewWorld(Config{Profile: SanFrancisco(), Seed: 11})
	w.Run(3 * 3600)
	earners := 0
	w.EachDriver(func(d *Driver) {
		if d.EarnedUSD > 0 {
			earners++
		}
		if d.EarnedUSD < 0 {
			t.Errorf("driver %d has negative earnings", d.ID)
		}
	})
	if earners == 0 {
		t.Error("no online driver has earned anything after 3 hours")
	}
}
