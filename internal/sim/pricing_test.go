package sim

import (
	"testing"

	"repro/internal/core"
)

func TestDriverSetPricingBasics(t *testing.T) {
	w := NewWorld(Config{Profile: SanFrancisco(), Seed: 7, Pricing: PricingDriverSet})
	w.Run(6 * 3600)
	if w.TotalPickups == 0 {
		t.Fatal("no pickups in the driver-set market")
	}
	mean, std, n := w.PriceStats()
	if n == 0 {
		t.Fatal("no price samples")
	}
	if mean < 0.7 || mean > 2.5 {
		t.Errorf("mean price factor = %.2f outside the market bounds", mean)
	}
	if std <= 0 {
		t.Error("driver-set prices should disperse")
	}
	// Factors stay within the clamp.
	w.EachDriver(func(d *Driver) {
		if d.PriceFactor < 0.7-1e-9 || d.PriceFactor > 2.5+1e-9 {
			t.Errorf("driver %d factor %v out of bounds", d.ID, d.PriceFactor)
		}
	})
}

func TestSurgePricingRecordsMultipliersPaid(t *testing.T) {
	w := NewWorld(Config{Profile: SanFrancisco(), Seed: 7})
	w.SetSurgeProvider(func(int) float64 { return 1.5 })
	w.Run(2 * 3600)
	mean, _, n := w.PriceStats()
	if n == 0 {
		t.Fatal("no price samples")
	}
	// With a pinned 1.5 multiplier, surgeable pickups pay 1.5 and UberT
	// (absent in SF) none; mean must be 1.5.
	if mean < 1.45 || mean > 1.55 {
		t.Errorf("mean price = %.3f, want ~1.5", mean)
	}
}

func TestDriverSetAdaptationConvergesDispersion(t *testing.T) {
	// Adaptation should keep price dispersion bounded: after a day the
	// standard deviation stays well under the full clamp width.
	w := NewWorld(Config{Profile: Manhattan(), Seed: 9, Pricing: PricingDriverSet})
	w.Run(SecondsPerDay)
	_, std, n := w.PriceStats()
	if n == 0 {
		t.Fatal("no samples")
	}
	if std > 0.6 {
		t.Errorf("price dispersion = %.2f, adaptation should bound it", std)
	}
}

func TestDriverSetCheapestWins(t *testing.T) {
	// In the driver-set market passengers pick the cheapest of the
	// nearby drivers, so the mean price paid sits below the mean posted
	// price (selection effect).
	w := NewWorld(Config{Profile: SanFrancisco(), Seed: 21, Pricing: PricingDriverSet})
	w.Run(4 * 3600)
	meanPaid, _, n := w.PriceStats()
	if n == 0 {
		t.Fatal("no samples")
	}
	var postedSum float64
	var posted int
	w.EachDriver(func(d *Driver) {
		if d.Type == core.UberX && d.State == StateIdle {
			postedSum += d.PriceFactor
			posted++
		}
	})
	if posted == 0 {
		t.Skip("no idle UberX to compare")
	}
	meanPosted := postedSum / float64(posted)
	if meanPaid > meanPosted+0.05 {
		t.Errorf("mean paid %.2f exceeds mean posted %.2f; cheapest-wins broken", meanPaid, meanPosted)
	}
}
