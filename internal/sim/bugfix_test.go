package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// TestResumeRestoresPricingState is the regression test for the
// suspended-driver resume bug: returning drivers used to be rebuilt
// without PriceFactor or idleSince, so under PricingDriverSet they
// quoted factor 0 and the 20-minute lose-shift rule fired on their
// first cruise tick.
func TestResumeRestoresPricingState(t *testing.T) {
	p := Manhattan()
	p.PeakRequestsPerHour = 0 // no bookings: win-stay can't move factors
	w := NewWorld(Config{Profile: p, Seed: 3, Pricing: PricingDriverSet})
	w.Run(3600)

	n := w.ForceOffline(core.UberX, 0, 10, 60)
	if n == 0 {
		t.Fatal("no idle UberX drivers to suspend")
	}
	firstResumedID := w.nextID

	// Jump to the return time and resume directly, observing the drivers
	// exactly as dispatch would see them before any cruise tick runs.
	w.now += 60
	w.resumeSuspended()
	if len(w.suspended) != 0 {
		t.Fatalf("%d drivers still suspended after return time", len(w.suspended))
	}
	if w.TotalResumed != int64(n) {
		t.Fatalf("TotalResumed = %d, want %d", w.TotalResumed, n)
	}

	factors := make(map[int64]float64)
	w.EachDriver(func(d *Driver) {
		if d.ID < firstResumedID {
			return
		}
		if d.PriceFactor < 0.7 || d.PriceFactor > 2.5 {
			t.Errorf("resumed driver %d quotes factor %.2f, want within [0.7, 2.5]", d.ID, d.PriceFactor)
		}
		if d.idleSince != w.now {
			t.Errorf("resumed driver %d has idleSince %d, want %d (resume time)", d.ID, d.idleSince, w.now)
		}
		factors[d.ID] = d.PriceFactor
	})
	if len(factors) != n {
		t.Fatalf("found %d resumed drivers, want %d", len(factors), n)
	}

	// One full tick later no lose-shift may fire: with zero demand the
	// resumed drivers' factors must be exactly unchanged.
	w.Step()
	w.EachDriver(func(d *Driver) {
		want, ok := factors[d.ID]
		if !ok {
			return
		}
		if d.PriceFactor != want {
			t.Errorf("driver %d factor moved %.2f -> %.2f one tick after resume (spurious lose-shift)",
				d.ID, want, d.PriceFactor)
		}
	})
}

// TestZeroAreaWorldSustainsPopulation is the regression test for the
// spawnArrivals zero-area bug: with no surge areas the average surge
// divided by zero, the NaN arrival rate poisoned the Poisson draw, and
// the spawn process went haywire. The population of an area-less world
// must track its diurnal target like any other world.
func TestZeroAreaWorldSustainsPopulation(t *testing.T) {
	w := NewWorld(Config{Profile: SanFrancisco(), Seed: 7})
	// Strip the surge areas, as a taxi-validation or custom profile rig
	// would: no areas, no per-area stats, only the region remains.
	w.areas = nil
	w.areaStats = nil
	w.AreaFares = nil
	w.areaIndex = geo.NewAreaIndex(nil, gridCellMeters)

	target := w.OnlineDrivers()
	if target == 0 {
		t.Fatal("world started empty")
	}
	for i := 0; i < 100; i++ {
		w.Step()
		if pop := w.OnlineDrivers(); pop > 4*target {
			t.Fatalf("population exploded to %d (target %d) after %d ticks", pop, target, i+1)
		}
	}
	pop := w.OnlineDrivers()
	if pop < target/2 || pop > 2*target {
		t.Fatalf("population %d after 100 ticks, want near target %d", pop, target)
	}
	if w.TotalSpawned == 0 {
		t.Fatal("no drivers spawned in 100 ticks: arrival rate collapsed")
	}
}

// TestSuspensionChurnCountersSplit is the regression test for the
// churn double-count: a ForceOffline → resume cycle used to register as
// one driver death (TotalOffline) plus one fresh spawn (TotalSpawned),
// skewing lifespan- and churn-derived figures. Suspension cycles now
// keep their own ledger.
func TestSuspensionChurnCountersSplit(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 5})
	w.Run(3600)

	spawned, offline := w.TotalSpawned, w.TotalOffline
	n := w.ForceOffline(core.UberX, 0, 20, 120)
	if n == 0 {
		t.Fatal("no idle UberX drivers to suspend")
	}
	if w.TotalSuspended != int64(n) {
		t.Fatalf("TotalSuspended = %d, want %d", w.TotalSuspended, n)
	}
	if w.TotalOffline != offline {
		t.Fatalf("ForceOffline moved TotalOffline %d -> %d: suspensions must not count as deaths",
			offline, w.TotalOffline)
	}
	if w.TotalSpawned != spawned {
		t.Fatalf("ForceOffline moved TotalSpawned %d -> %d", spawned, w.TotalSpawned)
	}

	w.Run(w.Now() + 600) // well past the 120 s return
	if w.TotalResumed != int64(n) {
		t.Fatalf("TotalResumed = %d, want %d", w.TotalResumed, n)
	}
	if len(w.suspended) != 0 {
		t.Fatalf("%d drivers still suspended", len(w.suspended))
	}
}
