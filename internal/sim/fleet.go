package sim

import (
	"repro/internal/core"
	"repro/internal/geo"
)

// fleet is the struct-of-arrays driver store. Each online session lives
// in a slot: hot per-driver fields are parallel columns indexed by slot,
// so the movement phase streams cache-line-friendly data instead of
// chasing one heap pointer per driver; the rarely-read fields (session
// string, POOL stop queue) sit in a cold side table so they never occupy
// hot-loop cache lines.
//
// Slots are recycled through a LIFO free list, and every slot carries a
// generation counter that bumps on free: a Handle (slot, gen) taken
// during one phase can be validated later instead of silently reading a
// recycled slot. All allocation and freeing happens in the serial commit
// sections of Step, so slot assignment — and with it every slot-keyed
// data structure — is deterministic and worker-count independent.
type fleet struct {
	n    int     // live sessions
	high int     // all live slots are < high (column length)
	free []int32 // LIFO recycled slots

	live []bool
	gen  []uint32

	// hot columns
	id           []int64
	typ          []uint8 // core.VehicleType
	state        []uint8 // DriverState
	pos          []geo.Point
	pickup       []geo.Point
	dest         []geo.Point
	destDrop     []bool
	poolRiders   []uint8
	offlineAt    []int64
	idleSince    []int64
	priceFactor  []float64
	earned       []float64
	cruiseTarget []geo.Point
	cruiseUntil  []int64

	// position-history ring, pathLen entries per slot, flat
	path    []geo.Point
	pathN   []uint8
	pathPos []uint8

	// road-mode route state (unused, but still allocated, on euclidean
	// worlds): the planned node path, the next hop's index into it (-1 =
	// no route), the directed edge currently being traversed (-1 = the
	// off-road approach/egress leg), and the goal the route was planned
	// for (a mismatch triggers a replan — how POOL diversions and fresh
	// dispatches pick up their new destination).
	route     [][]int32
	routeHop  []int32
	routeEdge []int32
	routeGoal []geo.Point

	// cold side table
	session []string
	stops   [][]PoolStop
}

// Handle names a fleet slot at a point in time; valid(h) fails once the
// slot is freed (and possibly recycled).
type Handle struct {
	slot int32
	gen  uint32
}

// handle returns the current Handle for a live slot.
func (f *fleet) handle(s int32) Handle { return Handle{slot: s, gen: f.gen[s]} }

// valid reports whether h still names the same session.
func (f *fleet) valid(h Handle) bool {
	return h.slot >= 0 && int(h.slot) < f.high && f.live[h.slot] && f.gen[h.slot] == h.gen
}

// alloc returns a free slot, extending the columns when the free list is
// empty. The returned slot's columns hold stale values; the caller
// overwrites every field.
func (f *fleet) alloc() int32 {
	f.n++
	if k := len(f.free); k > 0 {
		s := f.free[k-1]
		f.free = f.free[:k-1]
		f.live[s] = true
		return s
	}
	s := int32(f.high)
	f.high++
	f.live = append(f.live, true)
	f.gen = append(f.gen, 0)
	f.id = append(f.id, 0)
	f.typ = append(f.typ, 0)
	f.state = append(f.state, 0)
	f.pos = append(f.pos, geo.Point{})
	f.pickup = append(f.pickup, geo.Point{})
	f.dest = append(f.dest, geo.Point{})
	f.destDrop = append(f.destDrop, false)
	f.poolRiders = append(f.poolRiders, 0)
	f.offlineAt = append(f.offlineAt, 0)
	f.idleSince = append(f.idleSince, 0)
	f.priceFactor = append(f.priceFactor, 0)
	f.earned = append(f.earned, 0)
	f.cruiseTarget = append(f.cruiseTarget, geo.Point{})
	f.cruiseUntil = append(f.cruiseUntil, 0)
	for i := 0; i < pathLen; i++ {
		f.path = append(f.path, geo.Point{})
	}
	f.pathN = append(f.pathN, 0)
	f.pathPos = append(f.pathPos, 0)
	f.route = append(f.route, nil)
	f.routeHop = append(f.routeHop, -1)
	f.routeEdge = append(f.routeEdge, -1)
	f.routeGoal = append(f.routeGoal, geo.Point{})
	f.session = append(f.session, "")
	f.stops = append(f.stops, nil)
	return s
}

// freeSlot releases a slot back to the free list, bumping its generation
// and dropping cold references so the GC can reclaim them.
func (f *fleet) freeSlot(s int32) {
	f.live[s] = false
	f.gen[s]++
	f.session[s] = ""
	f.stops[s] = nil
	f.n--
	f.free = append(f.free, s)
}

// resetRoute clears the slot's road-route state (capacity is kept — a
// recycled slot replans into the same buffer).
func (f *fleet) resetRoute(s int32) {
	f.route[s] = f.route[s][:0]
	f.routeHop[s] = -1
	f.routeEdge[s] = -1
	f.routeGoal[s] = geo.Point{}
}

// resetPath seeds the path ring with the slot's current position.
func (f *fleet) resetPath(s int32) {
	base := int(s) * pathLen
	f.path[base] = f.pos[s]
	f.pathN[s] = 1
	f.pathPos[s] = 1 % pathLen
}

// record appends the slot's current position to its path ring and
// reports whether the ring's observable content changed. When the ring
// is already saturated with the current position (a parked car), the
// write is skipped entirely — the delta-snapshot builder relies on this
// to leave parked cars' frozen wire views untouched.
func (f *fleet) record(s int32) bool {
	base := int(s) * pathLen
	p := f.pos[s]
	if f.pathN[s] == pathLen {
		same := true
		for j := 0; j < pathLen; j++ {
			if f.path[base+j] != p {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	f.path[base+int(f.pathPos[s])] = p
	f.pathPos[s] = (f.pathPos[s] + 1) % pathLen
	if f.pathN[s] < pathLen {
		f.pathN[s]++
	}
	return true
}

// pathPoints appends the slot's recent positions oldest-first to buf.
func (f *fleet) pathPoints(s int32, buf []geo.Point) []geo.Point {
	base := int(s) * pathLen
	n := int(f.pathN[s])
	start := int(f.pathPos[s]) - n
	for i := 0; i < n; i++ {
		buf = append(buf, f.path[base+(start+i+2*pathLen)%pathLen])
	}
	return buf
}

// stepToward moves the slot toward target by at most dist meters and
// reports whether the target was reached.
func (f *fleet) stepToward(s int32, target geo.Point, dist float64) bool {
	v := target.Sub(f.pos[s])
	n := v.Norm()
	if n <= dist {
		f.pos[s] = target
		return true
	}
	f.pos[s] = f.pos[s].Add(v.Scale(dist / n))
	return false
}

// view materializes the slot into the exported Driver struct. The copy is
// what EachDriver hands to callbacks; it shares only the immutable
// session string and the stop queue's backing array.
func (f *fleet) view(s int32, d *Driver) {
	d.ID = f.id[s]
	d.Session = f.session[s]
	d.Type = core.VehicleType(f.typ[s])
	d.Pos = f.pos[s]
	d.State = DriverState(f.state[s])
	d.Pickup = f.pickup[s]
	d.Dest = f.dest[s]
	d.destDrop = f.destDrop[s]
	d.stops = f.stops[s]
	d.PoolRiders = int(f.poolRiders[s])
	d.OfflineAt = f.offlineAt[s]
	d.PriceFactor = f.priceFactor[s]
	d.idleSince = f.idleSince[s]
	d.EarnedUSD = f.earned[s]
	d.cruiseTarget = f.cruiseTarget[s]
	d.cruiseUntil = f.cruiseUntil[s]
	base := int(s) * pathLen
	copy(d.path[:], f.path[base:base+pathLen])
	d.pathN = int(f.pathN[s])
	d.pathPos = int(f.pathPos[s])
}
