package sim

import "testing"

// The million-driver tick rests on two allocation-free paths: the
// movement phase (the per-tick cost proportional to fleet size) and the
// no-churn snapshot path (the query side's steady state). These guards
// pin both at exactly zero allocations per run; CI runs them with the
// normal test suite.

// TestMovePhaseZeroAlloc drives a serial world to steady state, then
// checks the whole movement phase — shard RNGs, state machines, path
// rings, grid commits — runs without a single heap allocation.
func TestMovePhaseZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("long warmup")
	}
	w := NewWorld(Config{Profile: Manhattan(), Seed: 21, Workers: 1})
	// Reach steady state under the full tick first (populations, shard
	// buffers, RNG pool), then under the isolated move phase (drains the
	// sessions that expire at the frozen clock and saturates grid-cell
	// capacities under cruise drift).
	for i := 0; i < 1000; i++ {
		w.Step()
	}
	dt := float64(w.cfg.TickSeconds)
	for i := 0; i < 600; i++ {
		w.moveDrivers(dt)
	}
	if avg := testing.AllocsPerRun(200, func() { w.moveDrivers(dt) }); avg != 0 {
		t.Fatalf("move phase allocates %.3f times per tick, want 0", avg)
	}
}

// TestSnapshotNoChurnZeroAlloc pins the delta-snapshot fast path: with no
// marked changes since the last build, Snapshot returns the cached
// snapshot without allocating.
func TestSnapshotNoChurnZeroAlloc(t *testing.T) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 22, Workers: 1})
	w.Run(600)
	w.Snapshot()
	if avg := testing.AllocsPerRun(200, func() { _ = w.Snapshot() }); avg != 0 {
		t.Fatalf("no-churn snapshot allocates %.3f times per call, want 0", avg)
	}
}
