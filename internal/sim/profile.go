// Package sim implements the city mobility simulator that stands in for
// Uber's production backend: drivers with an online/idle/en-route/on-trip
// state machine, a non-homogeneous Poisson passenger process with rush-hour
// peaks, nearest-driver dispatch, and city profiles calibrated so that the
// San Francisco and Manhattan worlds reproduce the aggregate dynamics the
// paper measured (fleet ratios, diurnal supply/demand, EWT around three
// minutes, SF surging far more often than Manhattan).
//
// The simulator is fully deterministic given a seed and never consults the
// wall clock; simulation time is integer seconds starting at a Monday
// midnight.
package sim

import (
	"math"

	"repro/internal/core"
	"repro/internal/geo"
)

// SecondsPerDay is the length of a simulated day.
const SecondsPerDay = 24 * 3600

// Hotspot is an attraction point for pickups, drop-offs, and idle cruising,
// standing in for the commercial/tourist concentrations the paper's
// heatmaps show (Times Square, the Financial District, UCSF, ...).
type Hotspot struct {
	Name   string
	Pos    geo.Point
	Weight float64 // relative share of demand originating here
	Radius float64 // spatial spread (std dev, meters)
}

// SurgeParams controls the surge engine's multiplier computation for a
// city. See surge.Engine for the update rule.
type SurgeParams struct {
	// UtilThreshold is the capacity utilization above which surge begins.
	UtilThreshold float64
	// Gain converts excess utilization into multiplier points.
	Gain float64
	// EWTRef and EWTGain add multiplier pressure when the average EWT in
	// the trailing window exceeds EWTRef seconds.
	EWTRef  float64
	EWTGain float64
	// Noise is the per-interval, per-area Gaussian noise on the raw
	// multiplier; this is what makes most surges last a single 5-minute
	// interval (Fig 13).
	Noise float64
	// NoiseCorr is the fraction of the noise shared city-wide per
	// interval (0 = fully independent areas). The paper observes that
	// SF's surge areas move in lock-step far more than Manhattan's
	// (§6: "the surge areas in SF tend to be more correlated"), which is
	// what makes the walking strategy pay off in Manhattan but not SF.
	NoiseCorr float64
	// AreaCoupling blends each area's utilization with the city-wide
	// mean before computing the multiplier (0 = fully local). High
	// coupling makes neighboring areas surge together — the second half
	// of the §6 observation above.
	AreaCoupling float64
	// MaxMultiplier caps the multiplier (paper observed 2.8 in Manhattan,
	// 4.1 in SF).
	MaxMultiplier float64
}

// CityProfile describes one measured city. The two instances (Manhattan,
// SanFrancisco) are calibrated against §4's observations.
type CityProfile struct {
	Name   string
	Origin geo.LatLng // projection anchor (center of the measurement area)

	// Region is the simulated world; MeasureRect is the area blanketed by
	// clients (Fig 3). Region extends past MeasureRect so cars can enter
	// and leave the measurement area, which the paper's edge filter and
	// move-in/move-out analysis depend on.
	Region      geo.Rect
	MeasureRect geo.Rect

	// ClientSpacing is the grid spacing for the 43 measurement clients:
	// chosen from the calibrated visibility radius (200 m in Manhattan,
	// 350 m in SF, §3.4).
	ClientSpacing float64

	// PeakDrivers is the target number of concurrently online drivers at
	// the daily peak, across all products.
	PeakDrivers int
	// FleetShare is each product's share of the fleet. Shares need not sum
	// to 1; they are normalized.
	FleetShare map[core.VehicleType]float64
	// DemandShare is each product's share of ride requests.
	DemandShare map[core.VehicleType]float64

	// PeakRequestsPerHour is the region-wide quantity demanded at the
	// weekday evening peak.
	PeakRequestsPerHour float64

	// SupplyDiurnal and DemandDiurnal scale the arrival processes by hour
	// of day (index 0 = midnight). WeekendDemandDiurnal replaces
	// DemandDiurnal on Saturday and Sunday.
	SupplyDiurnal        [24]float64
	DemandDiurnal        [24]float64
	WeekendDemandDiurnal [24]float64

	// MeanSessionMinutes is the median driver session length for low-cost
	// products; luxury products run LuxurySessionFactor times longer
	// (Fig 7 shows luxury cars live longer).
	MeanSessionMinutes  float64
	LuxurySessionFactor float64

	// Elasticity is the fraction of passengers priced out per unit of
	// surge above 1 (the paper finds a large negative demand effect).
	Elasticity float64
	// SupplyBoost is the relative increase in driver arrivals per unit of
	// surge above 1 (the paper finds a small positive supply effect).
	SupplyBoost float64

	Hotspots []Hotspot
	Surge    SurgeParams

	// SplitX and SplitY place the surge-area partition's cross point as
	// fractions of the measurement rect (defaults 0.45/0.55). Manhattan's
	// hand-drawn areas cut right through midtown, so probes sit near
	// boundaries; SF's areas were much larger than the probed region,
	// with boundaries only near the south-west (UCSF) corner — which is
	// exactly where the paper found the walking strategy to work.
	SplitX, SplitY float64

	// RoadNetwork switches the world to street-network movement: drivers
	// cruise and drive along a deterministic synthetic street graph with
	// congestion feedback instead of straight lines with a detour factor
	// (see internal/road and sim/road.go). The network is derived from
	// the city name, so every world of a city shares the same streets.
	RoadNetwork bool
	// RoadName overrides the name the street network derives from;
	// derived profiles (TaxiCity) set it to the parent city so both
	// services generate identical streets even when built standalone.
	RoadName string
}

// Rush reports whether hour (0-23) falls in the paper's rush-hour
// definition: 6am-10am or 4pm-8pm (§5.4, the Rush model).
func Rush(hour int) bool {
	return (hour >= 6 && hour < 10) || (hour >= 16 && hour < 20)
}

// Weekend reports whether simulation time t falls on Saturday or Sunday
// (time zero is Monday midnight).
func Weekend(t int64) bool {
	day := (t / SecondsPerDay) % 7
	return day == 5 || day == 6
}

// HourOfDay returns the hour (0-23) for simulation time t.
func HourOfDay(t int64) int { return int(t % SecondsPerDay / 3600) }

// demandCurve builds an hourly weight curve with morning and evening rush
// peaks. base is the overnight floor; am and pm are the rush amplitudes.
func demandCurve(base, am, pm float64) [24]float64 {
	var c [24]float64
	for h := 0; h < 24; h++ {
		w := base
		switch {
		case h >= 2 && h < 5:
			w = base * 0.5
		case h >= 6 && h < 10: // morning rush
			w = am
		case h >= 10 && h < 15:
			w = (am + base) / 2
		case h >= 15 && h < 20: // builds from 3pm through evening rush
			w = pm
		case h >= 20 && h < 24:
			w = (pm + base) / 2
		}
		c[h] = w
	}
	return c
}

// Manhattan returns the midtown Manhattan profile. Calibration targets from
// the paper: fewer Ubers than SF, surge only ~14% of the time, mean
// multiplier ~1.07, max 2.8, surge building from 3pm through evening rush on
// weekdays, weekend peaks noon-3pm, EWT ~3 minutes, significant UberT fleet.
func Manhattan() *CityProfile {
	measure := geo.NewRect(geo.Point{X: -1100, Y: -900}, geo.Point{X: 1100, Y: 900})
	region := geo.NewRect(geo.Point{X: -1700, Y: -1500}, geo.Point{X: 1700, Y: 1500})
	p := &CityProfile{
		Name:          "manhattan",
		Origin:        geo.LatLng{Lat: 40.7549, Lng: -73.9840}, // midtown
		Region:        region,
		MeasureRect:   measure,
		ClientSpacing: 280, // ≈ √2 × 200 m visibility radius
		PeakDrivers:   420,
		FleetShare: map[core.VehicleType]float64{
			core.UberX: 0.46, core.UberBLACK: 0.20, core.UberSUV: 0.12,
			core.UberXL: 0.08, core.UberT: 0.10,
			core.UberFAMILY: 0.01, core.UberPOOL: 0.01, core.UberWAV: 0.01, core.UberRUSH: 0.01,
		},
		DemandShare: map[core.VehicleType]float64{
			core.UberX: 0.62, core.UberBLACK: 0.14, core.UberSUV: 0.07,
			core.UberXL: 0.06, core.UberT: 0.08,
			core.UberFAMILY: 0.01, core.UberPOOL: 0.01, core.UberWAV: 0.005, core.UberRUSH: 0.005,
		},
		PeakRequestsPerHour:  260,
		SupplyDiurnal:        demandCurve(0.45, 0.95, 1.0),
		DemandDiurnal:        demandCurve(0.30, 0.80, 1.0),
		WeekendDemandDiurnal: weekendCurve(0.35, 1.0),
		MeanSessionMinutes:   100,
		LuxurySessionFactor:  1.8,
		Elasticity:           0.55,
		SupplyBoost:          0.10,
		Hotspots: []Hotspot{
			{Name: "Times Square", Pos: geo.Point{X: -250, Y: 250}, Weight: 0.40, Radius: 350},
			{Name: "5th Avenue", Pos: geo.Point{X: 350, Y: 150}, Weight: 0.30, Radius: 400},
			{Name: "Penn Station", Pos: geo.Point{X: -450, Y: -550}, Weight: 0.18, Radius: 300},
			{Name: "Grand Central", Pos: geo.Point{X: 700, Y: -150}, Weight: 0.12, Radius: 300},
		},
		Surge: SurgeParams{
			UtilThreshold: 0.16,
			Gain:          4.8,
			EWTRef:        260,
			EWTGain:       0.004,
			Noise:         0.18,
			NoiseCorr:     0.3,
			AreaCoupling:  0.15,
			MaxMultiplier: 3.0,
		},
	}
	return p
}

// SanFrancisco returns the downtown SF profile. Calibration targets: 58%
// more Ubers than Manhattan, surging the majority of the time (~57%), mean
// multiplier ~1.36, max 4.1, morning-rush surge around 2.0, a "last call"
// spike at 2am (especially weekends), larger surge areas.
func SanFrancisco() *CityProfile {
	measure := geo.NewRect(geo.Point{X: -1750, Y: -1750}, geo.Point{X: 1750, Y: 1750})
	region := geo.NewRect(geo.Point{X: -2400, Y: -2400}, geo.Point{X: 2400, Y: 2400})
	p := &CityProfile{
		Name:          "sf",
		Origin:        geo.LatLng{Lat: 37.7793, Lng: -122.4193}, // downtown SF
		Region:        region,
		MeasureRect:   measure,
		ClientSpacing: 490, // ≈ √2 × 350 m visibility radius
		PeakDrivers:   640,
		FleetShare: map[core.VehicleType]float64{
			core.UberX: 0.68, core.UberBLACK: 0.13, core.UberSUV: 0.07,
			core.UberXL:     0.06,
			core.UberFAMILY: 0.02, core.UberPOOL: 0.02, core.UberWAV: 0.01, core.UberRUSH: 0.01,
		},
		DemandShare: map[core.VehicleType]float64{
			core.UberX: 0.78, core.UberBLACK: 0.08, core.UberSUV: 0.04,
			core.UberXL:     0.06,
			core.UberFAMILY: 0.01, core.UberPOOL: 0.02, core.UberWAV: 0.005, core.UberRUSH: 0.005,
		},
		PeakRequestsPerHour:  520,
		SupplyDiurnal:        demandCurve(0.40, 1.0, 0.95),
		DemandDiurnal:        sfDemandCurve(),
		WeekendDemandDiurnal: sfWeekendCurve(),
		MeanSessionMinutes:   95,
		LuxurySessionFactor:  1.8,
		Elasticity:           0.45,
		SupplyBoost:          0.12,
		Hotspots: []Hotspot{
			{Name: "Financial District", Pos: geo.Point{X: 1100, Y: 1100}, Weight: 0.32, Radius: 500},
			{Name: "Embarcadero", Pos: geo.Point{X: 1500, Y: 500}, Weight: 0.18, Radius: 450},
			{Name: "Russian Hill", Pos: geo.Point{X: -300, Y: 1300}, Weight: 0.18, Radius: 450},
			{Name: "UCSF", Pos: geo.Point{X: -1300, Y: -1300}, Weight: 0.14, Radius: 450},
			{Name: "SoMa", Pos: geo.Point{X: 500, Y: -500}, Weight: 0.18, Radius: 600},
		},
		Surge: SurgeParams{
			UtilThreshold: 0.12,
			Gain:          4.6,
			EWTRef:        220,
			EWTGain:       0.005,
			Noise:         0.24,
			NoiseCorr:     0.85,
			AreaCoupling:  0.85,
			MaxMultiplier: 4.5,
		},
		// SF's surge areas dwarf the measured region: boundaries graze
		// only the UCSF corner.
		SplitX: 0.28,
		SplitY: 0.22,
	}
	return p
}

// weekendCurve peaks between noon and 3pm (Manhattan weekends, §4.2).
func weekendCurve(base, peak float64) [24]float64 {
	var c [24]float64
	for h := 0; h < 24; h++ {
		w := base
		switch {
		case h >= 3 && h < 7:
			w = base * 0.5
		case h >= 10 && h < 12:
			w = (base + peak) / 2
		case h >= 12 && h < 15: // tourist influx
			w = peak
		case h >= 15 && h < 22:
			w = (base + peak) / 2
		}
		c[h] = w
	}
	return c
}

// sfDemandCurve has a strong morning rush (surge ~2.0 between 6-9am
// Mon-Fri) and a localized 2am "last call" bump.
func sfDemandCurve() [24]float64 {
	c := demandCurve(0.30, 1.0, 0.85)
	c[2] = 0.85 // last call at 2am
	c[3] = 0.35
	return c
}

// sfWeekendCurve keeps the 2am last-call spike strongest on weekends
// (paper: up to 3.0 surge).
func sfWeekendCurve() [24]float64 {
	c := weekendCurve(0.35, 0.95)
	c[0] = 0.65
	c[1] = 0.75
	c[2] = 1.05 // biggest last-call effect
	c[3] = 0.40
	return c
}

// NormalizedShares returns the product shares normalized to sum to 1, in
// vehicle-type order. Missing products get share 0.
func NormalizedShares(shares map[core.VehicleType]float64) []float64 {
	out := make([]float64, core.NumVehicleTypes)
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum == 0 {
		return out
	}
	for vt, v := range shares {
		if int(vt) < len(out) {
			out[int(vt)] = v / sum
		}
	}
	return out
}

// SurgeAreas returns the city's hand-partitioned surge areas (§5.3):
// four irregular quadrants covering the measurement region, mirroring the
// paper's Figures 18 and 19 where each city's probed region resolves into
// four independent areas. The split lines are deliberately offset from the
// center so the areas have unequal sizes, like Uber's hand-drawn ones.
// Scale returns a copy of the profile with the fleet and demand targets
// multiplied by f: PeakDrivers and PeakRequestsPerHour grow together, so
// market tightness (and with it surge behaviour) is preserved while the
// world holds f× the population. Everything else — geometry, shares,
// diurnal curves, session lengths — is shared with the receiver. f ≤ 0
// or 1 returns the profile unchanged.
func (p *CityProfile) Scale(f float64) *CityProfile {
	if f <= 0 || f == 1 {
		return p
	}
	q := *p
	q.PeakDrivers = int(math.Round(float64(p.PeakDrivers) * f))
	q.PeakRequestsPerHour = p.PeakRequestsPerHour * f
	return &q
}

// TaxiCity derives a flat-fare street-hail fleet from p: the same
// geometry, hotspots, and diurnal curves, but every car is UberT, no
// surge (multiplier pinned at 1), and road movement on — the second
// service of the OpenStreetCab-style price-comparison scenario. share
// scales its fleet and demand relative to p's (taxi fleets dwarfed
// Uber's in 2015 Manhattan; pass >1 to reproduce that).
func (p *CityProfile) TaxiCity(share float64) *CityProfile {
	if share <= 0 {
		share = 1
	}
	q := *p
	q.Name = p.Name + "-taxi"
	q.RoadName = p.Name
	q.PeakDrivers = int(math.Round(float64(p.PeakDrivers) * share))
	q.PeakRequestsPerHour = p.PeakRequestsPerHour * share
	q.FleetShare = map[core.VehicleType]float64{core.UberT: 1}
	q.DemandShare = map[core.VehicleType]float64{core.UberT: 1}
	q.Surge = SurgeParams{MaxMultiplier: 1}
	q.Elasticity = 0
	q.SupplyBoost = 0
	q.RoadNetwork = true
	return &q
}

func (p *CityProfile) SurgeAreas() []geo.Polygon {
	m := p.MeasureRect
	fx, fy := p.SplitX, p.SplitY
	if fx <= 0 || fx >= 1 {
		fx = 0.45
	}
	if fy <= 0 || fy >= 1 {
		fy = 0.55
	}
	sx := m.Min.X + fx*m.Width()
	sy := m.Min.Y + fy*m.Height()
	// Extend area boundaries to cover the whole simulated region so that
	// every car is always in exactly one area.
	r := p.Region
	return []geo.Polygon{
		// Area 0: south-west.
		{Vertices: []geo.Point{{X: r.Min.X, Y: r.Min.Y}, {X: sx, Y: r.Min.Y}, {X: sx, Y: sy}, {X: r.Min.X, Y: sy}}},
		// Area 1: south-east.
		{Vertices: []geo.Point{{X: sx, Y: r.Min.Y}, {X: r.Max.X, Y: r.Min.Y}, {X: r.Max.X, Y: sy}, {X: sx, Y: sy}}},
		// Area 2: north-west.
		{Vertices: []geo.Point{{X: r.Min.X, Y: sy}, {X: sx, Y: sy}, {X: sx, Y: r.Max.Y}, {X: r.Min.X, Y: r.Max.Y}}},
		// Area 3: north-east.
		{Vertices: []geo.Point{{X: sx, Y: sy}, {X: r.Max.X, Y: sy}, {X: r.Max.X, Y: r.Max.Y}, {X: sx, Y: r.Max.Y}}},
	}
}

// AreaOf returns the index of the surge area containing p, or -1.
func AreaOf(areas []geo.Polygon, pt geo.Point) int {
	for i, a := range areas {
		if a.Contains(pt) {
			return i
		}
	}
	return -1
}
