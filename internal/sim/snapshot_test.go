package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// snapshotWorld returns a mid-morning Manhattan world with traffic flowing.
func snapshotWorld(t testing.TB, seed int64) *World {
	t.Helper()
	w := NewWorld(Config{Profile: Manhattan(), Seed: seed, StartTime: 8 * 3600})
	w.Run(9 * 3600)
	return w
}

// The snapshot must answer NearestCars/EWT/AreaOf exactly as the live
// world does at the tick it was taken.
func TestSnapshotMatchesLiveWorld(t *testing.T) {
	w := snapshotWorld(t, 3)
	rng := rand.New(rand.NewSource(99))
	for tick := 0; tick < 20; tick++ {
		w.Step()
		s := w.Snapshot()
		if s.Now != w.Now() {
			t.Fatalf("snapshot Now = %d, world Now = %d", s.Now, w.Now())
		}
		r := w.Profile().Region
		for q := 0; q < 25; q++ {
			p := geo.Point{
				X: r.Min.X + rng.Float64()*r.Width(),
				Y: r.Min.Y + rng.Float64()*r.Height(),
			}
			if got, want := s.AreaOf(p), AreaOf(w.Areas(), p); got != want {
				t.Fatalf("AreaOf(%v) = %d, brute force = %d", p, got, want)
			}
			for _, vt := range []core.VehicleType{core.UberX, core.UberBLACK, core.UberPOOL} {
				if got, want := s.EWT(vt, p), w.EWT(vt, p); got != want {
					t.Fatalf("EWT(%v, %v) = %v, world = %v", vt, p, got, want)
				}
				got := s.NearestCars(vt, p, core.MaxVisibleCars)
				want := w.NearestCars(vt, p, core.MaxVisibleCars)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("NearestCars(%v, %v):\n snapshot %+v\n world    %+v", vt, p, got, want)
				}
			}
		}
	}
}

// The snapshot index counts exactly the idle cars of each product.
func TestSnapshotIdleCarCounts(t *testing.T) {
	w := snapshotWorld(t, 5)
	s := w.Snapshot()
	for _, vt := range core.AllVehicleTypes() {
		idle, _, _ := w.CountByState(vt)
		if got := s.IdleCars(vt); got != idle {
			t.Errorf("%v: snapshot has %d idle cars, world has %d", vt, got, idle)
		}
	}
}

// A snapshot keeps answering identically after the world moves on — the
// frozen views must not alias mutable driver state.
func TestSnapshotImmutableAcrossSteps(t *testing.T) {
	w := snapshotWorld(t, 7)
	s := w.Snapshot()
	p := w.Profile().Region.Center()
	before := s.NearestCars(core.UberX, p, 8)
	ewtBefore := s.EWT(core.UberX, p)
	for i := 0; i < 50; i++ {
		w.Step()
	}
	after := s.NearestCars(core.UberX, p, 8)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("snapshot answers changed after the world stepped")
	}
	if got := s.EWT(core.UberX, p); got != ewtBefore {
		t.Fatalf("snapshot EWT changed after steps: %v -> %v", ewtBefore, got)
	}
}

// The world-integrated AreaIndex agrees with the brute-force scan on the
// city partitions, including points on area boundaries and corners.
func TestWorldAreaIndexMatchesAreaOf(t *testing.T) {
	for _, profile := range []*CityProfile{Manhattan(), SanFrancisco()} {
		w := NewWorld(Config{Profile: profile, Seed: 1})
		ai := w.AreaIndex()
		rng := rand.New(rand.NewSource(11))
		r := profile.Region
		for q := 0; q < 5000; q++ {
			p := geo.Point{
				X: r.Min.X + (rng.Float64()*1.2-0.1)*r.Width(),
				Y: r.Min.Y + (rng.Float64()*1.2-0.1)*r.Height(),
			}
			if got, want := ai.Find(p), AreaOf(w.Areas(), p); got != want {
				t.Fatalf("%s: Find(%v) = %d, AreaOf = %d", profile.Name, p, got, want)
			}
		}
		for _, pg := range w.Areas() {
			for i, v := range pg.Vertices {
				next := pg.Vertices[(i+1)%len(pg.Vertices)]
				mid := geo.Point{X: (v.X + next.X) / 2, Y: (v.Y + next.Y) / 2}
				for _, p := range []geo.Point{v, mid} {
					if got, want := ai.Find(p), AreaOf(w.Areas(), p); got != want {
						t.Fatalf("%s: boundary Find(%v) = %d, AreaOf = %d", profile.Name, p, got, want)
					}
				}
			}
		}
	}
}

// BenchmarkSnapshotBuild measures the per-tick delta build (a repeated
// Snapshot without a Step in between returns the cached snapshot, so the
// loop steps the world to generate real churn).
func BenchmarkSnapshotBuild(b *testing.B) {
	w := snapshotWorld(b, 42)
	w.Snapshot() // initialize the incremental builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
		s := w.Snapshot()
		if s.Now != w.Now() {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkAreaIndex(b *testing.B) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 1})
	ai := w.AreaIndex()
	pts := benchPoints(w.Profile().Region)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ai.Find(pts[i%len(pts)])
	}
}

func BenchmarkAreaOfLinear(b *testing.B) {
	w := NewWorld(Config{Profile: Manhattan(), Seed: 1})
	areas := w.Areas()
	pts := benchPoints(w.Profile().Region)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AreaOf(areas, pts[i%len(pts)])
	}
}

func benchPoints(r geo.Rect) []geo.Point {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geo.Point, 1024)
	for i := range pts {
		pts[i] = geo.Point{
			X: r.Min.X + rng.Float64()*r.Width(),
			Y: r.Min.Y + rng.Float64()*r.Height(),
		}
	}
	return pts
}
