package sim

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// The phase-parallel tick.
//
// Step's expensive phases (movement/cruise, window stats, and the
// snapshot build in snapshot.go) run over fixed driver shards spread
// across Config.Workers goroutines. Determinism is by construction, not
// by scheduling discipline:
//
//   - The shard structure is fixed: shardSize drivers per shard,
//     regardless of worker count. Workers only decide *who* runs a
//     shard, never *what* a shard contains.
//   - Each (seed, tick, shard) triple owns a private counter-based RNG
//     stream (splitmix64, the same generator internal/chaos uses for
//     replayable faults), so no random draw order depends on which
//     worker got there first.
//   - The parallel phase mutates only driver-local state and appends
//     world-level mutations (grid updates, removals, counter deltas) to
//     per-shard buffers. A serial commit then applies the buffers in
//     (shard, index) order.
//
// The result is bit-for-bit identical for every worker count, including
// workers=1, which runs the same code inline on the calling goroutine.

// shardSize is the fixed number of drivers per shard. It is a constant —
// never derived from the worker count — so the shard decomposition (and
// with it every RNG stream assignment) is invariant across worker counts.
const shardSize = 256

// numShards returns how many shards cover n drivers.
func numShards(n int) int { return (n + shardSize - 1) / shardSize }

// shardBounds returns the half-open driver index range of shard s.
func shardBounds(s, n int) (lo, hi int) {
	lo = s * shardSize
	hi = lo + shardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// mix64 is the splitmix64 finalizer (Steele et al.), the same mixer
// internal/chaos uses for replayable fault decisions.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shardStream is a splitmix64 sequence usable as a rand.Source64, so the
// full rand.Rand distribution toolkit (NormFloat64's ziggurat, Intn,
// Float64) draws from a stream keyed purely by (seed, tick, shard).
// Unlike rand.NewSource it has no per-stream initialization cost, which
// matters because every shard gets a fresh stream every tick.
type shardStream struct{ state uint64 }

func (s *shardStream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

func (s *shardStream) Int63() int64 { return int64(s.Uint64() >> 1) }
func (s *shardStream) Seed(int64)   {}

// shardRand returns the RNG stream owned by shard s for the current
// tick. Streams for distinct (seed, tick, shard) triples are
// independent; the same triple always yields the same stream.
func (w *World) shardRand(s int) *rand.Rand {
	h := mix64(uint64(w.cfg.Seed) ^ 0x6a09e667f3bcc908)
	h = mix64(h ^ uint64(w.tick))
	h = mix64(h ^ uint64(s))
	return rand.New(&shardStream{state: h})
}

// shardRandKey is shardRand's stream key, shared with the pooled variant
// so both draw the identical sequence.
func (w *World) shardRandKey(s int) uint64 {
	h := mix64(uint64(w.cfg.Seed) ^ 0x6a09e667f3bcc908)
	h = mix64(h ^ uint64(w.tick))
	return mix64(h ^ uint64(s))
}

// pooledRand is a reusable (stream, Rand) pair: resetting the stream
// state replays exactly the sequence a fresh rand.New(&shardStream{...})
// would produce, without the two allocations per shard per tick that
// shardRand pays. The movement phase's zero-allocation budget depends on
// this pool.
type pooledRand struct {
	stream shardStream
	rng    *rand.Rand
}

// pooledShardRand returns shard s's RNG for the current tick from the
// world's pool, growing the pool on demand (growth happens only while
// the fleet's shard count is still rising, then never again).
func (w *World) pooledShardRand(s int) *rand.Rand {
	for len(w.shardRngs) <= s {
		p := &pooledRand{}
		p.rng = rand.New(&p.stream)
		w.shardRngs = append(w.shardRngs, p)
	}
	p := w.shardRngs[s]
	p.stream.state = w.shardRandKey(s)
	return p.rng
}

// Stream salts for the per-item RNG streams of the parallelized spawn
// and dispatch phases. Each spawned driver and each passenger request
// owns a private (seed, tick, salt, index) stream, so the parallel
// precompute draws the same numbers no matter how items are sharded
// across workers. The keying constant differs from shardRand's, keeping
// these streams structurally independent of the movement shards'.
const (
	saltSpawn = 1
	saltReq   = 2
)

// phaseRand returns the RNG stream owned by item i of the salted phase
// for the current tick.
func (w *World) phaseRand(salt uint64, i int) *rand.Rand {
	h := mix64(uint64(w.cfg.Seed) ^ 0x9b05688c2b3e6c1f)
	h = mix64(h ^ uint64(w.tick))
	h = mix64(h ^ salt)
	h = mix64(h ^ uint64(i))
	return rand.New(&shardStream{state: h})
}

// runShards invokes fn(shard) for every shard in [0, n), spread over the
// world's workers. With one worker (or one shard) it runs inline on the
// calling goroutine. fn must not touch shared mutable state; anything a
// shard wants to change about the world goes into its own buffer and is
// committed serially by the caller.
func (w *World) runShards(n int, fn func(shard int)) {
	workers := w.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}
