package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
)

// DriverState is the lifecycle state of an online driver. Offline drivers
// do not exist in the world; a driver session starts at spawn and ends when
// the driver goes offline (at which point its randomized public ID dies
// with it, as the paper observed in §3.3).
type DriverState int

// Driver lifecycle states. Only idle drivers are visible in pingClient
// responses — a booked car disappears from the map, which is exactly the
// "death" signal the paper uses as its fulfilled-demand upper bound.
const (
	StateIdle DriverState = iota
	StateEnRoute
	StateOnTrip
)

// String names the state for diagnostics.
func (s DriverState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateEnRoute:
		return "enroute"
	case StateOnTrip:
		return "ontrip"
	default:
		return fmt.Sprintf("DriverState(%d)", int(s))
	}
}

// pathLen is the number of recent positions kept for the pingClient path
// vector.
const pathLen = 5

// PoolStop is one queued stop of a shared UberPOOL trip.
type PoolStop struct {
	Pos  geo.Point
	Drop bool // true: a rider leaves; false: a rider boards
}

// Driver is one online driver session.
type Driver struct {
	ID      int64  // stable internal id (never exposed)
	Session string // randomized public id, new per online session
	Type    core.VehicleType
	Pos     geo.Point
	State   DriverState

	// Pickup is the passenger position while en-route; Dest is the
	// current stop while on-trip. For UberPOOL, destDrop distinguishes
	// pickup stops (a second rider boarding) from drop-offs, and stops
	// queues the remaining route.
	Pickup   geo.Point
	Dest     geo.Point
	destDrop bool
	stops    []PoolStop

	// PoolRiders is the number of passengers currently in a POOL car
	// (0 for non-POOL products outside a trip, 1 during a plain trip).
	PoolRiders int

	// OfflineAt is when the driver intends to end the session; a driver
	// mid-trip finishes the trip first.
	OfflineAt int64

	// PriceFactor is the driver's self-set price multiplier under
	// PricingDriverSet (the Sidecar-style market of §8); ignored under
	// surge pricing. Drivers adapt it win-stay/lose-shift: quick bookings
	// raise it, long idle stretches lower it.
	PriceFactor float64
	// idleSince tracks how long the driver has waited for a fare.
	idleSince int64

	// EarnedUSD is the driver's take-home this session (§2: Uber retains
	// 20% of each fare and pays the rest to the driver). Fares are
	// upfront: computed at booking from the trip estimate.
	EarnedUSD float64

	// cruise target while idle.
	cruiseTarget geo.Point
	cruiseUntil  int64

	// ring buffer of recent positions.
	path    [pathLen]geo.Point
	pathN   int
	pathPos int
}

// recordPath appends the current position to the path ring.
func (d *Driver) recordPath() {
	d.path[d.pathPos] = d.Pos
	d.pathPos = (d.pathPos + 1) % pathLen
	if d.pathN < pathLen {
		d.pathN++
	}
}

// PathPoints returns the recent positions oldest-first.
func (d *Driver) PathPoints() []geo.Point {
	out := make([]geo.Point, 0, d.pathN)
	start := d.pathPos - d.pathN
	for i := 0; i < d.pathN; i++ {
		idx := (start + i + 2*pathLen) % pathLen
		out = append(out, d.path[idx])
	}
	return out
}

// stepToward moves the driver toward target by at most dist meters and
// reports whether the target was reached.
func (d *Driver) stepToward(target geo.Point, dist float64) bool {
	v := target.Sub(d.Pos)
	n := v.Norm()
	if n <= dist {
		d.Pos = target
		return true
	}
	d.Pos = d.Pos.Add(v.Scale(dist / n))
	return false
}

// newSessionID draws a fresh randomized public car ID, mimicking Uber's
// per-session ID randomization.
func newSessionID(rng *rand.Rand) string {
	return fmt.Sprintf("c%08x%08x", rng.Uint32(), rng.Uint32())
}
