package sim

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/road"
)

// Config configures a World.
type Config struct {
	Profile *CityProfile
	Seed    int64
	// TickSeconds is the simulation step; it defaults to 5, the ping
	// cadence of the Client app.
	TickSeconds int64
	// StartTime is the initial simulation time (seconds since Monday
	// midnight). Defaults to 0.
	StartTime int64
	// Pricing selects the market mechanism (default PricingSurge).
	Pricing PricingMode
	// Workers is how many goroutines the phase-parallel portions of Step
	// (movement/cruise, spawn and dispatch precompute, window stats) fan
	// out over; 0 means runtime.GOMAXPROCS(0). Results are bit-for-bit
	// identical for every worker count: parallel phases draw from
	// per-(seed, tick, shard) RNG streams and commit through ordered
	// per-shard buffers (see parallel.go).
	Workers int
	// Road selects street-network movement (see road.go). Nil with
	// Profile.RoadNetwork set builds the city's deterministic network;
	// nil otherwise keeps euclidean movement. A non-nil Road may be
	// shared between worlds (two services on the same streets).
	Road *road.Network
	// RoadShared suppresses the world's own congestion Commit: the
	// harness owning the shared network commits once per tick after
	// every world has tallied its loads.
	RoadShared bool
}

// PricingMode selects how prices form.
type PricingMode int

// The two market designs the paper contrasts in §8: Uber's centralized
// surge algorithm, and Sidecar's model where every driver sets their own
// price and passengers pick whom to accept.
const (
	PricingSurge PricingMode = iota
	PricingDriverSet
)

// WindowStats aggregates one surge area's activity over the trailing
// window; the surge engine consumes and resets it every five minutes.
type WindowStats struct {
	Ticks        int
	IdleCarTicks float64 // Σ idle cars per tick (surgeable products)
	BusyCarTicks float64 // Σ en-route + on-trip cars per tick
	Pickups      int     // fulfilled requests, i.e. "deaths" by booking
	LatentDemand int     // quantity demanded incl. priced-out + unfulfilled
	PricedOut    int     // requests abandoned due to surge
	Unfulfilled  int     // requests with no reachable driver
	EWTSum       float64 // Σ UberX EWT sampled at the area centroid
	EWTN         int
}

// AvgIdle returns the average number of visible (idle) cars in the area.
func (w WindowStats) AvgIdle() float64 {
	if w.Ticks == 0 {
		return 0
	}
	return w.IdleCarTicks / float64(w.Ticks)
}

// AvgBusy returns the average number of booked cars in the area.
func (w WindowStats) AvgBusy() float64 {
	if w.Ticks == 0 {
		return 0
	}
	return w.BusyCarTicks / float64(w.Ticks)
}

// AvgEWT returns the average sampled EWT in seconds (0 if unsampled).
func (w WindowStats) AvgEWT() float64 {
	if w.EWTN == 0 {
		return 0
	}
	return w.EWTSum / float64(w.EWTN)
}

// World is the simulated city. It is not safe for concurrent use; the
// layers above (api.Service) serialize access.
//
// Driver state lives in a struct-of-arrays fleet (see fleet.go): hot
// per-driver fields are flat columns indexed by slot, recycled through a
// free list with generation counters. Every slot-keyed structure — the
// per-product idle grids, the joinable-POOL index, the delta-snapshot
// builder — keys by slot, so there is no id→index map on any hot path.
type World struct {
	cfg     Config
	profile *CityProfile
	rng     *rand.Rand
	proj    *geo.Projection

	now  int64
	tick int64

	fleet  fleet
	nextID int64

	// idle cars only, one index per product: these are the cars a client
	// can see.
	grids [core.NumVehicleTypes]*geo.SlotGrid

	// poolGrid indexes joinable POOL trips (on-trip, single rider, no
	// queued stops) so the shared-ride matcher is a radius probe instead
	// of a full fleet scan.
	poolGrid *geo.SlotGrid

	areas      []geo.Polygon
	areaIndex  *geo.AreaIndex
	areaStats  []WindowStats
	surgeOf    func(area int) float64 // provided by the surge engine
	surgeCache []float64              // per-area multiplier, refreshed each tick
	pipOf      func(area int) float64 // additive USD surcharge, nil unless an additive engine installs it
	pipCache   []float64              // per-area pip, refreshed each tick when pipOf is set
	fleetCDF   []float64              // cumulative fleet shares
	demandCDF  []float64              // cumulative demand shares
	hotspotCDF []float64

	meanSessionSec float64
	effSessionSec  float64 // fleet-wide expected session length

	// demand shocks: exogenous demand multipliers per area (concerts,
	// storms, "last call" surges beyond the diurnal curve).
	shocks []demandShock

	// suspended drivers (the §8 collusion scenario: drivers go offline
	// together to starve supply, then return once surge rises).
	suspended []suspendedDriver

	// withhold, when armed, makes drivers strategically idle out below a
	// personal surge threshold (see withholding.go).
	withhold WithholdingConfig

	// lifetime counters (ground truth for tests and validation).
	// Spawned/Offline count organic session starts and deaths only;
	// coordinated-logoff suspension cycles (ForceOffline → return) are
	// tracked separately so they don't skew churn- and lifespan-derived
	// figures (Fig 7).
	TotalSpawned   int64
	TotalOffline   int64
	TotalSuspended int64
	TotalResumed   int64
	TotalWithheld  int64
	TotalPickups   int64
	TotalDropoffs  int64
	TotalPricedOut int64
	TotalUnmet     int64
	TotalPoolJoins int64

	// price multipliers paid by fulfilled passengers (surge multiplier
	// or the chosen driver's PriceFactor, by pricing mode).
	priceSum, priceSumSq float64
	priceN               int64

	// Economics (§2): upfront fares, Uber's 20% commission, drivers' 80%.
	fares         map[core.VehicleType]core.FareSchedule
	FareVolume    float64 // total passenger spend, USD
	CommissionUSD float64 // Uber's cut
	// AreaFares accumulates passenger spend by pickup area (lifetime,
	// never reset — the attack experiment diffs it across a window).
	AreaFares []float64

	// workers is the resolved Config.Workers; the buffers below are the
	// reusable per-shard commit buffers and per-phase scratch of the
	// parallel tick, grown once to steady state and then allocation-free.
	workers    int
	moveOps    []shardOps
	shardRngs  []*pooledRand
	statParts  [][]areaCount
	subPlans   []subPlan
	spawnPlans []spawnPlan
	knnBuf     []geo.SlotNeighbor

	// road is the street network when road movement is active (see
	// road.go): roadRouter serves the serial phases (dispatch, fares,
	// EWT), roadRouters one router per movement shard.
	road        *road.Network
	roadRouter  *road.Router
	roadRouters []*road.Router

	// snap is the incremental snapshot builder (see snapshot.go).
	snap snapBuilder

	// events receives lifecycle/trip events (see SetEventSink); nil when
	// nothing listens. Only serial phases call it.
	events func(bus.Event)

	// nil-safe metric handles; zero until Instrument is called. The
	// counters mirror the lifetime totals by delta so Prometheus sees
	// monotonic series.
	hStep         *obs.Histogram
	hPhase        [numPhases]*obs.Histogram
	gDrivers      *obs.Gauge
	gSimTime      *obs.Gauge
	mPickups      *obs.Counter
	mPricedOut    *obs.Counter
	mUnmet        *obs.Counter
	lastPickups   int64
	lastPricedOut int64
	lastUnmet     int64
}

// Step phases, in execution order, for per-phase timing.
const (
	phaseSpawn    = iota // spawnArrivals + resumeSuspended
	phaseMove            // parallel movement/cruise + serial commit
	phaseDispatch        // generateRequests
	phaseStats           // accumulateStats + expireShocks
	numPhases
)

var phaseNames = [numPhases]string{"spawn", "move", "dispatch", "stats"}

// phaseLabelSets are prebuilt pprof label sets so CPU profiles attribute
// samples to sim phases (complementing sim_phase_duration_seconds).
var phaseLabelSets = func() [numPhases]pprof.LabelSet {
	var ls [numPhases]pprof.LabelSet
	for i := range phaseNames {
		ls[i] = pprof.Labels("sim_phase", phaseNames[i])
	}
	return ls
}()

// Instrument wires the world's metrics into reg:
//
//	sim_step_duration_seconds   wall-clock cost of one tick
//	sim_phase_duration_seconds{phase}  per-phase breakdown of a tick
//	sim_drivers_online          current online driver count
//	sim_time_seconds            simulation clock
//	sim_pickups_total           fulfilled requests
//	sim_requests_priced_out_total / sim_requests_unmet_total  lost demand
func (w *World) Instrument(reg *obs.Registry) {
	w.hStep = reg.Histogram("sim_step_duration_seconds", nil)
	for i := range w.hPhase {
		w.hPhase[i] = reg.Histogram("sim_phase_duration_seconds", nil, obs.L("phase", phaseNames[i]))
	}
	w.gDrivers = reg.Gauge("sim_drivers_online")
	w.gSimTime = reg.Gauge("sim_time_seconds")
	w.mPickups = reg.Counter("sim_pickups_total")
	w.mPricedOut = reg.Counter("sim_requests_priced_out_total")
	w.mUnmet = reg.Counter("sim_requests_unmet_total")
	w.lastPickups = w.TotalPickups
	w.lastPricedOut = w.TotalPricedOut
	w.lastUnmet = w.TotalUnmet
}

// CommissionRate is Uber's share of each fare (§2).
const CommissionRate = 0.20

// PriceStats returns the mean and standard deviation of the price
// multiplier fulfilled passengers paid, and the sample count.
func (w *World) PriceStats() (mean, std float64, n int64) {
	if w.priceN == 0 {
		return 0, 0, 0
	}
	mean = w.priceSum / float64(w.priceN)
	v := w.priceSumSq/float64(w.priceN) - mean*mean
	if v > 0 {
		std = math.Sqrt(v)
	}
	return mean, std, w.priceN
}

type demandShock struct {
	area   int
	factor float64
	until  int64
}

type suspendedDriver struct {
	vt       core.VehicleType
	pos      geo.Point
	returnAt int64
}

// movement and dispatch constants.
const (
	idleSpeed        = 3.0    // m/s while cruising
	dispatchOverhead = 75.0   // seconds of matching + acceptance latency
	manhattanFactor  = 1.4    // street-grid detour over straight line
	maxEWTSeconds    = 2580.0 // 43 minutes, the paper's observed maximum
	dispatchRadius   = 2200.0 // max straight-line pickup distance, meters
	tripStopSeconds  = 120.0  // fixed per-trip boarding/alighting time
)

// NewWorld builds a world for the profile with an initial driver
// population appropriate for the start hour.
func NewWorld(cfg Config) *World {
	if cfg.Profile == nil {
		panic("sim: Config.Profile is required")
	}
	if cfg.TickSeconds <= 0 {
		cfg.TickSeconds = 5
	}
	p := cfg.Profile
	if cfg.Road == nil && p.RoadNetwork {
		// The network is keyed by city name only, never the sim seed:
		// every world of a city drives the same streets.
		name := p.Name
		if p.RoadName != "" {
			name = p.RoadName
		}
		cfg.Road = road.ForProfile(name, p.Region)
	}
	w := &World{
		cfg:     cfg,
		profile: p,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		proj:    geo.NewProjection(p.Origin),
		now:     cfg.StartTime,
		areas:   p.SurgeAreas(),
		surgeOf: func(int) float64 { return 1 },
	}
	w.workers = cfg.Workers
	if w.workers <= 0 {
		w.workers = runtime.GOMAXPROCS(0)
	}
	w.road = cfg.Road
	if w.road != nil {
		w.roadRouter = road.NewRouter(w.road.Graph)
	}
	// The area raster is 4× finer than the driver grid: every driver pays
	// an area lookup per tick in the stats pass, and only raster cells a
	// polygon edge crosses fall back to exact point-in-polygon tests, so a
	// thinner mixed band buys measurable tick time for a one-off build.
	w.areaIndex = geo.NewAreaIndex(w.areas, gridCellMeters/4)
	w.areaStats = make([]WindowStats, len(w.areas))
	w.fares = core.DefaultFares()
	w.AreaFares = make([]float64, len(w.areas))
	for i := range w.grids {
		w.grids[i] = geo.NewSlotGrid(p.Region, gridCellMeters)
	}
	w.poolGrid = geo.NewSlotGrid(p.Region, gridCellMeters)
	w.fleetCDF = cdfOf(NormalizedShares(p.FleetShare))
	w.demandCDF = cdfOf(NormalizedShares(p.DemandShare))
	w.hotspotCDF = make([]float64, len(p.Hotspots))
	var hs float64
	for i, h := range p.Hotspots {
		hs += h.Weight
		w.hotspotCDF[i] = hs
	}
	for i := range w.hotspotCDF {
		w.hotspotCDF[i] /= hs
	}
	w.meanSessionSec = p.MeanSessionMinutes * 60
	// Expected session length across the fleet: the lognormal draw has
	// mean = median·exp(σ²/2), and luxury products run longer sessions.
	// spawnArrivals divides by this to hold the population at its target.
	luxShare := w.fleetShareOf(core.UberBLACK) + w.fleetShareOf(core.UberSUV)
	w.effSessionSec = w.meanSessionSec *
		((1 - luxShare) + luxShare*p.LuxurySessionFactor) *
		math.Exp(0.7*0.7/2)

	// Seed the initial population at the steady-state size for the start
	// hour, with sessions already partially elapsed.
	target := int(float64(p.PeakDrivers) * p.SupplyDiurnal[HourOfDay(w.now)])
	f := &w.fleet
	for i := 0; i < target; i++ {
		s := w.spawnDriver()
		// Spread remaining session time as if drivers came online earlier.
		elapsed := int64(w.rng.Float64() * w.sessionLength(core.VehicleType(f.typ[s])))
		f.offlineAt[s] -= elapsed
		if f.offlineAt[s] <= w.now {
			f.offlineAt[s] = w.now + int64(w.rng.Float64()*w.meanSessionSec*0.5) + 60
		}
	}
	return w
}

// fleetShareOf returns the normalized fleet share of a product.
func (w *World) fleetShareOf(vt core.VehicleType) float64 {
	prev := 0.0
	if int(vt) > 0 {
		prev = w.fleetCDF[int(vt)-1]
	}
	return w.fleetCDF[int(vt)] - prev
}

func cdfOf(shares []float64) []float64 {
	out := make([]float64, len(shares))
	var s float64
	for i, v := range shares {
		s += v
		out[i] = s
	}
	return out
}

// Profile returns the city profile the world was built from.
func (w *World) Profile() *CityProfile { return w.profile }

// Projection returns the world's lat/lng projection.
func (w *World) Projection() *geo.Projection { return w.proj }

// Areas returns the surge-area polygons.
func (w *World) Areas() []geo.Polygon { return w.areas }

// AreaIndex returns the rasterized point-in-area index over the surge
// areas; it answers exactly what AreaOf answers, in O(1).
func (w *World) AreaIndex() *geo.AreaIndex { return w.areaIndex }

// Now returns the current simulation time in seconds.
func (w *World) Now() int64 { return w.now }

// TickSeconds returns the configured step size.
func (w *World) TickSeconds() int64 { return w.cfg.TickSeconds }

// SetSurgeProvider registers the function used to look up the current
// surge multiplier for an area; the surge engine installs itself here.
func (w *World) SetSurgeProvider(f func(area int) float64) {
	if f != nil {
		w.surgeOf = f
	}
}

// SetPipProvider registers the function used to look up the additive USD
// surcharge for an area; an additive pricing engine installs itself here.
// When set, settleFare prices surgeable trips as base + pip (the driver
// keeping the whole pip) instead of scaling by the multiplier.
func (w *World) SetPipProvider(f func(area int) float64) {
	w.pipOf = f
}

// refreshSurgeCache samples the surge provider once per area per tick.
// The multipliers are interval-quantized by the engine, so within one
// tick the cached value is exact — and the parallel spawn/dispatch
// precompute can read it without re-entering the provider concurrently.
// The pip cache refreshes on the same schedule when an additive engine
// is installed.
func (w *World) refreshSurgeCache() {
	if cap(w.surgeCache) < len(w.areas) {
		w.surgeCache = make([]float64, len(w.areas))
	}
	w.surgeCache = w.surgeCache[:len(w.areas)]
	for i := range w.surgeCache {
		w.surgeCache[i] = w.surgeOf(i)
	}
	if w.pipOf == nil {
		return
	}
	if cap(w.pipCache) < len(w.areas) {
		w.pipCache = make([]float64, len(w.areas))
	}
	w.pipCache = w.pipCache[:len(w.areas)]
	for i := range w.pipCache {
		w.pipCache[i] = w.pipOf(i)
	}
}

// InjectDemandShock multiplies request arrivals in an area by factor for
// the given duration — the simulator's stand-in for concerts, storms, and
// the other exogenous spikes that make surge noisy.
func (w *World) InjectDemandShock(area int, factor float64, duration int64) {
	w.shocks = append(w.shocks, demandShock{area: area, factor: factor, until: w.now + duration})
}

func (w *World) shockFactor(area int) float64 {
	f := 1.0
	for _, s := range w.shocks {
		if s.area == area && w.now < s.until {
			f *= s.factor
		}
	}
	return f
}

// StreetSpeed returns the driving speed in m/s at time t: slower during
// rush hours, faster overnight.
func StreetSpeed(t int64) float64 {
	h := HourOfDay(t)
	switch {
	case Rush(h) && !Weekend(t):
		return 4.2
	case h >= 22 || h < 6:
		return 8.0
	default:
		return 6.0
	}
}

// sessionLength draws a session length in seconds for a product from the
// world stream; luxury products (BLACK, SUV) run longer sessions, as
// Fig 7 shows.
func (w *World) sessionLength(vt core.VehicleType) float64 {
	return w.sessionLengthRand(w.rng, vt)
}

func (w *World) sessionLengthRand(rng *rand.Rand, vt core.VehicleType) float64 {
	mean := w.meanSessionSec
	if vt == core.UberBLACK || vt == core.UberSUV {
		mean *= w.profile.LuxurySessionFactor
	}
	// Lognormal with sigma 0.7 around the target median.
	return mean * math.Exp(rng.NormFloat64()*0.7)
}

// sampleShare picks an index from a cumulative share vector.
func (w *World) sampleShare(cdf []float64) int {
	return sampleShareRand(w.rng, cdf)
}

func sampleShareRand(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for i, c := range cdf {
		if u <= c {
			return i
		}
	}
	return len(cdf) - 1
}

// samplePlace draws a location from the hotspot mixture (75%) or uniformly
// from the region (25%), clamped into the region. The serial phases draw
// from the world stream; shard workers pass their own stream.
func (w *World) samplePlace() geo.Point { return w.samplePlaceRand(w.rng) }

func (w *World) samplePlaceRand(rng *rand.Rand) geo.Point {
	r := w.profile.Region
	if len(w.profile.Hotspots) == 0 || rng.Float64() < 0.25 {
		return geo.Point{
			X: r.Min.X + rng.Float64()*r.Width(),
			Y: r.Min.Y + rng.Float64()*r.Height(),
		}
	}
	h := w.profile.Hotspots[sampleShareRand(rng, w.hotspotCDF)]
	p := geo.Point{
		X: h.Pos.X + rng.NormFloat64()*h.Radius,
		Y: h.Pos.Y + rng.NormFloat64()*h.Radius,
	}
	return r.Clamp(p)
}

// addDriver registers a fresh online session of the product at pos,
// drawing the full logon state — session ID, pricing posture, session
// length, cruise plan — from the world stream, and returns its slot.
// Both seed spawns and suspended-driver resumes go through here, so a
// resumed driver gets the same PriceFactor/idleSince initialization as
// any new logon.
func (w *World) addDriver(vt core.VehicleType, pos geo.Point) int32 {
	f := &w.fleet
	s := f.alloc()
	f.id[s] = w.nextID
	w.nextID++
	f.session[s] = newSessionID(w.rng)
	f.typ[s] = uint8(vt)
	f.pos[s] = pos
	f.state[s] = uint8(StateIdle)
	f.pickup[s] = geo.Point{}
	f.dest[s] = geo.Point{}
	f.destDrop[s] = false
	f.stops[s] = nil
	f.poolRiders[s] = 0
	f.priceFactor[s] = clampFactor(1 + 0.2*w.rng.NormFloat64())
	f.idleSince[s] = w.now
	f.earned[s] = 0
	f.offlineAt[s] = w.now + int64(w.sessionLength(vt))
	f.cruiseTarget[s] = w.samplePlace()
	f.cruiseUntil[s] = w.now + int64(120+w.rng.Intn(600))
	f.resetPath(s)
	f.resetRoute(s)
	w.grids[int(vt)].Insert(s, pos)
	w.markChanged(s)
	return s
}

// spawnDriver brings a new driver online from the world stream (used by
// NewWorld's seed population; steady-state arrivals go through the
// parallel spawnArrivals) and returns its slot.
func (w *World) spawnDriver() int32 {
	vt := core.VehicleType(w.sampleShare(w.fleetCDF))
	s := w.addDriver(vt, w.samplePlace())
	w.TotalSpawned++
	return s
}

// removeSlot takes a session offline: out of the spatial indexes, out of
// the snapshot, slot back on the free list. Callers count the departure
// themselves: an organic session death is TotalOffline, a coordinated
// logoff is TotalSuspended.
func (w *World) removeSlot(s int32) {
	f := &w.fleet
	if DriverState(f.state[s]) == StateIdle {
		w.grids[f.typ[s]].Remove(s)
	}
	if core.VehicleType(f.typ[s]) == core.UberPOOL {
		w.poolGrid.Remove(s)
	}
	w.markChanged(s)
	f.freeSlot(s)
}

// Step advances the world by one tick. Each phase runs under a pprof
// label so CPU profiles break down by sim phase.
func (w *World) Step() {
	instrumented := w.hStep != nil
	var stepStart, phaseStart time.Time
	if instrumented {
		stepStart = time.Now()
		phaseStart = stepStart
	}
	dt := float64(w.cfg.TickSeconds)
	w.now += w.cfg.TickSeconds
	w.tick++
	w.refreshSurgeCache()

	ctx := context.Background()
	pprof.Do(ctx, phaseLabelSets[phaseSpawn], func(context.Context) {
		w.spawnArrivals(dt)
		w.resumeSuspended()
		w.applyWithholding()
	})
	if instrumented {
		phaseStart = w.observePhase(phaseSpawn, phaseStart)
	}
	pprof.Do(ctx, phaseLabelSets[phaseMove], func(context.Context) {
		w.moveDrivers(dt)
	})
	if instrumented {
		phaseStart = w.observePhase(phaseMove, phaseStart)
	}
	pprof.Do(ctx, phaseLabelSets[phaseDispatch], func(context.Context) {
		w.generateRequests(dt)
	})
	if instrumented {
		phaseStart = w.observePhase(phaseDispatch, phaseStart)
	}
	pprof.Do(ctx, phaseLabelSets[phaseStats], func(context.Context) {
		w.roadTally()
		w.accumulateStats()
		w.expireShocks()
	})
	if instrumented {
		w.observePhase(phaseStats, phaseStart)
	}

	if instrumented {
		w.hStep.ObserveDuration(time.Since(stepStart))
		w.gDrivers.Set(float64(w.fleet.n))
		w.gSimTime.Set(float64(w.now))
		w.mPickups.Add(w.TotalPickups - w.lastPickups)
		w.mPricedOut.Add(w.TotalPricedOut - w.lastPricedOut)
		w.mUnmet.Add(w.TotalUnmet - w.lastUnmet)
		w.lastPickups = w.TotalPickups
		w.lastPricedOut = w.TotalPricedOut
		w.lastUnmet = w.TotalUnmet
	}
}

// observePhase records one phase's duration and returns the next phase's
// start time.
func (w *World) observePhase(phase int, since time.Time) time.Time {
	now := time.Now()
	w.hPhase[phase].ObserveDuration(now.Sub(since))
	return now
}

// ForceOffline takes up to n idle drivers of the product inside the surge
// area offline immediately and schedules their return after duration
// seconds — the coordinated-logoff manipulation the paper's discussion
// warns the black-box design invites. It returns how many drivers
// complied (there may be fewer than n idle in the area).
func (w *World) ForceOffline(vt core.VehicleType, area int, n int, duration int64) int {
	taken := 0
	f := &w.fleet
	for s := int32(0); int(s) < f.high && taken < n; s++ {
		if !f.live[s] || core.VehicleType(f.typ[s]) != vt || DriverState(f.state[s]) != StateIdle {
			continue
		}
		if w.areaIndex.Find(f.pos[s]) != area {
			continue
		}
		w.suspended = append(w.suspended, suspendedDriver{
			vt: vt, pos: f.pos[s], returnAt: w.now + duration,
		})
		w.emitSlot(bus.KindDriverSuspend, s, float64(duration), vt.String())
		w.removeSlot(s)
		w.TotalSuspended++
		taken++
	}
	return taken
}

// resumeSuspended brings colluding drivers back online as fresh sessions
// (a re-login gets a new randomized public ID, like any new session).
func (w *World) resumeSuspended() {
	if len(w.suspended) == 0 {
		return
	}
	live := w.suspended[:0]
	for _, s := range w.suspended {
		if w.now < s.returnAt {
			live = append(live, s)
			continue
		}
		slot := w.addDriver(s.vt, s.pos)
		w.TotalResumed++
		w.emitSlot(bus.KindDriverResume, slot, 0, s.vt.String())
	}
	w.suspended = live
}

// Run advances the world until time end.
func (w *World) Run(end int64) {
	for w.now < end {
		w.Step()
	}
}

func (w *World) expireShocks() {
	live := w.shocks[:0]
	for _, s := range w.shocks {
		if w.now < s.until {
			live = append(live, s)
		}
	}
	w.shocks = live
}

func (w *World) surgeWeight(p geo.Point) float64 {
	a := w.areaIndex.Find(p)
	if a < 0 || a >= len(w.surgeCache) {
		return 1
	}
	return w.surgeCache[a]
}

// shardOps buffers one shard's deferred world mutations during the
// parallel movement phase: grid updates, joinable-POOL index updates,
// removals, and snapshot dirty marks may not touch shared state from
// workers, so they queue here and the commit loop applies them in
// (shard, index) order.
type shardOps struct {
	removals []int32 // drivers whose session ended this tick
	moves    [core.NumVehicleTypes][]geo.SlotPoint
	inserts  [core.NumVehicleTypes][]geo.SlotPoint // trip completions re-entering the map
	poolIns  []geo.SlotPoint                       // trips becoming joinable
	poolMove []geo.SlotPoint                       // joinable trips that moved
	poolDel  []int32                               // trips no longer joinable
	changed  []int32                               // idle cars whose wire view changed
	dropoffs int64
}

func (o *shardOps) reset() {
	o.removals = o.removals[:0]
	for vt := range o.moves {
		o.moves[vt] = o.moves[vt][:0]
		o.inserts[vt] = o.inserts[vt][:0]
	}
	o.poolIns = o.poolIns[:0]
	o.poolMove = o.poolMove[:0]
	o.poolDel = o.poolDel[:0]
	o.changed = o.changed[:0]
	o.dropoffs = 0
}

// moveDrivers advances every driver's state machine by dt seconds.
//
// The phase is parallel over fixed slot-range shards: each shard mutates
// only its own slots' columns and its private shardOps buffer, drawing
// randomness from the shard's (seed, tick, shard) stream. The trailing
// commit applies grid moves, re-inserts, and removals serially in shard
// order, so the world after the phase is independent of worker count.
// With one worker the whole phase runs inline and allocation-free: the
// RNGs, commit buffers, and grid cells are all reused tick over tick.
func (w *World) moveDrivers(dt float64) {
	speed := StreetSpeed(w.now)
	high := w.fleet.high
	shards := numShards(high)
	for len(w.moveOps) < shards {
		w.moveOps = append(w.moveOps, shardOps{})
	}
	w.ensureRoadRouters(shards)
	if w.workers <= 1 || shards <= 1 {
		for s := 0; s < shards; s++ {
			w.moveShard(s, dt, speed)
		}
	} else {
		w.runShards(shards, func(s int) { w.moveShard(s, dt, speed) })
	}
	f := &w.fleet
	for s := 0; s < shards; s++ {
		o := &w.moveOps[s]
		w.TotalDropoffs += o.dropoffs
		for vt := range o.moves {
			w.grids[vt].MoveBatch(o.moves[vt])
			w.grids[vt].InsertBatch(o.inserts[vt])
		}
		w.poolGrid.RemoveBatch(o.poolDel)
		w.poolGrid.MoveBatch(o.poolMove)
		w.poolGrid.InsertBatch(o.poolIns)
		for vt := range o.inserts {
			for _, ip := range o.inserts[vt] {
				// A re-inserted driver just finished a trip; the commit loop
				// runs serially in shard order, so emission order is stable.
				w.markChanged(ip.Slot)
				w.emitSlot(bus.KindTripComplete, ip.Slot, 0, core.VehicleType(vt).String())
			}
		}
		for _, sl := range o.removals {
			w.TotalOffline++
			w.emitSlot(bus.KindDriverOffline, sl, 0, core.VehicleType(f.typ[sl]).String())
			w.removeSlot(sl)
		}
		for _, sl := range o.changed {
			w.markChanged(sl)
		}
	}
}

// moveShard runs one shard of the movement phase.
func (w *World) moveShard(s int, dt, speed float64) {
	o := &w.moveOps[s]
	o.reset()
	rng := w.pooledShardRand(s)
	var rt *road.Router
	if w.road != nil {
		rt = w.roadRouters[s]
	}
	lo, hi := shardBounds(s, w.fleet.high)
	live := w.fleet.live
	for i := lo; i < hi; i++ {
		if !live[i] {
			continue
		}
		w.moveOne(int32(i), dt, speed, rng, rt, o)
	}
}

// moveOne advances a single driver, queueing shared-state mutations in o.
// It may only write the slot's own columns; everything else is deferred.
func (w *World) moveOne(s int32, dt, speed float64, rng *rand.Rand, rt *road.Router, o *shardOps) {
	f := &w.fleet
	isPool := core.VehicleType(f.typ[s]) == core.UberPOOL
	wasJoin := isPool && DriverState(f.state[s]) == StateOnTrip &&
		f.poolRiders[s] == 1 && len(f.stops[s]) == 0 && f.destDrop[s]
	switch DriverState(f.state[s]) {
	case StateIdle:
		if f.offlineAt[s] <= w.now {
			o.removals = append(o.removals, s)
			return // departed drivers don't extend their path
		}
		var moved bool
		if w.road != nil {
			moved = w.roadCruise(s, dt, rng, rt, o)
		} else {
			moved = w.cruise(s, dt, rng, o)
		}
		if f.record(s) || moved {
			o.changed = append(o.changed, s)
		}
		return
	case StateEnRoute:
		if w.advance(s, f.pickup[s], dt, speed, rt) {
			// Passenger boards; trip begins.
			f.state[s] = uint8(StateOnTrip)
		}
	case StateOnTrip:
		if w.advance(s, f.dest[s], dt, speed, rt) {
			if f.destDrop[s] {
				o.dropoffs++
				if f.poolRiders[s] > 0 {
					f.poolRiders[s]--
				}
			}
			if st := f.stops[s]; len(st) > 0 {
				// A shared POOL trip continues through its stop queue.
				next := st[0]
				f.stops[s] = st[1:]
				f.dest[s] = next.Pos
				f.destDrop[s] = next.Drop
			} else {
				f.poolRiders[s] = 0
				if f.offlineAt[s] <= w.now {
					if wasJoin {
						o.poolDel = append(o.poolDel, s)
					}
					o.removals = append(o.removals, s)
					return
				}
				f.state[s] = uint8(StateIdle)
				f.idleSince[s] = w.now
				f.cruiseTarget[s] = w.samplePlaceRand(rng)
				f.cruiseUntil[s] = w.now + int64(120+rng.Intn(600))
				o.inserts[f.typ[s]] = append(o.inserts[f.typ[s]], geo.SlotPoint{Slot: s, Pos: f.pos[s]})
			}
		}
	}
	f.record(s)
	if isPool {
		isJoin := DriverState(f.state[s]) == StateOnTrip &&
			f.poolRiders[s] == 1 && len(f.stops[s]) == 0 && f.destDrop[s]
		switch {
		case wasJoin && isJoin:
			o.poolMove = append(o.poolMove, geo.SlotPoint{Slot: s, Pos: f.pos[s]})
		case wasJoin && !isJoin:
			o.poolDel = append(o.poolDel, s)
		case !wasJoin && isJoin:
			o.poolIns = append(o.poolIns, geo.SlotPoint{Slot: s, Pos: f.pos[s]})
		}
	}
}

// cruise moves an idle driver toward its cruise target, re-rolling the
// target when reached or expired, and reports whether the position moved.
// Idle drivers drift toward hotspots most of the time, producing the
// spatial skew in Figs 9 and 10.
func (w *World) cruise(s int32, dt float64, rng *rand.Rand, o *shardOps) bool {
	f := &w.fleet
	if w.cfg.Pricing == PricingDriverSet && w.now-f.idleSince[s] > 1200 {
		// No fare for 20 minutes: lower the asking price and keep
		// waiting (lose-shift).
		f.priceFactor[s] = clampFactor(f.priceFactor[s] - 0.1)
		f.idleSince[s] = w.now
	}
	if w.now >= f.cruiseUntil[s] || geo.Dist(f.pos[s], f.cruiseTarget[s]) < 20 {
		f.cruiseTarget[s] = w.samplePlaceRand(rng)
		f.cruiseUntil[s] = w.now + int64(120+rng.Intn(600))
	}
	// Jittered heading toward the target.
	v := f.cruiseTarget[s].Sub(f.pos[s])
	n := v.Norm()
	if n < 1 {
		return false
	}
	step := idleSpeed * dt
	move := v.Scale(step / n)
	move.X += rng.NormFloat64() * step * 0.3
	move.Y += rng.NormFloat64() * step * 0.3
	f.pos[s] = w.profile.Region.Clamp(f.pos[s].Add(move))
	o.moves[f.typ[s]] = append(o.moves[f.typ[s]], geo.SlotPoint{Slot: s, Pos: f.pos[s]})
	return true
}

// settleFare charges the passenger the upfront fare for the trip estimate
// and splits it between the driver (80%) and the platform (20%).
// surgePriced marks trips that carry the dynamic price signal (surgeable
// product, full-fare booking): under an additive engine those trips are
// priced base + pip, with the driver keeping the entire pip on top of the
// usual 80% of base — the Garg & Nazerzadeh payout structure.
func (w *World) settleFare(slot int32, pickup, dest geo.Point, multiplier float64, area int, surgePriced bool) {
	var meters, seconds float64
	if w.road != nil {
		// Upfront pricing on the actual street route under current
		// congestion, not the flat detour factor.
		meters, seconds = roadTripEstimate(w.road.Graph, w.roadRouter, w.road.Cong.Factors(), pickup, dest)
		seconds += tripStopSeconds
	} else {
		meters = geo.Dist(pickup, dest) * manhattanFactor
		seconds = meters/StreetSpeed(w.now) + tripStopSeconds
	}
	sched := w.fares[core.VehicleType(w.fleet.typ[slot])]
	if w.pipOf != nil && surgePriced && area >= 0 {
		base := sched.Fare(meters, seconds, 1)
		pip := w.pipCache[area]
		fare := base + pip
		w.FareVolume += fare
		w.CommissionUSD += base * CommissionRate
		w.fleet.earned[slot] += base*(1-CommissionRate) + pip
		w.AreaFares[area] += fare
		return
	}
	fare := sched.Fare(meters, seconds, multiplier)
	w.FareVolume += fare
	w.CommissionUSD += fare * CommissionRate
	w.fleet.earned[slot] += fare * (1 - CommissionRate)
	if area >= 0 {
		w.AreaFares[area] += fare
	}
}

// clampFactor bounds a driver-set price factor to a plausible market
// range.
func clampFactor(f float64) float64 {
	if f < 0.7 {
		return 0.7
	}
	if f > 2.5 {
		return 2.5
	}
	return f
}

// areaCount is one shard's per-area idle/busy tally.
type areaCount struct{ idle, busy int32 }

// accumulateStats samples per-area idle/busy counts for the surge
// engine's trailing window. The tally is parallel over driver shards;
// the per-shard integer counts merge into one exact total regardless of
// shard or worker order, so the accumulated floats match the serial sum
// bit for bit. The per-shard buffers persist across ticks.
func (w *World) accumulateStats() {
	if len(w.areas) == 0 {
		return
	}
	f := &w.fleet
	shards := numShards(f.high)
	for len(w.statParts) < shards {
		w.statParts = append(w.statParts, nil)
	}
	tally := func(s int) {
		counts := w.statParts[s]
		if len(counts) != len(w.areas) {
			counts = make([]areaCount, len(w.areas))
			w.statParts[s] = counts
		} else {
			for i := range counts {
				counts[i] = areaCount{}
			}
		}
		lo, hi := shardBounds(s, f.high)
		for i := lo; i < hi; i++ {
			if !f.live[i] || !core.VehicleType(f.typ[i]).Surgeable() {
				continue
			}
			a := w.areaIndex.Find(f.pos[i])
			if a < 0 {
				continue
			}
			if DriverState(f.state[i]) == StateIdle {
				counts[a].idle++
			} else {
				counts[a].busy++
			}
		}
	}
	if w.workers <= 1 || shards <= 1 {
		for s := 0; s < shards; s++ {
			tally(s)
		}
	} else {
		w.runShards(shards, tally)
	}
	for i := range w.areas {
		var idle, busy int32
		for s := 0; s < shards; s++ {
			idle += w.statParts[s][i].idle
			busy += w.statParts[s][i].busy
		}
		st := &w.areaStats[i]
		st.Ticks++
		st.IdleCarTicks += float64(idle)
		st.BusyCarTicks += float64(busy)
	}
}

// ConsumeWindow returns and resets the accumulated stats for an area; the
// surge engine calls this at each 5-minute update.
func (w *World) ConsumeWindow(area int) WindowStats {
	st := w.areaStats[area]
	w.areaStats[area] = WindowStats{}
	return st
}

// PeekWindow returns the accumulated stats without resetting them.
func (w *World) PeekWindow(area int) WindowStats { return w.areaStats[area] }

// ewtFromDist converts a nearest-car distance to the estimated wait time.
func ewtFromDist(dist float64, now int64) float64 {
	t := dispatchOverhead + dist*manhattanFactor/StreetSpeed(now)
	if t > maxEWTSeconds {
		t = maxEWTSeconds
	}
	return t
}

// EWT returns the estimated wait time in seconds for a product at a
// location: dispatch overhead plus the street-grid travel time of the
// nearest idle car, capped at the paper's observed 43-minute maximum.
func (w *World) EWT(vt core.VehicleType, pos geo.Point) float64 {
	w.knnBuf = w.grids[int(vt)].KNearestInto(pos, 1, w.knnBuf)
	if len(w.knnBuf) == 0 {
		return maxEWTSeconds
	}
	if w.road != nil {
		return w.roadEWTFrom(w.fleet.pos[w.knnBuf[0].Slot], pos)
	}
	return ewtFromDist(w.knnBuf[0].Dist, w.now)
}

// NearestCars returns up to k idle cars of the product nearest to pos, as
// pingClient would render them: randomized session IDs, lat/lng positions,
// and recent path vectors.
func (w *World) NearestCars(vt core.VehicleType, pos geo.Point, k int) []core.CarView {
	f := &w.fleet
	w.knnBuf = w.grids[int(vt)].KNearestInto(pos, k, w.knnBuf)
	out := make([]core.CarView, 0, len(w.knnBuf))
	var pts []geo.Point
	for _, n := range w.knnBuf {
		s := n.Slot
		pts = f.pathPoints(s, pts[:0])
		path := make([]geo.LatLng, len(pts))
		for i, p := range pts {
			path[i] = w.proj.ToLatLng(p)
		}
		out = append(out, core.CarView{
			ID:   f.session[s],
			Pos:  w.proj.ToLatLng(f.pos[s]),
			Path: path,
		})
	}
	return out
}

// CountByState returns how many online drivers of the product are in each
// state; ground truth for validation and tests.
func (w *World) CountByState(vt core.VehicleType) (idle, enroute, ontrip int) {
	f := &w.fleet
	for s := 0; s < f.high; s++ {
		if !f.live[s] || core.VehicleType(f.typ[s]) != vt {
			continue
		}
		switch DriverState(f.state[s]) {
		case StateIdle:
			idle++
		case StateEnRoute:
			enroute++
		case StateOnTrip:
			ontrip++
		}
	}
	return
}

// OnlineDrivers returns the number of online drivers across all products.
func (w *World) OnlineDrivers() int { return w.fleet.n }

// EachDriver visits every online driver in deterministic (slot) order.
// The *Driver passed to fn is a view materialized from the fleet columns
// and reused between calls: callers that retain driver state beyond the
// callback must copy the struct.
func (w *World) EachDriver(fn func(d *Driver)) {
	f := &w.fleet
	var d Driver
	for s := int32(0); int(s) < f.high; s++ {
		if !f.live[s] {
			continue
		}
		f.view(s, &d)
		fn(&d)
	}
}

// poisson draws a Poisson-distributed count with the given mean using
// Knuth's method (the means here are well below 30 per tick).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological means
		}
	}
}
