package sim

import (
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
)

// Config configures a World.
type Config struct {
	Profile *CityProfile
	Seed    int64
	// TickSeconds is the simulation step; it defaults to 5, the ping
	// cadence of the Client app.
	TickSeconds int64
	// StartTime is the initial simulation time (seconds since Monday
	// midnight). Defaults to 0.
	StartTime int64
	// Pricing selects the market mechanism (default PricingSurge).
	Pricing PricingMode
	// Workers is how many goroutines the phase-parallel portions of Step
	// (movement/cruise, window stats, snapshot build) fan out over;
	// 0 means runtime.GOMAXPROCS(0). Results are bit-for-bit identical
	// for every worker count: parallel phases draw from per-(seed, tick,
	// shard) RNG streams and commit through ordered per-shard buffers
	// (see parallel.go).
	Workers int
}

// PricingMode selects how prices form.
type PricingMode int

// The two market designs the paper contrasts in §8: Uber's centralized
// surge algorithm, and Sidecar's model where every driver sets their own
// price and passengers pick whom to accept.
const (
	PricingSurge PricingMode = iota
	PricingDriverSet
)

// WindowStats aggregates one surge area's activity over the trailing
// window; the surge engine consumes and resets it every five minutes.
type WindowStats struct {
	Ticks        int
	IdleCarTicks float64 // Σ idle cars per tick (surgeable products)
	BusyCarTicks float64 // Σ en-route + on-trip cars per tick
	Pickups      int     // fulfilled requests, i.e. "deaths" by booking
	LatentDemand int     // quantity demanded incl. priced-out + unfulfilled
	PricedOut    int     // requests abandoned due to surge
	Unfulfilled  int     // requests with no reachable driver
	EWTSum       float64 // Σ UberX EWT sampled at the area centroid
	EWTN         int
}

// AvgIdle returns the average number of visible (idle) cars in the area.
func (w WindowStats) AvgIdle() float64 {
	if w.Ticks == 0 {
		return 0
	}
	return w.IdleCarTicks / float64(w.Ticks)
}

// AvgBusy returns the average number of booked cars in the area.
func (w WindowStats) AvgBusy() float64 {
	if w.Ticks == 0 {
		return 0
	}
	return w.BusyCarTicks / float64(w.Ticks)
}

// AvgEWT returns the average sampled EWT in seconds (0 if unsampled).
func (w WindowStats) AvgEWT() float64 {
	if w.EWTN == 0 {
		return 0
	}
	return w.EWTSum / float64(w.EWTN)
}

// World is the simulated city. It is not safe for concurrent use; the
// layers above (api.Service) serialize access.
type World struct {
	cfg     Config
	profile *CityProfile
	rng     *rand.Rand
	proj    *geo.Projection

	now  int64
	tick int64

	drivers   []*Driver // iteration order is deterministic
	driverIdx map[int64]int
	nextID    int64

	// idle cars only, one index per product: these are the cars a client
	// can see.
	grids [core.NumVehicleTypes]*geo.Grid

	areas      []geo.Polygon
	areaIndex  *geo.AreaIndex
	areaStats  []WindowStats
	surgeOf    func(area int) float64 // provided by the surge engine
	fleetCDF   []float64              // cumulative fleet shares
	demandCDF  []float64              // cumulative demand shares
	hotspotCDF []float64

	meanSessionSec float64
	effSessionSec  float64 // fleet-wide expected session length

	// demand shocks: exogenous demand multipliers per area (concerts,
	// storms, "last call" surges beyond the diurnal curve).
	shocks []demandShock

	// suspended drivers (the §8 collusion scenario: drivers go offline
	// together to starve supply, then return once surge rises).
	suspended []suspendedDriver

	// lifetime counters (ground truth for tests and validation).
	// Spawned/Offline count organic session starts and deaths only;
	// coordinated-logoff suspension cycles (ForceOffline → return) are
	// tracked separately so they don't skew churn- and lifespan-derived
	// figures (Fig 7).
	TotalSpawned   int64
	TotalOffline   int64
	TotalSuspended int64
	TotalResumed   int64
	TotalPickups   int64
	TotalDropoffs  int64
	TotalPricedOut int64
	TotalUnmet     int64
	TotalPoolJoins int64

	// price multipliers paid by fulfilled passengers (surge multiplier
	// or the chosen driver's PriceFactor, by pricing mode).
	priceSum, priceSumSq float64
	priceN               int64

	// Economics (§2): upfront fares, Uber's 20% commission, drivers' 80%.
	fares         map[core.VehicleType]core.FareSchedule
	FareVolume    float64 // total passenger spend, USD
	CommissionUSD float64 // Uber's cut
	// AreaFares accumulates passenger spend by pickup area (lifetime,
	// never reset — the attack experiment diffs it across a window).
	AreaFares []float64

	// workers is the resolved Config.Workers; moveOps holds the reusable
	// per-shard commit buffers of the parallel movement phase.
	workers int
	moveOps []shardOps

	// events receives lifecycle/trip events (see SetEventSink); nil when
	// nothing listens. Only serial phases call it.
	events func(bus.Event)

	// nil-safe metric handles; zero until Instrument is called. The
	// counters mirror the lifetime totals by delta so Prometheus sees
	// monotonic series.
	hStep         *obs.Histogram
	hPhase        [numPhases]*obs.Histogram
	gDrivers      *obs.Gauge
	gSimTime      *obs.Gauge
	mPickups      *obs.Counter
	mPricedOut    *obs.Counter
	mUnmet        *obs.Counter
	lastPickups   int64
	lastPricedOut int64
	lastUnmet     int64
}

// Step phases, in execution order, for per-phase timing.
const (
	phaseSpawn    = iota // spawnArrivals + resumeSuspended
	phaseMove            // parallel movement/cruise + serial commit
	phaseDispatch        // generateRequests
	phaseStats           // accumulateStats + expireShocks
	numPhases
)

var phaseNames = [numPhases]string{"spawn", "move", "dispatch", "stats"}

// Instrument wires the world's metrics into reg:
//
//	sim_step_duration_seconds   wall-clock cost of one tick
//	sim_phase_duration_seconds{phase}  per-phase breakdown of a tick
//	sim_drivers_online          current online driver count
//	sim_time_seconds            simulation clock
//	sim_pickups_total           fulfilled requests
//	sim_requests_priced_out_total / sim_requests_unmet_total  lost demand
func (w *World) Instrument(reg *obs.Registry) {
	w.hStep = reg.Histogram("sim_step_duration_seconds", nil)
	for i := range w.hPhase {
		w.hPhase[i] = reg.Histogram("sim_phase_duration_seconds", nil, obs.L("phase", phaseNames[i]))
	}
	w.gDrivers = reg.Gauge("sim_drivers_online")
	w.gSimTime = reg.Gauge("sim_time_seconds")
	w.mPickups = reg.Counter("sim_pickups_total")
	w.mPricedOut = reg.Counter("sim_requests_priced_out_total")
	w.mUnmet = reg.Counter("sim_requests_unmet_total")
	w.lastPickups = w.TotalPickups
	w.lastPricedOut = w.TotalPricedOut
	w.lastUnmet = w.TotalUnmet
}

// CommissionRate is Uber's share of each fare (§2).
const CommissionRate = 0.20

// PriceStats returns the mean and standard deviation of the price
// multiplier fulfilled passengers paid, and the sample count.
func (w *World) PriceStats() (mean, std float64, n int64) {
	if w.priceN == 0 {
		return 0, 0, 0
	}
	mean = w.priceSum / float64(w.priceN)
	v := w.priceSumSq/float64(w.priceN) - mean*mean
	if v > 0 {
		std = math.Sqrt(v)
	}
	return mean, std, w.priceN
}

type demandShock struct {
	area   int
	factor float64
	until  int64
}

type suspendedDriver struct {
	vt       core.VehicleType
	pos      geo.Point
	returnAt int64
}

// movement and dispatch constants.
const (
	idleSpeed        = 3.0    // m/s while cruising
	dispatchOverhead = 75.0   // seconds of matching + acceptance latency
	manhattanFactor  = 1.4    // street-grid detour over straight line
	maxEWTSeconds    = 2580.0 // 43 minutes, the paper's observed maximum
	dispatchRadius   = 2200.0 // max straight-line pickup distance, meters
	tripStopSeconds  = 120.0  // fixed per-trip boarding/alighting time
)

// NewWorld builds a world for the profile with an initial driver
// population appropriate for the start hour.
func NewWorld(cfg Config) *World {
	if cfg.Profile == nil {
		panic("sim: Config.Profile is required")
	}
	if cfg.TickSeconds <= 0 {
		cfg.TickSeconds = 5
	}
	p := cfg.Profile
	w := &World{
		cfg:       cfg,
		profile:   p,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		proj:      geo.NewProjection(p.Origin),
		now:       cfg.StartTime,
		driverIdx: make(map[int64]int),
		areas:     p.SurgeAreas(),
		surgeOf:   func(int) float64 { return 1 },
	}
	w.workers = cfg.Workers
	if w.workers <= 0 {
		w.workers = runtime.GOMAXPROCS(0)
	}
	w.areaIndex = geo.NewAreaIndex(w.areas, gridCellMeters)
	w.areaStats = make([]WindowStats, len(w.areas))
	w.fares = core.DefaultFares()
	w.AreaFares = make([]float64, len(w.areas))
	for i := range w.grids {
		w.grids[i] = geo.NewGrid(p.Region, gridCellMeters)
	}
	w.fleetCDF = cdfOf(NormalizedShares(p.FleetShare))
	w.demandCDF = cdfOf(NormalizedShares(p.DemandShare))
	w.hotspotCDF = make([]float64, len(p.Hotspots))
	var hs float64
	for i, h := range p.Hotspots {
		hs += h.Weight
		w.hotspotCDF[i] = hs
	}
	for i := range w.hotspotCDF {
		w.hotspotCDF[i] /= hs
	}
	w.meanSessionSec = p.MeanSessionMinutes * 60
	// Expected session length across the fleet: the lognormal draw has
	// mean = median·exp(σ²/2), and luxury products run longer sessions.
	// spawnArrivals divides by this to hold the population at its target.
	luxShare := w.fleetShareOf(core.UberBLACK) + w.fleetShareOf(core.UberSUV)
	w.effSessionSec = w.meanSessionSec *
		((1 - luxShare) + luxShare*p.LuxurySessionFactor) *
		math.Exp(0.7*0.7/2)

	// Seed the initial population at the steady-state size for the start
	// hour, with sessions already partially elapsed.
	target := int(float64(p.PeakDrivers) * p.SupplyDiurnal[HourOfDay(w.now)])
	for i := 0; i < target; i++ {
		d := w.spawnDriver()
		// Spread remaining session time as if drivers came online earlier.
		elapsed := int64(w.rng.Float64() * w.sessionLength(d.Type))
		d.OfflineAt -= elapsed
		if d.OfflineAt <= w.now {
			d.OfflineAt = w.now + int64(w.rng.Float64()*w.meanSessionSec*0.5) + 60
		}
	}
	return w
}

// fleetShareOf returns the normalized fleet share of a product.
func (w *World) fleetShareOf(vt core.VehicleType) float64 {
	prev := 0.0
	if int(vt) > 0 {
		prev = w.fleetCDF[int(vt)-1]
	}
	return w.fleetCDF[int(vt)] - prev
}

func cdfOf(shares []float64) []float64 {
	out := make([]float64, len(shares))
	var s float64
	for i, v := range shares {
		s += v
		out[i] = s
	}
	return out
}

// Profile returns the city profile the world was built from.
func (w *World) Profile() *CityProfile { return w.profile }

// Projection returns the world's lat/lng projection.
func (w *World) Projection() *geo.Projection { return w.proj }

// Areas returns the surge-area polygons.
func (w *World) Areas() []geo.Polygon { return w.areas }

// AreaIndex returns the rasterized point-in-area index over the surge
// areas; it answers exactly what AreaOf answers, in O(1).
func (w *World) AreaIndex() *geo.AreaIndex { return w.areaIndex }

// Now returns the current simulation time in seconds.
func (w *World) Now() int64 { return w.now }

// TickSeconds returns the configured step size.
func (w *World) TickSeconds() int64 { return w.cfg.TickSeconds }

// SetSurgeProvider registers the function used to look up the current
// surge multiplier for an area; the surge engine installs itself here.
func (w *World) SetSurgeProvider(f func(area int) float64) {
	if f != nil {
		w.surgeOf = f
	}
}

// InjectDemandShock multiplies request arrivals in an area by factor for
// the given duration — the simulator's stand-in for concerts, storms, and
// the other exogenous spikes that make surge noisy.
func (w *World) InjectDemandShock(area int, factor float64, duration int64) {
	w.shocks = append(w.shocks, demandShock{area: area, factor: factor, until: w.now + duration})
}

func (w *World) shockFactor(area int) float64 {
	f := 1.0
	for _, s := range w.shocks {
		if s.area == area && w.now < s.until {
			f *= s.factor
		}
	}
	return f
}

// StreetSpeed returns the driving speed in m/s at time t: slower during
// rush hours, faster overnight.
func StreetSpeed(t int64) float64 {
	h := HourOfDay(t)
	switch {
	case Rush(h) && !Weekend(t):
		return 4.2
	case h >= 22 || h < 6:
		return 8.0
	default:
		return 6.0
	}
}

// sessionLength draws a session length in seconds for a product; luxury
// products (BLACK, SUV) run longer sessions, as Fig 7 shows.
func (w *World) sessionLength(vt core.VehicleType) float64 {
	mean := w.meanSessionSec
	if vt == core.UberBLACK || vt == core.UberSUV {
		mean *= w.profile.LuxurySessionFactor
	}
	// Lognormal with sigma 0.7 around the target median.
	return mean * math.Exp(w.rng.NormFloat64()*0.7)
}

// sampleShare picks an index from a cumulative share vector.
func (w *World) sampleShare(cdf []float64) int {
	return sampleShareRand(w.rng, cdf)
}

func sampleShareRand(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for i, c := range cdf {
		if u <= c {
			return i
		}
	}
	return len(cdf) - 1
}

// samplePlace draws a location from the hotspot mixture (75%) or uniformly
// from the region (25%), clamped into the region. The serial phases draw
// from the world stream; shard workers pass their own stream.
func (w *World) samplePlace() geo.Point { return w.samplePlaceRand(w.rng) }

func (w *World) samplePlaceRand(rng *rand.Rand) geo.Point {
	r := w.profile.Region
	if len(w.profile.Hotspots) == 0 || rng.Float64() < 0.25 {
		return geo.Point{
			X: r.Min.X + rng.Float64()*r.Width(),
			Y: r.Min.Y + rng.Float64()*r.Height(),
		}
	}
	h := w.profile.Hotspots[sampleShareRand(rng, w.hotspotCDF)]
	p := geo.Point{
		X: h.Pos.X + rng.NormFloat64()*h.Radius,
		Y: h.Pos.Y + rng.NormFloat64()*h.Radius,
	}
	return r.Clamp(p)
}

// addDriver registers a fresh online session of the product at pos,
// drawing the full logon state — session ID, pricing posture, session
// length, cruise plan — from the world stream. Both organic spawns and
// suspended-driver resumes go through here, so a resumed driver gets the
// same PriceFactor/idleSince initialization as any new logon (it used to
// come back with the zero values, quoting factor 0 and instantly
// tripping the lose-shift rule under PricingDriverSet).
func (w *World) addDriver(vt core.VehicleType, pos geo.Point) *Driver {
	d := &Driver{
		ID:          w.nextID,
		Session:     newSessionID(w.rng),
		Type:        vt,
		Pos:         pos,
		State:       StateIdle,
		PriceFactor: clampFactor(1 + 0.2*w.rng.NormFloat64()),
		idleSince:   w.now,
	}
	w.nextID++
	d.OfflineAt = w.now + int64(w.sessionLength(vt))
	d.cruiseTarget = w.samplePlace()
	d.cruiseUntil = w.now + int64(120+w.rng.Intn(600))
	d.recordPath()
	w.drivers = append(w.drivers, d)
	w.driverIdx[d.ID] = len(w.drivers) - 1
	w.grids[int(vt)].Insert(d.ID, d.Pos)
	return d
}

// spawnDriver brings a new driver online and returns it.
func (w *World) spawnDriver() *Driver {
	vt := core.VehicleType(w.sampleShare(w.fleetCDF))
	d := w.addDriver(vt, w.samplePlace())
	w.TotalSpawned++
	return d
}

// removeDriver takes the driver at slice index i offline. Callers count
// the departure themselves: an organic session death is TotalOffline, a
// coordinated-logoff suspension is TotalSuspended.
func (w *World) removeDriver(i int) {
	d := w.drivers[i]
	if d.State == StateIdle {
		w.grids[int(d.Type)].Remove(d.ID)
	}
	last := len(w.drivers) - 1
	w.drivers[i] = w.drivers[last]
	w.driverIdx[w.drivers[i].ID] = i
	w.drivers = w.drivers[:last]
	delete(w.driverIdx, d.ID)
}

// Step advances the world by one tick.
func (w *World) Step() {
	instrumented := w.hStep != nil
	var stepStart, phaseStart time.Time
	if instrumented {
		stepStart = time.Now()
		phaseStart = stepStart
	}
	dt := float64(w.cfg.TickSeconds)
	w.now += w.cfg.TickSeconds
	w.tick++

	w.spawnArrivals(dt)
	w.resumeSuspended()
	if instrumented {
		phaseStart = w.observePhase(phaseSpawn, phaseStart)
	}
	w.moveDrivers(dt)
	if instrumented {
		phaseStart = w.observePhase(phaseMove, phaseStart)
	}
	w.generateRequests(dt)
	if instrumented {
		phaseStart = w.observePhase(phaseDispatch, phaseStart)
	}
	w.accumulateStats()
	w.expireShocks()
	if instrumented {
		w.observePhase(phaseStats, phaseStart)
	}

	if instrumented {
		w.hStep.ObserveDuration(time.Since(stepStart))
		w.gDrivers.Set(float64(len(w.drivers)))
		w.gSimTime.Set(float64(w.now))
		w.mPickups.Add(w.TotalPickups - w.lastPickups)
		w.mPricedOut.Add(w.TotalPricedOut - w.lastPricedOut)
		w.mUnmet.Add(w.TotalUnmet - w.lastUnmet)
		w.lastPickups = w.TotalPickups
		w.lastPricedOut = w.TotalPricedOut
		w.lastUnmet = w.TotalUnmet
	}
}

// observePhase records one phase's duration and returns the next phase's
// start time.
func (w *World) observePhase(phase int, since time.Time) time.Time {
	now := time.Now()
	w.hPhase[phase].ObserveDuration(now.Sub(since))
	return now
}

// ForceOffline takes up to n idle drivers of the product inside the surge
// area offline immediately and schedules their return after duration
// seconds — the coordinated-logoff manipulation the paper's discussion
// warns the black-box design invites. It returns how many drivers
// complied (there may be fewer than n idle in the area).
func (w *World) ForceOffline(vt core.VehicleType, area int, n int, duration int64) int {
	taken := 0
	for i := 0; i < len(w.drivers) && taken < n; i++ {
		d := w.drivers[i]
		if d.Type != vt || d.State != StateIdle {
			continue
		}
		if w.areaIndex.Find(d.Pos) != area {
			continue
		}
		w.suspended = append(w.suspended, suspendedDriver{
			vt: d.Type, pos: d.Pos, returnAt: w.now + duration,
		})
		w.emitDriver(bus.KindDriverSuspend, d, float64(duration), d.Type.String())
		w.removeDriver(i)
		w.TotalSuspended++
		i--
		taken++
	}
	return taken
}

// resumeSuspended brings colluding drivers back online as fresh sessions
// (a re-login gets a new randomized public ID, like any new session).
func (w *World) resumeSuspended() {
	if len(w.suspended) == 0 {
		return
	}
	live := w.suspended[:0]
	for _, s := range w.suspended {
		if w.now < s.returnAt {
			live = append(live, s)
			continue
		}
		d := w.addDriver(s.vt, s.pos)
		w.TotalResumed++
		w.emitDriver(bus.KindDriverResume, d, 0, d.Type.String())
	}
	w.suspended = live
}

// Run advances the world until time end.
func (w *World) Run(end int64) {
	for w.now < end {
		w.Step()
	}
}

func (w *World) expireShocks() {
	live := w.shocks[:0]
	for _, s := range w.shocks {
		if w.now < s.until {
			live = append(live, s)
		}
	}
	w.shocks = live
}

// spawnArrivals brings new drivers online at a rate that sustains the
// diurnal steady-state population, boosted slightly by surge (§5.5: a
// small, consistent increase in new cars in surging areas).
func (w *World) spawnArrivals(dt float64) {
	p := w.profile
	target := float64(p.PeakDrivers) * p.SupplyDiurnal[HourOfDay(w.now)]
	rate := target / w.effSessionSec // arrivals per second
	// A profile without surge areas (taxi validation, custom rigs) has no
	// surge signal: treat it as a uniform 1.0 rather than dividing by
	// zero, which would turn the arrival rate into NaN and silently stop
	// all spawning.
	avgSurge := 1.0
	if len(w.areas) > 0 {
		avgSurge = 0.0
		for i := range w.areas {
			avgSurge += w.surgeOf(i)
		}
		avgSurge /= float64(len(w.areas))
	}
	rate *= 1 + p.SupplyBoost*(avgSurge-1)
	n := poisson(w.rng, rate*dt)
	for i := 0; i < n; i++ {
		d := w.spawnDriver()
		// Driver flocking at spawn: pick the better of two candidate
		// start locations, weighting by area surge.
		alt := w.samplePlace()
		if w.surgeWeight(alt) > w.surgeWeight(d.Pos) {
			w.grids[int(d.Type)].Move(d.ID, alt)
			d.Pos = alt
		}
		w.emitDriver(bus.KindDriverSpawn, d, 0, d.Type.String())
	}
}

func (w *World) surgeWeight(p geo.Point) float64 {
	a := w.areaIndex.Find(p)
	if a < 0 {
		return 1
	}
	return w.surgeOf(a)
}

// shardOps buffers one shard's deferred world mutations during the
// parallel movement phase: grid updates and removals may not touch the
// shared grids/driver slice from workers, so they queue here and the
// commit loop applies them in (shard, index) order.
type shardOps struct {
	removals []int64 // drivers whose session ended this tick
	moves    [core.NumVehicleTypes][]geo.IDPoint
	inserts  [core.NumVehicleTypes][]geo.IDPoint // trip completions re-entering the map
	dropoffs int64
}

func (o *shardOps) reset() {
	o.removals = o.removals[:0]
	for vt := range o.moves {
		o.moves[vt] = o.moves[vt][:0]
		o.inserts[vt] = o.inserts[vt][:0]
	}
	o.dropoffs = 0
}

// moveDrivers advances every driver's state machine by dt seconds.
//
// The phase is parallel over fixed driver shards: each shard mutates only
// its own drivers' fields and its private shardOps buffer, drawing
// randomness from the shard's (seed, tick, shard) stream. The trailing
// commit applies grid moves, re-inserts, and removals serially in shard
// order, so the world after the phase is independent of worker count.
func (w *World) moveDrivers(dt float64) {
	speed := StreetSpeed(w.now)
	n := len(w.drivers)
	shards := numShards(n)
	for len(w.moveOps) < shards {
		w.moveOps = append(w.moveOps, shardOps{})
	}
	ops := w.moveOps[:shards]
	w.runShards(shards, func(s int) {
		o := &ops[s]
		o.reset()
		rng := w.shardRand(s)
		lo, hi := shardBounds(s, n)
		for _, d := range w.drivers[lo:hi] {
			w.moveOne(d, dt, speed, rng, o)
		}
	})
	for s := range ops {
		o := &ops[s]
		w.TotalDropoffs += o.dropoffs
		for vt := range o.moves {
			w.grids[vt].MoveBatch(o.moves[vt])
			w.grids[vt].InsertBatch(o.inserts[vt])
		}
		if w.events != nil {
			// A re-inserted driver just finished a trip; the commit loop
			// runs serially in shard order, so emission order is stable.
			for vt := range o.inserts {
				for _, ip := range o.inserts[vt] {
					if idx, ok := w.driverIdx[ip.ID]; ok {
						w.emitDriver(bus.KindTripComplete, w.drivers[idx], 0, core.VehicleType(vt).String())
					}
				}
			}
		}
		for _, id := range o.removals {
			idx := w.driverIdx[id]
			d := w.drivers[idx]
			w.removeDriver(idx)
			w.TotalOffline++
			w.emitDriver(bus.KindDriverOffline, d, 0, d.Type.String())
		}
	}
}

// moveOne advances a single driver, queueing shared-state mutations in o.
// It may only write driver-local fields; everything else is deferred.
func (w *World) moveOne(d *Driver, dt, speed float64, rng *rand.Rand, o *shardOps) {
	switch d.State {
	case StateIdle:
		if d.OfflineAt <= w.now {
			o.removals = append(o.removals, d.ID)
			return // departed drivers don't extend their path
		}
		w.cruise(d, dt, rng, o)
	case StateEnRoute:
		if d.stepToward(d.Pickup, speed*dt/manhattanFactor) {
			// Passenger boards; trip begins.
			d.State = StateOnTrip
		}
	case StateOnTrip:
		if d.stepToward(d.Dest, speed*dt/manhattanFactor) {
			if d.destDrop {
				o.dropoffs++
				if d.PoolRiders > 0 {
					d.PoolRiders--
				}
			}
			// A shared POOL trip continues through its stop queue.
			if len(d.stops) > 0 {
				next := d.stops[0]
				d.stops = d.stops[1:]
				d.Dest = next.Pos
				d.destDrop = next.Drop
				break
			}
			d.PoolRiders = 0
			if d.OfflineAt <= w.now {
				o.removals = append(o.removals, d.ID)
				return
			}
			d.State = StateIdle
			d.idleSince = w.now
			d.cruiseTarget = w.samplePlaceRand(rng)
			d.cruiseUntil = w.now + int64(120+rng.Intn(600))
			o.inserts[int(d.Type)] = append(o.inserts[int(d.Type)], geo.IDPoint{ID: d.ID, Pos: d.Pos})
		}
	}
	d.recordPath()
}

// cruise moves an idle driver toward its cruise target, re-rolling the
// target when reached or expired. Idle drivers drift toward hotspots most
// of the time, producing the spatial skew in Figs 9 and 10.
func (w *World) cruise(d *Driver, dt float64, rng *rand.Rand, o *shardOps) {
	if w.cfg.Pricing == PricingDriverSet && w.now-d.idleSince > 1200 {
		// No fare for 20 minutes: lower the asking price and keep
		// waiting (lose-shift).
		d.PriceFactor = clampFactor(d.PriceFactor - 0.1)
		d.idleSince = w.now
	}
	if w.now >= d.cruiseUntil || geo.Dist(d.Pos, d.cruiseTarget) < 20 {
		d.cruiseTarget = w.samplePlaceRand(rng)
		d.cruiseUntil = w.now + int64(120+rng.Intn(600))
	}
	// Jittered heading toward the target.
	v := d.cruiseTarget.Sub(d.Pos)
	n := v.Norm()
	if n < 1 {
		return
	}
	step := idleSpeed * dt
	move := v.Scale(step / n)
	move.X += rng.NormFloat64() * step * 0.3
	move.Y += rng.NormFloat64() * step * 0.3
	d.Pos = w.profile.Region.Clamp(d.Pos.Add(move))
	o.moves[int(d.Type)] = append(o.moves[int(d.Type)], geo.IDPoint{ID: d.ID, Pos: d.Pos})
}

// generateRequests draws passenger requests from the non-homogeneous
// Poisson demand process and dispatches the fulfilled ones.
func (w *World) generateRequests(dt float64) {
	p := w.profile
	curve := &p.DemandDiurnal
	if Weekend(w.now) {
		curve = &p.WeekendDemandDiurnal
	}
	rate := p.PeakRequestsPerHour / 3600 * curve[HourOfDay(w.now)]
	n := poisson(w.rng, rate*dt)
	for i := 0; i < n; i++ {
		w.oneRequest()
	}
}

func (w *World) oneRequest() {
	pickup := w.samplePlace()
	area := w.areaIndex.Find(pickup)
	w.oneRequestAt(pickup, area)
	if area >= 0 {
		// A shock multiplies arrivals: each unit of factor above 1 adds an
		// extra request at the same spot with the fractional remainder
		// drawn probabilistically.
		extra := w.shockFactor(area) - 1
		for extra > 0 {
			if extra >= 1 || w.rng.Float64() < extra {
				w.oneRequestAt(pickup, area)
			}
			extra--
		}
	}
}

func (w *World) oneRequestAt(pickup geo.Point, area int) {
	vt := core.VehicleType(w.sampleShare(w.demandCDF))
	if area >= 0 {
		st := &w.areaStats[area]
		st.LatentDemand++
		// The engine's EWT feature is demand-weighted: the wait a rider
		// at this pickup point would experience. (Sampling at area
		// centroids instead systematically inflates areas whose demand
		// clusters off-center.)
		st.EWTSum += w.EWT(core.UberX, pickup)
		st.EWTN++
	}

	// UberPOOL first tries to share an in-progress POOL trip passing
	// nearby (§2: "Uber will assign multiple passengers to each
	// vehicle"); pool seats are cheap, so elasticity is skipped.
	if vt == core.UberPOOL && w.joinPool(pickup, area) {
		return
	}

	// Select the driver and the price multiplier the passenger faces.
	var d *Driver
	var price float64
	switch w.cfg.Pricing {
	case PricingDriverSet:
		// Sidecar-style market (§8): passengers see the nearby drivers'
		// self-set prices and take the cheapest.
		near := w.grids[int(vt)].KNearest(pickup, 4)
		for _, n := range near {
			if n.Dist > dispatchRadius {
				continue
			}
			idx, ok := w.driverIdx[n.ID]
			if !ok {
				continue
			}
			cand := w.drivers[idx]
			if d == nil || cand.PriceFactor < d.PriceFactor {
				d = cand
			}
		}
		if d != nil {
			price = d.PriceFactor
		}
	default:
		near := w.grids[int(vt)].KNearest(pickup, 1)
		if len(near) == 1 && near[0].Dist <= dispatchRadius {
			if idx, ok := w.driverIdx[near[0].ID]; ok {
				d = w.drivers[idx]
			}
		}
		price = 1
		if vt.Surgeable() {
			price = w.surgeWeight(pickup)
		}
	}

	// Price elasticity: high prices scare some passengers off entirely
	// (§5.5's large negative demand effect). Applies to either market.
	if vt.Surgeable() && price > 1 {
		dropP := w.profile.Elasticity * (price - 1)
		if dropP > 0.95 {
			dropP = 0.95
		}
		if w.rng.Float64() < dropP {
			w.TotalPricedOut++
			if area >= 0 {
				w.areaStats[area].PricedOut++
			}
			return
		}
	}

	if d == nil {
		w.TotalUnmet++
		if area >= 0 {
			w.areaStats[area].Unfulfilled++
		}
		return
	}

	// Book the driver: the car disappears from the map.
	if w.cfg.Pricing == PricingDriverSet && w.now-d.idleSince < 300 {
		// Booked within 5 minutes of becoming available: demand is hot,
		// raise the asking price (win-stay).
		d.PriceFactor = clampFactor(d.PriceFactor + 0.1)
	}
	d.State = StateEnRoute
	d.Pickup = pickup
	d.Dest = w.samplePlace()
	d.destDrop = true
	d.stops = nil
	d.PoolRiders = 1
	w.grids[int(d.Type)].Remove(d.ID)
	w.TotalPickups++
	w.priceSum += price
	w.priceSumSq += price * price
	w.priceN++
	w.settleFare(d, pickup, d.Dest, price, area)
	if area >= 0 {
		w.areaStats[area].Pickups++
	}
	w.emit(bus.KindTripDispatch, d.Session, area, price, vt.String())
}

// settleFare charges the passenger the upfront fare for the trip estimate
// and splits it between the driver (80%) and the platform (20%).
func (w *World) settleFare(d *Driver, pickup, dest geo.Point, multiplier float64, area int) {
	meters := geo.Dist(pickup, dest) * manhattanFactor
	seconds := meters/StreetSpeed(w.now) + tripStopSeconds
	fare := w.fares[d.Type].Fare(meters, seconds, multiplier)
	w.FareVolume += fare
	w.CommissionUSD += fare * CommissionRate
	d.EarnedUSD += fare * (1 - CommissionRate)
	if area >= 0 {
		w.AreaFares[area] += fare
	}
}

// poolMatchRadius is how close an in-progress POOL trip must pass for a
// new rider to share it.
const poolMatchRadius = 800.0

// joinPool tries to add the rider to an existing single-rider POOL trip
// nearby. The diverted route picks the new rider up first, then serves
// both drop-offs.
func (w *World) joinPool(pickup geo.Point, area int) bool {
	for _, d := range w.drivers {
		if d.Type != core.UberPOOL || d.State != StateOnTrip {
			continue
		}
		if d.PoolRiders != 1 || len(d.stops) > 0 || !d.destDrop {
			continue
		}
		if geo.Dist(d.Pos, pickup) > poolMatchRadius {
			continue
		}
		d.stops = []PoolStop{
			{Pos: d.Dest, Drop: true},
			{Pos: w.samplePlace(), Drop: true},
		}
		joinDest := d.stops[1].Pos
		d.Dest = pickup
		d.destDrop = false
		d.PoolRiders = 2
		w.TotalPickups++
		w.TotalPoolJoins++
		w.priceSum++ // pool seats ride at multiplier 1
		w.priceSumSq++
		w.priceN++
		w.settleFare(d, pickup, joinDest, 1, area)
		if area >= 0 {
			w.areaStats[area].Pickups++
		}
		w.emit(bus.KindTripDispatch, d.Session, area, 1, "POOL/join")
		return true
	}
	return false
}

// clampFactor bounds a driver-set price factor to a plausible market
// range.
func clampFactor(f float64) float64 {
	if f < 0.7 {
		return 0.7
	}
	if f > 2.5 {
		return 2.5
	}
	return f
}

// accumulateStats samples per-area idle/busy counts for the surge
// engine's trailing window. The tally is parallel over driver shards;
// the per-shard integer counts merge into one exact total regardless of
// shard or worker order, so the accumulated floats match the serial sum
// bit for bit.
func (w *World) accumulateStats() {
	if len(w.areas) == 0 {
		return
	}
	type areaCount struct{ idle, busy int }
	n := len(w.drivers)
	shards := numShards(n)
	parts := make([][]areaCount, shards)
	w.runShards(shards, func(s int) {
		counts := make([]areaCount, len(w.areas))
		lo, hi := shardBounds(s, n)
		for _, d := range w.drivers[lo:hi] {
			if !d.Type.Surgeable() {
				continue
			}
			a := w.areaIndex.Find(d.Pos)
			if a < 0 {
				continue
			}
			if d.State == StateIdle {
				counts[a].idle++
			} else {
				counts[a].busy++
			}
		}
		parts[s] = counts
	})
	for i := range w.areas {
		var idle, busy int
		for s := range parts {
			idle += parts[s][i].idle
			busy += parts[s][i].busy
		}
		st := &w.areaStats[i]
		st.Ticks++
		st.IdleCarTicks += float64(idle)
		st.BusyCarTicks += float64(busy)
	}
}

// ConsumeWindow returns and resets the accumulated stats for an area; the
// surge engine calls this at each 5-minute update.
func (w *World) ConsumeWindow(area int) WindowStats {
	st := w.areaStats[area]
	w.areaStats[area] = WindowStats{}
	return st
}

// PeekWindow returns the accumulated stats without resetting them.
func (w *World) PeekWindow(area int) WindowStats { return w.areaStats[area] }

// EWT returns the estimated wait time in seconds for a product at a
// location: dispatch overhead plus the street-grid travel time of the
// nearest idle car, capped at the paper's observed 43-minute maximum.
func (w *World) EWT(vt core.VehicleType, pos geo.Point) float64 {
	near := w.grids[int(vt)].KNearest(pos, 1)
	if len(near) == 0 {
		return maxEWTSeconds
	}
	t := dispatchOverhead + near[0].Dist*manhattanFactor/StreetSpeed(w.now)
	if t > maxEWTSeconds {
		t = maxEWTSeconds
	}
	return t
}

// NearestCars returns up to k idle cars of the product nearest to pos, as
// pingClient would render them: randomized session IDs, lat/lng positions,
// and recent path vectors.
func (w *World) NearestCars(vt core.VehicleType, pos geo.Point, k int) []core.CarView {
	near := w.grids[int(vt)].KNearest(pos, k)
	out := make([]core.CarView, 0, len(near))
	for _, n := range near {
		idx, ok := w.driverIdx[n.ID]
		if !ok {
			continue
		}
		d := w.drivers[idx]
		pts := d.PathPoints()
		path := make([]geo.LatLng, len(pts))
		for i, p := range pts {
			path[i] = w.proj.ToLatLng(p)
		}
		out = append(out, core.CarView{
			ID:   d.Session,
			Pos:  w.proj.ToLatLng(d.Pos),
			Path: path,
		})
	}
	return out
}

// CountByState returns how many online drivers of the product are in each
// state; ground truth for validation and tests.
func (w *World) CountByState(vt core.VehicleType) (idle, enroute, ontrip int) {
	for _, d := range w.drivers {
		if d.Type != vt {
			continue
		}
		switch d.State {
		case StateIdle:
			idle++
		case StateEnRoute:
			enroute++
		case StateOnTrip:
			ontrip++
		}
	}
	return
}

// OnlineDrivers returns the number of online drivers across all products.
func (w *World) OnlineDrivers() int { return len(w.drivers) }

// EachDriver visits every online driver in deterministic order.
func (w *World) EachDriver(fn func(d *Driver)) {
	for _, d := range w.drivers {
		fn(d)
	}
}

// poisson draws a Poisson-distributed count with the given mean using
// Knuth's method (the means here are well below 30 per tick).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological means
		}
	}
}
