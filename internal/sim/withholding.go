package sim

import (
	"repro/internal/bus"
	"repro/internal/core"
)

// WithholdingConfig parameterizes the strategic driver response of
// Schröder et al. (*Anomalous supply shortages from dynamic pricing in
// on-demand mobility*): each driver carries a personal surge threshold,
// and when the posted multiplier in their area is below it they may log
// off for a spell rather than accept low-priced work. The perverse
// macro effect the paper predicts — supply draining exactly while the
// price signal says it should grow — is what the audit harness probes
// for.
//
// The response runs in the serial spawn phase on a fixed cadence, and
// every draw is a pure hash of (seed, driver identity, decision time) —
// no RNG stream is consumed — so worlds stay bit-identical at any
// worker count and the engines that don't arm withholding are entirely
// unaffected.
type WithholdingConfig struct {
	// MinThreshold..MaxThreshold is the range of personal surge
	// thresholds; each driver's own threshold is a deterministic hash of
	// their identity. A driver considers withholding only while the
	// posted multiplier in their area is below their threshold.
	MinThreshold float64
	MaxThreshold float64
	// Prob is the per-decision chance a tempted driver actually logs off.
	Prob float64
	// Duration is how long a withholding driver stays offline, seconds.
	Duration int64
	// Period is the decision cadence in seconds; drivers re-evaluate when
	// now is a multiple of it.
	Period int64
}

// DefaultWithholding returns the Schröder et al.-flavored defaults: a
// fifth of tempted drivers sit out 15 minutes whenever the posted
// multiplier sits below their personal threshold (spread over 1.0–1.4),
// re-evaluating on the surge engine's own 5-minute cadence.
func DefaultWithholding() WithholdingConfig {
	return WithholdingConfig{
		MinThreshold: 1.0,
		MaxThreshold: 1.4,
		Prob:         0.2,
		Duration:     900,
		Period:       300,
	}
}

// Armed reports whether the config actually triggers withholding.
func (c WithholdingConfig) Armed() bool {
	return c.Prob > 0 && c.Period > 0 && c.Duration > 0 && c.MaxThreshold > c.MinThreshold
}

// SetWithholding arms (or, with a zero config, disarms) the strategic
// withholding response; a withholding-style pricing engine installs it.
func (w *World) SetWithholding(cfg WithholdingConfig) {
	w.withhold = cfg
}

// Withholding returns the armed withholding config (zero when disarmed).
func (w *World) Withholding() WithholdingConfig { return w.withhold }

// hashUnit maps (seed, id, t) to a uniform float64 in [0, 1) through the
// splitmix64 finalizer — the sim's standard stateless stream.
func hashUnit(seed int64, id int64, t int64) float64 {
	h := mix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(id))
	h = mix64(h ^ uint64(t))
	return float64(h>>11) / float64(1<<53)
}

// withholdThreshold is the driver's personal surge threshold, a stable
// hash of their lifetime identity (survives re-logins, which recycle
// slots and session IDs but keep f.id).
func (w *World) withholdThreshold(id int64) float64 {
	c := w.withhold
	return c.MinThreshold + (c.MaxThreshold-c.MinThreshold)*hashUnit(w.cfg.Seed, id, 0)
}

// applyWithholding runs the strategic-idling decision pass: on each
// decision boundary, every idle surgeable driver whose area multiplier
// is below their personal threshold flips a deterministic coin and, on
// heads, logs off for cfg.Duration seconds through the same suspension
// machinery as ForceOffline. Serial phase only; slot order is
// deterministic, and no world RNG is consumed.
func (w *World) applyWithholding() {
	c := w.withhold
	if !c.Armed() || w.now%c.Period != 0 {
		return
	}
	f := &w.fleet
	for s := int32(0); int(s) < f.high; s++ {
		if !f.live[s] || DriverState(f.state[s]) != StateIdle {
			continue
		}
		vt := core.VehicleType(f.typ[s])
		if !vt.Surgeable() {
			continue
		}
		area := w.areaIndex.Find(f.pos[s])
		if area < 0 {
			continue
		}
		mult := w.surgeCache[area]
		if mult >= w.withholdThreshold(f.id[s]) {
			continue
		}
		if hashUnit(w.cfg.Seed, f.id[s], w.now) >= c.Prob {
			continue
		}
		w.suspended = append(w.suspended, suspendedDriver{
			vt: vt, pos: f.pos[s], returnAt: w.now + c.Duration,
		})
		w.emitSlot(bus.KindDriverSuspend, s, float64(c.Duration), vt.String())
		w.removeSlot(s)
		w.TotalSuspended++
		w.TotalWithheld++
	}
}
