// Event emission: the world narrates driver lifecycle and trip activity
// to an optional sink, which uberd connects to the event bus.
//
// Every emission point sits in a serial phase of Step (spawn/resume,
// the movement commit loop, dispatch), never inside a parallel shard —
// so the event stream is bit-for-bit identical for every worker count,
// the same invariant the world itself keeps. A nil sink costs one
// pointer check per would-be event.

package sim

import "repro/internal/bus"

// SetEventSink installs fn to receive world events. The callback runs
// synchronously inside Step on the caller's goroutine; a slow sink slows
// the simulation (which is the point — backpressure reaches the source).
// Pass nil to detach.
func (w *World) SetEventSink(fn func(bus.Event)) { w.events = fn }

func (w *World) emit(kind bus.Kind, key string, area int, num float64, str string) {
	if w.events == nil {
		return
	}
	w.events(bus.Event{
		Time: w.now,
		Kind: kind,
		Key:  key,
		Area: int32(area),
		Num:  num,
		Str:  str,
	})
}

// emitSlot tags a lifecycle event with the slot's session (the key
// preserves per-driver ordering through the bus) and current area.
func (w *World) emitSlot(kind bus.Kind, s int32, num float64, str string) {
	if w.events == nil {
		return
	}
	f := &w.fleet
	w.emit(kind, f.session[s], w.areaIndex.Find(f.pos[s]), num, str)
}
