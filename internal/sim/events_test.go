package sim

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
)

// TestEventStreamWorkerInvariant: the emitted event stream, like the
// world itself, must be bit-for-bit identical for every worker count —
// all emission points sit in serial phases.
func TestEventStreamWorkerInvariant(t *testing.T) {
	collect := func(workers int) []bus.Event {
		w := NewWorld(Config{Profile: Manhattan(), Seed: 11, Workers: workers})
		var evs []bus.Event
		w.SetEventSink(func(ev bus.Event) { evs = append(evs, ev) })
		w.Run(3 * 3600)
		// Exercise the suspend/resume paths too.
		w.ForceOffline(core.UberX, 0, 5, 600)
		w.Run(4 * 3600)
		return evs
	}
	one := collect(1)
	four := collect(4)
	if len(one) == 0 {
		t.Fatal("no events emitted over four simulated hours")
	}
	if len(one) != len(four) {
		t.Fatalf("event counts diverge by worker count: %d vs %d", len(one), len(four))
	}
	for i := range one {
		a, b := fmt.Sprintf("%+v", one[i]), fmt.Sprintf("%+v", four[i])
		if a != b {
			t.Fatalf("event %d diverges by worker count:\n  w1: %s\n  w4: %s", i, a, b)
		}
	}
	kinds := make(map[bus.Kind]int)
	for _, ev := range one {
		kinds[ev.Kind]++
	}
	for _, k := range []bus.Kind{
		bus.KindDriverSpawn, bus.KindDriverOffline, bus.KindDriverSuspend,
		bus.KindDriverResume, bus.KindTripDispatch, bus.KindTripComplete,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in four simulated hours", k)
		}
	}
}

// TestEventCountsMatchTotals: lifecycle events must agree with the
// world's ground-truth counters.
func TestEventCountsMatchTotals(t *testing.T) {
	w := NewWorld(Config{Profile: SanFrancisco(), Seed: 4})
	// The initial population spawns inside NewWorld, before any sink can
	// attach: count deltas from here.
	spawned0, offline0, pickups0 := w.TotalSpawned, w.TotalOffline, w.TotalPickups
	kinds := make(map[bus.Kind]int64)
	w.SetEventSink(func(ev bus.Event) { kinds[ev.Kind]++ })
	w.Run(2 * 3600)
	w.TotalSpawned -= spawned0
	w.TotalOffline -= offline0
	w.TotalPickups -= pickups0
	if got, want := kinds[bus.KindDriverSpawn], w.TotalSpawned; got != want {
		t.Errorf("spawn events %d, TotalSpawned %d", got, want)
	}
	if got, want := kinds[bus.KindDriverOffline], w.TotalOffline; got != want {
		t.Errorf("offline events %d, TotalOffline %d", got, want)
	}
	if got, want := kinds[bus.KindTripDispatch], w.TotalPickups; got != want {
		t.Errorf("dispatch events %d, TotalPickups %d", got, want)
	}
}

// BenchmarkStep measures one world tick at workers=1: bare, with a
// no-op sink, and publishing every event through a real broker — the
// acceptance bound is bus publishing within 10% of bare.
func BenchmarkStep(b *testing.B) {
	run := func(b *testing.B, sink func(*testing.B) func(bus.Event)) {
		w := NewWorld(Config{Profile: Manhattan(), Seed: 2, Workers: 1})
		if sink != nil {
			w.SetEventSink(sink(b))
		}
		w.Run(3600) // warm to steady-state population
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("noop-sink", func(b *testing.B) {
		run(b, func(b *testing.B) func(bus.Event) {
			return func(bus.Event) {}
		})
	})
	b.Run("bus-publish", func(b *testing.B) {
		run(b, func(b *testing.B) func(bus.Event) {
			br, err := bus.Open(b.TempDir(), bus.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { br.Close() })
			topic, err := br.Topic("sim.cars", 4)
			if err != nil {
				b.Fatal(err)
			}
			return func(ev bus.Event) {
				if err := topic.Publish(ev); err != nil {
					b.Errorf("publish: %v", err)
				}
			}
		})
	})
}
