package sim

import (
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/geo"
)

// The parallel spawn and dispatch phases.
//
// Both phases follow the same plan/commit split as movement: a parallel
// precompute builds per-item plans from per-(seed, tick, salt, index) RNG
// streams and read-only world state (the idle grids, the joinable-POOL
// index, the surge cache — none of which change during the precompute),
// then a serial commit applies the plans in item order. The commit is
// draw-free: every random number an item needs was drawn on its own
// stream up front, so results are bit-for-bit identical for every worker
// count.
//
// Dispatch has a subtlety movement doesn't: bookings interact. Request j
// may book the driver request i < j wanted. The precompute therefore
// over-collects — the nearest dispatchCandK candidates instead of the 1
// (or 4) the mechanism needs — and the commit filters each list down to
// candidates still idle. During dispatch the idle set only shrinks (no
// driver becomes idle mid-phase), so the still-idle prefix of a
// phase-start nearest list is exactly the live nearest list; only when a
// list is exhausted and didn't already cover the whole product
// (candAll/ewtAll) does the commit fall back to a live grid query.

// spawnBlock and dispatchBlock are the parallel-precompute batch sizes:
// per-tick item counts are in the hundreds, so blocks keep goroutine
// dispatch overhead amortized.
const (
	spawnBlock    = 16
	dispatchBlock = 16
)

// spawnPlan is one precomputed driver arrival.
type spawnPlan struct {
	pos          geo.Point
	cruiseTarget geo.Point
	session      string
	sessionSec   float64
	factor       float64
	cruiseDelta  int64
	vt           uint8
}

// spawnArrivals brings new drivers online at the Poisson rate that holds
// the population near its diurnal target, modulated by surge (supply
// elasticity, §5.5). The per-arrival draws run in parallel blocks; the
// serial commit allocates slots in arrival order.
func (w *World) spawnArrivals(dt float64) {
	p := w.profile
	target := float64(p.PeakDrivers) * p.SupplyDiurnal[HourOfDay(w.now)]
	rate := target / w.effSessionSec // arrivals per second
	// A profile without surge areas (taxi validation, custom rigs) has no
	// surge signal: treat it as a uniform 1.0 rather than dividing by
	// zero, which would turn the arrival rate into NaN and silently stop
	// all spawning.
	avgSurge := 1.0
	if len(w.areas) > 0 {
		avgSurge = 0.0
		for _, s := range w.surgeCache {
			avgSurge += s
		}
		avgSurge /= float64(len(w.areas))
	}
	rate *= 1 + p.SupplyBoost*(avgSurge-1)
	n := poisson(w.rng, rate*dt)
	if n == 0 {
		return
	}
	for len(w.spawnPlans) < n {
		w.spawnPlans = append(w.spawnPlans, spawnPlan{})
	}
	plans := w.spawnPlans[:n]
	blocks := (n + spawnBlock - 1) / spawnBlock
	if w.workers <= 1 || blocks <= 1 {
		for i := range plans {
			w.buildSpawnPlan(i, &plans[i])
		}
	} else {
		w.runShards(blocks, func(b int) {
			lo := b * spawnBlock
			hi := lo + spawnBlock
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				w.buildSpawnPlan(i, &plans[i])
			}
		})
	}
	f := &w.fleet
	for i := range plans {
		pl := &plans[i]
		s := f.alloc()
		f.id[s] = w.nextID
		w.nextID++
		f.session[s] = pl.session
		f.typ[s] = pl.vt
		f.pos[s] = pl.pos
		f.state[s] = uint8(StateIdle)
		f.pickup[s] = geo.Point{}
		f.dest[s] = geo.Point{}
		f.destDrop[s] = false
		f.stops[s] = nil
		f.poolRiders[s] = 0
		f.priceFactor[s] = pl.factor
		f.idleSince[s] = w.now
		f.earned[s] = 0
		f.offlineAt[s] = w.now + int64(pl.sessionSec)
		f.cruiseTarget[s] = pl.cruiseTarget
		f.cruiseUntil[s] = w.now + pl.cruiseDelta
		f.resetPath(s)
		f.resetRoute(s)
		w.grids[pl.vt].Insert(s, pl.pos)
		w.TotalSpawned++
		w.markChanged(s)
		w.emitSlot(bus.KindDriverSpawn, s, 0, core.VehicleType(pl.vt).String())
	}
}

// buildSpawnPlan draws arrival i's full logon state from its own stream.
func (w *World) buildSpawnPlan(i int, pl *spawnPlan) {
	rng := w.phaseRand(saltSpawn, i)
	vt := core.VehicleType(sampleShareRand(rng, w.fleetCDF))
	pos := w.samplePlaceRand(rng)
	// Driver flocking at spawn: pick the better of two candidate start
	// locations, weighting by area surge.
	alt := w.samplePlaceRand(rng)
	if w.surgeWeight(alt) > w.surgeWeight(pos) {
		pos = alt
	}
	pl.vt = uint8(vt)
	pl.pos = pos
	pl.session = newSessionID(rng)
	pl.factor = clampFactor(1 + 0.2*rng.NormFloat64())
	pl.sessionSec = w.sessionLengthRand(rng, vt)
	pl.cruiseTarget = w.samplePlaceRand(rng)
	pl.cruiseDelta = int64(120 + rng.Intn(600))
}

// dispatchCandK is how many phase-start nearest candidates each request
// precomputes; enough that the still-idle filter almost never needs the
// live-grid fallback (at most 4 are consumed per request, so ties with
// other same-tick requests must book >4 of them to exhaust the list).
const dispatchCandK = 8

type slotDist struct {
	slot int32
	dist float64
}

// subPlan is one precomputed passenger request (demand shocks multiply a
// request into several at the same pickup, hence "sub").
type subPlan struct {
	pickup   geo.Point
	dest     geo.Point
	poolDest geo.Point // second POOL drop-off, pre-drawn
	uElastic float64   // elasticity uniform, pre-drawn
	area     int32
	poolCand int32 // joinable POOL trip at phase start, -1 none
	vt       uint8
	candN    uint8
	ewtN     uint8
	candAll  bool // cand covers the product's whole idle set
	ewtAll   bool // ewt covers the whole UberX idle set
	cand     [dispatchCandK]slotDist
	ewt      [dispatchCandK]slotDist
}

// generateRequests spawns passenger demand at the current diurnal rate
// and dispatches each request: plan draws serially (cheap), candidate
// queries in parallel (the expensive part), bookings serially in request
// order.
func (w *World) generateRequests(dt float64) {
	p := w.profile
	curve := &p.DemandDiurnal
	if Weekend(w.now) {
		curve = &p.WeekendDemandDiurnal
	}
	rate := p.PeakRequestsPerHour / 3600 * curve[HourOfDay(w.now)]
	n := poisson(w.rng, rate*dt)
	if n == 0 {
		return
	}
	subs := w.subPlans[:0]
	for i := 0; i < n; i++ {
		rng := w.phaseRand(saltReq, i)
		pickup := w.samplePlaceRand(rng)
		area := w.areaIndex.Find(pickup)
		count := 1
		if area >= 0 {
			// A shock multiplies arrivals: each unit of factor above 1
			// adds an extra request at the same spot with the fractional
			// remainder drawn probabilistically.
			extra := w.shockFactor(area) - 1
			for extra > 0 {
				if extra >= 1 || rng.Float64() < extra {
					count++
				}
				extra--
			}
		}
		for k := 0; k < count; k++ {
			sp := subPlan{pickup: pickup, area: int32(area)}
			sp.vt = uint8(sampleShareRand(rng, w.demandCDF))
			sp.uElastic = rng.Float64()
			sp.dest = w.samplePlaceRand(rng)
			if core.VehicleType(sp.vt) == core.UberPOOL {
				sp.poolDest = w.samplePlaceRand(rng)
			}
			subs = append(subs, sp)
		}
	}
	w.subPlans = subs

	blocks := (len(subs) + dispatchBlock - 1) / dispatchBlock
	if w.workers <= 1 || blocks <= 1 {
		var buf []geo.SlotNeighbor
		for i := range subs {
			w.buildSubPlan(&subs[i], &buf)
		}
	} else {
		w.runShards(blocks, func(b int) {
			var buf []geo.SlotNeighbor
			lo := b * dispatchBlock
			hi := lo + dispatchBlock
			if hi > len(subs) {
				hi = len(subs)
			}
			for i := lo; i < hi; i++ {
				w.buildSubPlan(&subs[i], &buf)
			}
		})
	}
	for i := range subs {
		w.commitSub(&subs[i])
	}
}

// buildSubPlan runs the request's grid queries against phase-start state.
// Draw-free: safe to run on any worker in any order.
func (w *World) buildSubPlan(sub *subPlan, buf *[]geo.SlotNeighbor) {
	if sub.area >= 0 {
		g := w.grids[int(core.UberX)]
		sub.ewtAll = g.Len() <= dispatchCandK
		*buf = g.KNearestInto(sub.pickup, dispatchCandK, *buf)
		sub.ewtN = uint8(len(*buf))
		for i, nbr := range *buf {
			sub.ewt[i] = slotDist{slot: nbr.Slot, dist: nbr.Dist}
		}
	}
	vt := core.VehicleType(sub.vt)
	sub.poolCand = -1
	if vt == core.UberPOOL {
		sub.poolCand = w.poolGrid.FirstWithin(sub.pickup, poolMatchRadius)
	}
	g := w.grids[int(vt)]
	sub.candAll = g.Len() <= dispatchCandK
	*buf = g.KNearestInto(sub.pickup, dispatchCandK, *buf)
	sub.candN = uint8(len(*buf))
	for i, nbr := range *buf {
		sub.cand[i] = slotDist{slot: nbr.Slot, dist: nbr.Dist}
	}
}

// commitEWT resolves the request's sampled UberX wait against drivers
// booked by earlier requests this tick.
func (w *World) commitEWT(sub *subPlan) float64 {
	f := &w.fleet
	for i := 0; i < int(sub.ewtN); i++ {
		c := sub.ewt[i]
		if DriverState(f.state[c.slot]) == StateIdle {
			if w.road != nil {
				return w.roadEWTFrom(f.pos[c.slot], sub.pickup)
			}
			return ewtFromDist(c.dist, w.now)
		}
	}
	if !sub.ewtAll {
		w.knnBuf = w.grids[int(core.UberX)].KNearestInto(sub.pickup, 1, w.knnBuf)
		if len(w.knnBuf) > 0 {
			if w.road != nil {
				return w.roadEWTFrom(f.pos[w.knnBuf[0].Slot], sub.pickup)
			}
			return ewtFromDist(w.knnBuf[0].Dist, w.now)
		}
	}
	return maxEWTSeconds
}

// commitSub applies one planned request to the world, in request order.
func (w *World) commitSub(sub *subPlan) {
	f := &w.fleet
	vt := core.VehicleType(sub.vt)
	area := int(sub.area)
	pickup := sub.pickup
	if area >= 0 {
		st := &w.areaStats[area]
		st.LatentDemand++
		// The engine's EWT feature is demand-weighted: the wait a rider
		// at this pickup point would experience. (Sampling at area
		// centroids instead systematically inflates areas whose demand
		// clusters off-center.)
		st.EWTSum += w.commitEWT(sub)
		st.EWTN++
	}

	// UberPOOL first tries to share an in-progress POOL trip passing
	// nearby (§2: "Uber will assign multiple passengers to each
	// vehicle"); pool seats are cheap, so elasticity is skipped.
	if vt == core.UberPOOL && w.commitPoolJoin(sub) {
		return
	}

	// Select the driver and the price multiplier the passenger faces.
	slot := int32(-1)
	var price float64
	switch w.cfg.Pricing {
	case PricingDriverSet:
		// Sidecar-style market (§8): passengers see the nearby drivers'
		// self-set prices and take the cheapest. The still-idle prefix of
		// the phase-start list is the live 4-nearest; only an exhausted
		// list that didn't cover the product needs the live re-query.
		consider := func(cslot int32, dist float64) {
			if dist > dispatchRadius {
				return
			}
			if slot < 0 || f.priceFactor[cslot] < f.priceFactor[slot] {
				slot = cslot
			}
		}
		nv := 0
		for i := 0; i < int(sub.candN) && nv < 4; i++ {
			c := sub.cand[i]
			if DriverState(f.state[c.slot]) != StateIdle {
				continue
			}
			nv++
			consider(c.slot, c.dist)
		}
		if nv < 4 && !sub.candAll {
			slot = -1
			w.knnBuf = w.grids[int(vt)].KNearestInto(pickup, 4, w.knnBuf)
			for _, nbr := range w.knnBuf {
				consider(nbr.Slot, nbr.Dist)
			}
		}
		if slot >= 0 {
			price = f.priceFactor[slot]
		}
	default:
		if w.road != nil {
			// Centralized dispatch on streets: re-rank the straight-line
			// top-k by congested road ETA (the radius cut stays
			// straight-line, so the candidate set matches the euclidean
			// mechanism's).
			if cand, ok := w.roadPickCandidate(sub); ok {
				slot = cand
			}
			price = 1
			if vt.Surgeable() {
				price = w.surgeWeight(pickup)
			}
			break
		}
		// Centralized dispatch: nearest idle car, if within range.
		found := false
		var fslot int32
		var fdist float64
		for i := 0; i < int(sub.candN); i++ {
			c := sub.cand[i]
			if DriverState(f.state[c.slot]) == StateIdle {
				found, fslot, fdist = true, c.slot, c.dist
				break
			}
		}
		if !found && !sub.candAll {
			w.knnBuf = w.grids[int(vt)].KNearestInto(pickup, 1, w.knnBuf)
			if len(w.knnBuf) > 0 {
				found, fslot, fdist = true, w.knnBuf[0].Slot, w.knnBuf[0].Dist
			}
		}
		if found && fdist <= dispatchRadius {
			slot = fslot
		}
		price = 1
		if vt.Surgeable() {
			price = w.surgeWeight(pickup)
		}
	}

	// Price elasticity: high prices scare some passengers off entirely
	// (§5.5's large negative demand effect). Applies to either market.
	if vt.Surgeable() && price > 1 {
		dropP := w.profile.Elasticity * (price - 1)
		if dropP > 0.95 {
			dropP = 0.95
		}
		if sub.uElastic < dropP {
			w.TotalPricedOut++
			if area >= 0 {
				w.areaStats[area].PricedOut++
			}
			return
		}
	}

	if slot < 0 {
		w.TotalUnmet++
		if area >= 0 {
			w.areaStats[area].Unfulfilled++
		}
		return
	}

	// Book the driver: the car disappears from the map.
	if w.cfg.Pricing == PricingDriverSet && w.now-f.idleSince[slot] < 300 {
		// Booked within 5 minutes of becoming available: demand is hot,
		// raise the asking price (win-stay).
		f.priceFactor[slot] = clampFactor(f.priceFactor[slot] + 0.1)
	}
	f.state[slot] = uint8(StateEnRoute)
	f.pickup[slot] = pickup
	f.dest[slot] = sub.dest
	f.destDrop[slot] = true
	f.stops[slot] = nil
	f.poolRiders[slot] = 1
	w.grids[f.typ[slot]].Remove(slot)
	w.markChanged(slot)
	w.TotalPickups++
	w.priceSum += price
	w.priceSumSq += price * price
	w.priceN++
	w.settleFare(slot, pickup, sub.dest, price, area, w.cfg.Pricing != PricingDriverSet && vt.Surgeable())
	if area >= 0 {
		w.areaStats[area].Pickups++
	}
	w.emit(bus.KindTripDispatch, f.session[slot], area, price, vt.String())
}

// poolMatchRadius is how close an in-progress POOL trip must pass for a
// new rider to share it.
const poolMatchRadius = 800.0

// joinableSlot reports whether the slot is a single-rider POOL trip a new
// rider could still join.
func (w *World) joinableSlot(s int32) bool {
	f := &w.fleet
	return f.live[s] && core.VehicleType(f.typ[s]) == core.UberPOOL &&
		DriverState(f.state[s]) == StateOnTrip && f.poolRiders[s] == 1 &&
		len(f.stops[s]) == 0 && f.destDrop[s]
}

// commitPoolJoin resolves a request's precomputed join candidate: if an
// earlier request this tick took it, re-probe the live index (the
// joinable set only shrinks during dispatch, so the live minimum-slot
// probe is exact).
func (w *World) commitPoolJoin(sub *subPlan) bool {
	cand := sub.poolCand
	if cand >= 0 && !w.joinableSlot(cand) {
		cand = w.poolGrid.FirstWithin(sub.pickup, poolMatchRadius)
	}
	if cand < 0 {
		return false
	}
	w.applyPoolJoin(cand, sub.pickup, sub.poolDest, int(sub.area))
	return true
}

// joinPool tries to add a rider to an existing single-rider POOL trip
// nearby, drawing the second drop-off from the world stream (the serial
// entry point tests and scenario tooling use; in-tick dispatch goes
// through commitPoolJoin with a pre-drawn drop-off).
func (w *World) joinPool(pickup geo.Point, area int) bool {
	cand := w.poolGrid.FirstWithin(pickup, poolMatchRadius)
	if cand < 0 {
		return false
	}
	w.applyPoolJoin(cand, pickup, w.samplePlace(), area)
	return true
}

// applyPoolJoin diverts the trip: the new rider is picked up first, then
// both drop-offs are served.
func (w *World) applyPoolJoin(s int32, pickup, joinDest geo.Point, area int) {
	f := &w.fleet
	f.stops[s] = []PoolStop{
		{Pos: f.dest[s], Drop: true},
		{Pos: joinDest, Drop: true},
	}
	f.dest[s] = pickup
	f.destDrop[s] = false
	f.poolRiders[s] = 2
	w.poolGrid.Remove(s)
	w.TotalPickups++
	w.TotalPoolJoins++
	w.priceSum++ // pool seats ride at multiplier 1
	w.priceSumSq++
	w.priceN++
	w.settleFare(s, pickup, joinDest, 1, area, false)
	if area >= 0 {
		w.areaStats[area].Pickups++
	}
	w.emit(bus.KindTripDispatch, f.session[s], area, 1, "POOL/join")
}
