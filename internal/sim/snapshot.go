package sim

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
)

// Snapshot is an immutable view of the world at the end of one tick,
// built by Step's caller and published to the query path. Queries served
// from a snapshot (pingClient, estimates) never touch the live world, so
// they run lock-free and at most one tick stale — the same staleness the
// paper already measures, since surge data is interval-quantized anyway.
//
// A snapshot freezes exactly what the read endpoints consume:
//
//   - per-product idle-car views with the wire-format fields (session ID,
//     lat/lng position, projected path) precomputed once per tick instead
//     of once per ping;
//   - a compact CSR k-nearest index over those cars, answering the same
//     queries as the live geo.Grid with identical ordering;
//   - the rasterized area index and area polygons;
//   - the simulation clock and the service region.
//
// All methods are safe for unlimited concurrent use.
type Snapshot struct {
	// Now is the simulation time the snapshot was taken at.
	Now int64
	// Areas are the surge-area polygons (shared, immutable).
	Areas []geo.Polygon
	// Region is the serviced rectangle (requests outside it are rejected).
	Region geo.Rect
	// Proj converts between wire lat/lng and plane coordinates.
	Proj *geo.Projection

	areaIdx  *geo.AreaIndex
	products [core.NumVehicleTypes]productIndex
}

// snapCar is one idle car frozen into a snapshot: the precomputed wire
// view plus the plane position and stable driver ID the k-nearest search
// orders by (ties break by ID, matching geo.Grid.KNearest).
type snapCar struct {
	id   int64
	pos  geo.Point
	view core.CarView
}

// productIndex is a read-only uniform grid over one product's idle cars in
// CSR layout: order holds car indices grouped by cell, cellStart[c] ..
// cellStart[c+1] delimiting cell c's group. Same geometry as the live
// geo.Grid (same bounds and cell size) so ring-search behaviour matches.
type productIndex struct {
	cars      []snapCar
	bounds    geo.Rect
	cellSize  float64
	nx, ny    int
	cellStart []int32
	order     []int32
}

// Snapshot freezes the world's queryable state. It must be called from
// the same goroutine that steps the world (or under the caller's step
// lock); the returned snapshot itself is immutable.
//
// The build is phase-parallel like Step: shard workers project their own
// drivers' wire views into per-shard per-product lists, the lists are
// concatenated in shard order (preserving driver order, which the CSR
// index construction depends on for its deterministic layout), and the
// per-product indexes are built concurrently — each product's index is
// an independent write target.
func (w *World) Snapshot() *Snapshot {
	s := &Snapshot{
		Now:     w.now,
		Areas:   w.areas,
		Region:  w.profile.Region,
		Proj:    w.proj,
		areaIdx: w.areaIndex,
	}
	n := len(w.drivers)
	shards := numShards(n)
	parts := make([][core.NumVehicleTypes][]snapCar, shards)
	w.runShards(shards, func(sh int) {
		lo, hi := shardBounds(sh, n)
		for _, d := range w.drivers[lo:hi] {
			if d.State != StateIdle {
				continue
			}
			pts := d.PathPoints()
			path := make([]geo.LatLng, len(pts))
			for i, p := range pts {
				path[i] = w.proj.ToLatLng(p)
			}
			parts[sh][int(d.Type)] = append(parts[sh][int(d.Type)], snapCar{
				id:  d.ID,
				pos: d.Pos,
				view: core.CarView{
					ID:   d.Session,
					Pos:  w.proj.ToLatLng(d.Pos),
					Path: path,
				},
			})
		}
	})
	var lists [core.NumVehicleTypes][]snapCar
	for vt := range lists {
		total := 0
		for sh := range parts {
			total += len(parts[sh][vt])
		}
		if total == 0 {
			continue
		}
		list := make([]snapCar, 0, total)
		for sh := range parts {
			list = append(list, parts[sh][vt]...)
		}
		lists[vt] = list
	}
	w.runShards(len(s.products), func(vt int) {
		s.products[vt] = buildProductIndex(lists[vt], w.profile.Region, gridCellMeters)
	})
	return s
}

// AreaOf returns the surge area containing the plane point, or -1;
// identical to the brute-force AreaOf scan.
func (s *Snapshot) AreaOf(p geo.Point) int { return s.areaIdx.Find(p) }

// IdleCars returns the number of visible (idle) cars of the product.
func (s *Snapshot) IdleCars(vt core.VehicleType) int {
	return len(s.products[int(vt)].cars)
}

// EWT returns the estimated wait time in seconds for a product at a
// location, computed exactly as World.EWT does: dispatch overhead plus
// the street-grid travel time of the nearest idle car, capped at the
// paper's observed 43-minute maximum.
func (s *Snapshot) EWT(vt core.VehicleType, pos geo.Point) float64 {
	near := s.products[int(vt)].kNearest(pos, 1)
	if len(near) == 0 {
		return maxEWTSeconds
	}
	t := dispatchOverhead + near[0].dist*manhattanFactor/StreetSpeed(s.Now)
	if t > maxEWTSeconds {
		t = maxEWTSeconds
	}
	return t
}

// NearestCars returns up to k idle cars of the product nearest to pos as
// wire-format views, ordered by ascending distance with ties broken by
// driver ID — the same cars in the same order World.NearestCars returns.
// The returned slice is fresh; the Path slices are shared with the
// snapshot and must be treated as read-only.
func (s *Snapshot) NearestCars(vt core.VehicleType, pos geo.Point, k int) []core.CarView {
	pi := &s.products[int(vt)]
	near := pi.kNearest(pos, k)
	out := make([]core.CarView, 0, len(near))
	for _, n := range near {
		out = append(out, pi.cars[n.idx].view)
	}
	return out
}

// gridCellMeters is the uniform cell edge shared by the live geo.Grid
// and the snapshot index.
const gridCellMeters = 250.0

func buildProductIndex(cars []snapCar, bounds geo.Rect, cellSize float64) productIndex {
	nx := int(math.Ceil(bounds.Width()/cellSize)) + 1
	ny := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	pi := productIndex{
		cars:      cars,
		bounds:    bounds,
		cellSize:  cellSize,
		nx:        nx,
		ny:        ny,
		cellStart: make([]int32, nx*ny+1),
		order:     make([]int32, len(cars)),
	}
	cellOf := make([]int32, len(cars))
	for i := range cars {
		ci := int32(pi.cellIndex(cars[i].pos))
		cellOf[i] = ci
		pi.cellStart[ci+1]++
	}
	for c := 1; c < len(pi.cellStart); c++ {
		pi.cellStart[c] += pi.cellStart[c-1]
	}
	cursor := make([]int32, nx*ny)
	copy(cursor, pi.cellStart[:nx*ny])
	for i := range cars {
		ci := cellOf[i]
		pi.order[cursor[ci]] = int32(i)
		cursor[ci]++
	}
	return pi
}

func (pi *productIndex) cellIndex(p geo.Point) int {
	cx := int((p.X - pi.bounds.Min.X) / pi.cellSize)
	cy := int((p.Y - pi.bounds.Min.Y) / pi.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= pi.nx {
		cx = pi.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= pi.ny {
		cy = pi.ny - 1
	}
	return cy*pi.nx + cx
}

// snapNeighbor is one k-nearest result: the car's index in pi.cars and
// its distance from the query point.
type snapNeighbor struct {
	idx  int32
	id   int64
	dist float64
}

// kNearest mirrors geo.Grid.KNearest on the frozen CSR layout: expanding
// ring search, stopping once the nearest unexplored cell cannot hold a
// closer car, results sorted by (distance, driver ID).
func (pi *productIndex) kNearest(from geo.Point, k int) []snapNeighbor {
	if k <= 0 || len(pi.cars) == 0 {
		return nil
	}
	cx := int((from.X - pi.bounds.Min.X) / pi.cellSize)
	cy := int((from.Y - pi.bounds.Min.Y) / pi.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= pi.nx {
		cx = pi.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= pi.ny {
		cy = pi.ny - 1
	}

	var found []snapNeighbor
	less := func(i, j int) bool {
		if found[i].dist != found[j].dist {
			return found[i].dist < found[j].dist
		}
		return found[i].id < found[j].id
	}
	maxRing := pi.nx
	if pi.ny > maxRing {
		maxRing = pi.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if len(found) >= k {
			minPossible := float64(ring-1) * pi.cellSize
			sort.Slice(found, less)
			if found[k-1].dist <= minPossible {
				break
			}
		}
		added := false
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if absInt(dx) != ring && absInt(dy) != ring {
					continue // interior already scanned in earlier rings
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= pi.nx || y < 0 || y >= pi.ny {
					continue
				}
				added = true
				c := y*pi.nx + x
				for _, ci := range pi.order[pi.cellStart[c]:pi.cellStart[c+1]] {
					car := &pi.cars[ci]
					found = append(found, snapNeighbor{
						idx:  ci,
						id:   car.id,
						dist: geo.Dist(from, car.pos),
					})
				}
			}
		}
		if !added && ring > 0 && len(found) >= k {
			break
		}
	}
	sort.Slice(found, less)
	if len(found) > k {
		found = found[:k]
	}
	return found
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
