package sim

import (
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/road"
)

// Snapshot is an immutable view of the world at the end of one tick,
// built by Step's caller and published to the query path. Queries served
// from a snapshot (pingClient, estimates) never touch the live world, so
// they run lock-free and at most one tick stale — the same staleness the
// paper already measures, since surge data is interval-quantized anyway.
//
// A snapshot freezes exactly what the read endpoints consume:
//
//   - per-product idle-car views with the wire-format fields (session ID,
//     lat/lng position, projected path) precomputed once per tick instead
//     of once per ping;
//   - a per-product uniform-grid k-nearest index over those cars,
//     answering the same queries as the live geo.SlotGrid with identical
//     ordering;
//   - the rasterized area index and area polygons;
//   - the simulation clock and the service region.
//
// Snapshots are built incrementally (see snapBuilder below): consecutive
// snapshots share every grid cell no car moved through, and every frozen
// car view whose wire content didn't change. All methods are safe for
// unlimited concurrent use.
type Snapshot struct {
	// Now is the simulation time the snapshot was taken at.
	Now int64
	// Areas are the surge-area polygons (shared, immutable).
	Areas []geo.Polygon
	// Region is the serviced rectangle (requests outside it are rejected).
	Region geo.Rect
	// Proj converts between wire lat/lng and plane coordinates.
	Proj *geo.Projection

	areaIdx  *geo.AreaIndex
	products [core.NumVehicleTypes]productCells

	// road freezes the street network's congestion for road-mode worlds:
	// the graph is immutable and shared, the factor table is a per-tick
	// clone, so EWT and trip estimates served from the snapshot are
	// unaffected by later congestion commits. Nil on euclidean worlds.
	road *snapRoad
}

// snapRoad is the frozen road view of one snapshot.
type snapRoad struct {
	g       *road.Graph
	factors []float64
}

// snapCar is one idle car frozen into a snapshot: the precomputed wire
// view plus the plane position and slot the k-nearest search orders by
// (ties break by ascending slot, matching geo.SlotGrid.KNearest).
type snapCar struct {
	slot int32
	pos  geo.Point
	view core.CarView
}

// productCells is a read-only uniform grid over one product's idle cars:
// cells[c] lists the cars in cell c. The geometry matches the live
// geo.SlotGrid (same bounds, cell size, and clamping) so ring-search
// behaviour matches. Cell slices are immutable once published — the
// incremental builder copies a cell before changing it — so consecutive
// snapshots share the cells churn didn't touch.
type productCells struct {
	bounds   geo.Rect
	cellSize float64
	nx, ny   int
	count    int
	cells    [][]snapCar
}

// AreaOf returns the surge area containing the plane point, or -1;
// identical to the brute-force AreaOf scan.
func (s *Snapshot) AreaOf(p geo.Point) int { return s.areaIdx.Find(p) }

// IdleCars returns the number of visible (idle) cars of the product.
func (s *Snapshot) IdleCars(vt core.VehicleType) int {
	return s.products[int(vt)].count
}

// EWT returns the estimated wait time in seconds for a product at a
// location, computed exactly as World.EWT does: dispatch overhead plus
// the street-grid travel time of the nearest idle car, capped at the
// paper's observed 43-minute maximum.
func (s *Snapshot) EWT(vt core.VehicleType, pos geo.Point) float64 {
	var buf [1]snapNeighbor
	near := s.products[int(vt)].kNearest(pos, 1, buf[:0])
	if len(near) == 0 {
		return maxEWTSeconds
	}
	if s.road != nil {
		rt := s.road.g.AcquireRouter()
		t := roadEWT(s.road.g, rt, s.road.factors, near[0].car.pos, pos)
		s.road.g.ReleaseRouter(rt)
		return t
	}
	return ewtFromDist(near[0].dist, s.Now)
}

// TripEstimate returns the estimated street distance (meters) and
// duration (seconds, excluding boarding time) of a pickup→dest trip as
// the snapshot saw it: the congested road route on road-mode worlds, the
// straight line with the Manhattan detour factor otherwise. Lock-free
// and safe for unlimited concurrent use, like every snapshot query.
func (s *Snapshot) TripEstimate(pickup, dest geo.Point) (meters, seconds float64) {
	if s.road != nil {
		rt := s.road.g.AcquireRouter()
		meters, seconds = roadTripEstimate(s.road.g, rt, s.road.factors, pickup, dest)
		s.road.g.ReleaseRouter(rt)
		return meters, seconds
	}
	meters = geo.Dist(pickup, dest) * manhattanFactor
	return meters, meters / StreetSpeed(s.Now)
}

// NearestCars returns up to k idle cars of the product nearest to pos as
// wire-format views, ordered by ascending distance with ties broken by
// slot — the same cars in the same order World.NearestCars returns. The
// returned slice is fresh; the Path slices are shared with the snapshot
// and must be treated as read-only.
func (s *Snapshot) NearestCars(vt core.VehicleType, pos geo.Point, k int) []core.CarView {
	near := s.products[int(vt)].kNearest(pos, k, nil)
	out := make([]core.CarView, 0, len(near))
	for _, n := range near {
		out = append(out, n.car.view)
	}
	return out
}

// gridCellMeters is the uniform cell edge shared by the live geo.SlotGrid
// and the snapshot index.
const gridCellMeters = 250.0

// snapNeighbor is one k-nearest result.
type snapNeighbor struct {
	car  *snapCar
	dist float64
}

func (pc *productCells) cellIndex(p geo.Point) int {
	cx := int((p.X - pc.bounds.Min.X) / pc.cellSize)
	cy := int((p.Y - pc.bounds.Min.Y) / pc.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= pc.nx {
		cx = pc.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= pc.ny {
		cy = pc.ny - 1
	}
	return cy*pc.nx + cx
}

// kNearest mirrors geo.SlotGrid.KNearestInto on the frozen cells:
// expanding ring search with a bounded sorted top-k, stopping once the
// nearest unexplored ring cannot hold a closer car, results ordered by
// (distance, slot). Identical geometry, iteration, and comparator mean
// identical results to the live index over the same car set.
func (pc *productCells) kNearest(from geo.Point, k int, buf []snapNeighbor) []snapNeighbor {
	buf = buf[:0]
	if k <= 0 || pc.count == 0 {
		return buf
	}
	cx := int((from.X - pc.bounds.Min.X) / pc.cellSize)
	cy := int((from.Y - pc.bounds.Min.Y) / pc.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= pc.nx {
		cx = pc.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= pc.ny {
		cy = pc.ny - 1
	}
	maxRing := pc.nx
	if pc.ny > maxRing {
		maxRing = pc.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if len(buf) >= k {
			if buf[k-1].dist <= float64(ring-1)*pc.cellSize {
				break
			}
		}
		added := false
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if absInt(dx) != ring && absInt(dy) != ring {
					continue // interior already scanned in earlier rings
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= pc.nx || y < 0 || y >= pc.ny {
					continue
				}
				added = true
				cell := pc.cells[y*pc.nx+x]
				for i := range cell {
					car := &cell[i]
					buf = insertSnapNeighbor(buf, k, snapNeighbor{
						car: car, dist: geo.Dist(from, car.pos),
					})
				}
			}
		}
		if !added && ring > 0 && len(buf) >= k {
			break
		}
	}
	return buf
}

// insertSnapNeighbor inserts nb into buf, kept sorted by (dist, slot) and
// capped at k entries — the same bounded insertion geo.insertNeighbor
// performs.
func insertSnapNeighbor(buf []snapNeighbor, k int, nb snapNeighbor) []snapNeighbor {
	if len(buf) == k {
		last := buf[k-1]
		if nb.dist > last.dist || (nb.dist == last.dist && nb.car.slot >= last.car.slot) {
			return buf
		}
		buf = buf[:k-1]
	}
	i := len(buf)
	buf = append(buf, nb)
	for i > 0 {
		p := buf[i-1]
		if p.dist < nb.dist || (p.dist == nb.dist && p.car.slot < nb.car.slot) {
			break
		}
		buf[i] = p
		i--
	}
	buf[i] = nb
	return buf
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// touchedCell names one (product, cell) pair a build must re-materialize.
type touchedCell struct {
	cell int32
	vt   uint8
}

// snapBuilder is the world's incremental snapshot state. The sim phases
// mark slots whose snapshot-observable state changed (position, path
// ring, idle membership) via markChanged; the next Snapshot() call
// re-encodes only the marked cars and rebuilds only the grid cells they
// left or entered, reusing every other cell slice — and every other
// frozen car view — from the previous snapshot by structural sharing.
//
// The builder stays dormant (and markChanged free) until the first
// Snapshot() call, so worlds that never snapshot — batch experiments,
// benchmarks — pay nothing.
type snapBuilder struct {
	inited bool
	// queued is the dirty-slot list, deduplicated by qflag.
	queued []int32
	qflag  []bool
	// prod/cell record each slot's membership in the last published
	// snapshot: prod -1 means invisible (busy or offline).
	prod []int8
	cell []int32
	// cells/counts are the last published per-product state; a build
	// clones a product's top-level slice before changing any entry.
	cells  [core.NumVehicleTypes][][]snapCar
	counts [core.NumVehicleTypes]int
	// Per-build scratch: touchStamp/touchIdx map (product, cell) to this
	// build's touched-list entry; seq distinguishes builds so the maps
	// never need clearing.
	touchStamp [core.NumVehicleTypes][]int32
	touchIdx   [core.NumVehicleTypes][]int32
	seq        int32
	touched    []touchedCell
	addLists   [][]int32
	last       *Snapshot
}

// markChanged queues a slot for re-encoding in the next snapshot build.
// Serial-phase only (the parallel move shards queue into their shardOps
// and the commit loop forwards here).
func (w *World) markChanged(s int32) {
	b := &w.snap
	if !b.inited {
		return
	}
	for int32(len(b.qflag)) <= s {
		b.qflag = append(b.qflag, false)
		b.prod = append(b.prod, -1)
		b.cell = append(b.cell, -1)
	}
	if !b.qflag[s] {
		b.qflag[s] = true
		b.queued = append(b.queued, s)
	}
}

// initSnapBuilder allocates the builder's geometry and queues the whole
// live fleet as the first delta.
func (w *World) initSnapBuilder() {
	b := &w.snap
	nx, ny := w.grids[0].Nx(), w.grids[0].Ny()
	for vt := range b.cells {
		b.cells[vt] = make([][]snapCar, nx*ny)
		b.touchStamp[vt] = make([]int32, nx*ny)
		b.touchIdx[vt] = make([]int32, nx*ny)
	}
	b.inited = true
	f := &w.fleet
	for s := int32(0); int(s) < f.high; s++ {
		if f.live[s] {
			w.markChanged(s)
		}
	}
}

// touch registers a (product, cell) pair for rebuild and returns its
// add-list.
func (b *snapBuilder) touch(vt uint8, cell int32) int {
	if b.touchStamp[vt][cell] == b.seq {
		return int(b.touchIdx[vt][cell])
	}
	b.touchStamp[vt][cell] = b.seq
	idx := len(b.touched)
	b.touchIdx[vt][cell] = int32(idx)
	b.touched = append(b.touched, touchedCell{cell: cell, vt: vt})
	if len(b.addLists) <= idx {
		b.addLists = append(b.addLists, nil)
	}
	b.addLists[idx] = b.addLists[idx][:0]
	return idx
}

// Snapshot freezes the world's queryable state. It must be called from
// the same goroutine that steps the world (or under the caller's step
// lock); the returned snapshot itself is immutable.
//
// The build is incremental: cost is proportional to the tick's churn
// (cars that moved, changed visibility, or extended their path ring),
// not to the fleet size. With no churn since the last call, the previous
// snapshot is returned as-is.
func (w *World) Snapshot() *Snapshot {
	b := &w.snap
	if !b.inited {
		w.initSnapBuilder()
	}
	if len(b.queued) == 0 && b.last != nil && b.last.Now == w.now {
		return b.last
	}
	f := &w.fleet
	nx, ny := w.grids[0].Nx(), w.grids[0].Ny()
	geom := productCells{
		bounds: w.profile.Region, cellSize: gridCellMeters, nx: nx, ny: ny,
	}
	b.seq++
	b.touched = b.touched[:0]

	// Classify every dirty slot: where was it in the last snapshot, where
	// does it belong now. Touch the cells on both ends and tally the path
	// points the re-encodes will need.
	var productTouched [core.NumVehicleTypes]bool
	pathPts := 0
	for _, s := range b.queued {
		oldP, oldC := b.prod[s], b.cell[s]
		newP, newC := int8(-1), int32(-1)
		if f.live[s] && DriverState(f.state[s]) == StateIdle {
			newP = int8(f.typ[s])
			newC = int32(geom.cellIndex(f.pos[s]))
		}
		if oldP < 0 && newP < 0 {
			continue
		}
		if oldP >= 0 {
			b.touch(uint8(oldP), oldC)
			productTouched[oldP] = true
			b.counts[oldP]--
		}
		if newP >= 0 {
			idx := b.touch(uint8(newP), newC)
			b.addLists[idx] = append(b.addLists[idx], s)
			productTouched[newP] = true
			b.counts[newP]++
			pathPts += int(f.pathN[s])
		}
		b.prod[s], b.cell[s] = newP, newC
	}

	// Clone the top-level cell table of every touched product so the
	// previously published snapshots stay immutable.
	for vt := range productTouched {
		if !productTouched[vt] {
			continue
		}
		clone := make([][]snapCar, len(b.cells[vt]))
		copy(clone, b.cells[vt])
		b.cells[vt] = clone
	}

	// Rebuild each touched cell: keep the still-valid frozen entries
	// (slots not queued), then append fresh encodings of the cell's
	// incoming cars. Path slices for all re-encodes share one arena.
	arena := make([]geo.LatLng, 0, pathPts)
	var pts []geo.Point
	for ti, tc := range b.touched {
		old := b.cells[tc.vt][tc.cell]
		adds := b.addLists[ti]
		n := len(adds)
		for i := range old {
			if !b.qflag[old[i].slot] {
				n++
			}
		}
		var fresh []snapCar
		if n > 0 {
			fresh = make([]snapCar, 0, n)
			for i := range old {
				if !b.qflag[old[i].slot] {
					fresh = append(fresh, old[i])
				}
			}
			for _, s := range adds {
				pts = f.pathPoints(s, pts[:0])
				start := len(arena)
				for _, p := range pts {
					arena = append(arena, w.proj.ToLatLng(p))
				}
				path := arena[start:len(arena):len(arena)]
				fresh = append(fresh, snapCar{
					slot: s,
					pos:  f.pos[s],
					view: core.CarView{
						ID:   f.session[s],
						Pos:  w.proj.ToLatLng(f.pos[s]),
						Path: path,
					},
				})
			}
		}
		b.cells[tc.vt][tc.cell] = fresh
	}

	for _, s := range b.queued {
		b.qflag[s] = false
	}
	b.queued = b.queued[:0]

	snap := &Snapshot{
		Now:     w.now,
		Areas:   w.areas,
		Region:  w.profile.Region,
		Proj:    w.proj,
		areaIdx: w.areaIndex,
	}
	if w.road != nil {
		// Fresh clone per snapshot: published snapshots stay immutable
		// across later congestion commits.
		snap.road = &snapRoad{g: w.road.Graph, factors: w.road.Cong.CloneFactors(nil)}
	}
	for vt := range snap.products {
		pc := geom
		pc.count = b.counts[vt]
		pc.cells = b.cells[vt]
		snap.products[vt] = pc
	}
	b.last = snap
	return snap
}
