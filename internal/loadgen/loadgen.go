// Package loadgen is a closed-loop load generator for the emulated Uber
// backend: N concurrent synthetic clients register, then hammer
// pingClient and the estimates endpoints, recording every request into
// obs histograms. It is the measurement harness future performance PRs
// use to justify themselves — cmd/loadgen is its CLI, and the smoke test
// drives it against an httptest.Server.
package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/geo"
	"repro/internal/obs"
)

// Config parameterizes a run.
type Config struct {
	// BaseURL is the backend to hit, e.g. "http://localhost:8080".
	BaseURL string
	// Clients is the number of concurrent synthetic clients (default 4).
	Clients int
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Rate is the per-client target request rate in req/s. 0 means pure
	// closed-loop: each client issues its next request as soon as the
	// previous response lands.
	Rate float64
	// PingWeight/PriceWeight/TimeWeight set the request mix (default
	// 8:1:1 — the app pings every 5 s, estimates are occasional).
	PingWeight, PriceWeight, TimeWeight int
	// Loc is the queried location; must be inside the service region.
	Loc geo.LatLng
	// Cities, when non-empty, runs the fleet in multi-city gateway mode:
	// clients are assigned round-robin over the city names (sorted, so the
	// assignment is deterministic) and each queries its city's location
	// instead of Loc. The report then carries per-city counters — the
	// chaos-smoke gate reads them to check that killing one city's shard
	// left the other city's error rate untouched.
	Cities map[string]geo.LatLng
	// Registry receives the run's metrics; a private one is created when
	// nil. Passing a shared registry lets a caller merge loadgen series
	// with its own /metrics exposition.
	Registry *obs.Registry
	// HTTPClient overrides the transport (httptest servers pass theirs).
	HTTPClient *http.Client
	// NoRetry disables the client's retry/backoff and circuit breaker:
	// every request is a single attempt, so the report shows raw fault
	// rates instead of what the resilience layer absorbs.
	NoRetry bool
}

func (c *Config) defaults() {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.PingWeight <= 0 && c.PriceWeight <= 0 && c.TimeWeight <= 0 {
		c.PingWeight, c.PriceWeight, c.TimeWeight = 8, 1, 1
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// EndpointStats summarizes one endpoint's results. Latencies are in
// seconds; the JSON field names carry the unit so machine consumers don't
// have to guess.
type EndpointStats struct {
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`       // transport failures and unexpected statuses
	RateLimited int64   `json:"rate_limited"` // 429s (expected once an account burns its budget)
	Mean        float64 `json:"mean_seconds"`
	P50         float64 `json:"p50_seconds"`
	P95         float64 `json:"p95_seconds"`
	P99         float64 `json:"p99_seconds"`
}

// CityStats summarizes one city's share of a multi-city run.
type CityStats struct {
	Clients     int   `json:"clients"`
	Requests    int64 `json:"requests"`
	Errors      int64 `json:"errors"`
	RateLimited int64 `json:"rate_limited"`
}

// Report is the outcome of a run.
type Report struct {
	Elapsed     time.Duration            `json:"-"`
	ElapsedSecs float64                  `json:"elapsed_seconds"`
	Requests    int64                    `json:"requests"`
	Errors      int64                    `json:"errors"`
	RateLimited int64                    `json:"rate_limited"`
	// Retries counts attempts beyond each request's first; GiveUps the
	// requests that failed after every attempt; BreakerOpens circuit
	// transitions into open. Nonzero retries with zero errors means the
	// resilience layer absorbed every injected fault.
	Retries      int64                    `json:"retries"`
	GiveUps      int64                    `json:"give_ups"`
	BreakerOpens int64                    `json:"breaker_opens"`
	RPS          float64                  `json:"req_per_sec"`
	Endpoints    map[string]EndpointStats `json:"endpoints"`
	// Cities is present only in multi-city mode (Config.Cities non-empty).
	Cities map[string]CityStats `json:"cities,omitempty"`
}

// JSON renders the report as one machine-readable JSON object, the format
// perf-trajectory tooling diffs across PRs.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the report as the table cmd/loadgen prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests in %.2fs (%.1f req/s), %d errors, %d rate-limited, %d retries (%d give-ups, %d breaker-opens)\n",
		r.Requests, r.Elapsed.Seconds(), r.RPS, r.Errors, r.RateLimited,
		r.Retries, r.GiveUps, r.BreakerOpens)
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-18s %10s %8s %8s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "429s", "mean", "p50", "p95", "p99")
	for _, name := range names {
		e := r.Endpoints[name]
		fmt.Fprintf(&b, "%-18s %10d %8d %8d %10s %10s %10s %10s\n",
			name, e.Requests, e.Errors, e.RateLimited,
			fmtLatency(e.Mean), fmtLatency(e.P50), fmtLatency(e.P95), fmtLatency(e.P99))
	}
	if len(r.Cities) > 0 {
		cities := make([]string, 0, len(r.Cities))
		for name := range r.Cities {
			cities = append(cities, name)
		}
		sort.Strings(cities)
		fmt.Fprintf(&b, "%-18s %8s %10s %8s %8s\n", "city", "clients", "requests", "errors", "429s")
		for _, name := range cities {
			c := r.Cities[name]
			fmt.Fprintf(&b, "%-18s %8d %10d %8d %8d\n",
				name, c.Clients, c.Requests, c.Errors, c.RateLimited)
		}
	}
	return b.String()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func fmtLatency(seconds float64) string {
	switch {
	case seconds <= 0:
		return "-"
	case seconds < 0.001:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.2fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

// endpoints in mix order; weights resolved per config.
var endpointNames = [3]string{"/pingClient", "/estimates/price", "/estimates/time"}

// Run registers cfg.Clients accounts and generates load until
// cfg.Duration elapses, then reports throughput and per-endpoint latency
// percentiles computed from the run's obs histograms.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	ropts := []api.RemoteOption{
		api.WithRegistry(cfg.Registry),
		// The generator's job is to keep load flowing through injected
		// faults, so it retries harder than the default client policy: at
		// the chaos-smoke fault rates (~12% per attempt) 8 attempts put
		// the per-request give-up probability below 1e-7, which is what
		// lets the smoke demand exactly zero client-visible errors.
		api.WithBackoff(chaos.Backoff{
			Base: 10 * time.Millisecond, Cap: 500 * time.Millisecond, MaxAttempts: 8,
		}),
		// A wider retry budget to match: the default (20 tokens, 0.2/success)
		// is sized for an app-like client, not a fleet pushing thousands of
		// requests through sustained fault injection.
		api.WithRetryBudget(64, 0.25),
	}
	if cfg.NoRetry {
		ropts = append(ropts, api.WithoutRetry(), api.WithoutBreaker())
	}
	hc := cfg.HTTPClient
	if hc == nil {
		// The stdlib default transport keeps only 2 idle connections per
		// host; a closed-loop fleet larger than that reconnects on nearly
		// every request and the 40ms delayed-ACK penalty on fresh
		// connections caps the generator far below the backend's capacity.
		// Pool one connection per client.
		hc = &http.Client{
			Timeout: api.DefaultTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Clients + 8,
				MaxIdleConnsPerHost: cfg.Clients + 8,
			},
		}
	}
	remote := api.NewRemote(cfg.BaseURL, hc, ropts...)

	// Client → city assignment: round-robin over sorted names so run N and
	// run N+1 put client i in the same city (the kill-a-shard comparison
	// depends on stable populations). Single-city runs get one unnamed
	// city at cfg.Loc and skip the per-city accounting.
	cityNames := make([]string, 0, len(cfg.Cities))
	for name := range cfg.Cities {
		cityNames = append(cityNames, name)
	}
	sort.Strings(cityNames)
	multiCity := len(cityNames) > 0
	clientCity := make([]int, cfg.Clients) // index into cityNames, -1 = cfg.Loc
	clientLoc := make([]geo.LatLng, cfg.Clients)
	for i := range clientLoc {
		if multiCity {
			clientCity[i] = i % len(cityNames)
			clientLoc[i] = cfg.Cities[cityNames[clientCity[i]]]
		} else {
			clientCity[i] = -1
			clientLoc[i] = cfg.Loc
		}
	}

	ids := make([]string, cfg.Clients)
	for i := range ids {
		ids[i] = fmt.Sprintf("loadgen-%d", i)
		if err := remote.Register(ids[i]); err != nil {
			return nil, fmt.Errorf("loadgen: register %s: %w", ids[i], err)
		}
	}

	weights := [3]int{cfg.PingWeight, cfg.PriceWeight, cfg.TimeWeight}
	totalWeight := weights[0] + weights[1] + weights[2]
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}

	type metricSet struct {
		hist              *obs.Histogram
		ok, errs, limited *obs.Counter
	}
	sets := make([]metricSet, len(endpointNames))
	for i, name := range endpointNames {
		lbl := obs.L("endpoint", name)
		sets[i] = metricSet{
			hist:    cfg.Registry.Histogram("loadgen_request_duration_seconds", obs.DefLatencyBuckets, lbl),
			ok:      cfg.Registry.Counter("loadgen_requests_total", lbl, obs.L("result", "ok")),
			errs:    cfg.Registry.Counter("loadgen_requests_total", lbl, obs.L("result", "error")),
			limited: cfg.Registry.Counter("loadgen_requests_total", lbl, obs.L("result", "rate_limited")),
		}
	}
	type cityCounters struct {
		ok, errs, limited *obs.Counter
	}
	citySets := make([]cityCounters, len(cityNames))
	for i, name := range cityNames {
		lbl := obs.L("city", name)
		citySets[i] = cityCounters{
			ok:      cfg.Registry.Counter("loadgen_city_requests_total", lbl, obs.L("result", "ok")),
			errs:    cfg.Registry.Counter("loadgen_city_requests_total", lbl, obs.L("result", "error")),
			limited: cfg.Registry.Counter("loadgen_city_requests_total", lbl, obs.L("result", "rate_limited")),
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	done := make(chan struct{}, cfg.Clients)
	for w := 0; w < cfg.Clients; w++ {
		go func(clientID string, seq int) {
			defer func() { done <- struct{}{} }()
			loc := clientLoc[seq]
			city := clientCity[seq]
			for i := seq; time.Now().Before(deadline); i++ {
				// Weighted round-robin over the mix, offset per client so
				// the fleet doesn't phase-lock on one endpoint.
				slot := i % totalWeight
				ep := 0
				switch {
				case slot < weights[0]:
					ep = 0
				case slot < weights[0]+weights[1]:
					ep = 1
				default:
					ep = 2
				}
				reqStart := time.Now()
				var err error
				switch ep {
				case 0:
					_, err = remote.PingClient(clientID, loc)
				case 1:
					_, err = remote.EstimatePrice(clientID, loc)
				case 2:
					_, err = remote.EstimateTime(clientID, loc)
				}
				sets[ep].hist.ObserveDuration(time.Since(reqStart))
				switch err {
				case nil:
					sets[ep].ok.Inc()
				case api.ErrRateLimited:
					sets[ep].limited.Inc()
				default:
					sets[ep].errs.Inc()
				}
				if city >= 0 {
					switch err {
					case nil:
						citySets[city].ok.Inc()
					case api.ErrRateLimited:
						citySets[city].limited.Inc()
					default:
						citySets[city].errs.Inc()
					}
				}
				if interval > 0 {
					if next := reqStart.Add(interval); time.Now().Before(next) {
						time.Sleep(time.Until(next))
					}
				}
			}
		}(ids[w], w)
	}
	for w := 0; w < cfg.Clients; w++ {
		<-done
	}
	elapsed := time.Since(start)

	rep := &Report{
		Elapsed:     elapsed,
		ElapsedSecs: elapsed.Seconds(),
		Endpoints:   make(map[string]EndpointStats),
	}
	for i, name := range endpointNames {
		s := sets[i].hist.Snapshot()
		es := EndpointStats{
			Requests:    s.Count,
			Errors:      sets[i].errs.Value(),
			RateLimited: sets[i].limited.Value(),
			Mean:        s.Mean(),
			P50:         s.Quantile(0.50),
			P95:         s.Quantile(0.95),
			P99:         s.Quantile(0.99),
		}
		rep.Endpoints[name] = es
		rep.Requests += es.Requests
		rep.Errors += es.Errors
		rep.RateLimited += es.RateLimited
	}
	if multiCity {
		rep.Cities = make(map[string]CityStats, len(cityNames))
		for i, name := range cityNames {
			clients := cfg.Clients/len(cityNames) + boolInt(i < cfg.Clients%len(cityNames))
			rep.Cities[name] = CityStats{
				Clients:     clients,
				Requests:    citySets[i].ok.Value() + citySets[i].errs.Value() + citySets[i].limited.Value(),
				Errors:      citySets[i].errs.Value(),
				RateLimited: citySets[i].limited.Value(),
			}
		}
	}
	// Resilience counters come straight from the shared registry (handle
	// lookup is idempotent, so this reads what the Remote recorded).
	rep.Retries = cfg.Registry.Counter("client_retries_total").Value()
	rep.GiveUps = cfg.Registry.Counter("client_giveups_total").Value()
	rep.BreakerOpens = cfg.Registry.Counter("client_breaker_opens_total").Value()
	if secs := elapsed.Seconds(); secs > 0 {
		rep.RPS = float64(rep.Requests) / secs
	}
	return rep, nil
}
