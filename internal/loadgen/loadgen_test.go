package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestRunSmoke drives the generator against an in-process backend and
// checks the report is populated and consistent with the shared registry.
func TestRunSmoke(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 11, false)
	svc.RunUntil(600)
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	ts := httptest.NewServer(api.NewServer(svc, api.WithMetrics(reg)))
	defer ts.Close()

	report, err := Run(Config{
		BaseURL:    ts.URL,
		Clients:    4,
		Duration:   300 * time.Millisecond,
		Loc:        profile.Origin,
		Registry:   reg,
		HTTPClient: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("closed-loop run issued no requests")
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d, want 0", report.Errors)
	}
	if report.RPS <= 0 {
		t.Errorf("RPS = %g", report.RPS)
	}
	ping := report.Endpoints["/pingClient"]
	if ping.Requests == 0 {
		t.Error("no pings recorded")
	}
	if ping.P50 <= 0 || ping.P99 < ping.P50 {
		t.Errorf("implausible percentiles: p50=%g p99=%g", ping.P50, ping.P99)
	}
	// The same requests are visible server-side: loadgen traffic populated
	// the middleware counters in the shared registry.
	serverPings := reg.Counter("http_requests_total",
		obs.L("endpoint", "/pingClient"), obs.L("class", "2xx")).Value()
	if serverPings != ping.Requests {
		t.Errorf("server saw %d pings, loadgen recorded %d", serverPings, ping.Requests)
	}
	// Report renders with all three endpoints.
	out := report.String()
	for _, want := range []string{"/pingClient", "/estimates/price", "/estimates/time", "req/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestReportJSON checks the machine-readable form round-trips with the
// documented field names and agrees with the struct values.
func TestReportJSON(t *testing.T) {
	r := &Report{
		Elapsed:     1500 * time.Millisecond,
		ElapsedSecs: 1.5,
		Requests:    120,
		Errors:      2,
		RateLimited: 3,
		RPS:         80,
		Endpoints: map[string]EndpointStats{
			"/pingClient": {Requests: 100, Mean: 0.002, P50: 0.0015, P95: 0.004, P99: 0.009},
		},
	}
	out, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ElapsedSeconds float64 `json:"elapsed_seconds"`
		Requests       int64   `json:"requests"`
		ReqPerSec      float64 `json:"req_per_sec"`
		Endpoints      map[string]struct {
			Requests   int64   `json:"requests"`
			P99Seconds float64 `json:"p99_seconds"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if decoded.ElapsedSeconds != 1.5 || decoded.Requests != 120 || decoded.ReqPerSec != 80 {
		t.Errorf("top-level fields wrong: %+v\n%s", decoded, out)
	}
	ping, ok := decoded.Endpoints["/pingClient"]
	if !ok || ping.Requests != 100 || ping.P99Seconds != 0.009 {
		t.Errorf("endpoint fields wrong: %+v\n%s", decoded.Endpoints, out)
	}
	if strings.Contains(string(out), "Elapsed\"") {
		t.Errorf("Go field names leaked into JSON:\n%s", out)
	}
}

// TestRunPaced checks rate limiting of the generator itself: a paced run
// must not exceed its configured request budget.
func TestRunPaced(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 12, false)
	svc.RunUntil(600)
	ts := httptest.NewServer(api.NewServer(svc))
	defer ts.Close()

	const clients, rate = 2, 20.0
	dur := 500 * time.Millisecond
	report, err := Run(Config{
		BaseURL:    ts.URL,
		Clients:    clients,
		Duration:   dur,
		Rate:       rate,
		Loc:        profile.Origin,
		HTTPClient: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Budget: clients * rate * duration, +1 per client for boundary
	// rounding; generous upper slack since CI clocks jitter.
	maxReqs := int64(clients*(rate*dur.Seconds()+1)) * 2
	if report.Requests == 0 || report.Requests > maxReqs {
		t.Errorf("paced run issued %d requests, want 1..%d", report.Requests, maxReqs)
	}
}

func TestRunBadBaseURL(t *testing.T) {
	_, err := Run(Config{BaseURL: "http://127.0.0.1:1", Duration: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("expected registration error against dead backend")
	}
}

// TestRunAbsorbsChaos is the in-process version of the CI chaos smoke: the
// backend is wrapped in the full uberd middleware chain with fault
// injection enabled, and the resilient client must absorb every injected
// fault — zero client-visible errors, nonzero retries. Run under -race
// this doubles as the concurrency stress test for the chaos middleware,
// the retry loop, and the per-endpoint breakers.
func TestRunAbsorbsChaos(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 13, false)
	svc.RunUntil(600)
	reg := obs.NewRegistry()
	svc.Instrument(reg)

	inj := chaos.NewInjector(chaos.Config{
		Seed:         1,
		ErrorProb:    0.05,
		ResetProb:    0.03,
		TruncateProb: 0.03,
		LatencyProb:  0.2,
		Latency:      2 * time.Millisecond,
	})
	var h http.Handler = api.NewServer(svc, api.WithMetrics(reg))
	h = chaos.Timeout(h, 2*time.Second, reg)
	h = chaos.Recover(h, reg)
	h = inj.Middleware(h, reg)
	ts := httptest.NewServer(h)
	defer ts.Close()

	report, err := Run(Config{
		BaseURL:    ts.URL,
		Clients:    8,
		Duration:   400 * time.Millisecond,
		Loc:        profile.Origin,
		Registry:   reg,
		HTTPClient: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests issued")
	}
	faults := reg.Counter("chaos_faults_total", obs.L("kind", "error")).Value() +
		reg.Counter("chaos_faults_total", obs.L("kind", "reset")).Value() +
		reg.Counter("chaos_faults_total", obs.L("kind", "truncate")).Value()
	if faults == 0 {
		t.Fatal("chaos injected no faults; the test exercised nothing")
	}
	if report.Errors != 0 {
		t.Errorf("client-visible errors = %d, want 0 (resilience layer must absorb all %d faults)",
			report.Errors, faults)
	}
	if report.Retries == 0 {
		t.Error("retries = 0; faults were injected but nothing retried")
	}
	t.Logf("absorbed %d injected faults across %d requests with %d retries (%d give-ups)",
		faults, report.Requests, report.Retries, report.GiveUps)
}

// TestRunNoRetryExposesFaults checks the -no-retry escape hatch: with the
// resilience layer off, injected faults surface as client-visible errors.
func TestRunNoRetryExposesFaults(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 13, false)
	svc.RunUntil(600)
	reg := obs.NewRegistry()

	inj := chaos.NewInjector(chaos.Config{Seed: 2, ErrorProb: 0.3})
	var h http.Handler = api.NewServer(svc)
	h = inj.Middleware(h, reg)
	ts := httptest.NewServer(h)
	defer ts.Close()

	report, err := Run(Config{
		BaseURL:    ts.URL,
		Clients:    4,
		Duration:   200 * time.Millisecond,
		Loc:        profile.Origin,
		Registry:   reg,
		HTTPClient: ts.Client(),
		NoRetry:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors == 0 {
		t.Error("no-retry run absorbed injected 500s; want raw fault visibility")
	}
	if report.Retries != 0 {
		t.Errorf("retries = %d with NoRetry set, want 0", report.Retries)
	}
}
