// Package attack implements the driver-collusion manipulation the paper's
// discussion (§8) warns about: because surge is computed from a black-box
// reading of local supply and demand, a group of drivers who log off
// together can starve an area's supply, wait for the multiplier to rise,
// and log back in to harvest the inflated fares. Press reports and the
// paper's reference [2] describe exactly this scheme at airports.
//
// The experiment runs two identical backends from the same seed — one
// clean, one attacked — and compares the target area's multiplier
// trajectory around the attack window.
package attack

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/surge"
)

// Config parameterizes a collusion experiment.
type Config struct {
	Profile *sim.CityProfile
	Seed    int64
	// Area is the surge area the ring targets.
	Area int
	// Drivers is how many idle UberX drivers collude.
	Drivers int
	// At is when they log off (simulation seconds); Duration is how long
	// they stay dark.
	At       int64
	Duration int64
	// ObserveFor is how long after the attack start to record multipliers.
	ObserveFor int64
}

// Result captures the attacked vs. baseline trajectories.
type Result struct {
	// Complied is how many drivers actually went offline.
	Complied int
	// Baseline and Attacked are the target area's ground-truth
	// multipliers per 5-minute interval, starting at cfg.At.
	Baseline []float64
	Attacked []float64
	// Economics of the target area over the observation window and over
	// the post-return stretch (when the ring is back to harvest the
	// inflated multipliers): passenger spend in USD.
	BaselineFares   float64
	AttackedFares   float64
	BaselinePostRet float64
	AttackedPostRet float64
}

// PeakLift returns the largest multiplier increase the attack achieved
// over the baseline at the same instant.
func (r *Result) PeakLift() float64 {
	lift := 0.0
	for i := range r.Attacked {
		if i >= len(r.Baseline) {
			break
		}
		if d := r.Attacked[i] - r.Baseline[i]; d > lift {
			lift = d
		}
	}
	return lift
}

// Induced reports whether the attack raised surge above the baseline at
// any observed interval.
func (r *Result) Induced() bool { return r.PeakLift() > 0 }

// Run executes the experiment.
func Run(cfg Config) *Result {
	if cfg.ObserveFor <= 0 {
		cfg.ObserveFor = 3600
	}
	base := record(cfg, false)
	hit := record(cfg, true)
	return &Result{
		Complied:        hit.complied,
		Baseline:        base.series,
		Attacked:        hit.series,
		BaselineFares:   base.fares,
		AttackedFares:   hit.fares,
		BaselinePostRet: base.postReturnFares,
		AttackedPostRet: hit.postReturnFares,
	}
}

// FareLift returns the attacked-minus-baseline passenger spend in the
// target area after the ring returns (the collusion payoff window).
func (r *Result) FareLift() float64 { return r.AttackedPostRet - r.BaselinePostRet }

type trajectory struct {
	series          []float64
	complied        int
	fares           float64
	postReturnFares float64
}

func record(cfg Config, attacked bool) trajectory {
	w := sim.NewWorld(sim.Config{Profile: cfg.Profile, Seed: cfg.Seed})
	e := surge.New(w, surge.Config{Params: cfg.Profile.Surge, Seed: cfg.Seed})
	r := &surge.Runner{World: w, Engine: e}
	r.RunUntil(cfg.At)

	var tr trajectory
	if attacked {
		tr.complied = w.ForceOffline(core.UberX, cfg.Area, cfg.Drivers, cfg.Duration)
	}
	faresAtStart := w.AreaFares[cfg.Area]
	faresAtReturn := faresAtStart
	returnAt := cfg.At + cfg.Duration
	end := cfg.At + cfg.ObserveFor
	for w.Now() < end {
		r.RunUntil(w.Now()/300*300 + 300)
		tr.series = append(tr.series, e.CurrentMultiplier(cfg.Area))
		if w.Now() <= returnAt {
			faresAtReturn = w.AreaFares[cfg.Area]
		}
	}
	tr.fares = w.AreaFares[cfg.Area] - faresAtStart
	tr.postReturnFares = w.AreaFares[cfg.Area] - faresAtReturn
	return tr
}
