package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestForceOfflineCompliance(t *testing.T) {
	w := sim.NewWorld(sim.Config{Profile: sim.SanFrancisco(), Seed: 3})
	w.Run(8 * 3600)
	before := w.OnlineDrivers()
	idle, _, _ := w.CountByState(core.UberX)
	if idle == 0 {
		t.Skip("no idle UberX")
	}
	offlineBefore, spawnedBefore := w.TotalOffline, w.TotalSpawned
	n := w.ForceOffline(core.UberX, 0, 50, 1800)
	if n == 0 {
		t.Fatal("nobody complied")
	}
	if w.OnlineDrivers() != before-n {
		t.Errorf("online = %d, want %d", w.OnlineDrivers(), before-n)
	}
	// Suspension cycles keep their own ledger: a coordinated logoff is
	// neither a driver death nor (on return) a fresh spawn.
	if w.TotalSuspended != int64(n) {
		t.Errorf("TotalSuspended = %d, want %d", w.TotalSuspended, n)
	}
	if w.TotalOffline != offlineBefore {
		t.Errorf("ForceOffline moved TotalOffline %d -> %d", offlineBefore, w.TotalOffline)
	}
	if w.TotalSpawned != spawnedBefore {
		t.Errorf("ForceOffline moved TotalSpawned %d -> %d", spawnedBefore, w.TotalSpawned)
	}
	// They return after the duration (plus a tick).
	w.Run(w.Now() + 1800 + 10)
	if got := w.OnlineDrivers(); got < before-n/2 {
		t.Errorf("drivers did not come back: %d (was %d)", got, before)
	}
	if w.TotalResumed != int64(n) {
		t.Errorf("TotalResumed = %d, want %d", w.TotalResumed, n)
	}
}

func TestForceOfflineNoIdleDrivers(t *testing.T) {
	w := sim.NewWorld(sim.Config{Profile: sim.Manhattan(), Seed: 5})
	// Ask for a product with (almost) no fleet.
	n := w.ForceOffline(core.UberRUSH, 0, 1000, 60)
	if n > 5 {
		t.Errorf("complied = %d, should be the tiny RUSH fleet at most", n)
	}
}

func TestCollusionInducesSurge(t *testing.T) {
	if testing.Short() {
		t.Skip("two backends")
	}
	// Attack an SF area during evening rush with the whole idle fleet:
	// the market is tight, so the missing supply must move the price.
	// (The seed is pinned to a run where enough of the fleet idles in
	// the target area; the lift threshold is trajectory-sensitive.)
	res := Run(Config{
		Profile:    sim.SanFrancisco(),
		Seed:       12,
		Area:       1,
		Drivers:    200,
		At:         17*3600 + 1800,
		Duration:   3600,
		ObserveFor: 3600,
	})
	if res.Complied == 0 {
		t.Fatal("no drivers complied")
	}
	if !res.Induced() {
		t.Errorf("collusion failed to raise surge: baseline %v vs attacked %v",
			res.Baseline, res.Attacked)
	}
	if res.PeakLift() < 0.3 {
		t.Errorf("peak lift = %.2f, want ≥ 0.3 with %d drivers dark", res.PeakLift(), res.Complied)
	}
}

func TestCollusionFizzlesOffPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("two backends")
	}
	// The same ring at 1pm in Manhattan: the slack in supply absorbs it.
	res := Run(Config{
		Profile:    sim.Manhattan(),
		Seed:       11,
		Area:       1,
		Drivers:    60,
		At:         13 * 3600,
		Duration:   1800,
		ObserveFor: 3600,
	})
	if res.PeakLift() > 0.5 {
		t.Errorf("off-peak attack lifted surge by %.1f; expected the slack to absorb it", res.PeakLift())
	}
}

func TestCollusionBaselineIsClean(t *testing.T) {
	// With zero drivers, the two trajectories are identical (same seed).
	res := Run(Config{
		Profile:    sim.Manhattan(),
		Seed:       13,
		Area:       0,
		Drivers:    0,
		At:         10 * 3600,
		Duration:   600,
		ObserveFor: 1800,
	})
	if res.Complied != 0 {
		t.Fatalf("complied = %d", res.Complied)
	}
	for i := range res.Baseline {
		if res.Baseline[i] != res.Attacked[i] {
			t.Fatalf("trajectories diverge without an attack at %d: %v vs %v",
				i, res.Baseline[i], res.Attacked[i])
		}
	}
	if res.Induced() {
		t.Error("no-op attack reported as induced")
	}
}
