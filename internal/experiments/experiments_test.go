package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transition"
)

// Shared short runs: 8 hours per city covers a morning rush, enough for
// every figure to produce output.
var (
	runOnce sync.Once
	mhtnRun *CityRun
	sfRun   *CityRun
)

func sharedRuns(t testing.TB) (*CityRun, *CityRun) {
	t.Helper()
	runOnce.Do(func() {
		opts := Options{Seed: 1234, Hours: 8, Jitter: true}
		mhtnRun = RunCity(sim.Manhattan(), opts)
		sfRun = RunCity(sim.SanFrancisco(), opts)
	})
	return mhtnRun, sfRun
}

func TestRunCityBasics(t *testing.T) {
	m, s := sharedRuns(t)
	for _, r := range []*CityRun{m, s} {
		if r.Campaign.Rounds == 0 {
			t.Fatalf("%s: no rounds", r.Profile.Name)
		}
		if r.Campaign.Errors != 0 {
			t.Errorf("%s: %d campaign errors", r.Profile.Name, r.Campaign.Errors)
		}
		if len(r.APIProbes) != 4 {
			t.Errorf("%s: %d API probes", r.Profile.Name, len(r.APIProbes))
		}
		for i, p := range r.APIProbes {
			if p.Errs != 0 {
				t.Errorf("%s: probe %d had %d errors (rate limit?)", r.Profile.Name, i, p.Errs)
			}
			if len(p.Samples) == 0 {
				t.Errorf("%s: probe %d collected nothing", r.Profile.Name, i)
			}
		}
		if len(r.Strategy) == 0 {
			t.Errorf("%s: no strategy stats", r.Profile.Name)
		}
	}
}

func TestFig7LifespanGroups(t *testing.T) {
	m, s := sharedRuns(t)
	groups := Fig7Lifespans(m, s)
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	// Luxury sessions run longer than low-cost in both cities (Fig 7).
	byCity := map[string]map[string]Fig7Group{}
	for _, g := range groups {
		if byCity[g.City] == nil {
			byCity[g.City] = map[string]Fig7Group{}
		}
		byCity[g.City][g.Group] = g
	}
	for city, m := range byCity {
		low, lux := m["low-cost"], m["luxury"]
		if low.N == 0 || lux.N == 0 {
			t.Errorf("%s: empty group (low %d, lux %d)", city, low.N, lux.N)
			continue
		}
		if lux.Hours.Median() <= low.Hours.Median() {
			t.Errorf("%s: luxury median %.2fh should exceed low-cost %.2fh",
				city, lux.Hours.Median(), low.Hours.Median())
		}
	}
}

func TestFig8SupplyOrdering(t *testing.T) {
	m, s := sharedRuns(t)
	sm, ss := Summarize(m), Summarize(s)
	if ss.MeanSupplyX <= sm.MeanSupplyX {
		t.Errorf("SF mean supply (%.0f) should exceed Manhattan (%.0f)", ss.MeanSupplyX, sm.MeanSupplyX)
	}
	if ss.SurgedFrac <= sm.SurgedFrac {
		t.Errorf("SF surge fraction (%.2f) should exceed Manhattan (%.2f)", ss.SurgedFrac, sm.SurgedFrac)
	}
	// EWT ~ 3 minutes in both cities.
	for _, x := range []SupplyDemandSummary{sm, ss} {
		if x.MeanEWTMin < 1 || x.MeanEWTMin > 8 {
			t.Errorf("mean EWT %.1f min outside 1-8", x.MeanEWTMin)
		}
	}
}

func TestFig11_12CDFs(t *testing.T) {
	m, s := sharedRuns(t)
	for _, r := range []*CityRun{m, s} {
		ewt := Fig11EWT(r)
		if ewt.Len() == 0 {
			t.Fatal("empty EWT CDF")
		}
		// The bulk of waits must be short (paper: 87% ≤ 4 min).
		if ewt.At(4) < 0.5 {
			t.Errorf("%s: P(EWT≤4min) = %.2f, want > 0.5", r.Profile.Name, ewt.At(4))
		}
		surge := Fig12Surge(r)
		if surge.At(0.999) != 0 {
			t.Errorf("%s: multipliers below 1 exist", r.Profile.Name)
		}
	}
	// Manhattan mostly unsurged, SF mostly surged (Fig 12's contrast).
	if Fig12Surge(m).At(1) < Fig12Surge(s).At(1) {
		t.Error("Manhattan should have more surge-free time than SF")
	}
}

func TestFig13DurationsShow5MinuteClock(t *testing.T) {
	_, s := sharedRuns(t)
	d := Fig13SurgeDurations(s)
	if d.API.Len() == 0 || d.Client.Len() == 0 {
		t.Skip("no surges in window")
	}
	// API durations quantize near 5-minute multiples: nothing under ~4 min
	// except boundary trims; client stream (jitter) has sub-minute blips.
	if d.Client.At(59) <= d.API.At(59) {
		t.Errorf("client stream should have more sub-minute surges: client %.2f vs api %.2f",
			d.Client.At(59), d.API.At(59))
	}
}

func TestFig15TimingBands(t *testing.T) {
	_, s := sharedRuns(t)
	tm := Fig15UpdateTiming(s)
	if tm.API.Len() == 0 {
		t.Skip("no API changes")
	}
	// API changes confined to the first 45 seconds.
	if q := tm.API.Quantile(1); q > 45 {
		t.Errorf("API change at offset %.0f s, want ≤ 45", q)
	}
	// Client changes spread wider (client switch band + jitter).
	if tm.Client.Len() > 10 {
		if spread := tm.Client.Quantile(0.95) - tm.Client.Quantile(0.05); spread <= 45 {
			t.Errorf("client change spread = %.0f s, want wider than the API band", spread)
		}
	}
}

func TestFig16_17Jitter(t *testing.T) {
	_, s := sharedRuns(t)
	j := Fig16JitterMultipliers(s)
	if j.Events == 0 {
		t.Skip("no jitter events in window")
	}
	// Jitter mostly reduces prices (paper: 64-74%).
	if j.Reduced < 0.4 {
		t.Errorf("jitter reduced price only %.0f%% of the time", j.Reduced*100)
	}
	si := Fig17JitterSimultaneity(s)
	if si.FractionAlone < 0.6 {
		t.Errorf("fraction alone = %.2f, want ~0.9", si.FractionAlone)
	}
	if si.Max > 6 {
		t.Errorf("max simultaneous = %d, paper saw ≤ 5", si.Max)
	}
}

func TestFig18AreasRecovered(t *testing.T) {
	_, s := sharedRuns(t)
	a := Fig18_19SurgeAreas(s)
	if a.Map == nil {
		t.Fatal("prober missing")
	}
	if a.Map.NumClusters < 2 {
		t.Errorf("clusters = %d, want the partition to resolve", a.Map.NumClusters)
	}
	if a.Accuracy < 0.85 {
		t.Errorf("accuracy = %.2f, want ≥ 0.85", a.Accuracy)
	}
}

func TestFig20_21Correlations(t *testing.T) {
	_, s := sharedRuns(t)
	sd := Fig20SupplyDemandCorrelation(s, 60)
	ew := Fig21EWTCorrelation(s, 60)
	if math.IsNaN(sd.RAtZero) || math.IsNaN(ew.RAtZero) {
		t.Fatal("correlation at lag 0 is NaN")
	}
	// The paper's signed claims (supply−demand negative, EWT positive)
	// are full-day statistics; EXPERIMENTS.md regenerates them at
	// -days 1, where both cities come out clearly negative/positive. In
	// this 8-hour overnight window the supply−demand correlation is
	// dominated by the shared diurnal ramp into the morning rush — its
	// sign is seed luck (r at 0 spans roughly −0.07..+0.08 across seeds,
	// with either RNG layout), so asserting it here would pin noise. The
	// shape that IS robust at 8 hours: EWT couples strongly and
	// positively with surge, while supply−demand sits near zero, far
	// below it.
	if ew.RAtZero <= 0 {
		t.Errorf("EWT r at 0 = %.3f, want positive", ew.RAtZero)
	}
	if math.Abs(sd.RAtZero) > 0.2 {
		t.Errorf("supply-demand r at 0 = %.3f, want near zero at the trend-dominated 8h window", sd.RAtZero)
	}
	if sd.RAtZero > ew.RAtZero-0.1 {
		t.Errorf("supply-demand r at 0 = %.3f not clearly below EWT r = %.3f", sd.RAtZero, ew.RAtZero)
	}
}

func TestTable1NotForecastable(t *testing.T) {
	_, s := sharedRuns(t)
	row, err := Table1Forecasting(s)
	if err != nil {
		t.Fatal(err)
	}
	if row.Table.Raw.R2 >= 0.9 {
		t.Errorf("Raw R² = %.3f: surge must not be strongly forecastable", row.Table.Raw.R2)
	}
}

func TestFig22CellsComplete(t *testing.T) {
	m, _ := sharedRuns(t)
	cells := Fig22Transitions(m)
	if len(cells) != 4*transition.NumStates {
		t.Fatalf("cells = %d, want %d", len(cells), 4*transition.NumStates)
	}
	for _, c := range cells {
		if c.EqualShare < 0 || c.EqualShare > 1 || c.SurgeShare < 0 || c.SurgeShare > 1 {
			t.Errorf("share out of range: %+v", c)
		}
	}
}

func TestTruthNewFlocking(t *testing.T) {
	// Ground truth: new driver logons flock toward surging areas (the
	// paper's Fig 22 direction), even when the measured shares are
	// distorted by visibility saturation.
	_, s := sharedRuns(t)
	up, checked := 0, 0
	for a := 0; a < s.Trans.NumAreas(); a++ {
		if s.Trans.Intervals(transition.CondSurging, a) < 5 {
			continue
		}
		checked++
		if s.Truth.Share(transition.CondSurging, a) > s.Truth.Share(transition.CondEqual, a) {
			up++
		}
	}
	if checked == 0 {
		t.Skip("no areas with enough surging intervals")
	}
	if up*2 < checked {
		t.Errorf("ground-truth New share rose in only %d/%d surging areas", up, checked)
	}
}

func TestFig23_24Strategy(t *testing.T) {
	m, s := sharedRuns(t)
	for _, r := range []*CityRun{m, s} {
		cl := Fig23AvoidanceFeasibility(r)
		if len(cl) == 0 {
			t.Fatal("no clients")
		}
		for _, c := range cl {
			if c.Scans == 0 {
				t.Errorf("%s client %d never scanned", c.City, c.Client)
			}
			if c.Fraction < 0 || c.Fraction > 1 {
				t.Errorf("fraction %v out of range", c.Fraction)
			}
		}
		sv := Fig24AvoidanceSavings(r)
		if sv.N > 0 {
			if sv.Savings.Quantile(0) < 0.1-1e-9 {
				t.Errorf("savings below one quantization step: %v", sv.Savings.Quantile(0))
			}
			if sv.WalkMins.Quantile(1) > 45 {
				t.Errorf("walk %.1f min implausible", sv.WalkMins.Quantile(1))
			}
		}
	}
}

func TestHourlyMeanAndSeriesMean(t *testing.T) {
	m, _ := sharedRuns(t)
	s := m.Dataset.SurgeSeries()
	hm := HourlyMean(s)
	nonzero := 0
	for _, v := range hm {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("hourly means all zero")
	}
	if math.IsNaN(SeriesMean(s)) {
		t.Error("series mean NaN")
	}
	if sm := SeriesMean(m.Dataset.SupplySeries(core.UberX)); sm <= 0 {
		t.Errorf("UberX supply mean = %v", sm)
	}
}

func TestFig2Rows(t *testing.T) {
	if testing.Short() {
		t.Skip("extra backends")
	}
	rows := Fig2VisibilityRadius(3, []int{4, 12})
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// For each city, the 4am radius exceeds the noon radius.
	byCity := map[string]map[int]float64{}
	for _, r := range rows {
		if byCity[r.City] == nil {
			byCity[r.City] = map[int]float64{}
		}
		byCity[r.City][r.Hour] = r.RadiusM
	}
	for city, m := range byCity {
		if m[4] > 0 && m[12] > 0 && m[4] <= m[12] {
			t.Errorf("%s: night radius %.0f should exceed noon %.0f", city, m[4], m[12])
		}
	}
}

func TestFig4Validation(t *testing.T) {
	if testing.Short() {
		t.Skip("taxi campaign")
	}
	res := Fig4TaxiValidation(5, 900, 9, 13)
	if res.SupplyCapture < 0.8 {
		t.Errorf("supply capture = %.2f", res.SupplyCapture)
	}
}

func TestReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var buf bytes.Buffer
	Report(&buf, Options{Seed: 99, Hours: 4, Jitter: true})
	out := buf.String()
	for _, want := range []string{
		"Fig 2", "Fig 4", "Figs 5-7", "Fig 8", "Figs 9/10", "Fig 11", "Fig 12",
		"Fig 13", "Fig 14", "Fig 15", "Figs 16/17", "Figs 18/19", "Figs 20/21",
		"Table 1", "Fig 22", "Figs 23/24", "Extensions",
		"Driver collusion", "Waiting out the surge", "driver-set pricing",
		"location perturbation", "Smoothed surge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}
