package experiments

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestHeatmapASCII(t *testing.T) {
	cells := []HeatCell{
		{Pos: geo.Point{X: 0, Y: 0}, CarsPerDay: 0},
		{Pos: geo.Point{X: 100, Y: 0}, CarsPerDay: 50},
		{Pos: geo.Point{X: 0, Y: 100}, CarsPerDay: 100},
		{Pos: geo.Point{X: 100, Y: 100}, CarsPerDay: 100},
	}
	out := HeatmapASCII(cells, func(c HeatCell) float64 { return c.CarsPerDay })
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", len(lines), out)
	}
	// North (y=100) first: both max -> '@'.
	if lines[0] != "@@" {
		t.Errorf("top row = %q, want \"@@\"", lines[0])
	}
	// South row: min then mid.
	if lines[1][0] != ' ' {
		t.Errorf("bottom-left = %q, want space (min)", string(lines[1][0]))
	}
	if lines[1][1] == ' ' || lines[1][1] == '@' {
		t.Errorf("bottom-right = %q, want a mid shade", string(lines[1][1]))
	}
}

func TestHeatmapASCIIEmptyAndUniform(t *testing.T) {
	if HeatmapASCII(nil, func(HeatCell) float64 { return 0 }) != "" {
		t.Error("empty cells should render empty")
	}
	cells := []HeatCell{
		{Pos: geo.Point{X: 0, Y: 0}, CarsPerDay: 7},
		{Pos: geo.Point{X: 100, Y: 0}, CarsPerDay: 7},
	}
	out := HeatmapASCII(cells, func(c HeatCell) float64 { return c.CarsPerDay })
	// Uniform field: all minimum shade, no panic on hi==lo.
	if strings.TrimRight(out, "\n") != "  " {
		t.Errorf("uniform render = %q", out)
	}
}
