package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestAuditEngineSmoke runs the shortest real audit end to end: the
// fingerprint must come from the named engine and render every grep line
// the CI engine-smoke step asserts on.
func TestAuditEngineSmoke(t *testing.T) {
	a := AuditEngine(sim.Manhattan(), "additive", Options{Seed: 7, Hours: 1, Jitter: true, Workers: 4})
	if a.Engine != "additive" {
		t.Fatalf("audited engine %q, want additive", a.Engine)
	}
	if a.Withheld != 0 {
		t.Fatalf("additive regime recorded %d withheld logoffs", a.Withheld)
	}
	var buf bytes.Buffer
	WriteEngineAudit(&buf, a)
	out := buf.String()
	for _, want := range []string{"engine-report: engine=additive", "engine-fig13:", "engine-fig20:", "engine-fig21:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit report missing %q:\n%s", want, out)
		}
	}
}

// TestEngineComparisonVerdict pins the distinguishability logic on
// synthetic fingerprints: a regime that differs only below every signal
// threshold is indistinguishable; crossing one threshold flips the
// verdict and names the signal.
func TestEngineComparisonVerdict(t *testing.T) {
	base := EngineAudit{Engine: "mult2015"}
	base.Summary.SurgedFrac = 0.12
	base.Summary.MeanSurge = 1.05
	base.JitterFrac = 0.22
	base.Fig20.RAtZero = -0.13
	base.Fig21.RAtZero = 0.43

	near := base
	near.Engine = "additive"
	near.Summary.MeanSurge += 0.01 // inside every threshold
	for _, s := range compareSignals(base, near) {
		if s.distinguishes() {
			t.Fatalf("signal %s fired on sub-threshold delta %+.3f", s.name, s.delta())
		}
	}

	far := base
	far.Engine = "withholding"
	far.Fig21.RAtZero = 0.20 // Δ-0.23 clears the 0.15 threshold
	hit := false
	for _, s := range compareSignals(base, far) {
		if s.distinguishes() {
			if s.name != "fig21-r0" {
				t.Fatalf("unexpected signal %s fired", s.name)
			}
			hit = true
		}
	}
	if !hit {
		t.Fatal("fig21-r0 shift of -0.23 did not distinguish the regimes")
	}

	var buf bytes.Buffer
	WriteEngineComparison(&buf, Options{Seed: 1, Hours: 12}, []EngineAudit{base, near, far})
	out := buf.String()
	for _, want := range []string{
		"engine-verdict: additive-vs-mult2015 distinguishable=false",
		"engine-verdict: withholding-vs-mult2015 distinguishable=true",
		"engine-signal: withholding-vs-mult2015 fig21-r0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison report missing %q:\n%s", want, out)
		}
	}
}
