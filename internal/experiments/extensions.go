package experiments

import (
	"math"

	"repro/internal/api"
	"repro/internal/attack"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/surge"
)

// The experiments in this file go beyond the paper's evaluation: they
// exercise the §8 discussion points the authors could only speculate
// about, since they did not control the system. We do.

// ExtCollusionResult is the driver-collusion experiment (§8's "vulnerable
// to exploitation ... by colluding groups of drivers").
type ExtCollusionResult struct {
	City     string
	Complied int
	PeakLift float64
	Induced  bool
	// FareLift is the extra passenger spend in the area after the ring
	// returns, versus the clean run — the collusion payoff.
	FareLift float64
}

// ExtCollusion measures how much surge a ring of colluding drivers can
// induce by logging off together during evening rush — when the market is
// tight enough for missing supply to bite. (Off-peak attacks fizzle: the
// slack Uber keeps in car supply absorbs the whole ring, which is itself
// a finding.)
func ExtCollusion(profile *sim.CityProfile, seed int64) ExtCollusionResult {
	res := attack.Run(attack.Config{
		Profile:    profile,
		Seed:       seed,
		Area:       1,
		Drivers:    200, // the whole area's idle UberX fleet colludes
		At:         17*3600 + 1800,
		Duration:   1800, // dark for 30 minutes...
		ObserveFor: 5400, // ...then an hour of harvesting
	})
	return ExtCollusionResult{
		City:     profile.Name,
		Complied: res.Complied,
		PeakLift: res.PeakLift(),
		Induced:  res.Induced(),
		FareLift: res.FareLift(),
	}
}

// ExtWaitOutResult evaluates the §5.2 "wait out the surge" heuristic on a
// run's API streams.
type ExtWaitOutResult struct {
	City string
	// Wait5 is the outcome of waiting one surge interval from onset.
	Wait5 strategy.WaitOutResult
	// Wait15 is the outcome of waiting three intervals.
	Wait15 strategy.WaitOutResult
}

// ExtWaitOut pools every API probe's change log of a run.
func ExtWaitOut(r *CityRun) ExtWaitOutResult {
	out := ExtWaitOutResult{City: r.Profile.Name}
	agg := func(wait int64) strategy.WaitOutResult {
		var total strategy.WaitOutResult
		var saving, onset, after float64
		for _, p := range r.APIProbes {
			res := strategy.WaitOut(p.Log, 1, 0, r.End, wait)
			total.Cases += res.Cases
			total.Improved += res.Improved
			total.Cleared += res.Cleared
			saving += res.MeanSaving * float64(res.Cases)
			onset += res.MeanOnset * float64(res.Cases)
			after += res.MeanAfter * float64(res.Cases)
		}
		if total.Cases > 0 {
			total.MeanSaving = saving / float64(total.Cases)
			total.MeanOnset = onset / float64(total.Cases)
			total.MeanAfter = after / float64(total.Cases)
		}
		return total
	}
	out.Wait5 = agg(300)
	out.Wait15 = agg(900)
	return out
}

// ExtMarketResult compares Uber's surge market against the Sidecar-style
// driver-set market (§8's proposed alternative) on identical demand.
type ExtMarketResult struct {
	City               string
	SurgeMeanPrice     float64
	SurgePriceStd      float64
	SurgeUnmetFrac     float64
	SurgePricedOut     float64
	DriverSetMeanPrice float64
	DriverSetPriceStd  float64
	DriverSetUnmetFrac float64
	DriverSetPricedOut float64
	SurgeMeanEWT       float64 // minutes, sampled at the city center
	DriverSetMeanEWT   float64
}

// ExtMarketComparison runs both market designs for `hours` and compares
// price levels, dispersion, and service quality.
func ExtMarketComparison(profile *sim.CityProfile, seed int64, hours int) ExtMarketResult {
	s := runSurgeMarket(profile, seed, hours)
	d := runDriverSetMarket(profile, seed, hours)
	return ExtMarketResult{
		City:               profile.Name,
		SurgeMeanPrice:     s.mean,
		SurgePriceStd:      s.std,
		SurgeUnmetFrac:     s.unmet,
		SurgePricedOut:     s.pricedOut,
		SurgeMeanEWT:       s.ewt,
		DriverSetMeanPrice: d.mean,
		DriverSetPriceStd:  d.std,
		DriverSetUnmetFrac: d.unmet,
		DriverSetPricedOut: d.pricedOut,
		DriverSetMeanEWT:   d.ewt,
	}
}

type marketOutcome struct {
	mean, std, unmet, pricedOut, ewt float64
}

// runDriverSetMarket runs the Sidecar-style market (no surge engine; the
// world's default surge provider pins 1).
func runDriverSetMarket(profile *sim.CityProfile, seed int64, hours int) marketOutcome {
	w := sim.NewWorld(sim.Config{Profile: profile, Seed: seed, Pricing: sim.PricingDriverSet})
	var ewtSum float64
	var ewtN int
	end := int64(hours) * 3600
	for w.Now() < end {
		w.Step()
		if w.Now()%300 == 0 {
			ewtSum += w.EWT(core.UberX, geo.Point{}) / 60
			ewtN++
		}
	}
	mean, std, _ := w.PriceStats()
	total := float64(w.TotalPickups + w.TotalUnmet + w.TotalPricedOut)
	var o marketOutcome
	o.mean, o.std = mean, std
	if total > 0 {
		o.unmet = float64(w.TotalUnmet) / total
		o.pricedOut = float64(w.TotalPricedOut) / total
	}
	if ewtN > 0 {
		o.ewt = ewtSum / float64(ewtN)
	}
	return o
}

// runSurgeMarket runs the surge market with its engine stepped properly.
func runSurgeMarket(profile *sim.CityProfile, seed int64, hours int) marketOutcome {
	w := sim.NewWorld(sim.Config{Profile: profile, Seed: seed})
	e := surge.New(w, surge.Config{Params: profile.Surge, Seed: seed})
	r := &surge.Runner{World: w, Engine: e}
	var ewtSum float64
	var ewtN int
	end := int64(hours) * 3600
	for w.Now() < end {
		r.Step()
		if w.Now()%300 == 0 {
			ewtSum += w.EWT(core.UberX, geo.Point{}) / 60
			ewtN++
		}
	}
	mean, std, _ := w.PriceStats()
	total := float64(w.TotalPickups + w.TotalUnmet + w.TotalPricedOut)
	var o marketOutcome
	o.mean, o.std = mean, std
	if total > 0 {
		o.unmet = float64(w.TotalUnmet) / total
		o.pricedOut = float64(w.TotalPricedOut) / total
	}
	if ewtN > 0 {
		o.ewt = ewtSum / float64(ewtN)
	}
	return o
}

// ExtFuzzResult measures the methodology's robustness to Uber's stated
// location perturbation (§3.3: positions "may be slightly perturbed to
// protect drivers' safety"): the same campaign is run against a clean and
// a 25-meter-fuzzed backend and the measured series are compared.
type ExtFuzzResult struct {
	City string
	// SupplyRatio is fuzzed/clean total measured supply; DeathRatio the
	// same for deaths. Robustness means both stay near 1.
	SupplyRatio float64
	DeathRatio  float64
}

// ExtFuzzRobustness runs the paired campaigns for `hours`.
func ExtFuzzRobustness(profile *sim.CityProfile, seed int64, hours int) ExtFuzzResult {
	run := func(fuzz float64) (supply, deaths float64) {
		svc := api.NewBackend(profile, seed, false)
		svc.SetLocationFuzz(fuzz)
		pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
		camp := client.NewCampaign(svc, svc.World().Projection(), pts)
		camp.RegisterAll(svc)
		ds := measure.NewDataset(measure.Config{
			Profile: profile, Start: 0, End: int64(hours) * 3600,
		}, len(pts))
		camp.AddSink(ds)
		camp.RunSim(svc, int64(hours)*3600)
		ds.Close()
		for _, v := range ds.SupplySeries(core.UberX).Values {
			if !math.IsNaN(v) {
				supply += v
			}
		}
		for _, v := range ds.DeathSeries(core.UberX).Values {
			if !math.IsNaN(v) {
				deaths += v
			}
		}
		return supply, deaths
	}
	cs, cd := run(0)
	fs, fd := run(25)
	out := ExtFuzzResult{City: profile.Name}
	if cs > 0 {
		out.SupplyRatio = fs / cs
	}
	if cd > 0 {
		out.DeathRatio = fd / cd
	}
	return out
}

// ExtSmoothingResult compares the stock engine against the §8 proposal of
// smoothing surge with a weighted moving average.
type ExtSmoothingResult struct {
	City string
	// Volatility is Σ|Δm| across areas and intervals.
	RawVolatility      float64
	SmoothedVolatility float64
	// Episodes counts distinct surge episodes.
	RawEpisodes      int
	SmoothedEpisodes int
	// SurgedFrac keeps the marginal comparable.
	RawSurgedFrac      float64
	SmoothedSurgedFrac float64
}

// ExtSmoothing runs both engines for `hours` from the same seed.
func ExtSmoothing(profile *sim.CityProfile, seed int64, hours int) ExtSmoothingResult {
	run := func(smoothing float64) (vol float64, ep int, frac float64) {
		w := sim.NewWorld(sim.Config{Profile: profile, Seed: seed})
		e := surge.New(w, surge.Config{Params: profile.Surge, Seed: seed, Smoothing: smoothing, KeepHistory: true})
		r := &surge.Runner{World: w, Engine: e}
		r.RunUntil(int64(hours) * 3600)
		surged, total := 0, 0
		for a := 0; a < 4; a++ {
			inEp := false
			for i, snap := range e.History {
				total++
				if snap[a] > 1 {
					surged++
					if !inEp {
						ep++
						inEp = true
					}
				} else {
					inEp = false
				}
				if i > 0 {
					vol += math.Abs(snap[a] - e.History[i-1][a])
				}
			}
		}
		if total > 0 {
			frac = float64(surged) / float64(total)
		}
		return vol, ep, frac
	}
	res := ExtSmoothingResult{City: profile.Name}
	res.RawVolatility, res.RawEpisodes, res.RawSurgedFrac = run(0)
	res.SmoothedVolatility, res.SmoothedEpisodes, res.SmoothedSurgedFrac = run(0.6)
	return res
}
