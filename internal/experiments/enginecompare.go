// Engine comparison: the ROADMAP's open question — can the paper's 2015
// audit methodology (43-client campaign, API probes, Fig 13 duration
// CDFs, Fig 20/21 lagged correlations) tell pricing regimes apart from
// the outside? RunEngineComparison runs the identical measurement
// campaign against each surge.Pricer and reduces every regime to the
// fingerprint an external auditor could compute, then the writer renders
// the side-by-side verdict.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/surge"
)

// cdfMedian tolerates the nil/empty CDFs a surge-free window produces.
func cdfMedian(c *stats.CDF) float64 {
	if c == nil || c.Len() == 0 {
		return math.NaN()
	}
	return c.Median()
}

// EngineAudit is one pricing regime's external fingerprint under the
// 2015 methodology, plus the operator-side ground truth the auditor
// cannot see (Withheld) for calibration.
type EngineAudit struct {
	Engine  string
	Summary SupplyDemandSummary
	Fig13   Fig13Durations
	Fig20   CorrResult // surge vs (supply − demand), lagged
	Fig21   CorrResult // surge vs EWT, lagged

	// SurgedSamples counts client surge samples above 1; OffGridFrac is
	// the fraction of those that sit OFF the 2015 engine's 0.1 multiplier
	// grid — the additive regime's $0.25 pips land between the steps.
	SurgedSamples int
	OffGridFrac   float64

	// JitterFrac is the fraction of client-stream surge episodes shorter
	// than 120 s (Fig 13's left tail). The April bug fragments episodes on
	// the 2015 engine; a regime without jitter has almost none.
	JitterFrac float64

	// Withheld is the simulator's ground-truth count of strategic
	// withholding logoffs — operator-side truth, not an external signal.
	Withheld int64
}

// AuditEngine runs the measurement campaign against one engine and
// reduces it to the audit fingerprint. The strategy sweeps and lattice
// prober are skipped: neither feeds the regime fingerprint.
func AuditEngine(profile *sim.CityProfile, engine string, opts Options) EngineAudit {
	opts.Engine = engine
	opts.SkipStrategy = true
	opts.SkipProber = true
	r := RunCity(profile, opts)

	a := EngineAudit{Engine: r.Svc.Engine().Name()}
	a.Summary = Summarize(r)
	a.Fig13 = Fig13SurgeDurations(r)
	a.Fig20 = Fig20SupplyDemandCorrelation(r, 60)
	a.Fig21 = Fig21EWTCorrelation(r, 60)
	a.Withheld = r.Svc.World().TotalWithheld

	offGrid := 0
	for _, v := range r.Dataset.SurgeSamples {
		m := float64(v)
		if m <= 1 {
			continue
		}
		a.SurgedSamples++
		if d := math.Abs(m*10 - math.Round(m*10)); d > 0.01 {
			offGrid++
		}
	}
	if a.SurgedSamples > 0 {
		a.OffGridFrac = float64(offGrid) / float64(a.SurgedSamples)
	}
	if n := a.Fig13.Client.Len(); n > 0 {
		a.JitterFrac = a.Fig13.Client.At(120)
	}
	return a
}

// RunEngineComparison audits every selectable engine under the same
// options, in EngineNames order (the 2015 baseline first).
func RunEngineComparison(profile *sim.CityProfile, opts Options) []EngineAudit {
	var out []EngineAudit
	for _, name := range surge.EngineNames() {
		out = append(out, AuditEngine(profile, name, opts))
	}
	return out
}

// WriteEngineAudit prints one regime's fingerprint in grep-friendly
// lines (the CI engine-smoke step asserts on them) followed by the
// Fig 13 / Fig 20 / Fig 21 summaries.
func WriteEngineAudit(w io.Writer, a EngineAudit) {
	fmt.Fprintf(w, "engine-report: engine=%s surged-samples=%d surged-frac=%.3f mean-surge=%.3f offgrid-frac=%.3f withheld=%d\n",
		a.Engine, a.SurgedSamples, a.Summary.SurgedFrac, a.Summary.MeanSurge, a.OffGridFrac, a.Withheld)
	fmt.Fprintf(w, "engine-fig13: engine=%s api-median=%.0fs client-median=%.0fs client-under-120s=%.2f\n",
		a.Engine, cdfMedian(a.Fig13.API), cdfMedian(a.Fig13.Client), a.JitterFrac)
	fmt.Fprintf(w, "engine-fig20: engine=%s r0=%+.3f peak-r=%+.3f peak-lag=%dmin\n",
		a.Engine, a.Fig20.RAtZero, a.Fig20.PeakR, a.Fig20.PeakLag)
	fmt.Fprintf(w, "engine-fig21: engine=%s r0=%+.3f peak-r=%+.3f peak-lag=%dmin\n",
		a.Engine, a.Fig21.RAtZero, a.Fig21.PeakR, a.Fig21.PeakLag)
}

// engineSignal is one externally measurable discriminator between a
// regime and the 2015 baseline.
type engineSignal struct {
	name      string
	baseline  float64
	candidate float64
	// threshold is the absolute delta above which the signal counts as
	// distinguishing — set per signal to sit well above run-to-run noise.
	threshold float64
}

func (s engineSignal) delta() float64      { return s.candidate - s.baseline }
func (s engineSignal) distinguishes() bool { return math.Abs(s.delta()) > s.threshold }
func (s engineSignal) describe() string {
	return fmt.Sprintf("%s %.3f vs baseline %.3f (Δ%+.3f, threshold %.3f)",
		s.name, s.candidate, s.baseline, s.delta(), s.threshold)
}

// compareSignals lists the audit's discriminators for a candidate regime
// against the mult2015 baseline.
func compareSignals(base, cand EngineAudit) []engineSignal {
	return []engineSignal{
		// Quantization grid: 0.1 multiplier steps vs $0.25 pips.
		{"offgrid-frac", base.OffGridFrac, cand.OffGridFrac, 0.2},
		// Jitter fragmentation of client-stream episodes (Fig 13 left tail).
		{"client-under-120s", base.JitterFrac, cand.JitterFrac, 0.15},
		// Market shape: how often and how hard the regime surges.
		{"surged-frac", base.Summary.SurgedFrac, cand.Summary.SurgedFrac, 0.1},
		{"mean-surge", base.Summary.MeanSurge, cand.Summary.MeanSurge, 0.05},
		// Supply response: withholding inverts supply exactly when surge
		// should attract it (Fig 20's zero-lag correlation).
		{"fig20-r0", base.Fig20.RAtZero, cand.Fig20.RAtZero, 0.15},
		{"fig21-r0", base.Fig21.RAtZero, cand.Fig21.RAtZero, 0.15},
	}
}

// WriteEngineComparison renders the side-by-side fingerprints and the
// distinguishability verdict for every non-baseline regime.
func WriteEngineComparison(w io.Writer, opts Options, audits []EngineAudit) {
	span := fmt.Sprintf("%d day(s)", opts.Days)
	if opts.Hours > 0 {
		span = fmt.Sprintf("%d hour(s)", opts.Hours)
	}
	fmt.Fprintf(w, "engine-comparison: seed=%d span=%s engines=%d\n", opts.Seed, span, len(audits))
	for _, a := range audits {
		WriteEngineAudit(w, a)
	}

	fmt.Fprintf(w, "\n| metric | %s | %s | %s |\n", audits[0].Engine, audits[1].Engine, audits[2].Engine)
	fmt.Fprintf(w, "|---|---|---|---|\n")
	row := func(name string, f func(a EngineAudit) string) {
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", name, f(audits[0]), f(audits[1]), f(audits[2]))
	}
	row("surged samples", func(a EngineAudit) string { return fmt.Sprintf("%d", a.SurgedSamples) })
	row("surged fraction", func(a EngineAudit) string { return fmt.Sprintf("%.3f", a.Summary.SurgedFrac) })
	row("mean multiplier", func(a EngineAudit) string { return fmt.Sprintf("%.3f", a.Summary.MeanSurge) })
	row("mean EWT (min)", func(a EngineAudit) string { return fmt.Sprintf("%.2f", a.Summary.MeanEWTMin) })
	row("off-grid multiplier fraction", func(a EngineAudit) string { return fmt.Sprintf("%.3f", a.OffGridFrac) })
	row("client episodes < 120 s", func(a EngineAudit) string { return fmt.Sprintf("%.2f", a.JitterFrac) })
	row("Fig 20 r at lag 0", func(a EngineAudit) string { return fmt.Sprintf("%+.3f", a.Fig20.RAtZero) })
	row("Fig 21 r at lag 0", func(a EngineAudit) string { return fmt.Sprintf("%+.3f", a.Fig21.RAtZero) })
	row("withheld logoffs (truth)", func(a EngineAudit) string { return fmt.Sprintf("%d", a.Withheld) })

	base := audits[0]
	for _, cand := range audits[1:] {
		signals := compareSignals(base, cand)
		var hits []engineSignal
		for _, s := range signals {
			if s.distinguishes() {
				hits = append(hits, s)
			}
		}
		fmt.Fprintf(w, "\nengine-verdict: %s-vs-%s distinguishable=%v signals=%d\n",
			cand.Engine, base.Engine, len(hits) > 0, len(hits))
		for _, s := range hits {
			fmt.Fprintf(w, "engine-signal: %s-vs-%s %s\n", cand.Engine, base.Engine, s.describe())
		}
		if len(hits) == 0 {
			fmt.Fprintf(w, "engine-signal: %s-vs-%s none — every discriminator within noise thresholds\n",
				cand.Engine, base.Engine)
		}
	}
}
