package experiments

import (
	"math"

	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/surgemap"
	"repro/internal/transition"
)

// ---------------------------------------------------------------- Figs 18/19

// Fig18Areas is the inferred surge-area partition plus its accuracy
// against the engine's true partition.
type Fig18Areas struct {
	City     string
	Map      *surgemap.Map
	Accuracy float64
	// TrueAreas is the ground-truth area count (4 in both cities).
	TrueAreas int
}

// Fig18_19SurgeAreas clusters the lattice series collected during the
// run.
func Fig18_19SurgeAreas(r *CityRun) Fig18Areas {
	out := Fig18Areas{City: r.Profile.Name, TrueAreas: len(r.Profile.SurgeAreas())}
	if r.Prober == nil {
		return out
	}
	m := r.Prober.Infer()
	areas := r.Profile.SurgeAreas()
	out.Map = m
	out.Accuracy = m.Accuracy(func(p geo.Point) int { return sim.AreaOf(areas, p) })
	return out
}

// ---------------------------------------------------------------- Figs 20/21

// CorrResult is one cross-correlation sweep averaged over areas.
type CorrResult struct {
	City string
	// Lags in minutes, and the mean correlation across areas at each lag.
	Lags []int
	R    []float64
	P    []float64
	// RAtZero and PeakLag summarize the curve.
	RAtZero float64
	PeakLag int
	PeakR   float64
}

// Fig20SupplyDemandCorrelation computes corr((supply − demand)(t+Δ),
// surge(t)) per area and averages, as Fig 20 does.
func Fig20SupplyDemandCorrelation(r *CityRun, maxLagMin int) CorrResult {
	return corrSweep(r, maxLagMin, func(a int) []float64 {
		s := r.Dataset.AreaSupplySeries(a)
		d := r.Dataset.AreaDeathSeries(a)
		out := make([]float64, s.Len())
		for i := range out {
			sv, dv := s.Values[i], d.Values[i]
			if math.IsNaN(sv) {
				out[i] = math.NaN()
				continue
			}
			if math.IsNaN(dv) {
				dv = 0
			}
			out[i] = sv - dv
		}
		return out
	})
}

// Fig21EWTCorrelation computes corr(EWT(t+Δ), surge(t)) per area and
// averages (Fig 21).
func Fig21EWTCorrelation(r *CityRun, maxLagMin int) CorrResult {
	return corrSweep(r, maxLagMin, func(a int) []float64 {
		return r.Dataset.AreaEWTSeries(a).Values
	})
}

// corrSweep correlates surge against a per-area feature across lags,
// using the paper's convention: the correlation at Δt compares surge
// during [t, t+5) with feature values over [t+Δt−5, t+Δt). Δt = 0 is
// therefore the trailing 5-minute window — the exact window the surge
// engine consumes, which is why the paper (and this reproduction) find
// the strongest correlation there.
func corrSweep(r *CityRun, maxLagMin int, feature func(area int) []float64) CorrResult {
	maxLag := maxLagMin/5 + 1 // one extra index for the half-open shift
	res := CorrResult{City: r.Profile.Name}
	sums := make([]float64, 2*maxLag+1)
	psums := make([]float64, 2*maxLag+1)
	ns := make([]int, 2*maxLag+1)
	for a := 0; a < r.Dataset.NumAreas(); a++ {
		surge := r.Dataset.AreaSurgeSeries(a).Values
		feat := feature(a)
		lcs := stats.CrossCorrelate(surge, feat, maxLag)
		for i, lc := range lcs {
			if lc.HasR {
				sums[i] += lc.R
				psums[i] += lc.P
				ns[i]++
			}
		}
	}
	for i := range sums {
		// Index lag (i - maxLag) compares surge(t) with feat(t+idx); the
		// paper's Δt for that pairing is (idx + 1) intervals.
		lag := (i - maxLag + 1) * 5
		if lag < -maxLagMin || lag > maxLagMin {
			continue
		}
		res.Lags = append(res.Lags, lag)
		if ns[i] == 0 {
			res.R = append(res.R, math.NaN())
			res.P = append(res.P, math.NaN())
			continue
		}
		r0 := sums[i] / float64(ns[i])
		res.R = append(res.R, r0)
		res.P = append(res.P, psums[i]/float64(ns[i]))
		if lag == 0 {
			res.RAtZero = r0
		}
		if math.Abs(r0) > math.Abs(res.PeakR) {
			res.PeakR = r0
			res.PeakLag = lag
		}
	}
	return res
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one city's fitted forecasting models.
type Table1Row struct {
	City    string
	Table   forecast.Table
	Samples int
}

// Table1Forecasting fits the Raw/Threshold/Rush regressions on a run.
func Table1Forecasting(r *CityRun) (Table1Row, error) {
	t, samples, err := forecast.FitCity(r.Dataset)
	return Table1Row{City: r.Profile.Name, Table: t, Samples: len(samples)}, err
}

// ---------------------------------------------------------------- Fig 22

// Fig22Cell is one bar pair of Fig 22.
type Fig22Cell struct {
	City       string
	Area       int
	State      transition.State
	EqualShare float64
	SurgeShare float64
	// SurgeIntervals is how many interval transitions had this area
	// surging ≥ 0.2 above its neighbors.
	SurgeIntervals int
}

// Fig22Transitions extracts every (area, state) share pair.
func Fig22Transitions(r *CityRun) []Fig22Cell {
	var out []Fig22Cell
	for a := 0; a < r.Trans.NumAreas(); a++ {
		for st := 0; st < transition.NumStates; st++ {
			out = append(out, Fig22Cell{
				City:           r.Profile.Name,
				Area:           a,
				State:          transition.State(st),
				EqualShare:     r.Trans.Share(transition.CondEqual, transition.State(st), a),
				SurgeShare:     r.Trans.Share(transition.CondSurging, transition.State(st), a),
				SurgeIntervals: r.Trans.Intervals(transition.CondSurging, a),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------- Figs 23/24

// Fig23Client is one client's strategy feasibility.
type Fig23Client struct {
	City     string
	Client   int
	Pos      geo.Point
	Fraction float64 // share of scans with a feasible cheaper pickup
	Scans    int
}

// Fig23AvoidanceFeasibility reports, per client position, how often the
// §6 strategy found a cheaper reachable pickup.
func Fig23AvoidanceFeasibility(r *CityRun) []Fig23Client {
	out := make([]Fig23Client, len(r.Strategy))
	for i, st := range r.Strategy {
		f := 0.0
		if st.Scans > 0 {
			f = float64(st.Feasible) / float64(st.Scans)
		}
		out[i] = Fig23Client{
			City: r.Profile.Name, Client: i, Pos: r.Campaign.Clients[i].Pos,
			Fraction: f, Scans: st.Scans,
		}
	}
	return out
}

// Fig24Savings aggregates the savings and walking-time distributions.
type Fig24Savings struct {
	City     string
	Savings  *stats.CDF // multiplier reduction
	WalkMins *stats.CDF
	N        int
}

// Fig24AvoidanceSavings pools every client's feasible cases (Fig 24's
// solid lines).
func Fig24AvoidanceSavings(r *CityRun) Fig24Savings {
	var sav, walk []float64
	for _, st := range r.Strategy {
		sav = append(sav, st.Savings...)
		walk = append(walk, st.WalkMins...)
	}
	return Fig24Savings{
		City:    r.Profile.Name,
		Savings: stats.NewCDF(sav), WalkMins: stats.NewCDF(walk),
		N: len(sav),
	}
}

// SupplyDemandSummary is used by Fig 8 reporting and sanity tests.
type SupplyDemandSummary struct {
	MeanSupplyX float64
	MeanSurge   float64
	MeanEWTMin  float64
	SurgedFrac  float64
}

// Summarize computes the headline aggregates of a run.
func Summarize(r *CityRun) SupplyDemandSummary {
	var s SupplyDemandSummary
	s.MeanSupplyX = SeriesMean(r.Dataset.SupplySeries(measure.TrackedTypes[0]))
	s.MeanEWTMin = SeriesMean(r.Dataset.EWTSeries())
	surged, n := 0, 0
	var sum float64
	for _, v := range r.Dataset.SurgeSamples {
		sum += float64(v)
		n++
		if v > 1 {
			surged++
		}
	}
	if n > 0 {
		s.MeanSurge = sum / float64(n)
		s.SurgedFrac = float64(surged) / float64(n)
	}
	return s
}
